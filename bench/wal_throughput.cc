// WAL throughput harness (DESIGN.md §9): what durability costs.
//
// Measures journal append throughput without a WAL, with the WAL in its
// default batched-fsync mode, and with fsync-per-append, plus checkpoint
// write and full crash-recovery times — the knobs a deployment trades
// between durability latency and ingest rate. Scratch segments live
// under the system temp root (tests/test_tmpdir.h) and are recreated on
// every run.
//
// Knobs: CENSYSIM_WAL_OPS (append count, default 200000),
// CENSYSIM_WAL_FSYNC_OPS (fsync-each append count, default 5000).
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_common.h"
#include "core/clock.h"
#include "core/strings.h"
#include "storage/journal.h"
#include "test_tmpdir.h"

using namespace censys;
using namespace censys::engines;

namespace {

constexpr int kEntities = 64;

// One synthetic append, shaped like a real interrogation delta: a couple
// of short fields changing per event.
void ApplyOp(storage::EventJournal& journal, int i) {
  storage::Delta delta;
  delta.ops.push_back({storage::FieldOp::Kind::kSet,
                       "banner", "Server: nginx build " + std::to_string(i)});
  delta.ops.push_back({storage::FieldOp::Kind::kSet,
                       "observed", std::to_string(i)});
  journal.Append("host/" + std::to_string(i % kEntities),
                 storage::EventKind::kServiceChanged,
                 Timestamp{static_cast<std::int64_t>(i + 1)}, delta);
}

using censys::test::ScratchDir;

std::string Rate(double ops, double micros) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f ops/s", ops / (micros / 1e6));
  return buf;
}

}  // namespace

int main() {
  const int ops = static_cast<int>(bench::EnvOr("CENSYSIM_WAL_OPS", 200000));
  const int fsync_ops =
      static_cast<int>(bench::EnvOr("CENSYSIM_WAL_FSYNC_OPS", 5000));
  std::printf("== WAL throughput (DESIGN.md §9) ==\n");
  std::printf("ops=%d fsync_ops=%d entities=%d\n\n", ops, fsync_ops,
              kEntities);

  TablePrinter table({"Configuration", "Throughput", "Notes"});

  // Baseline: the in-memory journal alone.
  {
    storage::EventJournal journal;
    const WallTimer timer;
    for (int i = 0; i < ops; ++i) ApplyOp(journal, i);
    const double micros = timer.ElapsedMicros();
    table.AddRow({"journal, no WAL", Rate(ops, micros),
                  "in-memory ceiling"});
    bench::EmitBenchJson("wal_throughput", "journal_no_wal_ops_per_s",
                         ops / (micros / 1e6), "ops/s");
  }

  // Durable default: WAL on, fsync only at rotation/checkpoint.
  double wal_micros = 0;
  {
    storage::EventJournal::Options options;
    options.wal.dir = ScratchDir("batched");
    storage::EventJournal journal(options);
    const WallTimer timer;
    for (int i = 0; i < ops; ++i) ApplyOp(journal, i);
    wal_micros = timer.ElapsedMicros();
    char notes[64];
    std::snprintf(notes, sizeof(notes), "%s logged, %llu rotations",
                  HumanCount(journal.wal()->appended_bytes()).c_str(),
                  static_cast<unsigned long long>(journal.wal()->rotations()));
    table.AddRow({"WAL, batched fsync", Rate(ops, wal_micros), notes});
    bench::EmitBenchJson("wal_throughput", "wal_batched_fsync_ops_per_s",
                         ops / (wal_micros / 1e6), "ops/s");

    // Checkpoint cost at this journal size.
    const WallTimer ckpt_timer;
    std::string error;
    if (!journal.Checkpoint(&error).has_value()) {
      std::fprintf(stderr, "checkpoint failed: %s\n", error.c_str());
      return 1;
    }
    const double ckpt_ms = ckpt_timer.ElapsedMicros() / 1e3;
    char ckpt[64];
    std::snprintf(ckpt, sizeof(ckpt), "%.1f ms", ckpt_ms);
    table.AddRow({"checkpoint write", ckpt,
                  std::to_string(journal.event_count()) + " events covered"});
    bench::EmitBenchJson("wal_throughput", "checkpoint_ms", ckpt_ms, "ms");

    // Append a tail past the checkpoint, then time a full recovery
    // (checkpoint load + tail replay) into a fresh journal.
    for (int i = ops; i < ops + ops / 10; ++i) ApplyOp(journal, i);
    storage::EventJournal recovered(options);
    const WallTimer recover_timer;
    const storage::RecoveryReport report = recovered.Recover();
    if (!report.ok) {
      std::fprintf(stderr, "recovery failed: %s\n", report.error.c_str());
      return 1;
    }
    const double rec_ms = recover_timer.ElapsedMicros() / 1e3;
    bench::EmitBenchJson("wal_throughput", "crash_recovery_ms", rec_ms, "ms");
    char rec[64];
    std::snprintf(rec, sizeof(rec), "%.1f ms", rec_ms);
    table.AddRow({"crash recovery", rec,
                  "ckpt@" + std::to_string(report.checkpoint_lsn) + " + " +
                      std::to_string(report.replayed_records) + " replayed"});
  }

  // Paranoid mode: fsync on every append.
  {
    storage::EventJournal::Options options;
    options.wal.dir = ScratchDir("fsync_each");
    options.wal.fsync_each = true;
    storage::EventJournal journal(options);
    const WallTimer timer;
    for (int i = 0; i < fsync_ops; ++i) ApplyOp(journal, i);
    const double micros = timer.ElapsedMicros();
    table.AddRow({"WAL, fsync each", Rate(fsync_ops, micros),
                  std::to_string(journal.wal()->fsyncs()) + " fsyncs"});
    bench::EmitBenchJson("wal_throughput", "wal_fsync_each_ops_per_s",
                         fsync_ops / (micros / 1e6), "ops/s");
  }

  table.Print();
  std::printf(
      "\ndurability model: batched fsync survives process death (the "
      "simulated crash model); fsync-each additionally survives power "
      "loss at the cost shown above\n");
  return 0;
}
