// Reproduces Figure 3: "Scan Engine Coverage Overlap" — a matrix where
// cell (A, B) is engine A's coverage of engine B's confirmed-active
// services.
//
// Paper shape: Censys has the greatest coverage of every other engine
// (e.g. 96% of Shodan's accurate services); every other engine covers
// Censys worst (39-57%), because only Censys finds services across all
// 65K ports.
#include <array>
#include <map>
#include <unordered_set>

#include "bench_common.h"

using namespace censys;
using namespace censys::engines;

int main() {
  auto world = bench::MakeWorld("Figure 3: Scan Engine Coverage Overlap",
                                bench::BenchOptions{});

  const std::array<const char*, 5> order = {"Censys", "Shodan", "Fofa",
                                            "ZoomEye", "Netlas"};

  // Confirmed-active service keys per engine.
  std::map<std::string, std::vector<std::uint64_t>> active;
  std::map<std::string, std::unordered_set<std::uint64_t>> all_keys;
  for (ScanEngine* engine : world->engines()) {
    const std::string name(engine->name());
    engine->ForEachEntry([&](const EngineEntry& entry) {
      all_keys[name].insert(entry.key.Pack());
      if (world->internet().FindService(entry.key, world->now()) != nullptr) {
        active[name].push_back(entry.key.Pack());
      }
    });
  }

  TablePrinter table({"A covers B ->", "Censys", "Shodan", "Fofa", "ZoomEye",
                      "Netlas"});
  for (const char* a : order) {
    std::vector<std::string> row{a};
    for (const char* b : order) {
      if (std::string(a) == b) {
        row.push_back("100%");
        continue;
      }
      const auto& reference = active[b];
      std::size_t hit = 0;
      for (std::uint64_t key : reference) {
        if (all_keys[a].contains(key)) ++hit;
      }
      row.push_back(reference.empty()
                        ? "-"
                        : Percent(static_cast<double>(hit) /
                                  static_cast<double>(reference.size())));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  std::printf(
      "\npaper (Figure 3): Censys row highest everywhere (>=90%% of every "
      "other engine's active services); Censys column lowest (39-57%%)\n");
  return 0;
}
