// Shared setup for the table/figure reproduction harnesses.
//
// Every bench builds a World from a deterministic seed, bootstraps the
// engines' steady-state datasets, and runs the simulation forward before
// measuring — mirroring how the paper measured a system that had been
// running for years. All knobs can be overridden via environment variables
// (CENSYSIM_SEED, CENSYSIM_UNIVERSE_BITS, CENSYSIM_SERVICES,
// CENSYSIM_DAYS) so reviewers can rerun at other scales.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>

#include "engines/evaluation.h"
#include "engines/world.h"

namespace censys::bench {

struct BenchOptions {
  std::uint64_t seed = 42;
  int universe_bits = 18;
  std::uint32_t services = 40000;
  double ics_scale = 64.0;
  double run_days = 6.0;
  bool with_alternatives = true;
};

inline std::uint64_t EnvOr(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : fallback;
}

// Appends one JSON-lines record to $CENSYSIM_BENCH_JSON (no-op when the
// variable is unset). scripts/bench_baseline.sh points every bench at one
// file and assembles the committed BENCH_*.json baseline from the lines.
// Schema: {"bench", "metric", "value", "unit", "seed"}.
inline void EmitBenchJson(const char* bench, const char* metric, double value,
                          const char* unit) {
  const char* path = std::getenv("CENSYSIM_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  std::FILE* out = std::fopen(path, "a");
  if (out == nullptr) return;
  std::fprintf(out,
               "{\"bench\": \"%s\", \"metric\": \"%s\", \"value\": %.6g, "
               "\"unit\": \"%s\", \"seed\": %llu}\n",
               bench, metric, value, unit,
               static_cast<unsigned long long>(EnvOr("CENSYSIM_SEED", 42)));
  std::fclose(out);
}

inline BenchOptions WithEnvOverrides(BenchOptions opts) {
  opts.seed = EnvOr("CENSYSIM_SEED", opts.seed);
  opts.universe_bits =
      static_cast<int>(EnvOr("CENSYSIM_UNIVERSE_BITS",
                             static_cast<std::uint64_t>(opts.universe_bits)));
  opts.services = static_cast<std::uint32_t>(
      EnvOr("CENSYSIM_SERVICES", opts.services));
  opts.run_days = static_cast<double>(
      EnvOr("CENSYSIM_DAYS", static_cast<std::uint64_t>(opts.run_days)));
  return opts;
}

// `pre_run` (optional) runs after construction but before bootstrap — the
// hook for wiring components that live above the engine in the layer DAG
// (e.g. web::AttachCatalog) so they observe the whole simulated run.
inline std::unique_ptr<engines::World> MakeWorld(
    const char* bench_name, BenchOptions opts,
    const std::function<void(engines::World&)>& pre_run = {}) {
  opts = WithEnvOverrides(opts);
  engines::WorldConfig cfg;
  cfg.universe.seed = opts.seed;
  cfg.universe.universe_size = 1u << opts.universe_bits;
  cfg.universe.target_services = opts.services;
  cfg.universe.ics_scale = opts.ics_scale;
  cfg.with_alternatives = opts.with_alternatives;

  std::printf("== %s ==\n", bench_name);
  std::printf(
      "world: seed=%llu universe=2^%d target_services=%u ics_scale=%.0f "
      "sim_days=%.1f\n\n",
      static_cast<unsigned long long>(opts.seed), opts.universe_bits,
      opts.services, opts.ics_scale, opts.run_days);

  auto world = std::make_unique<engines::World>(cfg);
  if (pre_run) pre_run(*world);
  world->Bootstrap();
  world->RunForDays(opts.run_days);
  return world;
}

}  // namespace censys::bench
