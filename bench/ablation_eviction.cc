// Ablation (DESIGN.md §4.1): eviction deadline vs accuracy/coverage.
//
// §4.6: "There is no clear answer as to how quickly to evict stale
// services." Evicting fast maximizes accuracy but churns out services that
// return after transient outages; evicting slowly inflates coverage with
// stale entries. The paper's compromise is 72 hours. This harness sweeps
// the deadline and reports both sides of the trade-off.
#include <array>

#include "bench_common.h"

using namespace censys;
using namespace censys::engines;

int main() {
  std::printf("== Ablation: eviction deadline ==\n\n");
  TablePrinter table({"Deadline", "Tracked", "Accuracy", "Coverage of live",
                      "Evictions", "Churn re-adds"});

  const std::array<double, 4> deadlines_hours = {12, 72, 24 * 7, 24 * 30};
  for (double deadline : deadlines_hours) {
    bench::BenchOptions opts;
    opts.universe_bits = 17;
    opts.services = 20000;
    opts.with_alternatives = false;
    opts.run_days = 6.0;

    engines::WorldConfig cfg;
    cfg.universe.seed = opts.seed;
    cfg.universe.universe_size = 1u << opts.universe_bits;
    cfg.universe.target_services = opts.services;
    cfg.universe.ics_scale = 16;
    cfg.with_alternatives = false;
    cfg.censys.write_options.eviction_deadline = Duration::Hours(deadline);

    World world(cfg);
    world.Bootstrap();
    world.RunForDays(opts.run_days);

    // Accuracy: live fraction of tracked entries.
    std::uint64_t tracked = 0, live = 0;
    std::unordered_set<std::uint64_t> keys;
    world.censys().ForEachEntry([&](const EngineEntry& e) {
      ++tracked;
      keys.insert(e.key.Pack());
      if (world.internet().FindService(e.key, world.now()) != nullptr) ++live;
    });
    // Coverage: fraction of live services known.
    std::uint64_t live_total = 0, live_known = 0;
    world.internet().ForEachActiveService(
        world.now(), [&](const simnet::SimService& svc) {
          if (svc.pseudo) return;
          ++live_total;
          live_known += keys.contains(svc.key.Pack());
        });
    // Churn re-adds: evicted services that were re-found (first_seen after
    // an eviction of the same key) — approximated by re-injection pool hits.
    const std::size_t pruned =
        world.censys().write_side().RecentlyPruned(world.now()).size();
    char deadline_buf[32];
    std::snprintf(deadline_buf, sizeof(deadline_buf), "%.0fh", deadline);
    table.AddRow(
        {deadline_buf, std::to_string(tracked),
         Percent(static_cast<double>(live) / std::max<std::uint64_t>(1, tracked)),
         Percent(static_cast<double>(live_known) /
                 std::max<std::uint64_t>(1, live_total)),
         std::to_string(world.censys().write_side().services_evicted()),
         std::to_string(pruned)});
  }
  table.Print();
  std::printf(
      "\nexpected: shorter deadlines -> higher accuracy, more eviction "
      "churn; longer deadlines -> stale data (lower accuracy), slightly "
      "higher coverage. 72h is the paper's compromise.\n");
  return 0;
}
