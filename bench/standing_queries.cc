// Standing-query fan-out cost (DESIGN.md §12): two thousand registered
// expressions ride the journal's commit observer through a full simulated
// run. The numbers pin the incremental-evaluation claim — per-commit cost
// scales with the queries a delta's fields shortlist, not with the total
// registered population — so the emitted rows are the evaluation rate and
// the total time spent inside OnCommit, which the trajectory diff can
// hold against the run's journal volume.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/clock.h"
#include "core/metrics.h"
#include "query/standing.h"

using namespace censys;
using namespace censys::bench;

namespace {

// A realistic mixed population: mostly field-constrained service terms
// (cheap — shortlisted by the touched field), a NOT slice (universe
// transitions), and a small any-field slice (evaluated on every commit).
std::vector<std::string> QueryPopulation(std::size_t target) {
  static const char* kPorts[] = {"21",   "22",   "23",  "25",   "53",
                                 "80",   "110",  "143", "443",  "465",
                                 "587",  "993",  "995", "1883", "3306",
                                 "5432", "6379", "8080", "8443", "9200"};
  static const char* kNames[] = {"http", "ssh",  "ftp",   "smtp",
                                 "dns",  "imap", "pop3",  "mysql",
                                 "redis", "mqtt", "https", "telnet"};
  static const char* kWords[] = {"nginx", "apache", "openssh", "iis",
                                 "postfix", "unauthorized", "default",
                                 "login", "admin", "camera"};

  static const char* kProducts[] = {"nginx", "apache httpd", "openssh",
                                    "postfix", "dovecot", "mysql", "redis",
                                    "mosquitto", "haproxy", "lighttpd"};

  std::vector<std::string> out;
  for (const char* word : kWords) out.push_back(word);
  for (const char* port : {"80", "443", "22"}) {
    for (const char* name : {"http", "https", "ssh"}) {
      out.push_back(std::string("NOT svc.") + port +
                    "/tcp.service.name: " + name);
    }
  }
  // Field-constrained bulk: cycle ports x {name, banner word, product,
  // validated}. Repeats are realistic — many subscribers watch the same
  // expression — and each still costs its own per-query evaluation.
  for (std::size_t i = 0; out.size() < target; ++i) {
    const std::string prefix =
        std::string("svc.") + kPorts[i % std::size(kPorts)] + "/tcp.";
    switch ((i / std::size(kPorts)) % 4) {
      case 0:
        out.push_back(prefix + "service.name: " +
                      kNames[i % std::size(kNames)]);
        break;
      case 1:
        out.push_back(prefix + "service.banner: " +
                      kWords[i % std::size(kWords)]);
        break;
      case 2:
        out.push_back(prefix + "software.product: \"" +
                      kProducts[i % std::size(kProducts)] + "\"");
        break;
      case 3:
        out.push_back(prefix + "service.validated: true");
        break;
    }
  }
  return out;
}

}  // namespace

int main() {
  BenchOptions opts;
  opts.with_alternatives = false;
  opts.run_days = 2.0;

  metrics::Registry metrics;
  query::StandingQueryRegistry registry;
  registry.BindMetrics(&metrics);
  std::size_t registered = 0;

  const WallTimer run_timer;
  const auto world = MakeWorld(
      "standing_queries", opts, [&](engines::World& w) {
        for (const std::string& expr : QueryPopulation(2000)) {
          std::string error;
          if (registry.Register(expr, expr, &error).has_value()) {
            ++registered;
          } else {
            std::fprintf(stderr, "standing_queries: %s: %s\n", expr.c_str(),
                         error.c_str());
          }
        }
        w.censys().journal().SetCommitObserver(
            [&registry](const std::vector<storage::AppliedEvent>& batch) {
              registry.OnCommit(batch);
            });
      });
  const double run_secs = run_timer.ElapsedMicros() / 1e6;

  const std::uint64_t evals =
      metrics.CounterValue("censys.query.standing.evals");
  const std::uint64_t events =
      metrics.CounterValue("censys.query.standing.events");
  const metrics::Histogram* eval_us =
      metrics.FindHistogram("censys.query.standing.eval_us");
  const double eval_secs = eval_us != nullptr ? eval_us->sum() / 1e6 : 0;
  const std::uint64_t commits = eval_us != nullptr ? eval_us->count() : 0;
  const double evals_per_s = eval_secs > 0 ? evals / eval_secs : 0;

  std::printf("registered queries:     %zu\n", registered);
  std::printf("observed commits:       %llu\n",
              static_cast<unsigned long long>(commits));
  std::printf("match events pushed:    %llu\n",
              static_cast<unsigned long long>(events));
  std::printf("per-doc evaluations:    %llu (%.3g/s inside OnCommit)\n",
              static_cast<unsigned long long>(evals), evals_per_s);
  std::printf("time inside OnCommit:   %.1f ms (%.1f%% of the %.1fs run)\n",
              eval_secs * 1000.0,
              run_secs > 0 ? 100.0 * eval_secs / run_secs : 0, run_secs);

  EmitBenchJson("standing_queries", "registered",
                static_cast<double>(registered), "queries");
  EmitBenchJson("standing_queries", "match_events",
                static_cast<double>(events), "events");
  EmitBenchJson("standing_queries", "evals_per_s", evals_per_s, "items/s");
  EmitBenchJson("standing_queries", "oncommit_ms", eval_secs * 1000.0, "ms");

  if (registered == 0 || events == 0 || evals == 0) {
    std::fprintf(stderr,
                 "standing_queries: degenerate run (registered=%zu "
                 "events=%llu evals=%llu)\n",
                 registered, static_cast<unsigned long long>(events),
                 static_cast<unsigned long long>(evals));
    return 1;
  }
  return 0;
}
