// Replica-tier scale-out (DESIGN.md §11): aggregate read QPS through the
// ReplicaRouter as the replica count grows 1 -> 2 -> 4. Each rig ships the
// same leader log to N caught-up followers and fans an identical lookup
// batch across the tier with every replica healthy.
//
// In-process followers share one machine, so the rows do NOT model real
// horizontal capacity (that comes from putting followers on separate
// hosts); what they pin is the cost side of the tier — the policy lock,
// round-robin dispatch, and the locality hit of spreading a hot working
// set over N separate read stacks. The emitted BENCH_*.json rows let the
// trajectory diff catch routing-overhead regressions per replica count.
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "interrogate/record.h"
#include "pipeline/read_side.h"
#include "pipeline/write_side.h"
#include "replicate/follower.h"
#include "replicate/group.h"
#include "serving/frontend.h"
#include "serving/replica_router.h"
#include "storage/journal.h"
#include "test_tmpdir.h"

using namespace censys;
using namespace censys::engines;

namespace {

constexpr std::uint32_t kHosts = 1024;
constexpr int kWriteRounds = 4;
constexpr std::size_t kBatch = 24'000;

storage::EventJournal::Options DurableOptions(const std::string& dir) {
  storage::EventJournal::Options options;
  options.shards = 4;
  options.wal.dir = dir;
  options.wal.segment_bytes = 256u << 10;
  return options;
}

interrogate::ServiceRecord HostRecord(IPv4Address ip, Timestamp at,
                                      int version) {
  interrogate::ServiceRecord r;
  r.key = {ip, 80, Transport::kTcp};
  r.observed_at = at;
  r.protocol = proto::Protocol::kHttp;
  r.detection = interrogate::DetectionMethod::kBatteryHandshake;
  r.handshake_validated = true;
  r.banner = "Server: nginx build v" + std::to_string(version);
  r.software = {"nginx", "nginx", "1.25.3"};
  r.html_title = "release v" + std::to_string(version);
  return r;
}

// Leader write stack + N bootstrapped, caught-up followers behind a router.
class ScaleoutRig {
 public:
  ScaleoutRig(const std::string& dir, std::size_t replicas, int router_threads)
      : journal_(DurableOptions(dir)), write_(journal_, bus_),
        group_(journal_) {
    for (int round = 1; round <= kWriteRounds; ++round) {
      for (std::uint32_t h = 1; h <= kHosts; ++h) {
        write_.IngestScan(HostRecord(IPv4Address(h),
                                     Timestamp{round * 10'000 + h}, round));
      }
    }
    std::string error;
    for (std::size_t i = 0; i < replicas; ++i) {
      group_.AddFollower("f" + std::to_string(i));
      if (!group_.BootstrapFollower(i, &error) ||
          !group_.CatchUp(i, 1'000'000, &error)) {
        std::fprintf(stderr, "replica_scaleout: follower %zu: %s\n", i,
                     error.c_str());
        std::abort();
      }
    }
    std::vector<serving::ReplicaRouter::Endpoint> endpoints;
    for (std::size_t i = 0; i < replicas; ++i) {
      const replicate::Follower& f = group_.follower(i);
      serving::ServingFrontend::Options fo;
      fo.threads = 0;  // ServeOne is inline; the router's pool parallelizes
      frontends_.push_back(std::make_unique<serving::ServingFrontend>(
          f.read_side(), f.index(), f.analytics(), fo));
      endpoints.push_back({frontends_.back().get(), &f});
    }
    serving::ReplicaRouter::Options ro;
    ro.threads = router_threads;
    router_ = std::make_unique<serving::ReplicaRouter>(
        std::move(endpoints), [this] { return group_.leader_lsn(); }, ro);
  }

  serving::ReplicaRouter& router() { return *router_; }

 private:
  storage::EventJournal journal_;
  pipeline::EventBus bus_;
  pipeline::WriteSide write_;
  replicate::ReplicationGroup group_;
  std::vector<std::unique_ptr<serving::ServingFrontend>> frontends_;
  std::unique_ptr<serving::ReplicaRouter> router_;
};

}  // namespace

int main() {
  std::printf("== Replica scale-out: router QPS vs replica count ==\n");
  std::printf("workload: %zu host lookups over %u hosts, %d write rounds, "
              "4 routing threads\n\n",
              kBatch, kHosts, kWriteRounds);

  std::vector<serving::Query> queries;
  queries.reserve(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    serving::Query q;
    q.kind = serving::Query::Kind::kLookup;
    q.ip = IPv4Address(static_cast<std::uint32_t>(i % kHosts) + 1);
    queries.push_back(q);
  }

  TablePrinter table({"Replicas", "queries/s", "stale", "shed", "vs 1"});
  double base_qps = 0.0;
  for (std::size_t replicas : {std::size_t{1}, std::size_t{2},
                               std::size_t{4}}) {
    ScaleoutRig rig(
        test::ScratchDir("replica_scaleout_" + std::to_string(replicas)),
        replicas, /*router_threads=*/4);
    rig.router().Run(queries);  // warm follower caches
    const serving::RouterReport report = rig.router().Run(queries);
    if (report.answered != queries.size()) {
      std::fprintf(stderr,
                   "replica_scaleout: only %llu/%zu answered at %zu replicas\n",
                   static_cast<unsigned long long>(report.answered),
                   queries.size(), replicas);
      return 1;
    }
    if (base_qps == 0.0) base_qps = report.qps;
    char qps_buf[64], speedup_buf[64];
    std::snprintf(qps_buf, sizeof(qps_buf), "%.0f", report.qps);
    std::snprintf(speedup_buf, sizeof(speedup_buf), "%.2fx",
                  report.qps / base_qps);
    table.AddRow({std::to_string(replicas), qps_buf,
                  std::to_string(report.stale), std::to_string(report.shed),
                  speedup_buf});
    const std::string metric =
        "router_qps_replicas" + std::to_string(replicas);
    bench::EmitBenchJson("replica_scaleout", metric.c_str(), report.qps,
                         "queries/s");
  }
  table.Print();

  std::printf(
      "\npaper (§5.3): the read tier scales horizontally by putting "
      "followers on separate machines; in this single-process rig the rows "
      "instead pin the router's fan-out overhead — all answers fresh, none "
      "shed, and the per-replica-count QPS trajectory tracked across PRs\n");
  return 0;
}
