// Reproduces Table 1: "Coverage of Services in Engines" — each engine's
// coverage, broken down by non-overlapping port ranges, over the union of
// currently active services found in all scan engines.
//
// Paper values: Censys 96/92/82, Shodan 80/40/10, Fofa 63/62/43,
// ZoomEye 82/54/26, Netlas 63/27/3 (%).
#include <array>
#include <unordered_map>
#include <unordered_set>

#include "bench_common.h"

using namespace censys;
using namespace censys::engines;

int main() {
  auto world = bench::MakeWorld("Table 1: Coverage of Services in Engines",
                                bench::BenchOptions{});

  // Union of currently-active services across engines, bucketed by port
  // range (stale entries filtered by a truth liveness check, as the paper
  // filters via follow-up scans).
  std::unordered_map<std::uint64_t, int> union_bucket;
  std::vector<ScanEngine*> engines = world->engines();
  for (ScanEngine* engine : engines) {
    engine->ForEachEntry([&](const EngineEntry& entry) {
      if (world->internet().FindService(entry.key, world->now()) == nullptr)
        return;  // stale
      const auto bucket = BucketOf(world->internet().ports(), entry.key.port);
      union_bucket.emplace(entry.key.Pack(), static_cast<int>(bucket));
    });
  }

  std::array<std::uint64_t, 3> union_sizes{};
  for (const auto& [key, bucket] : union_bucket) {
    ++union_sizes[static_cast<std::size_t>(bucket)];
  }

  TablePrinter table({"Coverage", "Censys", "Shodan", "Fofa", "ZoomEye",
                      "Netlas"});
  std::array<std::vector<std::string>, 3> rows;
  for (int b = 0; b < 3; ++b) {
    rows[static_cast<std::size_t>(b)].push_back(
        std::string(ToString(static_cast<PortBucket>(b))));
  }
  // Reorder engines to match the paper's column order.
  const std::array<const char*, 5> column_order = {"Censys", "Shodan", "Fofa",
                                                   "ZoomEye", "Netlas"};
  for (const char* name : column_order) {
    ScanEngine* engine = nullptr;
    for (ScanEngine* e : engines) {
      if (e->name() == name) engine = e;
    }
    std::unordered_set<std::uint64_t> keys;
    engine->ForEachEntry(
        [&](const EngineEntry& e) { keys.insert(e.key.Pack()); });
    std::array<std::uint64_t, 3> hits{};
    for (const auto& [key, bucket] : union_bucket) {
      if (keys.contains(key)) ++hits[static_cast<std::size_t>(bucket)];
    }
    for (int b = 0; b < 3; ++b) {
      const auto i = static_cast<std::size_t>(b);
      rows[i].push_back(union_sizes[i] == 0
                            ? "-"
                            : Percent(static_cast<double>(hits[i]) /
                                      static_cast<double>(union_sizes[i])));
    }
  }
  for (auto& row : rows) table.AddRow(std::move(row));
  table.Print();

  std::printf(
      "\nunion of active services: top10=%llu top100=%llu rest=%llu\n",
      static_cast<unsigned long long>(union_sizes[0]),
      static_cast<unsigned long long>(union_sizes[1]),
      static_cast<unsigned long long>(union_sizes[2]));
  std::printf(
      "paper (Table 1): Censys 96/92/82, Shodan 80/40/10, Fofa 63/62/43, "
      "ZoomEye 82/54/26, Netlas 63/27/3\n");
  return 0;
}
