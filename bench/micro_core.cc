// Microbenchmarks (google-benchmark) for the hot paths of the library:
// the ZMap-style permutation, SHA-256, delta encoding, journal writes,
// journal reconstruction, search queries, the simulated L4 probe path,
// the executor thread pool, the metrics instruments, and the full staged
// engine tick at several thread counts.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/executor.h"
#include "core/metrics.h"
#include "core/rng.h"
#include "core/sha256.h"
#include "engines/world.h"
#include "fingerprint/fingerprints.h"
#include "scan/cyclic.h"
#include "search/index.h"
#include "simnet/internet.h"
#include "storage/delta.h"
#include "storage/journal.h"

namespace censys {
namespace {

void BM_CyclicPermutationNext(benchmark::State& state) {
  scan::CyclicPermutation perm(1ull << 32, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(perm.Next());
  }
}
BENCHMARK(BM_CyclicPermutationNext);

void BM_Sha256(benchmark::State& state) {
  std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_XoshiroNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextU64());
  }
}
BENCHMARK(BM_XoshiroNext);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(1);
  ZipfSampler zipf(65536, 1.08);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

storage::FieldMap MakeRecord(int fields, int salt) {
  storage::FieldMap map;
  for (int i = 0; i < fields; ++i) {
    map["service.field" + std::to_string(i)] =
        "value-" + std::to_string(i * 31 + salt);
  }
  return map;
}

void BM_DeltaCompute(benchmark::State& state) {
  const auto before = MakeRecord(static_cast<int>(state.range(0)), 0);
  auto after = before;
  after["service.field1"] = "changed";
  for (auto _ : state) {
    benchmark::DoNotOptimize(storage::ComputeDelta(before, after));
  }
}
BENCHMARK(BM_DeltaCompute)->Arg(8)->Arg(32);

void BM_JournalAppend(benchmark::State& state) {
  storage::EventJournal journal;
  const core::ThreadRoleGuard role(journal.command_role());
  std::uint64_t i = 0;
  const auto base = MakeRecord(16, 0);
  for (auto _ : state) {
    auto changed = base;
    changed["counter"] = std::to_string(i);
    const std::string entity = std::to_string(i % 512);
    const storage::FieldMap* current = journal.CurrentState(entity);
    static const storage::FieldMap kEmpty;
    journal.Append(entity, storage::EventKind::kServiceChanged,
                   Timestamp{static_cast<std::int64_t>(i)},
                   storage::ComputeDelta(current ? *current : kEmpty, changed));
    ++i;
  }
}
BENCHMARK(BM_JournalAppend);

void BM_JournalReconstruct(benchmark::State& state) {
  storage::EventJournal journal;
  storage::FieldMap prev;
  for (int i = 0; i < 200; ++i) {
    auto cur = MakeRecord(16, 0);
    cur["counter"] = std::to_string(i);
    journal.Append("host", storage::EventKind::kServiceChanged,
                   Timestamp{i * 10}, storage::ComputeDelta(prev, cur));
    prev = cur;
  }
  std::int64_t t = 0;
  for (auto _ : state) {
    t = (t + 137) % 2000;
    benchmark::DoNotOptimize(journal.ReconstructAt("host", Timestamp{t}));
  }
}
BENCHMARK(BM_JournalReconstruct);

void BM_SearchIndexQuery(benchmark::State& state) {
  search::SearchIndex index;
  for (int i = 0; i < 5000; ++i) {
    storage::FieldMap doc;
    doc["service.name"] = (i % 3 == 0) ? "HTTP" : "SSH";
    doc["service.banner"] = "Server: nginx/1." + std::to_string(i % 25);
    doc["host.country"] = (i % 5 == 0) ? "US" : "DE";
    index.Index("10.0." + std::to_string(i / 256) + "." +
                    std::to_string(i % 256),
                doc);
  }
  std::string error;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Search(
        R"(service.name: "HTTP" AND host.country: "US")", &error));
  }
}
BENCHMARK(BM_SearchIndexQuery);

void BM_L4Probe(benchmark::State& state) {
  simnet::UniverseConfig cfg;
  cfg.seed = 3;
  cfg.universe_size = 1u << 18;
  cfg.target_services = 40000;
  static simnet::Internet* net = new simnet::Internet(cfg);
  static const simnet::ScannerProfile profile{1, "bench", 300.0, 1280.0};
  const simnet::ProbeContext ctx{&profile, 0};
  Rng rng(9);
  for (auto _ : state) {
    const ServiceKey key{
        IPv4Address(static_cast<std::uint32_t>(rng.NextBelow(1u << 18))),
        static_cast<Port>(rng.NextBelow(65536)), Transport::kTcp};
    benchmark::DoNotOptimize(net->L4Probe(ctx, key, Timestamp{0}));
  }
}
BENCHMARK(BM_L4Probe);

void BM_FingerprintCorpusEvaluate(benchmark::State& state) {
  const auto engine = fingerprint::FingerprintEngine::BuiltIn(2000);
  const storage::FieldMap fields = {
      {"service.name", "HTTP"},
      {"http.html_title", "Some Unremarkable Page"},
      {"service.banner", "Server: nginx/1.25.3"},
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Evaluate(fields));
  }
}
BENCHMARK(BM_FingerprintCorpusEvaluate);

// --- executor ----------------------------------------------------------------

void BM_ExecutorParallelFor(benchmark::State& state) {
  Executor executor(static_cast<int>(state.range(0)));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  std::vector<std::uint64_t> out(n);
  for (auto _ : state) {
    executor.ParallelFor(n, [&](std::size_t i) {
      // ~64 dependent hash rounds per index: the cost shape of an
      // in-memory L7 interrogation (hashing, no I/O).
      std::uint64_t h = i;
      for (int r = 0; r < 64; ++r) h = SplitMix64(h);
      out[i] = h;
    });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ExecutorParallelFor)
    ->Args({0, 4096})
    ->Args({1, 4096})
    ->Args({2, 4096})
    ->Args({4, 4096})
    ->Args({4, 64});

// --- metrics overhead --------------------------------------------------------

void BM_MetricsCounterAdd(benchmark::State& state) {
  metrics::Registry registry;
  metrics::Counter& counter = registry.GetCounter("bench.counter");
  for (auto _ : state) {
    counter.Add();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_MetricsCounterAdd);

void BM_MetricsUnboundHandleAdd(benchmark::State& state) {
  const metrics::CounterHandle handle;  // unbound: the no-metrics fast path
  for (auto _ : state) {
    handle.Add();
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_MetricsUnboundHandleAdd);

void BM_MetricsHistogramObserve(benchmark::State& state) {
  metrics::Registry registry;
  metrics::Histogram& hist = registry.GetHistogram("bench.hist");
  std::uint64_t i = 0;
  for (auto _ : state) {
    hist.Observe(static_cast<double>(i++ % 1024));
  }
  benchmark::DoNotOptimize(hist.count());
}
BENCHMARK(BM_MetricsHistogramObserve);

// --- staged engine tick ------------------------------------------------------

// Whole-pipeline throughput at different executor sizes. Each iteration is
// one 2-hour tick of a settled small world; items/sec is interrogations/sec
// (stage 3 is the parallel stage and the dominant cost).
void BM_EngineTick(benchmark::State& state) {
  engines::WorldConfig cfg;
  cfg.universe.seed = 5;
  cfg.universe.universe_size = 1u << 16;
  cfg.universe.target_services = 9000;
  cfg.universe.ics_scale = 128;
  cfg.with_alternatives = false;
  cfg.censys.threads = static_cast<int>(state.range(0));
  engines::World world(cfg);
  world.Bootstrap();
  world.RunForDays(1.0);  // settle into steady state before measuring

  std::uint64_t interrogations = 0;
  for (auto _ : state) {
    world.RunForDays(1.0 / 12.0);  // exactly one tick
    interrogations += world.censys().TickReport().interrogations;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(interrogations));
}
BENCHMARK(BM_EngineTick)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Iterations(12)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace censys

BENCHMARK_MAIN();
