// Ablation (DESIGN.md §4.4): the predictive scan engine's contribution to
// coverage beyond the priority scans and the slow background sweep — the
// trade-off §4.1 describes (more coverage, less explainability).
//
// Also covers the multi-PoP ablation (DESIGN.md §4.5): single vantage
// point vs three PoPs under fractured visibility.
#include <array>
#include <unordered_set>

#include "bench_common.h"

using namespace censys;
using namespace censys::engines;

namespace {

struct Variant {
  const char* name;
  bool predictive;
  bool background;
  int pops;
};

}  // namespace

int main() {
  std::printf("== Ablation: predictive scanning and PoP diversity ==\n\n");
  TablePrinter table({"Variant", "Top-100 cov", "Rest cov", "Overall cov",
                      "Accuracy"});

  constexpr std::array<Variant, 5> kVariants = {{
      {"full (predictive+bg, 3 PoPs)", true, true, 3},
      {"no predictive", false, true, 3},
      {"no background 65K", true, false, 3},
      {"neither (priority only)", false, false, 3},
      {"full, single PoP", true, true, 1},
  }};

  for (const Variant& variant : kVariants) {
    engines::WorldConfig cfg;
    cfg.universe.seed = 42;
    cfg.universe.universe_size = 1u << 17;
    cfg.universe.target_services = 20000;
    cfg.universe.ics_scale = 16;
    cfg.with_alternatives = false;
    cfg.censys.enable_predictive = variant.predictive;
    cfg.censys.enable_background = variant.background;
    cfg.censys.pop_count = variant.pops;

    World world(cfg);
    world.Bootstrap();
    world.RunForDays(6.0);

    std::unordered_set<std::uint64_t> keys;
    std::uint64_t tracked = 0, live = 0;
    world.censys().ForEachEntry([&](const EngineEntry& e) {
      keys.insert(e.key.Pack());
      ++tracked;
      if (world.internet().FindService(e.key, world.now()) != nullptr) ++live;
    });

    std::uint64_t top_total = 0, top_hit = 0, rest_total = 0, rest_hit = 0;
    world.internet().ForEachActiveService(
        world.now(), [&](const simnet::SimService& svc) {
          if (svc.pseudo) return;
          const bool known = keys.contains(svc.key.Pack());
          if (BucketOf(world.internet().ports(), svc.key.port) ==
              PortBucket::kRest) {
            ++rest_total;
            rest_hit += known;
          } else {
            ++top_total;
            top_hit += known;
          }
        });

    table.AddRow(
        {variant.name,
         Percent(static_cast<double>(top_hit) /
                 std::max<std::uint64_t>(1, top_total)),
         Percent(static_cast<double>(rest_hit) /
                 std::max<std::uint64_t>(1, rest_total)),
         Percent(static_cast<double>(top_hit + rest_hit) /
                 std::max<std::uint64_t>(1, top_total + rest_total)),
         Percent(static_cast<double>(live) /
                 std::max<std::uint64_t>(1, tracked))});
  }
  table.Print();
  std::printf(
      "\nexpected: background sweep and predictive engine matter only off "
      "the top ports (the 'Rest' column); removing either cuts all-port "
      "coverage, removing both collapses it (§4.1, §9 'predictive "
      "approaches do not find most services'); a single PoP loses a few "
      "points everywhere (§4.5)\n");
  return 0;
}
