// Reproduces Figure 4 (Appendix B): "Service Population by Port" — from a
// sampled scan of all ports, port popularity follows a smoothly decaying
// distribution with no cut-off between "popular" and "unpopular" ports.
#include <algorithm>
#include <map>
#include <vector>

#include "bench_common.h"

using namespace censys;
using namespace censys::engines;

int main() {
  bench::BenchOptions opts;
  opts.run_days = 0.0;  // population shape needs no engine activity
  opts.with_alternatives = false;
  auto world = bench::MakeWorld("Figure 4: Service Population by Port", opts);

  const GroundTruthSample gt =
      SubsampledScan(world->internet(), world->now(), 1.0, 4);
  std::map<Port, std::uint64_t> per_port;
  for (const simnet::SimService& svc : gt.services) ++per_port[svc.key.port];

  std::vector<std::pair<std::uint64_t, Port>> ranked;
  for (const auto& [port, count] : per_port) ranked.emplace_back(count, port);
  std::sort(ranked.rbegin(), ranked.rend());

  TablePrinter table({"Rank", "Port", "Services", "Share", "CumShare"});
  const std::uint64_t total = gt.services.size();
  std::uint64_t cumulative = 0;
  std::size_t next_row = 0;
  const std::vector<std::size_t> show = {0,  1,  2,  3,  4,   5,   6,   7,
                                         8,  9,  14, 19, 29,  49,  99,  199,
                                         499, 999, 1999, 4999, 9999};
  for (std::size_t rank = 0; rank < ranked.size(); ++rank) {
    cumulative += ranked[rank].first;
    if (next_row < show.size() && rank == show[next_row]) {
      ++next_row;
      table.AddRow({std::to_string(rank + 1),
                    std::to_string(ranked[rank].second),
                    std::to_string(ranked[rank].first),
                    Percent(static_cast<double>(ranked[rank].first) /
                                static_cast<double>(total),
                            2),
                    Percent(static_cast<double>(cumulative) /
                                static_cast<double>(total),
                            1)});
    }
  }
  table.Print();

  std::printf("\ndistinct responsive ports: %zu; sampled services: %llu\n",
              ranked.size(), static_cast<unsigned long long>(total));

  // Smooth-decay check: the count ratio between adjacent log-spaced ranks
  // should fall gradually, with no knee.
  std::printf("decay ratios (count[rank]/count[2*rank]): ");
  for (std::size_t rank : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    if (2 * rank - 1 < ranked.size() && ranked[2 * rank - 1].first > 0) {
      std::printf("r%zu=%.2f ", rank,
                  static_cast<double>(ranked[rank - 1].first) /
                      static_cast<double>(ranked[2 * rank - 1].first));
    }
  }
  std::printf(
      "\npaper (Figure 4 / Appendix B): smoothly decaying distribution; no "
      "cut-off divides popular from unpopular ports\n");
  return 0;
}
