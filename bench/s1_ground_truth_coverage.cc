// Reproduces the §6.2 ground-truth coverage claims and the §4.1 scan-engine
// operating statistics: "we estimate that Censys sees 98% of IPv4 services
// on the top 10 ports, 97% of the top 100, and 62% of services across all
// 65K ports", and the probe/service throughput shape of the scan engine.
#include <array>
#include <memory>
#include <unordered_set>

#include "bench_common.h"
#include "web/attach.h"

using namespace censys;
using namespace censys::engines;

int main() {
  std::unique_ptr<web::WebPropertyCatalog> catalog;
  auto world = bench::MakeWorld(
      "S1: Censys coverage of sub-sampled 65K ground truth + engine stats",
      bench::BenchOptions{},
      [&](World& w) { catalog = web::AttachCatalog(w.censys()); });

  const GroundTruthSample gt =
      SubsampledScan(world->internet(), world->now(), 0.6, 5);
  std::printf("ground truth sample: %zu services (%zu pseudo filtered)\n\n",
              gt.services.size(), gt.pseudo_filtered);

  std::unordered_set<std::uint64_t> censys_keys;
  world->censys().ForEachEntry(
      [&](const EngineEntry& e) { censys_keys.insert(e.key.Pack()); });

  std::array<std::uint64_t, 3> total{}, hit{};
  for (const simnet::SimService& svc : gt.services) {
    const auto bucket =
        static_cast<std::size_t>(BucketOf(world->internet().ports(),
                                          svc.key.port));
    ++total[bucket];
    hit[bucket] += censys_keys.contains(svc.key.Pack());
  }

  TablePrinter table({"Port range", "GT services", "Censys coverage",
                      "paper"});
  const std::array<const char*, 3> paper = {"98%", "97%", "62%"};
  for (int b = 0; b < 3; ++b) {
    const auto i = static_cast<std::size_t>(b);
    table.AddRow({std::string(ToString(static_cast<PortBucket>(b))),
                  std::to_string(total[i]),
                  Percent(static_cast<double>(hit[i]) /
                          static_cast<double>(std::max<std::uint64_t>(
                              1, total[i]))),
                  paper[i]});
  }
  table.Print();

  // §4.1 scan-engine statistics (scaled to the simulated universe).
  const double sim_days = (world->now() - Timestamp{0}).ToDays();
  const double probes = static_cast<double>(world->censys().probes_sent());
  const double universe =
      static_cast<double>(world->internet().blocks().universe_size());
  std::printf("\nscan engine stats over %.1f simulated days:\n", sim_days);
  std::printf("  probes sent: %.3g (%.0f probes/IP/day)\n", probes,
              probes / universe / sim_days);
  std::printf("  tracked services: %zu; evicted: %llu; pruned re-injection "
              "pool: %zu\n",
              world->censys().write_side().tracked_count(),
              static_cast<unsigned long long>(
                  world->censys().write_side().services_evicted()),
              world->censys().write_side().RecentlyPruned(world->now()).size());
  const auto& predictor = world->censys().predictor_stats();
  std::printf("  predictive engine: %llu observations, %llu candidates "
              "(%llu affinity, %llu co-occurrence)\n",
              static_cast<unsigned long long>(predictor.observations),
              static_cast<unsigned long long>(predictor.candidates_emitted),
              static_cast<unsigned long long>(predictor.affinity_candidates),
              static_cast<unsigned long long>(
                  predictor.cooccurrence_candidates));
  std::printf("  journal: %llu events, %llu snapshots, delta bytes %llu "
              "(full-record equivalent %llu, %.1fx saving)\n",
              static_cast<unsigned long long>(
                  world->censys().journal().event_count()),
              static_cast<unsigned long long>(
                  world->censys().journal().snapshot_count()),
              static_cast<unsigned long long>(
                  world->censys().journal().delta_bytes()),
              static_cast<unsigned long long>(
                  world->censys().journal().full_record_bytes_equivalent()),
              static_cast<double>(
                  world->censys().journal().full_record_bytes_equivalent()) /
                  static_cast<double>(std::max<std::uint64_t>(
                      1, world->censys().journal().delta_bytes())));
  std::printf("  web properties: %zu catalogued, %zu reachable\n",
              catalog->size(), catalog->reachable_count());
  std::printf(
      "\npaper (§4.1/§6.2): 26.5M probes/s over 4B IPs = ~576 probes/IP/day; "
      "coverage 98/97/62%% by port range; dataset underestimates the "
      "Internet because pruning is more aggressive than discovery\n");
  return 0;
}
