// Reproduces Table 2: "Coverage of Current IPv4 Services" — self-reported
// counts, estimated accuracy (liveness-validated via follow-up scans of
// services returned for random IPs), estimated uniqueness, and the
// resulting estimate of accurately-covered current services.
//
// Paper values:            Censys  Shodan  Fofa  ZoomEye  Netlas
//   Self-Reported           794M    810M   3.1B   3.5B     877M
//   Est. % Accurate          92%     68%    20%    10%      49%
//   Est. % Unique           100%    100%    65%    99%      63%
//   Est. # Accurate         730M    550M   403M   346M     270M
#include <array>

#include "bench_common.h"
#include "core/rng.h"
#include "core/strings.h"

using namespace censys;
using namespace censys::engines;

int main() {
  auto world = bench::MakeWorld("Table 2: Coverage of Current IPv4 Services",
                                bench::BenchOptions{});

  const std::array<const char*, 5> order = {"Censys", "Shodan", "Fofa",
                                            "ZoomEye", "Netlas"};
  struct Row {
    std::uint64_t self_reported = 0;
    double accurate = 0;
    double unique = 0;
  };
  std::array<Row, 5> rows;

  // §6.1 methodology: query engines for random IP addresses, then conduct
  // follow-up scans of the returned services. We sample until each engine
  // has yielded a solid number of services (Appendix C: estimates converge
  // after ~50; we gather far more).
  Rng rng(7);
  const std::uint32_t universe = world->internet().blocks().universe_size();

  for (std::size_t i = 0; i < order.size(); ++i) {
    ScanEngine* engine = nullptr;
    for (ScanEngine* e : world->engines()) {
      if (e->name() == order[i]) engine = e;
    }
    rows[i].self_reported = engine->SelfReportedCount();
    const std::uint64_t unique_entries = UniqueCount(*engine);
    rows[i].unique = rows[i].self_reported == 0
                         ? 1.0
                         : static_cast<double>(unique_entries) /
                               static_cast<double>(rows[i].self_reported);

    std::uint64_t returned = 0, live = 0;
    Rng ip_rng = rng.Fork(i);
    for (int probe = 0; probe < 200000 && returned < 3000; ++probe) {
      const IPv4Address ip(
          static_cast<std::uint32_t>(ip_rng.NextBelow(universe)));
      for (const EngineEntry& entry : engine->QueryHost(ip)) {
        ++returned;
        if (ValidateLive(world->internet(), entry.key, world->now())) ++live;
      }
    }
    rows[i].accurate =
        returned == 0 ? 0.0
                      : static_cast<double>(live) / static_cast<double>(returned);
  }

  TablePrinter table(
      {"", "Censys", "Shodan", "Fofa", "ZoomEye", "Netlas"});
  std::vector<std::string> self{"Self-Reported"}, acc{"Est. % Accurate"},
      uniq{"Est. % Unique"}, est{"Est. # Accurate"};
  for (const Row& row : rows) {
    self.push_back(HumanCount(row.self_reported));
    acc.push_back(Percent(row.accurate));
    uniq.push_back(Percent(row.unique));
    est.push_back(HumanCount(static_cast<std::uint64_t>(
        static_cast<double>(row.self_reported) * row.unique * row.accurate)));
  }
  table.AddRow(std::move(self));
  table.AddRow(std::move(acc));
  table.AddRow(std::move(uniq));
  table.AddRow(std::move(est));
  table.Print();

  std::printf(
      "\npaper (Table 2): accuracy ranking Censys(92%%) > Shodan(68%%) > "
      "Netlas(49%%) > Fofa(20%%) > ZoomEye(10%%); Censys highest Est. # "
      "Accurate\n");
  return 0;
}
