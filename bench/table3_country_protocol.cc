// Reproduces Table 3: "Country and Protocol Coverage" — each engine's
// coverage of the sub-sampled 65K-port ground-truth scan, split by host
// country (US / CN / DE) and by protocol (HTTP / HTTPS / SSH).
//
// Paper shape: Censys leads every row; the country a scanner is
// headquartered in does not imply better coverage of that region.
#include <array>
#include <map>
#include <set>
#include <unordered_set>

#include "bench_common.h"

using namespace censys;
using namespace censys::engines;

int main() {
  auto world = bench::MakeWorld("Table 3: Country and Protocol Coverage",
                                bench::BenchOptions{});

  const GroundTruthSample gt =
      SubsampledScan(world->internet(), world->now(), 0.6, 99);

  // Category -> reference hosts (Table 3 counts hosts, not services: a
  // host is covered if the engine knows any of its services).
  std::map<std::string, std::set<std::uint32_t>> categories;
  for (const simnet::SimService& svc : gt.services) {
    const simnet::NetworkBlock& block =
        world->internet().blocks().BlockOf(svc.key.ip);
    const std::string country(simnet::ToString(block.country));
    if (country == "US" || country == "CN" || country == "DE") {
      categories[country].insert(svc.key.ip.value());
    }
    if (svc.protocol == proto::Protocol::kHttp ||
        svc.protocol == proto::Protocol::kHttps ||
        svc.protocol == proto::Protocol::kSsh) {
      categories[std::string(proto::Name(svc.protocol))].insert(
          svc.key.ip.value());
    }
  }

  const std::array<const char*, 5> order = {"Censys", "Shodan", "ZoomEye",
                                            "Fofa", "Netlas"};
  std::map<std::string, std::unordered_set<std::uint32_t>> engine_hosts;
  for (ScanEngine* engine : world->engines()) {
    auto& hosts = engine_hosts[std::string(engine->name())];
    engine->ForEachEntry(
        [&](const EngineEntry& e) { hosts.insert(e.key.ip.value()); });
  }

  TablePrinter table({"Category", "Hosts", "Censys", "Shodan", "ZoomEye",
                      "Fofa", "Netlas"});
  const std::array<const char*, 6> row_order = {"US",   "CN",    "DE",
                                                "HTTP", "HTTPS", "SSH"};
  for (const char* category : row_order) {
    const auto& reference = categories[category];
    std::vector<std::string> row{
        category, "(" + std::to_string(reference.size()) + ")"};
    for (const char* name : order) {
      const auto& hosts = engine_hosts[name];
      std::size_t hit = 0;
      for (std::uint32_t ip : reference) {
        if (hosts.contains(ip)) ++hit;
      }
      row.push_back(reference.empty()
                        ? "-"
                        : Percent(static_cast<double>(hit) /
                                  static_cast<double>(reference.size())));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  std::printf(
      "\npaper (Table 3): Censys US 86%% CN 93%% DE 85%%, HTTP 95%% HTTPS "
      "92%% SSH 95%%; no scanner does best in its home country\n");
  return 0;
}
