// Storage-cost harness (§5.2): delta-encoded journaling, snapshot overhead,
// SSD/HDD tier split, and the growth rate that corresponds to the paper's
// "Censys adds around 500 TB of data per year, post delta encoding and
// compression" at Internet scale.
#include "bench_common.h"
#include "core/strings.h"
#include "search/export.h"

using namespace censys;
using namespace censys::engines;

int main() {
  bench::BenchOptions opts;
  opts.run_days = 8.0;
  opts.with_alternatives = false;
  auto world = bench::MakeWorld("Storage growth and tiering (§5.2)", opts);

  const auto& journal = world->censys().journal();
  const double sim_days = (world->now() - Timestamp{0}).ToDays();
  const double tracked =
      static_cast<double>(world->censys().write_side().tracked_count());

  TablePrinter table({"Metric", "Value"});
  table.AddRow({"journal events", std::to_string(journal.event_count())});
  table.AddRow({"snapshots", std::to_string(journal.snapshot_count())});
  table.AddRow({"delta bytes journaled", HumanCount(journal.delta_bytes())});
  table.AddRow({"full-record equivalent",
                HumanCount(journal.full_record_bytes_equivalent())});
  const double saving =
      static_cast<double>(journal.full_record_bytes_equivalent()) /
      static_cast<double>(std::max<std::uint64_t>(1, journal.delta_bytes()));
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2fx", saving);
  table.AddRow({"delta-encoding saving", buf});
  table.AddRow({"SSD-resident bytes",
                HumanCount(journal.bytes_on(storage::Tier::kSsd))});
  table.AddRow({"HDD-resident bytes",
                HumanCount(journal.bytes_on(storage::Tier::kHdd))});

  // Growth rate per tracked service per day, and its projection to the
  // paper's scale (794M services).
  const double bytes_per_service_day =
      static_cast<double>(journal.total_bytes()) / tracked / sim_days;
  std::snprintf(buf, sizeof(buf), "%.1f", bytes_per_service_day);
  table.AddRow({"journal bytes/service/day", buf});
  const double projected_tb_year =
      bytes_per_service_day * 794e6 * 365.0 / 1e12;
  std::snprintf(buf, sizeof(buf), "%.0f TB/yr", projected_tb_year);
  table.AddRow({"projected at 794M services", buf});

  // Raw-download snapshot size (§5.3): one full daily export.
  search::SnapshotWriter writer(world->now().minutes / 1440, "hosts");
  journal.ForEachEntity(
      [&](std::string_view entity, const storage::FieldMap& fields) {
        if (!fields.empty()) {
          writer.Append(search::ExportRecord{std::string(entity), fields});
        }
      });
  const std::string snapshot = writer.Finish();
  table.AddRow({"daily raw snapshot size", HumanCount(snapshot.size())});
  table.AddRow({"snapshot records", std::to_string(writer.record_count())});
  table.Print();

  std::printf(
      "\npaper (§5.2): delta encoding stores only differences; history "
      "migrates to HDD behind the latest snapshot; ~500 TB/yr at production "
      "scale (our projection lands within the same order of magnitude "
      "without modeling compression)\n");
  return 0;
}
