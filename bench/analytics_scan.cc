// Columnar aggregation throughput vs the snapshot-walk it replaces
// (DESIGN.md §12). Both paths compute the same group-count semantics over
// the same universe — the bench cross-checks the group maps byte-for-byte
// before timing anything — so the emitted speedup is pure representation:
// dictionary+RLE column runs against a full walk of every entity's field
// map. The PR 10 acceptance bar is a >=10x suffix-sweep speedup.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

#include "bench_common.h"
#include "core/clock.h"
#include "query/columnar.h"

using namespace censys;
using namespace censys::bench;

namespace {

struct Measured {
  double rows_per_s = 0;
  double ms_per_scan = 0;
};

// Runs `scan` until both the iteration floor and the wall floor are met;
// rates are nominal universe rows per wall second.
Measured MeasureScans(const std::function<query::AnalyticsTier::Aggregate()>&
                          scan,
                      int min_iters, double min_secs) {
  const std::uint64_t rows_per_scan = scan().rows;  // warm-up
  const WallTimer timer;
  std::uint64_t rows = 0;
  int iters = 0;
  while (iters < min_iters || timer.ElapsedMicros() < min_secs * 1e6) {
    rows += scan().rows;
    ++iters;
  }
  const double secs = timer.ElapsedMicros() / 1e6;
  Measured m;
  m.rows_per_s = secs > 0 ? static_cast<double>(rows) / secs : 0;
  m.ms_per_scan = iters > 0 ? secs * 1000.0 / iters : 0;
  (void)rows_per_scan;
  return m;
}

void RequireEqualGroups(const query::AnalyticsTier::Aggregate& a,
                        const query::AnalyticsTier::Aggregate& b,
                        const char* what) {
  if (a.groups != b.groups || a.rows != b.rows) {
    std::fprintf(stderr,
                 "analytics_scan: %s: segment and walk disagree "
                 "(%zu vs %zu groups, %llu vs %llu rows)\n",
                 what, a.groups.size(), b.groups.size(),
                 static_cast<unsigned long long>(a.rows),
                 static_cast<unsigned long long>(b.rows));
    std::abort();
  }
}

}  // namespace

int main() {
  BenchOptions opts;
  opts.with_alternatives = false;
  opts.run_days = 2.0;
  const auto world = MakeWorld("analytics_scan", opts);
  const storage::EventJournal& journal = world->censys().journal();

  query::AnalyticsTier tier(journal, {});
  const std::int64_t day = world->now().minutes / (24 * 60);
  const WallTimer build_timer;
  std::string error;
  if (!tier.BuildDay(day, &error)) {
    std::fprintf(stderr, "analytics_scan: BuildDay: %s\n", error.c_str());
    return 1;
  }
  const double build_ms = build_timer.ElapsedMicros() / 1000.0;

  const std::string suffix = ".service.name";
  const std::string field = "svc.443/tcp.service.name";

  // Same answer on both paths before any timing.
  const auto seg_suffix = tier.GroupCountSuffix(day, suffix);
  const auto walk_suffix = tier.WalkJournalSuffix(suffix);
  RequireEqualGroups(seg_suffix, walk_suffix, "suffix sweep");
  const auto seg_field = tier.GroupCount(day, field);
  const auto walk_field = tier.WalkJournal(field);
  RequireEqualGroups(seg_field, walk_field, "exact field");

  const Measured walk_sfx = MeasureScans(
      [&] { return tier.WalkJournalSuffix(suffix); }, 3, 0.4);
  const Measured seg_sfx = MeasureScans(
      [&] { return tier.GroupCountSuffix(day, suffix); }, 30, 0.4);
  const Measured walk_fld = MeasureScans(
      [&] { return tier.WalkJournal(field); }, 3, 0.4);
  const Measured seg_fld = MeasureScans(
      [&] { return tier.GroupCount(day, field); }, 30, 0.4);

  const double suffix_speedup = walk_sfx.rows_per_s > 0
                                    ? seg_sfx.rows_per_s / walk_sfx.rows_per_s
                                    : 0;
  const double field_speedup = walk_fld.rows_per_s > 0
                                   ? seg_fld.rows_per_s / walk_fld.rows_per_s
                                   : 0;

  std::printf("universe rows:          %llu (day %lld, %zu groups in %s)\n",
              static_cast<unsigned long long>(seg_suffix.rows),
              static_cast<long long>(day), seg_suffix.groups.size(),
              suffix.c_str());
  std::printf("segment build:          %.2f ms\n\n", build_ms);
  std::printf("%-28s %14s %14s\n", "sweep", "rows/s", "ms/scan");
  std::printf("%-28s %14.3g %14.3f\n", "walk  suffix .service.name",
              walk_sfx.rows_per_s, walk_sfx.ms_per_scan);
  std::printf("%-28s %14.3g %14.3f\n", "seg   suffix .service.name",
              seg_sfx.rows_per_s, seg_sfx.ms_per_scan);
  std::printf("%-28s %14.3g %14.3f\n", "walk  field 443/tcp",
              walk_fld.rows_per_s, walk_fld.ms_per_scan);
  std::printf("%-28s %14.3g %14.3f\n", "seg   field 443/tcp",
              seg_fld.rows_per_s, seg_fld.ms_per_scan);
  std::printf("\nsuffix speedup: %.1fx   exact-field speedup: %.1fx "
              "(acceptance floor: 10x)\n",
              suffix_speedup, field_speedup);

  EmitBenchJson("analytics_scan", "build_ms", build_ms, "ms");
  EmitBenchJson("analytics_scan", "walk_suffix_rows_per_s",
                walk_sfx.rows_per_s, "items/s");
  EmitBenchJson("analytics_scan", "segment_suffix_rows_per_s",
                seg_sfx.rows_per_s, "items/s");
  EmitBenchJson("analytics_scan", "walk_field_rows_per_s",
                walk_fld.rows_per_s, "items/s");
  EmitBenchJson("analytics_scan", "segment_field_rows_per_s",
                seg_fld.rows_per_s, "items/s");
  EmitBenchJson("analytics_scan", "suffix_speedup_x", suffix_speedup, "x");
  EmitBenchJson("analytics_scan", "field_speedup_x", field_speedup, "x");

  if (suffix_speedup < 10.0) {
    std::fprintf(stderr,
                 "analytics_scan: suffix speedup %.1fx below the 10x "
                 "acceptance floor\n",
                 suffix_speedup);
    return 1;
  }
  return 0;
}
