// Reproduces Figure 2: "Service Data Freshness" — the distribution of the
// last-scanned age of services returned by each engine.
//
// Paper shape: 100% of Censys services scanned within 48 h; Shodan next
// freshest (days-weeks); Netlas ~a month; Fofa months; ZoomEye has entries
// more than three years old. "There is perfect rank-order correlation
// between accuracy and data freshness."
#include <algorithm>
#include <array>
#include <vector>

#include "bench_common.h"

using namespace censys;
using namespace censys::engines;

int main() {
  auto world = bench::MakeWorld("Figure 2: Service Data Freshness",
                                bench::BenchOptions{});

  const std::array<double, 7> checkpoints_days = {1, 2, 7, 14, 30, 180, 1095};
  TablePrinter table({"Engine", "<24h", "<48h", "<7d", "<14d", "<30d",
                      "<180d", "<3y", "median-age"});

  const std::array<const char*, 5> order = {"Censys", "Shodan", "Netlas",
                                            "Fofa", "ZoomEye"};
  for (const char* name : order) {
    ScanEngine* engine = nullptr;
    for (ScanEngine* e : world->engines()) {
      if (e->name() == name) engine = e;
    }
    std::vector<double> ages_days;
    engine->ForEachEntry([&](const EngineEntry& entry) {
      ages_days.push_back((world->now() - entry.last_scanned).ToDays());
    });
    std::sort(ages_days.begin(), ages_days.end());

    std::vector<std::string> row{std::string(name)};
    for (double checkpoint : checkpoints_days) {
      const auto within = std::upper_bound(ages_days.begin(), ages_days.end(),
                                           checkpoint) -
                          ages_days.begin();
      row.push_back(Percent(static_cast<double>(within) /
                            static_cast<double>(ages_days.size())));
    }
    const double median = ages_days[ages_days.size() / 2];
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1fd", median);
    row.push_back(buf);
    table.AddRow(std::move(row));
  }
  table.Print();

  std::printf(
      "\npaper (Figure 2): Censys 100%% within 48h; freshness order "
      "Censys > Shodan > Netlas > Fofa > ZoomEye (ZoomEye tail >3 years); "
      "freshness rank-order matches accuracy rank-order (Table 2)\n");
  return 0;
}
