// Reproduces Table 4: "ICS Coverage" — the self-reported (Rep.) and
// handshake-validated (Acc.) number of services running each industrial
// control protocol, per engine.
//
// Paper shape: Censys' Rep. is close to its Acc. for every protocol
// (handshake-validated labeling) and Censys leads on everything except
// CODESYS; Shodan over-reports ATG/CODESYS/EIP/WDBRPC by orders of
// magnitude due to keyword labeling; ZoomEye and Fofa over-report several;
// Netlas reports only S7.
#include <array>

#include "bench_common.h"

using namespace censys;
using namespace censys::engines;

int main() {
  bench::BenchOptions opts;
  opts.ics_scale = 512.0;  // enough control systems at 1/16384 universe scale
  opts.services = 40000;
  auto world = bench::MakeWorld("Table 4: ICS Coverage", opts);

  const std::array<const char*, 5> order = {"Censys", "Shodan", "ZoomEye",
                                            "Fofa", "Netlas"};
  TablePrinter table({"Protocol", "Censys A/R", "Shodan A/R", "ZoomEye A/R",
                      "Fofa A/R", "Netlas A/R"});

  for (proto::Protocol protocol : proto::IcsProtocols()) {
    std::vector<std::string> row{std::string(proto::Name(protocol))};
    for (const char* name : order) {
      ScanEngine* engine = nullptr;
      for (ScanEngine* e : world->engines()) {
        if (e->name() == name) engine = e;
      }
      if (!engine->SupportsProtocolQuery(protocol)) {
        row.push_back("-");
        continue;
      }
      std::vector<EngineEntry> reported;
      if (auto* alt = dynamic_cast<AltEngine*>(engine)) {
        reported = alt->QueryProtocol(protocol);  // includes keyword misfires
      } else {
        reported = engine->QueryProtocol(protocol);
      }
      std::size_t accurate = 0;
      for (const EngineEntry& entry : reported) {
        if (ValidateProtocol(world->internet(), entry.key, protocol,
                             world->now())) {
          ++accurate;
        }
      }
      row.push_back(std::to_string(accurate) + "/" +
                    std::to_string(reported.size()));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  std::printf(
      "\npaper (Table 4): Censys validated counts highest for all but "
      "CODESYS; Shodan reported/validated ratio >50x for ATG, CODESYS, EIP, "
      "WDBRPC; Netlas reports only S7\n");
  return 0;
}
