// Ablation (DESIGN.md §4.2): two-phase scanning vs publishing raw L4 hits.
//
// "Since L4 responsiveness does not reliably indicate the presence of an
// actual service, we do not directly publish L4 scan data" (§4.1). This
// harness runs Censys once with the full L7 validation phase and once as a
// naive pipeline that publishes every L4 responder labeled by port
// assumption, then measures label accuracy and pseudo-service pollution.
#include <unordered_set>

#include "bench_common.h"

using namespace censys;
using namespace censys::engines;

namespace {

struct Outcome {
  std::uint64_t entries = 0;
  std::uint64_t correct_label = 0;
  std::uint64_t wrong_label = 0;
  std::uint64_t phantom = 0;       // no live service behind the entry
  std::uint64_t pseudo_noise = 0;  // entries on middlebox hosts
};

Outcome Measure(World& world) {
  Outcome outcome;
  std::uint64_t sampled = 0;
  world.censys().ForEachEntry([&](const EngineEntry& entry) {
    ++outcome.entries;
    if (sampled >= 6000) return;
    ++sampled;
    if (world.internet().IsPseudoHost(entry.key.ip)) {
      ++outcome.pseudo_noise;
      return;
    }
    const simnet::SimService* svc =
        world.internet().FindService(entry.key, world.now());
    if (svc == nullptr) {
      ++outcome.phantom;
    } else if (svc->protocol == entry.label) {
      ++outcome.correct_label;
    } else {
      ++outcome.wrong_label;
    }
  });
  return outcome;
}

}  // namespace

int main() {
  std::printf("== Ablation: two-phase L7 validation vs raw L4 publishing ==\n\n");
  TablePrinter table({"Pipeline", "Entries", "Correct label", "Wrong label",
                      "Dead entries", "Middlebox noise"});

  for (const bool two_phase : {true, false}) {
    engines::WorldConfig cfg;
    cfg.universe.seed = 42;
    cfg.universe.universe_size = 1u << 17;
    cfg.universe.target_services = 20000;
    cfg.universe.ics_scale = 16;
    cfg.universe.pseudo_host_fraction = 0.004;
    cfg.with_alternatives = false;
    cfg.censys.two_phase_validation = two_phase;
    // A pipeline without L7 data has no service content to build the
    // pseudo-service filter from.
    cfg.censys.write_options.filter_pseudo_services = two_phase;
    // Both variants discover from scratch so the publishing policy is the
    // only difference.
    cfg.censys.warm_start = false;

    World world(cfg);
    world.Bootstrap();
    world.RunForDays(5.0);
    const Outcome outcome = Measure(world);

    const double denom = static_cast<double>(
        outcome.correct_label + outcome.wrong_label + outcome.phantom +
        outcome.pseudo_noise);
    table.AddRow({two_phase ? "two-phase (L4 -> L7 validate)"
                            : "naive (publish L4, port label)",
                  std::to_string(outcome.entries),
                  Percent(outcome.correct_label / denom),
                  Percent(outcome.wrong_label / denom),
                  Percent(outcome.phantom / denom),
                  Percent(outcome.pseudo_noise / denom)});
  }
  table.Print();
  std::printf(
      "\nexpected: the naive pipeline mislabels diffused services (wrong "
      "port assumption), keeps unvalidated middlebox noise, and matches the "
      "keyword-labeling failure mode of Table 4; two-phase trades a little "
      "volume for label correctness (§4.1, §6.3)\n");
  return 0;
}
