// Reproduces Figure 5 (Appendix C): "Sampling Services to Determine
// Scanning Engine Coverage" — the freshness/accuracy estimate for an
// engine converges after sampling only ~50 services from random IPs.
#include <array>
#include <cmath>
#include <vector>

#include "bench_common.h"
#include "core/rng.h"

using namespace censys;
using namespace censys::engines;

int main() {
  bench::BenchOptions opts;
  opts.run_days = 4.0;
  auto world = bench::MakeWorld(
      "Figure 5: Sample Size vs Estimate Convergence", opts);

  // Gather a large pool of (entry, live?) observations for one engine via
  // the random-IP methodology, then subsample it at increasing sizes.
  AltEngine* shodan = world->alternative("Shodan");
  Rng rng(31337);
  const std::uint32_t universe = world->internet().blocks().universe_size();
  std::vector<bool> observations;
  while (observations.size() < 5000) {
    const IPv4Address ip(static_cast<std::uint32_t>(rng.NextBelow(universe)));
    for (const EngineEntry& entry : shodan->QueryHost(ip)) {
      observations.push_back(
          ValidateLive(world->internet(), entry.key, world->now()));
    }
  }
  double truth = 0;
  for (bool live : observations) truth += live;
  truth /= static_cast<double>(observations.size());

  TablePrinter table({"Sample size", "Mean estimate", "Std dev",
                      "|bias| vs full"});
  constexpr std::array<std::size_t, 8> kSizes = {5, 10, 20, 50, 100,
                                                 200, 500, 1000};
  constexpr int kTrials = 40;
  for (std::size_t n : kSizes) {
    double sum = 0, sum_sq = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng trial_rng = rng.Fork(static_cast<std::uint64_t>(trial) * 1000 + n);
      double live = 0;
      for (std::size_t i = 0; i < n; ++i) {
        live += observations[trial_rng.NextBelow(observations.size())];
      }
      const double estimate = live / static_cast<double>(n);
      sum += estimate;
      sum_sq += estimate * estimate;
    }
    const double mean = sum / kTrials;
    const double var = std::max(0.0, sum_sq / kTrials - mean * mean);
    char mean_buf[32], sd_buf[32], bias_buf[32];
    std::snprintf(mean_buf, sizeof(mean_buf), "%.1f%%", mean * 100);
    std::snprintf(sd_buf, sizeof(sd_buf), "%.1f%%", std::sqrt(var) * 100);
    std::snprintf(bias_buf, sizeof(bias_buf), "%.1f%%",
                  std::fabs(mean - truth) * 100);
    table.AddRow({std::to_string(n), mean_buf, sd_buf, bias_buf});
  }
  table.Print();

  std::printf("\nfull-pool estimate: %.1f%% (%zu observations)\n",
              truth * 100, observations.size());
  std::printf(
      "paper (Figure 5 / Appendix C): sampling at least 50 services is "
      "sufficient to reach asymptotic behaviour of the freshness estimate\n");
  return 0;
}
