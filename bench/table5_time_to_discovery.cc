// Reproduces Table 5: "Time To Discovery" — honeypots are deployed on
// cloud addresses with staggered creation times; we measure the hours
// until Censys and Shodan first complete a connection to each listener.
//
// Paper: Censys finds honeypots in 12.3 h mean (5.7 h median); Shodan in
// 76.5 h mean (60.9 h median); Shodan never finds 500/HTTP or 60000/HTTP;
// Censys finds 500/HTTP slowly (75.5 h mean) since no daily scan covers it.
#include <algorithm>
#include <array>
#include <vector>

#include "bench_common.h"
#include "core/rng.h"

using namespace censys;
using namespace censys::engines;

namespace {

struct Listener {
  Port port;
  proto::Protocol protocol;
  const char* label;
};

constexpr std::array<Listener, 13> kListeners = {{
    {80, proto::Protocol::kHttp, "80/HTTP"},
    {443, proto::Protocol::kHttps, "443/HTTPS"},
    {161, proto::Protocol::kSnmp, "161/SNMP"},
    {3389, proto::Protocol::kRdp, "3389/RDP"},
    {21, proto::Protocol::kFtp, "21/FTP"},
    {2082, proto::Protocol::kHttp, "2082/HTTP"},
    {3306, proto::Protocol::kMysql, "3306/MYSQL"},
    {2222, proto::Protocol::kSsh, "2222/SSH"},
    {23, proto::Protocol::kTelnet, "23/TELNET"},
    {5060, proto::Protocol::kSip, "5060/SIP"},
    {7547, proto::Protocol::kHttp, "7547/HTTP"},
    {60000, proto::Protocol::kHttp, "60000/HTTP"},
    {500, proto::Protocol::kHttp, "500/HTTP"},
}};

struct Stats {
  double mean = 0;
  double median = 0;
  std::size_t found = 0;
};

Stats Summarize(std::vector<double>& hours) {
  Stats s;
  s.found = hours.size();
  if (hours.empty()) return s;
  double sum = 0;
  for (double h : hours) sum += h;
  s.mean = sum / static_cast<double>(hours.size());
  std::sort(hours.begin(), hours.end());
  s.median = hours[hours.size() / 2];
  return s;
}

}  // namespace

int main() {
  // Build the world but run the clock manually: honeypots deploy while the
  // simulation is live, staggered every eight hours (§6.4).
  bench::BenchOptions opts;
  opts.run_days = 0.0;  // we drive the clock below
  auto world =
      bench::MakeWorld("Table 5: Time To Discovery (honeypots)", opts);

  constexpr int kHoneypots = 100;
  Rng rng(2024);
  std::vector<IPv4Address> honeypots;
  std::vector<Timestamp> births;

  // Deploy 4 honeypots every 8 hours across ~8 days, running the world
  // between deployments.
  int deployed = 0;
  while (deployed < kHoneypots) {
    world->RunUntil(world->now() + Duration::Hours(8));
    for (int i = 0; i < 4 && deployed < kHoneypots; ++i, ++deployed) {
      const IPv4Address ip = world->internet().PickHoneypotAddress(rng);
      std::vector<std::pair<Port, proto::Protocol>> listeners;
      for (const Listener& l : kListeners) {
        listeners.emplace_back(l.port, l.protocol);
      }
      world->internet().AddHoneypot(ip, listeners, world->now());
      honeypots.push_back(ip);
      births.push_back(world->now());
    }
  }
  // Let discovery run for another week after the last deployment.
  world->RunUntil(world->now() + Duration::Days(7));

  const std::uint32_t censys_id = world->censys().scanner_id();
  const std::uint32_t shodan_id = world->alternative("Shodan")->scanner_id();

  TablePrinter table({"Port/Protocol", "Censys mean", "median", "found",
                      "Shodan mean", "median", "found"});
  std::vector<double> censys_all, shodan_all;
  for (const Listener& listener : kListeners) {
    std::vector<double> censys_hours, shodan_hours;
    for (int i = 0; i < kHoneypots; ++i) {
      const ServiceKey key{
          honeypots[static_cast<std::size_t>(i)], listener.port,
          proto::GetInfo(listener.protocol).transport};
      const Timestamp born = births[static_cast<std::size_t>(i)];
      if (const auto t = world->internet().FirstContact(key, censys_id)) {
        censys_hours.push_back((*t - born).ToHours());
        censys_all.push_back(censys_hours.back());
      }
      if (const auto t = world->internet().FirstContact(key, shodan_id)) {
        shodan_hours.push_back((*t - born).ToHours());
        shodan_all.push_back(shodan_hours.back());
      }
    }
    const Stats censys = Summarize(censys_hours);
    const Stats shodan = Summarize(shodan_hours);
    auto fmt = [](double v) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1fh", v);
      return std::string(buf);
    };
    table.AddRow({listener.label,
                  censys.found ? fmt(censys.mean) : std::string("-"),
                  censys.found ? fmt(censys.median) : std::string("-"),
                  std::to_string(censys.found),
                  shodan.found ? fmt(shodan.mean) : std::string("-"),
                  shodan.found ? fmt(shodan.median) : std::string("-"),
                  std::to_string(shodan.found)});
  }
  table.Print();

  const Stats censys_total = Summarize(censys_all);
  const Stats shodan_total = Summarize(shodan_all);
  std::printf(
      "\noverall: Censys mean %.1fh median %.1fh (%zu listener-contacts); "
      "Shodan mean %.1fh median %.1fh (%zu)\n",
      censys_total.mean, censys_total.median, censys_total.found,
      shodan_total.mean, shodan_total.median, shodan_total.found);
  std::printf(
      "paper (Table 5): Censys 12.3h mean / 5.7h median; Shodan 76.5h mean "
      "/ 60.9h median; ports outside daily scan classes (500, 60000) found "
      "slowly or not at all\n");
  return 0;
}
