// Serving-layer throughput (§5.2 read path / §5.3 products): cache-hot vs
// uncached host lookups, and mixed query batches across reader-thread
// counts. The acceptance bar for the view cache is >=5x on the hot lookup
// path; the frontend must scale past a single reader.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/clock.h"
#include "engines/enrichment.h"
#include "fingerprint/fingerprints.h"
#include "fingerprint/vulns.h"
#include "pipeline/read_side.h"
#include "serving/frontend.h"

using namespace censys;
using namespace censys::engines;

namespace {

// Round-robin GetHost over `hosts`, `total` times; returns lookups/sec.
double LookupQps(const pipeline::ReadSide& read,
                 const std::vector<IPv4Address>& hosts, std::size_t total) {
  const censys::WallTimer timer;
  std::size_t found = 0;
  for (std::size_t i = 0; i < total; ++i) {
    found += read.GetHost(hosts[i % hosts.size()]).has_value() ? 1 : 0;
  }
  const double elapsed = timer.ElapsedSeconds();
  if (found == 0) std::printf("(warning: no lookups resolved)\n");
  return static_cast<double>(total) / elapsed;
}

}  // namespace

int main() {
  bench::BenchOptions opts;
  opts.run_days = 4.0;
  opts.with_alternatives = false;
  auto world = bench::MakeWorld("Serving throughput: view cache + frontend",
                                opts);
  CensysEngine& engine = world->censys();

  // Working set: tracked hosts, capped below the cache's total capacity so
  // the hot pass measures hits rather than LRU churn.
  std::vector<IPv4Address> hosts;
  engine.write_side().ForEachTracked([&](const pipeline::ServiceState& s) {
    hosts.push_back(s.key.ip);
  });
  std::sort(hosts.begin(), hosts.end(),
            [](IPv4Address a, IPv4Address b) { return a.value() < b.value(); });
  hosts.erase(std::unique(hosts.begin(), hosts.end(),
                          [](IPv4Address a, IPv4Address b) {
                            return a.value() == b.value();
                          }),
              hosts.end());
  if (hosts.size() > 4096) hosts.resize(4096);

  // Baseline: a cacheless read side over the same journal + write side;
  // every lookup replays and re-enriches.
  auto fingerprints = fingerprint::FingerprintEngine::BuiltIn(0);
  auto cves = fingerprint::CveDatabase::BuiltIn();
  const engines::ContextEnricher enricher(world->internet().blocks(),
                                          &fingerprints, &cves);
  pipeline::ReadSide uncached(engine.journal(), engine.write_side(),
                              &enricher);
  const double uncached_qps = LookupQps(uncached, hosts, 20'000);

  // Hot path: the engine's cached read side, warmed with one full pass.
  const pipeline::ReadSide& cached = engine.read_side();
  LookupQps(cached, hosts, hosts.size());  // warm
  const double cached_qps = LookupQps(cached, hosts, 200'000);

  TablePrinter lookup_table({"Lookup path", "lookups/s", "speedup"});
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", uncached_qps);
  lookup_table.AddRow({"uncached (replay + enrich)", buf, "1.0x"});
  std::snprintf(buf, sizeof(buf), "%.0f", cached_qps);
  char speedup[64];
  std::snprintf(speedup, sizeof(speedup), "%.1fx", cached_qps / uncached_qps);
  lookup_table.AddRow({"cache-hot", buf, speedup});
  lookup_table.Print();
  bench::EmitBenchJson("serving_qps", "uncached_lookup_qps", uncached_qps,
                       "lookups/s");
  bench::EmitBenchJson("serving_qps", "cached_lookup_qps", cached_qps,
                       "lookups/s");
  std::printf("cache hit ratio: %.3f (hits=%llu misses=%llu)\n\n",
              cached.cache()->HitRatio(),
              static_cast<unsigned long long>(cached.cache()->hits()),
              static_cast<unsigned long long>(cached.cache()->misses()));

  // Mixed query batches (70% lookup / 10% history / 10% search / 10%
  // analytics) through the frontend at increasing reader counts.
  const std::vector<std::string> searches = {"service.name: http",
                                             "service.name: ssh"};
  const std::vector<std::string> protocols = {"HTTP", "SSH"};
  constexpr std::size_t kBatch = 20'000;

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("frontend sweep on %u hardware thread(s)%s\n", cores,
              cores <= 1 ? " — reader scaling is core-bound; expect gains "
                           "only on multi-core hosts"
                         : "");
  TablePrinter frontend_table({"Readers", "queries/s", "p99 lookup us"});
  for (int threads : {1, 4, 8}) {
    serving::ServingFrontend::Options options;
    options.threads = threads;
    serving::ServingFrontend frontend(cached, engine.search_index(),
                                      engine.analytics(), options);
    Rng rng(1234);  // identical workload per thread count
    const auto batch = serving::ServingFrontend::MixedWorkload(
        kBatch, hosts, searches, protocols, world->now(), rng);
    frontend.Run(batch);  // warm
    const serving::BatchReport report = frontend.Run(batch);
    std::snprintf(buf, sizeof(buf), "%.0f", report.qps);
    std::snprintf(speedup, sizeof(speedup), "%.1f", report.lookup_p99_us);
    frontend_table.AddRow({std::to_string(threads), buf, speedup});
    const std::string metric =
        "frontend_qps_threads" + std::to_string(threads);
    bench::EmitBenchJson("serving_qps", metric.c_str(), report.qps,
                         "queries/s");
  }
  frontend_table.Print();

  std::printf(
      "\npaper (§5.2/§5.3): reconstructed views are cached and served "
      "concurrently with ingestion; the watermark key invalidates exactly "
      "when a host's journal or scan state advances\n");
  return 0;
}
