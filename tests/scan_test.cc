// Tests for the scan engine: cyclic-group permutation, rate limiting,
// discovery passes, and the continuous scheduler.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "scan/cyclic.h"
#include "scan/discovery.h"
#include "scan/ratelimit.h"
#include "scan/scheduler.h"
#include "simnet/internet.h"

namespace censys::scan {
namespace {

// --------------------------------------------------------------------- cyclic

TEST(PrimalityTest, KnownValues) {
  EXPECT_TRUE(IsPrime(2));
  EXPECT_TRUE(IsPrime(3));
  EXPECT_TRUE(IsPrime(65537));
  EXPECT_TRUE(IsPrime(4294967311ull));  // ZMap's 2^32 + 15
  EXPECT_FALSE(IsPrime(1));
  EXPECT_FALSE(IsPrime(4294967297ull));  // 641 * 6700417 (Fermat F5)
  EXPECT_FALSE(IsPrime(3215031751ull));  // strong pseudoprime to small bases
}

TEST(PrimalityTest, NextPrimeAbove) {
  EXPECT_EQ(NextPrimeAbove(1u << 16), 65537u);
  EXPECT_EQ(NextPrimeAbove(4294967296ull), 4294967311ull);
  EXPECT_EQ(NextPrimeAbove(2), 3u);
}

TEST(FactorTest, DistinctPrimeFactors) {
  EXPECT_EQ(DistinctPrimeFactors(12), (std::vector<std::uint64_t>{2, 3}));
  EXPECT_EQ(DistinctPrimeFactors(65536), (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(DistinctPrimeFactors(97), (std::vector<std::uint64_t>{97}));
}

TEST(ModMathTest, MulModAndPowMod) {
  EXPECT_EQ(MulMod(0xFFFFFFFFFFFFFFFull, 0xFFFFFFFFFFFFFFFull,
                   4294967311ull),
            (static_cast<unsigned __int128>(0xFFFFFFFFFFFFFFFull) *
             0xFFFFFFFFFFFFFFFull) % 4294967311ull);
  EXPECT_EQ(PowMod(2, 10, 1000000007ull), 1024u);
  EXPECT_EQ(PowMod(3, 0, 7), 1u);
  // Fermat's little theorem.
  EXPECT_EQ(PowMod(12345, 65536, 65537), 1u);
}

TEST(CyclicPermutationTest, VisitsEveryElementExactlyOnce) {
  for (std::uint64_t n : {1ull, 7ull, 100ull, 4096ull, 10007ull}) {
    CyclicPermutation perm(n, 99);
    std::vector<bool> seen(n, false);
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t v = perm.Next();
      ASSERT_LT(v, n);
      ASSERT_FALSE(seen[v]) << "duplicate " << v << " in n=" << n;
      seen[v] = true;
    }
  }
}

TEST(CyclicPermutationTest, WrapsAfterFullCycle) {
  const std::uint64_t n = 500;
  CyclicPermutation perm(n, 4);
  std::vector<std::uint64_t> first_cycle;
  for (std::uint64_t i = 0; i < n; ++i) first_cycle.push_back(perm.Next());
  // The next n values repeat the same cycle.
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(perm.Next(), first_cycle[i]);
  }
}

TEST(CyclicPermutationTest, DifferentSeedsGiveDifferentOrders) {
  CyclicPermutation a(10000, 1), b(10000, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 5);
}

TEST(CyclicPermutationTest, OrderLooksScattered) {
  // Consecutive outputs should not be sequential addresses (the whole
  // point of scanning in a permuted order).
  CyclicPermutation perm(1u << 20, 7);
  std::uint64_t adjacent = 0;
  std::uint64_t prev = perm.Next();
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t cur = perm.Next();
    if (cur == prev + 1 || prev == cur + 1) ++adjacent;
    prev = cur;
  }
  EXPECT_LT(adjacent, 5u);
}

TEST(BackgroundPortSliceTest, CoversAllPortsAcrossOneCycle) {
  const std::size_t per_pass = 1000;
  std::vector<bool> seen(kPortSpaceSize, false);
  std::size_t total = 0;
  const std::uint64_t passes = (kPortSpaceSize + per_pass - 1) / per_pass;
  for (std::uint64_t pass = 0; pass < passes; ++pass) {
    for (Port p : BackgroundPortSlice(pass, per_pass, 5)) {
      ASSERT_FALSE(seen[p]) << "port " << p << " repeated within a cycle";
      seen[p] = true;
      ++total;
    }
  }
  EXPECT_EQ(total, kPortSpaceSize);
}

TEST(BackgroundPortSliceTest, NewCycleUsesNewOrder) {
  const std::size_t per_pass = 65536;  // one pass = full cycle
  const auto cycle0 = BackgroundPortSlice(0, per_pass, 5);
  const auto cycle1 = BackgroundPortSlice(1, per_pass, 5);
  ASSERT_EQ(cycle0.size(), cycle1.size());
  int same = 0;
  for (std::size_t i = 0; i < 1000; ++i) same += (cycle0[i] == cycle1[i]);
  EXPECT_LT(same, 10);
}

// ------------------------------------------------------------------ ratelimit

TEST(TokenBucketTest, AccruesOverTime) {
  TokenBucket bucket(60.0, 120.0);  // 60/min, burst 120
  bucket.AdvanceTo(Timestamp{0});
  EXPECT_EQ(bucket.TryAcquire(200), 120u);  // initial burst
  EXPECT_EQ(bucket.TryAcquire(10), 0u);
  bucket.AdvanceTo(Timestamp{1});
  EXPECT_EQ(bucket.TryAcquire(100), 60u);
}

TEST(TokenBucketTest, CapsAtBurst) {
  TokenBucket bucket(1000.0, 50.0);
  bucket.AdvanceTo(Timestamp{0});
  bucket.AdvanceTo(Timestamp{1000});
  EXPECT_EQ(bucket.TryAcquire(10000), 50u);
}

TEST(TokenBucketTest, TimeDoesNotGoBackwards) {
  TokenBucket bucket(60.0, 60.0);
  bucket.AdvanceTo(Timestamp{10});
  bucket.TryAcquire(60);
  bucket.AdvanceTo(Timestamp{5});  // no-op
  EXPECT_EQ(bucket.TryAcquire(1), 0u);
}

// ------------------------------------------------------------------ discovery

class DiscoveryTest : public ::testing::Test {
 protected:
  DiscoveryTest() : net_(Config()), profile_{1, "test", 300.0, 1280.0} {}

  static simnet::UniverseConfig Config() {
    simnet::UniverseConfig cfg;
    cfg.seed = 3;
    cfg.universe_size = 1u << 16;
    cfg.target_services = 6000;
    cfg.ics_scale = 0.0;  // no ICS needed here
    return cfg;
  }

  simnet::Internet net_;
  simnet::ScannerProfile profile_;
};

TEST_F(DiscoveryTest, DailyPassFindsMostServicesOnScannedPorts) {
  DiscoveryEngine engine(net_, profile_, 3, 7);
  ScanClass klass;
  klass.name = "test-pass";
  klass.ports = net_.ports().TopPorts(100);
  klass.period = Duration::Days(1);

  std::unordered_set<std::uint64_t> found;
  // Run the full pass in 2 h chunks, advancing churn like the real loop.
  for (int chunk = 0; chunk < 12; ++chunk) {
    const Timestamp from{chunk * 120}, to{(chunk + 1) * 120};
    net_.AdvanceTo(to);
    engine.RunPassChunk(klass, 0, from, to, [&](const Candidate& c) {
      found.insert(c.key.Pack());
    });
  }

  // Count TCP services on those ports alive at end of day.
  std::unordered_set<Port> port_set(klass.ports.begin(), klass.ports.end());
  std::size_t expected = 0, hit = 0;
  net_.ForEachActiveService(net_.now(), [&](const simnet::SimService& s) {
    if (s.key.transport != Transport::kTcp) return;
    if (!port_set.contains(s.key.port)) return;
    ++expected;
    if (found.contains(s.key.Pack())) ++hit;
  });
  ASSERT_GT(expected, 100u);
  EXPECT_GT(static_cast<double>(hit) / expected, 0.85);
}

TEST_F(DiscoveryTest, ScopedPassStaysInScope) {
  DiscoveryEngine engine(net_, profile_, 1, 7);
  ScanClass klass;
  klass.name = "cloud-only";
  klass.ports = net_.ports().TopPorts(50);
  klass.blocks = net_.blocks().BlocksOfType(simnet::NetworkType::kCloud);
  klass.period = Duration::Days(1);

  bool all_in_scope = true;
  engine.RunPassChunk(klass, 0, Timestamp{0}, Timestamp{1440},
                      [&](const Candidate& c) {
                        if (net_.blocks().BlockOf(c.key.ip).type !=
                            simnet::NetworkType::kCloud)
                          all_in_scope = false;
                      });
  EXPECT_TRUE(all_in_scope);
}

TEST_F(DiscoveryTest, ProbeCountingIsAnalytic) {
  DiscoveryEngine engine(net_, profile_, 1, 7);
  ScanClass klass;
  klass.name = "count";
  klass.ports = {80, 443};
  klass.period = Duration::Days(1);
  EXPECT_EQ(engine.PassProbeCount(klass),
            static_cast<std::uint64_t>(net_.blocks().universe_size()) * 2);

  engine.RunPassChunk(klass, 0, Timestamp{0}, Timestamp{720}, [](auto&) {});
  // Half the pass window -> half the probe volume.
  EXPECT_NEAR(static_cast<double>(engine.probes_sent()),
              static_cast<double>(engine.PassProbeCount(klass)) / 2,
              static_cast<double>(engine.PassProbeCount(klass)) * 0.02);
}

TEST_F(DiscoveryTest, UdpServicesNeedMatchingProbe) {
  DiscoveryEngine engine(net_, profile_, 1, 7);
  // Find a UDP DNS service on port 53 (IANA-probed) and check it is
  // discoverable; a UDP service on an unassigned port must not be.
  ScanClass klass;
  klass.name = "udp";
  klass.ports = {53};
  klass.period = Duration::Days(1);
  std::size_t dns_hits = 0;
  engine.RunPassChunk(klass, 0, Timestamp{0}, Timestamp{1440},
                      [&](const Candidate& c) {
                        if (c.key.transport == Transport::kUdp) {
                          EXPECT_EQ(c.udp_protocol, proto::Protocol::kDns);
                          ++dns_hits;
                        }
                      });
  EXPECT_GT(dns_hits, 0u);
}

// ------------------------------------------------------------------ scheduler

TEST_F(DiscoveryTest, SchedulerSplitsAtPassBoundaries) {
  DiscoveryEngine engine(net_, profile_, 1, 7);
  ScanScheduler scheduler(engine);

  std::vector<std::uint64_t> provider_calls;
  ScheduledClass rotating;
  rotating.klass.name = "rotating";
  rotating.klass.period = Duration::Days(1);
  rotating.port_provider = [&](std::uint64_t pass) {
    provider_calls.push_back(pass);
    return std::vector<Port>{80};
  };
  scheduler.AddClass(std::move(rotating));

  // A tick spanning a day boundary must execute both passes' slices.
  net_.AdvanceTo(Timestamp{1500});
  scheduler.Tick(Timestamp{1380}, Timestamp{1500}, [](auto&) {});
  ASSERT_EQ(provider_calls.size(), 2u);
  EXPECT_EQ(provider_calls[0], 0u);
  EXPECT_EQ(provider_calls[1], 1u);
}

TEST_F(DiscoveryTest, SchedulerEnableDisable) {
  DiscoveryEngine engine(net_, profile_, 1, 7);
  ScanScheduler scheduler(engine);
  ScheduledClass fixed;
  fixed.klass.name = "fixed";
  fixed.klass.ports = {80};
  fixed.klass.period = Duration::Days(1);
  scheduler.AddClass(std::move(fixed));

  ASSERT_TRUE(scheduler.SetEnabled("fixed", false));
  int candidates = 0;
  scheduler.Tick(Timestamp{0}, Timestamp{1440},
                 [&](const Candidate&) { ++candidates; });
  EXPECT_EQ(candidates, 0);
  EXPECT_FALSE(scheduler.SetEnabled("nope", false));
}

}  // namespace
}  // namespace censys::scan
