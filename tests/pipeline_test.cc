// Tests for the CQRS pipeline: entity field projection, write side command
// processing, eviction policy, pseudo filtering, event bus, and read-side
// reconstruction + enrichment.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "engines/enrichment.h"
#include "pipeline/entity.h"
#include "pipeline/read_side.h"
#include "pipeline/write_side.h"
#include "simnet/blocks.h"

namespace censys::pipeline {
namespace {

ServiceRecord HttpRecord(IPv4Address ip, Port port, Timestamp at,
                                      const std::string& title = "Login") {
  ServiceRecord r;
  r.key = {ip, port, Transport::kTcp};
  r.observed_at = at;
  r.protocol = proto::Protocol::kHttp;
  r.detection = DetectionMethod::kBatteryHandshake;
  r.handshake_validated = true;
  r.banner = "Server: nginx/1.25.3";
  r.software = {"nginx", "nginx", "1.25.3"};
  r.html_title = title;
  return r;
}

// --------------------------------------------------------------------- entity

TEST(EntityTest, ServiceFieldsUsePrefix) {
  const auto record = HttpRecord(IPv4Address(5), 8080, Timestamp{0});
  const storage::FieldMap fields = ServiceFields(record);
  EXPECT_TRUE(fields.contains("svc.8080/tcp.service.name"));
  EXPECT_EQ(fields.at("svc.8080/tcp.service.name"), "HTTP");
}

TEST(EntityTest, ServicesInEnumeratesPrefixes) {
  storage::FieldMap state;
  for (const auto& [k, v] :
       ServiceFields(HttpRecord(IPv4Address(5), 80, Timestamp{0}))) {
    state[k] = v;
  }
  for (const auto& [k, v] :
       ServiceFields(HttpRecord(IPv4Address(5), 8443, Timestamp{0}))) {
    state[k] = v;
  }
  const auto keys = ServicesIn(state, IPv4Address(5));
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0].port, 80);
  EXPECT_EQ(keys[1].port, 8443);
}

TEST(EntityTest, RecordRoundTripsThroughEntityState) {
  const auto record = HttpRecord(IPv4Address(5), 8080, Timestamp{0});
  storage::FieldMap state;
  storage::ApplyDelta(state, UpsertServiceDelta({}, record));
  const auto back = RecordFrom(state, record.key);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, record);
}

TEST(EntityTest, UpsertDeltaIsEmptyWhenNothingChanged) {
  const auto record = HttpRecord(IPv4Address(5), 8080, Timestamp{0});
  storage::FieldMap state;
  storage::ApplyDelta(state, UpsertServiceDelta({}, record));
  EXPECT_TRUE(UpsertServiceDelta(state, record).empty());
}

TEST(EntityTest, RemoveDeltaErasesOnlyThatService) {
  storage::FieldMap state;
  const auto a = HttpRecord(IPv4Address(5), 80, Timestamp{0});
  const auto b = HttpRecord(IPv4Address(5), 443, Timestamp{0});
  storage::ApplyDelta(state, UpsertServiceDelta(state, a));
  storage::ApplyDelta(state, UpsertServiceDelta(state, b));
  storage::ApplyDelta(state, RemoveServiceDelta(state, a.key));
  EXPECT_FALSE(RecordFrom(state, a.key).has_value());
  EXPECT_TRUE(RecordFrom(state, b.key).has_value());
}

// ----------------------------------------------------------------- write side

class WriteSideTest : public ::testing::Test {
 protected:
  WriteSideTest() : write_(journal_, bus_) {}

  storage::EventJournal journal_;
  EventBus bus_;
  WriteSide write_;
};

TEST_F(WriteSideTest, FirstScanJournalsServiceFound) {
  write_.IngestScan(HttpRecord(IPv4Address(7), 80, Timestamp{100}));
  const auto history = journal_.History("0.0.0.7");
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history[0].kind, storage::EventKind::kServiceFound);
  EXPECT_EQ(write_.tracked_count(), 1u);
}

TEST_F(WriteSideTest, UnchangedRefreshJournalsNothing) {
  const core::ThreadRoleGuard role(write_.command_role());
  write_.IngestScan(HttpRecord(IPv4Address(7), 80, Timestamp{100}));
  write_.IngestScan(HttpRecord(IPv4Address(7), 80, Timestamp{1540}));
  EXPECT_EQ(journal_.History("0.0.0.7").size(), 1u);
  // But scan state advanced.
  const ServiceState* state =
      write_.GetState({IPv4Address(7), 80, Transport::kTcp});
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->last_seen, Timestamp{1540});
}

TEST_F(WriteSideTest, ChangedServiceJournalsServiceChanged) {
  write_.IngestScan(HttpRecord(IPv4Address(7), 80, Timestamp{100}, "Old"));
  write_.IngestScan(HttpRecord(IPv4Address(7), 80, Timestamp{200}, "New"));
  const auto history = journal_.History("0.0.0.7");
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[1].kind, storage::EventKind::kServiceChanged);
}

TEST_F(WriteSideTest, EvictionLifecycle) {
  const core::ThreadRoleGuard role(write_.command_role());
  const ServiceKey key{IPv4Address(7), 80, Transport::kTcp};
  write_.IngestScan(HttpRecord(key.ip, key.port, Timestamp{0}));

  // First failure marks pending.
  write_.IngestFailure(key, Timestamp::FromHours(24));
  const ServiceState* state = write_.GetState(key);
  ASSERT_NE(state, nullptr);
  ASSERT_TRUE(state->pending_eviction_since.has_value());
  EXPECT_EQ(*state->pending_eviction_since, Timestamp::FromHours(24));

  // Second failure does not reset the pending clock.
  write_.IngestFailure(key, Timestamp::FromHours(48));
  EXPECT_EQ(*write_.GetState(key)->pending_eviction_since,
            Timestamp::FromHours(24));

  // Before the 72 h deadline: still tracked.
  write_.AdvanceTo(Timestamp::FromHours(24 + 71));
  EXPECT_NE(write_.GetState(key), nullptr);

  // After: removed, journaled, remembered for re-injection.
  write_.AdvanceTo(Timestamp::FromHours(24 + 73));
  EXPECT_EQ(write_.GetState(key), nullptr);
  EXPECT_EQ(write_.services_evicted(), 1u);
  const auto history = journal_.History("0.0.0.7");
  EXPECT_EQ(history.back().kind, storage::EventKind::kServiceRemoved);
  EXPECT_EQ(write_.RecentlyPruned(Timestamp::FromHours(100)).size(), 1u);
}

TEST_F(WriteSideTest, SuccessfulScanClearsPendingEviction) {
  const core::ThreadRoleGuard role(write_.command_role());
  const ServiceKey key{IPv4Address(7), 80, Transport::kTcp};
  write_.IngestScan(HttpRecord(key.ip, key.port, Timestamp{0}));
  write_.IngestFailure(key, Timestamp::FromHours(10));
  ASSERT_TRUE(write_.GetState(key)->pending_eviction_since.has_value());
  // "Removing data too quickly leads to churn where services are removed
  // and then immediately re-added": a transient outage ends, the next
  // refresh succeeds, and nothing was evicted.
  write_.IngestScan(HttpRecord(key.ip, key.port, Timestamp::FromHours(20)));
  EXPECT_FALSE(write_.GetState(key)->pending_eviction_since.has_value());
  write_.AdvanceTo(Timestamp::FromHours(200));
  EXPECT_NE(write_.GetState(key), nullptr);
  EXPECT_EQ(write_.services_evicted(), 0u);
}

TEST_F(WriteSideTest, ReinjectionWindowExpires) {
  const ServiceKey key{IPv4Address(7), 80, Transport::kTcp};
  write_.IngestScan(HttpRecord(key.ip, key.port, Timestamp{0}));
  write_.IngestFailure(key, Timestamp{10});
  write_.AdvanceTo(Timestamp::FromDays(4));
  EXPECT_EQ(write_.RecentlyPruned(Timestamp::FromDays(30)).size(), 1u);
  // 60-day window (§4.6): after it, the pruned entry ages out.
  write_.AdvanceTo(Timestamp::FromDays(70));
  EXPECT_TRUE(write_.RecentlyPruned(Timestamp::FromDays(70)).empty());
}

TEST_F(WriteSideTest, PseudoHostGetsFilteredAfterThreshold) {
  const IPv4Address middlebox(99);
  // The same canned record on many ports: a pseudo-service middlebox.
  for (Port port = 1000; port < 1030; ++port) {
    auto record = HttpRecord(middlebox, port, Timestamp{0}, "Canned");
    record.banner = "Server: middlebox";
    write_.IngestScan(record);
  }
  EXPECT_TRUE(write_.IsPseudoFlagged(middlebox));
  // Everything for the host was removed and further scans are suppressed.
  EXPECT_EQ(write_.tracked_count(), 0u);
  EXPECT_GT(write_.pseudo_suppressed(), 0u);
  auto more = HttpRecord(middlebox, 4000, Timestamp{10}, "Canned");
  write_.IngestScan(more);
  EXPECT_EQ(write_.tracked_count(), 0u);
}

TEST_F(WriteSideTest, DiverseServicesOnOneHostAreNotPseudo) {
  const IPv4Address host(50);
  for (Port port = 8000; port < 8030; ++port) {
    // Distinct titles -> distinct content hashes.
    write_.IngestScan(HttpRecord(host, port, Timestamp{0},
                                 "Site " + std::to_string(port)));
  }
  EXPECT_FALSE(write_.IsPseudoFlagged(host));
  EXPECT_EQ(write_.tracked_count(), 30u);
}

TEST_F(WriteSideTest, EventBusDeliversAsync) {
  std::vector<storage::EventKind> seen;
  bus_.Subscribe([&](const PipelineEvent& ev) { seen.push_back(ev.kind); });
  write_.IngestScan(HttpRecord(IPv4Address(7), 80, Timestamp{0}));
  EXPECT_TRUE(seen.empty());  // nothing delivered until drained
  EXPECT_EQ(bus_.Drain(), 1u);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], storage::EventKind::kServiceFound);
}

// ------------------------------------------------------------------ read side

class ReadSideTest : public ::testing::Test {
 protected:
  ReadSideTest()
      : plan_(PlanConfig()), write_(journal_, bus_),
        fingerprints_(fingerprint::FingerprintEngine::BuiltIn(0)),
        cves_(fingerprint::CveDatabase::BuiltIn()),
        enricher_(plan_, &fingerprints_, &cves_),
        read_(journal_, write_, &enricher_) {}

  static simnet::UniverseConfig PlanConfig() {
    simnet::UniverseConfig cfg;
    cfg.seed = 2;
    cfg.universe_size = 1u << 16;
    return cfg;
  }

  storage::EventJournal journal_;
  EventBus bus_;
  simnet::BlockPlan plan_;
  WriteSide write_;
  fingerprint::FingerprintEngine fingerprints_;
  fingerprint::CveDatabase cves_;
  engines::ContextEnricher enricher_;
  ReadSide read_;
};

TEST_F(ReadSideTest, CurrentHostViewWithEnrichment) {
  auto record = HttpRecord(IPv4Address(100), 8080, Timestamp{50},
                           "RouterOS configuration page");
  write_.IngestScan(record);

  const auto view = read_.GetHost(IPv4Address(100));
  ASSERT_TRUE(view.has_value());
  EXPECT_FALSE(view->country.empty());
  EXPECT_GT(view->asn, 0u);
  ASSERT_EQ(view->services.size(), 1u);
  const ServiceView& svc = view->services[0];
  EXPECT_EQ(svc.record.protocol, proto::Protocol::kHttp);
  EXPECT_EQ(svc.last_seen, Timestamp{50});
  ASSERT_TRUE(svc.labels.has_value());
  EXPECT_EQ(svc.labels->manufacturer, "MikroTik");
}

TEST_F(ReadSideTest, VulnerableSoftwareGetsCves) {
  auto record = HttpRecord(IPv4Address(100), 80, Timestamp{0});
  record.software = {"apache", "httpd", "2.4.49"};
  write_.IngestScan(record);
  const auto view = read_.GetHost(IPv4Address(100));
  ASSERT_TRUE(view.has_value());
  ASSERT_EQ(view->services.size(), 1u);
  EXPECT_FALSE(view->services[0].cves.empty());
  EXPECT_TRUE(view->services[0].kev);
  EXPECT_GT(view->services[0].max_cvss, 7.0);
}

TEST_F(ReadSideTest, HistoricalLookupSeesOldState) {
  write_.IngestScan(HttpRecord(IPv4Address(100), 80, Timestamp{100}, "Old"));
  write_.IngestScan(HttpRecord(IPv4Address(100), 80, Timestamp{200}, "New"));

  const auto old_view = read_.GetHostAt(IPv4Address(100), Timestamp{150});
  ASSERT_TRUE(old_view.has_value());
  EXPECT_EQ(old_view->services[0].record.html_title, "Old");

  const auto new_view = read_.GetHostAt(IPv4Address(100), Timestamp{250});
  ASSERT_TRUE(new_view.has_value());
  EXPECT_EQ(new_view->services[0].record.html_title, "New");

  EXPECT_FALSE(read_.GetHostAt(IPv4Address(100), Timestamp{50}).has_value());
}

TEST_F(ReadSideTest, PendingEvictionSurfacesInView) {
  const ServiceKey key{IPv4Address(100), 80, Transport::kTcp};
  write_.IngestScan(HttpRecord(key.ip, key.port, Timestamp{0}));
  write_.IngestFailure(key, Timestamp{100});
  const auto view = read_.GetHost(key.ip);
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(view->services[0].pending_eviction);
}

TEST_F(ReadSideTest, UnknownHostIsEmpty) {
  EXPECT_FALSE(read_.GetHost(IPv4Address(12345)).has_value());
}

TEST_F(ReadSideTest, EvictedServiceDisappearsFromCurrentButNotHistory) {
  const ServiceKey key{IPv4Address(100), 80, Transport::kTcp};
  write_.IngestScan(HttpRecord(key.ip, key.port, Timestamp{0}));
  write_.IngestFailure(key, Timestamp::FromHours(2));
  write_.AdvanceTo(Timestamp::FromHours(80));

  EXPECT_FALSE(read_.GetHost(key.ip).has_value());  // empty current state
  const auto historical = read_.GetHostAt(key.ip, Timestamp::FromHours(1));
  ASSERT_TRUE(historical.has_value());
  EXPECT_EQ(historical->services.size(), 1u);
}

// ---------------------------------------------------------------- concurrency

// Readers call GetHost / GetStateCopy while the command thread ingests:
// the shared_mutex split means views are always built from locked copies.
// (The full stress contract, with the view cache, lives in serving_test.)
TEST_F(ReadSideTest, LookupsRunConcurrentlyWithIngest) {
  constexpr int kHosts = 6;
  for (int h = 0; h < kHosts; ++h) {
    write_.IngestScan(HttpRecord(IPv4Address(100 + h), 80, Timestamp{1}));
  }

  int reader_count = 4;
  if (const char* env = std::getenv("CENSYSIM_THREADS")) {
    if (std::atoi(env) > 0) reader_count = std::atoi(env);
  }
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < reader_count; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t local = static_cast<std::uint64_t>(r);
      while (!done.load(std::memory_order_relaxed)) {
        const IPv4Address ip(100 + static_cast<std::uint32_t>(local % kHosts));
        const auto view = read_.GetHost(ip);
        if (view.has_value()) {
          ASSERT_FALSE(view->services.empty());
          ASSERT_TRUE(view->services[0].last_seen.has_value());
        }
        const auto state =
            write_.GetStateCopy({ip, 80, Transport::kTcp});
        if (state.has_value()) {
          ASSERT_GE(state->last_refreshed.minutes, state->first_seen.minutes);
        }
        ++local;
      }
    });
  }

  for (int i = 2; i < 120; ++i) {
    for (int h = 0; h < kHosts; ++h) {
      const std::string title = "Rev " + std::to_string(i);
      write_.IngestScan(
          HttpRecord(IPv4Address(100 + h), 80, Timestamp{i * 10}, title));
    }
    write_.AdvanceTo(Timestamp{i * 10});
  }
  done.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(write_.tracked_count(), static_cast<std::size_t>(kHosts));
  const auto view = read_.GetHost(IPv4Address(100));
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->services[0].record.html_title, "Rev 119");
}

}  // namespace
}  // namespace censys::pipeline
