// Tests for the concurrent serving layer: ViewCache watermark semantics,
// cached read-side lookups (must be indistinguishable from uncached), the
// reader/writer stress contract (no torn views under concurrent appends),
// the ServingFrontend mixed-query pump, and the journal-perturbation
// guarantee when serving traffic runs concurrently with engine ticks.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/fault.h"
#include "core/strings.h"
#include "engines/enrichment.h"
#include "engines/world.h"
#include "fingerprint/fingerprints.h"
#include "fingerprint/vulns.h"
#include "interrogate/record.h"
#include "pipeline/read_side.h"
#include "pipeline/view_cache.h"
#include "pipeline/write_side.h"
#include "search/analytics.h"
#include "search/index.h"
#include "serving/frontend.h"
#include "simnet/blocks.h"

namespace censys::serving {
namespace {

int ReaderThreads() {
  if (const char* env = std::getenv("CENSYSIM_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 4;
}

// A versioned HTTP record: title and banner both carry `version`, so both
// always change in the same journal delta. A view whose title and banner
// disagree on the version was torn mid-update.
interrogate::ServiceRecord VersionedRecord(IPv4Address ip, Port port,
                                           Timestamp at,
                                           const std::string& version) {
  interrogate::ServiceRecord r;
  r.key = {ip, port, Transport::kTcp};
  r.observed_at = at;
  r.protocol = proto::Protocol::kHttp;
  r.detection = interrogate::DetectionMethod::kBatteryHandshake;
  r.handshake_validated = true;
  r.banner = "Server: nginx build " + version;
  r.software = {"nginx", "nginx", "1.25.3"};
  r.html_title = "release " + version;
  return r;
}

std::string VersionOfBanner(const std::string& banner) {
  const auto pos = banner.rfind(' ');
  return pos == std::string::npos ? banner : banner.substr(pos + 1);
}

std::string VersionOfTitle(const std::string& title) {
  const auto pos = title.rfind(' ');
  return pos == std::string::npos ? title : title.substr(pos + 1);
}

// ----------------------------------------------------------------- view cache

TEST(ViewCacheTest, HitRequiresExactWatermark) {
  pipeline::ViewCache cache;
  const IPv4Address ip(42);
  const auto view = std::make_shared<const pipeline::HostView>();
  const pipeline::ViewCache::Watermark stamp{3, 1};

  EXPECT_EQ(cache.Get(ip, stamp), nullptr);
  EXPECT_EQ(cache.misses(), 1u);

  cache.Put(ip, stamp, view);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Get(ip, stamp), view);
  EXPECT_EQ(cache.hits(), 1u);

  // A journal-seqno advance invalidates the entry on the spot.
  EXPECT_EQ(cache.Get(ip, {4, 1}), nullptr);
  EXPECT_EQ(cache.invalidations(), 1u);
  EXPECT_EQ(cache.size(), 0u);

  // So does a scan-revision advance alone (non-journaled state moved).
  cache.Put(ip, stamp, view);
  EXPECT_EQ(cache.Get(ip, {3, 2}), nullptr);
  EXPECT_EQ(cache.invalidations(), 2u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ViewCacheTest, EvictsLeastRecentlyUsedWithinShard) {
  pipeline::ViewCache::Options options;
  options.shards = 1;  // single shard so the LRU order is total
  options.capacity_per_shard = 2;
  pipeline::ViewCache cache(options);
  const auto view = std::make_shared<const pipeline::HostView>();
  const pipeline::ViewCache::Watermark stamp{1, 0};

  cache.Put(IPv4Address(1), stamp, view);
  cache.Put(IPv4Address(2), stamp, view);
  EXPECT_NE(cache.Get(IPv4Address(1), stamp), nullptr);  // 1 now MRU
  cache.Put(IPv4Address(3), stamp, view);                // evicts 2

  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Get(IPv4Address(2), stamp), nullptr);
  EXPECT_NE(cache.Get(IPv4Address(1), stamp), nullptr);
  EXPECT_NE(cache.Get(IPv4Address(3), stamp), nullptr);
}

TEST(ViewCacheTest, InvalidateAndClearDropEntries) {
  pipeline::ViewCache cache;
  const auto view = std::make_shared<const pipeline::HostView>();
  const pipeline::ViewCache::Watermark stamp{1, 0};
  for (std::uint32_t i = 0; i < 32; ++i) {
    cache.Put(IPv4Address(i), stamp, view);
  }
  EXPECT_EQ(cache.size(), 32u);

  cache.Invalidate(IPv4Address(7));
  EXPECT_EQ(cache.size(), 31u);
  EXPECT_EQ(cache.Get(IPv4Address(7), stamp), nullptr);

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get(IPv4Address(3), stamp), nullptr);
}

// ------------------------------------------------------- cached read side

void ExpectViewsEqual(const std::optional<pipeline::HostView>& a,
                      const std::optional<pipeline::HostView>& b) {
  ASSERT_EQ(a.has_value(), b.has_value());
  if (!a.has_value()) return;
  EXPECT_EQ(a->ip.value(), b->ip.value());
  EXPECT_EQ(a->country, b->country);
  EXPECT_EQ(a->asn, b->asn);
  EXPECT_EQ(a->as_org, b->as_org);
  EXPECT_EQ(a->network_type, b->network_type);
  ASSERT_EQ(a->services.size(), b->services.size());
  for (std::size_t i = 0; i < a->services.size(); ++i) {
    const pipeline::ServiceView& sa = a->services[i];
    const pipeline::ServiceView& sb = b->services[i];
    EXPECT_EQ(sa.record, sb.record);
    EXPECT_EQ(sa.last_seen, sb.last_seen);
    EXPECT_EQ(sa.pending_eviction, sb.pending_eviction);
    EXPECT_EQ(sa.cves, sb.cves);
    EXPECT_EQ(sa.max_cvss, sb.max_cvss);
    EXPECT_EQ(sa.kev, sb.kev);
  }
}

// Two read sides over the same journal/write side: one cached, one not.
// Every assertion that the cached side equals the uncached side is an
// assertion that the watermark invalidation is precise.
class CachedReadTest : public ::testing::Test {
 protected:
  CachedReadTest()
      : plan_(PlanConfig()), write_(journal_, bus_),
        fingerprints_(fingerprint::FingerprintEngine::BuiltIn(0)),
        cves_(fingerprint::CveDatabase::BuiltIn()),
        enricher_(plan_, &fingerprints_, &cves_),
        cached_(journal_, write_, &enricher_),
        uncached_(journal_, write_, &enricher_) {
    cached_.EnableCache();
  }

  static simnet::UniverseConfig PlanConfig() {
    simnet::UniverseConfig cfg;
    cfg.seed = 2;
    cfg.universe_size = 1u << 16;
    return cfg;
  }

  storage::EventJournal journal_;
  pipeline::EventBus bus_;
  simnet::BlockPlan plan_;
  pipeline::WriteSide write_;
  fingerprint::FingerprintEngine fingerprints_;
  fingerprint::CveDatabase cves_;
  engines::ContextEnricher enricher_;
  pipeline::ReadSide cached_;
  pipeline::ReadSide uncached_;
};

TEST_F(CachedReadTest, LookupOfUnknownHostMissesWithoutCaching) {
  EXPECT_FALSE(cached_.GetHost(IPv4Address(9)).has_value());
  EXPECT_EQ(cached_.cache()->size(), 0u);
}

TEST_F(CachedReadTest, RepeatLookupIsAHitAndMatchesUncached) {
  const IPv4Address ip(7);
  write_.IngestScan(VersionedRecord(ip, 80, Timestamp{100}, "one"));

  ExpectViewsEqual(cached_.GetHost(ip), uncached_.GetHost(ip));
  EXPECT_EQ(cached_.cache()->misses(), 1u);
  ExpectViewsEqual(cached_.GetHost(ip), uncached_.GetHost(ip));
  EXPECT_EQ(cached_.cache()->hits(), 1u);
  EXPECT_EQ(cached_.lookups_served(), 2u);
}

TEST_F(CachedReadTest, EveryScanStateChangeInvalidatesPrecisely) {
  const IPv4Address ip(7);
  const ServiceKey key{ip, 80, Transport::kTcp};
  write_.IngestScan(VersionedRecord(ip, 80, Timestamp{100}, "one"));
  ASSERT_TRUE(cached_.GetHost(ip).has_value());  // populate the cache

  // A no-op refresh journals nothing but moves last_seen: the cached view
  // must not serve the stale timestamp.
  write_.IngestScan(VersionedRecord(ip, 80, Timestamp{900}, "one"));
  auto view = cached_.GetHost(ip);
  ASSERT_TRUE(view.has_value());
  ASSERT_EQ(view->services.size(), 1u);
  EXPECT_EQ(view->services[0].last_seen, Timestamp{900});
  ExpectViewsEqual(view, uncached_.GetHost(ip));

  // A failed refresh flags pending eviction (§4.6) — also non-journaled.
  write_.IngestFailure(key, Timestamp{2000});
  view = cached_.GetHost(ip);
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(view->services[0].pending_eviction);
  ExpectViewsEqual(view, uncached_.GetHost(ip));

  // A content change journals a delta; the new version must surface.
  write_.IngestScan(VersionedRecord(ip, 80, Timestamp{3000}, "two"));
  view = cached_.GetHost(ip);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->services[0].record.html_title, "release two");
  EXPECT_FALSE(view->services[0].pending_eviction);
  ExpectViewsEqual(view, uncached_.GetHost(ip));

  // Eviction removes the service; cached and uncached agree on absence.
  write_.IngestFailure(key, Timestamp{4000});
  write_.AdvanceTo(Timestamp{4000} + Duration::Hours(73));
  EXPECT_FALSE(uncached_.GetHost(ip).has_value());
  EXPECT_FALSE(cached_.GetHost(ip).has_value());
}

// ----------------------------------------------------------------- stress

// The tentpole stress contract: N readers hammer GetHost through the cache
// while the command thread appends. Every returned view must correspond to
// some journal watermark — in particular the version stamp in a service's
// banner and title (written in one delta) must agree, and per-reader
// watermarks must be monotonic per host.
TEST(ServingStressTest, ConcurrentReadersNeverObserveTornViews) {
  storage::EventJournal journal;
  pipeline::EventBus bus;
  simnet::UniverseConfig plan_cfg;
  plan_cfg.seed = 2;
  plan_cfg.universe_size = 1u << 16;
  simnet::BlockPlan plan(plan_cfg);
  pipeline::WriteSide write(journal, bus);
  const engines::ContextEnricher enricher(plan, nullptr, nullptr);
  pipeline::ReadSide read(journal, write, &enricher);
  read.EnableCache();

  constexpr std::uint32_t kHosts = 8;
  constexpr int kVersions = 160;
  const std::vector<Port> ports = {80, 443};

  // Seed every host at version 1 so readers always find something.
  for (std::uint32_t h = 0; h < kHosts; ++h) {
    for (Port port : ports) {
      write.IngestScan(
          VersionedRecord(IPv4Address(h + 1), port, Timestamp{1}, "1"));
    }
  }

  std::atomic<bool> done{false};
  const int reader_count = ReaderThreads();
  std::vector<std::thread> readers;
  readers.reserve(static_cast<std::size_t>(reader_count));
  for (int r = 0; r < reader_count; ++r) {
    readers.emplace_back([&, r] {
      std::vector<std::uint64_t> last_watermark(kHosts, 0);
      std::uint32_t h = static_cast<std::uint32_t>(r);
      std::uint64_t looked = 0;
      while (!done.load(std::memory_order_relaxed) || looked < 64) {
        h = (h + 1) % kHosts;
        ++looked;
        const auto view = read.GetHost(IPv4Address(h + 1));
        if (!view.has_value()) continue;
        // Watermark is some valid journal position, monotone per host.
        ASSERT_GT(view->watermark, 0u);
        ASSERT_GE(view->watermark, last_watermark[h]);
        last_watermark[h] = view->watermark;
        for (const pipeline::ServiceView& service : view->services) {
          // Banner and title were written in one delta: disagreement
          // means the view was assembled from a torn state.
          ASSERT_EQ(VersionOfBanner(service.record.banner),
                    VersionOfTitle(service.record.html_title));
        }
      }
    });
  }

  // Command thread: walk every host/port through kVersions updates, with
  // periodic failure + recovery so scan-state revisions churn too.
  for (int v = 2; v <= kVersions; ++v) {
    const std::string version = std::to_string(v);
    const Timestamp at{static_cast<std::int64_t>(v) * 10};
    for (std::uint32_t h = 0; h < kHosts; ++h) {
      for (Port port : ports) {
        if (v % 17 == 0) {
          write.IngestFailure({IPv4Address(h + 1), port, Transport::kTcp}, at);
        }
        write.IngestScan(VersionedRecord(IPv4Address(h + 1), port, at, version));
      }
    }
    write.AdvanceTo(at);
  }
  done.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  // Once the writer is quiet, lookups are pure hits.
  const std::uint64_t hits_before = read.cache()->hits();
  for (std::uint32_t h = 0; h < kHosts; ++h) {
    ASSERT_TRUE(read.GetHost(IPv4Address(h + 1)).has_value());
    ASSERT_TRUE(read.GetHost(IPv4Address(h + 1)).has_value());
  }
  EXPECT_GE(read.cache()->hits(), hits_before + kHosts);
  EXPECT_GT(read.cache()->HitRatio(), 0.0);

  // Final state: everything at the last version.
  const auto view = read.GetHost(IPv4Address(1));
  ASSERT_TRUE(view.has_value());
  ASSERT_EQ(view->services.size(), ports.size());
  EXPECT_EQ(view->services[0].record.html_title,
            "release " + std::to_string(kVersions));
}

// ----------------------------------------------------------------- frontend

class FrontendTest : public ::testing::Test {
 protected:
  FrontendTest()
      : plan_(PlanConfig()), write_(journal_, bus_),
        enricher_(plan_, nullptr, nullptr),
        read_(journal_, write_, &enricher_) {
    read_.EnableCache();
    for (std::uint32_t h = 0; h < kHosts; ++h) {
      const IPv4Address ip(h + 1);
      hosts_.push_back(ip);
      write_.IngestScan(VersionedRecord(ip, 80, Timestamp{100}, "one"));
    }
    journal_.ForEachEntity(
        [&](std::string_view entity, const storage::FieldMap& fields) {
          index_.Index(entity, fields);
        });
    search::DailySnapshot snapshot;
    snapshot.day = 1;
    snapshot.total_services = kHosts;
    snapshot.total_hosts = kHosts;
    snapshot.by_protocol["HTTP"] = kHosts;
    analytics_.AddSnapshot(snapshot);
  }

  static simnet::UniverseConfig PlanConfig() {
    simnet::UniverseConfig cfg;
    cfg.seed = 2;
    cfg.universe_size = 1u << 16;
    return cfg;
  }

  static constexpr std::uint32_t kHosts = 8;

  storage::EventJournal journal_;
  pipeline::EventBus bus_;
  simnet::BlockPlan plan_;
  pipeline::WriteSide write_;
  engines::ContextEnricher enricher_;
  pipeline::ReadSide read_;
  search::SearchIndex index_;
  search::AnalyticsStore analytics_;
  std::vector<IPv4Address> hosts_;
};

TEST_F(FrontendTest, MixedBatchServesEveryQueryKind) {
  ServingFrontend::Options options;
  options.threads = 2;
  ServingFrontend frontend(read_, index_, analytics_, options);

  std::vector<Query> batch;
  for (IPv4Address ip : hosts_) {
    Query q;
    q.kind = Query::Kind::kLookup;
    q.ip = ip;
    batch.push_back(q);
  }
  Query history;
  history.kind = Query::Kind::kHistory;
  history.ip = hosts_[0];
  history.at = Timestamp{500};
  batch.push_back(history);
  Query search;
  search.kind = Query::Kind::kSearch;
  search.text = "nginx";
  batch.push_back(search);
  Query analytics;
  analytics.kind = Query::Kind::kAnalytics;
  analytics.at = Timestamp{2 * 1440};  // day 2: latest-up-to resolves day 1
  analytics.text = "HTTP";
  batch.push_back(analytics);

  const BatchReport report = frontend.Run(batch);
  EXPECT_EQ(report.queries, batch.size());
  EXPECT_EQ(report.lookups, kHosts);
  EXPECT_EQ(report.histories, 1u);
  EXPECT_EQ(report.searches, 1u);
  EXPECT_EQ(report.analytics, 1u);
  EXPECT_EQ(report.lookup_hits, kHosts);
  EXPECT_GT(report.search_results, 0u);
  EXPECT_GT(report.elapsed_us, 0.0);
  EXPECT_GT(report.qps, 0.0);
  EXPECT_EQ(frontend.queries_served(), batch.size());

  // The same batch again is served from the view cache.
  const BatchReport again = frontend.Run(batch);
  EXPECT_EQ(again.cache_hits, static_cast<std::uint64_t>(kHosts));
  EXPECT_GT(again.cache_hit_ratio, 0.0);
  EXPECT_EQ(frontend.queries_served(), 2 * batch.size());
  EXPECT_GT(frontend.LookupP99Us(), 0.0);
}

TEST_F(FrontendTest, InlineModeServesWithoutThreads) {
  ServingFrontend::Options options;
  options.threads = 0;
  ServingFrontend frontend(read_, index_, analytics_, options);
  Query q;
  q.kind = Query::Kind::kLookup;
  q.ip = hosts_[0];
  const BatchReport report = frontend.Run({q});
  EXPECT_EQ(report.lookup_hits, 1u);
}

TEST_F(FrontendTest, MixedWorkloadIsDeterministicAndLookupHeavy) {
  Rng rng(99);
  const auto batch = ServingFrontend::MixedWorkload(
      1000, hosts_, {"nginx", "http"}, {"HTTP"}, Timestamp{10'000}, rng);
  ASSERT_EQ(batch.size(), 1000u);
  std::size_t lookups = 0, histories = 0, searches = 0, analytics = 0;
  for (const Query& q : batch) {
    switch (q.kind) {
      case Query::Kind::kLookup: ++lookups; break;
      case Query::Kind::kHistory: ++histories; break;
      case Query::Kind::kSearch: ++searches; break;
      case Query::Kind::kAnalytics: ++analytics; break;
      case Query::Kind::kAggregate: break;  // not emitted by MixedWorkload
    }
    EXPECT_GE(q.at.minutes, 0);
  }
  EXPECT_GT(lookups, 500u);  // ~70% of traffic
  EXPECT_GT(histories, 0u);
  EXPECT_GT(searches, 0u);
  EXPECT_GT(analytics, 0u);

  Rng replay(99);
  const auto batch2 = ServingFrontend::MixedWorkload(
      1000, hosts_, {"nginx", "http"}, {"HTTP"}, Timestamp{10'000}, replay);
  ASSERT_EQ(batch2.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch2[i].kind, batch[i].kind);
    EXPECT_EQ(batch2[i].ip.value(), batch[i].ip.value());
  }
}

// --------------------------------------------------------- degradation
//
// The graceful-degradation ladder under injected read faults: retry ->
// stale-cache answer -> failed, plus batch-level load shedding. Every
// query is accounted for in BatchReport; nothing ever crashes.

std::vector<Query> LookupBatch(const std::vector<IPv4Address>& hosts) {
  std::vector<Query> batch;
  for (IPv4Address ip : hosts) {
    Query q;
    q.kind = Query::Kind::kLookup;
    q.ip = ip;
    batch.push_back(q);
  }
  return batch;
}

TEST_F(FrontendTest, BatchDeadlineShedsExcessQueries) {
  ServingFrontend::Options options;
  options.threads = 0;
  options.batch_deadline_us = 0.05;  // gone after roughly one lookup
  ServingFrontend frontend(read_, index_, analytics_, options);

  std::vector<Query> batch;
  for (int i = 0; i < 32; ++i) {
    const auto one = LookupBatch(hosts_);
    batch.insert(batch.end(), one.begin(), one.end());
  }
  const BatchReport report = frontend.Run(batch);
  EXPECT_GT(report.shed, 0u);
  // Shed queries never touch the read path; everything else (known
  // hosts, no faults) answers — the two partitions cover the batch.
  EXPECT_EQ(report.shed + report.lookup_hits, report.queries);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(frontend.queries_served(), batch.size());
}

#if defined(CENSYSIM_FAULT_INJECTION)

TEST_F(FrontendTest, TransientReadFaultsRetryToSuccess) {
  ServingFrontend::Options options;
  options.threads = 0;  // inline: deterministic fault-to-query assignment
  options.max_read_retries = 3;
  options.retry_backoff_us = 1;
  ServingFrontend frontend(read_, index_, analytics_, options);

  // The first two read attempts of the batch fail; backoff-retries
  // absorb both and every query still answers fresh.
  fault::ScopedPlan plan(5, {{.point = "serving.read",
                              .mode = fault::Mode::kErrorReturn,
                              .max_fires = 2}});
  const BatchReport report = frontend.Run(LookupBatch(hosts_));
  EXPECT_EQ(report.lookup_hits, kHosts);
  EXPECT_EQ(report.read_faults, 2u);
  EXPECT_EQ(report.retries, 2u);
  EXPECT_EQ(report.degraded, 0u);
  EXPECT_EQ(report.failed, 0u);
}

TEST_F(FrontendTest, PersistentFaultsDegradeLookupsToStaleCache) {
  ServingFrontend::Options options;
  options.threads = 0;
  options.max_read_retries = 2;
  options.retry_backoff_us = 1;
  ServingFrontend frontend(read_, index_, analytics_, options);

  // Warm the view cache while reads are healthy.
  const std::vector<Query> batch = LookupBatch(hosts_);
  ASSERT_EQ(frontend.Run(batch).lookup_hits, kHosts);

  // Then every fresh read fails, every retry included. Lookups fall to
  // the last cached view instead of failing.
  const std::uint64_t stale0 = read_.cache()->stale_hits();
  fault::ScopedPlan plan(
      6, {{.point = "serving.read", .mode = fault::Mode::kErrorReturn}});
  const BatchReport report = frontend.Run(batch);
  EXPECT_EQ(report.degraded, kHosts);
  EXPECT_EQ(report.lookup_hits, kHosts);  // stale answers still answer
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.read_faults, kHosts * 3u);  // retries+1 attempts each
  EXPECT_EQ(report.retries, kHosts * 2u);
  EXPECT_EQ(read_.cache()->stale_hits(), stale0 + kHosts);
}

TEST_F(FrontendTest, NoStaleFallbackMeansFailedNotCrashed) {
  ServingFrontend::Options options;
  options.threads = 0;
  options.max_read_retries = 1;
  options.retry_backoff_us = 1;
  options.allow_stale_reads = false;
  ServingFrontend frontend(read_, index_, analytics_, options);

  // Even kCrash on the read path is just a transient error: a pure
  // reader has nothing to tear, so the site never throws.
  fault::ScopedPlan plan(
      9, {{.point = "serving.read", .mode = fault::Mode::kCrash}});
  std::vector<Query> batch = LookupBatch(hosts_);
  Query search;
  search.kind = Query::Kind::kSearch;
  search.text = "nginx";
  batch.push_back(search);
  const BatchReport report = frontend.Run(batch);
  EXPECT_EQ(report.failed, batch.size());
  EXPECT_EQ(report.degraded, 0u);
  EXPECT_EQ(report.lookup_hits, 0u);
  EXPECT_EQ(report.search_results, 0u);
  EXPECT_EQ(frontend.queries_served(), batch.size());
}

#endif  // CENSYSIM_FAULT_INJECTION

// --------------------------------------------------- serving during ticks

std::uint64_t JournalDigest(const engines::CensysEngine& engine) {
  std::uint64_t digest = 1469598103934665603ull;
  engine.journal().ScanAll([&](std::string_view key, std::string_view value) {
    digest = (digest ^ Fnv1a64(key)) * 1099511628211ull;
    digest = (digest ^ Fnv1a64(value)) * 1099511628211ull;
    return true;
  });
  return digest;
}

// Acceptance criterion for the serving layer: a frontend hammering mixed
// query traffic while the engine ticks must not perturb the journal — the
// digest matches a run with no serving traffic at all.
TEST(ServingWithTicksTest, ServingTrafficDoesNotPerturbTheJournal) {
  engines::WorldConfig cfg;
  cfg.universe.seed = 21;
  cfg.universe.universe_size = 1u << 16;
  cfg.universe.target_services = 3000;
  cfg.universe.ics_scale = 128;
  cfg.with_alternatives = false;
  cfg.censys.threads = 2;

  auto quiet_run = [&] {
    engines::World world(cfg);
    world.Bootstrap();
    world.RunForDays(1.5);
    return std::tuple(JournalDigest(world.censys()),
                      world.censys().journal().RowCount(),
                      world.censys().journal().event_count());
  };
  const auto baseline = quiet_run();

  engines::World world(cfg);
  world.Bootstrap();
  // The frontend is wired from above the engine (layer DAG: serving sits
  // on top of engines), against the engine's read side and indexes.
  ServingFrontend frontend(world.censys().read_side(),
                           world.censys().search_index(),
                           world.censys().analytics(),
                           ServingFrontend::Options{2});

  std::vector<IPv4Address> hosts;
  for (std::uint32_t ip = 0; ip < (1u << 16); ip += 97) {
    hosts.emplace_back(ip);
  }
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> batches{0};
  std::thread traffic([&] {
    Rng rng(7);
    const Timestamp asof = Timestamp{3 * 1440};
    while (!done.load(std::memory_order_relaxed)) {
      const auto batch = ServingFrontend::MixedWorkload(
          128, hosts, {"nginx", "ssh"}, {"HTTP", "SSH"}, asof, rng);
      frontend.Run(batch);
      batches.fetch_add(1, std::memory_order_relaxed);
    }
  });
  world.RunForDays(1.5);
  done.store(true, std::memory_order_relaxed);
  traffic.join();

  EXPECT_GT(batches.load(), 0u);
  EXPECT_GT(frontend.queries_served(), 0u);
  EXPECT_EQ(JournalDigest(world.censys()), std::get<0>(baseline));
  EXPECT_EQ(world.censys().journal().RowCount(), std::get<1>(baseline));
  EXPECT_EQ(world.censys().journal().event_count(), std::get<2>(baseline));
}

}  // namespace
}  // namespace censys::serving
