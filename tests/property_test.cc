// Property-based tests: randomized inputs checked against invariants or
// brute-force reference implementations. Each suite sweeps seeds through
// TEST_P so failures print the offending seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/cidr.h"
#include "core/rng.h"
#include "core/strings.h"
#include "fingerprint/dsl.h"
#include "scan/cyclic.h"
#include "search/export.h"
#include "search/index.h"
#include "storage/delta.h"
#include "storage/journal.h"
#include "storage/serialize.h"

namespace censys {
namespace {

class SeededTest : public ::testing::TestWithParam<std::uint64_t> {};

std::string RandomToken(Rng& rng, std::size_t max_len = 12) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789._-";
  std::string out;
  const std::size_t len = 1 + rng.NextBelow(max_len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[rng.NextBelow(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

storage::FieldMap RandomFields(Rng& rng, std::size_t max_fields = 12) {
  storage::FieldMap fields;
  const std::size_t n = rng.NextBelow(max_fields + 1);
  for (std::size_t i = 0; i < n; ++i) {
    fields[RandomToken(rng)] = RandomToken(rng, 20);
  }
  return fields;
}

// ------------------------------------------------- delta: round-trip property

using DeltaProperty = SeededTest;

TEST_P(DeltaProperty, ApplyComputeIsIdentity) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const storage::FieldMap before = RandomFields(rng);
    const storage::FieldMap after = RandomFields(rng);
    const storage::Delta delta = storage::ComputeDelta(before, after);
    storage::FieldMap state = before;
    storage::ApplyDelta(state, delta);
    ASSERT_EQ(state, after);

    // Encoded deltas survive the wire.
    const auto decoded = storage::Delta::Decode(delta.Encode());
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(*decoded, delta);

    // A delta between identical states is empty.
    ASSERT_TRUE(storage::ComputeDelta(after, after).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaProperty, ::testing::Range(std::uint64_t{0}, std::uint64_t{8}));

// --------------------------------------------- field codec: corruption safety

using CodecProperty = SeededTest;

TEST_P(CodecProperty, DecoderNeverCrashesOnMutatedInput) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    std::string encoded = storage::EncodeFields(RandomFields(rng));
    // Random mutations: decoder must either succeed or return nullopt —
    // never crash, never read out of bounds (ASAN-checked in CI builds).
    for (int mutation = 0; mutation < 8; ++mutation) {
      std::string mutated = encoded;
      if (mutated.empty()) break;
      const std::size_t pos = rng.NextBelow(mutated.size());
      switch (rng.NextBelow(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.NextBelow(256));
          break;
        case 1:
          mutated.resize(pos);
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>(rng.NextBelow(256)));
          break;
      }
      (void)storage::DecodeFields(mutated);  // must not crash
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecProperty, ::testing::Range(std::uint64_t{0}, std::uint64_t{6}));

// -------------------------------------------------- CidrSet vs brute force

using CidrProperty = SeededTest;

TEST_P(CidrProperty, MatchesBruteForceReference) {
  Rng rng(GetParam());
  CidrSet set;
  std::set<std::uint32_t> reference;
  // Work in a small 16-bit space so brute force stays cheap.
  for (int i = 0; i < 12; ++i) {
    const int prefix_len = 24 + static_cast<int>(rng.NextBelow(9));  // 24..32
    const IPv4Address base(
        static_cast<std::uint32_t>(rng.NextBelow(1u << 16)));
    const Cidr cidr(base, prefix_len);
    set.Insert(cidr);
    for (std::uint64_t a = 0; a < cidr.size(); ++a) {
      const std::uint32_t addr = cidr.AddressAt(a).value();
      if (addr < (1u << 16) + 512) reference.insert(addr);
    }
  }
  for (std::uint32_t addr = 0; addr < (1u << 16) + 512; ++addr) {
    ASSERT_EQ(set.Contains(IPv4Address(addr)), reference.contains(addr))
        << "addr " << addr;
  }
  // Address count >= reference size within the sampled window.
  ASSERT_GE(set.AddressCount(), reference.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CidrProperty, ::testing::Range(std::uint64_t{0}, std::uint64_t{8}));

// ------------------------------------------- cyclic permutation: bijectivity

class PermutationProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {
};

TEST_P(PermutationProperty, IsABijectionOverItsDomain) {
  const auto [n, seed] = GetParam();
  scan::CyclicPermutation perm(n, seed);
  std::vector<bool> seen(n, false);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t v = perm.Next();
    ASSERT_LT(v, n);
    ASSERT_FALSE(seen[v]);
    seen[v] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PermutationProperty,
    ::testing::Combine(::testing::Values(std::uint64_t{2}, std::uint64_t{3}, std::uint64_t{64}, std::uint64_t{1000}, std::uint64_t{65536},
                                         std::uint64_t{100003}),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{99})));

// ----------------------------------------------- search index vs brute force

using IndexProperty = SeededTest;

TEST_P(IndexProperty, TermQueriesMatchLinearScan) {
  Rng rng(GetParam());
  search::SearchIndex index;
  std::map<std::string, storage::FieldMap> docs;
  static constexpr const char* kFields[] = {"name", "banner", "title"};
  static constexpr const char* kWords[] = {"http", "ssh", "nginx", "apache",
                                           "router", "camera"};
  for (int d = 0; d < 60; ++d) {
    storage::FieldMap fields;
    for (const char* field : kFields) {
      if (rng.Bernoulli(0.7)) {
        std::string value;
        const std::size_t words = 1 + rng.NextBelow(3);
        for (std::size_t w = 0; w < words; ++w) {
          if (w > 0) value += ' ';
          value += kWords[rng.NextBelow(6)];
        }
        fields[field] = value;
      }
    }
    const std::string id = "doc" + std::to_string(d);
    index.Index(id, fields);
    docs[id] = std::move(fields);
  }

  auto brute = [&](const std::string& field, const std::string& word) {
    std::vector<std::string> hits;
    for (const auto& [id, fields] : docs) {
      const auto it = fields.find(field);
      if (it == fields.end()) continue;
      for (std::string_view token : Split(it->second, ' ')) {
        if (token == word) {
          hits.push_back(id);
          break;
        }
      }
    }
    return hits;
  };

  std::string error;
  for (const char* field : kFields) {
    for (const char* word : kWords) {
      const auto expected = brute(field, word);
      const auto actual =
          index.Search(std::string(field) + ": " + word, &error);
      ASSERT_TRUE(error.empty()) << error;
      ASSERT_EQ(actual, expected) << field << ":" << word;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexProperty, ::testing::Range(std::uint64_t{0}, std::uint64_t{6}));

// -------------------------------------------------------- DSL: parser safety

using DslProperty = SeededTest;

TEST_P(DslProperty, RandomInputNeverCrashesParserOrEvaluator) {
  Rng rng(GetParam());
  static constexpr const char* kPieces[] = {
      "(", ")", "and", "or", "not", "=", "contains", "glob", "\"x\"",
      "field", "service.name", "\"HTTP\"", " ", "if", "lower", "\""};
  const storage::FieldMap env = {{"service.name", "HTTP"}};
  for (int trial = 0; trial < 300; ++trial) {
    std::string source;
    const std::size_t pieces = 1 + rng.NextBelow(12);
    for (std::size_t i = 0; i < pieces; ++i) {
      source += kPieces[rng.NextBelow(std::size(kPieces))];
    }
    // Must not crash; any result (valid or invalid) is acceptable.
    fingerprint::CompiledRule rule = fingerprint::CompiledRule::Compile(source);
    (void)rule.Matches(env);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DslProperty, ::testing::Range(std::uint64_t{0}, std::uint64_t{4}));

// ----------------------------------------------------- journal model checking

using JournalProperty = SeededTest;

TEST_P(JournalProperty, ReconstructionMatchesShadowModel) {
  // Random command sequence applied both to the journal and to a plain
  // in-memory shadow; reconstruction at every recorded time must agree.
  Rng rng(GetParam());
  storage::EventJournal::Options options;
  options.snapshot_every = 1 + static_cast<std::uint32_t>(rng.NextBelow(6));
  storage::EventJournal journal(options);

  storage::FieldMap shadow;
  std::vector<std::pair<Timestamp, storage::FieldMap>> checkpoints;
  std::int64_t minute = 0;
  for (int step = 0; step < 120; ++step) {
    minute += 1 + static_cast<std::int64_t>(rng.NextBelow(100));
    storage::FieldMap next = shadow;
    // Random mutation: set or remove a few keys.
    const std::size_t ops = 1 + rng.NextBelow(3);
    for (std::size_t i = 0; i < ops; ++i) {
      const std::string key = "k" + std::to_string(rng.NextBelow(10));
      if (rng.Bernoulli(0.3)) {
        next.erase(key);
      } else {
        next[key] = RandomToken(rng);
      }
    }
    journal.Append("entity", storage::EventKind::kServiceChanged,
                   Timestamp{minute}, storage::ComputeDelta(shadow, next));
    shadow = std::move(next);
    checkpoints.emplace_back(Timestamp{minute}, shadow);
  }

  for (const auto& [at, expected] : checkpoints) {
    const auto state = journal.ReconstructAt("entity", at);
    ASSERT_TRUE(state.has_value()) << at.minutes;
    ASSERT_EQ(*state, expected) << "at minute " << at.minutes;
    // Between events, state equals the previous checkpoint.
    const auto just_after =
        journal.ReconstructAt("entity", at + Duration::Minutes(1));
    ASSERT_TRUE(just_after.has_value());
  }
  const core::ThreadRoleGuard role(journal.command_role());
  ASSERT_EQ(*journal.CurrentState("entity"), shadow);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JournalProperty, ::testing::Range(std::uint64_t{0}, std::uint64_t{8}));

// ------------------------------------------------ field codec: round trip

using FieldCodecProperty = SeededTest;

TEST_P(FieldCodecProperty, DecodeEncodeIsIdentity) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    const storage::FieldMap fields = RandomFields(rng);
    const auto decoded = storage::DecodeFields(storage::EncodeFields(fields));
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(*decoded, fields);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FieldCodecProperty,
                         ::testing::Range(std::uint64_t{0}, std::uint64_t{8}));

// --------------------------------------- delta wire format: apply equivalence

using DeltaWireProperty = SeededTest;

TEST_P(DeltaWireProperty, EncodedDeltaAppliesIdentically) {
  // Applying a delta that took a round trip through its wire encoding must
  // be indistinguishable from applying the original — against the state it
  // was computed from AND against arbitrary unrelated states.
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const storage::FieldMap before = RandomFields(rng);
    const storage::FieldMap after = RandomFields(rng);
    const storage::Delta delta = storage::ComputeDelta(before, after);
    const auto wire = storage::Delta::Decode(delta.Encode());
    ASSERT_TRUE(wire.has_value());

    storage::FieldMap direct = before;
    storage::FieldMap via_wire = before;
    storage::ApplyDelta(direct, delta);
    storage::ApplyDelta(via_wire, *wire);
    ASSERT_EQ(direct, via_wire);
    ASSERT_EQ(direct, after);

    storage::FieldMap unrelated = RandomFields(rng);
    storage::FieldMap unrelated_wire = unrelated;
    storage::ApplyDelta(unrelated, delta);
    storage::ApplyDelta(unrelated_wire, *wire);
    ASSERT_EQ(unrelated, unrelated_wire);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaWireProperty,
                         ::testing::Range(std::uint64_t{0}, std::uint64_t{8}));

// -------------------------------------- snapshot cadence: oracle equivalence

using SnapshotCadenceProperty = SeededTest;

TEST_P(SnapshotCadenceProperty, ReconstructionIsCadenceIndependent) {
  // One random event sequence journaled under very different snapshot
  // cadences (every event ... effectively never) must reconstruct the same
  // state at every event timestamp — and that state must equal a naive
  // oracle that replays every delta in order with no snapshots at all.
  Rng rng(GetParam());
  struct Event {
    Timestamp at;
    storage::Delta delta;
  };
  std::vector<Event> events;
  std::vector<storage::FieldMap> oracle;  // state after events[i]
  storage::FieldMap state;
  std::int64_t minute = 0;
  for (int step = 0; step < 150; ++step) {
    minute += 1 + static_cast<std::int64_t>(rng.NextBelow(45));
    storage::FieldMap next = state;
    const std::size_t ops = 1 + rng.NextBelow(4);
    for (std::size_t i = 0; i < ops; ++i) {
      const std::string key = "k" + std::to_string(rng.NextBelow(12));
      if (rng.Bernoulli(0.25)) {
        next.erase(key);
      } else {
        next[key] = RandomToken(rng);
      }
    }
    const storage::Delta delta = storage::ComputeDelta(state, next);
    if (delta.empty()) continue;
    events.push_back(Event{Timestamp{minute}, delta});
    state = std::move(next);
    oracle.push_back(state);
  }
  ASSERT_FALSE(events.empty());

  for (const std::uint32_t cadence : {1u, 4u, 16u, 1000u}) {
    storage::EventJournal::Options options;
    options.snapshot_every = cadence;
    storage::EventJournal journal(options);
    for (const Event& ev : events) {
      journal.Append("host/1", storage::EventKind::kServiceChanged, ev.at,
                     ev.delta);
    }
    for (std::size_t i = 0; i < events.size(); ++i) {
      const auto got = journal.ReconstructAt("host/1", events[i].at);
      ASSERT_TRUE(got.has_value())
          << "cadence=" << cadence << " event=" << i;
      ASSERT_EQ(*got, oracle[i]) << "cadence=" << cadence << " event=" << i;
    }
    // A cadence of 1 snapshots after every event; the replay bound proves
    // snapshots actually short-circuit reconstruction.
    if (cadence == 1) {
      EXPECT_LE(journal.max_replay_length(), 1u);
    }
    const core::ThreadRoleGuard role(journal.command_role());
    ASSERT_EQ(*journal.CurrentState("host/1"), state);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotCadenceProperty,
                         ::testing::Range(std::uint64_t{0}, std::uint64_t{6}));

// -------------------------------------------------- export: round-trip fuzz

using ExportProperty = SeededTest;

TEST_P(ExportProperty, RoundTripsArbitrarySnapshots) {
  Rng rng(GetParam());
  search::SnapshotWriter writer(static_cast<std::int64_t>(GetParam()),
                                "fuzz");
  std::vector<search::ExportRecord> expected;
  const std::size_t count = rng.NextBelow(800);
  for (std::size_t i = 0; i < count; ++i) {
    search::ExportRecord record{RandomToken(rng, 24), RandomFields(rng, 6)};
    writer.Append(record);
    expected.push_back(std::move(record));
  }
  const std::string bytes = writer.Finish();

  search::SnapshotReader reader;
  std::string error;
  ASSERT_TRUE(reader.Open(bytes, &error)) << error;
  ASSERT_EQ(reader.records().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(reader.records()[i], expected[i]) << i;
  }

  // Any single-byte mutation in the body must be detected or yield a
  // clean parse failure — never a crash.
  for (int mutation = 0; mutation < 16 && !bytes.empty(); ++mutation) {
    std::string mutated = bytes;
    mutated[rng.NextBelow(mutated.size())] ^=
        static_cast<char>(1 + rng.NextBelow(255));
    search::SnapshotReader mutated_reader;
    (void)mutated_reader.Open(mutated, &error);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExportProperty, ::testing::Range(std::uint64_t{0}, std::uint64_t{6}));

}  // namespace
}  // namespace censys
