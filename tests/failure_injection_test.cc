// Failure injection: the engine must degrade gracefully — not crash, not
// spiral into eviction storms, not corrupt its journal — under network
// regimes far worse than the calibrated defaults (§2.2's fractured
// visibility taken to extremes).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/fault.h"
#include "core/strings.h"
#include "engines/world.h"
#include "search/index.h"
#include "storage/journal.h"
#include "test_tmpdir.h"

namespace censys::engines {
namespace {

WorldConfig BaseWorld() {
  WorldConfig cfg;
  cfg.universe.seed = 77;
  cfg.universe.universe_size = 1u << 16;
  cfg.universe.target_services = 6000;
  cfg.universe.ics_scale = 0;
  cfg.with_alternatives = false;
  return cfg;
}

struct RunResult {
  std::size_t tracked;
  std::uint64_t evicted;
  double accuracy;
};

RunResult RunScenario(WorldConfig cfg, double days = 4.0) {
  World world(cfg);
  world.Bootstrap();
  world.RunForDays(days);
  RunResult result{};
  result.tracked = world.censys().write_side().tracked_count();
  result.evicted = world.censys().write_side().services_evicted();
  std::uint64_t live = 0, sampled = 0;
  world.censys().ForEachEntry([&](const EngineEntry& entry) {
    if (sampled >= 1500) return;
    ++sampled;
    if (world.internet().FindService(entry.key, world.now()) != nullptr) {
      ++live;
    }
  });
  result.accuracy = sampled ? double(live) / double(sampled) : 0;
  return result;
}

TEST(FailureInjectionTest, TenPercentPacketLoss) {
  WorldConfig cfg = BaseWorld();
  cfg.universe.base_loss_rate = 0.10;
  const RunResult result = RunScenario(cfg);
  // Coverage survives (refresh retries smooth loss); accuracy holds; the
  // eviction rate does not explode from spurious single-probe failures
  // alone (pending-eviction clears on the next successful refresh).
  EXPECT_GT(result.tracked, 3000u);
  EXPECT_GT(result.accuracy, 0.75);
  EXPECT_LT(result.evicted, result.tracked);
}

TEST(FailureInjectionTest, OutageStorm) {
  WorldConfig cfg = BaseWorld();
  cfg.universe.outage_rate_per_day = 0.5;   // half of all networks daily
  cfg.universe.outage_mean_hours = 8.0;
  const RunResult result = RunScenario(cfg);
  EXPECT_GT(result.tracked, 2500u);
  // Outages cause pending-eviction churn but the 72 h deadline plus
  // multi-PoP retries keep most transient victims in the dataset.
  EXPECT_GT(result.accuracy, 0.6);
}

TEST(FailureInjectionTest, HeavyBlocking) {
  WorldConfig cfg = BaseWorld();
  cfg.universe.blocking_sensitivity = 0.05;  // ~33x the calibrated default
  const RunResult heavy = RunScenario(cfg);
  const RunResult normal = RunScenario(BaseWorld());
  // Blocking costs coverage — the §2.2 trade-off — but never correctness.
  EXPECT_LT(heavy.tracked, normal.tracked);
  EXPECT_GT(heavy.accuracy, 0.7);
}

TEST(FailureInjectionTest, ExtremeChurn) {
  WorldConfig cfg = BaseWorld();
  cfg.universe.mean_lifetime_cloud_days = 1.0;
  cfg.universe.mean_lifetime_residential_days = 2.0;
  const RunResult result = RunScenario(cfg);
  // The dataset shrinks toward what daily refresh can confirm and accuracy
  // degrades, but the pipeline keeps functioning and pruning.
  EXPECT_GT(result.tracked, 1000u);
  EXPECT_GT(result.evicted, 100u);
  EXPECT_GT(result.accuracy, 0.4);
}

TEST(FailureInjectionTest, EverythingAtOnceStaysDeterministic) {
  WorldConfig cfg = BaseWorld();
  cfg.universe.base_loss_rate = 0.08;
  cfg.universe.outage_rate_per_day = 0.3;
  cfg.universe.blocking_sensitivity = 0.01;
  cfg.universe.mean_lifetime_cloud_days = 2.0;

  auto run_keys = [&] {
    World world(cfg);
    world.Bootstrap();
    world.RunForDays(2.0);
    std::vector<std::uint64_t> keys;
    world.censys().ForEachEntry(
        [&](const EngineEntry& e) { keys.push_back(e.key.Pack()); });
    std::sort(keys.begin(), keys.end());
    return keys;
  };
  const auto first = run_keys();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run_keys());  // chaos, but reproducible chaos
}

#if defined(CENSYSIM_FAULT_INJECTION)

// ------------------------------------------------------- storage faults
//
// The same graceful-degradation bar, one layer down: injected disk
// faults (core/fault.h) against the WAL-backed journal. The invariant
// throughout is the one DESIGN.md §9 promises — after any crash, the
// recovered journal is byte-identical (digest) to a journal that simply
// replayed the surviving prefix, and re-running the lost suffix of a
// deterministic workload converges on the fault-free end state.

constexpr int kTortureOps = 300;
constexpr int kTortureEntities = 5;

using test::ScratchDir;

storage::EventJournal::Options DurableOptions(const std::string& dir) {
  storage::EventJournal::Options options;
  options.shards = 4;
  options.wal.dir = dir;
  options.wal.segment_bytes = 8u << 10;  // rotate often under torture
  return options;
}

// Op `i` of the workload script — a pure function of i (always an
// explicit state change, never a journal no-op), so a run can resume
// from any recovered prefix.
void ApplyOp(storage::EventJournal& journal, int i) {
  storage::Delta delta;
  delta.ops.push_back({storage::FieldOp::Kind::kSet,
                       "f" + std::to_string(i % 3),
                       "v" + std::to_string(i)});
  journal.Append("host/" + std::to_string(i % kTortureEntities),
                 storage::EventKind::kServiceChanged,
                 Timestamp{static_cast<std::int64_t>(i + 1)}, delta);
}

// How many script ops the journal state reflects: op i targets entity
// i % kTortureEntities and always advances its watermark, so the
// watermark sum IS the resume index.
int AppliedOps(const storage::EventJournal& journal) {
  std::uint64_t total = 0;
  for (int e = 0; e < kTortureEntities; ++e) {
    total += journal.Watermark("host/" + std::to_string(e));
  }
  return static_cast<int>(total);
}

std::uint64_t JournalDigest(const storage::EventJournal& journal) {
  std::uint64_t digest = 1469598103934665603ull;
  journal.ScanAll([&](std::string_view key, std::string_view value) {
    digest = (digest ^ Fnv1a64(key)) * 1099511628211ull;
    digest = (digest ^ Fnv1a64(value)) * 1099511628211ull;
    return true;
  });
  return digest;
}

TEST(WalFaultTest, DiskFullSurfacesAsErrorNotCorruption) {
  const std::string dir = ScratchDir("disk_full");
  storage::EventJournal journal(DurableOptions(dir));
  for (int i = 0; i < 10; ++i) ApplyOp(journal, i);
  const std::uint64_t digest = JournalDigest(journal);

  {
    fault::ScopedPlan plan(
        1, {{.point = "storage.wal.append", .mode = fault::Mode::kErrorReturn}});
    EXPECT_THROW(ApplyOp(journal, 10), storage::WalIoError);
  }
  // The failed append left no trace, in memory or on disk.
  EXPECT_EQ(AppliedOps(journal), 10);
  EXPECT_EQ(JournalDigest(journal), digest);

  // The disk "recovers"; the same op now lands, and a fresh recovery
  // agrees with the live journal byte for byte.
  ApplyOp(journal, 10);
  storage::EventJournal recovered(DurableOptions(dir));
  const storage::RecoveryReport report = recovered.Recover();
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(JournalDigest(recovered), JournalDigest(journal));
}

TEST(WalFaultTest, BitFlipIsCutAtRecoveryAndReplayable) {
  const std::string dir = ScratchDir("bit_flip");
  storage::EventJournal journal(DurableOptions(dir));
  {
    // Silently corrupt the 21st record's frame on its way to disk.
    fault::ScopedPlan plan(7, {{.point = "storage.wal.append",
                                .mode = fault::Mode::kBitFlip,
                                .skip_hits = 20,
                                .max_fires = 1}});
    for (int i = 0; i < 60; ++i) ApplyOp(journal, i);
  }
  // The live journal never noticed (bit flips are silent) — it holds the
  // fault-free state.
  const std::uint64_t want = JournalDigest(journal);

  // Crash. Recovery CRC-checks every record, cuts the log at the flipped
  // one, and keeps only the prefix — 20 ops, nothing garbled.
  storage::EventJournal recovered(DurableOptions(dir));
  const storage::RecoveryReport report = recovered.Recover();
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_GT(report.corrupt_records + report.truncated_bytes, 0u);
  ASSERT_EQ(AppliedOps(recovered), 20);

  // Re-running the lost suffix converges on the fault-free end state.
  for (int i = 20; i < 60; ++i) ApplyOp(recovered, i);
  EXPECT_EQ(JournalDigest(recovered), want);
}

// PendingEvent twin of ApplyOp(i) for group-commit batches: same entity,
// same delta, so a recovered prefix is resumable by index either way.
storage::EventJournal::PendingEvent BatchOp(int i) {
  storage::EventJournal::PendingEvent ev;
  ev.entity_id = "host/" + std::to_string(i % kTortureEntities);
  ev.kind = storage::EventKind::kServiceChanged;
  ev.at = Timestamp{static_cast<std::int64_t>(i + 1)};
  ev.delta.ops.push_back({storage::FieldOp::Kind::kSet,
                          "f" + std::to_string(i % 3),
                          "v" + std::to_string(i)});
  return ev;
}

// Group commit stages many events into one WAL batch write; a crash mid-
// batch must leave a record-aligned durable prefix (kTornWrite flushes the
// framed records buffered before the tear) and recovery must equal a
// journal that simply ran that prefix — no torn record, no reordering.
TEST(WalFaultTest, CrashMidGroupCommitRecoversRecordAlignedPrefix) {
  const std::string dir = ScratchDir("group_commit_crash");
  storage::EventJournal journal(DurableOptions(dir));
  for (int i = 0; i < 20; ++i) ApplyOp(journal, i);

  // A clean crash while framing the batch: nothing durable, nothing
  // applied — the whole batch is lost, not a prefix of it torn mid-record.
  std::vector<storage::EventJournal::PendingEvent> batch;
  for (int i = 20; i < 60; ++i) batch.push_back(BatchOp(i));
  {
    fault::ScopedPlan plan(11, {{.point = "storage.wal.append",
                                 .mode = fault::Mode::kCrash,
                                 .skip_hits = 9,
                                 .max_fires = 1}});
    EXPECT_THROW(journal.AppendBatch(batch), fault::CrashException);
  }
  {
    storage::EventJournal recovered(DurableOptions(dir));
    const storage::RecoveryReport report = recovered.Recover();
    ASSERT_TRUE(report.ok) << report.error;
    EXPECT_EQ(AppliedOps(recovered), 20);
  }

  // A torn write on the batch's 10th record: the 9 records framed before
  // it reach the medium plus a partial frame; recovery truncates the
  // partial record and keeps exactly the aligned prefix.
  {
    fault::ScopedPlan plan(13, {{.point = "storage.wal.append",
                                 .mode = fault::Mode::kTornWrite,
                                 .skip_hits = 9,
                                 .max_fires = 1}});
    EXPECT_THROW(journal.AppendBatch(batch), fault::CrashException);
  }
  storage::EventJournal recovered(DurableOptions(dir));
  const storage::RecoveryReport report = recovered.Recover();
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_GT(report.corrupt_records + report.truncated_bytes, 0u);
  const int done = AppliedOps(recovered);
  EXPECT_EQ(done, 29);  // 20 singles + 9 whole batch records

  storage::EventJournal prefix{storage::EventJournal::Options{.shards = 4}};
  for (int i = 0; i < done; ++i) ApplyOp(prefix, i);
  EXPECT_EQ(JournalDigest(recovered), JournalDigest(prefix));

  // Resuming the lost suffix as a second group commit converges on the
  // fault-free end state.
  std::vector<storage::EventJournal::PendingEvent> rest;
  for (int i = done; i < 60; ++i) rest.push_back(BatchOp(i));
  recovered.AppendBatch(rest);
  storage::EventJournal reference{storage::EventJournal::Options{.shards = 4}};
  for (int i = 0; i < 60; ++i) ApplyOp(reference, i);
  EXPECT_EQ(JournalDigest(recovered), JournalDigest(reference));
}

TEST(WalFaultTest, CrashMidCheckpointFallsBackToOlderState) {
  const std::string dir = ScratchDir("ckpt_crash");
  storage::EventJournal journal(DurableOptions(dir));
  std::string error;
  for (int i = 0; i < 60; ++i) ApplyOp(journal, i);
  ASSERT_TRUE(journal.Checkpoint(&error).has_value()) << error;
  for (int i = 60; i < 100; ++i) ApplyOp(journal, i);
  const std::uint64_t want = JournalDigest(journal);

  {
    // The next checkpoint write tears partway through and the process
    // dies (checkpoint writes pass the same storage.wal.append point).
    fault::ScopedPlan plan(3, {{.point = "storage.wal.append",
                                .mode = fault::Mode::kTornWrite}});
    EXPECT_THROW(journal.Checkpoint(&error), fault::CrashException);
  }

  // The torn checkpoint was never renamed into place: recovery loads the
  // lsn-60 checkpoint, replays the 40-record tail, loses nothing.
  storage::EventJournal recovered(DurableOptions(dir));
  const storage::RecoveryReport report = recovered.Recover();
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.checkpoint_lsn, 60u);
  EXPECT_EQ(report.checkpoints_rejected, 0u);
  EXPECT_EQ(report.replayed_records, 40u);
  EXPECT_EQ(JournalDigest(recovered), want);
}

// The headline torture loop: for each seed, run the deterministic
// 300-op script against a WAL-backed journal while a fault plan kills
// the "process" (CrashException) at seed-chosen appends — sometimes
// cleanly, sometimes mid-write (torn), sometimes mid-checkpoint. After
// every death: fresh journal, Recover(), assert the recovered state is
// byte-identical to an uncrashed journal at the same prefix, resume the
// script from the watermark sum. Every seed must converge on the exact
// fault-free digest.
TEST(WalTortureTest, CrashRecoveryConvergesAcrossSeeds) {
  storage::EventJournal reference{storage::EventJournal::Options{.shards = 4}};
  for (int i = 0; i < kTortureOps; ++i) ApplyOp(reference, i);
  const std::uint64_t want = JournalDigest(reference);

  int total_crashes = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const std::string dir = ScratchDir("torture_" + std::to_string(seed));
    auto journal =
        std::make_unique<storage::EventJournal>(DurableOptions(dir));
    int done = 0;
    int crashes = 0;
    for (int attempt = 0; done < kTortureOps && attempt < 40; ++attempt) {
      const fault::Mode mode = attempt % 2 == 0 ? fault::Mode::kCrash
                                                : fault::Mode::kTornWrite;
      fault::ScopedPlan plan(seed * 100 + attempt,
                             {{.point = "storage.wal.append",
                               .mode = mode,
                               .probability = 0.04,
                               .max_fires = 1}});
      try {
        // Checkpoint the recovered state first (the checkpoint write is
        // itself a crash candidate), then push toward the end.
        std::string error;
        if (done > 0) {
          ASSERT_TRUE(journal->Checkpoint(&error).has_value()) << error;
        }
        for (int i = done; i < kTortureOps; ++i) ApplyOp(*journal, i);
        done = kTortureOps;
      } catch (const fault::CrashException&) {
        ++crashes;
        journal.reset();  // the process is dead; only the disk survives
        journal = std::make_unique<storage::EventJournal>(DurableOptions(dir));
        const storage::RecoveryReport report = journal->Recover();
        ASSERT_TRUE(report.ok) << report.error;
        done = AppliedOps(*journal);
        ASSERT_LE(done, kTortureOps);
        // Crash-consistency, the strong form: recovery must equal a
        // journal that simply ran the surviving prefix uncrashed.
        storage::EventJournal prefix{
            storage::EventJournal::Options{.shards = 4}};
        for (int i = 0; i < done; ++i) ApplyOp(prefix, i);
        ASSERT_EQ(JournalDigest(*journal), JournalDigest(prefix));
      }
    }
    ASSERT_EQ(done, kTortureOps);
    EXPECT_EQ(JournalDigest(*journal), want);
    EXPECT_GE(crashes, 1) << "plan never fired; torture was a no-op";
    total_crashes += crashes;

    // A search index built from the recovered journal answers queries
    // identically to one built from the fault-free run.
    const auto search_hits = [](const storage::EventJournal& j) {
      search::SearchIndex index;
      j.ForEachEntity(
          [&](std::string_view entity, const storage::FieldMap& fields) {
            index.Index(entity, fields);
          });
      std::string error;
      return index.Search("v" + std::to_string(kTortureOps - 5), &error);
    };
    const auto want_hits = search_hits(reference);
    EXPECT_FALSE(want_hits.empty());
    EXPECT_EQ(search_hits(*journal), want_hits);
  }
  // ~12 deaths per seed in expectation; anything under 30 total means
  // the injector is not actually firing.
  EXPECT_GT(total_crashes, 30);
}

// Probe-level faults degrade coverage, never crash the pipeline: the
// interrogate.probe point turns seed-chosen interrogations into
// no-answers, which the refresh scheduler already absorbs.
TEST(FailureInjectionTest, ProbeFaultsDegradeNotCrash) {
  WorldConfig cfg = BaseWorld();
  fault::ScopedPlan plan(
      11, {{.point = "interrogate.probe", .probability = 0.05}});
  const RunResult result = RunScenario(cfg, 2.0);
  EXPECT_GT(fault::Injector::Global().fires("interrogate.probe"), 100u);
  EXPECT_GT(result.tracked, 2500u);
  EXPECT_GT(result.accuracy, 0.7);
}

#endif  // CENSYSIM_FAULT_INJECTION

}  // namespace
}  // namespace censys::engines
