// Failure injection: the engine must degrade gracefully — not crash, not
// spiral into eviction storms, not corrupt its journal — under network
// regimes far worse than the calibrated defaults (§2.2's fractured
// visibility taken to extremes).
#include <gtest/gtest.h>

#include "engines/world.h"

namespace censys::engines {
namespace {

WorldConfig BaseWorld() {
  WorldConfig cfg;
  cfg.universe.seed = 77;
  cfg.universe.universe_size = 1u << 16;
  cfg.universe.target_services = 6000;
  cfg.universe.ics_scale = 0;
  cfg.with_alternatives = false;
  return cfg;
}

struct RunResult {
  std::size_t tracked;
  std::uint64_t evicted;
  double accuracy;
};

RunResult RunScenario(WorldConfig cfg, double days = 4.0) {
  World world(cfg);
  world.Bootstrap();
  world.RunForDays(days);
  RunResult result{};
  result.tracked = world.censys().write_side().tracked_count();
  result.evicted = world.censys().write_side().services_evicted();
  std::uint64_t live = 0, sampled = 0;
  world.censys().ForEachEntry([&](const EngineEntry& entry) {
    if (sampled >= 1500) return;
    ++sampled;
    if (world.internet().FindService(entry.key, world.now()) != nullptr) {
      ++live;
    }
  });
  result.accuracy = sampled ? double(live) / double(sampled) : 0;
  return result;
}

TEST(FailureInjectionTest, TenPercentPacketLoss) {
  WorldConfig cfg = BaseWorld();
  cfg.universe.base_loss_rate = 0.10;
  const RunResult result = RunScenario(cfg);
  // Coverage survives (refresh retries smooth loss); accuracy holds; the
  // eviction rate does not explode from spurious single-probe failures
  // alone (pending-eviction clears on the next successful refresh).
  EXPECT_GT(result.tracked, 3000u);
  EXPECT_GT(result.accuracy, 0.75);
  EXPECT_LT(result.evicted, result.tracked);
}

TEST(FailureInjectionTest, OutageStorm) {
  WorldConfig cfg = BaseWorld();
  cfg.universe.outage_rate_per_day = 0.5;   // half of all networks daily
  cfg.universe.outage_mean_hours = 8.0;
  const RunResult result = RunScenario(cfg);
  EXPECT_GT(result.tracked, 2500u);
  // Outages cause pending-eviction churn but the 72 h deadline plus
  // multi-PoP retries keep most transient victims in the dataset.
  EXPECT_GT(result.accuracy, 0.6);
}

TEST(FailureInjectionTest, HeavyBlocking) {
  WorldConfig cfg = BaseWorld();
  cfg.universe.blocking_sensitivity = 0.05;  // ~33x the calibrated default
  const RunResult heavy = RunScenario(cfg);
  const RunResult normal = RunScenario(BaseWorld());
  // Blocking costs coverage — the §2.2 trade-off — but never correctness.
  EXPECT_LT(heavy.tracked, normal.tracked);
  EXPECT_GT(heavy.accuracy, 0.7);
}

TEST(FailureInjectionTest, ExtremeChurn) {
  WorldConfig cfg = BaseWorld();
  cfg.universe.mean_lifetime_cloud_days = 1.0;
  cfg.universe.mean_lifetime_residential_days = 2.0;
  const RunResult result = RunScenario(cfg);
  // The dataset shrinks toward what daily refresh can confirm and accuracy
  // degrades, but the pipeline keeps functioning and pruning.
  EXPECT_GT(result.tracked, 1000u);
  EXPECT_GT(result.evicted, 100u);
  EXPECT_GT(result.accuracy, 0.4);
}

TEST(FailureInjectionTest, EverythingAtOnceStaysDeterministic) {
  WorldConfig cfg = BaseWorld();
  cfg.universe.base_loss_rate = 0.08;
  cfg.universe.outage_rate_per_day = 0.3;
  cfg.universe.blocking_sensitivity = 0.01;
  cfg.universe.mean_lifetime_cloud_days = 2.0;

  auto run_keys = [&] {
    World world(cfg);
    world.Bootstrap();
    world.RunForDays(2.0);
    std::vector<std::uint64_t> keys;
    world.censys().ForEachEntry(
        [&](const EngineEntry& e) { keys.push_back(e.key.Pack()); });
    std::sort(keys.begin(), keys.end());
    return keys;
  };
  const auto first = run_keys();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run_keys());  // chaos, but reproducible chaos
}

}  // namespace
}  // namespace censys::engines
