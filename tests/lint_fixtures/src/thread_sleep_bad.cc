// Fixture: sleeping on wall time under src/ must be flagged.
#include <chrono>
#include <thread>

void Backoff() {
  std::this_thread::sleep_for(  // expect: thread-sleep
      std::chrono::milliseconds(10));
}
