// Fixture: hash-order iteration in an order-sensitive layer (pipeline/).
// Every loop below lets std::unordered_* layout escape into observable
// order — each must fire `unordered-iter`.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace censys::pipeline {

std::unordered_map<std::uint64_t, std::string> states;
std::unordered_set<std::uint32_t> pending;

std::vector<std::string> DumpStates() {
  std::vector<std::string> out;
  for (const auto& [key, value] : states) {  // expect: unordered-iter
    out.push_back(value);
  }
  return out;
}

std::uint64_t DrainPending(std::vector<std::uint32_t>* sink) {
  std::uint64_t n = 0;
  for (auto it = pending.begin(); it != pending.end(); ++it) {  // expect: unordered-iter
    sink->push_back(*it);
    ++n;
  }
  return n;
}

// A waiver with no justification does not silence the rule — the finding
// fires with a hint to add one.
std::vector<std::uint32_t> DumpPending() {
  std::vector<std::uint32_t> out;
  // censyslint:allow(unordered-iter)
  for (std::uint32_t ip : pending) {  // expect: unordered-iter
    out.push_back(ip);
  }
  return out;
}

}  // namespace censys::pipeline
