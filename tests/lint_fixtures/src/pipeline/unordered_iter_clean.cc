// Fixture: the sanctioned shapes for unordered containers in an
// order-sensitive layer. Must lint clean.
#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace censys::pipeline {

std::unordered_map<std::uint64_t, std::string> states;

// Shape 1: collect-then-sort, with the collect loop waived and justified.
std::vector<std::string> DumpStates() {
  std::vector<std::pair<std::uint64_t, std::string>> keyed;
  // censyslint:allow(unordered-iter): collected then sorted by key below
  for (const auto& [key, value] : states) {
    keyed.emplace_back(key, value);
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::string> out;
  for (const auto& [key, value] : keyed) out.push_back(value);
  return out;
}

// Shape 2: a justified waiver on the line above a commutative fold.
std::size_t TotalBytes() {
  std::size_t total = 0;
  // censyslint:allow(unordered-iter): commutative sum, order cannot escape
  for (const auto& [key, value] : states) total += value.size();
  return total;
}

// Ordered containers iterate freely.
std::vector<std::uint64_t> SortedKeys(const std::vector<std::uint64_t>& in) {
  std::vector<std::uint64_t> keys(in);
  std::sort(keys.begin(), keys.end());
  std::vector<std::uint64_t> out;
  for (std::uint64_t key : keys) out.push_back(key);
  return out;
}

}  // namespace censys::pipeline
