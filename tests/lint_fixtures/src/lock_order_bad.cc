// Fixture: two methods of the same class acquire the same pair of locks
// in opposite orders — the classic ABBA deadlock. The whole-program
// lock-order graph has the cycle Cache::mu_a_ -> Cache::mu_b_ ->
// Cache::mu_a_ and must fire `lock-order`.
#include "core/thread_safety.h"

namespace censys::pipeline {

// Concurrency: mu_a_ guards the map, mu_b_ guards the index; both
// methods document exclusive acquisition.

class Cache {
 public:
  void Refresh() {
    const core::MutexLock hold_a(mu_a_);
    const core::MutexLock hold_b(mu_b_);  // a -> b
    ++generation_;
  }

  void Invalidate() {
    const core::MutexLock hold_b(mu_b_);
    const core::MutexLock hold_a(mu_a_);  // b -> a: inversion
    ++generation_;
  }

 private:
  core::Mutex mu_a_;
  core::Mutex mu_b_;
  int generation_ = 0;
};

}  // namespace censys::pipeline

// expect: lock-order
