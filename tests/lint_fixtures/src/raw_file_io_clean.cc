// Fixture: the waiver comment suppresses raw-file-io on its line, and
// filesystem-level operations (no byte I/O) are not flagged at all.
#include <filesystem>
#include <fstream>

bool Exists(const char* path) { return std::filesystem::exists(path); }

void DumpDebugSnapshot(const char* path) {
  // Debug-only escape hatch, deliberately waived:
  std::ofstream out(path);  // censyslint:allow(raw-file-io)
  out << "snapshot\n";
}
