// Fixture: constructing a WallTimer for ad-hoc stage timing under src/
// must be flagged — measurements flow through metrics::ScopedTimer or
// TRACE_SPAN so they are registered and exportable.
#include "core/clock.h"

double StageMicros() {
  const censys::WallTimer timer;  // expect: wall-timer
  return timer.ElapsedMicros();
}
