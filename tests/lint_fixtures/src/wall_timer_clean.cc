// Fixture: WallTimer in comments or strings must not fire, and a
// deliberate raw-timer site (a bench-style busy-wait deadline, as in the
// serving frontend) is waivable per line.
#include "core/clock.h"
#include "core/trace.h"

// WallTimer is the sanctioned source inside core/clock.* only.
void TimedStage() {
  TRACE_SPAN("fixture", "timed_stage");
  const char* label = "WallTimer";  // in a string literal
  (void)label;
}

double BusyWaitDeadline() {
  const censys::WallTimer timer;  // censyslint:allow(wall-timer)
  return timer.ElapsedMicros();
}
