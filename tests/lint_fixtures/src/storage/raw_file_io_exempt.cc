// Fixture: src/storage/ is the one directory allowed to touch bytes on
// disk — the same patterns that fire elsewhere are exempt here.
#include <fstream>

void WriteSegment(const char* path) {
  std::ofstream out(path, std::ios::binary);
  out << "frame";
}

int OpenSegment(const char* path) { return ::open(path, 0); }
