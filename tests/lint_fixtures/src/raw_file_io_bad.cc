// Fixture: direct file I/O under src/ (outside src/storage/) must be
// flagged, stream and POSIX flavors alike.
#include <cstdio>
#include <fstream>

void DumpReport(const char* path) {
  std::ofstream out(path);  // expect: raw-file-io
  out << "report\n";
}

void DumpLegacy(const char* path) {
  FILE* f = fopen(path, "w");  // expect: raw-file-io
  if (f != nullptr) fclose(f);
}

int OpenRaw(const char* path) {
  return ::open(path, 0);  // expect: raw-file-io
}
