// Fixture: every method acquires the same lock pair in one global order
// (a before b), including through a callee while a lock is held. The
// acquisition graph is acyclic — must lint clean.
#include "core/thread_safety.h"

namespace censys::pipeline {

// Concurrency: mu_a_ guards the map, mu_b_ guards the index; the global
// acquisition order is mu_a_ before mu_b_.

class Cache {
 public:
  void Refresh() {
    const core::MutexLock hold_a(mu_a_);
    const core::MutexLock hold_b(mu_b_);
    ++generation_;
  }

  void Invalidate() {
    const core::MutexLock hold_a(mu_a_);
    TouchB();
  }

 private:
  void TouchB() {
    const core::MutexLock hold_b(mu_b_);
    ++generation_;
  }

  core::Mutex mu_a_;
  core::Mutex mu_b_;
  int generation_ = 0;
};

}  // namespace censys::pipeline
