// Fixture: the sanctioned stage handoff — candidates stream through the
// bounded lock-free ring and the committer spins productively (help-or-
// commit) rather than blocking on a condition variable. Must lint clean.
#include <thread>

#include "core/ring.h"

void DrainJobs(censys::core::Ring<int>& ring) {
  int job = 0;
  while (ring.TryPop(job)) {
    // execute the job; no blocking handoff anywhere in the loop
  }
  std::this_thread::yield();
}
