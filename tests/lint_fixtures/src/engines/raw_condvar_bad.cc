// Fixture: a blocking condvar handoff between tick-pipeline stages must
// be flagged under src/engines/ (and src/interrogate/) — stage handoff
// streams through the lock-free core::Ring / core::SlotBoard so the
// commit thread helps execute jobs instead of sleeping on a signal.
#include <condition_variable>

struct StageHandoff {
  std::condition_variable cv;  // expect: raw-condvar
  bool ready = false;
};

template <typename Lock>
void AwaitResult(StageHandoff& handoff, Lock& lock) {
  handoff.cv.wait(lock, [&] { return handoff.ready; });  // expect: raw-condvar
}

void PublishResult(StageHandoff& handoff) {
  handoff.ready = true;
  handoff.cv.notify_one();  // expect: raw-condvar
}
