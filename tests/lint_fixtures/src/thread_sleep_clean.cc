// Fixture: yielding is fine; simulated waiting goes through SimClock.
#include <thread>

#include "core/clock.h"

void Wait(censys::SimClock& clock, censys::Duration d) {
  clock.Advance(d);
  std::this_thread::yield();
}
