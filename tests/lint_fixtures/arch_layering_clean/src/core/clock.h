#pragma once

namespace censys::core {
inline int TickCount() { return 0; }
}  // namespace censys::core
