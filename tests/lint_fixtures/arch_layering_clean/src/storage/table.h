// Downward include storage -> core matches the declared DAG: clean.
#pragma once
#include "core/clock.h"

namespace censys::storage {
inline int RowCount() { return censys::core::TickCount(); }
}  // namespace censys::storage
