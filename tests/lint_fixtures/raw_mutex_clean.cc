// Fixture: the capability-annotated wrappers are the sanctioned way to
// lock; nothing here should fire.
#include "core/thread_safety.h"

// Concurrency: mu_ guards count_; Touch takes it exclusively.
struct GoodLocker {
  void Touch() {
    const censys::core::MutexLock lock(mu_);
    ++count_;
  }
  censys::core::Mutex mu_;
  int count_ = 0;
};
