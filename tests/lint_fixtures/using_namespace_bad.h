// Fixture: `using namespace` at file scope in a header must be flagged.
#pragma once

#include <string>

using namespace std;  // expect: using-namespace-header

inline string Greet() { return "hello"; }
