// Fixture (2 of 2): this translation unit takes the same pair in the
// opposite order. Neither file has a cycle alone — only the global graph
// built across both TUs does, and the case must fire `lock-order`.
#include "core/thread_safety.h"

namespace censys::pipeline {

class Journal {
 public:
  void Scan() {
    const core::MutexLock index(index_mu_);
    const core::MutexLock hold(mu_);  // index_mu_ -> mu_: inversion
    ++reads_;
  }

 private:
  core::Mutex mu_;
  core::Mutex index_mu_;
  int reads_ = 0;
};

}  // namespace censys::pipeline
