// Fixture (1 of 2): this translation unit always takes Journal::mu_
// before Journal::index_mu_.
#include "core/thread_safety.h"

namespace censys::pipeline {

class Journal {
 public:
  void Append() {
    const core::MutexLock hold(mu_);
    const core::MutexLock index(index_mu_);  // mu_ -> index_mu_
    ++events_;
  }

 private:
  core::Mutex mu_;
  core::Mutex index_mu_;
  int events_ = 0;
};

}  // namespace censys::pipeline
