// Fixture: the seeded Rng is fine, and identifiers that merely contain
// "rand" must not fire.
#include "core/rng.h"

unsigned Draw(censys::Rng& rng) {
  const unsigned operand = 7;
  return rng.Next() % operand;
}

unsigned NextRand(censys::Rng& rng) { return rng.Next(); }
