// Fixture: reading a real clock outside core/clock.h must be flagged.
#include <chrono>

double NowSeconds() {
  const auto now = std::chrono::steady_clock::now();  // expect: wall-clock
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

long UnixMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now()  // expect: wall-clock
                 .time_since_epoch())
      .count();
}
