// Fixture: a class holding a core lock without a Concurrency contract
// comment anywhere in the file must be flagged. (This header deliberately
// omits that comment — do not "fix" it.)
#pragma once

#include "core/thread_safety.h"

class Undocumented {
 public:
  void Bump() {
    const censys::core::MutexLock lock(mu_);
    ++count_;
  }

 private:
  censys::core::Mutex mu_;  // expect: concurrency-contract
  int count_ = 0;
};
