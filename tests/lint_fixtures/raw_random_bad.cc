// Fixture: nondeterministic randomness sources must be flagged.
#include <cstdlib>
#include <random>

unsigned Entropy() {
  std::random_device rd;  // expect: raw-random
  std::mt19937 gen(rd());  // expect: raw-random
  srand(gen());  // expect: raw-random
  return rand();  // expect: raw-random
}
