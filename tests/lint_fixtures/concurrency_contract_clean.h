// Fixture: the contract comment satisfies the rule.
#pragma once

#include "core/thread_safety.h"

// Concurrency: mu_ guards count_; Bump takes it exclusively, readers use
// the atomic-free accessor under the same lock.
class Documented {
 public:
  void Bump() {
    const censys::core::MutexLock lock(mu_);
    ++count_;
  }

 private:
  censys::core::SharedMutex mu_;
  int count_ = 0;
};
