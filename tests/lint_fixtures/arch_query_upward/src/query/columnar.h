// An upward include: the query tier reaching into the serving frontend
// inverts the declared DAG (query sits below serving — serving consumes
// aggregates, the tier never calls back up) and must fire `layering`.
#pragma once
#include "serving/frontend.h"

namespace censys::query {
inline int ServedAggregates() { return censys::serving::AggregateCount(); }
}  // namespace censys::query
