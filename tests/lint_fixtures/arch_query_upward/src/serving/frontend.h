#pragma once

namespace censys::serving {
inline int AggregateCount() { return 0; }
}  // namespace censys::serving
