// Fixture: qualified names and using-declarations in headers are fine.
#pragma once

#include <string>

namespace fixtures {

using std::string;

inline string Greet() { return "hello"; }

}  // namespace fixtures
