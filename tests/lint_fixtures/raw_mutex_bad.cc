// Fixture: raw standard-library locks must be flagged outside
// core/thread_safety.h.
#include <mutex>

struct BadLocker {
  void Touch() {
    std::lock_guard<std::mutex> lock(mu_);  // expect: raw-mutex
    ++count_;
  }
  std::mutex mu_;  // expect: raw-mutex
  int count_ = 0;
};
