// Fixture: WallTimer is the sanctioned real-time source; mentioning
// steady_clock in comments or strings must not fire.
#include "core/clock.h"

// std::chrono::steady_clock appears in this comment only.
double Measure() {
  const censys::WallTimer timer;
  const char* label = "std::chrono::steady_clock";  // in a string literal
  (void)label;
  return timer.ElapsedMicros();
}
