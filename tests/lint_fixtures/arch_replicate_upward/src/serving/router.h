#pragma once

namespace censys::serving {
inline int ReplicaCount() { return 0; }
}  // namespace censys::serving
