// An upward include: a follower reaching into the serving router inverts
// the declared DAG (replicate sits below serving) and must fire
// `layering`.
#pragma once
#include "serving/router.h"

namespace censys::replicate {
inline int RouterReplicas() { return censys::serving::ReplicaCount(); }
}  // namespace censys::replicate
