// Fixture: a censyslint:allow(...) waiver on the offending line suppresses
// exactly that rule; the file must lint clean.
#include <mutex>

struct Interop {
  // Third-party API requires a std::mutex here.
  std::mutex raw_;  // censyslint:allow(raw-mutex)
};
