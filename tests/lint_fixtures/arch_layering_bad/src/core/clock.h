// An upward include: core reaching into storage inverts the declared DAG
// (core depends on nothing) and must fire `layering`.
#pragma once
#include "storage/table.h"

namespace censys::core {
inline int TickCount() { return censys::storage::RowCount(); }
}  // namespace censys::core
