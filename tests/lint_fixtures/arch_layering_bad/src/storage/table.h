#pragma once

namespace censys::storage {
inline int RowCount() { return 0; }
}  // namespace censys::storage
