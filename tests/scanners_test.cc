// Tests for the per-protocol scanner corpus: every covered protocol yields
// structured fields, fields are deterministic, and they survive the
// journal's field-map round trip.
#include <gtest/gtest.h>

#include <set>

#include "interrogate/scanners.h"
#include "proto/banner.h"

namespace censys::interrogate {
namespace {

simnet::SimService Service(proto::Protocol p, std::uint64_t seed,
                           std::uint32_t ip = 10) {
  simnet::SimService svc;
  svc.key = {IPv4Address(ip), proto::PrimaryPort(p).value_or(40000),
             proto::GetInfo(p).transport};
  svc.protocol = p;
  svc.seed = seed;
  svc.born = Timestamp{0};
  svc.dies = Timestamp::FromDays(100);
  return svc;
}

ServiceRecord Extract(proto::Protocol p, std::uint64_t seed,
                      std::uint32_t ip = 10) {
  const simnet::SimService svc = Service(p, seed, ip);
  ServiceRecord record;
  record.key = svc.key;
  record.protocol = p;
  ExtractProtocolFields(svc, record);
  return record;
}

class ScannerCoverageTest
    : public ::testing::TestWithParam<proto::Protocol> {};

TEST_P(ScannerCoverageTest, YieldsDeterministicStructuredFields) {
  const proto::Protocol p = GetParam();
  const ServiceRecord a = Extract(p, 1234);
  const ServiceRecord b = Extract(p, 1234);
  ASSERT_FALSE(a.extra.empty()) << proto::Name(p);
  EXPECT_EQ(a.extra, b.extra) << proto::Name(p);

  // Different seeds produce at least occasionally different configs.
  std::set<std::string> variants;
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    std::string all;
    for (const auto& [key, value] : Extract(p, seed).extra) {
      all += key + "=" + value + ";";
    }
    variants.insert(all);
  }
  EXPECT_GT(variants.size(), 1u) << proto::Name(p);
}

TEST_P(ScannerCoverageTest, FieldsSurviveEntityRoundTrip) {
  const proto::Protocol p = GetParam();
  ServiceRecord record = Extract(p, 77);
  record.handshake_validated = true;
  record.detection = DetectionMethod::kIanaHandshake;
  const ServiceRecord decoded =
      ServiceRecord::FromFields(record.key, record.ToFields());
  EXPECT_EQ(decoded.extra, record.extra) << proto::Name(p);
}

INSTANTIATE_TEST_SUITE_P(
    AllCovered, ScannerCoverageTest,
    ::testing::ValuesIn(ScannerCoverage().begin(), ScannerCoverage().end()),
    [](const ::testing::TestParamInfo<proto::Protocol>& info) {
      std::string name(proto::Name(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_" + std::to_string(info.index);
    });

TEST(ScannerRegistryTest, CoversAllIcsProtocolsExceptNiche) {
  std::set<proto::Protocol> covered(ScannerCoverage().begin(),
                                    ScannerCoverage().end());
  // Every Table 4 protocol except the two rarest niche ones has a scanner.
  int ics_covered = 0;
  for (proto::Protocol p : proto::IcsProtocols()) {
    ics_covered += covered.contains(p);
  }
  EXPECT_GE(ics_covered, 18);
  EXPECT_TRUE(covered.contains(proto::Protocol::kModbus));
  EXPECT_TRUE(covered.contains(proto::Protocol::kS7));
}

TEST(ScannerRegistryTest, UnknownProtocolExtractsNothing) {
  ServiceRecord record = Extract(proto::Protocol::kUnknown, 5);
  EXPECT_TRUE(record.extra.empty());
}

TEST(SshScannerTest, HostkeyIsPerHostNotPerService) {
  // Two SSH services on the same host share a host key; different hosts
  // do not — the threat-hunting pivot property.
  const ServiceRecord a = Extract(proto::Protocol::kSsh, 1, /*ip=*/42);
  const ServiceRecord b = Extract(proto::Protocol::kSsh, 999, /*ip=*/42);
  const ServiceRecord c = Extract(proto::Protocol::kSsh, 1, /*ip=*/43);
  EXPECT_EQ(a.extra.at("ssh.hostkey_sha256"), b.extra.at("ssh.hostkey_sha256"));
  EXPECT_NE(a.extra.at("ssh.hostkey_sha256"), c.extra.at("ssh.hostkey_sha256"));
}

TEST(IcsScannerTest, DeviceIdentityMatchesBannerLayer) {
  const ServiceRecord record = Extract(proto::Protocol::kModbus, 7);
  const proto::DeviceIdentity dev =
      proto::GenerateDevice(proto::Protocol::kModbus, 7);
  EXPECT_EQ(record.extra.at("modbus.vendor"), dev.manufacturer);
  EXPECT_EQ(record.extra.at("modbus.product"), dev.model);
  const int unit = std::stoi(record.extra.at("modbus.unit_id"));
  EXPECT_GE(unit, 1);
  EXPECT_LE(unit, 247);
}

TEST(ExposureFlagsTest, RiskyDefaultsAreRareButPresent) {
  // Unauthenticated Redis / anonymous FTP / public SNMP communities exist
  // at low rates — the exposures ASM products alert on.
  int open_redis = 0, anon_ftp = 0, public_snmp = 0;
  for (std::uint64_t seed = 0; seed < 600; ++seed) {
    if (Extract(proto::Protocol::kRedis, seed).extra.at(
            "redis.auth_required") == "false")
      ++open_redis;
    if (Extract(proto::Protocol::kFtp, seed).extra.at(
            "ftp.anonymous_allowed") == "true")
      ++anon_ftp;
    if (Extract(proto::Protocol::kSnmp, seed).extra.at("snmp.community") ==
        "public")
      ++public_snmp;
  }
  EXPECT_GT(open_redis, 20);
  EXPECT_LT(open_redis, 180);
  EXPECT_GT(anon_ftp, 10);
  EXPECT_GT(public_snmp, 50);
}

}  // namespace
}  // namespace censys::interrogate
