// Tests for X.509 synthesis, validation, CRL revocation, linting, and the
// CT log.
#include <gtest/gtest.h>

#include <set>

#include "cert/ct.h"
#include "cert/x509.h"

namespace censys::cert {
namespace {

TEST(CertificateTest, SynthesisIsDeterministic) {
  const Certificate a = SynthesizeCertificate(42, "example.com", Timestamp{0});
  const Certificate b = SynthesizeCertificate(42, "example.com", Timestamp{0});
  EXPECT_EQ(a.Sha256Hex(), b.Sha256Hex());
  EXPECT_EQ(a.subject_cn, b.subject_cn);
  EXPECT_EQ(a.serial, b.serial);
}

TEST(CertificateTest, DifferentSeedsDifferentFingerprints) {
  std::set<std::string> fps;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    fps.insert(
        SynthesizeCertificate(seed, "example.com", Timestamp{0}).Sha256Hex());
  }
  EXPECT_EQ(fps.size(), 100u);
}

TEST(CertificateTest, FingerprintHelperMatchesFullSynthesis) {
  EXPECT_EQ(CertFingerprintHex(7, "a.example.com", Timestamp{0}),
            SynthesizeCertificate(7, "a.example.com", Timestamp{0}).Sha256Hex());
}

TEST(CertificateTest, NamedCertsCoverTheirName) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const Certificate cert =
        SynthesizeCertificate(seed, "shop.example.com", Timestamp{0});
    EXPECT_TRUE(cert.CoversName("shop.example.com")) << seed;
  }
}

TEST(CertificateTest, WildcardSanMatching) {
  Certificate cert;
  cert.subject_cn = "example.com";
  cert.san_dns = {"example.com", "*.example.com"};
  EXPECT_TRUE(cert.CoversName("example.com"));
  EXPECT_TRUE(cert.CoversName("www.example.com"));
  EXPECT_TRUE(cert.CoversName("WWW.EXAMPLE.COM"));  // names are case-blind
  EXPECT_FALSE(cert.CoversName("a.b.example.com"));  // one label only
  EXPECT_FALSE(cert.CoversName("example.org"));
  EXPECT_FALSE(cert.CoversName(".example.com"));  // empty label
}

TEST(CertificateTest, ValidityWindow) {
  Certificate cert;
  cert.not_before = Timestamp::FromDays(-10);
  cert.not_after = Timestamp::FromDays(80);
  EXPECT_TRUE(cert.ValidAt(Timestamp{0}));
  EXPECT_FALSE(cert.ValidAt(Timestamp::FromDays(-11)));
  EXPECT_FALSE(cert.ValidAt(Timestamp::FromDays(80)));
  EXPECT_EQ(cert.ValidityWindow().ToDays(), 90);
}

TEST(ValidationTest, StatusesCoverTheSpace) {
  const RootStore roots = RootStore::Default();
  const CrlStore crls;

  int trusted = 0, self_signed = 0, expired = 0, untrusted = 0, revoked = 0;
  for (std::uint64_t seed = 0; seed < 3000; ++seed) {
    const Certificate cert =
        SynthesizeCertificate(seed, "h.example.com", Timestamp{0});
    switch (Validate(cert, roots, crls, Timestamp{0})) {
      case ValidationStatus::kTrusted: ++trusted; break;
      case ValidationStatus::kSelfSigned: ++self_signed; break;
      case ValidationStatus::kExpired: ++expired; break;
      case ValidationStatus::kUntrustedIssuer: ++untrusted; break;
      case ValidationStatus::kRevoked: ++revoked; break;
      case ValidationStatus::kNotYetValid: break;
    }
  }
  EXPECT_GT(trusted, 1000);      // most of the web PKI validates
  EXPECT_GT(self_signed, 100);   // device certs exist
  EXPECT_GT(expired, 100);       // a real expired tail exists
  EXPECT_GT(untrusted, 50);      // the untrusted CA issues some
  EXPECT_GT(revoked, 5);         // baseline CRL hits
}

TEST(ValidationTest, ManualRevocationTakesEffectAtItsDate) {
  const RootStore roots = RootStore::Default();
  CrlStore crls;
  Certificate cert;
  cert.subject_cn = "c2.example.com";
  cert.issuer = "SimCert Global CA";
  cert.san_dns = {"c2.example.com"};
  cert.not_before = Timestamp{0};
  cert.not_after = Timestamp::FromDays(365);
  cert.serial = 777000777;

  ASSERT_EQ(Validate(cert, roots, crls, Timestamp::FromDays(10)),
            ValidationStatus::kTrusted);
  crls.Revoke(cert.issuer, cert.serial, Timestamp::FromDays(30));
  EXPECT_EQ(Validate(cert, roots, crls, Timestamp::FromDays(10)),
            ValidationStatus::kTrusted);  // before revocation date
  EXPECT_EQ(Validate(cert, roots, crls, Timestamp::FromDays(31)),
            ValidationStatus::kRevoked);
}

TEST(ValidationTest, ExpiredBeatsRevoked) {
  const RootStore roots = RootStore::Default();
  CrlStore crls;
  Certificate cert;
  cert.issuer = "SimCert Global CA";
  cert.not_before = Timestamp{0};
  cert.not_after = Timestamp::FromDays(10);
  cert.serial = 1;
  crls.Revoke(cert.issuer, cert.serial, Timestamp::FromDays(5));
  EXPECT_EQ(Validate(cert, roots, crls, Timestamp::FromDays(20)),
            ValidationStatus::kExpired);
}

TEST(LintTest, FlagsBaselineRequirementViolations) {
  Certificate cert;
  cert.subject_cn = "device.local";
  cert.issuer = "LegacySign CA 2009";
  cert.self_signed = false;
  cert.not_before = Timestamp{0};
  cert.not_after = Timestamp::FromDays(730);  // > 398 days
  cert.key_algorithm = KeyAlgorithm::kRsa1024;
  cert.signature_algorithm = SignatureAlgorithm::kSha1Rsa;
  // no SAN
  const LintResult result = Lint(cert);
  EXPECT_GE(result.errors.size(), 4u);
}

TEST(LintTest, CleanModernCertPasses) {
  Certificate cert;
  cert.subject_cn = "www.example.com";
  cert.san_dns = {"www.example.com"};
  cert.issuer = "SimCA Encrypt R3";
  cert.not_before = Timestamp{0};
  cert.not_after = Timestamp::FromDays(90);
  cert.key_algorithm = KeyAlgorithm::kEcdsaP256;
  cert.signature_algorithm = SignatureAlgorithm::kEcdsaSha256;
  EXPECT_TRUE(Lint(cert).clean());
}

TEST(LintTest, SelfSignedLongValidityIsNotABrViolation) {
  Certificate cert;
  cert.subject_cn = "device.local";
  cert.issuer = cert.subject_cn;
  cert.self_signed = true;
  cert.not_before = Timestamp{0};
  cert.not_after = Timestamp::FromDays(3650);
  const LintResult result = Lint(cert);
  for (const std::string& e : result.errors) {
    EXPECT_NE(e, "validity_longer_than_398_days");
    EXPECT_NE(e, "missing_subject_alt_name");
  }
}

TEST(CtLogTest, AppendAndCursorPolling) {
  CtLog log;
  for (int i = 0; i < 5; ++i) {
    Certificate cert = SynthesizeCertificate(
        static_cast<std::uint64_t>(i), "w" + std::to_string(i) + ".example.com",
        Timestamp{0});
    EXPECT_EQ(log.Append(std::move(cert), Timestamp{i * 10}),
              static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(log.tree_size(), 5u);

  auto batch = log.EntriesSince(0);
  EXPECT_EQ(batch.size(), 5u);
  batch = log.EntriesSince(3);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].index, 3u);
  EXPECT_TRUE(log.EntriesSince(5).empty());
  EXPECT_TRUE(log.EntriesSince(99).empty());
}

}  // namespace
}  // namespace censys::cert
