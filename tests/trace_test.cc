// The span flight recorder (core/trace.h): recording, nesting across
// executor threads, ring wraparound, JSON escaping, build gating, and the
// determinism contract (a traced run is byte-identical to an untraced one).
#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/executor.h"
#include "core/rng.h"
#include "core/strings.h"
#include "core/trace.h"
#include "engines/world.h"
#include "serving/frontend.h"
#include "test_tmpdir.h"

namespace censys {
namespace {

#if !defined(CENSYSIM_TRACE)

// The compile-out proof: with CENSYSIM_TRACE=OFF every macro and stub must
// be usable in a constant expression — i.e. the instrumentation literally
// evaluates to nothing at compile time.
constexpr bool OffModeFoldsAway() {
  TRACE_SPAN("cat", "span-with-no-storage");
  TRACE_SPAN_VAR(span, "cat", "span-with-no-storage");
  span.SetArg("key", "value");
  trace::RecordSpan("cat", "direct", 0, 1, "k", "v");
  trace::SetEnabled(true);  // a no-op: Enabled() below still sees false
  return !trace::kCompiledIn && !trace::Enabled() &&
         trace::NowMicros() == 0.0 && trace::GetStats().recorded == 0;
}
static_assert(OffModeFoldsAway(),
              "CENSYSIM_TRACE=OFF must compile tracing to nothing");

TEST(TraceOffTest, DumpReportsCompiledOut) {
  std::string error;
  EXPECT_FALSE(trace::Dump("/nonexistent/never-written.json", &error));
  EXPECT_NE(error.find("compiled out"), std::string::npos);
  EXPECT_TRUE(trace::DumpToString().empty());
}

#else  // CENSYSIM_TRACE

int EnvThreads(int fallback) {
  const char* value = std::getenv("CENSYSIM_THREADS");
  return value != nullptr ? std::atoi(value) : fallback;
}

struct CollectedSpan {
  std::string category;
  std::string name;
  std::uint32_t thread_id;
  double start_us;
  double end_us;
  std::string arg_value;
};

std::vector<CollectedSpan> Collect() {
  std::vector<CollectedSpan> spans;
  trace::ForEachSpan([&](const trace::SpanView& span) {
    spans.push_back({span.category, span.name, span.thread_id, span.start_us,
                     span.start_us + span.duration_us,
                     std::string(span.arg_value)});
  });
  return spans;
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::ResetForTest();
    trace::SetEnabled(true);
  }
  void TearDown() override { trace::SetEnabled(false); }
};

TEST_F(TraceTest, RecordsScopedSpans) {
  {
    TRACE_SPAN("unit", "outer_scope");
    TRACE_SPAN_VAR(span, "unit", "inner_scope");
    span.SetArg("item", "42");
  }
  const auto spans = Collect();
  ASSERT_EQ(spans.size(), 2u);
  // Destruction order records the inner span first.
  EXPECT_EQ(spans[0].name, "inner_scope");
  EXPECT_EQ(spans[0].arg_value, "42");
  EXPECT_EQ(spans[1].name, "outer_scope");
  EXPECT_GE(spans[1].end_us, spans[0].end_us);
  EXPECT_LE(spans[1].start_us, spans[0].start_us);
}

TEST_F(TraceTest, DisarmedSpansRecordNothing) {
  trace::SetEnabled(false);
  {
    TRACE_SPAN("unit", "disarmed");
  }
  EXPECT_EQ(trace::GetStats().recorded, 0u);
}

TEST_F(TraceTest, SpansNestAcrossExecutorThreads) {
  const int threads = EnvThreads(3);
  Executor executor(threads);
  constexpr std::size_t kItems = 64;
  // The calling thread participates in the batch and could drain all 64
  // near-instant tasks before a worker wakes; hold each task at a
  // rendezvous until a second thread has entered so the test always
  // exercises rings on more than one thread.
  std::mutex rendezvous_mu;
  std::condition_variable rendezvous_cv;
  std::set<std::thread::id> entered;
  executor.ParallelFor(kItems, [&](std::size_t i) {
    if (threads > 0) {
      std::unique_lock<std::mutex> lock(rendezvous_mu);
      entered.insert(std::this_thread::get_id());
      rendezvous_cv.notify_all();
      rendezvous_cv.wait(lock, [&] { return entered.size() > 1; });
    }
    TRACE_SPAN("unit", "worker_outer");
    for (int inner = 0; inner < 2; ++inner) {
      TRACE_SPAN_VAR(span, "unit", "worker_inner");
      span.SetArg("item", std::to_string(i));
    }
  });

  const auto spans = Collect();
  std::vector<CollectedSpan> outers, inners;
  std::set<std::uint32_t> threads_seen;
  for (const CollectedSpan& span : spans) {
    threads_seen.insert(span.thread_id);
    if (span.name == "worker_outer") outers.push_back(span);
    if (span.name == "worker_inner") inners.push_back(span);
  }
  EXPECT_EQ(outers.size(), kItems);
  EXPECT_EQ(inners.size(), 2 * kItems);
  // ParallelFor includes the calling thread, so a threaded run records
  // rings for more than one thread.
  if (threads > 0) EXPECT_GT(threads_seen.size(), 1u);

  // Every inner span is contained in an outer span on its own thread: the
  // scoped nesting survives the fan-out because each thread writes only
  // its own ring.
  for (const CollectedSpan& inner : inners) {
    bool contained = false;
    for (const CollectedSpan& outer : outers) {
      if (outer.thread_id == inner.thread_id &&
          outer.start_us <= inner.start_us && outer.end_us >= inner.end_us) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained) << "orphan inner span on thread "
                           << inner.thread_id;
  }
}

TEST_F(TraceTest, RingBufferWrapsKeepingNewestSpans) {
  constexpr std::size_t kOverflow = 100;
  const double t0 = trace::NowMicros();
  for (std::size_t i = 0; i < trace::kRingCapacity + kOverflow; ++i) {
    trace::RecordSpan("unit", "wrap", t0 + static_cast<double>(i), 1.0, "",
                      "");
  }
  const trace::Stats stats = trace::GetStats();
  EXPECT_EQ(stats.recorded, trace::kRingCapacity + kOverflow);
  EXPECT_EQ(stats.dropped, kOverflow);

  const auto spans = Collect();
  ASSERT_EQ(spans.size(), trace::kRingCapacity);
  // The retained window is the newest kRingCapacity spans, oldest-first.
  EXPECT_DOUBLE_EQ(spans.front().start_us,
                   t0 + static_cast<double>(kOverflow));
  EXPECT_DOUBLE_EQ(spans.back().start_us,
                   t0 + static_cast<double>(trace::kRingCapacity + kOverflow -
                                            1));
}

TEST_F(TraceTest, DumpEscapesArgStrings) {
  trace::RecordSpan("unit", "escape", 0, 1, "arg",
                    "quote\" slash\\ newline\n tab\t ctrl\x01");
  const std::string json = trace::DumpToString();
  EXPECT_NE(json.find("quote\\\""), std::string::npos);
  EXPECT_NE(json.find("slash\\\\"), std::string::npos);
  EXPECT_NE(json.find("newline\\n"), std::string::npos);
  EXPECT_NE(json.find("tab\\t"), std::string::npos);
  EXPECT_NE(json.find("ctrl\\u0001"), std::string::npos);
  // No raw control bytes survive into the JSON; the newlines the exporter
  // emits between events are its only formatting whitespace.
  for (const char c : json) {
    if (c == '\n') continue;
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

TEST_F(TraceTest, ArgsTruncateToSlotSize) {
  const std::string long_value(200, 'v');
  {
    TRACE_SPAN_VAR(span, "unit", "truncate");
    span.SetArg("key", long_value);
  }
  const auto spans = Collect();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].arg_value, std::string(trace::kMaxArgValue, 'v'));
}

TEST_F(TraceTest, DumpWritesChromeTraceFile) {
  trace::RecordSpan("unit", "file_span", 5.0, 2.5, "k", "v");
  const std::string path = test::ScratchDir("trace_dump") + "/trace.json";
  std::string error;
  ASSERT_TRUE(trace::Dump(path, &error)) << error;
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"file_span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

// --- determinism probe --------------------------------------------------------
// The acceptance bar from DESIGN §10: tracing must never leak wall time
// into simulation state. Two identically seeded worlds — one traced, one
// not — must journal byte-identical events and answer search identically.

std::uint64_t JournalDigest(const storage::EventJournal& journal) {
  std::uint64_t digest = 1469598103934665603ull;
  journal.ScanAll([&](std::string_view key, std::string_view value) {
    digest = (digest ^ Fnv1a64(key)) * 1099511628211ull;
    digest = (digest ^ Fnv1a64(value)) * 1099511628211ull;
    return true;
  });
  return digest;
}

engines::WorldConfig ProbeWorld() {
  engines::WorldConfig cfg;
  cfg.universe.seed = 77;
  cfg.universe.universe_size = 1u << 14;
  cfg.universe.target_services = 800;
  cfg.with_alternatives = false;
  cfg.censys.threads = 2;
  return cfg;
}

TEST(TraceDeterminismTest, TracedRunMatchesUntracedRunExactly) {
  trace::ResetForTest();

  trace::SetEnabled(true);
  engines::World traced(ProbeWorld());
  traced.Bootstrap();
  traced.RunForDays(2.0);
  trace::SetEnabled(false);

  engines::World untraced(ProbeWorld());
  untraced.Bootstrap();
  untraced.RunForDays(2.0);

  EXPECT_GT(trace::GetStats().recorded, 0u);
  EXPECT_EQ(JournalDigest(traced.censys().journal()),
            JournalDigest(untraced.censys().journal()));
  EXPECT_EQ(traced.censys().SelfReportedCount(),
            untraced.censys().SelfReportedCount());

  traced.censys().RebuildSearchIndex();
  untraced.censys().RebuildSearchIndex();
  std::string error;
  const auto traced_hits =
      traced.censys().search_index().Search("service.protocol=http", &error);
  const auto untraced_hits = untraced.censys().search_index().Search(
      "service.protocol=http", &error);
  EXPECT_EQ(traced_hits, untraced_hits);
}

// --- 200-tick smoke -----------------------------------------------------------
// The end-to-end acceptance run: 200 ticks with tracing armed produce a
// Chrome-trace JSON covering every instrumented layer. check.sh points
// CENSYSIM_TRACE_SMOKE_OUT at a path and runs tracereport over the dump.

TEST(TraceSmokeTest, TwoHundredTickRunProducesChromeTrace) {
  trace::ResetForTest();
  engines::WorldConfig cfg;
  cfg.universe.seed = 42;
  cfg.universe.universe_size = 1u << 13;
  cfg.universe.target_services = 500;
  cfg.with_alternatives = false;
  cfg.censys.threads = 2;
  cfg.tick = Duration::Hours(1);

  trace::SetEnabled(true);
  engines::World world(cfg);
  world.Bootstrap();
  serving::ServingFrontend frontend(world.censys().read_side(),
                                    world.censys().search_index(),
                                    world.censys().analytics(),
                                    serving::ServingFrontend::Options{2});
  // 200 ticks at 1 h per tick, with serving traffic sprinkled in so the
  // serving and pipeline categories appear in the dump.
  Rng rng(42);
  std::vector<IPv4Address> hosts;
  world.censys().write_side().ForEachTracked(
      [&](const pipeline::ServiceState& state) {
        hosts.push_back(state.key.ip);
      });
  for (int chunk = 0; chunk < 10; ++chunk) {
    world.RunForDays(20.0 / 24.0);  // 20 ticks
    const auto queries = serving::ServingFrontend::MixedWorkload(
        64, hosts, {"service.protocol=http"}, {"http"}, world.now(), rng);
    frontend.Run(queries);
  }
  trace::SetEnabled(false);

  EXPECT_GE(world.censys().metrics().CounterValue("censys.engine.ticks"),
            200u);

  std::set<std::string> categories;
  trace::ForEachSpan([&](const trace::SpanView& span) {
    categories.insert(span.category);
  });
  for (const char* expected :
       {"engine", "scan", "interrogate", "pipeline", "serving", "storage"}) {
    EXPECT_TRUE(categories.contains(expected))
        << "no spans in category " << expected;
  }

  const char* env_out = std::getenv("CENSYSIM_TRACE_SMOKE_OUT");
  const std::string path =
      env_out != nullptr ? env_out
                         : test::ScratchDir("trace_smoke") + "/smoke.json";
  std::string error;
  ASSERT_TRUE(trace::Dump(path, &error)) << error;
  const trace::Stats stats = trace::GetStats();
  EXPECT_GT(stats.recorded, 1000u);
  EXPECT_GE(stats.threads, 3u);  // command thread + 2 executor workers
}

#endif  // CENSYSIM_TRACE

}  // namespace
}  // namespace censys
