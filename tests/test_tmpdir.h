// Scratch directories for WAL/storage tests and benches.
//
// ScratchDir(name) hands back a unique per-process directory under the
// system temp root (never the repo CWD — a `wal_scratch/` tree in the
// working directory was how scratch segments used to leak into the repo)
// and registers a process-exit sweep that removes the whole per-process
// root. The pid suffix keeps concurrently running ctest binaries (plain +
// *_threads4 variants) from sharing scratch space.
#pragma once

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>

namespace censys::test {

inline const std::filesystem::path& ScratchRoot() {
  static const std::filesystem::path* root = [] {
    auto* p = new std::filesystem::path(
        std::filesystem::temp_directory_path() /
        ("censysim-scratch-" + std::to_string(::getpid())));
    std::atexit([] {
      std::error_code ec;  // best effort: never fail the process on cleanup
      std::filesystem::remove_all(
          std::filesystem::temp_directory_path() /
              ("censysim-scratch-" + std::to_string(::getpid())),
          ec);
    });
    return p;
  }();
  return *root;
}

// A fresh, empty scratch directory for `name`; recreated on every call.
inline std::string ScratchDir(const std::string& name) {
  const std::filesystem::path dir = ScratchRoot() / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

}  // namespace censys::test
