// ReplicaRouter integration and chaos: fresh fan-out over healthy
// replicas, mid-batch failover on serve failure, degradation to a
// stale-but-watermarked answer from a lagging replica, shedding only when
// nothing can answer, and the kill/revive chaos loop with a version-token
// oracle — every answer is either current or correctly labeled stale;
// wrong answers never.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/fault.h"
#include "interrogate/record.h"
#include "pipeline/read_side.h"
#include "pipeline/write_side.h"
#include "replicate/follower.h"
#include "replicate/group.h"
#include "serving/frontend.h"
#include "serving/replica_router.h"
#include "storage/journal.h"
#include "test_tmpdir.h"

namespace censys::serving {
namespace {

using test::ScratchDir;

storage::EventJournal::Options DurableOptions(const std::string& dir) {
  storage::EventJournal::Options options;
  options.shards = 4;
  options.wal.dir = dir;
  options.wal.segment_bytes = 8u << 10;
  return options;
}

// A versioned HTTP record: title and banner both carry `version` in one
// journal delta, so a view whose title and banner disagree was torn.
interrogate::ServiceRecord VersionedRecord(IPv4Address ip, Port port,
                                           Timestamp at, int version) {
  interrogate::ServiceRecord r;
  r.key = {ip, port, Transport::kTcp};
  r.observed_at = at;
  r.protocol = proto::Protocol::kHttp;
  r.detection = interrogate::DetectionMethod::kBatteryHandshake;
  r.handshake_validated = true;
  r.banner = "Server: nginx build v" + std::to_string(version);
  r.software = {"nginx", "nginx", "1.25.3"};
  r.html_title = "release v" + std::to_string(version);
  return r;
}

// Parses the trailing "v<k>" token; -1 when absent.
int VersionOf(const std::string& text) {
  const auto pos = text.rfind(" v");
  if (pos == std::string::npos) return -1;
  return std::atoi(text.c_str() + pos + 2);
}

// Leader write stack plus a replication group and one frontend per
// follower, wired into a router.
class RouterRig {
 public:
  RouterRig(const std::string& dir, std::size_t replicas,
            ReplicaRouter::Options router_options,
            replicate::ReplicationGroup::Options group_options = {})
      : journal_(DurableOptions(dir)), write_(journal_, bus_),
        group_(journal_, group_options) {
    for (std::size_t i = 0; i < replicas; ++i) {
      group_.AddFollower("f" + std::to_string(i));
      std::string error;
      EXPECT_TRUE(group_.BootstrapFollower(i, &error)) << error;
    }
    std::vector<ReplicaRouter::Endpoint> endpoints;
    for (std::size_t i = 0; i < replicas; ++i) {
      const replicate::Follower& f = group_.follower(i);
      ServingFrontend::Options fo;
      fo.threads = 0;  // ServeOne is inline; no pool needed
      frontends_.push_back(std::make_unique<ServingFrontend>(
          f.read_side(), f.index(), f.analytics(), fo));
      endpoints.push_back({frontends_.back().get(), &f});
    }
    router_ = std::make_unique<ReplicaRouter>(
        std::move(endpoints),
        [this] { return group_.leader_lsn(); }, router_options);
  }

  void WriteVersion(IPv4Address ip, int version, std::int64_t at) {
    write_.IngestScan(VersionedRecord(ip, 80, Timestamp{at}, version));
  }

  storage::EventJournal& journal() { return journal_; }
  replicate::ReplicationGroup& group() { return group_; }
  ReplicaRouter& router() { return *router_; }

 private:
  storage::EventJournal journal_;
  pipeline::EventBus bus_;
  pipeline::WriteSide write_;
  replicate::ReplicationGroup group_;
  std::vector<std::unique_ptr<ServingFrontend>> frontends_;
  std::unique_ptr<ReplicaRouter> router_;
};

RouterPolicy::Options TightPolicy() {
  RouterPolicy::Options o;
  o.lagging_above = 4;
  o.healthy_below = 2;
  o.healthy_streak = 2;
  o.max_attempts = 3;
  o.backoff_base_us = 10;  // keep busy-wait retries cheap in tests
  o.backoff_cap_us = 50;
  o.hedge_latency_us = 0;  // hedging off unless a test turns it on
  o.down_probe_us = 1e12;  // probes off unless a test turns them on
  return o;
}

std::vector<Query> Lookups(const std::vector<IPv4Address>& hosts) {
  std::vector<Query> queries;
  for (const IPv4Address ip : hosts) {
    Query q;
    q.kind = Query::Kind::kLookup;
    q.ip = ip;
    queries.push_back(q);
  }
  return queries;
}

TEST(ReplicaRouterTest, FansFreshReadsAcrossHealthyReplicas) {
  ReplicaRouter::Options ro;
  ro.threads = 0;
  ro.capture_views = true;
  ro.policy = TightPolicy();
  RouterRig rig(ScratchDir("router_fresh"), 2, ro);

  std::vector<IPv4Address> hosts;
  for (std::uint32_t h = 1; h <= 8; ++h) {
    hosts.push_back(IPv4Address(h));
    rig.WriteVersion(IPv4Address(h), 1, 100 + h);
  }
  std::string error;
  for (std::size_t i = 0; i < rig.group().size(); ++i) {
    ASSERT_TRUE(rig.group().CatchUp(i, 1000, &error)) << error;
  }

  std::vector<RoutedAnswer> answers;
  const RouterReport report = rig.router().Run(Lookups(hosts), &answers);
  EXPECT_EQ(report.answered, hosts.size());
  EXPECT_EQ(report.stale, 0u);
  EXPECT_EQ(report.shed, 0u);
  EXPECT_EQ(report.failed, 0u);
  // Round-robin spreads load over both replicas.
  EXPECT_GT(report.served_by[0], 0u);
  EXPECT_GT(report.served_by[1], 0u);
  for (const RoutedAnswer& a : answers) {
    EXPECT_FALSE(a.stale);
    EXPECT_EQ(a.replica_lsn, a.leader_lsn);
    ASSERT_TRUE(a.outcome.view.has_value());
    ASSERT_EQ(a.outcome.view->services.size(), 1u);
    EXPECT_EQ(VersionOf(a.outcome.view->services[0].record.banner), 1);
  }
}

#if defined(CENSYSIM_FAULT_INJECTION)
TEST(ReplicaRouterTest, FailsOverWhenAReplicaStopsAnswering) {
  ReplicaRouter::Options ro;
  ro.threads = 0;  // inline: fault hit order is deterministic
  ro.policy = TightPolicy();
  RouterRig rig(ScratchDir("router_failover"), 2, ro);
  rig.WriteVersion(IPv4Address(1), 1, 100);
  std::string error;
  for (std::size_t i = 0; i < rig.group().size(); ++i) {
    ASSERT_TRUE(rig.group().CatchUp(i, 1000, &error)) << error;
  }

  // The first serve's whole retry ladder (3 attempts) faults and the
  // frontend has no stale fallback cached yet, so the serve fails; the
  // router marks the replica down and fails over to the partner.
  fault::ScopedPlan plan(3, {{.point = "serving.read",
                              .mode = fault::Mode::kErrorReturn,
                              .max_fires = 3}});
  std::vector<RoutedAnswer> answers;
  const RouterReport report =
      rig.router().Run(Lookups({IPv4Address(1)}), &answers);
  EXPECT_EQ(report.answered, 1u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.retries, 1u);
  EXPECT_EQ(report.failovers, 1u);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].replica, 1);
  EXPECT_EQ(rig.router().ReplicaHealth(0), RouterPolicy::Health::kDown);
}
#endif

TEST(ReplicaRouterTest, DegradesToStaleAnswerFromLaggingReplica) {
  ReplicaRouter::Options ro;
  ro.threads = 0;
  ro.capture_views = true;
  ro.policy = TightPolicy();
  RouterRig rig(ScratchDir("router_stale"), 2, ro);

  // Both followers see version 1...
  rig.WriteVersion(IPv4Address(1), 1, 100);
  std::string error;
  for (std::size_t i = 0; i < rig.group().size(); ++i) {
    ASSERT_TRUE(rig.group().CatchUp(i, 1000, &error)) << error;
  }
  // ...then the leader races ahead: replica 0 dies, replica 1 misses the
  // shipments and goes lagging.
  rig.group().follower(0).Kill();
  for (int k = 2; k <= 12; ++k) rig.WriteVersion(IPv4Address(1), k, 100 + k);

  std::vector<RoutedAnswer> answers;
  const RouterReport report =
      rig.router().Run(Lookups({IPv4Address(1)}), &answers);
  EXPECT_EQ(report.answered, 1u);
  EXPECT_EQ(report.stale, 1u);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_TRUE(answers[0].stale);
  EXPECT_EQ(answers[0].replica, 1);
  EXPECT_LT(answers[0].replica_lsn, answers[0].leader_lsn);
  // The stale answer is the replica's watermarked state — version 1, the
  // last state it applied — not garbage.
  ASSERT_TRUE(answers[0].outcome.view.has_value());
  EXPECT_EQ(VersionOf(answers[0].outcome.view->services[0].record.banner), 1);
}

TEST(ReplicaRouterTest, ShedsOnlyWhenNoReplicaCanAnswer) {
  ReplicaRouter::Options ro;
  ro.threads = 0;
  ro.policy = TightPolicy();
  RouterRig rig(ScratchDir("router_shed"), 2, ro);
  rig.WriteVersion(IPv4Address(1), 1, 100);
  rig.group().follower(0).Kill();
  rig.group().follower(1).Kill();

  const RouterReport report = rig.router().Run(Lookups({IPv4Address(1)}));
  EXPECT_EQ(report.answered, 0u);
  EXPECT_EQ(report.shed, 1u);
  EXPECT_EQ(rig.router().ReplicaHealth(0), RouterPolicy::Health::kDown);
  EXPECT_EQ(rig.router().ReplicaHealth(1), RouterPolicy::Health::kDown);
}

// ----------------------------------------------------------------- chaos (c)

// The router keeps answering under kill/revive load with a lossy link:
// every answer is either current or labeled stale, title/banner version
// tokens always agree (no torn views), and stale answers never exceed the
// leader's watermark. Zero wrong answers, every query answered while at
// least one replica serves.
TEST(ReplicaRouterChaosTest, ServesCorrectlyLabeledAnswersUnderKillRevive) {
  constexpr std::uint32_t kHosts = 8;
  constexpr int kRounds = 30;

  ReplicaRouter::Options ro;
  ro.threads = 4;
  ro.capture_views = true;
  ro.policy = TightPolicy();
  ro.policy.down_probe_us = 0;  // probe revived replicas immediately
  replicate::ReplicationGroup::Options go;
  go.max_records_per_shipment = 5;
  RouterRig rig(ScratchDir("router_chaos"), 3, ro, go);

  std::vector<IPv4Address> hosts;
  for (std::uint32_t h = 1; h <= kHosts; ++h) hosts.push_back(IPv4Address(h));
  const std::vector<Query> queries = Lookups(hosts);

  std::string error;
  for (int round = 1; round <= kRounds; ++round) {
    for (std::uint32_t h = 0; h < kHosts; ++h) {
      rig.WriteVersion(hosts[h], round, round * 100 + h);
    }

    // Chaos schedule: kill one follower on a cadence (never all of them),
    // revive the dead two rounds later via snapshot re-bootstrap.
    replicate::ReplicationGroup& group = rig.group();
    if (round % 5 == 2) {
      const std::size_t victim = static_cast<std::size_t>(round / 5) % 3;
      std::size_t serving = 0;
      for (std::size_t i = 0; i < group.size(); ++i) {
        if (group.follower(i).serving()) ++serving;
      }
      if (serving > 1 && group.follower(victim).serving()) {
        group.follower(victim).Kill();
      }
    }
    if (round % 5 == 4) {
      for (std::size_t i = 0; i < group.size(); ++i) {
        if (!group.follower(i).serving()) {
          ASSERT_TRUE(group.BootstrapFollower(i, &error)) << error;
        }
      }
    }

    {
      const fault::Mode mode =
          static_cast<fault::Mode>((round % 5) + 1);  // rotate link faults
      fault::ScopedPlan plan(static_cast<std::uint64_t>(round),
                             {{.point = "replicate.ship",
                               .mode = mode,
                               .probability = 0.3}});
      ASSERT_TRUE(group.PumpAll(&error)) << error;
    }

    std::vector<RoutedAnswer> answers;
    const RouterReport report = rig.router().Run(queries, &answers);
    EXPECT_EQ(report.answered, queries.size()) << "round " << round;
    EXPECT_EQ(report.shed + report.failed, 0u) << "round " << round;

    for (std::size_t i = 0; i < answers.size(); ++i) {
      const RoutedAnswer& a = answers[i];
      ASSERT_TRUE(a.answered);
      EXPECT_LE(a.replica_lsn, a.leader_lsn);
      if (!a.outcome.view.has_value()) continue;  // host not yet replicated
      ASSERT_EQ(a.outcome.view->services.size(), 1u);
      const int banner_v =
          VersionOf(a.outcome.view->services[0].record.banner);
      const int title_v =
          VersionOf(a.outcome.view->services[0].record.html_title);
      // Never torn, never from the future.
      EXPECT_EQ(banner_v, title_v) << "round " << round << " host " << i;
      EXPECT_GE(banner_v, 1);
      EXPECT_LE(banner_v, round);
      // A fresh-labeled answer is current by definition: the replica had
      // applied the leader's entire durable log at dispatch.
      if (!a.stale) {
        EXPECT_EQ(banner_v, round) << "round " << round << " host " << i;
      }
    }
  }

  // Quiesce: revive everything, drain the link, and the full-state
  // digests agree with the leader.
  replicate::ReplicationGroup& group = rig.group();
  for (std::size_t i = 0; i < group.size(); ++i) {
    if (!group.follower(i).serving()) {
      ASSERT_TRUE(group.BootstrapFollower(i, &error)) << error;
    }
    ASSERT_TRUE(group.CatchUp(i, 5000, &error)) << error;
  }
  const std::uint64_t want = replicate::JournalDigest(rig.journal());
  for (std::size_t i = 0; i < group.size(); ++i) {
    EXPECT_EQ(group.follower(i).applied_lsn(), group.leader_lsn());
    EXPECT_EQ(group.follower(i).Digest(), want);
  }
}

}  // namespace
}  // namespace censys::serving
