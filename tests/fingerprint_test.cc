// Tests for the Lisp-like DSL, declarative fingerprints, and CVE matching.
#include <gtest/gtest.h>

#include "fingerprint/dsl.h"
#include "fingerprint/fingerprints.h"
#include "fingerprint/vulns.h"

namespace censys::fingerprint {
namespace {

storage::FieldMap HttpFields(const std::string& title,
                             const std::string& banner = "") {
  return {{"service.name", "HTTP"},
          {"http.html_title", title},
          {"service.banner", banner}};
}

// ------------------------------------------------------------------------ DSL

TEST(DslParseTest, ParsesNestedExpressions) {
  std::string error;
  const auto expr = Parse(
      R"((and (= service.name "HTTP") (contains http.html_title "Router")))",
      &error);
  ASSERT_TRUE(expr.has_value()) << error;
  EXPECT_EQ((*expr)->kind, Expr::Kind::kList);
  EXPECT_EQ((*expr)->items.size(), 3u);
}

TEST(DslParseTest, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(Parse("(and (= a b)", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(Parse("(= a \"unterminated)", &error).has_value());
  EXPECT_FALSE(Parse("(= a b) trailing", &error).has_value());
  EXPECT_FALSE(Parse(")", &error).has_value());
  EXPECT_FALSE(Parse("", &error).has_value());
}

TEST(DslParseTest, StringEscapes) {
  std::string error;
  const auto expr = Parse(R"((= x "quote \" inside"))", &error);
  ASSERT_TRUE(expr.has_value()) << error;
  EXPECT_EQ((*expr)->items[2]->atom, "quote \" inside");
}

struct EvalCase {
  const char* source;
  bool expected;
};

class DslEvalTest : public ::testing::TestWithParam<EvalCase> {};

TEST_P(DslEvalTest, EvaluatesAgainstHttpRecord) {
  const storage::FieldMap env = {
      {"service.name", "HTTP"},
      {"service.banner", "Server: nginx/1.25.3"},
      {"http.html_title", "RouterOS router configuration page"},
  };
  CompiledRule rule = CompiledRule::Compile(GetParam().source);
  ASSERT_TRUE(rule.valid()) << rule.error();
  EXPECT_EQ(rule.Matches(env), GetParam().expected) << GetParam().source;
}

INSTANTIATE_TEST_SUITE_P(
    Rules, DslEvalTest,
    ::testing::Values(
        EvalCase{R"((= service.name "HTTP"))", true},
        EvalCase{R"((= service.name "SSH"))", false},
        EvalCase{R"((!= service.name "SSH"))", true},
        EvalCase{R"((contains http.html_title "routeros"))", true},  // ci
        EvalCase{R"((starts-with service.banner "Server:"))", true},
        EvalCase{R"((ends-with http.html_title "page"))", true},
        EvalCase{R"((glob service.banner "*nginx/1.25*"))", true},
        EvalCase{R"((glob service.banner "*apache*"))", false},
        EvalCase{R"((and (= service.name "HTTP")
                         (contains http.html_title "RouterOS")))", true},
        EvalCase{R"((or (= service.name "SSH") (= service.name "HTTP")))",
                 true},
        EvalCase{R"((not (= service.name "SSH")))", true},
        EvalCase{R"((= (lower service.name) "http"))", true},
        EvalCase{R"((= (field "service.name") "HTTP"))", true},
        EvalCase{R"((= (concat service.name "!") "HTTP!"))", true},
        EvalCase{R"((if (= service.name "HTTP") (contains http.html_title
                    "RouterOS") (= 1 2)))", true},
        EvalCase{R"((= missing.field ""))", true}));

TEST(DslEvalTest, ErrorsAreReportedNotThrown) {
  CompiledRule bad = CompiledRule::Compile("(unknown-fn x)");
  EXPECT_TRUE(bad.valid());          // parses fine
  EXPECT_FALSE(bad.Matches({}));     // but evaluation fails closed
  CompiledRule syntax = CompiledRule::Compile("(((");
  EXPECT_FALSE(syntax.valid());
  EXPECT_FALSE(syntax.error().empty());
  EXPECT_FALSE(syntax.Matches({}));
}

TEST(DslEvalTest, AndShortCircuits) {
  // The second arm would error, but the first is false.
  CompiledRule rule =
      CompiledRule::Compile(R"((and (= a "nope") (boom x)))");
  EXPECT_FALSE(rule.Matches({{"a", "other"}}));
}

// --------------------------------------------------------------- fingerprints

TEST(FingerprintEngineTest, PaperExampleWac6552dS) {
  const FingerprintEngine engine = FingerprintEngine::BuiltIn(0);
  const auto labels = engine.Evaluate(HttpFields("WAC6552D-S"));
  ASSERT_TRUE(labels.has_value());
  EXPECT_EQ(labels->manufacturer, "Zyxel");
  EXPECT_EQ(labels->device_type, "access-point");
}

TEST(FingerprintEngineTest, GlobPatternsMatchTitleVariants) {
  const FingerprintEngine engine = FingerprintEngine::BuiltIn(0);
  const auto labels =
      engine.Evaluate(HttpFields("RouterOS router configuration page"));
  ASSERT_TRUE(labels.has_value());
  EXPECT_EQ(labels->manufacturer, "MikroTik");
}

TEST(FingerprintEngineTest, DslRulesMatchIcsRecords) {
  const FingerprintEngine engine = FingerprintEngine::BuiltIn(0);
  const storage::FieldMap fields = {
      {"service.name", "S7"},
      {"device.manufacturer", "Siemens"},
      {"device.model", "SIMATIC S7-1200"},
  };
  const auto labels = engine.Evaluate(fields);
  ASSERT_TRUE(labels.has_value());
  EXPECT_EQ(labels->device_type, "plc");
}

TEST(FingerprintEngineTest, NoMatchYieldsNothing) {
  const FingerprintEngine engine = FingerprintEngine::BuiltIn(100);
  EXPECT_FALSE(engine.Evaluate(HttpFields("Some Unremarkable Page"))
                   .has_value());
}

TEST(FingerprintEngineTest, GeneratedTailCountsTowardCorpusSize) {
  EXPECT_GT(FingerprintEngine::BuiltIn(2000).size(), 2000u);
  EXPECT_LT(FingerprintEngine::BuiltIn(0).size(), 100u);
}

// ---------------------------------------------------------------------- vulns

TEST(VersionCompareTest, OrdersDottedVersions) {
  EXPECT_LT(CompareVersions("1.2.3", "1.2.10"), 0);
  EXPECT_GT(CompareVersions("2.0", "1.9.9"), 0);
  EXPECT_EQ(CompareVersions("1.2.3", "1.2.3"), 0);
  EXPECT_LT(CompareVersions("8.2p1", "8.9p1"), 0);
  EXPECT_LT(CompareVersions("8.9", "9.3p2"), 0);
  EXPECT_LT(CompareVersions("2.4.49", "2.4.51"), 0);
  EXPECT_GT(CompareVersions("10.0", "9.9"), 0);
}

TEST(CveDatabaseTest, MatchesAffectedRange) {
  const CveDatabase db = CveDatabase::BuiltIn();
  // OpenSSH 7.4 < 7.7: affected by CVE-2018-15473.
  const auto hits = db.Lookup({"openbsd", "openssh", "7.4"});
  bool found = false;
  for (const VulnEntry* v : hits) found |= (v->cve == "CVE-2018-15473");
  EXPECT_TRUE(found);
  // 9.3p2 is at the fixed bound of CVE-2023-38408: not affected.
  for (const VulnEntry* v : db.Lookup({"openbsd", "openssh", "9.3p2"})) {
    EXPECT_NE(v->cve, "CVE-2023-38408");
  }
}

TEST(CveDatabaseTest, IntroducedBoundIsRespected) {
  const CveDatabase db = CveDatabase::BuiltIn();
  // Apache 2.4.49 is the introduced version of CVE-2021-41773...
  bool found = false;
  for (const VulnEntry* v : db.Lookup({"apache", "httpd", "2.4.49"})) {
    found |= (v->cve == "CVE-2021-41773");
  }
  EXPECT_TRUE(found);
  // ...2.4.48 predates it.
  for (const VulnEntry* v : db.Lookup({"apache", "httpd", "2.4.48"})) {
    EXPECT_NE(v->cve, "CVE-2021-41773");
  }
}

TEST(CveDatabaseTest, UnknownSoftwareHasNoCves) {
  const CveDatabase db = CveDatabase::BuiltIn();
  EXPECT_TRUE(db.Lookup({"acme", "widgetd", "1.0"}).empty());
}

TEST(CveDatabaseTest, KevFlagSurvivesLookup) {
  const CveDatabase db = CveDatabase::BuiltIn();
  bool any_kev = false;
  for (const VulnEntry* v : db.Lookup({"exim", "exim", "4.90"})) {
    any_kev |= v->kev;
  }
  EXPECT_TRUE(any_kev);
}

}  // namespace
}  // namespace censys::fingerprint
