// Unit tests for the censyslint library: the comment/string stripper, the
// layer-DAG parser and cycle finder, the lock-order graph builder, the
// unordered-container name collector, waivers, baselines, and the SARIF
// encoder. Fixture-level coverage (whole files in, findings out) lives in
// `censyslint --self-test tests/lint_fixtures`; these tests pin down the
// building blocks with synthetic inputs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint.h"

namespace censyslint {
namespace {

SourceFile MakeFile(const std::string& path, const std::string& raw) {
  SourceFile f;
  f.path = path;
  f.header = path.ends_with(".h") || path.ends_with(".hpp");
  f.raw = raw;
  f.code = StripCommentsAndStrings(raw);
  f.raw_lines = SplitLines(f.raw);
  f.code_lines = SplitLines(f.code);
  return f;
}

// ----------------------------------------------------------------- stripper

TEST(StripTest, BlanksCommentsAndStringsPreservingNewlines) {
  const std::string in =
      "int a; // trailing comment\n"
      "const char* s = \"std::mutex in a string\";\n"
      "/* block\n   comment */ int b;\n";
  const std::string out = StripCommentsAndStrings(in);
  EXPECT_EQ(SplitLines(in).size(), SplitLines(out).size());
  EXPECT_EQ(out.find("comment"), std::string::npos);
  EXPECT_EQ(out.find("mutex"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
}

TEST(StripTest, RawStringsAndCharLiterals) {
  const std::string in =
      "auto re = R\"re(for (x : map))re\";\n"
      "char c = ':';\n"
      "int keep = 1;\n";
  const std::string out = StripCommentsAndStrings(in);
  EXPECT_EQ(out.find("for (x"), std::string::npos);
  EXPECT_NE(out.find("int keep = 1;"), std::string::npos);
}

// ------------------------------------------------------------------- layers

TEST(LayerTest, ParseLayersBuildsAllowedSets) {
  const LayerGraph g = ParseLayers(
      "# comment\n"
      "core:\n"
      "storage: core\n"
      "pipeline: core storage\n");
  EXPECT_TRUE(g.errors.empty());
  EXPECT_TRUE(g.Declares("core"));
  EXPECT_TRUE(g.Declares("pipeline"));
  EXPECT_FALSE(g.Declares("serving"));
  EXPECT_TRUE(g.allowed.at("pipeline").contains("storage"));
  EXPECT_FALSE(g.allowed.at("storage").contains("pipeline"));
}

TEST(LayerTest, FindLayerCycleOnCyclicDeclaration) {
  const LayerGraph dag = ParseLayers("a:\nb: a\nc: b\n");
  EXPECT_TRUE(FindLayerCycle(dag).empty());

  const LayerGraph cyc = ParseLayers("a: c\nb: a\nc: b\n");
  const std::vector<std::string> cycle = FindLayerCycle(cyc);
  ASSERT_GE(cycle.size(), 3u);
  EXPECT_EQ(cycle.front(), cycle.back());
}

TEST(LayerTest, LayerOfUsesSegmentAfterLastSrc) {
  EXPECT_EQ(LayerOf("src/pipeline/read_side.h"), "pipeline");
  EXPECT_EQ(LayerOf("/repo/src/storage/journal.cc"), "storage");
  EXPECT_EQ(LayerOf("tests/lint_fixtures/src/engines/x.cc"), "engines");
  EXPECT_EQ(LayerOf("tools/censyslint/lint.cc"), "");
}

TEST(LayerTest, LayeringPassFlagsUpwardInclude) {
  const LayerGraph g = ParseLayers("core:\nstorage: core\n");
  const std::vector<SourceFile> files = {
      MakeFile("src/core/clock.h", "#include \"storage/table.h\"\n"),
      MakeFile("src/storage/table.h", "#include \"core/clock.h\"\n"),
  };
  std::vector<Finding> findings;
  RunLayeringPass(files, g, "layers.txt", &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "layering");
  EXPECT_EQ(findings[0].file, "src/core/clock.h");
}

// --------------------------------------------------------------- lock order

constexpr char kNestedLocks[] = R"cc(
class Cache {
 public:
  void Refresh() {
    const core::MutexLock a(mu_a_);
    const core::MutexLock b(mu_b_);
  }
 private:
  core::Mutex mu_a_;
  core::Mutex mu_b_;
};
)cc";

TEST(LockOrderTest, ScanFunctionsFindsNestedAcquisitions) {
  std::vector<FunctionInfo> fns;
  ScanFunctions(MakeFile("src/pipeline/cache.cc", kNestedLocks), &fns);
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_EQ(fns[0].class_name, "Cache");
  EXPECT_EQ(fns[0].name, "Refresh");
  ASSERT_EQ(fns[0].acquisitions.size(), 2u);
  EXPECT_EQ(fns[0].acquisitions[0].lock, "Cache::mu_a_");
  EXPECT_EQ(fns[0].acquisitions[1].lock, "Cache::mu_b_");
  ASSERT_EQ(fns[0].nested.size(), 1u);
  EXPECT_EQ(fns[0].nested[0].from, "Cache::mu_a_");
  EXPECT_EQ(fns[0].nested[0].to, "Cache::mu_b_");
}

TEST(LockOrderTest, GraphBuilderPropagatesHeldLocksThroughCalls) {
  constexpr char kCaller[] = R"cc(
class Cache {
 public:
  void Outer() {
    const core::MutexLock a(mu_a_);
    Inner();
  }
  void Inner() {
    const core::MutexLock b(mu_b_);
  }
 private:
  core::Mutex mu_a_;
  core::Mutex mu_b_;
};
)cc";
  std::vector<FunctionInfo> fns;
  ScanFunctions(MakeFile("src/pipeline/cache.cc", kCaller), &fns);
  const std::vector<LockEdge> edges = BuildLockOrderGraph(fns);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from, "Cache::mu_a_");
  EXPECT_EQ(edges[0].to, "Cache::mu_b_");
  EXPECT_FALSE(edges[0].via.empty());  // came through the Inner() call
}

TEST(LockOrderTest, FindLockCycleDetectsInversion) {
  const std::vector<LockEdge> acyclic = {
      {"A", "B", "f.cc", 1, ""},
      {"B", "C", "f.cc", 2, ""},
  };
  EXPECT_TRUE(FindLockCycle(acyclic).empty());

  const std::vector<LockEdge> inverted = {
      {"A", "B", "f.cc", 1, ""},
      {"B", "A", "g.cc", 2, ""},
  };
  const std::vector<std::string> cycle = FindLockCycle(inverted);
  ASSERT_GE(cycle.size(), 3u);
  EXPECT_EQ(cycle.front(), cycle.back());
}

TEST(LockOrderTest, PassReportsCrossFileCycleOnce) {
  const std::vector<SourceFile> files = {
      MakeFile("src/pipeline/writer.cc", R"cc(
class J {
  void Append() {
    const core::MutexLock m(mu_);
    const core::MutexLock i(index_mu_);
  }
  core::Mutex mu_;
  core::Mutex index_mu_;
};
)cc"),
      MakeFile("src/pipeline/reader.cc", R"cc(
class J {
  void Scan() {
    const core::MutexLock i(index_mu_);
    const core::MutexLock m(mu_);
  }
  core::Mutex mu_;
  core::Mutex index_mu_;
};
)cc"),
  };
  std::vector<Finding> findings;
  RunLockOrderPass(files, &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lock-order");
}

// ----------------------------------------------------------- unordered-iter

TEST(UnorderedIterTest, CollectsDeclaredNamesNotIncludeArtifacts) {
  const std::vector<SourceFile> files = {MakeFile("src/pipeline/x.cc", R"cc(
#include <unordered_map>
#include <unordered_set>
std::vector<Port> excluded_ports;
std::unordered_map<int, int> states_;
using Index = std::unordered_map<int, int>;
Index by_host_;
)cc")};
  const std::set<std::string> names = CollectUnorderedNames(files);
  EXPECT_TRUE(names.contains("states_"));
  EXPECT_TRUE(names.contains("by_host_"));  // through the alias
  // Regression: `#include <unordered_set>` must not bind the next
  // declaration's name.
  EXPECT_FALSE(names.contains("excluded_ports"));
}

TEST(UnorderedIterTest, FlagsOnlyOrderSensitiveDirs) {
  EXPECT_TRUE(InOrderSensitiveDir("src/pipeline/write_side.cc"));
  EXPECT_TRUE(InOrderSensitiveDir("src/storage/journal.cc"));
  EXPECT_FALSE(InOrderSensitiveDir("src/simnet/internet.cc"));

  const char* body = R"cc(
std::unordered_map<int, int> states_;
int Sum() {
  int t = 0;
  for (const auto& [k, v] : states_) t += v;
  return t;
}
)cc";
  std::vector<Finding> findings;
  RunUnorderedIterPass({MakeFile("src/pipeline/x.cc", body)}, &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-iter");
  EXPECT_EQ(findings[0].key, "states_");

  findings.clear();
  RunUnorderedIterPass({MakeFile("src/simnet/x.cc", body)}, &findings);
  EXPECT_TRUE(findings.empty());
}

TEST(UnorderedIterTest, JustifiedWaiverSilencesBareWaiverDoesNot) {
  const char* justified = R"cc(
std::unordered_map<int, int> states_;
int Sum() {
  int t = 0;
  // censyslint:allow(unordered-iter): commutative sum
  for (const auto& [k, v] : states_) t += v;
  return t;
}
)cc";
  std::vector<Finding> findings;
  RunUnorderedIterPass({MakeFile("src/pipeline/x.cc", justified)}, &findings);
  EXPECT_TRUE(findings.empty());

  const char* bare = R"cc(
std::unordered_map<int, int> states_;
int Sum() {
  int t = 0;
  // censyslint:allow(unordered-iter)
  for (const auto& [k, v] : states_) t += v;
  return t;
}
)cc";
  RunUnorderedIterPass({MakeFile("src/pipeline/x.cc", bare)}, &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("justification"), std::string::npos);
}

// ------------------------------------------------------------------ waivers

TEST(WaiverTest, MultiRuleListAndJustification) {
  const Waiver a = FindWaiver("x; // censyslint:allow(rule-a,rule-b): why",
                              "rule-b");
  EXPECT_TRUE(a.present);
  EXPECT_EQ(a.justification, "why");
  EXPECT_TRUE(
      FindWaiver("x; // censyslint:allow(rule-a, rule-b)", "rule-a").present);
  EXPECT_FALSE(
      FindWaiver("x; // censyslint:allow(rule-a)", "rule-b").present);
}

TEST(WaiverTest, FindWaiverNearChecksPrecedingCommentBlock) {
  const std::vector<std::string> lines = {
      "int before;",
      "// censyslint:allow(unordered-iter): sorted below",
      "// (continued explanation)",
      "for (const auto& [k, v] : states_) {}",
  };
  EXPECT_TRUE(FindWaiverNear(lines, 3, "unordered-iter").present);
  EXPECT_EQ(FindWaiverNear(lines, 3, "unordered-iter").justification,
            "sorted below");
  // The walk stops at the first non-comment line.
  EXPECT_FALSE(FindWaiverNear(lines, 0, "unordered-iter").present);
}

// ----------------------------------------------------------------- baseline

TEST(BaselineTest, ParseAndSuppressByKeyNotLine) {
  const Baseline b = ParseBaseline(
      "# comment\n"
      "unordered-iter|storage/journal.cc|meta\n");
  ASSERT_EQ(b.entries.size(), 1u);

  std::vector<Finding> findings = {
      {"src/storage/journal.cc", 430, "unordered-iter", "msg", "meta", false},
      {"src/storage/journal.cc", 99, "unordered-iter", "msg", "other", false},
  };
  ApplyBaseline(b, &findings);
  EXPECT_TRUE(findings[0].suppressed);   // key + path suffix match, any line
  EXPECT_FALSE(findings[1].suppressed);  // different key
}

// -------------------------------------------------------------------- sarif

TEST(SarifTest, ShapeAndSuppressions) {
  RunResult result;
  result.file_count = 2;
  result.findings = {
      {"src/a.cc", 10, "layering", "bad include", "core->web", false},
      {"src/b.cc", 20, "unordered-iter", "hash order", "meta", true},
  };
  const std::string sarif = ToSarif(result);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"censyslint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"layering\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 10"), std::string::npos);
  EXPECT_NE(sarif.find("censyslintKey"), std::string::npos);
  // The suppressed finding carries a suppression object; the live one not.
  EXPECT_NE(sarif.find("\"suppressions\""), std::string::npos);
}

}  // namespace
}  // namespace censyslint
