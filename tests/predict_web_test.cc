// Tests for the predictive scan engine and the web-property catalog.
#include <gtest/gtest.h>

#include <set>

#include "cert/ct.h"
#include "predict/predictive.h"
#include "proto/tls.h"
#include "simnet/internet.h"
#include "web/webprops.h"

namespace censys {
namespace {

simnet::UniverseConfig SmallConfig() {
  simnet::UniverseConfig cfg;
  cfg.seed = 17;
  cfg.universe_size = 1u << 16;
  cfg.target_services = 8000;
  cfg.ics_scale = 0.0;
  return cfg;
}

// ------------------------------------------------------------------ predictive

TEST(PredictiveTest, AffinityProposalsTargetHotBlockPorts) {
  simnet::Internet net(SmallConfig());
  predict::PredictiveEngine engine(net.blocks(), 5);

  // Train: port 8443 is hot in one specific block.
  const simnet::NetworkBlock* block =
      net.blocks().BlocksOfType(simnet::NetworkType::kHosting).front();
  for (std::uint64_t i = 0; i < 24; ++i) {
    engine.ObserveService(
        {block->cidr.AddressAt(i * 3), 8443, Transport::kTcp});
  }

  const auto candidates = engine.GenerateCandidates(Timestamp{0}, 200);
  ASSERT_FALSE(candidates.empty());
  std::size_t in_block_on_port = 0;
  for (const ServiceKey& key : candidates) {
    if (block->cidr.Contains(key.ip) && key.port == 8443) ++in_block_on_port;
  }
  // The affinity model should focus most proposals on the hot (block, port).
  EXPECT_GT(in_block_on_port, candidates.size() / 2);
}

TEST(PredictiveTest, CooccurrenceProposesCorrelatedPortsOnNewHosts) {
  simnet::Internet net(SmallConfig());
  predict::PredictiveEngine::Options options;
  options.min_cooccurrence_support = 4;
  predict::PredictiveEngine engine(net.blocks(), 5, options);

  // Train the pair (80, 4567) on several multi-service hosts.
  for (std::uint32_t host = 100; host < 110; ++host) {
    engine.ObserveService({IPv4Address(host), 80, Transport::kTcp});
    engine.ObserveService({IPv4Address(host), 4567, Transport::kTcp});
  }
  engine.GenerateCandidates(Timestamp{0}, 1000);  // drain training hosts

  // A brand-new host shows up with port 80 open.
  engine.ObserveService({IPv4Address(7777), 80, Transport::kTcp});
  const auto candidates =
      engine.GenerateCandidates(Timestamp::FromHours(1), 400);
  bool proposed = false;
  for (const ServiceKey& key : candidates) {
    if (key.ip == IPv4Address(7777) && key.port == 4567) proposed = true;
  }
  EXPECT_TRUE(proposed);
}

TEST(PredictiveTest, CooldownPreventsImmediateReproposal) {
  simnet::Internet net(SmallConfig());
  predict::PredictiveEngine engine(net.blocks(), 5);
  const simnet::NetworkBlock* block =
      net.blocks().BlocksOfType(simnet::NetworkType::kHosting).front();
  for (std::uint64_t i = 0; i < 16; ++i) {
    engine.ObserveService({block->cidr.AddressAt(i), 9999, Transport::kTcp});
  }
  const auto first = engine.GenerateCandidates(Timestamp{0}, 100);
  const auto second = engine.GenerateCandidates(Timestamp{60}, 100);
  std::set<std::uint64_t> first_keys;
  for (const ServiceKey& k : first) first_keys.insert(k.Pack());
  for (const ServiceKey& k : second) {
    EXPECT_FALSE(first_keys.contains(k.Pack()))
        << k.ToString() << " re-proposed within cooldown";
  }
}

TEST(PredictiveTest, UntrainedEngineProposesNothing) {
  simnet::Internet net(SmallConfig());
  predict::PredictiveEngine engine(net.blocks(), 5);
  EXPECT_TRUE(engine.GenerateCandidates(Timestamp{0}, 100).empty());
}

TEST(PredictiveTest, StatsAreTracked) {
  simnet::Internet net(SmallConfig());
  predict::PredictiveEngine engine(net.blocks(), 5);
  const simnet::NetworkBlock* block =
      net.blocks().BlocksOfType(simnet::NetworkType::kCloud).front();
  for (std::uint64_t i = 0; i < 10; ++i) {
    engine.ObserveService({block->cidr.AddressAt(i), 8080, Transport::kTcp});
  }
  engine.GenerateCandidates(Timestamp{0}, 50);
  EXPECT_EQ(engine.stats().observations, 10u);
  EXPECT_GT(engine.stats().candidates_emitted, 0u);
}

// ------------------------------------------------------------------------- web

class WebTest : public ::testing::Test {
 protected:
  WebTest()
      : net_(WebConfig()), profile_{1, "t", 300.0, 1280.0},
        interrogator_(net_, profile_), catalog_(net_, interrogator_) {}

  static simnet::UniverseConfig WebConfig() {
    simnet::UniverseConfig cfg;
    cfg.seed = 23;
    cfg.universe_size = 1u << 16;
    cfg.target_services = 8000;
    cfg.sni_only_fraction = 0.10;
    cfg.ics_scale = 0.0;
    return cfg;
  }

  // Fills the CT log with certificates of current name-addressed services.
  std::size_t FillCtLog(Timestamp t) {
    std::size_t added = 0;
    net_.ForEachActiveService(t, [&](const simnet::SimService& svc) {
      if (!svc.requires_sni) return;
      const auto tls = proto::DeriveTls(svc.protocol, svc.seed, true);
      if (!tls) return;
      ct_log_.Append(cert::SynthesizeCertificate(tls->cert_seed, svc.sni_name,
                                                 Timestamp{0}),
                     t);
      ++added;
    });
    return added;
  }

  simnet::Internet net_;
  simnet::ScannerProfile profile_;
  interrogate::Interrogator interrogator_;
  cert::CtLog ct_log_;
  web::WebPropertyCatalog catalog_;
};

TEST_F(WebTest, CtPollingDiscoversWebProperties) {
  const std::size_t logged = FillCtLog(Timestamp{0});
  ASSERT_GT(logged, 50u);
  const std::size_t added = catalog_.PollCtLog(ct_log_, Timestamp{0});
  EXPECT_GT(added, logged / 2);  // wildcards skipped, rest registered
  EXPECT_EQ(catalog_.size(), added);
  // Most registered properties resolve and serve content.
  EXPECT_GT(catalog_.reachable_count(), added * 7 / 10);
}

TEST_F(WebTest, PollingIsIncremental) {
  FillCtLog(Timestamp{0});
  catalog_.PollCtLog(ct_log_, Timestamp{0});
  // Nothing new: second poll adds nothing.
  EXPECT_EQ(catalog_.PollCtLog(ct_log_, Timestamp{10}), 0u);
}

TEST_F(WebTest, ScannedPropertyCarriesNamedContent) {
  FillCtLog(Timestamp{0});
  catalog_.PollCtLog(ct_log_, Timestamp{0});
  const web::WebProperty* reachable = nullptr;
  catalog_.ForEach([&](const web::WebProperty& prop) {
    if (reachable == nullptr && prop.reachable) reachable = &prop;
  });
  ASSERT_NE(reachable, nullptr);
  // The record was fetched with the right SNI, so it is not the generic
  // frontend page.
  EXPECT_NE(reachable->record.html_title, "Default web page");
  EXPECT_EQ(reachable->record.sni_name, reachable->name);
}

TEST_F(WebTest, RefreshDueHonorsInterval) {
  FillCtLog(Timestamp{0});
  catalog_.PollCtLog(ct_log_, Timestamp{0});
  EXPECT_EQ(catalog_.RefreshDue(Timestamp::FromDays(10)), 0u);  // too soon
  const std::size_t refreshed = catalog_.RefreshDue(Timestamp::FromDays(31));
  EXPECT_EQ(refreshed, catalog_.size());  // "at least monthly"
}

TEST_F(WebTest, DeadNamesBecomeUnreachableOnRefresh) {
  FillCtLog(Timestamp{0});
  catalog_.PollCtLog(ct_log_, Timestamp{0});
  const std::size_t before = catalog_.reachable_count();
  net_.AdvanceTo(Timestamp::FromDays(31));
  catalog_.RefreshDue(net_.now());
  // Churn killed some name-addressed services; their properties flip to
  // unreachable but remain catalogued.
  EXPECT_LT(catalog_.reachable_count(), before);
  EXPECT_GT(catalog_.reachable_count(), 0u);
}

TEST_F(WebTest, ManualNamesFromPassiveDns) {
  catalog_.AddName("nonexistent.example.com",
                   web::WebProperty::Source::kPassiveDns, Timestamp{0});
  const web::WebProperty* prop = catalog_.Get("nonexistent.example.com");
  ASSERT_NE(prop, nullptr);
  EXPECT_FALSE(prop->reachable);
  EXPECT_EQ(prop->source, web::WebProperty::Source::kPassiveDns);
}

}  // namespace
}  // namespace censys
