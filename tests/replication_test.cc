// Replicated read serving: shipment codec framing, read-only WAL tailing,
// follower bootstrap/apply/NACK semantics, 10-seed chaos convergence
// (digest equality at equal watermarks under a lossy/reordering/corrupting
// link), crash-mid-apply re-bootstrap, the pure RouterPolicy state machine
// (simulated clock, no sleeps), and the ReplicaRouter's
// failover/degradation ladder under kill/revive load with a
// version-token correctness oracle (stale answers allowed, wrong answers
// never).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/fault.h"
#include "core/strings.h"
#include "interrogate/record.h"
#include "pipeline/read_side.h"
#include "pipeline/write_side.h"
#include "replicate/follower.h"
#include "replicate/group.h"
#include "replicate/shipment.h"
#include "serving/frontend.h"
#include "serving/replica_router.h"
#include "serving/router_policy.h"
#include "storage/journal.h"
#include "storage/wal.h"
#include "test_tmpdir.h"

namespace censys::replicate {
namespace {

using test::ScratchDir;

constexpr int kEntities = 5;

storage::EventJournal::Options DurableOptions(const std::string& dir) {
  storage::EventJournal::Options options;
  options.shards = 4;
  options.wal.dir = dir;
  options.wal.segment_bytes = 8u << 10;  // rotate often
  return options;
}

// Op `i` of the workload script — a pure function of i, always an
// explicit state change (never a journal no-op).
void ApplyOp(storage::EventJournal& journal, int i) {
  storage::Delta delta;
  delta.ops.push_back({storage::FieldOp::Kind::kSet,
                       "f" + std::to_string(i % 3),
                       "v" + std::to_string(i)});
  journal.Append("host/" + std::to_string(i % kEntities),
                 storage::EventKind::kServiceChanged,
                 Timestamp{static_cast<std::int64_t>(i + 1)}, delta);
}

std::vector<storage::WalRecord> TailOf(storage::EventJournal& journal,
                                       std::uint64_t from, std::uint64_t end,
                                       std::size_t max = 0) {
  std::vector<storage::WalRecord> records;
  std::string error;
  EXPECT_TRUE(journal.wal()->ReadTail(from, end, max, &records, &error))
      << error;
  return records;
}

// ----------------------------------------------------------- shipment codec

TEST(ShipmentCodecTest, RoundTripsARecordRun) {
  std::vector<storage::WalRecord> records;
  for (int i = 0; i < 4; ++i) {
    storage::WalRecord r;
    r.lsn = 10 + static_cast<std::uint64_t>(i);
    r.entity = "host/" + std::to_string(i);
    r.kind = static_cast<std::uint8_t>(storage::EventKind::kServiceChanged);
    r.at = Timestamp{100 + i};
    r.delta.ops.push_back({storage::FieldOp::Kind::kSet, "f", "v"});
    records.push_back(std::move(r));
  }
  const Shipment shipment = EncodeShipment(9, records);
  EXPECT_EQ(shipment.prev_lsn, 9u);
  EXPECT_EQ(shipment.last_lsn, 13u);

  const DecodedShipment decoded = DecodeShipment(shipment);
  EXPECT_EQ(decoded.corrupt_frames, 0u);
  EXPECT_EQ(decoded.truncated_bytes, 0u);
  ASSERT_EQ(decoded.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(decoded.records[i].lsn, records[i].lsn);
    EXPECT_EQ(decoded.records[i].entity, records[i].entity);
    ASSERT_EQ(decoded.records[i].delta.ops.size(), 1u);
    EXPECT_EQ(decoded.records[i].delta.ops[0].value, "v");
  }
}

TEST(ShipmentCodecTest, BitFlipCutsDecodeAtTheBadFrame) {
  std::vector<storage::WalRecord> records;
  for (int i = 0; i < 3; ++i) {
    storage::WalRecord r;
    r.lsn = 1 + static_cast<std::uint64_t>(i);
    r.entity = "e";
    r.at = Timestamp{i};
    r.delta.ops.push_back({storage::FieldOp::Kind::kSet, "f", "v"});
    records.push_back(std::move(r));
  }
  Shipment shipment = EncodeShipment(0, records);
  // Flip a payload bit in the middle frame: frame 0 survives, the CRC
  // kills frame 1, and the decoder refuses to resynchronize past it.
  const std::size_t frame_bytes = shipment.frames.size() / 3;
  shipment.frames[frame_bytes + 9] ^= 0x10;
  const DecodedShipment decoded = DecodeShipment(shipment);
  EXPECT_EQ(decoded.records.size(), 1u);
  EXPECT_EQ(decoded.corrupt_frames, 1u);
}

TEST(ShipmentCodecTest, TornTailYieldsTheValidPrefix) {
  std::vector<storage::WalRecord> records;
  for (int i = 0; i < 3; ++i) {
    storage::WalRecord r;
    r.lsn = 1 + static_cast<std::uint64_t>(i);
    r.entity = "e";
    r.at = Timestamp{i};
    r.delta.ops.push_back({storage::FieldOp::Kind::kSet, "f", "v"});
    records.push_back(std::move(r));
  }
  Shipment shipment = EncodeShipment(0, records);
  shipment.frames.resize(shipment.frames.size() - 5);  // tear mid-frame
  const DecodedShipment decoded = DecodeShipment(shipment);
  EXPECT_EQ(decoded.records.size(), 2u);
  EXPECT_GT(decoded.truncated_bytes, 0u);
}

// ------------------------------------------------------------- WAL tailing

TEST(WalReadTailTest, ReturnsTheExactWindow) {
  const std::string dir = ScratchDir("read_tail_window");
  storage::EventJournal journal(DurableOptions(dir));
  for (int i = 0; i < 50; ++i) ApplyOp(journal, i);
  const std::uint64_t end = journal.wal()->last_lsn();
  ASSERT_GE(end, 50u);

  // (from, end] semantics, across segment rotations.
  const auto all = TailOf(journal, 0, end);
  ASSERT_EQ(all.size(), end);
  EXPECT_EQ(all.front().lsn, 1u);
  EXPECT_EQ(all.back().lsn, end);

  const auto window = TailOf(journal, 10, 20);
  ASSERT_EQ(window.size(), 10u);
  EXPECT_EQ(window.front().lsn, 11u);
  EXPECT_EQ(window.back().lsn, 20u);

  // max_records caps the run without skipping anything.
  const auto capped = TailOf(journal, 10, end, 5);
  ASSERT_EQ(capped.size(), 5u);
  EXPECT_EQ(capped.front().lsn, 11u);
  EXPECT_EQ(capped.back().lsn, 15u);

  EXPECT_EQ(journal.wal()->oldest_lsn(), 1u);
}

TEST(WalReadTailTest, NeverTruncatesATornTail) {
  const std::string dir = ScratchDir("read_tail_readonly");
  std::uint64_t end = 0;
  {
    storage::EventJournal journal(DurableOptions(dir));
    for (int i = 0; i < 10; ++i) ApplyOp(journal, i);
    end = journal.wal()->last_lsn();
  }
  // Tear the newest segment by appending garbage, as a crashed writer
  // would leave it.
  std::filesystem::path newest;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("wal-", 0) == 0 &&
        (newest.empty() || entry.path() > newest)) {
      newest = entry.path();
    }
  }
  ASSERT_FALSE(newest.empty());
  const auto before = std::filesystem::file_size(newest);
  {
    std::FILE* f = std::fopen(newest.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("garbage-tail", f);
    std::fclose(f);
  }
  const auto torn = std::filesystem::file_size(newest);
  ASSERT_GT(torn, before);

  // A reader tailing the log sees the valid records and leaves the torn
  // bytes exactly where they were — truncation is Recover's job.
  storage::EventJournal journal(DurableOptions(dir));
  std::vector<storage::WalRecord> records;
  std::string error;
  ASSERT_TRUE(journal.wal()->Open(&error)) << error;
  // Recovery (Open via the journal constructor) already trimmed the torn
  // tail; re-tear it to exercise ReadTail against a dirty file.
  {
    std::FILE* f = std::fopen(newest.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("garbage-tail", f);
    std::fclose(f);
  }
  const auto dirty = std::filesystem::file_size(newest);
  ASSERT_TRUE(journal.wal()->ReadTail(0, end, 0, &records, &error)) << error;
  EXPECT_EQ(records.size(), end);
  EXPECT_EQ(std::filesystem::file_size(newest), dirty);
}

// -------------------------------------------------------- follower protocol

TEST(FollowerTest, BootstrapsAndTailsToLeaderDigest) {
  const std::string dir = ScratchDir("follower_tail");
  storage::EventJournal leader(DurableOptions(dir));
  ReplicationGroup::Options go;
  go.max_records_per_shipment = 7;  // force multi-shipment catch-up
  ReplicationGroup group(leader, go);
  group.AddFollower("f0");
  std::string error;
  ASSERT_TRUE(group.BootstrapFollower(0, &error)) << error;

  for (int i = 0; i < 100; ++i) ApplyOp(leader, i);
  ASSERT_TRUE(group.CatchUp(0, 1000, &error)) << error;

  const Follower& f = group.follower(0);
  EXPECT_EQ(f.applied_lsn(), group.leader_lsn());
  EXPECT_EQ(f.LagBehind(group.leader_lsn()), 0u);
  EXPECT_EQ(f.Digest(), JournalDigest(leader));
  EXPECT_GT(f.applied_records(), 0u);
}

TEST(FollowerTest, NacksGapsSkipsDuplicatesAppliesInOrder) {
  const std::string dir = ScratchDir("follower_nack");
  storage::EventJournal leader(DurableOptions(dir));
  ReplicationGroup group(leader);
  Follower& f = group.AddFollower("f0");
  std::string error;
  ASSERT_TRUE(group.BootstrapFollower(0, &error)) << error;  // empty, lsn 0

  for (int i = 0; i < 10; ++i) ApplyOp(leader, i);
  const std::uint64_t end = leader.wal()->last_lsn();
  const auto head = TailOf(leader, 0, 5);
  const auto tail = TailOf(leader, 5, end);
  const Shipment first = EncodeShipment(0, head);
  const Shipment second = EncodeShipment(5, tail);

  // The successor run arrives first: gap, nothing applied.
  EXPECT_EQ(f.Apply(second).status, Follower::Ingest::kGap);
  EXPECT_EQ(f.applied_lsn(), 0u);
  EXPECT_EQ(f.gap_nacks(), 1u);

  EXPECT_EQ(f.Apply(first).status, Follower::Ingest::kApplied);
  EXPECT_EQ(f.applied_lsn(), 5u);

  // Replaying the same run is a no-op, not a divergence.
  EXPECT_EQ(f.Apply(first).status, Follower::Ingest::kDuplicate);
  EXPECT_EQ(f.applied_lsn(), 5u);

  // A corrupt frame keeps the valid prefix and NACKs the rest.
  Shipment bad = second;
  bad.frames[bad.frames.size() / 2] ^= 0x04;
  const auto result = f.Apply(bad);
  EXPECT_EQ(result.status, Follower::Ingest::kCorrupt);
  EXPECT_EQ(f.corrupt_shipments(), 1u);
  EXPECT_LT(f.applied_lsn(), end);

  EXPECT_EQ(f.Apply(second).status, Follower::Ingest::kApplied);
  EXPECT_EQ(f.applied_lsn(), end);
  EXPECT_EQ(f.Digest(), JournalDigest(leader));
}

TEST(FollowerTest, KilledFollowerDropsShipmentsUntilRebootstrap) {
  const std::string dir = ScratchDir("follower_kill");
  storage::EventJournal leader(DurableOptions(dir));
  ReplicationGroup group(leader);
  Follower& f = group.AddFollower("f0");
  std::string error;
  ASSERT_TRUE(group.BootstrapFollower(0, &error)) << error;
  for (int i = 0; i < 10; ++i) ApplyOp(leader, i);

  f.Kill();
  EXPECT_FALSE(f.serving());
  const auto records = TailOf(leader, 0, leader.wal()->last_lsn());
  EXPECT_EQ(f.Apply(EncodeShipment(0, records)).status,
            Follower::Ingest::kDead);
  EXPECT_EQ(f.applied_lsn(), 0u);

  ASSERT_TRUE(group.BootstrapFollower(0, &error)) << error;
  EXPECT_TRUE(f.serving());
  EXPECT_EQ(f.applied_lsn(), group.leader_lsn());
  EXPECT_EQ(f.Digest(), JournalDigest(leader));
  EXPECT_EQ(f.bootstraps(), 2u);
}

TEST(FollowerTest, PrunedLeaderTailFallsBackToSnapshotBootstrap) {
  const std::string dir = ScratchDir("follower_pruned");
  storage::EventJournal::Options options = DurableOptions(dir);
  options.wal.segment_bytes = 2u << 10;
  options.snapshot_every = 0;  // explicit checkpoints only
  storage::EventJournal leader(options);
  ReplicationGroup group(leader);
  group.AddFollower("f0");
  std::string error;
  ASSERT_TRUE(group.BootstrapFollower(0, &error)) << error;

  // The follower sleeps through a lot of traffic and a checkpoint that
  // prunes the segments it would have tailed.
  for (int i = 0; i < 300; ++i) ApplyOp(leader, i);
  ASSERT_TRUE(leader.Checkpoint(&error)) << error;
  for (int i = 300; i < 320; ++i) ApplyOp(leader, i);
  ASSERT_GT(leader.wal()->oldest_lsn(), 1u);

  ASSERT_TRUE(group.CatchUp(0, 1000, &error)) << error;
  EXPECT_EQ(group.follower(0).applied_lsn(), group.leader_lsn());
  EXPECT_EQ(group.follower(0).Digest(), JournalDigest(leader));
  EXPECT_GE(group.bootstraps(), 2u);  // initial + pruned-tail fallback
}

// ----------------------------------------------------------------- chaos (a)

// 10 seeds x 5 link-fault modes: whatever the link does short of killing
// the process, every follower converges to the leader's exact digest once
// the link clears — the NACK/resend loop loses nothing and applies
// nothing twice.
TEST(ReplicationChaosTest, DigestsConvergeUnderLinkFaults) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const std::string dir =
        ScratchDir("chaos_link_" + std::to_string(seed));
    storage::EventJournal leader(DurableOptions(dir));
    ReplicationGroup::Options go;
    go.max_records_per_shipment = 9;
    ReplicationGroup group(leader, go);
    group.AddFollower("f0");
    group.AddFollower("f1");
    group.AddFollower("f2");
    std::string error;
    for (std::size_t i = 0; i < group.size(); ++i) {
      ASSERT_TRUE(group.BootstrapFollower(i, &error)) << error;
    }

    {
      const fault::Mode mode = static_cast<fault::Mode>(
          (seed % 5) + 1);  // kTornWrite, kBitFlip, kCrash(=lost), kReorder, kStall
      fault::ScopedPlan plan(seed + 1, {{.point = "replicate.ship",
                                         .mode = mode,
                                         .probability = 0.4}});
      for (int i = 0; i < 200; ++i) {
        ApplyOp(leader, i);
        if (i % 4 == 3) {
          ASSERT_TRUE(group.PumpAll(&error)) << error;
        }
      }
    }

    // Link clears: every follower drains to the leader watermark.
    for (std::size_t i = 0; i < group.size(); ++i) {
      ASSERT_TRUE(group.CatchUp(i, 2000, &error))
          << "seed " << seed << " follower " << i << ": " << error;
    }
    const std::uint64_t want = JournalDigest(leader);
    for (std::size_t i = 0; i < group.size(); ++i) {
      EXPECT_EQ(group.follower(i).applied_lsn(), group.leader_lsn());
      EXPECT_EQ(group.follower(i).Digest(), want) << "seed " << seed;
    }
  }
}

// ----------------------------------------------------------------- chaos (b)

// A follower crash-killed mid-apply (fault::CrashException at an
// arbitrary record) re-bootstraps from a fresh snapshot to the identical
// digest: partial applies never leak into the converged state.
TEST(ReplicationChaosTest, CrashMidApplyRebootstrapsToIdenticalDigest) {
#if !defined(CENSYSIM_FAULT_INJECTION)
  GTEST_SKIP() << "fault injection compiled out";
#else
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const std::string dir =
        ScratchDir("chaos_crash_" + std::to_string(seed));
    storage::EventJournal leader(DurableOptions(dir));
    ReplicationGroup group(leader);
    Follower& f = group.AddFollower("f0");
    std::string error;
    ASSERT_TRUE(group.BootstrapFollower(0, &error)) << error;

    for (int i = 0; i < 120; ++i) ApplyOp(leader, i);

    bool crashed = false;
    {
      fault::ScopedPlan plan(seed + 1,
                             {{.point = "replicate.apply",
                               .mode = fault::Mode::kCrash,
                               .skip_hits = (13 * seed + 5) % 100,
                               .max_fires = 1}});
      try {
        ASSERT_TRUE(group.CatchUp(0, 2000, &error)) << error;
      } catch (const fault::CrashException&) {
        crashed = true;
        f.Kill();  // the "process" died; its memory is gone
      }
    }
    ASSERT_TRUE(crashed) << "seed " << seed;
    EXPECT_FALSE(f.serving());

    ASSERT_TRUE(group.BootstrapFollower(0, &error)) << error;
    ASSERT_TRUE(group.CatchUp(0, 2000, &error)) << error;
    EXPECT_EQ(f.applied_lsn(), group.leader_lsn());
    EXPECT_EQ(f.Digest(), JournalDigest(leader)) << "seed " << seed;
  }
#endif
}

}  // namespace
}  // namespace censys::replicate

// ============================================================ router policy

namespace censys::serving {
namespace {

RouterPolicy::Options TightPolicy() {
  RouterPolicy::Options o;
  o.lagging_above = 10;
  o.healthy_below = 4;
  o.healthy_streak = 3;
  o.max_attempts = 3;
  o.backoff_base_us = 100;
  o.backoff_cap_us = 800;
  o.jitter_frac = 0.25;
  o.hedge_latency_us = 500;
  o.down_probe_us = 5000;
  return o;
}

TEST(RouterPolicyTest, BackoffIsDeterministicBoundedAndCapped) {
  const RouterPolicy policy(3, TightPolicy(), /*seed=*/7);
  EXPECT_EQ(policy.BackoffUs(1, 0), 0);  // first attempt never waits

  for (int attempt = 2; attempt <= 8; ++attempt) {
    const double a = policy.BackoffUs(attempt, 42);
    const double b = policy.BackoffUs(attempt, 42);
    EXPECT_EQ(a, b);  // same (seed, salt, attempt) -> same wait
    const double exp =
        std::min(100.0 * static_cast<double>(1 << (attempt - 2)), 800.0);
    EXPECT_LE(a, exp);
    EXPECT_GE(a, exp * 0.75);  // jitter shaves at most jitter_frac
  }
  // Different salts decorrelate.
  EXPECT_NE(policy.BackoffUs(3, 1), policy.BackoffUs(3, 2));
}

TEST(RouterPolicyTest, LaggingToHealthyRequiresAFullStreak) {
  RouterPolicy policy(1, TightPolicy(), 1);
  EXPECT_EQ(policy.health(0), RouterPolicy::Health::kHealthy);

  policy.ObserveLag(0, 11);  // > lagging_above
  EXPECT_EQ(policy.health(0), RouterPolicy::Health::kLagging);

  // Two good rounds, then a spike: the streak restarts (hysteresis).
  policy.ObserveLag(0, 1);
  policy.ObserveLag(0, 2);
  EXPECT_EQ(policy.health(0), RouterPolicy::Health::kLagging);
  policy.ObserveLag(0, 7);  // not below healthy_below
  policy.ObserveLag(0, 1);
  policy.ObserveLag(0, 1);
  EXPECT_EQ(policy.health(0), RouterPolicy::Health::kLagging);
  policy.ObserveLag(0, 1);  // third consecutive good round
  EXPECT_EQ(policy.health(0), RouterPolicy::Health::kHealthy);
}

TEST(RouterPolicyTest, DownReplicaIsProbedAfterTheInterval) {
  RouterPolicy policy(1, TightPolicy(), 1);
  policy.OnFailure(0, /*now_us=*/1000);
  EXPECT_EQ(policy.health(0), RouterPolicy::Health::kDown);

  const std::vector<bool> none(1, false);
  EXPECT_FALSE(policy.PickPrimary(2000, none).has_value());
  EXPECT_FALSE(policy.PickStale(2000, none).has_value());
  // Probe interval elapses on the simulated clock: eligible again.
  EXPECT_EQ(policy.PickPrimary(6001, none), std::optional<std::size_t>(0));

  // A successful probe rejoins as lagging, not healthy: the replica must
  // re-earn fresh-read traffic through the streak.
  policy.OnSuccess(0, 50);
  EXPECT_EQ(policy.health(0), RouterPolicy::Health::kLagging);
}

TEST(RouterPolicyTest, PrimaryRoundRobinsOverHealthyReplicas) {
  RouterPolicy policy(3, TightPolicy(), 1);
  const std::vector<bool> none(3, false);
  EXPECT_EQ(policy.PickPrimary(0, none), std::optional<std::size_t>(0));
  EXPECT_EQ(policy.PickPrimary(0, none), std::optional<std::size_t>(1));
  EXPECT_EQ(policy.PickPrimary(0, none), std::optional<std::size_t>(2));
  EXPECT_EQ(policy.PickPrimary(0, none), std::optional<std::size_t>(0));

  policy.ObserveLag(1, 100);  // demote 1
  std::vector<bool> tried(3, false);
  tried[2] = true;
  EXPECT_EQ(policy.PickPrimary(0, tried), std::optional<std::size_t>(0));
  tried[0] = true;
  EXPECT_FALSE(policy.PickPrimary(0, tried).has_value());
}

TEST(RouterPolicyTest, StalePickPrefersTheLeastLaggingReplica) {
  RouterPolicy policy(3, TightPolicy(), 1);
  policy.ObserveLag(0, 100);
  policy.ObserveLag(1, 40);
  policy.OnFailure(2, 0);
  const std::vector<bool> none(3, false);
  EXPECT_EQ(policy.PickStale(0, none), std::optional<std::size_t>(1));
  std::vector<bool> tried(3, false);
  tried[1] = true;
  EXPECT_EQ(policy.PickStale(0, tried), std::optional<std::size_t>(0));
}

TEST(RouterPolicyTest, HedgesSlowPrimariesToTheFastestHealthyPartner) {
  RouterPolicy policy(3, TightPolicy(), 1);
  policy.OnSuccess(0, 900);  // slow primary (EWMA seeds at first sample)
  policy.OnSuccess(1, 100);
  policy.OnSuccess(2, 50);
  EXPECT_TRUE(policy.ShouldHedge(0));
  EXPECT_EQ(policy.PickHedge(0), std::optional<std::size_t>(2));
  EXPECT_FALSE(policy.ShouldHedge(1));  // fast primary: no hedge

  // No healthy partner, no hedge.
  policy.OnFailure(1, 0);
  policy.OnFailure(2, 0);
  EXPECT_FALSE(policy.ShouldHedge(0));
}

}  // namespace
}  // namespace censys::serving
