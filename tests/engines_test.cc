// Integration tests: the full Censys engine, competitor models, and the
// evaluation world running end to end on a small universe.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <tuple>
#include <unordered_set>

#include "core/strings.h"
#include "engines/evaluation.h"
#include "engines/world.h"
#include "web/attach.h"

namespace censys::engines {
namespace {

WorldConfig SmallWorld(std::uint64_t seed = 42) {
  WorldConfig cfg;
  cfg.universe.seed = seed;
  cfg.universe.universe_size = 1u << 16;
  cfg.universe.target_services = 9000;
  cfg.universe.ics_scale = 128;
  return cfg;
}

class WorldTest : public ::testing::Test {
 protected:
  // One shared world: construction + bootstrap + a 3-day run is the
  // expensive part, and these assertions are all read-only.
  static void SetUpTestSuite() {
    world_ = new World(SmallWorld());
    // The web layer sits above engines in the layer DAG; the catalog is
    // wired onto the engine's daily cadence from outside.
    catalog_ = web::AttachCatalog(world_->censys()).release();
    world_->Bootstrap();
    world_->RunForDays(3);
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
    delete catalog_;
    catalog_ = nullptr;
  }

  static World* world_;
  static web::WebPropertyCatalog* catalog_;
};

World* WorldTest::world_ = nullptr;
web::WebPropertyCatalog* WorldTest::catalog_ = nullptr;

TEST_F(WorldTest, CensysTracksMostOfTheInternet) {
  const std::size_t active =
      world_->internet().ActiveServiceCount(world_->now());
  const std::size_t tracked = world_->censys().write_side().tracked_count();
  EXPECT_GT(tracked, active / 2);
  EXPECT_LT(tracked, active * 11 / 10);
}

TEST_F(WorldTest, CensysIsMostAccurateEngine) {
  double censys_acc = 0;
  std::vector<std::pair<std::string, double>> accuracies;
  for (ScanEngine* engine : world_->engines()) {
    std::uint64_t sampled = 0, live = 0, index = 0;
    engine->ForEachEntry([&](const EngineEntry& entry) {
      if (++index % 5 != 0 || sampled >= 1200) return;
      ++sampled;
      if (world_->internet().FindService(entry.key, world_->now()) != nullptr ||
          world_->internet().IsPseudoHost(entry.key.ip)) {
        ++live;
      }
    });
    const double acc = sampled ? double(live) / double(sampled) : 0;
    accuracies.emplace_back(std::string(engine->name()), acc);
    if (engine->name() == "Censys") censys_acc = acc;
  }
  EXPECT_GT(censys_acc, 0.8);
  for (const auto& [name, acc] : accuracies) {
    if (name != "Censys") {
      EXPECT_GT(censys_acc, acc) << name << " beat Censys on accuracy";
    }
  }
}

TEST_F(WorldTest, CensysFreshnessUnder48Hours) {
  // "100% of services in Censys were scanned within the past 48 hours."
  std::uint64_t total = 0, fresh = 0;
  world_->censys().ForEachEntry([&](const EngineEntry& entry) {
    ++total;
    if ((world_->now() - entry.last_scanned).ToHours() <= 48.0) ++fresh;
  });
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(fresh) / static_cast<double>(total), 0.97);
}

TEST_F(WorldTest, ZoomEyeServesYearsOldEntries) {
  std::uint64_t stale_years = 0;
  world_->alternative("ZoomEye")->ForEachEntry([&](const EngineEntry& e) {
    if ((world_->now() - e.last_scanned).ToDays() > 365.0) ++stale_years;
  });
  EXPECT_GT(stale_years, 0u);
}

TEST_F(WorldTest, CensysCoversTopPortsNearlyCompletely) {
  std::unordered_set<std::uint64_t> known;
  world_->censys().ForEachEntry(
      [&](const EngineEntry& e) { known.insert(e.key.Pack()); });
  std::size_t top10_total = 0, top10_hit = 0, rest_total = 0, rest_hit = 0;
  world_->internet().ForEachActiveService(
      world_->now(), [&](const simnet::SimService& svc) {
        if (svc.pseudo) return;
        // Only count services old enough for the daily scans to have had a
        // full chance (coverage at a point in time always trails births).
        if ((world_->now() - svc.born).ToDays() < 1.5) return;
        const auto bucket = BucketOf(world_->internet().ports(), svc.key.port);
        if (bucket == PortBucket::kTop10) {
          ++top10_total;
          top10_hit += known.contains(svc.key.Pack());
        } else if (bucket == PortBucket::kRest &&
                   svc.key.transport == Transport::kTcp) {
          ++rest_total;
          rest_hit += known.contains(svc.key.Pack());
        }
      });
  ASSERT_GT(top10_total, 100u);
  const double top10 = double(top10_hit) / double(top10_total);
  const double rest = double(rest_hit) / double(rest_total);
  EXPECT_GT(top10, 0.9);      // ~98% in the paper
  EXPECT_LT(rest, top10);     // all-port coverage is necessarily lower
  EXPECT_GT(rest, 0.3);       // but far from zero (background + predictive)
}

TEST_F(WorldTest, EngineOverlapIsAsymmetric) {
  // Censys covers most of Shodan's live services; the reverse is far lower
  // (Figure 3's key asymmetry).
  std::unordered_set<std::uint64_t> censys_keys, shodan_live;
  world_->censys().ForEachEntry(
      [&](const EngineEntry& e) { censys_keys.insert(e.key.Pack()); });
  world_->alternative("Shodan")->ForEachEntry([&](const EngineEntry& e) {
    if (world_->internet().FindService(e.key, world_->now()) != nullptr) {
      shodan_live.insert(e.key.Pack());
    }
  });
  ASSERT_GT(shodan_live.size(), 100u);
  std::size_t censys_covers = 0;
  for (std::uint64_t k : shodan_live) censys_covers += censys_keys.contains(k);
  const double censys_of_shodan =
      double(censys_covers) / double(shodan_live.size());
  EXPECT_GT(censys_of_shodan, 0.75);

  std::size_t shodan_covers = 0;
  std::size_t censys_live = 0;
  for (std::uint64_t k : censys_keys) {
    if (world_->internet().FindService(ServiceKey::Unpack(k), world_->now()) ==
        nullptr)
      continue;
    ++censys_live;
    shodan_covers += shodan_live.contains(k);
  }
  const double shodan_of_censys =
      double(shodan_covers) / double(censys_live);
  EXPECT_LT(shodan_of_censys, censys_of_shodan);
}

TEST_F(WorldTest, QueryHostMatchesForEachEntry) {
  // Spot-check API consistency on a few known entries.
  int checked = 0;
  world_->censys().ForEachEntry([&](const EngineEntry& entry) {
    if (checked >= 20) return;
    ++checked;
    const auto host_entries = world_->censys().QueryHost(entry.key.ip);
    bool found = false;
    for (const EngineEntry& e : host_entries) {
      if (e.key == entry.key) found = true;
    }
    EXPECT_TRUE(found) << entry.key.ToString();
  });
  EXPECT_EQ(checked, 20);
}

TEST_F(WorldTest, DuplicateInflationMatchesPolicies) {
  EXPECT_EQ(UniqueCount(*world_->alternative("Shodan")),
            world_->alternative("Shodan")->SelfReportedCount());
  EXPECT_LT(UniqueCount(*world_->alternative("Fofa")),
            world_->alternative("Fofa")->SelfReportedCount());
  EXPECT_LT(UniqueCount(*world_->alternative("Netlas")),
            world_->alternative("Netlas")->SelfReportedCount());
}

TEST_F(WorldTest, IcsQueriesRespectSupportMatrix) {
  // "Netlas reports results for only S7."
  AltEngine* netlas = world_->alternative("Netlas");
  EXPECT_TRUE(netlas->SupportsProtocolQuery(proto::Protocol::kS7));
  EXPECT_FALSE(netlas->SupportsProtocolQuery(proto::Protocol::kModbus));
  EXPECT_TRUE(netlas->QueryProtocol(proto::Protocol::kModbus).empty());
  // Nobody but Censys answers CIMON/CMORE/DIGI queries (Table 4).
  for (const char* name : {"Shodan", "Fofa", "ZoomEye", "Netlas"}) {
    EXPECT_FALSE(world_->alternative(name)->SupportsProtocolQuery(
        proto::Protocol::kCimonPlc))
        << name;
  }
  EXPECT_TRUE(world_->censys().SupportsProtocolQuery(
      proto::Protocol::kCimonPlc));
}

TEST_F(WorldTest, ShodanOverReportsKeywordLabeledIcs) {
  AltEngine* shodan = world_->alternative("Shodan");
  const auto reported = shodan->QueryProtocol(proto::Protocol::kAtg);
  std::size_t validated = 0;
  for (const EngineEntry& e : reported) {
    const simnet::SimService* svc =
        world_->internet().FindService(e.key, world_->now());
    if (svc != nullptr && svc->protocol == proto::Protocol::kAtg) ++validated;
  }
  // Keyword labeling inflates the reported count well past validated truth.
  EXPECT_GT(reported.size(), validated * 3 + 3);
}

TEST_F(WorldTest, CensysIcsLabelsAreHandshakeValidated) {
  const auto reported =
      world_->censys().QueryProtocol(proto::Protocol::kModbus);
  ASSERT_GT(reported.size(), 5u);
  std::size_t validated = 0;
  for (const EngineEntry& e : reported) {
    const simnet::SimService* svc =
        world_->internet().FindService(e.key, world_->now());
    if (svc != nullptr && svc->protocol == proto::Protocol::kModbus)
      ++validated;
  }
  // Only staleness (pending eviction) separates reported from validated.
  EXPECT_GT(static_cast<double>(validated) /
                static_cast<double>(reported.size()),
            0.75);
}

TEST_F(WorldTest, WebPropertiesDiscoveredViaCt) {
  EXPECT_GT(catalog_->size(), 50u);
  EXPECT_GT(catalog_->reachable_count(), 25u);
}

TEST_F(WorldTest, AnalyticsSnapshotsAccumulateDaily) {
  EXPECT_GE(world_->censys().analytics().size(), 3u);
}

TEST_F(WorldTest, SearchIndexAnswersQueries) {
  World& world = *world_;
  world.censys().RebuildSearchIndex();
  const auto& index = world.censys().search_index();
  ASSERT_GT(index.doc_count(), 100u);
  std::string error;
  const auto https = index.Search(R"(svc.443/tcp.service.name: "HTTPS")",
                                  &error);
  EXPECT_TRUE(error.empty());
  EXPECT_GT(https.size(), 10u);
}

TEST_F(WorldTest, JournalSupportsHistoricalHostLookups) {
  // Pick a stable tracked service and look it up in the past.
  std::optional<ServiceKey> key;
  world_->censys().write_side().ForEachTracked(
      [&](const pipeline::ServiceState& s) {
        if (!key.has_value() && s.first_seen < Timestamp{0}) key = s.key;
      });
  ASSERT_TRUE(key.has_value());
  const auto view =
      world_->censys().read_side().GetHostAt(key->ip, world_->now());
  ASSERT_TRUE(view.has_value());
  EXPECT_FALSE(view->services.empty());
}

TEST_F(WorldTest, CertificateStoreIsPopulatedFromScansAndCt) {
  const auto& store = world_->censys().cert_store();
  ASSERT_GT(store.size(), 500u);
  auto stats = store.ComputeStats();
  // Scanned device certs + CT-logged web certs both flow in (§4.4).
  EXPECT_GT(stats.by_status[cert::ValidationStatus::kTrusted], 100u);
  EXPECT_GT(stats.by_status[cert::ValidationStatus::kSelfSigned], 10u);
  EXPECT_GT(stats.ct_only + stats.scan_only, 100u);
}

TEST_F(WorldTest, PivotTablesTrackTlsServices) {
  const auto& pivots = world_->censys().pivots();
  EXPECT_GT(pivots.cert_count(), 200u);
  EXPECT_GT(pivots.jarm_count(), 10u);
  // Every cert pivot must point at currently-journaled services.
  int checked = 0;
  world_->censys().write_side().ForEachTracked(
      [&](const pipeline::ServiceState& state) {
        if (checked >= 2000) return;
        ++checked;
        (void)state;
      });
  // Rare JARM clusters exist (the 1/64 rare-stack population).
  EXPECT_FALSE(pivots.RareJarmClusters(2, 64).empty());
}

TEST_F(WorldTest, RequestScanServesRealTimeResults) {
  // Pick a live service Censys does not know about yet, request an
  // on-demand scan, and see it appear in the dataset (Figure 1 "Real-Time
  // Scan Requests").
  const core::ThreadRoleGuard role(
      world_->censys().write_side().command_role());
  std::optional<simnet::SimService> target;
  world_->internet().ForEachActiveService(
      world_->now(), [&](const simnet::SimService& svc) {
        if (target.has_value() || svc.pseudo) return;
        if (svc.key.transport != Transport::kTcp) return;
        if (world_->censys().write_side().GetState(svc.key) == nullptr) {
          target = svc;
        }
      });
  ASSERT_TRUE(target.has_value());
  std::optional<interrogate::ServiceRecord> record;
  for (int attempt = 0; attempt < 8 && !record.has_value(); ++attempt) {
    record = world_->censys().RequestScan(
        target->key, world_->now() + Duration::Hours(attempt));
  }
  ASSERT_TRUE(record.has_value());
  EXPECT_NE(world_->censys().write_side().GetState(target->key), nullptr);
}

// NOTE: this test mutates the shared world (adds an exclusion and advances
// time), so it must remain the last WorldTest registered in this file.
TEST_F(WorldTest, ExclusionStopsScanningAndDropsData) {
  // Opt out a prefix that currently has tracked services; after the
  // eviction deadline its services must be gone from the dataset.
  const core::ThreadRoleGuard role(
      world_->censys().write_side().command_role());
  std::optional<ServiceKey> victim;
  world_->censys().write_side().ForEachTracked(
      [&](const pipeline::ServiceState& state) {
        if (!victim.has_value()) victim = state.key;
      });
  ASSERT_TRUE(victim.has_value());
  const Cidr prefix(victim->ip, 24);
  ASSERT_TRUE(world_->censys().exclusions().Exclude(prefix, "Opt-Out Org",
                                                    world_->now()));
  // No real-time scan either.
  EXPECT_FALSE(
      world_->censys().RequestScan(*victim, world_->now()).has_value());
  world_->RunForDays(4.5);  // refresh fails daily; 72 h eviction passes
  EXPECT_EQ(world_->censys().write_side().GetState(*victim), nullptr);
}

// --------------------------------------------------- determinism (own worlds)

TEST(WorldDeterminismTest, SameSeedSameOutcome) {
  WorldConfig cfg = SmallWorld(7);
  cfg.universe.target_services = 3000;
  cfg.with_alternatives = false;

  auto run = [&] {
    World world(cfg);
    world.Bootstrap();
    world.RunForDays(1);
    std::vector<std::uint64_t> keys;
    world.censys().ForEachEntry(
        [&](const EngineEntry& e) { keys.push_back(e.key.Pack()); });
    std::sort(keys.begin(), keys.end());
    return keys;
  };
  EXPECT_EQ(run(), run());
}

// Order-sensitive digest of every journal row: any difference in event
// order, content, or count between two runs changes it.
std::uint64_t JournalDigest(const CensysEngine& engine) {
  std::uint64_t digest = 1469598103934665603ull;
  engine.journal().ScanAll(
      [&](std::string_view key, std::string_view value) {
        digest = (digest ^ Fnv1a64(key)) * 1099511628211ull;
        digest = (digest ^ Fnv1a64(value)) * 1099511628211ull;
        return true;
      });
  return digest;
}

// The tentpole guarantee of the staged pipeline: interrogation fans out
// across threads, but commits land in candidate-sequence order, so the
// event journal is identical to the single-threaded run.
TEST(WorldDeterminismTest, ParallelRunMatchesSerialJournalExactly) {
  WorldConfig cfg = SmallWorld(11);
  cfg.universe.target_services = 3000;
  cfg.with_alternatives = false;

  auto run = [&](int threads) {
    WorldConfig parallel_cfg = cfg;
    parallel_cfg.censys.threads = threads;
    World world(parallel_cfg);
    world.Bootstrap();
    world.RunForDays(2);
    return std::tuple(JournalDigest(world.censys()),
                      world.censys().journal().RowCount(),
                      world.censys().journal().event_count(),
                      world.censys().write_side().tracked_count());
  };

  int threads = 3;  // ctest also registers a CENSYSIM_THREADS=4 variant
  if (const char* env = std::getenv("CENSYSIM_THREADS")) {
    threads = std::atoi(env);
  }
  const auto serial = run(0);
  const auto parallel = run(threads);
  EXPECT_EQ(std::get<0>(parallel), std::get<0>(serial));
  EXPECT_EQ(std::get<1>(parallel), std::get<1>(serial));
  EXPECT_EQ(std::get<2>(parallel), std::get<2>(serial));
  EXPECT_EQ(std::get<3>(parallel), std::get<3>(serial));
}

// Group commit's invariant: batch size changes WAL write granularity and
// nothing else. Every (threads, commit_batch) combination must produce the
// journal the single-threaded write-through run produces, byte for byte —
// including batch = 1 (flush every commit) and a batch far larger than any
// wave (one flush per wave).
TEST(WorldDeterminismTest, GroupCommitMatrixMatchesSerialJournalExactly) {
  WorldConfig cfg = SmallWorld(17);
  cfg.universe.target_services = 1200;
  cfg.with_alternatives = false;

  auto run = [&](int threads, std::uint32_t commit_batch) {
    WorldConfig matrix_cfg = cfg;
    matrix_cfg.censys.threads = threads;
    matrix_cfg.censys.commit_batch = commit_batch;
    World world(matrix_cfg);
    world.Bootstrap();
    world.RunForDays(1);
    return std::tuple(JournalDigest(world.censys()),
                      world.censys().journal().event_count(),
                      world.censys().write_side().tracked_count());
  };

  const auto want = run(0, 1);
  for (const int threads : {1, 2, 4, 8}) {
    for (const std::uint32_t batch : {1u, 16u, 256u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " batch=" + std::to_string(batch));
      EXPECT_EQ(run(threads, batch), want);
    }
  }
}

TEST(TickReportTest, ReportsStageActivityAndMetrics) {
  WorldConfig cfg = SmallWorld(13);
  cfg.universe.target_services = 2000;
  cfg.with_alternatives = false;
  cfg.censys.threads = 2;

  World world(cfg);
  world.Bootstrap();
  world.RunForDays(1);

  const TickStats& report = world.censys().TickReport();
  EXPECT_GT(report.interrogations, 0u);
  EXPECT_GT(report.total_us, 0.0);
  EXPECT_GE(report.total_us, report.interrogate_us);

  // Staged-pipeline detail: the overlapped stages ran, group commit
  // flushed, and the occupancy fractions are sane (busy time can never
  // exceed the wall time each stage had available).
  EXPECT_GT(report.pipeline_jobs, 0u);
  EXPECT_GT(report.pipeline_waves, 0u);
  EXPECT_GT(report.batch_flushes, 0u);
  EXPECT_GT(report.pipeline_wall_us, 0.0);
  EXPECT_GT(report.worker_busy_us, 0.0);
  EXPECT_GT(report.commit_busy_us, 0.0);
  EXPECT_GE(report.worker_occupancy, 0.0);
  EXPECT_LE(report.worker_occupancy, 1.05);
  EXPECT_GE(report.commit_occupancy, 0.0);
  EXPECT_LE(report.commit_occupancy, 1.05);

  const metrics::Registry& registry = world.censys().metrics();
  EXPECT_GT(registry.CounterValue("censys.engine.ticks"), 0u);
  EXPECT_GT(registry.CounterValue("censys.scan.probes_sent"), 0u);
  EXPECT_GT(registry.CounterValue("censys.interrogate.attempts"), 0u);
  EXPECT_GT(registry.CounterValue("censys.pipeline.ingest_scans"), 0u);
  EXPECT_GT(registry.CounterValue("censys.storage.events"), 0u);
  EXPECT_EQ(
      registry.GaugeValue("censys.pipeline.tracked_services"),
      static_cast<std::int64_t>(world.censys().write_side().tracked_count()));

  const std::string rendered = registry.Render();
  EXPECT_NE(rendered.find("censys.engine.tick_us"), std::string::npos);
  EXPECT_NE(rendered.find("censys.interrogate.latency_us"), std::string::npos);
}

TEST(AblationTest, TwoPhaseValidationControlsLabelQuality) {
  WorldConfig cfg = SmallWorld(9);
  cfg.universe.target_services = 4000;
  cfg.with_alternatives = false;
  cfg.censys.two_phase_validation = false;
  cfg.censys.warm_start = false;

  World world(cfg);
  world.Bootstrap();
  world.RunForDays(2);
  std::uint64_t unvalidated = 0, total = 0;
  world.censys().write_side().ForEachTracked(
      [&](const pipeline::ServiceState& s) { ++total; (void)s; });
  world.censys().ForEachEntry([&](const EngineEntry& e) {
    (void)e;
    ++unvalidated;
  });
  EXPECT_GT(total, 100u);  // L4 hits get published without validation
}

}  // namespace
}  // namespace censys::engines
