// Tests for the simulated Internet: population shape, churn dynamics,
// visibility model, pseudo hosts, and honeypots.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/rng.h"
#include "simnet/internet.h"

namespace censys::simnet {
namespace {

UniverseConfig SmallConfig(std::uint64_t seed = 7) {
  UniverseConfig cfg;
  cfg.seed = seed;
  cfg.universe_size = 1u << 16;
  cfg.target_services = 8000;
  cfg.ics_scale = 512.0;  // keep a visible ICS population at this tiny scale
  return cfg;
}

ScannerProfile TestScanner() {
  return ScannerProfile{1, "test", 24.0, 1024.0};
}

// ------------------------------------------------------------------ BlockPlan

TEST(BlockPlanTest, CoversUniverseWithoutGaps) {
  const UniverseConfig cfg = SmallConfig();
  BlockPlan plan(cfg);
  std::uint64_t covered = 0;
  std::uint32_t expected_base = 0;
  for (const NetworkBlock& b : plan.blocks()) {
    EXPECT_EQ(b.cidr.base().value(), expected_base);
    expected_base += static_cast<std::uint32_t>(b.cidr.size());
    covered += b.cidr.size();
  }
  EXPECT_EQ(covered, cfg.universe_size);
}

TEST(BlockPlanTest, BlockOfFindsCorrectBlock) {
  BlockPlan plan(SmallConfig());
  for (std::uint32_t ip = 0; ip < (1u << 16); ip += 977) {
    const NetworkBlock& b = plan.BlockOf(IPv4Address(ip));
    EXPECT_TRUE(b.cidr.Contains(IPv4Address(ip)));
  }
}

TEST(BlockPlanTest, HasAllMajorNetworkTypes) {
  BlockPlan plan(SmallConfig());
  for (NetworkType t :
       {NetworkType::kResidential, NetworkType::kCloud,
        NetworkType::kEnterprise, NetworkType::kHosting}) {
    EXPECT_FALSE(plan.BlocksOfType(t).empty()) << ToString(t);
  }
}

TEST(BlockPlanTest, DeterministicForSeed) {
  BlockPlan a(SmallConfig(3)), b(SmallConfig(3));
  ASSERT_EQ(a.blocks().size(), b.blocks().size());
  for (std::size_t i = 0; i < a.blocks().size(); ++i) {
    EXPECT_EQ(a.blocks()[i].cidr, b.blocks()[i].cidr);
    EXPECT_EQ(a.blocks()[i].type, b.blocks()[i].type);
    EXPECT_EQ(a.blocks()[i].country, b.blocks()[i].country);
  }
}

// ------------------------------------------------------------------ PortModel

TEST(PortModelTest, RankRoundTrips) {
  PortModel model(5, 1.08);
  for (std::uint32_t rank = 1; rank <= 65536; rank += 1013) {
    EXPECT_EQ(model.RankOf(model.PortAtRank(rank)), rank);
  }
}

TEST(PortModelTest, WellKnownPortsRankHighest) {
  PortModel model(5, 1.08);
  EXPECT_EQ(model.RankOf(80), 1u);
  EXPECT_LE(model.RankOf(443), 3u);
  EXPECT_LE(model.RankOf(22), 10u);
  EXPECT_GT(model.RankOf(51234), 100u);
}

TEST(PortModelTest, SamplingFollowsPopularity) {
  PortModel model(5, 1.08);
  Rng rng(9);
  std::map<Port, int> counts;
  for (int i = 0; i < 200000; ++i) ++counts[model.SamplePort(rng)];
  // Port 80 (rank 1) should be the single most sampled port.
  int max_count = 0;
  Port max_port = 0;
  for (auto& [port, count] : counts) {
    if (count > max_count) {
      max_count = count;
      max_port = port;
    }
  }
  EXPECT_EQ(max_port, 80);
  // But the top 10 ports must hold well under half of all services
  // ("service diffusion": most services on non-standard ports).
  int top10 = 0;
  for (Port p : model.TopPorts(10)) top10 += counts[p];
  EXPECT_LT(top10, 200000 / 2);
  EXPECT_GT(top10, 200000 / 20);
}

// ------------------------------------------------------------------- Internet

TEST(InternetTest, PopulationApproximatesTarget) {
  Internet net(SmallConfig());
  const std::size_t n = net.ActiveServiceCount(Timestamp{0});
  EXPECT_GT(n, 7000u);
  EXPECT_LT(n, 9500u);
}

TEST(InternetTest, DeterministicForSeed) {
  Internet a(SmallConfig(11)), b(SmallConfig(11));
  EXPECT_EQ(a.ActiveServiceCount(Timestamp{0}),
            b.ActiveServiceCount(Timestamp{0}));
  std::set<std::uint64_t> keys_a, keys_b;
  a.ForEachActiveService(Timestamp{0}, [&](const SimService& s) {
    keys_a.insert(s.key.Pack());
  });
  b.ForEachActiveService(Timestamp{0}, [&](const SimService& s) {
    keys_b.insert(s.key.Pack());
  });
  EXPECT_EQ(keys_a, keys_b);
}

TEST(InternetTest, ChurnKeepsSteadyState) {
  Internet net(SmallConfig());
  const std::size_t before = net.ActiveServiceCount(Timestamp{0});
  net.AdvanceTo(Timestamp::FromDays(10));
  const std::size_t after = net.ActiveServiceCount(net.now());
  // Births replace deaths, so the population stays within ~10%.
  EXPECT_GT(after, before * 9 / 10);
  EXPECT_LT(after, before * 11 / 10);
  EXPECT_GT(net.total_births(), before);  // churn actually happened
}

TEST(InternetTest, ServicesDieAndAreReplaced) {
  Internet net(SmallConfig());
  std::vector<ServiceKey> initial;
  net.ForEachActiveService(Timestamp{0}, [&](const SimService& s) {
    initial.push_back(s.key);
  });
  net.AdvanceTo(Timestamp::FromDays(30));
  std::size_t survivors = 0;
  for (const ServiceKey& key : initial) {
    if (net.FindService(key, net.now()) != nullptr) ++survivors;
  }
  // After 30 days, a large share of the (mostly short-lived) population
  // has turned over, but long-lived enterprise services survive.
  EXPECT_LT(survivors, initial.size());
  EXPECT_GT(survivors, 0u);
}

TEST(InternetTest, L4ProbeFindsLiveServices) {
  Internet net(SmallConfig());
  const ScannerProfile scanner = TestScanner();
  const ProbeContext ctx{&scanner, 0};

  int found = 0, checked = 0;
  net.ForEachActiveService(Timestamp{0}, [&](const SimService& s) {
    if (checked >= 2000) return;
    ++checked;
    // Retry across several hours: visibility effects are transient.
    for (int h = 0; h < 30 && found <= checked; h += 6) {
      Internet& mutable_net = const_cast<Internet&>(net);
      if (mutable_net.L4Probe(ctx, s.key, Timestamp::FromHours(h))) {
        ++found;
        break;
      }
    }
  });
  // Nearly all live services should be L4-discoverable with retries.
  EXPECT_GT(found, checked * 9 / 10);
}

TEST(InternetTest, L4ProbeRejectsDeadTargets) {
  Internet net(SmallConfig());
  const ScannerProfile scanner = TestScanner();
  const ProbeContext ctx{&scanner, 0};
  // Probe ports unlikely to have a service on specific dead IPs.
  int false_positives = 0;
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    ServiceKey key{IPv4Address(static_cast<std::uint32_t>(rng.NextBelow(1u << 16))),
                   static_cast<Port>(20000 + rng.NextBelow(40000)),
                   Transport::kTcp};
    if (net.FindService(key, Timestamp{0}) != nullptr) continue;
    if (net.IsPseudoHost(key.ip)) continue;
    if (net.L4Probe(ctx, key, Timestamp{0})) ++false_positives;
  }
  EXPECT_EQ(false_positives, 0);
}

TEST(InternetTest, PseudoHostsAnswerOnEveryPort) {
  UniverseConfig cfg = SmallConfig();
  cfg.pseudo_host_fraction = 0.01;
  Internet net(cfg);
  const ScannerProfile scanner = TestScanner();
  const ProbeContext ctx{&scanner, 0};

  IPv4Address pseudo_ip;
  bool found_pseudo = false;
  for (std::uint32_t ip = 0; ip < (1u << 16); ++ip) {
    if (net.IsPseudoHost(IPv4Address(ip))) {
      pseudo_ip = IPv4Address(ip);
      found_pseudo = true;
      break;
    }
  }
  ASSERT_TRUE(found_pseudo);

  int answered = 0;
  for (Port port : {Port{1234}, Port{4567}, Port{50000}, Port{65000}}) {
    ServiceKey key{pseudo_ip, port, Transport::kTcp};
    for (int attempt = 0; attempt < 8 && answered < 4; ++attempt) {
      if (net.L4Probe(ctx, key, Timestamp::FromHours(attempt * 7))) {
        ++answered;
        break;
      }
    }
  }
  EXPECT_EQ(answered, 4);

  // And the L7 content is identical across ports.
  auto s1 = net.ConnectL7(ctx, {pseudo_ip, 1234, Transport::kTcp},
                          Timestamp::FromHours(48));
  auto s2 = net.ConnectL7(ctx, {pseudo_ip, 4567, Transport::kTcp},
                          Timestamp::FromHours(48));
  if (s1 && s2) {
    EXPECT_EQ(s1->service.seed, s2->service.seed);
    EXPECT_TRUE(s1->service.pseudo);
  }
}

TEST(InternetTest, ConnectL7YieldsServiceSnapshot) {
  Internet net(SmallConfig());
  const ScannerProfile scanner = TestScanner();
  const ProbeContext ctx{&scanner, 0};

  bool checked = false;
  net.ForEachActiveService(Timestamp{0}, [&](const SimService& s) {
    if (checked || s.pseudo) return;
    Internet& mutable_net = const_cast<Internet&>(net);
    for (int h = 0; h < 48; h += 6) {
      auto session = mutable_net.ConnectL7(ctx, s.key, Timestamp::FromHours(h));
      if (session) {
        EXPECT_EQ(session->service.key, s.key);
        EXPECT_EQ(session->service.protocol, s.protocol);
        EXPECT_EQ(session->service.seed, s.seed);
        checked = true;
        return;
      }
    }
  });
  EXPECT_TRUE(checked);
}

TEST(InternetTest, IcsPopulationExistsAndFollowsTable4Ordering) {
  UniverseConfig cfg = SmallConfig();
  cfg.ics_scale = 2048.0;
  cfg.target_services = 20000;
  Internet net(cfg);
  std::map<proto::Protocol, int> counts;
  net.ForEachActiveService(Timestamp{0}, [&](const SimService& s) {
    if (proto::GetInfo(s.protocol).is_ics) ++counts[s.protocol];
  });
  EXPECT_GT(counts[proto::Protocol::kModbus], 0);
  // MODBUS is the most common ICS protocol; HART the rarest.
  for (auto& [p, c] : counts) {
    EXPECT_LE(c, counts[proto::Protocol::kModbus] + 5) << proto::Name(p);
  }
}

TEST(InternetTest, BlockedScannerSeesLess) {
  Internet net(SmallConfig());
  // A wildly aggressive single-source scanner vs a polite distributed one.
  const ScannerProfile polite{1, "polite", 5.0, 2048.0};
  const ScannerProfile aggressive{2, "aggressive", 5000.0, 1.0};

  int polite_hits = 0, aggressive_hits = 0, sampled = 0;
  net.ForEachActiveService(Timestamp{0}, [&](const SimService& s) {
    if (sampled >= 3000) return;
    ++sampled;
    Internet& m = const_cast<Internet&>(net);
    if (m.L4Probe({&polite, 0}, s.key, Timestamp::FromHours(1)))
      ++polite_hits;
    if (m.L4Probe({&aggressive, 0}, s.key, Timestamp::FromHours(1)))
      ++aggressive_hits;
  });
  EXPECT_GT(polite_hits, aggressive_hits);
}

TEST(InternetTest, MultiPopRetriesRecoverCoverage) {
  Internet net(SmallConfig());
  const ScannerProfile scanner = TestScanner();

  int single_pop = 0, multi_pop = 0, sampled = 0;
  net.ForEachActiveService(Timestamp{0}, [&](const SimService& s) {
    if (sampled >= 3000) return;
    ++sampled;
    Internet& m = const_cast<Internet&>(net);
    if (m.L4Probe({&scanner, 0}, s.key, Timestamp::FromHours(2)))
      ++single_pop;
    for (int pop = 0; pop < 3; ++pop) {
      if (m.L4Probe({&scanner, pop}, s.key, Timestamp::FromHours(2))) {
        ++multi_pop;
        break;
      }
    }
  });
  EXPECT_GE(multi_pop, single_pop);
}

// ------------------------------------------------------------------ Honeypots

TEST(InternetTest, HoneypotLogsFirstContactPerScanner) {
  Internet net(SmallConfig());
  Rng rng(5);
  const IPv4Address hp = net.PickHoneypotAddress(rng);
  const std::pair<Port, proto::Protocol> listeners[] = {
      {80, proto::Protocol::kHttp}, {22, proto::Protocol::kSsh}};
  net.AddHoneypot(hp, listeners, Timestamp::FromHours(1));

  const ScannerProfile scanner = TestScanner();
  const ProbeContext ctx{&scanner, 0};
  const ServiceKey key{hp, 80, Transport::kTcp};

  // Before birth: not reachable.
  EXPECT_FALSE(net.ConnectL7(ctx, key, Timestamp{0}).has_value());
  EXPECT_FALSE(net.FirstContact(key, scanner.scanner_id).has_value());

  // After birth: connect (with visibility retries) and check the log.
  bool connected = false;
  Timestamp when;
  for (int h = 2; h < 96 && !connected; h += 3) {
    when = Timestamp::FromHours(h);
    connected = net.ConnectL7(ctx, key, when).has_value();
  }
  ASSERT_TRUE(connected);
  const auto first = net.FirstContact(key, scanner.scanner_id);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, when);

  // A later connection does not overwrite the first-contact time.
  net.ConnectL7(ctx, key, when + Duration::Hours(24));
  EXPECT_EQ(*net.FirstContact(key, scanner.scanner_id), when);

  // A different scanner gets its own entry.
  EXPECT_FALSE(net.FirstContact(key, 999).has_value());
}

TEST(InternetTest, SniOnlyServicesArePresent) {
  UniverseConfig cfg = SmallConfig();
  cfg.target_services = 12000;
  Internet net(cfg);
  int sni = 0, total = 0;
  net.ForEachActiveService(Timestamp{0}, [&](const SimService& s) {
    ++total;
    if (s.requires_sni) {
      ++sni;
      EXPECT_FALSE(s.sni_name.empty());
      EXPECT_NE(s.sni_name.find(".example.com"), std::string::npos);
    }
  });
  EXPECT_GT(sni, total / 50);
  EXPECT_LT(sni, total / 5);
}

}  // namespace
}  // namespace censys::simnet
