// Tests for the query tier: the shared per-document matcher (must agree
// with the inverted index exactly), the standing-query registry (delta
// evaluation, universe tracking for NOT, backfill seeding, pending caps,
// push callbacks), the columnar analytics segments (round trip, strict
// decode, crash-safe persistence, corruption fallback to the journal
// walk), the serving frontend's kAggregate ladder rung, and the
// acceptance-criterion determinism run: pushed match streams must be
// byte-identical across engine thread counts AND identical to re-running
// the full search per tick.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/fault.h"
#include "core/metrics.h"
#include "core/rng.h"
#include "core/types.h"
#include "engines/enrichment.h"
#include "engines/world.h"
#include "interrogate/record.h"
#include "pipeline/read_side.h"
#include "pipeline/write_side.h"
#include "query/columnar.h"
#include "query/standing.h"
#include "search/analytics.h"
#include "search/index.h"
#include "search/match.h"
#include "serving/frontend.h"
#include "simnet/blocks.h"
#include "storage/delta.h"
#include "storage/journal.h"
#include "storage/segment_file.h"
#include "test_tmpdir.h"

namespace censys::query {
namespace {

int EnvThreads() {
  if (const char* env = std::getenv("CENSYSIM_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 4;
}

// Journal writer that tracks each entity's shadow state so tests can say
// "set this entity to exactly these fields" and get the right delta.
class TestJournal {
 public:
  storage::EventJournal& journal() { return journal_; }
  const storage::EventJournal& journal() const { return journal_; }

  void Set(const std::string& id, storage::FieldMap after,
           std::int64_t at_minutes = 0) {
    auto& before = shadow_[id];
    const storage::Delta delta = storage::ComputeDelta(before, after);
    if (delta.ops.empty()) return;
    journal_.Append(id, storage::EventKind::kEntityUpdated,
                    Timestamp{at_minutes}, delta);
    before = std::move(after);
  }

  void Clear(const std::string& id, std::int64_t at_minutes = 0) {
    Set(id, {}, at_minutes);
  }

 private:
  storage::EventJournal journal_;
  std::map<std::string, storage::FieldMap> shadow_;
};

// --------------------------------------------------------- commit observer

TEST(CommitObserverTest, AppendDeliversEventWithPostState) {
  storage::EventJournal journal;
  struct Seen {
    std::string entity;
    std::uint64_t seqno;
    storage::FieldMap post;
    std::size_t batch_size;
  };
  std::vector<Seen> seen;
  journal.SetCommitObserver(
      [&](const std::vector<storage::AppliedEvent>& batch) {
        for (const storage::AppliedEvent& ev : batch) {
          ASSERT_NE(ev.post_state, nullptr);
          seen.push_back({std::string(ev.entity_id), ev.seqno, *ev.post_state,
                          batch.size()});
        }
      });

  const storage::FieldMap a{{"k", "v"}};
  const std::uint64_t s1 = journal.Append(
      "e1", storage::EventKind::kEntityUpdated, Timestamp{1},
      storage::ComputeDelta({}, a));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].entity, "e1");
  EXPECT_EQ(seen[0].seqno, s1);
  EXPECT_EQ(seen[0].post, a);
  EXPECT_EQ(seen[0].batch_size, 1u);

  // An empty delta is a no-op append: no journal row, no observation.
  journal.Append("e1", storage::EventKind::kEntityUpdated, Timestamp{2},
                 storage::Delta{});
  EXPECT_EQ(seen.size(), 1u);
}

TEST(CommitObserverTest, AppendBatchDeliversOneBatchInOrder) {
  storage::EventJournal journal;
  std::vector<std::pair<std::string, std::size_t>> seen;  // entity, batch size
  journal.SetCommitObserver(
      [&](const std::vector<storage::AppliedEvent>& batch) {
        for (const storage::AppliedEvent& ev : batch) {
          seen.emplace_back(std::string(ev.entity_id), batch.size());
        }
      });

  std::vector<storage::EventJournal::PendingEvent> batch;
  for (const char* id : {"a", "b", "c"}) {
    storage::EventJournal::PendingEvent ev;
    ev.entity_id = id;
    ev.at = Timestamp{5};
    ev.delta = storage::ComputeDelta({}, {{"f", id}});
    batch.push_back(std::move(ev));
  }
  journal.AppendBatch(std::move(batch));

  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<std::string, std::size_t>{"a", 3u}));
  EXPECT_EQ(seen[1], (std::pair<std::string, std::size_t>{"b", 3u}));
  EXPECT_EQ(seen[2], (std::pair<std::string, std::size_t>{"c", 3u}));
}

// ------------------------------------------------------- per-doc matcher

storage::FieldMap RandomDoc(Rng& rng) {
  static const std::vector<std::string> kNames = {"HTTP", "SSH", "FTP"};
  static const std::vector<std::string> kProducts = {
      "nginx", "apache httpd", "openssh", "mysql", "iis"};
  static const std::vector<std::string> kCountries = {"us", "de", "jp"};
  static const std::vector<std::string> kTitles = {
      "release 1.2", "admin console", "welcome page"};

  storage::FieldMap doc;
  if (rng.NextDouble() < 0.9) {
    doc["svc.80/tcp.service.name"] = kNames[rng.NextBelow(kNames.size())];
    doc["svc.80/tcp.software.product"] =
        kProducts[rng.NextBelow(kProducts.size())];
  }
  if (rng.NextDouble() < 0.7) {
    doc["location.country"] = kCountries[rng.NextBelow(kCountries.size())];
  }
  if (rng.NextDouble() < 0.5) {
    doc["svc.443/tcp.http.html_title"] = kTitles[rng.NextBelow(kTitles.size())];
  }
  return doc;
}

TEST(MatcherTest, AgreesWithInvertedIndexOnRandomCorpus) {
  search::SearchIndex index;
  std::map<std::string, storage::FieldMap> docs;
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    const storage::FieldMap doc = RandomDoc(rng);
    if (doc.empty()) continue;  // both sides skip empty docs
    const std::string id = "h" + std::to_string(i);
    index.Index(id, doc);
    docs.emplace(id, doc);
  }
  ASSERT_GT(docs.size(), 100u);

  const std::vector<std::string> kQueries = {
      "nginx",
      "apache",  // one word of a multi-word value
      "svc.80/tcp.software.product: nginx",
      "svc.80/tcp.software.product: \"apache httpd\"",
      "ngin*",
      "svc.80/tcp.service.name: htt*",
      "http AND nginx",
      "http OR ssh",
      "NOT nginx",
      "http AND NOT location.country: de",
      "\"admin console\"",
      "release AND NOT iis",
      "nosuchword",
      "location.country: fr",
  };
  for (const std::string& text : kQueries) {
    std::string error;
    const auto parsed = search::ParseQuery(text, &error);
    ASSERT_TRUE(parsed.has_value()) << text << ": " << error;

    const std::vector<std::string> via_index = index.Execute(*parsed);
    std::vector<std::string> via_matcher;
    for (const auto& [id, doc] : docs) {
      if (search::MatchesDocument(*parsed, doc)) via_matcher.push_back(id);
    }
    EXPECT_EQ(via_index, via_matcher) << "query: " << text;
  }
}

TEST(MatcherTest, TokenizeValueMatchesIndexTokenization) {
  EXPECT_EQ(search::TokenizeValue("Server: nginx build 1.25.3"),
            (std::vector<std::string>{"server", "nginx", "build", "1.25.3"}));
  EXPECT_EQ(search::TokenizeValue(""), std::vector<std::string>{});
  EXPECT_EQ(search::TokenizeValue("a_b-c.d e"),
            (std::vector<std::string>{"a_b-c.d", "e"}));
}

TEST(MatcherTest, CollectQueryFieldsSeparatesAnyField) {
  std::string error;
  const auto fielded =
      search::ParseQuery("a: x OR (b: y AND NOT c: z)", &error);
  ASSERT_TRUE(fielded.has_value()) << error;
  std::set<std::string> fields;
  bool any_field = false;
  search::CollectQueryFields(*fielded, &fields, &any_field);
  EXPECT_EQ(fields, (std::set<std::string>{"a", "b", "c"}));
  EXPECT_FALSE(any_field);

  const auto mixed = search::ParseQuery("a: x AND nginx", &error);
  ASSERT_TRUE(mixed.has_value()) << error;
  fields.clear();
  any_field = false;
  search::CollectQueryFields(*mixed, &fields, &any_field);
  EXPECT_EQ(fields, (std::set<std::string>{"a"}));
  EXPECT_TRUE(any_field);
}

// ------------------------------------------------------ standing queries

TEST(StandingQueryTest, RejectsMalformedExpression) {
  StandingQueryRegistry registry;
  std::string error;
  EXPECT_FALSE(registry.Register("bad", "(((", &error).has_value());
  EXPECT_FALSE(error.empty());
  // A null error out-param must not crash on malformed input.
  EXPECT_FALSE(registry.Register("bad2", "AND AND", nullptr).has_value());
  EXPECT_EQ(registry.query_count(), 0u);
}

TEST(StandingQueryTest, EnterAndLeaveTransitions) {
  TestJournal tj;
  StandingQueryRegistry registry;
  metrics::Registry metrics;
  registry.BindMetrics(&metrics);
  tj.journal().SetCommitObserver(
      [&](const std::vector<storage::AppliedEvent>& batch) {
        registry.OnCommit(batch);
      });

  std::string error;
  const auto id = registry.Register(
      "http80", "svc.80/tcp.service.name: http", &error);
  ASSERT_TRUE(id.has_value()) << error;
  EXPECT_EQ(metrics.GaugeValue("censys.query.standing.registered"), 1);

  tj.Set("1.2.3.4", {{"svc.80/tcp.service.name", "HTTP"}}, 10);
  auto events = registry.Drain(*id);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, MatchEvent::Kind::kEnter);
  EXPECT_EQ(events[0].entity_id, "1.2.3.4");
  EXPECT_EQ(events[0].at.minutes, 10);
  EXPECT_EQ(events[0].ToString(),
            "q" + std::to_string(*id) + " + 1.2.3.4 #" +
                std::to_string(events[0].seqno) + " @10");

  // Touching an unrelated field changes nothing.
  tj.Set("1.2.3.4",
         {{"svc.80/tcp.service.name", "HTTP"}, {"location.country", "de"}},
         20);
  EXPECT_TRUE(registry.Drain(*id).empty());

  // Flipping the matched field away emits a leave...
  tj.Set("1.2.3.4",
         {{"svc.80/tcp.service.name", "SSH"}, {"location.country", "de"}},
         30);
  events = registry.Drain(*id);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, MatchEvent::Kind::kLeave);

  // ...and back re-enters.
  tj.Set("1.2.3.4",
         {{"svc.80/tcp.service.name", "HTTP"}, {"location.country", "de"}},
         40);
  events = registry.Drain(*id);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, MatchEvent::Kind::kEnter);
  EXPECT_EQ(registry.MatchedEntities(*id),
            std::vector<std::string>{"1.2.3.4"});
  EXPECT_GE(metrics.CounterValue("censys.query.standing.events"), 3u);
  EXPECT_GE(metrics.CounterValue("censys.query.standing.evals"), 3u);
}

TEST(StandingQueryTest, NotQueryTracksUniverseMembership) {
  TestJournal tj;
  StandingQueryRegistry registry;
  tj.journal().SetCommitObserver(
      [&](const std::vector<storage::AppliedEvent>& batch) {
        registry.OnCommit(batch);
      });

  std::string error;
  const auto id = registry.Register("notred", "NOT color: red", &error);
  ASSERT_TRUE(id.has_value()) << error;

  // A brand-new entity whose delta never touches `color` must still enter
  // (NOT is evaluated against the non-empty-entity universe).
  tj.Set("a", {{"shape", "square"}}, 1);
  auto events = registry.Drain(*id);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, MatchEvent::Kind::kEnter);

  // Turning red leaves; ceasing to be red re-enters.
  tj.Set("a", {{"shape", "square"}, {"color", "red"}}, 2);
  events = registry.Drain(*id);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, MatchEvent::Kind::kLeave);
  tj.Set("a", {{"shape", "square"}, {"color", "blue"}}, 3);
  events = registry.Drain(*id);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, MatchEvent::Kind::kEnter);

  // Emptying the entity drops it from the universe: it stops matching
  // even though its (empty) state trivially "isn't red".
  tj.Clear("a", 4);
  events = registry.Drain(*id);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, MatchEvent::Kind::kLeave);
  EXPECT_TRUE(registry.MatchedEntities(*id).empty());
}

TEST(StandingQueryTest, BackfillSeedsSilently) {
  TestJournal tj;
  tj.Set("m1", {{"svc.80/tcp.service.name", "HTTP"}}, 1);
  tj.Set("m2", {{"svc.80/tcp.service.name", "HTTP"}}, 1);
  tj.Set("x1", {{"svc.80/tcp.service.name", "SSH"}}, 1);

  StandingQueryRegistry registry;
  std::string error;
  const auto id = registry.Register("http", "svc.80/tcp.service.name: http",
                                    &error, &tj.journal());
  ASSERT_TRUE(id.has_value()) << error;
  // Already-matching entities are seeded, not flooded as kEnter events.
  EXPECT_TRUE(registry.Drain(*id).empty());
  EXPECT_EQ(registry.MatchedEntities(*id),
            (std::vector<std::string>{"m1", "m2"}));

  // Post-registration transitions do produce events.
  tj.journal().SetCommitObserver(
      [&](const std::vector<storage::AppliedEvent>& batch) {
        registry.OnCommit(batch);
      });
  tj.Set("m1", {{"svc.80/tcp.service.name", "SSH"}}, 2);
  const auto events = registry.Drain(*id);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, MatchEvent::Kind::kLeave);
  EXPECT_EQ(events[0].entity_id, "m1");
}

TEST(StandingQueryTest, PendingCapDropsOldest) {
  TestJournal tj;
  StandingQueryRegistry registry(StandingQueryRegistry::Options{
      .max_pending = 2});
  tj.journal().SetCommitObserver(
      [&](const std::vector<storage::AppliedEvent>& batch) {
        registry.OnCommit(batch);
      });
  std::string error;
  const auto id = registry.Register("all", "tag: hot", &error);
  ASSERT_TRUE(id.has_value()) << error;

  for (int i = 0; i < 5; ++i) {
    tj.Set("e" + std::to_string(i), {{"tag", "hot"}}, i);
  }
  EXPECT_EQ(registry.dropped(*id), 3u);
  const auto events = registry.Drain(*id);
  ASSERT_EQ(events.size(), 2u);
  // The survivors are the newest two, still in commit order.
  EXPECT_EQ(events[0].entity_id, "e3");
  EXPECT_EQ(events[1].entity_id, "e4");
}

TEST(StandingQueryTest, CallbackMirrorsPendingQueue) {
  TestJournal tj;
  StandingQueryRegistry registry;
  tj.journal().SetCommitObserver(
      [&](const std::vector<storage::AppliedEvent>& batch) {
        registry.OnCommit(batch);
      });

  std::vector<MatchEvent> pushed;
  std::string error;
  const auto id = registry.Register(
      "cb", "tag: hot", &error, nullptr,
      [&pushed](const MatchEvent& ev) { pushed.push_back(ev); });
  ASSERT_TRUE(id.has_value()) << error;

  tj.Set("a", {{"tag", "hot"}}, 1);
  tj.Set("b", {{"tag", "hot"}}, 2);
  tj.Set("a", {{"tag", "cold"}}, 3);

  const auto drained = registry.Drain(*id);
  EXPECT_EQ(pushed, drained);
  ASSERT_EQ(pushed.size(), 3u);
  EXPECT_EQ(pushed[2].kind, MatchEvent::Kind::kLeave);
}

TEST(StandingQueryTest, UnregisterStopsDelivery) {
  TestJournal tj;
  StandingQueryRegistry registry;
  tj.journal().SetCommitObserver(
      [&](const std::vector<storage::AppliedEvent>& batch) {
        registry.OnCommit(batch);
      });
  std::string error;
  const auto id = registry.Register("q", "tag: hot", &error);
  ASSERT_TRUE(id.has_value()) << error;
  EXPECT_TRUE(registry.Unregister(*id));
  EXPECT_FALSE(registry.Unregister(*id));
  EXPECT_EQ(registry.query_count(), 0u);

  tj.Set("a", {{"tag", "hot"}}, 1);  // must not crash or deliver
  EXPECT_TRUE(registry.Drain(*id).empty());
  EXPECT_EQ(registry.dropped(*id), 0u);
}

// --------------------------------------------- standing-query determinism

// The acceptance-criterion run: a full engine world with standing queries
// attached to the journal's commit observer. The pushed match streams
// must be byte-identical across engine thread counts, and the registry's
// matched set must equal a from-scratch index search after every tick.
struct StandingRun {
  std::map<std::string, std::string> streams;  // expression -> event log
};

const std::vector<std::string>& StandingExpressions() {
  static const std::vector<std::string> kExprs = {
      "http",
      "NOT http",
      "ssh OR ftp",
  };
  return kExprs;
}

StandingRun RunStandingWorld(int threads) {
  engines::WorldConfig cfg;
  cfg.universe.seed = 42;
  cfg.universe.universe_size = 1u << 14;
  cfg.universe.target_services = 1200;
  cfg.universe.ics_scale = 32;
  cfg.with_alternatives = false;
  cfg.censys.threads = threads;
  engines::World world(cfg);

  StandingQueryRegistry registry;
  std::vector<std::pair<std::string, StandingQueryId>> ids;
  for (const std::string& expr : StandingExpressions()) {
    std::string error;
    const auto id =
        registry.Register(expr, expr, &error, &world.censys().journal());
    EXPECT_TRUE(id.has_value()) << expr << ": " << error;
    ids.emplace_back(expr, *id);
  }
  world.censys().journal().SetCommitObserver(
      [&registry](const std::vector<storage::AppliedEvent>& batch) {
        registry.OnCommit(batch);
      });

  StandingRun out;
  world.Bootstrap();
  for (int tick = 0; tick < 12; ++tick) {
    world.RunUntil(world.now() + world.config().tick);
    for (const auto& [expr, id] : ids) {
      std::string& stream = out.streams[expr];
      for (const MatchEvent& ev : registry.Drain(id)) {
        stream += ev.ToString();
        stream += '\n';
      }
    }
    // Oracle: the incrementally maintained matched set must equal
    // re-running the search from scratch at this tick.
    world.censys().RebuildSearchIndex();
    for (const auto& [expr, id] : ids) {
      std::string error;
      const auto oracle = world.censys().search_index().Search(expr, &error);
      EXPECT_EQ(registry.MatchedEntities(id), oracle)
          << "tick " << tick << " expr " << expr << " threads " << threads;
    }
  }
  return out;
}

TEST(StandingDeterminismTest, StreamsByteIdenticalAcrossThreadCounts) {
  const StandingRun serial = RunStandingWorld(0);
  const StandingRun threaded = RunStandingWorld(EnvThreads());

  // The world journals real traffic: the streams must not be vacuous.
  ASSERT_FALSE(serial.streams.at("http").empty());
  for (const std::string& expr : StandingExpressions()) {
    EXPECT_EQ(serial.streams.at(expr), threaded.streams.at(expr))
        << "stream diverged for " << expr;
  }
}

// ------------------------------------------------------ columnar segments

void FillColumnarJournal(TestJournal& tj) {
  tj.Set("10.0.0.1", {{"svc.80/tcp.service.name", "HTTP"},
                      {"svc.80/tcp.software.product", "nginx"},
                      {"location.country", "us"}});
  tj.Set("10.0.0.2", {{"svc.80/tcp.service.name", "HTTP"},
                      {"svc.443/tcp.service.name", "HTTP"},
                      {"location.country", "de"}});
  tj.Set("10.0.0.3", {{"svc.22/tcp.service.name", "SSH"},
                      {"location.country", "us"}});
  tj.Set("10.0.0.4", {{"svc.80/tcp.service.name", "HTTP"},
                      {"svc.80/tcp.software.product", "nginx"}});
  // An emptied entity must vanish from the segment universe.
  tj.Set("10.0.0.5", {{"svc.80/tcp.service.name", "FTP"}});
  tj.Clear("10.0.0.5");
}

TEST(ColumnSegmentTest, EncodeDecodeRoundTrip) {
  TestJournal tj;
  FillColumnarJournal(tj);
  const ColumnSegment segment = BuildSegment(tj.journal(), 7);
  EXPECT_EQ(segment.day, 7);
  ASSERT_EQ(segment.row_ids.size(), 4u);  // .5 was emptied
  EXPECT_TRUE(std::is_sorted(segment.row_ids.begin(), segment.row_ids.end()));

  const std::string encoded = segment.Encode();
  const auto decoded = ColumnSegment::Decode(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->Encode(), encoded);  // canonical form is stable
  EXPECT_EQ(decoded->day, 7);
  EXPECT_EQ(decoded->row_ids, segment.row_ids);
  ASSERT_EQ(decoded->columns.size(), segment.columns.size());

  // Every column's runs tile the row count.
  for (const ColumnSegment::Column& column : decoded->columns) {
    std::uint64_t covered = 0;
    for (const ColumnSegment::Run& run : column.runs) covered += run.length;
    EXPECT_EQ(covered, decoded->row_ids.size()) << column.field;
  }
}

TEST(ColumnSegmentTest, DecodeRejectsStructuralCorruption) {
  TestJournal tj;
  FillColumnarJournal(tj);
  ColumnSegment segment = BuildSegment(tj.journal(), 7);
  const std::string encoded = segment.Encode();

  // Every strict prefix is invalid (truncation can never mis-aggregate).
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    EXPECT_FALSE(ColumnSegment::Decode(encoded.substr(0, i)).has_value())
        << "prefix " << i;
  }
  // Trailing garbage and a damaged magic are invalid.
  EXPECT_FALSE(ColumnSegment::Decode(encoded + "x").has_value());
  std::string bad_magic = encoded;
  bad_magic[0] ^= 0x01;
  EXPECT_FALSE(ColumnSegment::Decode(bad_magic).has_value());

  // Unsorted rows are rejected.
  ColumnSegment unsorted = segment;
  std::swap(unsorted.row_ids[0], unsorted.row_ids[1]);
  EXPECT_FALSE(ColumnSegment::Decode(unsorted.Encode()).has_value());

  // Run lengths that disagree with the row count are rejected.
  ColumnSegment overlong = segment;
  ASSERT_FALSE(overlong.columns.empty());
  overlong.columns[0].runs[0].length += 1;
  EXPECT_FALSE(ColumnSegment::Decode(overlong.Encode()).has_value());

  // Out-of-range dictionary ids are rejected.
  ColumnSegment bad_dict = segment;
  bad_dict.columns[0].runs[0].value =
      static_cast<std::uint32_t>(bad_dict.columns[0].dict.size()) + 1;
  EXPECT_FALSE(ColumnSegment::Decode(bad_dict.Encode()).has_value());
}

TEST(AnalyticsTierTest, SegmentAggregatesMatchJournalWalkExactly) {
  TestJournal tj;
  FillColumnarJournal(tj);
  AnalyticsTier tier(tj.journal(), {});  // in-memory only
  std::string error;
  ASSERT_TRUE(tier.BuildDay(3, &error)) << error;

  // Exact-field host counts.
  const auto seg = tier.GroupCount(3, "svc.80/tcp.service.name");
  EXPECT_TRUE(seg.from_segment);
  EXPECT_EQ(seg.day, 3);
  EXPECT_EQ(seg.rows, 4u);
  EXPECT_EQ(seg.groups,
            (std::map<std::string, std::uint64_t>{{"HTTP", 3}}));
  const auto walk = tier.WalkJournal("svc.80/tcp.service.name");
  EXPECT_FALSE(walk.from_segment);
  EXPECT_EQ(walk.groups, seg.groups);
  EXPECT_EQ(walk.rows, seg.rows);

  // Suffix service counts: (host, field) pairs, so 10.0.0.2 counts twice.
  const auto seg_sfx = tier.GroupCountSuffix(3, ".service.name");
  EXPECT_TRUE(seg_sfx.from_segment);
  EXPECT_EQ(seg_sfx.groups, (std::map<std::string, std::uint64_t>{
                                {"HTTP", 4}, {"SSH", 1}}));
  EXPECT_EQ(tier.WalkJournalSuffix(".service.name").groups, seg_sfx.groups);

  // Absent field: zero groups, full row scan, still from the segment.
  const auto none = tier.GroupCount(3, "no.such.field");
  EXPECT_TRUE(none.from_segment);
  EXPECT_TRUE(none.groups.empty());
  EXPECT_EQ(none.rows, 4u);
}

TEST(AnalyticsTierTest, StalenessServesNewestSegmentAtOrBefore) {
  TestJournal tj;
  FillColumnarJournal(tj);
  metrics::Registry metrics;
  AnalyticsTier tier(tj.journal(), {});
  tier.BindMetrics(&metrics);
  std::string error;
  ASSERT_TRUE(tier.BuildDay(3, &error)) << error;

  // Day 5 is answered by the day-3 segment (stale but labeled).
  const auto agg = tier.GroupCount(5, "location.country");
  EXPECT_TRUE(agg.from_segment);
  EXPECT_EQ(agg.day, 3);

  // Day 2 predates every segment: journal-walk fallback, not corruption.
  const auto early = tier.GroupCount(2, "location.country");
  EXPECT_FALSE(early.from_segment);
  EXPECT_EQ(early.groups, tier.WalkJournal("location.country").groups);
  EXPECT_EQ(metrics.CounterValue("censys.query.fallback_walks"), 1u);
  EXPECT_EQ(metrics.CounterValue("censys.query.segment_corrupt"), 0u);
  EXPECT_EQ(metrics.CounterValue("censys.query.segments_built"), 1u);
  EXPECT_EQ(tier.CachedDays(), std::vector<std::int64_t>{3});
}

TEST(AnalyticsTierTest, SegmentsPersistAcrossInstances) {
  TestJournal tj;
  FillColumnarJournal(tj);
  const std::string dir = test::ScratchDir("query_segments");
  {
    AnalyticsTier writer(tj.journal(), {.dir = dir});
    std::string error;
    ASSERT_TRUE(writer.BuildDay(3, &error)) << error;
    ASSERT_TRUE(storage::SegmentFileExists(writer.SegmentPath(3)));
  }
  AnalyticsTier reader(tj.journal(), {.dir = dir});
  const auto agg = reader.GroupCount(3, "svc.80/tcp.service.name");
  EXPECT_TRUE(agg.from_segment);
  EXPECT_EQ(agg.groups, (std::map<std::string, std::uint64_t>{{"HTTP", 3}}));
  // The reload is cached: a second scan needs no directory probe.
  EXPECT_EQ(reader.CachedDays(), std::vector<std::int64_t>{3});
}

// ------------------------------------------------- corruption fallback

// The satellite's contract: a segment damaged at write or read time is
// detected (CRC frame or strict decode), counted in
// censys.query.segment_corrupt, and the aggregate falls back to the live
// journal walk — the answer is NEVER wrong, only slower.
class SegmentCorruptionTest : public ::testing::Test {
 protected:
  SegmentCorruptionTest() { FillColumnarJournal(tj_); }

  // Builds day 3's segment on disk under an optional write-fault plan.
  std::string BuildDir(const char* name, std::vector<fault::Rule> rules) {
    const std::string dir = test::ScratchDir(name);
    AnalyticsTier writer(tj_.journal(), {.dir = dir});
    std::string error;
    if (rules.empty()) {
      EXPECT_TRUE(writer.BuildDay(3, &error)) << error;
    } else {
      const fault::ScopedPlan plan(11, std::move(rules));
      EXPECT_TRUE(writer.BuildDay(3, &error)) << error;
    }
    return dir;
  }

  // Asserts a fresh tier over `dir` detects the damage and falls back to
  // a correct walk answer.
  void ExpectDetectedAndCorrect(const std::string& dir) {
    metrics::Registry metrics;
    AnalyticsTier reader(tj_.journal(), {.dir = dir});
    reader.BindMetrics(&metrics);
    const auto agg = reader.GroupCount(3, "svc.80/tcp.service.name");
    EXPECT_FALSE(agg.from_segment);
    EXPECT_EQ(agg.groups,
              reader.WalkJournal("svc.80/tcp.service.name").groups);
    EXPECT_GE(metrics.CounterValue("censys.query.segment_corrupt"), 1u);
    EXPECT_GE(metrics.CounterValue("censys.query.fallback_walks"), 1u);
  }

  TestJournal tj_;
};

TEST_F(SegmentCorruptionTest, BitFlipAtWriteFallsBackToWalk) {
  // A silent media bit-flip: the damaged frame lands and renames cleanly;
  // only the CRC (or strict decode) catches it at read time.
  fault::Rule rule;
  rule.point = "storage.segment.write";
  rule.mode = fault::Mode::kBitFlip;
  ExpectDetectedAndCorrect(BuildDir("seg_bitflip_write", {rule}));
}

TEST_F(SegmentCorruptionTest, TornTailAtWriteFallsBackToWalk) {
  fault::Rule rule;
  rule.point = "storage.segment.write";
  rule.mode = fault::Mode::kTornWrite;
  ExpectDetectedAndCorrect(BuildDir("seg_torn_write", {rule}));
}

TEST_F(SegmentCorruptionTest, BitFlipAtReadIsTransient) {
  const std::string dir = BuildDir("seg_bitflip_read", {});
  metrics::Registry metrics;
  AnalyticsTier reader(tj_.journal(), {.dir = dir});
  reader.BindMetrics(&metrics);
  {
    fault::Rule rule;
    rule.point = "storage.segment.read";
    rule.mode = fault::Mode::kBitFlip;
    const fault::ScopedPlan plan(13, {rule});
    const auto agg = reader.GroupCount(3, "svc.80/tcp.service.name");
    EXPECT_FALSE(agg.from_segment);
    EXPECT_EQ(agg.groups,
              reader.WalkJournal("svc.80/tcp.service.name").groups);
    EXPECT_GE(metrics.CounterValue("censys.query.segment_corrupt"), 1u);
  }
  // The file itself is fine: once the fault clears, reads recover and the
  // segment serves again (nothing poisoned the cache).
  const auto healthy = reader.GroupCount(3, "svc.80/tcp.service.name");
  EXPECT_TRUE(healthy.from_segment);
  EXPECT_EQ(healthy.groups,
            (std::map<std::string, std::uint64_t>{{"HTTP", 3}}));
}

TEST_F(SegmentCorruptionTest, ReadErrorCountsAndFallsBack) {
  const std::string dir = BuildDir("seg_read_error", {});
  fault::Rule rule;
  rule.point = "storage.segment.read";
  rule.mode = fault::Mode::kErrorReturn;
  const fault::ScopedPlan plan(17, {rule});
  ExpectDetectedAndCorrect(dir);
}

TEST_F(SegmentCorruptionTest, WriteErrorFailsBuildCleanly) {
  const std::string dir = test::ScratchDir("seg_write_error");
  AnalyticsTier tier(tj_.journal(), {.dir = dir});
  fault::Rule rule;
  rule.point = "storage.segment.write";
  rule.mode = fault::Mode::kErrorReturn;
  {
    const fault::ScopedPlan plan(19, {rule});
    std::string error;
    EXPECT_FALSE(tier.BuildDay(3, &error));
    EXPECT_FALSE(error.empty());
  }
  // A failed build caches nothing and leaves no segment behind.
  EXPECT_TRUE(tier.CachedDays().empty());
  EXPECT_FALSE(storage::SegmentFileExists(tier.SegmentPath(3)));
  const auto agg = tier.GroupCount(3, "location.country");
  EXPECT_FALSE(agg.from_segment);
  EXPECT_EQ(agg.groups, tier.WalkJournal("location.country").groups);
}

TEST_F(SegmentCorruptionTest, CrashAtWriteLeavesNoVisibleSegment) {
  const std::string dir = test::ScratchDir("seg_write_crash");
  AnalyticsTier tier(tj_.journal(), {.dir = dir});
  fault::Rule rule;
  rule.point = "storage.segment.write";
  rule.mode = fault::Mode::kCrash;
  bool crashed = false;
  {
    const fault::ScopedPlan plan(23, {rule});
    std::string error;
    try {
      tier.BuildDay(3, &error);
    } catch (const fault::CrashException&) {
      crashed = true;
    }
  }
  EXPECT_TRUE(crashed);
  // tmp+rename: the crash never publishes a partial segment.
  EXPECT_FALSE(storage::SegmentFileExists(tier.SegmentPath(3)));
  EXPECT_TRUE(tier.CachedDays().empty());
}

// ------------------------------------------------------ serving integration

interrogate::ServiceRecord ProductRecord(IPv4Address ip, Port port,
                                         const std::string& product) {
  interrogate::ServiceRecord r;
  r.key = {ip, port, Transport::kTcp};
  r.observed_at = Timestamp{100};
  r.protocol = proto::Protocol::kHttp;
  r.detection = interrogate::DetectionMethod::kBatteryHandshake;
  r.handshake_validated = true;
  r.software = {product, product, "1.0"};
  return r;
}

class AggregateServingTest : public ::testing::Test {
 protected:
  AggregateServingTest()
      : plan_(PlanConfig()), write_(journal_, bus_),
        enricher_(plan_, nullptr, nullptr),
        read_(journal_, write_, &enricher_) {
    for (std::uint32_t h = 0; h < 8; ++h) {
      write_.IngestScan(ProductRecord(IPv4Address(h + 1), 80,
                                      h < 5 ? "nginx" : "apache"));
    }
  }

  static simnet::UniverseConfig PlanConfig() {
    simnet::UniverseConfig cfg;
    cfg.seed = 2;
    cfg.universe_size = 1u << 16;
    return cfg;
  }

  storage::EventJournal journal_;
  pipeline::EventBus bus_;
  simnet::BlockPlan plan_;
  pipeline::WriteSide write_;
  engines::ContextEnricher enricher_;
  pipeline::ReadSide read_;
  search::SearchIndex index_;
  search::AnalyticsStore analytics_;
};

TEST_F(AggregateServingTest, AggregateQueriesServeThroughTheLadder) {
  AnalyticsTier tier(journal_, {});
  std::string error;
  ASSERT_TRUE(tier.BuildDay(0, &error)) << error;

  serving::ServingFrontend::Options options;
  options.threads = 2;
  serving::ServingFrontend frontend(read_, index_, analytics_, options);
  frontend.AttachAnalyticsTier(&tier);

  serving::Query q;
  q.kind = serving::Query::Kind::kAggregate;
  q.text = ".software.product";
  q.suffix_aggregate = true;
  q.at = Timestamp{100};
  const auto out = frontend.ServeOne(q);
  EXPECT_TRUE(out.hit);
  EXPECT_FALSE(out.failed);
  EXPECT_FALSE(out.degraded);  // answered from the segment
  EXPECT_EQ(out.results, 2u);  // {nginx, apache}

  // Exact-field aggregates work too.
  q.text = "svc.80/tcp.software.product";
  q.suffix_aggregate = false;
  const auto exact = frontend.ServeOne(q);
  EXPECT_TRUE(exact.hit);
  EXPECT_EQ(exact.results, 2u);

  // A batch counts aggregates in the report.
  const auto report = frontend.Run({q, q, q});
  EXPECT_EQ(report.aggregates, 3u);
  EXPECT_EQ(report.failed, 0u);
}

TEST_F(AggregateServingTest, WalkFallbackIsDegradedButCorrect) {
  AnalyticsTier tier(journal_, {});  // no segment built
  serving::ServingFrontend::Options options;
  options.threads = 1;
  serving::ServingFrontend frontend(read_, index_, analytics_, options);
  frontend.AttachAnalyticsTier(&tier);

  serving::Query q;
  q.kind = serving::Query::Kind::kAggregate;
  q.text = ".software.product";
  q.suffix_aggregate = true;
  q.at = Timestamp{100};
  const auto out = frontend.ServeOne(q);
  EXPECT_TRUE(out.hit);
  EXPECT_TRUE(out.degraded);  // journal-walk fallback
  EXPECT_EQ(out.results, 2u);
}

TEST_F(AggregateServingTest, MissingTierFailsTheQuery) {
  serving::ServingFrontend::Options options;
  options.threads = 1;
  options.max_read_retries = 1;
  options.retry_backoff_us = 0;
  serving::ServingFrontend frontend(read_, index_, analytics_, options);

  serving::Query q;
  q.kind = serving::Query::Kind::kAggregate;
  q.text = ".software.product";
  q.at = Timestamp{100};
  const auto out = frontend.ServeOne(q);
  EXPECT_TRUE(out.failed);
  EXPECT_FALSE(out.hit);
}

}  // namespace
}  // namespace censys::query
