// Tests for serialization, delta encoding, the ordered KV store, and the
// event journal (snapshot + replay reconstruction, tier migration).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "core/strings.h"
#include "storage/delta.h"
#include "storage/journal.h"
#include "storage/kv.h"
#include "storage/serialize.h"
#include "storage/wal.h"
#include "test_tmpdir.h"

namespace censys::storage {
namespace {

// ------------------------------------------------------------------ serialize

TEST(VarintTest, RoundTripsBoundaryValues) {
  for (std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull, 0xFFFFFFFFull,
        ~0ull}) {
    std::string buf;
    PutVarint(buf, v);
    std::size_t pos = 0;
    const auto decoded = GetVarint(buf, &pos);
    ASSERT_TRUE(decoded.has_value()) << v;
    EXPECT_EQ(*decoded, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, DetectsTruncation) {
  std::string buf;
  PutVarint(buf, 300);
  buf.pop_back();
  std::size_t pos = 0;
  EXPECT_FALSE(GetVarint(buf, &pos).has_value());
}

TEST(FieldsCodecTest, RoundTrips) {
  FieldMap fields{{"a", "1"}, {"banner", "SSH-2.0-OpenSSH"}, {"empty", ""}};
  const std::string encoded = EncodeFields(fields);
  const auto decoded = DecodeFields(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, fields);
}

TEST(FieldsCodecTest, EqualMapsEncodeIdentically) {
  FieldMap a{{"x", "1"}, {"y", "2"}};
  FieldMap b{{"y", "2"}, {"x", "1"}};
  EXPECT_EQ(EncodeFields(a), EncodeFields(b));
}

TEST(FieldsCodecTest, RejectsGarbage) {
  EXPECT_FALSE(DecodeFields("\xff\xff\xff").has_value());
  const std::string valid = EncodeFields({{"k", "v"}});
  EXPECT_FALSE(DecodeFields(valid + "x").has_value());  // trailing bytes
}

// ---------------------------------------------------------------------- delta

TEST(DeltaTest, ComputeAndApplyRoundTrip) {
  FieldMap before{{"a", "1"}, {"b", "2"}, {"c", "3"}};
  FieldMap after{{"a", "1"}, {"b", "changed"}, {"d", "new"}};
  const Delta delta = ComputeDelta(before, after);
  FieldMap state = before;
  ApplyDelta(state, delta);
  EXPECT_EQ(state, after);
}

TEST(DeltaTest, NoChangeYieldsEmptyDelta) {
  FieldMap state{{"a", "1"}, {"b", "2"}};
  EXPECT_TRUE(ComputeDelta(state, state).empty());
}

TEST(DeltaTest, DeltaIsMinimal) {
  FieldMap before{{"a", "1"}, {"b", "2"}, {"c", "3"}};
  FieldMap after = before;
  after["b"] = "2!";
  const Delta delta = ComputeDelta(before, after);
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_EQ(delta.ops[0].key, "b");
  EXPECT_EQ(delta.ops[0].kind, FieldOp::Kind::kSet);
}

TEST(DeltaTest, EncodesAndDecodes) {
  FieldMap before{{"a", "1"}, {"z", "26"}};
  FieldMap after{{"a", "2"}, {"m", "13"}};
  const Delta delta = ComputeDelta(before, after);
  const auto decoded = Delta::Decode(delta.Encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, delta);
}

TEST(DeltaTest, DecodeRejectsCorruptInput) {
  EXPECT_FALSE(Delta::Decode("\x01X").has_value());  // bad op kind
  const Delta delta = ComputeDelta({}, {{"k", "v"}});
  std::string encoded = delta.Encode();
  encoded.pop_back();
  EXPECT_FALSE(Delta::Decode(encoded).has_value());
}

TEST(DeltaTest, ApplyFromEmptyBuildsState) {
  FieldMap after{{"x", "1"}, {"y", "2"}};
  const Delta delta = ComputeDelta({}, after);
  FieldMap state;
  ApplyDelta(state, delta);
  EXPECT_EQ(state, after);
}

TEST(DeltaTest, RemovalDeltaEmptiesState) {
  FieldMap before{{"x", "1"}, {"y", "2"}};
  const Delta delta = ComputeDelta(before, {});
  EXPECT_EQ(delta.size(), 2u);
  FieldMap state = before;
  ApplyDelta(state, delta);
  EXPECT_TRUE(state.empty());
}

// ------------------------------------------------------------------------- kv

TEST(OrderedKvTest, PutGetDelete) {
  OrderedKv kv;
  kv.Put("k1", "v1");
  kv.Put("k2", "v2");
  EXPECT_EQ(kv.Get("k1"), "v1");
  EXPECT_FALSE(kv.Get("missing").has_value());
  EXPECT_TRUE(kv.Delete("k1"));
  EXPECT_FALSE(kv.Delete("k1"));
  EXPECT_FALSE(kv.Get("k1").has_value());
}

TEST(OrderedKvTest, OverwriteUpdatesBytes) {
  OrderedKv kv;
  kv.Put("key", "short");
  const auto initial = kv.total_bytes();
  kv.Put("key", "a much longer value than before");
  EXPECT_GT(kv.total_bytes(), initial);
  kv.Put("key", "s");
  EXPECT_LT(kv.total_bytes(), initial);
}

TEST(OrderedKvTest, ScanIsOrderedAndBounded) {
  OrderedKv kv;
  for (const char* k : {"b", "a", "d", "c", "e"}) kv.Put(k, k);
  std::string visited;
  kv.Scan("b", "e", [&](std::string_view key, std::string_view) {
    visited += key;
    return true;
  });
  EXPECT_EQ(visited, "bcd");
}

TEST(OrderedKvTest, ScanEarlyStop) {
  OrderedKv kv;
  for (const char* k : {"a", "b", "c"}) kv.Put(k, k);
  int count = 0;
  kv.Scan("a", "", [&](std::string_view, std::string_view) {
    return ++count < 2;
  });
  EXPECT_EQ(count, 2);
}

TEST(OrderedKvTest, SeekBefore) {
  OrderedKv kv;
  kv.Put("b", "1");
  kv.Put("d", "2");
  const auto hit = kv.SeekBefore("c");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->first, "b");
  EXPECT_FALSE(kv.SeekBefore("a").has_value());
  EXPECT_EQ(kv.SeekBefore("z")->first, "d");
}

TEST(OrderedKvTest, TierAccounting) {
  OrderedKv kv;
  kv.Put("hot", "data", Tier::kSsd);
  kv.Put("cold", "data", Tier::kHdd);
  EXPECT_EQ(kv.bytes_on(Tier::kSsd), 7u);
  EXPECT_EQ(kv.bytes_on(Tier::kHdd), 8u);
  EXPECT_TRUE(kv.SetTier("hot", Tier::kHdd));
  EXPECT_EQ(kv.bytes_on(Tier::kSsd), 0u);
  EXPECT_EQ(kv.bytes_on(Tier::kHdd), 15u);
  EXPECT_FALSE(kv.SetTier("missing", Tier::kSsd));
}

TEST(SeqnoCodecTest, PreservesOrder) {
  std::string prev = EncodeSeqno(0);
  for (std::uint64_t v : {1ull, 2ull, 255ull, 256ull, 1ull << 40, ~0ull}) {
    const std::string cur = EncodeSeqno(v);
    EXPECT_LT(prev, cur);
    EXPECT_EQ(DecodeSeqno(cur), v);
    prev = cur;
  }
}

// -------------------------------------------------------------------- journal

Delta SetDelta(const std::string& key, const std::string& value) {
  Delta d;
  d.ops.push_back({FieldOp::Kind::kSet, key, value});
  return d;
}

TEST(JournalTest, CurrentStateTracksAppends) {
  EventJournal journal;
  journal.Append("1.2.3.4", EventKind::kServiceFound, Timestamp{10},
                 SetDelta("svc.80/tcp.name", "HTTP"));
  journal.Append("1.2.3.4", EventKind::kServiceChanged, Timestamp{20},
                 SetDelta("svc.80/tcp.name", "HTTPS"));
  const core::ThreadRoleGuard role(journal.command_role());
  const FieldMap* state = journal.CurrentState("1.2.3.4");
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->at("svc.80/tcp.name"), "HTTPS");
  EXPECT_EQ(journal.event_count(), 2u);
}

TEST(JournalTest, EmptyDeltaRefreshJournalsNothing) {
  EventJournal journal;
  journal.Append("h", EventKind::kServiceFound, Timestamp{10},
                 SetDelta("f", "v"));
  const auto before = journal.event_count();
  journal.Append("h", EventKind::kEntityUpdated, Timestamp{20}, Delta{});
  EXPECT_EQ(journal.event_count(), before);
}

TEST(JournalTest, ReconstructAtTimestamps) {
  EventJournal journal;
  journal.Append("h", EventKind::kServiceFound, Timestamp{10},
                 SetDelta("a", "1"));
  journal.Append("h", EventKind::kServiceChanged, Timestamp{20},
                 SetDelta("a", "2"));
  journal.Append("h", EventKind::kServiceChanged, Timestamp{30},
                 SetDelta("a", "3"));

  EXPECT_FALSE(journal.ReconstructAt("h", Timestamp{5}).has_value());
  EXPECT_EQ(journal.ReconstructAt("h", Timestamp{10})->at("a"), "1");
  EXPECT_EQ(journal.ReconstructAt("h", Timestamp{25})->at("a"), "2");
  EXPECT_EQ(journal.ReconstructAt("h", Timestamp{99})->at("a"), "3");
  EXPECT_FALSE(journal.ReconstructAt("other", Timestamp{99}).has_value());
}

TEST(JournalTest, ReconstructionMatchesCurrentAfterManyEvents) {
  EventJournal::Options options;
  options.snapshot_every = 4;  // force several snapshots
  EventJournal journal(options);
  for (int i = 0; i < 50; ++i) {
    journal.Append("h", EventKind::kServiceChanged, Timestamp{i * 10},
                   SetDelta("field" + std::to_string(i % 7),
                            std::to_string(i)));
  }
  const auto reconstructed = journal.ReconstructAt("h", Timestamp{1000});
  ASSERT_TRUE(reconstructed.has_value());
  const core::ThreadRoleGuard role(journal.command_role());
  EXPECT_EQ(*reconstructed, *journal.CurrentState("h"));
  EXPECT_GT(journal.snapshot_count(), 5u);
}

TEST(JournalTest, SnapshotsBoundReplayLength) {
  EventJournal::Options options;
  options.snapshot_every = 8;
  EventJournal journal(options);
  for (int i = 0; i < 100; ++i) {
    journal.Append("h", EventKind::kServiceChanged, Timestamp{i},
                   SetDelta("f", std::to_string(i)));
  }
  journal.ReconstructAt("h", Timestamp{99});
  EXPECT_LE(journal.max_replay_length(), 8u);
}

TEST(JournalTest, HistoryPreservesAllEvents) {
  EventJournal journal;
  journal.Append("h", EventKind::kServiceFound, Timestamp{1},
                 SetDelta("a", "1"));
  journal.Append("h", EventKind::kServiceRemoved, Timestamp{2},
                 ComputeDelta({{"a", "1"}}, {}));
  const auto history = journal.History("h");
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].kind, EventKind::kServiceFound);
  EXPECT_EQ(history[1].kind, EventKind::kServiceRemoved);
  EXPECT_EQ(history[0].at, Timestamp{1});
}

TEST(JournalTest, ColdDataMigratesToHdd) {
  EventJournal::Options options;
  options.snapshot_every = 4;
  EventJournal journal(options);
  for (int i = 0; i < 40; ++i) {
    journal.Append("h", EventKind::kServiceChanged, Timestamp{i},
                   SetDelta("f" + std::to_string(i), "v"));
  }
  // After multiple snapshots, historical rows must live on HDD while the
  // journal tail stays on SSD.
  EXPECT_GT(journal.bytes_on(Tier::kHdd), 0u);
  EXPECT_GT(journal.bytes_on(Tier::kSsd), 0u);
}

TEST(JournalTest, DeltaEncodingBeatsFullRecords) {
  EventJournal journal;
  // One big record refreshed repeatedly with a single changing field.
  FieldMap state;
  for (int f = 0; f < 25; ++f) {
    state["field" + std::to_string(f)] = std::string(30, 'x');
  }
  FieldMap prev;
  for (int refresh = 0; refresh < 20; ++refresh) {
    state["counter"] = std::to_string(refresh);
    journal.Append("h", EventKind::kServiceChanged, Timestamp{refresh},
                   ComputeDelta(prev, state));
    prev = state;
  }
  // "Only differences are stored to disk": after the first full write, the
  // deltas are tiny compared to re-journaling the whole record.
  EXPECT_LT(journal.delta_bytes(),
            journal.full_record_bytes_equivalent() / 5);
}

TEST(JournalTest, EntitiesAreIsolated) {
  EventJournal journal;
  journal.Append("a", EventKind::kServiceFound, Timestamp{1},
                 SetDelta("x", "1"));
  journal.Append("ab", EventKind::kServiceFound, Timestamp{1},
                 SetDelta("y", "2"));
  const core::ThreadRoleGuard role(journal.command_role());
  EXPECT_EQ(journal.CurrentState("a")->size(), 1u);
  EXPECT_EQ(journal.CurrentState("ab")->size(), 1u);
  EXPECT_EQ(journal.History("a").size(), 1u);
  EXPECT_FALSE(journal.CurrentState("a")->contains("y"));
}

// ------------------------------------------------------------------- sharding

namespace {

void FillJournal(EventJournal& journal, int entities, int events_each) {
  for (int e = 0; e < entities; ++e) {
    const std::string id = "host/" + std::to_string(e);
    for (int i = 0; i < events_each; ++i) {
      journal.Append(id, EventKind::kServiceChanged,
                     Timestamp{static_cast<std::int64_t>(i + 1)},
                     SetDelta("f" + std::to_string(i % 5),
                              "v" + std::to_string(i)));
    }
  }
}

std::vector<std::pair<std::string, std::string>> AllRows(
    const EventJournal& journal) {
  std::vector<std::pair<std::string, std::string>> rows;
  journal.ScanAll([&](std::string_view key, std::string_view value) {
    rows.emplace_back(key, value);
    return true;
  });
  return rows;
}

}  // namespace

TEST(JournalShardingTest, ContentIsShardCountIndependent) {
  // The lock-striped journal must be a pure refactor of the single-table
  // one: identical rows in identical canonical order, identical counters,
  // for any shard count.
  EventJournal::Options one;
  one.shards = 1;
  EventJournal::Options many;
  many.shards = 16;
  EventJournal a(one);
  EventJournal b(many);
  FillJournal(a, 40, 25);
  FillJournal(b, 40, 25);

  EXPECT_EQ(a.shard_count(), 1u);
  EXPECT_EQ(b.shard_count(), 16u);
  EXPECT_EQ(AllRows(a), AllRows(b));
  EXPECT_EQ(a.RowCount(), b.RowCount());
  EXPECT_EQ(a.event_count(), b.event_count());
  EXPECT_EQ(a.snapshot_count(), b.snapshot_count());
  EXPECT_EQ(a.delta_bytes(), b.delta_bytes());
  EXPECT_EQ(a.snapshot_bytes(), b.snapshot_bytes());
  EXPECT_EQ(a.bytes_on(Tier::kSsd), b.bytes_on(Tier::kSsd));
  EXPECT_EQ(a.bytes_on(Tier::kHdd), b.bytes_on(Tier::kHdd));
  const core::ThreadRoleGuard role_a(a.command_role());
  const core::ThreadRoleGuard role_b(b.command_role());
  for (int e = 0; e < 40; ++e) {
    const std::string id = "host/" + std::to_string(e);
    ASSERT_EQ(*a.CurrentState(id), *b.CurrentState(id)) << id;
    ASSERT_EQ(a.Watermark(id), b.Watermark(id)) << id;
  }
}

TEST(JournalShardingTest, ScanAllVisitsCanonicalOrderAndStopsEarly) {
  EventJournal::Options options;
  options.shards = 8;
  EventJournal journal(options);
  FillJournal(journal, 20, 10);

  std::string prev;
  std::size_t visited = 0;
  journal.ScanAll([&](std::string_view key, std::string_view) {
    EXPECT_LT(prev, std::string(key));  // strictly ascending, cross-shard
    prev = std::string(key);
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, journal.RowCount());

  std::size_t limited = 0;
  journal.ScanAll([&](std::string_view, std::string_view) {
    return ++limited < 5;
  });
  EXPECT_EQ(limited, 5u);
}

TEST(JournalConcurrencyTest, ReadersRunConcurrentlyWithAppends) {
  // 4 reader threads hammer SnapshotState / ReconstructAt / History /
  // Watermark / ScanAll while the writer keeps appending. Under TSan this
  // proves the lock striping; everywhere it proves snapshots are coherent
  // (a watermark of w implies exactly w journaled events for the entity).
  EventJournal::Options options;
  options.shards = 4;
  options.snapshot_every = 8;
  EventJournal journal(options);
  constexpr int kEntities = 16;
  constexpr int kEventsPerEntity = 400;
  const auto entity_id = [](int e) { return "host/" + std::to_string(e); };

  int reader_count = 4;
  if (const char* env = std::getenv("CENSYSIM_THREADS")) {
    if (std::atoi(env) > 0) reader_count = std::atoi(env);
  }
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < reader_count; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t local = 0;
      std::uint64_t last_wm[kEntities] = {};
      while (!done.load(std::memory_order_acquire)) {
        const int e = static_cast<int>(local + r) % kEntities;
        const std::string id = entity_id(e);
        const auto snap = journal.SnapshotState(id);
        if (snap.has_value()) {
          // Watermark w == number of appends observed; each append sets
          // field "seq" to its ordinal, so the snapshot must agree.
          ASSERT_EQ(snap->fields.at("seq"),
                    std::to_string(snap->watermark - 1));
          // Watermarks never regress for a given reader.
          ASSERT_GE(snap->watermark, last_wm[e]);
          last_wm[e] = snap->watermark;
          const auto then = journal.ReconstructAt(
              id, Timestamp{static_cast<std::int64_t>(snap->watermark)});
          ASSERT_TRUE(then.has_value());
          ASSERT_EQ(then->at("seq"), std::to_string(snap->watermark - 1));
          ASSERT_GE(journal.History(id).size(), snap->watermark);
        }
        if (local % 64 == 0) {
          journal.ScanAll(
              [&](std::string_view, std::string_view) { return true; });
        }
        ++local;
      }
      reads.fetch_add(local, std::memory_order_relaxed);
    });
  }

  for (int i = 0; i < kEventsPerEntity; ++i) {
    for (int e = 0; e < kEntities; ++e) {
      Delta delta;
      delta.ops.push_back({FieldOp::Kind::kSet, "payload",
                           std::string(16, static_cast<char>('a' + i % 26))});
      delta.ops.push_back({FieldOp::Kind::kSet, "seq", std::to_string(i)});
      journal.Append(entity_id(e), EventKind::kServiceChanged,
                     Timestamp{static_cast<std::int64_t>(i + 1)}, delta);
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_GT(reads.load(), 0u);
  for (int e = 0; e < kEntities; ++e) {
    EXPECT_EQ(journal.Watermark(entity_id(e)),
              static_cast<std::uint64_t>(kEventsPerEntity));
  }
}

// ------------------------------------------------------------------------ wal

using test::ScratchDir;

std::uint64_t JournalDigest(const EventJournal& journal) {
  std::uint64_t digest = 1469598103934665603ull;
  journal.ScanAll([&](std::string_view key, std::string_view value) {
    digest = (digest ^ Fnv1a64(key)) * 1099511628211ull;
    digest = (digest ^ Fnv1a64(value)) * 1099511628211ull;
    return true;
  });
  return digest;
}

Delta SetField(const std::string& field, const std::string& value) {
  Delta delta;
  delta.ops.push_back({FieldOp::Kind::kSet, field, value});
  return delta;
}

// Deterministic append script: op i is a pure function of i, always an
// explicit field set (never a no-op), spread across 5 entities.
void RunScript(EventJournal& journal, int from, int to) {
  for (int i = from; i < to; ++i) {
    journal.Append("host/" + std::to_string(i % 5),
                   EventKind::kServiceChanged,
                   Timestamp{static_cast<std::int64_t>(i + 1)},
                   SetField("f" + std::to_string(i % 3),
                            "v" + std::to_string(i)));
  }
}

WalRecord MakeRecord(const std::string& entity, int i) {
  WalRecord record;
  record.entity = entity;
  record.kind = static_cast<std::uint8_t>(EventKind::kServiceChanged);
  record.at = Timestamp{static_cast<std::int64_t>(i + 1)};
  record.delta = SetField("k", "value-" + std::to_string(i));
  return record;
}

TEST(WalCodecTest, PayloadRoundTrips) {
  WalRecord record;
  record.lsn = 123456789;
  record.entity = "host/192.0.2.1";
  record.kind = static_cast<std::uint8_t>(EventKind::kServiceFound);
  record.at = Timestamp{987654};
  record.delta.ops.push_back({FieldOp::Kind::kSet, "banner", "SSH-2.0"});
  record.delta.ops.push_back({FieldOp::Kind::kRemove, "stale", ""});

  const std::string payload = EncodeWalPayload(record);
  const auto decoded = DecodeWalPayload(payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->lsn, record.lsn);
  EXPECT_EQ(decoded->entity, record.entity);
  EXPECT_EQ(decoded->kind, record.kind);
  EXPECT_EQ(decoded->at.minutes, record.at.minutes);
  EXPECT_EQ(decoded->delta.Encode(), record.delta.Encode());
}

TEST(WalCodecTest, DecodeRejectsTruncationAndTrailingGarbage) {
  const std::string payload = EncodeWalPayload(MakeRecord("e", 0));
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(DecodeWalPayload(payload.substr(0, cut)).has_value())
        << "prefix of " << cut;
  }
  EXPECT_FALSE(DecodeWalPayload(payload + "x").has_value());
}

TEST(WalTest, AppendsAssignContiguousLsnsAndReplayInOrder) {
  const std::string dir = ScratchDir("append_replay");
  {
    WriteAheadLog wal({.dir = dir});
    std::string error;
    for (int i = 0; i < 20; ++i) {
      WalRecord record = MakeRecord("host/a", i);
      ASSERT_TRUE(wal.Append(record, &error)) << error;
      EXPECT_EQ(record.lsn, static_cast<std::uint64_t>(i + 1));
    }
    EXPECT_EQ(wal.last_lsn(), 20u);
  }
  // A fresh instance recovers the LSN cursor and replays everything.
  WriteAheadLog wal({.dir = dir});
  std::string error;
  ASSERT_TRUE(wal.Open(&error)) << error;
  EXPECT_EQ(wal.last_lsn(), 20u);
  std::vector<std::uint64_t> lsns;
  WriteAheadLog::ReplayStats stats;
  ASSERT_TRUE(wal.Replay(
      0, [&](const WalRecord& r) { lsns.push_back(r.lsn); }, &stats, &error))
      << error;
  EXPECT_EQ(stats.records, 20u);
  EXPECT_EQ(stats.truncated_bytes, 0u);
  ASSERT_EQ(lsns.size(), 20u);
  for (std::size_t i = 0; i < lsns.size(); ++i) EXPECT_EQ(lsns[i], i + 1);

  // from_lsn skips the durable prefix.
  stats = {};
  std::size_t tail = 0;
  ASSERT_TRUE(wal.Replay(
      15, [&](const WalRecord&) { ++tail; }, &stats, &error));
  EXPECT_EQ(tail, 5u);
  EXPECT_EQ(stats.skipped, 15u);
}

TEST(WalTest, RotationSplitsSegmentsAndReplaySpansThem) {
  const std::string dir = ScratchDir("rotation");
  WriteAheadLog wal({.dir = dir, .segment_bytes = 256});
  std::string error;
  for (int i = 0; i < 64; ++i) {
    WalRecord record = MakeRecord("host/rot", i);
    ASSERT_TRUE(wal.Append(record, &error)) << error;
  }
  EXPECT_GT(wal.rotations(), 2u);
  std::size_t segment_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    segment_files +=
        entry.path().filename().string().rfind("wal-", 0) == 0 ? 1 : 0;
  }
  EXPECT_EQ(segment_files, wal.rotations() + 1);

  std::size_t replayed = 0;
  ASSERT_TRUE(wal.Replay(
      0, [&](const WalRecord&) { ++replayed; }, nullptr, &error))
      << error;
  EXPECT_EQ(replayed, 64u);
}

// Appends `n` records and returns the path of the (single) segment file.
std::string FillSegment(const std::string& dir, int n) {
  WriteAheadLog wal({.dir = dir});
  std::string error;
  for (int i = 0; i < n; ++i) {
    WalRecord record = MakeRecord("host/t", i);
    EXPECT_TRUE(wal.Append(record, &error)) << error;
  }
  return (std::filesystem::path(dir) / "wal-00000000.log").string();
}

TEST(WalTest, TornTailIsTruncatedNotFatal) {
  const std::string dir = ScratchDir("torn");
  const std::string segment = FillSegment(dir, 10);

  // Simulate a crash mid-write: a partial frame lands at the tail.
  const auto full_size = std::filesystem::file_size(segment);
  {
    std::ofstream out(segment, std::ios::binary | std::ios::app);
    out.write("\x40\x00\x00\x00\xde\xad\xbe", 7);  // header + partial bytes
  }

  WriteAheadLog wal({.dir = dir});
  std::string error;
  ASSERT_TRUE(wal.Open(&error)) << error;
  std::size_t replayed = 0;
  WriteAheadLog::ReplayStats stats;
  ASSERT_TRUE(wal.Replay(
      0, [&](const WalRecord&) { ++replayed; }, &stats, &error));
  EXPECT_EQ(replayed, 10u);  // the torn tail cost nothing durable
  EXPECT_EQ(std::filesystem::file_size(segment), full_size);
  EXPECT_EQ(wal.truncated_bytes(), 7u);

  // Appends continue on the clean boundary.
  WalRecord record = MakeRecord("host/t", 10);
  ASSERT_TRUE(wal.Append(record, &error)) << error;
  EXPECT_EQ(record.lsn, 11u);
}

TEST(WalTest, CorruptRecordCutsTheLogAtThatPoint) {
  const std::string dir = ScratchDir("bitflip");
  const std::string segment = FillSegment(dir, 4);

  // Flip one bit in the middle of the file (inside record ~2's payload).
  const auto size = std::filesystem::file_size(segment);
  {
    std::fstream file(segment,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(static_cast<std::streamoff>(size / 2));
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    file.seekp(static_cast<std::streamoff>(size / 2));
    file.write(&byte, 1);
  }

  WriteAheadLog wal({.dir = dir});
  std::string error;
  ASSERT_TRUE(wal.Open(&error)) << error;
  std::vector<std::uint64_t> lsns;
  ASSERT_TRUE(wal.Replay(
      0, [&](const WalRecord& r) { lsns.push_back(r.lsn); }, nullptr,
      &error));
  // CRC catches the flip; the log is cut there and only the prefix
  // survives. The file now ends on a record boundary.
  EXPECT_LT(lsns.size(), 4u);
  for (std::size_t i = 0; i < lsns.size(); ++i) EXPECT_EQ(lsns[i], i + 1);
  EXPECT_GE(wal.corrupt_records(), 1u);
  EXPECT_LT(std::filesystem::file_size(segment), size);
  EXPECT_EQ(wal.last_lsn(), lsns.size());
}

// ---------------------------------------------------------- journal + wal

EventJournal::Options WalOptions(const std::string& dir) {
  EventJournal::Options options;
  options.shards = 4;
  options.wal.dir = dir;
  return options;
}

TEST(WalJournalTest, WalDoesNotPerturbJournalContent) {
  EventJournal plain{EventJournal::Options{.shards = 4}};
  RunScript(plain, 0, 200);

  EventJournal durable(WalOptions(ScratchDir("no_perturb")));
  RunScript(durable, 0, 200);

  EXPECT_EQ(JournalDigest(durable), JournalDigest(plain));
  EXPECT_EQ(durable.wal()->appended_records(), durable.event_count());
}

TEST(WalJournalTest, RecoverRebuildsByteIdenticalJournal) {
  const std::string dir = ScratchDir("recover_identical");
  EventJournal original(WalOptions(dir));
  RunScript(original, 0, 200);  // 40 events/entity: snapshots + tiering
  const std::uint64_t digest = JournalDigest(original);
  ASSERT_GT(original.snapshot_count(), 0u);

  EventJournal recovered(WalOptions(dir));
  const RecoveryReport report = recovered.Recover();
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.checkpoint_lsn, 0u);  // no checkpoint: full replay
  EXPECT_EQ(report.replayed_records, 200u);
  EXPECT_EQ(report.recovered_events, 200u);
  EXPECT_EQ(JournalDigest(recovered), digest);
  EXPECT_EQ(recovered.event_count(), original.event_count());
  EXPECT_EQ(recovered.snapshot_count(), original.snapshot_count());
  EXPECT_EQ(recovered.delta_bytes(), original.delta_bytes());
  EXPECT_EQ(recovered.bytes_on(Tier::kHdd), original.bytes_on(Tier::kHdd));
  EXPECT_EQ(recovered.Watermark("host/0"), original.Watermark("host/0"));

  // The recovered journal continues identically.
  RunScript(original, 200, 240);
  RunScript(recovered, 200, 240);
  EXPECT_EQ(JournalDigest(recovered), JournalDigest(original));
}

TEST(WalJournalTest, CheckpointBoundsReplayAndPrunesSegments) {
  const std::string dir = ScratchDir("checkpoint");
  EventJournal::Options options = WalOptions(dir);
  options.wal.segment_bytes = 512;  // force plenty of rotations
  EventJournal original(options);
  RunScript(original, 0, 150);
  std::string error;
  const auto checkpoint_lsn = original.Checkpoint(&error);
  ASSERT_TRUE(checkpoint_lsn.has_value()) << error;
  EXPECT_EQ(*checkpoint_lsn, 150u);
  EXPECT_GT(original.wal()->segments_removed(), 0u);
  RunScript(original, 150, 190);
  const std::uint64_t digest = JournalDigest(original);

  EventJournal recovered(options);
  const RecoveryReport report = recovered.Recover();
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.checkpoint_lsn, 150u);
  EXPECT_EQ(report.replayed_records, 40u);  // only the post-checkpoint tail
  EXPECT_EQ(JournalDigest(recovered), digest);
  EXPECT_EQ(recovered.event_count(), 190u);
}

TEST(WalJournalTest, RecoverFallsBackPastCorruptCheckpoint) {
  const std::string dir = ScratchDir("bad_checkpoint");
  EventJournal original(WalOptions(dir));
  RunScript(original, 0, 60);
  std::string error;
  ASSERT_TRUE(original.Checkpoint(&error).has_value()) << error;
  RunScript(original, 60, 120);
  const auto second = original.Checkpoint(&error);
  ASSERT_TRUE(second.has_value()) << error;
  RunScript(original, 120, 140);
  const std::uint64_t digest = JournalDigest(original);

  // Corrupt the newest checkpoint on disk.
  char name[48];
  std::snprintf(name, sizeof(name), "ckpt-%020llu.snap",
                static_cast<unsigned long long>(*second));
  const std::string path = (std::filesystem::path(dir) / name).string();
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(40);
    file.write("\xff", 1);
  }

  EventJournal recovered(WalOptions(dir));
  const RecoveryReport report = recovered.Recover();
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.checkpoints_rejected, 1u);
  EXPECT_EQ(report.checkpoint_lsn, 60u);  // fell back to the older one
  EXPECT_EQ(JournalDigest(recovered), digest);
}

}  // namespace
}  // namespace censys::storage
