// Tests for serialization, delta encoding, the ordered KV store, and the
// event journal (snapshot + replay reconstruction, tier migration).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "storage/delta.h"
#include "storage/journal.h"
#include "storage/kv.h"
#include "storage/serialize.h"

namespace censys::storage {
namespace {

// ------------------------------------------------------------------ serialize

TEST(VarintTest, RoundTripsBoundaryValues) {
  for (std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull, 0xFFFFFFFFull,
        ~0ull}) {
    std::string buf;
    PutVarint(buf, v);
    std::size_t pos = 0;
    const auto decoded = GetVarint(buf, &pos);
    ASSERT_TRUE(decoded.has_value()) << v;
    EXPECT_EQ(*decoded, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, DetectsTruncation) {
  std::string buf;
  PutVarint(buf, 300);
  buf.pop_back();
  std::size_t pos = 0;
  EXPECT_FALSE(GetVarint(buf, &pos).has_value());
}

TEST(FieldsCodecTest, RoundTrips) {
  FieldMap fields{{"a", "1"}, {"banner", "SSH-2.0-OpenSSH"}, {"empty", ""}};
  const std::string encoded = EncodeFields(fields);
  const auto decoded = DecodeFields(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, fields);
}

TEST(FieldsCodecTest, EqualMapsEncodeIdentically) {
  FieldMap a{{"x", "1"}, {"y", "2"}};
  FieldMap b{{"y", "2"}, {"x", "1"}};
  EXPECT_EQ(EncodeFields(a), EncodeFields(b));
}

TEST(FieldsCodecTest, RejectsGarbage) {
  EXPECT_FALSE(DecodeFields("\xff\xff\xff").has_value());
  const std::string valid = EncodeFields({{"k", "v"}});
  EXPECT_FALSE(DecodeFields(valid + "x").has_value());  // trailing bytes
}

// ---------------------------------------------------------------------- delta

TEST(DeltaTest, ComputeAndApplyRoundTrip) {
  FieldMap before{{"a", "1"}, {"b", "2"}, {"c", "3"}};
  FieldMap after{{"a", "1"}, {"b", "changed"}, {"d", "new"}};
  const Delta delta = ComputeDelta(before, after);
  FieldMap state = before;
  ApplyDelta(state, delta);
  EXPECT_EQ(state, after);
}

TEST(DeltaTest, NoChangeYieldsEmptyDelta) {
  FieldMap state{{"a", "1"}, {"b", "2"}};
  EXPECT_TRUE(ComputeDelta(state, state).empty());
}

TEST(DeltaTest, DeltaIsMinimal) {
  FieldMap before{{"a", "1"}, {"b", "2"}, {"c", "3"}};
  FieldMap after = before;
  after["b"] = "2!";
  const Delta delta = ComputeDelta(before, after);
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_EQ(delta.ops[0].key, "b");
  EXPECT_EQ(delta.ops[0].kind, FieldOp::Kind::kSet);
}

TEST(DeltaTest, EncodesAndDecodes) {
  FieldMap before{{"a", "1"}, {"z", "26"}};
  FieldMap after{{"a", "2"}, {"m", "13"}};
  const Delta delta = ComputeDelta(before, after);
  const auto decoded = Delta::Decode(delta.Encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, delta);
}

TEST(DeltaTest, DecodeRejectsCorruptInput) {
  EXPECT_FALSE(Delta::Decode("\x01X").has_value());  // bad op kind
  const Delta delta = ComputeDelta({}, {{"k", "v"}});
  std::string encoded = delta.Encode();
  encoded.pop_back();
  EXPECT_FALSE(Delta::Decode(encoded).has_value());
}

TEST(DeltaTest, ApplyFromEmptyBuildsState) {
  FieldMap after{{"x", "1"}, {"y", "2"}};
  const Delta delta = ComputeDelta({}, after);
  FieldMap state;
  ApplyDelta(state, delta);
  EXPECT_EQ(state, after);
}

TEST(DeltaTest, RemovalDeltaEmptiesState) {
  FieldMap before{{"x", "1"}, {"y", "2"}};
  const Delta delta = ComputeDelta(before, {});
  EXPECT_EQ(delta.size(), 2u);
  FieldMap state = before;
  ApplyDelta(state, delta);
  EXPECT_TRUE(state.empty());
}

// ------------------------------------------------------------------------- kv

TEST(OrderedKvTest, PutGetDelete) {
  OrderedKv kv;
  kv.Put("k1", "v1");
  kv.Put("k2", "v2");
  EXPECT_EQ(kv.Get("k1"), "v1");
  EXPECT_FALSE(kv.Get("missing").has_value());
  EXPECT_TRUE(kv.Delete("k1"));
  EXPECT_FALSE(kv.Delete("k1"));
  EXPECT_FALSE(kv.Get("k1").has_value());
}

TEST(OrderedKvTest, OverwriteUpdatesBytes) {
  OrderedKv kv;
  kv.Put("key", "short");
  const auto initial = kv.total_bytes();
  kv.Put("key", "a much longer value than before");
  EXPECT_GT(kv.total_bytes(), initial);
  kv.Put("key", "s");
  EXPECT_LT(kv.total_bytes(), initial);
}

TEST(OrderedKvTest, ScanIsOrderedAndBounded) {
  OrderedKv kv;
  for (const char* k : {"b", "a", "d", "c", "e"}) kv.Put(k, k);
  std::string visited;
  kv.Scan("b", "e", [&](std::string_view key, std::string_view) {
    visited += key;
    return true;
  });
  EXPECT_EQ(visited, "bcd");
}

TEST(OrderedKvTest, ScanEarlyStop) {
  OrderedKv kv;
  for (const char* k : {"a", "b", "c"}) kv.Put(k, k);
  int count = 0;
  kv.Scan("a", "", [&](std::string_view, std::string_view) {
    return ++count < 2;
  });
  EXPECT_EQ(count, 2);
}

TEST(OrderedKvTest, SeekBefore) {
  OrderedKv kv;
  kv.Put("b", "1");
  kv.Put("d", "2");
  const auto hit = kv.SeekBefore("c");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->first, "b");
  EXPECT_FALSE(kv.SeekBefore("a").has_value());
  EXPECT_EQ(kv.SeekBefore("z")->first, "d");
}

TEST(OrderedKvTest, TierAccounting) {
  OrderedKv kv;
  kv.Put("hot", "data", Tier::kSsd);
  kv.Put("cold", "data", Tier::kHdd);
  EXPECT_EQ(kv.bytes_on(Tier::kSsd), 7u);
  EXPECT_EQ(kv.bytes_on(Tier::kHdd), 8u);
  EXPECT_TRUE(kv.SetTier("hot", Tier::kHdd));
  EXPECT_EQ(kv.bytes_on(Tier::kSsd), 0u);
  EXPECT_EQ(kv.bytes_on(Tier::kHdd), 15u);
  EXPECT_FALSE(kv.SetTier("missing", Tier::kSsd));
}

TEST(SeqnoCodecTest, PreservesOrder) {
  std::string prev = EncodeSeqno(0);
  for (std::uint64_t v : {1ull, 2ull, 255ull, 256ull, 1ull << 40, ~0ull}) {
    const std::string cur = EncodeSeqno(v);
    EXPECT_LT(prev, cur);
    EXPECT_EQ(DecodeSeqno(cur), v);
    prev = cur;
  }
}

// -------------------------------------------------------------------- journal

Delta SetDelta(const std::string& key, const std::string& value) {
  Delta d;
  d.ops.push_back({FieldOp::Kind::kSet, key, value});
  return d;
}

TEST(JournalTest, CurrentStateTracksAppends) {
  EventJournal journal;
  journal.Append("1.2.3.4", EventKind::kServiceFound, Timestamp{10},
                 SetDelta("svc.80/tcp.name", "HTTP"));
  journal.Append("1.2.3.4", EventKind::kServiceChanged, Timestamp{20},
                 SetDelta("svc.80/tcp.name", "HTTPS"));
  const core::ThreadRoleGuard role(journal.command_role());
  const FieldMap* state = journal.CurrentState("1.2.3.4");
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->at("svc.80/tcp.name"), "HTTPS");
  EXPECT_EQ(journal.event_count(), 2u);
}

TEST(JournalTest, EmptyDeltaRefreshJournalsNothing) {
  EventJournal journal;
  journal.Append("h", EventKind::kServiceFound, Timestamp{10},
                 SetDelta("f", "v"));
  const auto before = journal.event_count();
  journal.Append("h", EventKind::kEntityUpdated, Timestamp{20}, Delta{});
  EXPECT_EQ(journal.event_count(), before);
}

TEST(JournalTest, ReconstructAtTimestamps) {
  EventJournal journal;
  journal.Append("h", EventKind::kServiceFound, Timestamp{10},
                 SetDelta("a", "1"));
  journal.Append("h", EventKind::kServiceChanged, Timestamp{20},
                 SetDelta("a", "2"));
  journal.Append("h", EventKind::kServiceChanged, Timestamp{30},
                 SetDelta("a", "3"));

  EXPECT_FALSE(journal.ReconstructAt("h", Timestamp{5}).has_value());
  EXPECT_EQ(journal.ReconstructAt("h", Timestamp{10})->at("a"), "1");
  EXPECT_EQ(journal.ReconstructAt("h", Timestamp{25})->at("a"), "2");
  EXPECT_EQ(journal.ReconstructAt("h", Timestamp{99})->at("a"), "3");
  EXPECT_FALSE(journal.ReconstructAt("other", Timestamp{99}).has_value());
}

TEST(JournalTest, ReconstructionMatchesCurrentAfterManyEvents) {
  EventJournal::Options options;
  options.snapshot_every = 4;  // force several snapshots
  EventJournal journal(options);
  for (int i = 0; i < 50; ++i) {
    journal.Append("h", EventKind::kServiceChanged, Timestamp{i * 10},
                   SetDelta("field" + std::to_string(i % 7),
                            std::to_string(i)));
  }
  const auto reconstructed = journal.ReconstructAt("h", Timestamp{1000});
  ASSERT_TRUE(reconstructed.has_value());
  const core::ThreadRoleGuard role(journal.command_role());
  EXPECT_EQ(*reconstructed, *journal.CurrentState("h"));
  EXPECT_GT(journal.snapshot_count(), 5u);
}

TEST(JournalTest, SnapshotsBoundReplayLength) {
  EventJournal::Options options;
  options.snapshot_every = 8;
  EventJournal journal(options);
  for (int i = 0; i < 100; ++i) {
    journal.Append("h", EventKind::kServiceChanged, Timestamp{i},
                   SetDelta("f", std::to_string(i)));
  }
  journal.ReconstructAt("h", Timestamp{99});
  EXPECT_LE(journal.max_replay_length(), 8u);
}

TEST(JournalTest, HistoryPreservesAllEvents) {
  EventJournal journal;
  journal.Append("h", EventKind::kServiceFound, Timestamp{1},
                 SetDelta("a", "1"));
  journal.Append("h", EventKind::kServiceRemoved, Timestamp{2},
                 ComputeDelta({{"a", "1"}}, {}));
  const auto history = journal.History("h");
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].kind, EventKind::kServiceFound);
  EXPECT_EQ(history[1].kind, EventKind::kServiceRemoved);
  EXPECT_EQ(history[0].at, Timestamp{1});
}

TEST(JournalTest, ColdDataMigratesToHdd) {
  EventJournal::Options options;
  options.snapshot_every = 4;
  EventJournal journal(options);
  for (int i = 0; i < 40; ++i) {
    journal.Append("h", EventKind::kServiceChanged, Timestamp{i},
                   SetDelta("f" + std::to_string(i), "v"));
  }
  // After multiple snapshots, historical rows must live on HDD while the
  // journal tail stays on SSD.
  EXPECT_GT(journal.bytes_on(Tier::kHdd), 0u);
  EXPECT_GT(journal.bytes_on(Tier::kSsd), 0u);
}

TEST(JournalTest, DeltaEncodingBeatsFullRecords) {
  EventJournal journal;
  // One big record refreshed repeatedly with a single changing field.
  FieldMap state;
  for (int f = 0; f < 25; ++f) {
    state["field" + std::to_string(f)] = std::string(30, 'x');
  }
  FieldMap prev;
  for (int refresh = 0; refresh < 20; ++refresh) {
    state["counter"] = std::to_string(refresh);
    journal.Append("h", EventKind::kServiceChanged, Timestamp{refresh},
                   ComputeDelta(prev, state));
    prev = state;
  }
  // "Only differences are stored to disk": after the first full write, the
  // deltas are tiny compared to re-journaling the whole record.
  EXPECT_LT(journal.delta_bytes(),
            journal.full_record_bytes_equivalent() / 5);
}

TEST(JournalTest, EntitiesAreIsolated) {
  EventJournal journal;
  journal.Append("a", EventKind::kServiceFound, Timestamp{1},
                 SetDelta("x", "1"));
  journal.Append("ab", EventKind::kServiceFound, Timestamp{1},
                 SetDelta("y", "2"));
  const core::ThreadRoleGuard role(journal.command_role());
  EXPECT_EQ(journal.CurrentState("a")->size(), 1u);
  EXPECT_EQ(journal.CurrentState("ab")->size(), 1u);
  EXPECT_EQ(journal.History("a").size(), 1u);
  EXPECT_FALSE(journal.CurrentState("a")->contains("y"));
}

// ------------------------------------------------------------------- sharding

namespace {

void FillJournal(EventJournal& journal, int entities, int events_each) {
  for (int e = 0; e < entities; ++e) {
    const std::string id = "host/" + std::to_string(e);
    for (int i = 0; i < events_each; ++i) {
      journal.Append(id, EventKind::kServiceChanged,
                     Timestamp{static_cast<std::int64_t>(i + 1)},
                     SetDelta("f" + std::to_string(i % 5),
                              "v" + std::to_string(i)));
    }
  }
}

std::vector<std::pair<std::string, std::string>> AllRows(
    const EventJournal& journal) {
  std::vector<std::pair<std::string, std::string>> rows;
  journal.ScanAll([&](std::string_view key, std::string_view value) {
    rows.emplace_back(key, value);
    return true;
  });
  return rows;
}

}  // namespace

TEST(JournalShardingTest, ContentIsShardCountIndependent) {
  // The lock-striped journal must be a pure refactor of the single-table
  // one: identical rows in identical canonical order, identical counters,
  // for any shard count.
  EventJournal::Options one;
  one.shards = 1;
  EventJournal::Options many;
  many.shards = 16;
  EventJournal a(one);
  EventJournal b(many);
  FillJournal(a, 40, 25);
  FillJournal(b, 40, 25);

  EXPECT_EQ(a.shard_count(), 1u);
  EXPECT_EQ(b.shard_count(), 16u);
  EXPECT_EQ(AllRows(a), AllRows(b));
  EXPECT_EQ(a.RowCount(), b.RowCount());
  EXPECT_EQ(a.event_count(), b.event_count());
  EXPECT_EQ(a.snapshot_count(), b.snapshot_count());
  EXPECT_EQ(a.delta_bytes(), b.delta_bytes());
  EXPECT_EQ(a.snapshot_bytes(), b.snapshot_bytes());
  EXPECT_EQ(a.bytes_on(Tier::kSsd), b.bytes_on(Tier::kSsd));
  EXPECT_EQ(a.bytes_on(Tier::kHdd), b.bytes_on(Tier::kHdd));
  const core::ThreadRoleGuard role_a(a.command_role());
  const core::ThreadRoleGuard role_b(b.command_role());
  for (int e = 0; e < 40; ++e) {
    const std::string id = "host/" + std::to_string(e);
    ASSERT_EQ(*a.CurrentState(id), *b.CurrentState(id)) << id;
    ASSERT_EQ(a.Watermark(id), b.Watermark(id)) << id;
  }
}

TEST(JournalShardingTest, ScanAllVisitsCanonicalOrderAndStopsEarly) {
  EventJournal::Options options;
  options.shards = 8;
  EventJournal journal(options);
  FillJournal(journal, 20, 10);

  std::string prev;
  std::size_t visited = 0;
  journal.ScanAll([&](std::string_view key, std::string_view) {
    EXPECT_LT(prev, std::string(key));  // strictly ascending, cross-shard
    prev = std::string(key);
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, journal.RowCount());

  std::size_t limited = 0;
  journal.ScanAll([&](std::string_view, std::string_view) {
    return ++limited < 5;
  });
  EXPECT_EQ(limited, 5u);
}

TEST(JournalConcurrencyTest, ReadersRunConcurrentlyWithAppends) {
  // 4 reader threads hammer SnapshotState / ReconstructAt / History /
  // Watermark / ScanAll while the writer keeps appending. Under TSan this
  // proves the lock striping; everywhere it proves snapshots are coherent
  // (a watermark of w implies exactly w journaled events for the entity).
  EventJournal::Options options;
  options.shards = 4;
  options.snapshot_every = 8;
  EventJournal journal(options);
  constexpr int kEntities = 16;
  constexpr int kEventsPerEntity = 400;
  const auto entity_id = [](int e) { return "host/" + std::to_string(e); };

  int reader_count = 4;
  if (const char* env = std::getenv("CENSYSIM_THREADS")) {
    if (std::atoi(env) > 0) reader_count = std::atoi(env);
  }
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < reader_count; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t local = 0;
      std::uint64_t last_wm[kEntities] = {};
      while (!done.load(std::memory_order_acquire)) {
        const int e = static_cast<int>(local + r) % kEntities;
        const std::string id = entity_id(e);
        const auto snap = journal.SnapshotState(id);
        if (snap.has_value()) {
          // Watermark w == number of appends observed; each append sets
          // field "seq" to its ordinal, so the snapshot must agree.
          ASSERT_EQ(snap->fields.at("seq"),
                    std::to_string(snap->watermark - 1));
          // Watermarks never regress for a given reader.
          ASSERT_GE(snap->watermark, last_wm[e]);
          last_wm[e] = snap->watermark;
          const auto then = journal.ReconstructAt(
              id, Timestamp{static_cast<std::int64_t>(snap->watermark)});
          ASSERT_TRUE(then.has_value());
          ASSERT_EQ(then->at("seq"), std::to_string(snap->watermark - 1));
          ASSERT_GE(journal.History(id).size(), snap->watermark);
        }
        if (local % 64 == 0) {
          journal.ScanAll(
              [&](std::string_view, std::string_view) { return true; });
        }
        ++local;
      }
      reads.fetch_add(local, std::memory_order_relaxed);
    });
  }

  for (int i = 0; i < kEventsPerEntity; ++i) {
    for (int e = 0; e < kEntities; ++e) {
      Delta delta;
      delta.ops.push_back({FieldOp::Kind::kSet, "payload",
                           std::string(16, static_cast<char>('a' + i % 26))});
      delta.ops.push_back({FieldOp::Kind::kSet, "seq", std::to_string(i)});
      journal.Append(entity_id(e), EventKind::kServiceChanged,
                     Timestamp{static_cast<std::int64_t>(i + 1)}, delta);
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_GT(reads.load(), 0u);
  for (int e = 0; e < kEntities; ++e) {
    EXPECT_EQ(journal.Watermark(entity_id(e)),
              static_cast<std::uint64_t>(kEventsPerEntity));
  }
}

}  // namespace
}  // namespace censys::storage
