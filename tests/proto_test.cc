// Unit tests for the protocol registry, banner synthesis, and TLS layer.
#include <gtest/gtest.h>

#include <set>

#include "proto/banner.h"
#include "proto/protocol.h"
#include "proto/tls.h"

namespace censys::proto {
namespace {

TEST(ProtocolRegistryTest, EveryProtocolHasAName) {
  std::set<std::string_view> names;
  for (const ProtocolInfo& info : AllProtocols()) {
    if (info.protocol == Protocol::kUnknown) continue;
    EXPECT_FALSE(info.name.empty());
    EXPECT_TRUE(names.insert(info.name).second)
        << "duplicate name " << info.name;
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kProtocolCount) - 1);
}

TEST(ProtocolRegistryTest, NameRoundTrips) {
  for (const ProtocolInfo& info : AllProtocols()) {
    if (info.protocol == Protocol::kUnknown) continue;
    EXPECT_EQ(FromName(info.name), info.protocol);
  }
  EXPECT_EQ(FromName("modbus"), Protocol::kModbus);  // case-insensitive
  EXPECT_FALSE(FromName("NOPE_PROTOCOL").has_value());
}

TEST(ProtocolRegistryTest, IanaAssignments) {
  auto on80 = AssignedToPort(80, Transport::kTcp);
  ASSERT_EQ(on80.size(), 1u);
  EXPECT_EQ(on80[0], Protocol::kHttp);

  auto on53udp = AssignedToPort(53, Transport::kUdp);
  ASSERT_EQ(on53udp.size(), 1u);
  EXPECT_EQ(on53udp[0], Protocol::kDns);

  EXPECT_TRUE(AssignedToPort(53, Transport::kTcp).empty());
  EXPECT_EQ(PrimaryPort(Protocol::kModbus), Port{502});
  EXPECT_EQ(PrimaryPort(Protocol::kS7), Port{102});
}

TEST(ProtocolRegistryTest, IcsListMatchesTable4) {
  const auto ics = IcsProtocols();
  EXPECT_EQ(ics.size(), 21u);
  for (Protocol p : ics) {
    EXPECT_TRUE(GetInfo(p).is_ics) << Name(p);
    EXPECT_GT(GetInfo(p).population_weight, 0.0) << Name(p);
  }
  // Non-ICS protocols must not be flagged.
  EXPECT_FALSE(GetInfo(Protocol::kHttp).is_ics);
  EXPECT_FALSE(GetInfo(Protocol::kSsh).is_ics);
}

TEST(ProtocolRegistryTest, ServerTalksFirstProtocols) {
  for (Protocol p : {Protocol::kSsh, Protocol::kFtp, Protocol::kSmtp,
                     Protocol::kTelnet, Protocol::kMysql}) {
    EXPECT_TRUE(GetInfo(p).server_talks_first) << Name(p);
  }
  EXPECT_FALSE(GetInfo(Protocol::kHttp).server_talks_first);
  EXPECT_FALSE(GetInfo(Protocol::kModbus).server_talks_first);
}

TEST(ProtocolRegistryTest, HttpDominatesPopulationWeights) {
  double http = GetInfo(Protocol::kHttp).population_weight +
                GetInfo(Protocol::kHttps).population_weight;
  double total = 0;
  for (const ProtocolInfo& info : AllProtocols()) {
    if (!info.is_ics) total += info.population_weight;
  }
  EXPECT_GT(http / total, 0.5);  // "dominated by HTTP(S)" (§6.3)
}

// --------------------------------------------------------------------- Banner

TEST(BannerTest, DeterministicInSeed) {
  for (Protocol p : {Protocol::kSsh, Protocol::kFtp, Protocol::kModbus}) {
    EXPECT_EQ(GenerateBanner(p, 12345), GenerateBanner(p, 12345));
    EXPECT_EQ(GenerateSoftware(p, 777), GenerateSoftware(p, 777));
  }
}

TEST(BannerTest, SeedsVaryOutput) {
  std::set<std::string> banners;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    banners.insert(GenerateBanner(Protocol::kSsh, seed));
  }
  EXPECT_GT(banners.size(), 3u);  // multiple software/version combinations
}

TEST(BannerTest, SshBannerShape) {
  const std::string b = GenerateBanner(Protocol::kSsh, 42);
  EXPECT_EQ(b.rfind("SSH-2.0-", 0), 0u) << b;
}

TEST(BannerTest, FtpBannerShape) {
  const std::string b = GenerateBanner(Protocol::kFtp, 42);
  EXPECT_EQ(b.rfind("220 ", 0), 0u) << b;
}

TEST(BannerTest, IcsBannersIncludeDeviceIdentity) {
  for (Protocol p : IcsProtocols()) {
    const DeviceIdentity dev = GenerateDevice(p, 99);
    EXPECT_FALSE(dev.manufacturer.empty()) << Name(p);
    EXPECT_FALSE(dev.model.empty()) << Name(p);
    const std::string banner = GenerateBanner(p, 99);
    EXPECT_NE(banner.find(dev.manufacturer), std::string::npos)
        << Name(p) << ": " << banner;
  }
}

TEST(BannerTest, CpeFormat) {
  const SoftwareInfo sw = GenerateSoftware(Protocol::kSsh, 3);
  const std::string cpe = sw.ToCpe();
  EXPECT_EQ(cpe.rfind("cpe:2.3:a:", 0), 0u) << cpe;
  EXPECT_NE(cpe.find(sw.product), std::string::npos);
}

TEST(BannerTest, WrongProtocolResponsesIdentifyServerFirstProtocols) {
  // An SSH service answers any probe with its greeting.
  const std::string r =
      WrongProtocolResponse(Protocol::kSsh, Protocol::kHttp, 5);
  EXPECT_EQ(r.rfind("SSH-", 0), 0u);
  // SMTP responds to HTTP with a numeric error (LZR's canonical example).
  const std::string smtp =
      WrongProtocolResponse(Protocol::kSmtp, Protocol::kHttp, 5);
  EXPECT_FALSE(smtp.empty());
  // Modbus silently ignores an HTTP probe.
  EXPECT_TRUE(WrongProtocolResponse(Protocol::kModbus, Protocol::kHttp, 5)
                  .empty());
}

TEST(BannerTest, SomeHttpPagesMentionOperatingSystem) {
  // Raw material for the Shodan CODESYS keyword mislabeling (Table 4).
  int hits = 0;
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    if (GeneratePageKeywords(seed).find("operating system") !=
        std::string::npos)
      ++hits;
  }
  EXPECT_GT(hits, 10);
  EXPECT_LT(hits, 200);
}

// ------------------------------------------------------------------------ TLS

TEST(TlsTest, HttpsAlwaysHasTls) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    EXPECT_TRUE(DeriveTls(Protocol::kHttps, seed).has_value());
  }
}

TEST(TlsTest, PlainHttpHasNoTls) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    EXPECT_FALSE(DeriveTls(Protocol::kHttp, seed).has_value());
  }
}

TEST(TlsTest, ForceOverridesProtocolDefault) {
  EXPECT_TRUE(DeriveTls(Protocol::kHttp, 7, /*force=*/true).has_value());
}

TEST(TlsTest, JarmIsStableAndStackKeyed) {
  const auto a = DeriveTls(Protocol::kHttps, 1001);
  const auto b = DeriveTls(Protocol::kHttps, 1001);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->Jarm(), b->Jarm());
  EXPECT_EQ(a->Jarm().size(), 62u);

  // Same stack config on a different host -> same JARM (the pivot property).
  TlsConfig x = *a;
  TlsConfig y = *a;
  y.cert_seed ^= 0xdead;  // different cert, same stack
  EXPECT_EQ(x.Jarm(), y.Jarm());

  TlsConfig z = *a;
  z.stack_id += 1;
  EXPECT_NE(x.Jarm(), z.Jarm());
}

TEST(TlsTest, Ja4sShape) {
  const auto cfg = DeriveTls(Protocol::kHttps, 2002);
  ASSERT_TRUE(cfg.has_value());
  const std::string ja4s = cfg->Ja4s();
  EXPECT_EQ(ja4s[0], 't');
  EXPECT_EQ(std::count(ja4s.begin(), ja4s.end(), '_'), 2);
}

TEST(TlsTest, VersionMixFavorsModernTls) {
  int tls13 = 0, legacy = 0, total = 0;
  for (std::uint64_t seed = 0; seed < 2000; ++seed) {
    const auto cfg = DeriveTls(Protocol::kHttps, seed);
    ASSERT_TRUE(cfg.has_value());
    ++total;
    if (cfg->version == TlsVersion::kTls13) ++tls13;
    if (cfg->version == TlsVersion::kTls10 ||
        cfg->version == TlsVersion::kTls11)
      ++legacy;
  }
  EXPECT_GT(tls13, total * 2 / 5);
  EXPECT_LT(legacy, total / 10);
}

}  // namespace
}  // namespace censys::proto
