// Unit tests for the core module: addresses, CIDR math, RNG statistics,
// SHA-256 vectors, string utilities, the simulated clock, the executor
// thread pool, and the metrics registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <map>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/cidr.h"
#include "core/clock.h"
#include "core/crc32c.h"
#include "core/fault.h"
#include "core/executor.h"
#include "core/metrics.h"
#include "core/ring.h"
#include "core/rng.h"
#include "core/sha256.h"
#include "core/strings.h"
#include "core/thread_safety.h"
#include "core/types.h"

namespace censys {
namespace {

// ---------------------------------------------------------------- IPv4Address

TEST(IPv4AddressTest, ParsesValidDottedQuad) {
  const auto a = IPv4Address::Parse("192.0.2.17");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->value(), 0xC0000211u);
  EXPECT_EQ(a->ToString(), "192.0.2.17");
}

TEST(IPv4AddressTest, ParsesBoundaryValues) {
  EXPECT_EQ(IPv4Address::Parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(IPv4Address::Parse("255.255.255.255")->value(), 0xFFFFFFFFu);
}

TEST(IPv4AddressTest, RejectsMalformedInput) {
  EXPECT_FALSE(IPv4Address::Parse("").has_value());
  EXPECT_FALSE(IPv4Address::Parse("1.2.3").has_value());
  EXPECT_FALSE(IPv4Address::Parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(IPv4Address::Parse("1.2.3.256").has_value());
  EXPECT_FALSE(IPv4Address::Parse("1.2.3.-4").has_value());
  EXPECT_FALSE(IPv4Address::Parse("a.b.c.d").has_value());
  EXPECT_FALSE(IPv4Address::Parse("1.2.3.4 ").has_value());
  EXPECT_FALSE(IPv4Address::Parse("01.2.3.4").has_value());
}

TEST(IPv4AddressTest, OctetsAreNetworkOrder) {
  const IPv4Address a(0x01020304u);
  EXPECT_EQ(a.octet(0), 1);
  EXPECT_EQ(a.octet(1), 2);
  EXPECT_EQ(a.octet(2), 3);
  EXPECT_EQ(a.octet(3), 4);
}

TEST(IPv4AddressTest, RoundTripsThroughString) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const IPv4Address a(static_cast<std::uint32_t>(rng.NextU64()));
    EXPECT_EQ(IPv4Address::Parse(a.ToString()), a);
  }
}

// ------------------------------------------------------------------ ServiceKey

TEST(ServiceKeyTest, PackUnpackRoundTrips) {
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    ServiceKey key{IPv4Address(static_cast<std::uint32_t>(rng.NextU64())),
                   static_cast<Port>(rng.NextBelow(65536)),
                   rng.Bernoulli(0.5) ? Transport::kTcp : Transport::kUdp};
    EXPECT_EQ(ServiceKey::Unpack(key.Pack()), key);
  }
}

TEST(ServiceKeyTest, ToStringIsReadable) {
  const ServiceKey key{IPv4Address(0x7F000001u), 443, Transport::kTcp};
  EXPECT_EQ(key.ToString(), "127.0.0.1:443/tcp");
}

// ------------------------------------------------------------------ Timestamp

TEST(TimestampTest, ArithmeticIsConsistent) {
  const Timestamp t0 = Timestamp::FromDays(2);
  const Timestamp t1 = t0 + Duration::Hours(36);
  EXPECT_DOUBLE_EQ((t1 - t0).ToHours(), 36.0);
  EXPECT_DOUBLE_EQ(t1.ToDays(), 3.5);
  EXPECT_LT(t0, t1);
}

TEST(TimestampTest, ToStringFormatsDayAndTime) {
  EXPECT_EQ((Timestamp::FromDays(12) + Duration::Hours(7.5)).ToString(),
            "d12 07:30");
}

// ----------------------------------------------------------------------- Cidr

TEST(CidrTest, ParseAndProperties) {
  const auto c = Cidr::Parse("10.1.0.0/16");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->size(), 65536u);
  EXPECT_TRUE(c->Contains(*IPv4Address::Parse("10.1.200.7")));
  EXPECT_FALSE(c->Contains(*IPv4Address::Parse("10.2.0.0")));
  EXPECT_EQ(c->ToString(), "10.1.0.0/16");
}

TEST(CidrTest, BaseIsMaskedToBoundary) {
  const Cidr c(*IPv4Address::Parse("10.1.2.3"), 24);
  EXPECT_EQ(c.base().ToString(), "10.1.2.0");
}

TEST(CidrTest, RejectsMalformed) {
  EXPECT_FALSE(Cidr::Parse("10.0.0.0").has_value());
  EXPECT_FALSE(Cidr::Parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Cidr::Parse("10.0.0.0/x").has_value());
  EXPECT_FALSE(Cidr::Parse("300.0.0.0/8").has_value());
}

TEST(CidrTest, ContainsNestedPrefix) {
  const Cidr outer(*IPv4Address::Parse("10.0.0.0"), 8);
  const Cidr inner(*IPv4Address::Parse("10.9.0.0"), 16);
  EXPECT_TRUE(outer.Contains(inner));
  EXPECT_FALSE(inner.Contains(outer));
}

TEST(CidrTest, SlashZeroCoversEverything) {
  const Cidr all(IPv4Address(0), 0);
  EXPECT_EQ(all.size(), std::uint64_t{1} << 32);
  EXPECT_TRUE(all.Contains(IPv4Address(0xFFFFFFFFu)));
}

// -------------------------------------------------------------------- CidrSet

TEST(CidrSetTest, MembershipAndMerging) {
  CidrSet set;
  set.Insert(*Cidr::Parse("10.0.0.0/24"));
  set.Insert(*Cidr::Parse("10.0.1.0/24"));  // adjacent: should merge
  set.Insert(*Cidr::Parse("192.168.0.0/16"));
  EXPECT_TRUE(set.Contains(*IPv4Address::Parse("10.0.0.200")));
  EXPECT_TRUE(set.Contains(*IPv4Address::Parse("10.0.1.5")));
  EXPECT_FALSE(set.Contains(*IPv4Address::Parse("10.0.2.0")));
  EXPECT_TRUE(set.Contains(*IPv4Address::Parse("192.168.55.1")));
  EXPECT_EQ(set.AddressCount(), 512u + 65536u);
  EXPECT_EQ(set.range_count(), 2u);
}

TEST(CidrSetTest, OverlappingInsertsMerge) {
  CidrSet set;
  set.Insert(*Cidr::Parse("10.0.0.0/16"));
  set.Insert(*Cidr::Parse("10.0.128.0/17"));  // inside the /16
  EXPECT_EQ(set.AddressCount(), 65536u);
  EXPECT_EQ(set.range_count(), 1u);
}

TEST(CidrSetTest, InsertBridgingTwoRanges) {
  CidrSet set;
  set.Insert(*Cidr::Parse("10.0.0.0/24"));
  set.Insert(*Cidr::Parse("10.0.2.0/24"));
  EXPECT_EQ(set.range_count(), 2u);
  set.Insert(*Cidr::Parse("10.0.1.0/24"));  // bridges the gap
  EXPECT_EQ(set.range_count(), 1u);
  EXPECT_EQ(set.AddressCount(), 768u);
}

TEST(CidrSetTest, EmptySetContainsNothing) {
  CidrSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.Contains(IPv4Address(0)));
  EXPECT_EQ(set.AddressCount(), 0u);
}

// ------------------------------------------------------------------------ Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(9);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(10);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.NextExponential(7.0);
  EXPECT_NEAR(sum / kN, 7.0, 0.15);
}

TEST(RngTest, NormalHasRequestedMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.NextNormal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, PoissonMatchesMeanSmallAndLarge) {
  Rng rng(12);
  for (const double mean : {0.5, 4.0, 80.0}) {
    double sum = 0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i)
      sum += static_cast<double>(rng.NextPoisson(mean));
    EXPECT_NEAR(sum / kN, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
}

TEST(RngTest, GeometricMatchesMean) {
  Rng rng(13);
  const double p = 0.2;
  double sum = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.NextGeometric(p));
  // mean failures before success = (1-p)/p = 4.
  EXPECT_NEAR(sum / kN, 4.0, 0.15);
}

TEST(RngTest, PickWeightedFollowsWeights) {
  Rng rng(14);
  const double weights[] = {1.0, 3.0, 6.0};
  int counts[3] = {0, 0, 0};
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[rng.PickWeighted(weights)];
  EXPECT_NEAR(counts[0] / double(kN), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(kN), 0.3, 0.015);
  EXPECT_NEAR(counts[2] / double(kN), 0.6, 0.015);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(99);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  Rng a2 = parent.Fork(1);  // same stream id -> same stream
  EXPECT_EQ(a.NextU64(), a2.NextU64());
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 3);
}

TEST(ZipfSamplerTest, RanksAreInRangeAndMonotonicallyPopular) {
  Rng rng(21);
  ZipfSampler zipf(1000, 1.1);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 200000; ++i) {
    const std::uint64_t r = zipf.Sample(rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 1000u);
    ++counts[r];
  }
  // Rank 1 should dominate rank 10 which dominates rank 100 (smooth decay).
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[100]);
  // Ratio count(1)/count(2) should approximate 2^s within tolerance.
  const double ratio = static_cast<double>(counts[1]) / counts[2];
  EXPECT_NEAR(ratio, std::pow(2.0, 1.1), 0.35);
}

// --------------------------------------------------------------------- Sha256

TEST(Sha256Test, Fips180EmptyString) {
  EXPECT_EQ(
      ToHex(Sha256::Hash("")),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Fips180Abc) {
  EXPECT_EQ(
      ToHex(Sha256::Hash("abc")),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, Fips180TwoBlockMessage) {
  EXPECT_EQ(
      ToHex(Sha256::Hash(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(
      ToHex(h.Finish()),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= data.size(); ++split) {
    Sha256 h;
    h.Update(data.substr(0, split));
    h.Update(data.substr(split));
    EXPECT_EQ(h.Finish(), Sha256::Hash(data)) << "split=" << split;
  }
}

TEST(Sha256Test, DigestPrefixIsBigEndian) {
  const auto d = Sha256::Hash("abc");
  EXPECT_EQ(DigestPrefix64(d), 0xba7816bf8f01cfeaull);
}

// -------------------------------------------------------------------- Strings

TEST(StringsTest, SplitPreservesEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitWhitespaceSkipsRuns) {
  const auto parts = SplitWhitespace("  alpha \t beta\ngamma  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "alpha");
  EXPECT_EQ(parts[2], "gamma");
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  x y  "), "x y");
  EXPECT_EQ(TrimWhitespace("\t\n"), "");
  EXPECT_EQ(TrimWhitespace(""), "");
}

TEST(StringsTest, CaseHelpers) {
  EXPECT_EQ(ToLower("MixedCASE123"), "mixedcase123");
  EXPECT_TRUE(EqualsIgnoreCase("Modbus", "MODBUS"));
  EXPECT_FALSE(EqualsIgnoreCase("Modbus", "Modbus7"));
  EXPECT_TRUE(ContainsIgnoreCase("Apache httpd Server", "HTTPD"));
  EXPECT_FALSE(ContainsIgnoreCase("Apache", "nginx"));
  EXPECT_TRUE(ContainsIgnoreCase("anything", ""));
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("SSH-2.0-OpenSSH", "SSH-"));
  EXPECT_FALSE(StartsWith("SSH", "SSH-"));
  EXPECT_TRUE(EndsWith("report.json", ".json"));
  EXPECT_FALSE(EndsWith("x", ".json"));
}

TEST(StringsTest, GlobMatch) {
  EXPECT_TRUE(GlobMatch("*", "anything"));
  EXPECT_TRUE(GlobMatch("SSH-*", "SSH-2.0-OpenSSH_8.9p1"));
  EXPECT_TRUE(GlobMatch("*nginx*", "Server: nginx/1.18.0"));
  EXPECT_TRUE(GlobMatch("a?c", "abc"));
  EXPECT_FALSE(GlobMatch("a?c", "ac"));
  EXPECT_FALSE(GlobMatch("nginx", "Server: nginx"));
  EXPECT_TRUE(GlobMatch("**", ""));
  EXPECT_TRUE(GlobMatch("a*b*c", "aXXbYYc"));
  EXPECT_FALSE(GlobMatch("a*b*c", "aXXcYYb"));
}

TEST(StringsTest, HumanCount) {
  EXPECT_EQ(HumanCount(49), "49");
  EXPECT_EQ(HumanCount(1200), "1.2K");
  EXPECT_EQ(HumanCount(13100), "13.1K");
  EXPECT_EQ(HumanCount(42000), "42K");
  EXPECT_EQ(HumanCount(794000000), "794M");
  EXPECT_EQ(HumanCount(3100000000ull), "3.1B");
}

TEST(StringsTest, Fnv1aIsStable) {
  // FNV-1a published test vector.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
}

// ---------------------------------------------------------------------- Clock

TEST(ClockTest, AdvanceIsMonotonic) {
  SimClock clock;
  clock.Advance(Duration::Hours(2));
  EXPECT_EQ(clock.now().minutes, 120);
  clock.AdvanceTo(Timestamp{100});  // earlier: no-op
  EXPECT_EQ(clock.now().minutes, 120);
  clock.AdvanceTo(Timestamp{150});
  EXPECT_EQ(clock.now().minutes, 150);
}

TEST(EventQueueTest, RunsInTimeThenInsertionOrder) {
  SimClock clock;
  EventQueue queue;
  std::vector<int> order;
  queue.ScheduleAt(Timestamp{10}, [&](Timestamp) { order.push_back(2); });
  queue.ScheduleAt(Timestamp{5}, [&](Timestamp) { order.push_back(1); });
  queue.ScheduleAt(Timestamp{10}, [&](Timestamp) { order.push_back(3); });
  queue.RunUntil(clock, Timestamp{20});
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.now().minutes, 20);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents) {
  SimClock clock;
  EventQueue queue;
  int fired = 0;
  queue.ScheduleAt(Timestamp{5}, [&](Timestamp t) {
    ++fired;
    queue.ScheduleAfter(t, Duration::Minutes(5), [&](Timestamp) { ++fired; });
  });
  queue.RunUntil(clock, Timestamp{30});
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, FutureEventsStayQueued) {
  SimClock clock;
  EventQueue queue;
  int fired = 0;
  queue.ScheduleAt(Timestamp{100}, [&](Timestamp) { ++fired; });
  queue.RunUntil(clock, Timestamp{50});
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(queue.size(), 1u);
  queue.RunUntil(clock, Timestamp{100});
  EXPECT_EQ(fired, 1);
}

// ------------------------------------------------------------------- Executor

TEST(ExecutorTest, ZeroThreadsRunsInlineInOrder) {
  Executor executor(0);
  EXPECT_EQ(executor.thread_count(), 0);
  std::vector<std::size_t> order;
  executor.ParallelFor(100, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ExecutorTest, EveryIndexRunsExactlyOnce) {
  Executor executor(4);
  EXPECT_EQ(executor.thread_count(), 4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  executor.ParallelFor(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ExecutorTest, PerIndexResultSlotsMatchSerialRun) {
  // The pipeline's contract: a pure function fanned out over result slots
  // gives the same vector regardless of thread count.
  auto run = [](int threads) {
    Executor executor(threads);
    std::vector<std::uint64_t> out(5000);
    executor.ParallelFor(out.size(), [&](std::size_t i) {
      out[i] = SplitMix64(static_cast<std::uint64_t>(i) * 0x9E3779B9u);
    });
    return out;
  };
  const auto serial = run(0);
  EXPECT_EQ(run(1), serial);
  EXPECT_EQ(run(3), serial);
  EXPECT_EQ(run(8), serial);
}

TEST(ExecutorTest, PropagatesFirstException) {
  Executor executor(3);
  EXPECT_THROW(executor.ParallelFor(64,
                                    [](std::size_t i) {
                                      if (i == 17) {
                                        throw std::runtime_error("boom");
                                      }
                                    }),
               std::runtime_error);
  // The pool survives a throwing batch and runs subsequent batches fully.
  std::atomic<int> count{0};
  executor.ParallelFor(64, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 64);
}

TEST(ExecutorTest, HandlesManySmallBatchesBackToBack) {
  Executor executor(2);
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    executor.ParallelFor(round % 5, [&](std::size_t i) { total += i + 1; });
  }
  // 200 rounds of n in {0,1,2,3,4}: 40 * (0 + 1 + 3 + 6 + 10).
  EXPECT_EQ(total.load(), 40u * 20u);
}

TEST(ExecutorTest, BroadcastRunsOnePerWorkerWhileCallerWorks) {
  Executor executor(3);
  std::atomic<int> worker_calls{0};
  std::vector<std::atomic<int>> per_worker(3);
  executor.Broadcast([&](std::size_t w) {
    per_worker[w].fetch_add(1, std::memory_order_relaxed);
    worker_calls.fetch_add(1, std::memory_order_relaxed);
  });
  // The caller keeps running while the broadcast is in flight — this is
  // the commit stage's overlap with interrogation workers.
  int caller_work = 0;
  for (int i = 0; i < 1000; ++i) caller_work += i;
  executor.JoinBroadcast();
  EXPECT_EQ(worker_calls.load(), 3);
  for (int w = 0; w < 3; ++w) EXPECT_EQ(per_worker[w].load(), 1) << w;
  EXPECT_EQ(caller_work, 499500);
}

TEST(ExecutorTest, BroadcastPropagatesWorkerExceptionAtJoin) {
  Executor executor(2);
  executor.Broadcast([](std::size_t w) {
    if (w == 1) throw std::runtime_error("worker died");
  });
  EXPECT_THROW(executor.JoinBroadcast(), std::runtime_error);
  // The pool survives and runs subsequent batches.
  std::atomic<int> count{0};
  executor.ParallelFor(10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ExecutorTest, BroadcastWithZeroWorkersIsANoOp) {
  Executor executor(0);
  bool ran = false;
  executor.Broadcast([&](std::size_t) { ran = true; });
  executor.JoinBroadcast();
  EXPECT_FALSE(ran);  // the caller is expected to run the work inline
}

// ------------------------------------------------------------------------ Ring

TEST(RingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(core::Ring<int>(1).capacity(), 2u);
  EXPECT_EQ(core::Ring<int>(2).capacity(), 2u);
  EXPECT_EQ(core::Ring<int>(3).capacity(), 4u);
  EXPECT_EQ(core::Ring<int>(1000).capacity(), 1024u);
}

TEST(RingTest, FifoSingleThreadedAndBoundaryConditions) {
  core::Ring<int> ring(4);
  int out = 0;
  EXPECT_FALSE(ring.TryPop(out));  // empty
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));  // full — backpressure, not blocking
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.TryPop(out));
    EXPECT_EQ(out, i);  // FIFO
  }
  EXPECT_FALSE(ring.TryPop(out));  // drained
}

TEST(RingTest, WraparoundReusesCellsAcrossManyCycles) {
  // Cursors pass the capacity boundary thousands of times; per-cell seq
  // counters must keep push/pop claims matched the whole way.
  core::Ring<std::uint64_t> ring(8);
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(ring.TryPush(i));
    ASSERT_TRUE(ring.TryPush(i * 2));
    ASSERT_TRUE(ring.TryPop(out));
    EXPECT_EQ(out, i);
    ASSERT_TRUE(ring.TryPop(out));
    EXPECT_EQ(out, i * 2);
  }
}

// MPMC stress: every pushed value must be popped exactly once, across
// producer/consumer thread counts, through a deliberately tiny ring so
// full/empty races happen constantly. Run under TSan in the sanitizer leg.
TEST(RingTest, MpmcStressTransfersEveryItemExactlyOnce) {
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr std::uint64_t kPerProducer = 20000;
  core::Ring<std::uint64_t> ring(16);

  std::atomic<std::uint64_t> popped_sum{0};
  std::atomic<std::uint64_t> popped_count{0};
  std::atomic<bool> done_producing{false};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t value =
            (static_cast<std::uint64_t>(p) << 32) | i;
        while (!ring.TryPush(value)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      std::uint64_t value = 0;
      for (;;) {
        if (ring.TryPop(value)) {
          popped_sum.fetch_add(value, std::memory_order_relaxed);
          popped_count.fetch_add(1, std::memory_order_relaxed);
        } else if (done_producing.load(std::memory_order_acquire)) {
          // One more pop covers items pushed between the failed pop and
          // the flag read.
          while (ring.TryPop(value)) {
            popped_sum.fetch_add(value, std::memory_order_relaxed);
            popped_count.fetch_add(1, std::memory_order_relaxed);
          }
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::size_t t = 0; t < static_cast<std::size_t>(kProducers); ++t) {
    threads[t].join();
  }
  done_producing.store(true, std::memory_order_release);
  for (std::size_t t = kProducers; t < threads.size(); ++t) threads[t].join();

  std::uint64_t want_sum = 0;
  for (int p = 0; p < kProducers; ++p) {
    for (std::uint64_t i = 0; i < kPerProducer; ++i) {
      want_sum += (static_cast<std::uint64_t>(p) << 32) | i;
    }
  }
  EXPECT_EQ(popped_count.load(), kProducers * kPerProducer);
  EXPECT_EQ(popped_sum.load(), want_sum);
}

// -------------------------------------------------------------------- SlotBoard

TEST(SlotBoardTest, PublishedSlotsBecomeReadyOthersStayPending) {
  core::SlotBoard<int> board(4);
  board.Reset(10);
  EXPECT_EQ(board.size(), 10u);
  for (std::size_t seq = 0; seq < 10; ++seq) EXPECT_FALSE(board.Ready(seq));
  board.Slot(3) = 33;
  board.Publish(3);
  EXPECT_TRUE(board.Ready(3));
  EXPECT_FALSE(board.Ready(2));
  EXPECT_FALSE(board.Ready(4));
  EXPECT_EQ(board.Slot(3), 33);
}

TEST(SlotBoardTest, ResetClearsReadyFlagsBetweenBatches) {
  core::SlotBoard<int> board(2);
  board.Reset(6);
  for (std::size_t seq = 0; seq < 6; ++seq) board.Publish(seq);
  board.Reset(6);
  for (std::size_t seq = 0; seq < 6; ++seq) {
    EXPECT_FALSE(board.Ready(seq)) << seq;
  }
  // Shrinking and regrowing across resets keeps slots addressable.
  board.Reset(2);
  board.Reset(64);
  for (std::size_t seq = 0; seq < 64; ++seq) EXPECT_FALSE(board.Ready(seq));
  board.Publish(63);
  EXPECT_TRUE(board.Ready(63));
}

// Workers publish out of order; the consumer walks seqs strictly in order,
// spinning on Ready — the group-commit drain loop in miniature. The
// acquire/release pair on the ready flag must make the slot value visible.
TEST(SlotBoardTest, CrossThreadPublishIsObservedInSequenceOrder) {
  constexpr std::size_t kN = 4096;
  core::SlotBoard<std::uint64_t> board(8);
  board.Reset(kN);

  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      // Worker w owns seqs w, w+4, w+8, ... and publishes them backwards,
      // so the consumer always sees gaps.
      for (std::size_t seq = kN - 4 + static_cast<std::size_t>(w);
           seq < kN; seq -= 4) {
        board.Slot(seq) = seq * 3;
        board.Publish(seq);
        if (seq < 4) break;
      }
    });
  }
  for (std::size_t seq = 0; seq < kN; ++seq) {
    while (!board.Ready(seq)) std::this_thread::yield();
    EXPECT_EQ(board.Slot(seq), seq * 3);
  }
  for (std::thread& t : workers) t.join();
}

// -------------------------------------------------------------------- metrics

TEST(MetricsTest, CounterAccumulatesAndRegistryReads) {
  metrics::Registry registry;
  registry.GetCounter("censys.test.a").Add();
  registry.GetCounter("censys.test.a").Add(41);
  EXPECT_EQ(registry.CounterValue("censys.test.a"), 42u);
  EXPECT_EQ(registry.CounterValue("censys.test.absent"), 0u);
}

TEST(MetricsTest, GaugeSetsAndAdds) {
  metrics::Registry registry;
  metrics::Gauge& gauge = registry.GetGauge("censys.test.g");
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(registry.GaugeValue("censys.test.g"), 7);
}

TEST(MetricsTest, RegistryReturnsStableInstruments) {
  metrics::Registry registry;
  metrics::Counter& a = registry.GetCounter("censys.test.same");
  metrics::Counter& b = registry.GetCounter("censys.test.same");
  EXPECT_EQ(&a, &b);
}

TEST(MetricsTest, HistogramTracksCountSumMeanMax) {
  metrics::Registry registry;
  metrics::Histogram& h = registry.GetHistogram("censys.test.h");
  for (double v : {1.0, 2.0, 3.0, 10.0}) h.Observe(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_NEAR(h.sum(), 16.0, 1e-3);
  EXPECT_NEAR(h.Mean(), 4.0, 1e-3);
  EXPECT_NEAR(h.Max(), 10.0, 1e-3);
}

TEST(MetricsTest, HistogramQuantileIsBucketUpperBound) {
  metrics::Histogram h;
  for (int i = 0; i < 100; ++i) h.Observe(3.0);  // bucket [2, 4)
  EXPECT_EQ(h.Quantile(0.5), 4.0);
  EXPECT_EQ(h.Quantile(0.99), 4.0);
  h.Observe(1000.0);  // bucket [512, 1024)
  EXPECT_EQ(h.Quantile(0.999), 1024.0);
}

TEST(MetricsTest, UnboundHandlesAreNoOps) {
  metrics::CounterHandle counter;
  metrics::GaugeHandle gauge;
  metrics::HistogramHandle histogram;
  counter.Add();
  gauge.Set(5);
  histogram.Observe(1.0);
  { metrics::ScopedTimer timer(histogram); }
  // Nothing to assert beyond "does not crash": the handles hold no state.
  SUCCEED();
}

TEST(MetricsTest, RenderListsEveryInstrumentSorted) {
  metrics::Registry registry;
  registry.GetCounter("censys.b.counter").Add(7);
  registry.GetGauge("censys.a.gauge").Set(-2);
  registry.GetHistogram("censys.c.hist").Observe(5.0);
  const std::string text = registry.Render();
  const auto pos_a = text.find("censys.a.gauge");
  const auto pos_b = text.find("censys.b.counter");
  const auto pos_c = text.find("censys.c.hist");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  ASSERT_NE(pos_c, std::string::npos);
  EXPECT_LT(pos_a, pos_b);
  EXPECT_LT(pos_b, pos_c);
  EXPECT_NE(text.find("7"), std::string::npos);
}

TEST(MetricsTest, ScopedTimerRecordsIntoHistogram) {
  metrics::Registry registry;
  const metrics::HistogramHandle handle =
      metrics::BindHistogram(&registry, "censys.test.timer_us");
  { metrics::ScopedTimer timer(handle); }
  const metrics::Histogram* h =
      registry.FindHistogram("censys.test.timer_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
}

TEST(MetricsTest, CountersAreThreadSafe) {
  metrics::Registry registry;
  metrics::Counter& counter = registry.GetCounter("censys.test.mt");
  metrics::Histogram& hist = registry.GetHistogram("censys.test.mt_us");
  Executor executor(4);
  executor.ParallelFor(20000, [&](std::size_t i) {
    counter.Add();
    hist.Observe(static_cast<double>(i % 64));
  });
  EXPECT_EQ(counter.value(), 20000u);
  EXPECT_EQ(hist.count(), 20000u);
}

// ---------------------------------------------- thread-safety primitives

TEST(ThreadSafetyTest, MutexLockExcludesConcurrentWriters) {
  core::Mutex mu;
  int counter = 0;
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&]() {
      for (int i = 0; i < 5000; ++i) {
        const core::MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(counter, 20000);
}

TEST(ThreadSafetyTest, ReaderLockAdmitsConcurrentReaders) {
  core::SharedMutex mu;
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&]() {
      for (int i = 0; i < 200; ++i) {
        const core::ReaderLock lock(mu);
        const int now = concurrent.fetch_add(1) + 1;
        int seen = peak.load();
        while (now > seen && !peak.compare_exchange_weak(seen, now)) {
        }
        concurrent.fetch_sub(1);
      }
    });
  }
  for (std::thread& r : readers) r.join();
  EXPECT_EQ(concurrent.load(), 0);
  EXPECT_GE(peak.load(), 1);
}

TEST(ThreadSafetyTest, MutexLockAwaitWakesOnPredicate) {
  core::Mutex mu;
  std::condition_variable cv;
  bool ready = false;
  std::thread waiter([&]() {
    core::MutexLock lock(mu);
    lock.Await(cv, [&]() { return ready; });
  });
  {
    const core::MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  SUCCEED();
}

TEST(ThreadSafetyTest, ThreadRoleSelfBindsAndTracksOwner) {
  core::ThreadRole role;
  // First checker binds the role to the current thread...
  EXPECT_TRUE(role.CheckHeld());
  // ...and keeps holding it.
  EXPECT_TRUE(role.CheckHeld());
  // Any other thread now fails the check.
  bool other_held = true;
  std::thread other([&]() { other_held = role.CheckHeld(); });
  other.join();
  EXPECT_FALSE(other_held);
}

TEST(ThreadSafetyTest, ThreadRoleAdoptionMovesOwnership) {
  core::ThreadRole role;
  EXPECT_TRUE(role.CheckHeld());  // bound to main
  // Sequential handoff: a worker adopts, becoming the command thread.
  bool worker_held = false;
  std::thread worker([&]() {
    role.AdoptCurrentThread();
    worker_held = role.CheckHeld();
  });
  worker.join();
  EXPECT_TRUE(worker_held);
  // Main is no longer the owner...
  EXPECT_FALSE(role.CheckHeld());
  // ...until it detaches and rebinds.
  role.Detach();
  EXPECT_TRUE(role.CheckHeld());
}

// --------------------------------------------------------------------- crc32c

// RFC 3720 §B.4 reference vectors for CRC32C (Castagnoli).
TEST(Crc32cTest, Rfc3720Vectors) {
  EXPECT_EQ(core::Crc32c(std::string(32, '\0')), 0x8A9136AAu);
  EXPECT_EQ(core::Crc32c(std::string(32, '\xff')), 0x62A8AB43u);

  std::string ascending;
  for (int i = 0; i < 32; ++i) ascending.push_back(static_cast<char>(i));
  EXPECT_EQ(core::Crc32c(ascending), 0x46DD794Eu);

  std::string descending;
  for (int i = 31; i >= 0; --i) descending.push_back(static_cast<char>(i));
  EXPECT_EQ(core::Crc32c(descending), 0x113FDB5Cu);

  // An iSCSI SCSI Read (10) command PDU.
  const unsigned char pdu[48] = {
      0x01, 0xc0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x00,
      0x00, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x18, 0x28, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
  EXPECT_EQ(core::Crc32cExtend(0, pdu, sizeof(pdu)), 0xD9963A56u);

  EXPECT_EQ(core::Crc32c("123456789"), 0xE3069283u);
}

TEST(Crc32cTest, ExtendChainsAcrossArbitrarySplits) {
  const std::string data =
      "The quick brown fox jumps over the lazy dog, twice around the block";
  const std::uint32_t whole = core::Crc32c(data);
  for (const std::size_t split : {std::size_t{0}, std::size_t{1},
                                  std::size_t{7}, std::size_t{8},
                                  std::size_t{33}, data.size()}) {
    std::uint32_t crc = core::Crc32cExtend(0, data.data(), split);
    crc = core::Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::string data = "censysim wal record payload";
  const std::uint32_t clean = core::Crc32c(data);
  for (std::size_t bit = 0; bit < data.size() * 8; bit += 13) {
    data[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    EXPECT_NE(core::Crc32c(data), clean) << "bit " << bit;
    data[bit / 8] ^= static_cast<char>(1u << (bit % 8));
  }
}

// ---------------------------------------------------------------------- fault

// CrashException must not be swallowable by generic std::exception
// handlers — it stands in for SIGKILL.
static_assert(!std::is_base_of_v<std::exception, fault::CrashException>);

TEST(FaultInjectorTest, UnarmedHitsReturnNothing) {
  fault::Injector::Global().Disarm();
  EXPECT_FALSE(fault::Hit("storage.wal.append").has_value());
}

#if defined(CENSYSIM_FAULT_INJECTION)

TEST(FaultInjectorTest, SkipHitsAndMaxFiresBoundTheWindow) {
  fault::Rule rule;
  rule.point = "test.point";
  rule.mode = fault::Mode::kErrorReturn;
  rule.skip_hits = 3;
  rule.max_fires = 2;
  const fault::ScopedPlan plan(42, {rule});
  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) {
    fired.push_back(fault::Hit("test.point").has_value());
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, false, true, true, false,
                                      false, false}));
  EXPECT_EQ(fault::Injector::Global().hits("test.point"), 8u);
  EXPECT_EQ(fault::Injector::Global().fires("test.point"), 2u);
}

TEST(FaultInjectorTest, SameSeedReproducesTheSchedule) {
  fault::Rule rule;
  rule.point = "test.prob";
  rule.mode = fault::Mode::kBitFlip;
  rule.probability = 0.3;

  const auto schedule = [&](std::uint64_t seed) {
    const fault::ScopedPlan plan(seed, {rule});
    std::vector<std::uint64_t> bits;
    for (int i = 0; i < 200; ++i) {
      if (const auto fault = fault::Hit("test.prob")) {
        bits.push_back(fault->bit);
      }
    }
    return bits;
  };

  const auto a = schedule(7);
  const auto b = schedule(7);
  const auto c = schedule(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // ~30% of 200 hits should fire; allow generous slack.
  EXPECT_GT(a.size(), 30u);
  EXPECT_LT(a.size(), 120u);
}

TEST(FaultInjectorTest, FiringIsThreadInterleavingInvariant) {
  fault::Rule rule;
  rule.point = "test.mt";
  rule.mode = fault::Mode::kErrorReturn;
  rule.probability = 0.5;

  const auto total_fires = [&](int threads, int hits_per_thread) {
    const fault::ScopedPlan plan(99, {rule});
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        for (int i = 0; i < hits_per_thread; ++i) {
          (void)fault::Hit("test.mt");
        }
      });
    }
    for (auto& t : pool) t.join();
    return fault::Injector::Global().fires("test.mt");
  };

  // The fire decision for hit #i is a pure function of (seed, point, i):
  // 1000 hits fire the same number of times no matter how threads
  // interleave.
  const auto serial = total_fires(1, 1000);
  const auto parallel = total_fires(4, 250);
  EXPECT_EQ(serial, parallel);
}

TEST(FaultInjectorTest, TearFractionStaysInsideTheRecord) {
  fault::Rule rule;
  rule.point = "test.tear";
  rule.mode = fault::Mode::kTornWrite;
  const fault::ScopedPlan plan(5, {rule});
  for (int i = 0; i < 100; ++i) {
    const auto fault = fault::Hit("test.tear");
    ASSERT_TRUE(fault.has_value());
    EXPECT_GT(fault->tear_frac, 0.0);
    EXPECT_LT(fault->tear_frac, 1.0);
  }
}

#else

TEST(FaultInjectorTest, CompiledOutHitIsConstantNullopt) {
  // With the layer compiled out even an armed injector never fires.
  const fault::ScopedPlan plan(1, {fault::Rule{"test.off"}});
  EXPECT_FALSE(fault::Hit("test.off").has_value());
}

#endif  // CENSYSIM_FAULT_INJECTION

}  // namespace
}  // namespace censys
