// Tests for LZR-style protocol detection, record building, and the
// interrogator against the simulated Internet.
#include <gtest/gtest.h>

#include "interrogate/detection.h"
#include "interrogate/interrogator.h"
#include "interrogate/record.h"
#include "proto/banner.h"
#include "simnet/internet.h"

namespace censys::interrogate {
namespace {

simnet::L7Session MakeSession(proto::Protocol p, ServiceKey key,
                              std::uint64_t seed) {
  simnet::L7Session session;
  session.service.key = key;
  session.service.protocol = p;
  session.service.seed = seed;
  session.service.born = Timestamp{0};
  session.service.dies = Timestamp::FromDays(1000);
  if (proto::GetInfo(p).server_talks_first) {
    session.server_first_banner = proto::GenerateBanner(p, seed);
  }
  return session;
}

// ------------------------------------------------------------ banner matching

TEST(FingerprintBannerTest, IdentifiesCommonBanners) {
  EXPECT_EQ(FingerprintBanner("SSH-2.0-openssh_8.9p1"), proto::Protocol::kSsh);
  EXPECT_EQ(FingerprintBanner("RFB 003.008"), proto::Protocol::kVnc);
  EXPECT_EQ(FingerprintBanner("HTTP/1.1 200 OK"), proto::Protocol::kHttp);
  EXPECT_EQ(FingerprintBanner("220 mail-ab12 ESMTP postfix 3.6.4"),
            proto::Protocol::kSmtp);
  EXPECT_EQ(FingerprintBanner("220 vsftpd 3.0.3 Server ready."),
            proto::Protocol::kFtp);
  EXPECT_EQ(FingerprintBanner("500 5.5.1 Command unrecognized"),
            proto::Protocol::kSmtp);
  EXPECT_FALSE(FingerprintBanner("").has_value());
  EXPECT_FALSE(FingerprintBanner("\x01\x02\x03 binary junk").has_value());
}

// ---------------------------------------------------------------- detection

TEST(DetectionTest, ServerBannerWinsFirst) {
  const auto session =
      MakeSession(proto::Protocol::kSsh, {IPv4Address(1), 8022}, 5);
  const auto outcome =
      DetectProtocol(session, DetectorConfig::CensysDefault(), std::nullopt);
  EXPECT_EQ(outcome.protocol, proto::Protocol::kSsh);
  EXPECT_EQ(outcome.step, DetectionOutcome::Step::kServerBanner);
}

TEST(DetectionTest, IanaPortHandshake) {
  // HTTP on port 80: no server banner, but the IANA guess succeeds.
  const auto session =
      MakeSession(proto::Protocol::kHttp, {IPv4Address(1), 80}, 5);
  const auto outcome =
      DetectProtocol(session, DetectorConfig::CensysDefault(), std::nullopt);
  EXPECT_EQ(outcome.protocol, proto::Protocol::kHttp);
  EXPECT_EQ(outcome.step, DetectionOutcome::Step::kIanaHandshake);
}

TEST(DetectionTest, BatteryFindsServicesOnOddPorts) {
  // HTTP on port 12345: nothing assigned there; the battery's HTTP GET
  // succeeds (the service-diffusion case LZR was built for).
  const auto session =
      MakeSession(proto::Protocol::kHttp, {IPv4Address(1), 12345}, 5);
  const auto outcome =
      DetectProtocol(session, DetectorConfig::CensysDefault(), std::nullopt);
  EXPECT_EQ(outcome.protocol, proto::Protocol::kHttp);
  EXPECT_EQ(outcome.step, DetectionOutcome::Step::kBatteryHandshake);
}

TEST(DetectionTest, IcsOnNonStandardPortFoundByBattery) {
  const auto session =
      MakeSession(proto::Protocol::kModbus, {IPv4Address(1), 33000}, 5);
  const auto outcome =
      DetectProtocol(session, DetectorConfig::CensysDefault(), std::nullopt);
  EXPECT_EQ(outcome.protocol, proto::Protocol::kModbus);
}

TEST(DetectionTest, WithoutBatteryIcsOnOddPortIsMissed) {
  // Competitor-style detection (banner + IANA only).
  DetectorConfig cfg;
  cfg.try_battery = false;
  const auto session =
      MakeSession(proto::Protocol::kModbus, {IPv4Address(1), 33000}, 5);
  const auto outcome = DetectProtocol(session, cfg, std::nullopt);
  EXPECT_EQ(outcome.protocol, proto::Protocol::kUnknown);
}

TEST(DetectionTest, UdpHintIdentifiesProtocol) {
  const auto session =
      MakeSession(proto::Protocol::kSnmp, {IPv4Address(1), 161, Transport::kUdp}, 5);
  const auto outcome = DetectProtocol(
      session, DetectorConfig::CensysDefault(), proto::Protocol::kSnmp);
  EXPECT_EQ(outcome.protocol, proto::Protocol::kSnmp);
}

TEST(DetectionTest, HttpsDetectedViaTls) {
  const auto session =
      MakeSession(proto::Protocol::kHttps, {IPv4Address(1), 9443}, 5);
  const auto outcome =
      DetectProtocol(session, DetectorConfig::CensysDefault(), std::nullopt);
  EXPECT_EQ(outcome.protocol, proto::Protocol::kHttps);
}

TEST(DetectionTest, PseudoHostsLookLikeHttp) {
  simnet::L7Session session;
  session.service.key = {IPv4Address(9), 4444};
  session.service.protocol = proto::Protocol::kHttp;
  session.service.pseudo = true;
  session.service.seed = 1;
  const auto outcome =
      DetectProtocol(session, DetectorConfig::CensysDefault(), std::nullopt);
  EXPECT_EQ(outcome.protocol, proto::Protocol::kHttp);
}

// -------------------------------------------------------------------- record

TEST(RecordTest, FieldsRoundTrip) {
  ServiceRecord record;
  record.key = {IPv4Address(0x01020304), 443};
  record.protocol = proto::Protocol::kHttps;
  record.detection = DetectionMethod::kTlsWrapped;
  record.handshake_validated = true;
  record.banner = "Server: nginx/1.25.3";
  record.software = {"nginx", "nginx", "1.25.3"};
  record.html_title = "Welcome to nginx!";
  record.tls = true;
  record.tls_version = "TLSv1.3";
  record.jarm = std::string(62, 'a');
  record.cert_sha256 = std::string(64, 'b');

  const ServiceRecord decoded =
      ServiceRecord::FromFields(record.key, record.ToFields());
  EXPECT_EQ(decoded, record);
  EXPECT_EQ(decoded.protocol, proto::Protocol::kHttps);
  EXPECT_TRUE(decoded.tls);
  EXPECT_EQ(decoded.software.version, "1.25.3");
}

TEST(RecordTest, FieldsAreStableAcrossIdenticalRecords) {
  // The journal's no-op detection depends on identical records producing
  // identical field maps.
  ServiceRecord a, b;
  a.key = b.key = {IPv4Address(1), 80};
  a.protocol = b.protocol = proto::Protocol::kHttp;
  a.banner = b.banner = "Server: apache/2.4.58";
  EXPECT_EQ(a.ToFields(), b.ToFields());
}

// --------------------------------------------------------------- interrogator

class InterrogatorTest : public ::testing::Test {
 protected:
  InterrogatorTest() : net_(Config()), profile_{1, "t", 300.0, 1280.0},
                       interrogator_(net_, profile_) {}

  static simnet::UniverseConfig Config() {
    simnet::UniverseConfig cfg;
    cfg.seed = 11;
    cfg.universe_size = 1u << 16;
    cfg.target_services = 6000;
    cfg.ics_scale = 256;
    return cfg;
  }

  // Finds a live service satisfying `pred`.
  std::optional<simnet::SimService> FindLive(
      const std::function<bool(const simnet::SimService&)>& pred) {
    std::optional<simnet::SimService> found;
    net_.ForEachActiveService(Timestamp{0}, [&](const simnet::SimService& s) {
      if (!found.has_value() && pred(s)) found = s;
    });
    return found;
  }

  simnet::Internet net_;
  simnet::ScannerProfile profile_;
  Interrogator interrogator_;
};

TEST_F(InterrogatorTest, ProducesValidatedRecordsForLiveServices) {
  const auto svc = FindLive([](const simnet::SimService& s) {
    return s.protocol == proto::Protocol::kHttp && !s.pseudo && !s.requires_sni;
  });
  ASSERT_TRUE(svc.has_value());
  std::optional<ServiceRecord> record;
  for (int h = 0; h < 48 && !record; h += 2) {
    record = interrogator_.Interrogate(svc->key, Timestamp::FromHours(h), 0);
  }
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->protocol, proto::Protocol::kHttp);
  EXPECT_TRUE(record->handshake_validated);
  EXPECT_FALSE(record->software.product.empty());
  EXPECT_FALSE(record->html_title.empty());
}

TEST_F(InterrogatorTest, HttpsRecordsCarryTlsContext) {
  const auto svc = FindLive([](const simnet::SimService& s) {
    return s.protocol == proto::Protocol::kHttps && !s.requires_sni;
  });
  ASSERT_TRUE(svc.has_value());
  std::optional<ServiceRecord> record;
  for (int h = 0; h < 48 && !record; h += 2) {
    record = interrogator_.Interrogate(svc->key, Timestamp::FromHours(h), 0);
  }
  ASSERT_TRUE(record.has_value());
  EXPECT_TRUE(record->tls);
  EXPECT_EQ(record->jarm.size(), 62u);
  EXPECT_EQ(record->cert_sha256.size(), 64u);
  EXPECT_FALSE(record->ja4s.empty());
}

TEST_F(InterrogatorTest, SniPropertyServesGenericPageWithoutName) {
  const auto svc = FindLive([](const simnet::SimService& s) {
    return s.requires_sni;
  });
  ASSERT_TRUE(svc.has_value());

  simnet::L7Session session;
  session.service = *svc;
  const ServiceRecord nameless =
      interrogator_.BuildRecord(session, Timestamp{0}, std::nullopt, {});
  EXPECT_EQ(nameless.html_title, "Default web page");

  const ServiceRecord named = interrogator_.BuildRecord(
      session, Timestamp{0}, std::nullopt, svc->sni_name);
  EXPECT_NE(named.html_title, "Default web page");
  EXPECT_EQ(named.sni_name, svc->sni_name);

  const ServiceRecord wrong_name = interrogator_.BuildRecord(
      session, Timestamp{0}, std::nullopt, "wrong.example.com");
  EXPECT_EQ(wrong_name.html_title, "Default web page");
}

TEST_F(InterrogatorTest, DeadTargetYieldsNothing) {
  // An unused port on an unpopulated address.
  ServiceKey key{IPv4Address(123), 54321, Transport::kTcp};
  ASSERT_EQ(net_.FindService(key, Timestamp{0}), nullptr);
  EXPECT_FALSE(interrogator_.Interrogate(key, Timestamp{0}, 0).has_value());
}

TEST_F(InterrogatorTest, IcsRecordsExposeDeviceIdentity) {
  const auto svc = FindLive([](const simnet::SimService& s) {
    return proto::GetInfo(s.protocol).is_ics;
  });
  ASSERT_TRUE(svc.has_value());
  simnet::L7Session session;
  session.service = *svc;
  const ServiceRecord record =
      interrogator_.BuildRecord(session, Timestamp{0}, std::nullopt, {});
  EXPECT_EQ(record.protocol, svc->protocol);
  EXPECT_TRUE(record.handshake_validated);
  EXPECT_FALSE(record.device.manufacturer.empty());
  EXPECT_FALSE(record.device.model.empty());
}

}  // namespace
}  // namespace censys::interrogate
