// Tests for the evaluation methodology helpers (§6.1 as code).
#include <gtest/gtest.h>

#include "engines/evaluation.h"
#include "engines/world.h"

namespace censys::engines {
namespace {

simnet::UniverseConfig SmallConfig() {
  simnet::UniverseConfig cfg;
  cfg.seed = 13;
  cfg.universe_size = 1u << 16;
  cfg.target_services = 8000;
  cfg.pseudo_host_fraction = 0.01;
  cfg.ics_scale = 0;
  return cfg;
}

TEST(SubsampledScanTest, SampleFractionScalesResult) {
  simnet::Internet net(SmallConfig());
  const auto half = SubsampledScan(net, Timestamp{0}, 0.5, 1);
  const auto tenth = SubsampledScan(net, Timestamp{0}, 0.1, 1);
  EXPECT_GT(half.services.size(), tenth.services.size() * 3);
  EXPECT_LT(half.services.size(), tenth.services.size() * 8);
}

TEST(SubsampledScanTest, FiltersPseudoHosts) {
  simnet::Internet net(SmallConfig());
  const auto sample = SubsampledScan(net, Timestamp{0}, 1.0, 2);
  for (const simnet::SimService& svc : sample.services) {
    EXPECT_FALSE(net.IsPseudoHost(svc.key.ip)) << svc.key.ToString();
  }
}

TEST(SubsampledScanTest, SingleProbeLosesAFewPercent) {
  // ZMap-style single-probe scans lose ~3% to transient conditions; the
  // sample must be a large but strict subset of truth.
  simnet::Internet net(SmallConfig());
  const std::size_t truth = net.ActiveServiceCount(Timestamp{0});
  const auto sample = SubsampledScan(net, Timestamp{0}, 1.0, 3);
  EXPECT_LT(sample.services.size(), truth);
  // UDP services on unassigned ports never respond to a generic probe, so
  // the loss is a bit more than pure packet loss.
  EXPECT_GT(sample.services.size(), truth * 7 / 10);
}

TEST(ValidateTest, LiveAndDeadTargets) {
  simnet::Internet net(SmallConfig());
  std::optional<simnet::SimService> live;
  net.ForEachActiveService(Timestamp{0}, [&](const simnet::SimService& s) {
    if (!live.has_value() && !s.pseudo && s.key.transport == Transport::kTcp &&
        (s.dies - Timestamp{0}).ToDays() > 2.0) {
      live = s;
    }
  });
  ASSERT_TRUE(live.has_value());
  // Retries smooth over transient loss, so a solidly-live service passes.
  EXPECT_TRUE(ValidateLive(net, live->key, Timestamp{0}, /*attempts=*/4));
  EXPECT_TRUE(ValidateProtocol(net, live->key, live->protocol, Timestamp{0},
                               /*attempts=*/4));
  EXPECT_FALSE(ValidateProtocol(net, live->key, proto::Protocol::kGeSrtp,
                                Timestamp{0}, 4));

  const ServiceKey dead{IPv4Address(7), 64999, Transport::kTcp};
  ASSERT_EQ(net.FindService(dead, Timestamp{0}), nullptr);
  EXPECT_FALSE(ValidateLive(net, dead, Timestamp{0}));
}

TEST(BucketTest, NonOverlappingRanges) {
  simnet::Internet net(SmallConfig());
  const auto& ports = net.ports();
  EXPECT_EQ(BucketOf(ports, 80), PortBucket::kTop10);
  EXPECT_EQ(BucketOf(ports, ports.PortAtRank(11)), PortBucket::kTop100);
  EXPECT_EQ(BucketOf(ports, ports.PortAtRank(100)), PortBucket::kTop100);
  EXPECT_EQ(BucketOf(ports, ports.PortAtRank(101)), PortBucket::kRest);
  EXPECT_EQ(BucketOf(ports, ports.PortAtRank(60000)), PortBucket::kRest);
}

TEST(PercentTest, Formatting) {
  EXPECT_EQ(Percent(0.9234), "92%");
  EXPECT_EQ(Percent(0.9234, 1), "92.3%");
  EXPECT_EQ(Percent(0.0), "0%");
  EXPECT_EQ(Percent(1.0), "100%");
}

TEST(CoverageOverTest, CountsHits) {
  WorldConfig cfg;
  cfg.universe = SmallConfig();
  cfg.universe.target_services = 3000;
  cfg.with_alternatives = false;
  World world(cfg);
  world.Bootstrap();
  std::vector<simnet::SimService> reference;
  world.internet().ForEachActiveService(
      world.now(), [&](const simnet::SimService& s) {
        if (reference.size() < 400) reference.push_back(s);
      });
  const double coverage = CoverageOver(world.censys(), reference);
  EXPECT_GT(coverage, 0.3);
  EXPECT_LE(coverage, 1.0);
  EXPECT_EQ(CoverageOver(world.censys(), {}), 0.0);
}

}  // namespace
}  // namespace censys::engines
