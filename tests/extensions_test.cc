// Tests for the operational-surface modules: the opt-out exclusion list,
// the certificate store, secondary pivot tables, access tiers, and the
// snapshot export container.
#include <gtest/gtest.h>

#include "cert/store.h"
#include "engines/access.h"
#include "scan/exclusion.h"
#include "search/export.h"
#include "search/pivots.h"

namespace censys {
namespace {

// ------------------------------------------------------------------ exclusion

TEST(ExclusionListTest, ExcludesAndExpires) {
  scan::ExclusionList list;
  ASSERT_TRUE(list.Exclude(*Cidr::Parse("10.0.0.0/24"), "KU Leuven NOC",
                           Timestamp{0}));
  EXPECT_TRUE(list.IsExcluded(*IPv4Address::Parse("10.0.0.77"), Timestamp{0}));
  EXPECT_FALSE(list.IsExcluded(*IPv4Address::Parse("10.0.1.0"), Timestamp{0}));

  // "We expire exclusion requests after one year."
  EXPECT_EQ(list.ExpireOld(Timestamp::FromDays(200)), 0u);
  EXPECT_TRUE(
      list.IsExcluded(*IPv4Address::Parse("10.0.0.77"), Timestamp::FromDays(200)));
  EXPECT_EQ(list.ExpireOld(Timestamp::FromDays(366)), 1u);
  EXPECT_FALSE(
      list.IsExcluded(*IPv4Address::Parse("10.0.0.77"), Timestamp::FromDays(366)));
}

TEST(ExclusionListTest, RequiresVerifiedRequester) {
  scan::ExclusionList list;
  EXPECT_FALSE(list.Exclude(*Cidr::Parse("10.0.0.0/8"), "", Timestamp{0}));
  EXPECT_FALSE(list.IsExcluded(*IPv4Address::Parse("10.1.2.3"), Timestamp{0}));
}

TEST(ExclusionListTest, FractionAndOrganizations) {
  scan::ExclusionList list;
  list.Exclude(*Cidr::Parse("0.0.16.0/24"), "Org A", Timestamp{0});
  list.Exclude(*Cidr::Parse("0.0.32.0/24"), "Org B", Timestamp{0});
  list.Exclude(*Cidr::Parse("0.0.33.0/24"), "Org B", Timestamp{0});
  EXPECT_EQ(list.organization_count(), 2u);
  EXPECT_DOUBLE_EQ(list.ExcludedFraction(1u << 16), 768.0 / 65536.0);
}

// ----------------------------------------------------------------- cert store

class CertStoreTest : public ::testing::Test {
 protected:
  CertStoreTest()
      : roots_(cert::RootStore::Default()), store_(roots_, crls_) {}

  cert::RootStore roots_;
  cert::CrlStore crls_;
  cert::CertificateStore store_;
};

TEST_F(CertStoreTest, ScanAndCtObservationsMerge) {
  const cert::Certificate c =
      cert::SynthesizeCertificate(5, "www.example.com", Timestamp{0});
  store_.ObserveFromScan(c, {IPv4Address(1), 443, Transport::kTcp},
                         Timestamp{10});
  store_.ObserveFromCt(cert::CtEntry{0, Timestamp{5}, c}, Timestamp{20});

  ASSERT_EQ(store_.size(), 1u);
  const cert::CertificateRecord* record = store_.Get(c.Sha256Hex());
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(record->seen_in_scan);
  EXPECT_TRUE(record->seen_in_ct);
  EXPECT_EQ(record->first_seen, Timestamp{10});
}

TEST_F(CertStoreTest, PresentedByPivot) {
  const cert::Certificate c =
      cert::SynthesizeCertificate(9, "shared.example.com", Timestamp{0});
  // The same certificate presented by three endpoints (a C2 kit pattern).
  for (std::uint32_t ip : {100u, 200u, 300u}) {
    store_.ObserveFromScan(c, {IPv4Address(ip), 443, Transport::kTcp},
                           Timestamp{0});
  }
  const auto endpoints = store_.PresentedBy(c.Sha256Hex());
  EXPECT_EQ(endpoints.size(), 3u);
  EXPECT_TRUE(store_.PresentedBy(std::string(64, '0')).empty());
}

TEST_F(CertStoreTest, RevalidationCatchesExpiry) {
  cert::Certificate c;
  c.subject_cn = "soon.example.com";
  c.san_dns = {"soon.example.com"};
  c.issuer = "SimCA Encrypt R3";
  c.not_before = Timestamp{0};
  c.not_after = Timestamp::FromDays(30);
  // Pick a serial outside the synthetic baseline-CRL population so the
  // only status change in play is expiry.
  c.serial = 424242;
  while (crls_.RevokedAt(c.issuer, c.serial).has_value()) ++c.serial;
  store_.ObserveFromScan(c, {IPv4Address(1), 443, Transport::kTcp},
                         Timestamp{0});
  EXPECT_EQ(store_.Get(c.Sha256Hex())->status,
            cert::ValidationStatus::kTrusted);

  // Daily revalidation flips it to expired after not_after.
  EXPECT_EQ(store_.RevalidateAll(Timestamp::FromDays(31)), 1u);
  EXPECT_EQ(store_.Get(c.Sha256Hex())->status,
            cert::ValidationStatus::kExpired);
  // Idempotent afterwards.
  EXPECT_EQ(store_.RevalidateAll(Timestamp::FromDays(32)), 0u);
}

TEST_F(CertStoreTest, StatsBreakdown) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    const cert::Certificate c = cert::SynthesizeCertificate(
        seed, "h" + std::to_string(seed) + ".example.com", Timestamp{0});
    if (seed % 3 == 0) {
      store_.ObserveFromCt(cert::CtEntry{seed, Timestamp{0}, c}, Timestamp{0});
    } else {
      store_.ObserveFromScan(c, {IPv4Address(static_cast<std::uint32_t>(seed)),
                                 443, Transport::kTcp},
                             Timestamp{0});
    }
  }
  auto stats = store_.ComputeStats();
  EXPECT_GT(stats.by_status[cert::ValidationStatus::kTrusted], 100u);
  EXPECT_GT(stats.ct_only, 50u);
  EXPECT_GT(stats.scan_only, 100u);
  EXPECT_GT(stats.with_lint_errors, 0u);
}

// --------------------------------------------------------------------- pivots

TEST(PivotIndexTest, ObserveAndQuery) {
  search::PivotIndex pivots;
  const ServiceKey a{IPv4Address(1), 443, Transport::kTcp};
  const ServiceKey b{IPv4Address(2), 8443, Transport::kTcp};
  pivots.Observe(a, "certA", "jarm1");
  pivots.Observe(b, "certA", "jarm1");
  EXPECT_EQ(pivots.EndpointsWithCert("certA").size(), 2u);
  EXPECT_EQ(pivots.EndpointsWithJarm("jarm1").size(), 2u);
  EXPECT_TRUE(pivots.EndpointsWithCert("other").empty());
}

TEST(PivotIndexTest, ReobservationReplacesAttribution) {
  search::PivotIndex pivots;
  const ServiceKey key{IPv4Address(1), 443, Transport::kTcp};
  pivots.Observe(key, "certOld", "jarmOld");
  pivots.Observe(key, "certNew", "jarmNew");  // certificate rotated
  EXPECT_TRUE(pivots.EndpointsWithCert("certOld").empty());
  EXPECT_EQ(pivots.EndpointsWithCert("certNew").size(), 1u);
  EXPECT_EQ(pivots.cert_count(), 1u);
}

TEST(PivotIndexTest, ForgetRemovesEverywhere) {
  search::PivotIndex pivots;
  const ServiceKey key{IPv4Address(1), 443, Transport::kTcp};
  pivots.Observe(key, "cert", "jarm");
  pivots.Forget(key);
  EXPECT_TRUE(pivots.EndpointsWithCert("cert").empty());
  EXPECT_EQ(pivots.jarm_count(), 0u);
  pivots.Forget(key);  // idempotent
}

TEST(PivotIndexTest, RareJarmClusters) {
  search::PivotIndex pivots;
  // A common stack on 50 hosts and a rare one on 4.
  for (std::uint32_t ip = 0; ip < 50; ++ip) {
    pivots.Observe({IPv4Address(1000 + ip), 443, Transport::kTcp}, "",
                   "common");
  }
  for (std::uint32_t ip = 0; ip < 4; ++ip) {
    pivots.Observe({IPv4Address(2000 + ip), 443, Transport::kTcp}, "", "rare");
  }
  const auto clusters = pivots.RareJarmClusters(3, 40);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].first, "rare");
  EXPECT_EQ(clusters[0].second, 4u);
}

// --------------------------------------------------------------------- access

pipeline::HostView MakeViewWithIcsAndVulns() {
  pipeline::HostView view;
  view.ip = IPv4Address(1);
  pipeline::ServiceView http;
  http.record.key = {IPv4Address(1), 80, Transport::kTcp};
  http.record.protocol = proto::Protocol::kHttp;
  http.cves = {"CVE-2021-41773"};
  http.kev = true;
  http.record.device = {"Zyxel", "WAC6552D-S"};
  pipeline::ServiceView modbus;
  modbus.record.key = {IPv4Address(1), 502, Transport::kTcp};
  modbus.record.protocol = proto::Protocol::kModbus;
  view.services = {http, modbus};
  return view;
}

TEST(AccessControlTest, PublicTierSeesPresenceOnly) {
  engines::AccessControl access;
  const auto filtered =
      access.Filter(MakeViewWithIcsAndVulns(), engines::AccessTier::kPublic);
  ASSERT_EQ(filtered.services.size(), 1u);  // ICS removed
  EXPECT_EQ(filtered.services[0].record.protocol, proto::Protocol::kHttp);
  EXPECT_TRUE(filtered.services[0].cves.empty());      // vulns redacted
  EXPECT_FALSE(filtered.services[0].kev);
  EXPECT_TRUE(filtered.services[0].record.device.manufacturer.empty());
}

TEST(AccessControlTest, CommercialTierSeesEverything) {
  engines::AccessControl access;
  const auto filtered = access.Filter(MakeViewWithIcsAndVulns(),
                                      engines::AccessTier::kCommercial);
  EXPECT_EQ(filtered.services.size(), 2u);
  EXPECT_FALSE(filtered.services[0].cves.empty());
  EXPECT_FALSE(filtered.services[0].record.device.manufacturer.empty());
}

TEST(AccessControlTest, QueryVetting) {
  engines::AccessControl access;
  EXPECT_FALSE(access.AllowQuery(R"(service.name: "MODBUS")",
                                 engines::AccessTier::kPublic));
  EXPECT_FALSE(access.AllowQuery("cve-2023-34362",
                                 engines::AccessTier::kResearch));
  EXPECT_TRUE(access.AllowQuery(R"(service.name: "MODBUS")",
                                engines::AccessTier::kCommercial));
  EXPECT_TRUE(access.AllowQuery(R"(service.name: "HTTP")",
                                engines::AccessTier::kPublic));
}

TEST(AccessControlTest, QuotaEnforcement) {
  engines::AccessControl access;
  int allowed = 0;
  for (int i = 0; i < 100; ++i) {
    allowed += access.ChargeQuery("anon", engines::AccessTier::kPublic, 5);
  }
  EXPECT_EQ(allowed, 50);  // public quota
  // A new day resets; other users are independent; internal is unlimited.
  EXPECT_TRUE(access.ChargeQuery("anon", engines::AccessTier::kPublic, 6));
  EXPECT_TRUE(access.ChargeQuery("other", engines::AccessTier::kPublic, 5));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(
        access.ChargeQuery("analyst", engines::AccessTier::kInternal, 5));
  }
}

TEST(AccessControlTest, TierDelaysAreMonotone) {
  // Fresher data for more-vetted tiers.
  using engines::AccessPolicy;
  using engines::AccessTier;
  EXPECT_GT(AccessPolicy::ForTier(AccessTier::kPublic).data_delay,
            AccessPolicy::ForTier(AccessTier::kResearch).data_delay);
  EXPECT_GT(AccessPolicy::ForTier(AccessTier::kResearch).data_delay,
            AccessPolicy::ForTier(AccessTier::kCommercial).data_delay);
}

// --------------------------------------------------------------------- export

TEST(SnapshotExportTest, RoundTrips) {
  search::SnapshotWriter writer(42, "hosts");
  std::vector<search::ExportRecord> records;
  for (int i = 0; i < 500; ++i) {
    search::ExportRecord record;
    record.entity_id = "10.0.0." + std::to_string(i);
    record.fields = {{"svc.80/tcp.service.name", "HTTP"},
                     {"svc.80/tcp.service.banner",
                      "Server: nginx/" + std::to_string(i)}};
    writer.Append(record);
    records.push_back(std::move(record));
  }
  const std::string bytes = writer.Finish();

  search::SnapshotReader reader;
  std::string error;
  ASSERT_TRUE(reader.Open(bytes, &error)) << error;
  EXPECT_EQ(reader.snapshot_day(), 42);
  EXPECT_EQ(reader.dataset(), "hosts");
  ASSERT_EQ(reader.records().size(), records.size());
  EXPECT_EQ(reader.records()[0], records[0]);
  EXPECT_EQ(reader.records()[499], records[499]);
}

TEST(SnapshotExportTest, EmptySnapshotIsValid) {
  search::SnapshotWriter writer(1, "empty");
  const std::string bytes = writer.Finish();
  search::SnapshotReader reader;
  std::string error;
  ASSERT_TRUE(reader.Open(bytes, &error)) << error;
  EXPECT_TRUE(reader.records().empty());
}

TEST(SnapshotExportTest, DetectsCorruption) {
  search::SnapshotWriter writer(1, "hosts");
  for (int i = 0; i < 100; ++i) {
    writer.Append({"e" + std::to_string(i), {{"k", "v"}}});
  }
  std::string bytes = writer.Finish();

  search::SnapshotReader reader;
  std::string error;

  // Flip a byte inside a record block.
  std::string corrupted = bytes;
  corrupted[bytes.size() / 2] ^= 0x40;
  EXPECT_FALSE(reader.Open(corrupted, &error));
  EXPECT_FALSE(error.empty());

  // Truncate.
  EXPECT_FALSE(reader.Open(std::string_view(bytes).substr(0, bytes.size() - 3),
                           &error));

  // Bad magic.
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_FALSE(reader.Open(bad_magic, &error));
  EXPECT_EQ(error, "bad magic");
}

}  // namespace
}  // namespace censys
