// Tests for the query language, inverted index, and analytics store.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "search/analytics.h"
#include "search/index.h"
#include "search/query.h"

namespace censys::search {
namespace {

// ---------------------------------------------------------------------- query

TEST(QueryParseTest, FieldTerm) {
  std::string error;
  const auto q = ParseQuery(R"(service.name: "MODBUS")", &error);
  ASSERT_TRUE(q.has_value()) << error;
  EXPECT_EQ((*q)->kind, QueryNode::Kind::kTerm);
  EXPECT_EQ((*q)->field, "service.name");
  EXPECT_EQ((*q)->pattern, "MODBUS");
  EXPECT_TRUE((*q)->is_phrase);
}

TEST(QueryParseTest, ImplicitAndExplicitAnd) {
  std::string error;
  const auto implicit = ParseQuery("a: 1 b: 2", &error);
  ASSERT_TRUE(implicit.has_value()) << error;
  const auto explicit_and = ParseQuery("a: 1 AND b: 2", &error);
  ASSERT_TRUE(explicit_and.has_value()) << error;
  EXPECT_EQ(ToString(*implicit), ToString(*explicit_and));
}

TEST(QueryParseTest, PrecedenceOrBindsLooserThanAnd) {
  std::string error;
  const auto q = ParseQuery("a: 1 AND b: 2 OR c: 3", &error);
  ASSERT_TRUE(q.has_value()) << error;
  EXPECT_EQ((*q)->kind, QueryNode::Kind::kOr);
  EXPECT_EQ((*q)->children[0]->kind, QueryNode::Kind::kAnd);
}

TEST(QueryParseTest, ParensAndNot) {
  std::string error;
  const auto q = ParseQuery("NOT (a: 1 OR b: 2)", &error);
  ASSERT_TRUE(q.has_value()) << error;
  EXPECT_EQ((*q)->kind, QueryNode::Kind::kNot);
  EXPECT_EQ((*q)->children[0]->kind, QueryNode::Kind::kOr);
}

TEST(QueryParseTest, RejectsMalformed) {
  std::string error;
  EXPECT_FALSE(ParseQuery("a: ", &error).has_value());
  EXPECT_FALSE(ParseQuery("(a: 1", &error).has_value());
  EXPECT_FALSE(ParseQuery("a: \"unterminated", &error).has_value());
  EXPECT_FALSE(ParseQuery("", &error).has_value());
  EXPECT_FALSE(ParseQuery("AND", &error).has_value());
}

// ---------------------------------------------------------------------- index

class IndexTest : public ::testing::Test {
 protected:
  IndexTest() {
    index_.Index("10.0.0.1", {{"service.name", "HTTP"},
                              {"http.html_title", "Welcome to nginx!"},
                              {"service.banner", "Server: nginx/1.25.3"}});
    index_.Index("10.0.0.2", {{"service.name", "SSH"},
                              {"service.banner", "SSH-2.0-openssh_8.9p1"}});
    index_.Index("10.0.0.3", {{"service.name", "MODBUS"},
                              {"device.manufacturer", "Schneider Electric"}});
    index_.Index("10.0.0.4", {{"service.name", "HTTP"},
                              {"http.html_title", "RouterOS configuration"}});
  }

  std::vector<std::string> Run(const std::string& query) {
    std::string error;
    auto result = index_.Search(query, &error);
    EXPECT_TRUE(error.empty()) << error;
    return result;
  }

  SearchIndex index_;
};

TEST_F(IndexTest, FieldTermQuery) {
  EXPECT_EQ(Run(R"(service.name: "MODBUS")"),
            (std::vector<std::string>{"10.0.0.3"}));
  EXPECT_EQ(Run("service.name: http").size(), 2u);  // case-insensitive token
}

TEST_F(IndexTest, AnyFieldQuery) {
  EXPECT_EQ(Run("nginx"), (std::vector<std::string>{"10.0.0.1"}));
  EXPECT_EQ(Run("schneider"), (std::vector<std::string>{"10.0.0.3"}));
}

TEST_F(IndexTest, BooleanOperators) {
  EXPECT_EQ(Run("service.name: HTTP AND http.html_title: RouterOS"),
            (std::vector<std::string>{"10.0.0.4"}));
  EXPECT_EQ(Run(R"(service.name: "SSH" OR service.name: "MODBUS")").size(),
            2u);
  const auto not_http = Run("NOT service.name: HTTP");
  EXPECT_EQ(not_http.size(), 2u);
}

TEST_F(IndexTest, PhraseQueryRequiresContiguity) {
  EXPECT_EQ(Run(R"(http.html_title: "Welcome to nginx!")"),
            (std::vector<std::string>{"10.0.0.1"}));
  // Words present but not contiguous in this order -> no match.
  EXPECT_TRUE(Run(R"(http.html_title: "nginx Welcome")").empty());
}

TEST_F(IndexTest, WildcardQuery) {
  EXPECT_EQ(Run(R"(service.banner: "SSH-2.0-*")"),
            (std::vector<std::string>{"10.0.0.2"}));
  EXPECT_EQ(Run(R"(http.html_title: "*router*")"),
            (std::vector<std::string>{"10.0.0.4"}));
}

TEST_F(IndexTest, ReindexReplacesOldPostings) {
  index_.Index("10.0.0.2", {{"service.name", "TELNET"}});
  EXPECT_TRUE(Run(R"(service.name: "SSH")").empty());
  EXPECT_EQ(Run(R"(service.name: "TELNET")"),
            (std::vector<std::string>{"10.0.0.2"}));
}

TEST_F(IndexTest, RemoveDropsDocument) {
  index_.Remove("10.0.0.3");
  EXPECT_TRUE(Run(R"(service.name: "MODBUS")").empty());
  EXPECT_EQ(index_.doc_count(), 3u);
  index_.Remove("10.0.0.3");  // idempotent
  EXPECT_EQ(index_.doc_count(), 3u);
}

TEST_F(IndexTest, MalformedQueryReturnsError) {
  std::string error;
  const auto result = index_.Search("(((", &error);
  EXPECT_TRUE(result.empty());
  EXPECT_FALSE(error.empty());
}

TEST_F(IndexTest, MissingTermMatchesNothing) {
  EXPECT_TRUE(Run(R"(service.name: "GOPHER")").empty());
  EXPECT_TRUE(Run(R"(no.such.field: "x")").empty());
}

// ------------------------------------------------------------------ analytics

DailySnapshot Snap(std::int64_t day, std::uint64_t http_count) {
  DailySnapshot s;
  s.day = day;
  s.total_services = http_count + 10;
  s.by_protocol["HTTP"] = http_count;
  return s;
}

TEST(AnalyticsTest, SeriesAcrossDays) {
  AnalyticsStore store;
  store.AddSnapshot(Snap(1, 100));
  store.AddSnapshot(Snap(2, 110));
  store.AddSnapshot(Snap(3, 120));
  const auto series = store.ProtocolSeries("HTTP");
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[2].second, 120u);
  EXPECT_EQ(store.ProtocolSeries("SSH")[0].second, 0u);
}

TEST(AnalyticsTest, GetLatestUpTo) {
  AnalyticsStore store;
  store.AddSnapshot(Snap(5, 1));
  store.AddSnapshot(Snap(9, 2));
  const core::ThreadRoleGuard role(store.command_role());
  EXPECT_EQ(store.GetLatestUpTo(4), nullptr);
  EXPECT_EQ(store.GetLatestUpTo(5)->day, 5);
  EXPECT_EQ(store.GetLatestUpTo(7)->day, 5);
  EXPECT_EQ(store.GetLatestUpTo(100)->day, 9);
}

TEST(AnalyticsTest, RetentionThinsOldSnapshotsToWeekly) {
  AnalyticsStore::Options options;
  options.full_retention = Duration::Days(90);
  options.keep_weekday = 2;
  AnalyticsStore store(options);
  for (std::int64_t day = 0; day < 200; ++day) store.AddSnapshot(Snap(day, 1));

  store.ThinOut(Timestamp::FromDays(200));
  const core::ThreadRoleGuard role(store.command_role());
  // Recent 90 days fully retained; older days only weekday 2.
  EXPECT_EQ(store.GetDay(150)->day, 150);  // within window
  int old_kept = 0;
  for (std::int64_t day = 0; day < 110; ++day) {
    if (store.GetDay(day) != nullptr) {
      EXPECT_EQ(day % 7, 2) << day;
      ++old_kept;
    }
  }
  EXPECT_GT(old_kept, 10);
  EXPECT_LT(old_kept, 20);
}

// ---------------------------------------------------------------- concurrency

// The serving frontend searches from many threads while the engine rebuilds
// the index between ticks: queries take the reader lock, Index/Remove the
// writer lock. Concurrent identical queries must agree with a serial run.
TEST(IndexConcurrencyTest, ParallelQueriesMatchSerialResults) {
  SearchIndex index;
  for (int d = 0; d < 64; ++d) {
    const std::string id = "10.0.1." + std::to_string(d);
    index.Index(id, {{"service.name", d % 2 == 0 ? "HTTP" : "SSH"},
                     {"service.banner", "build " + std::to_string(d % 8)}});
  }

  const std::vector<std::string> queries = {
      "service.name: http", "service.name: ssh",
      R"(service.banner: "build 3")",
      "service.name: http AND NOT service.banner: 0"};
  std::vector<std::vector<std::string>> serial;
  for (const std::string& q : queries) {
    std::string error;
    serial.push_back(index.Search(q, &error));
    EXPECT_TRUE(error.empty()) << error;
  }

  int thread_count = 4;
  if (const char* env = std::getenv("CENSYSIM_THREADS")) {
    if (std::atoi(env) > 0) thread_count = std::atoi(env);
  }
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < thread_count; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 50; ++round) {
        const std::size_t qi =
            static_cast<std::size_t>(t + round) % queries.size();
        std::string error;
        if (index.Search(queries[qi], &error) != serial[qi] ||
            !error.empty()) {
          mismatch.store(true, std::memory_order_relaxed);
        }
        index.GetDocument("10.0.1.3");
        index.doc_count();
      }
    });
  }
  // Re-index churn concurrent with the queries: rewriting a document with
  // identical fields must not change any result set.
  for (int round = 0; round < 50; ++round) {
    const int d = round % 64;
    const std::string id = "10.0.1." + std::to_string(d);
    index.Index(id, {{"service.name", d % 2 == 0 ? "HTTP" : "SSH"},
                     {"service.banner", "build " + std::to_string(d % 8)}});
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(mismatch.load());
}

}  // namespace
}  // namespace censys::search
