#!/usr/bin/env bash
# Full verification matrix: plain build + ctest, one leg per sanitizer, and
# censyslint over src/. Each leg prints a one-line PASS/FAIL summary; the
# script exits non-zero if any leg fails.
#
# Usage:
#   scripts/check.sh            # all legs
#   scripts/check.sh plain      # just the plain build + ctest
#   scripts/check.sh address    # one sanitizer leg (address|thread|undefined)
#   scripts/check.sh faultoff   # CENSYSIM_FAULT_INJECTION=OFF compile + tests
#   scripts/check.sh trace      # flight-recorder leg: determinism probe,
#                               # tracereport smoke, TRACE=OFF compile-out
#   scripts/check.sh scaling    # BM_EngineTick 4-thread >= 2x 1-thread
#                               # (skips on runners with < 4 cores)
#   scripts/check.sh query      # standing-query determinism + columnar
#                               # corruption fallback under ASan and TSan
#   scripts/check.sh lint       # just censyslint (builds it if needed)
#   scripts/check.sh archlint   # architecture passes only (layering,
#                               # lock-order, unordered-iter) with the SARIF
#                               # report archived to build/archlint.sarif.json
#
# Sanitizer legs build into scratch dirs (build-asan, build-tsan, build-ubsan)
# and run the concurrency-heavy test subset, which is where sanitizer signal
# lives; the plain leg runs the full suite.
set -u

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 2)
RESULTS=()
FAILED=0

note() { printf '\n=== %s ===\n' "$*"; }

record() { # record <name> <rc>
  if [ "$2" -eq 0 ]; then
    RESULTS+=("PASS  $1")
  else
    RESULTS+=("FAIL  $1")
    FAILED=1
  fi
}

run_plain() {
  note "plain build + full ctest"
  cmake -B build -S . >/dev/null &&
    cmake --build build -j "$JOBS" &&
    (cd build && ctest --output-on-failure)
  record "plain (full ctest)" $?
}

# The sanitizer-relevant subset: every test that spawns threads, plus the
# engine determinism checks that exercise the parallel executor, plus the
# WAL crash-recovery torture loop (fault unwinding + POSIX I/O under ASan).
SAN_TESTS=(
  "serving_test:"
  "storage_test:JournalConcurrencyTest.*:Wal*"
  "pipeline_test:ReadSideTest.LookupsRunConcurrentlyWithIngest"
  "search_test:IndexConcurrencyTest.*"
  "engines_test:WorldDeterminismTest.Parallel*:WorldDeterminismTest.GroupCommit*"
  "core_test:ExecutorTest.*:RingTest.*:SlotBoardTest.*:FaultInjectorTest.*:Crc32cTest.*"
  "failure_injection_test:WalTortureTest.*:WalFaultTest.*"
  "trace_test:"
  "replication_test:"
  "replica_router_test:"
  "query_test:"
)

run_sanitizer() { # run_sanitizer <address|thread|undefined> <dir>
  local kind="$1" dir="$2" rc=0
  note "sanitizer leg: $kind (build dir $dir)"
  # Fault injection is pinned ON so the torture/degradation tests run
  # under every sanitizer (it defaults ON, but the legs must not silently
  # lose that coverage if the default ever changes).
  cmake -B "$dir" -S . -DCENSYSIM_SANITIZE="$kind" \
    -DCENSYSIM_FAULT_INJECTION=ON >/dev/null &&
    cmake --build "$dir" -j "$JOBS" || { record "$kind leg" 1; return; }
  for spec in "${SAN_TESTS[@]}"; do
    local bin="${spec%%:*}" filter="${spec#*:}"
    if [ -n "$filter" ]; then
      "./$dir/tests/$bin" --gtest_filter="$filter" || rc=1
    else
      "./$dir/tests/$bin" || rc=1
    fi
  done
  record "$kind leg" $rc
}

# Production shape: CENSYSIM_FAULT_INJECTION=OFF must still compile and
# the WAL/recovery tests must still pass (fault::Hit folds to a constant
# nullopt; only the injection-dependent tests drop out).
run_faultoff() {
  note "fault-injection-off leg (build dir build-faultoff)"
  local rc=0
  cmake -B build-faultoff -S . -DCENSYSIM_FAULT_INJECTION=OFF >/dev/null &&
    cmake --build build-faultoff -j "$JOBS" || {
    record "fault-off leg" 1
    return
  }
  ./build-faultoff/tests/storage_test || rc=1
  ./build-faultoff/tests/core_test --gtest_filter="FaultInjectorTest.*" || rc=1
  record "fault-off leg" $rc
}

# Flight-recorder leg (DESIGN.md §10): with TRACE=ON, run the tracer suite
# (including the determinism probe: traced digest == untraced digest) and a
# 200-tick smoke whose dump must summarize cleanly through tracereport;
# then prove -DCENSYSIM_TRACE=OFF still compiles and the macros fold away
# (the OFF build's trace_test is the static_assert + stub suite).
run_trace() {
  note "trace leg (build dirs build, build-traceoff)"
  local rc=0 out="build/trace_smoke.json"
  cmake -B build -S . -DCENSYSIM_TRACE=ON >/dev/null &&
    cmake --build build -j "$JOBS" --target trace_test tracereport || {
    record "trace leg" 1
    return
  }
  rm -f "$out"
  CENSYSIM_TRACE_SMOKE_OUT="$out" ./build/tests/trace_test || rc=1
  if [ -s "$out" ]; then
    ./build/tools/tracereport/tracereport "$out" || rc=1
    ./build/tools/tracereport/tracereport "$out" --category engine || rc=1
  else
    echo "trace leg: smoke run left no dump at $out" >&2
    rc=1
  fi
  cmake -B build-traceoff -S . -DCENSYSIM_TRACE=OFF >/dev/null &&
    cmake --build build-traceoff -j "$JOBS" --target trace_test &&
    ./build-traceoff/tests/trace_test || rc=1
  record "trace leg" $rc
}

# Thread-scaling leg: the staged pipeline's reason to exist. BM_EngineTick
# with 4 workers must move >=2x the items/sec of the 1-worker run. The
# ratio only means anything with real cores under it, so the leg skips
# (loudly) on small runners instead of reporting noise as failure.
run_scaling() {
  note "scaling leg (BM_EngineTick 1 vs 4 threads)"
  local cores
  cores=$(nproc 2>/dev/null || echo 1)
  if [ "$cores" -lt 4 ]; then
    echo "scaling leg: $cores core(s) < 4 — a 4-worker ratio would measure" \
      "scheduler contention, not pipeline scaling; skipping"
    RESULTS+=("SKIP  scaling leg (nproc=$cores)")
    return
  fi
  cmake -B build -S . >/dev/null &&
    cmake --build build -j "$JOBS" --target micro_core || {
    record "scaling leg" 1
    return
  }
  local json="build/scaling_check.json"
  ./build/bench/micro_core --benchmark_filter='BM_EngineTick/(1|4)/' \
    --benchmark_format=json >"$json" || { record "scaling leg" 1; return; }
  python3 - "$json" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)
ips = {}
for b in report.get("benchmarks", []):
    if b.get("run_type", "iteration") != "iteration":
        continue
    name = b["name"]
    if "/1/" in name:
        ips[1] = b["items_per_second"]
    elif "/4/" in name:
        ips[4] = b["items_per_second"]
if 1 not in ips or 4 not in ips:
    sys.exit("scaling leg: BM_EngineTick rows missing from bench output")
ratio = ips[4] / ips[1]
print(f"scaling leg: 1-thread {ips[1]:.0f} items/s, "
      f"4-thread {ips[4]:.0f} items/s, ratio {ratio:.2f}x")
if ratio < 2.0:
    sys.exit(f"scaling leg: 4-thread/1-thread ratio {ratio:.2f}x < 2.0x")
PY
  record "scaling leg" $?
}

# Replication leg (DESIGN.md §11): the 10-seed chaos suites — link-fault
# digest convergence, crash-mid-apply re-bootstrap, router kill/revive —
# under ASan and TSan (reusing the sanitizer build dirs), plus a
# CENSYSIM_FAULT_INJECTION=OFF build proving the replicate/serving router
# sources compile with the injection layer folded away.
run_replication() {
  note "replication leg (build dirs build-asan, build-tsan, build-faultoff)"
  local rc=0
  local chaos="ReplicationChaosTest.*:ReplicaRouterChaosTest.*"
  for pair in "address build-asan" "thread build-tsan"; do
    local kind="${pair%% *}" dir="${pair#* }"
    cmake -B "$dir" -S . -DCENSYSIM_SANITIZE="$kind" \
      -DCENSYSIM_FAULT_INJECTION=ON >/dev/null &&
      cmake --build "$dir" -j "$JOBS" \
        --target replication_test replica_router_test || { rc=1; continue; }
    "./$dir/tests/replication_test" --gtest_filter="$chaos" || rc=1
    "./$dir/tests/replica_router_test" --gtest_filter="$chaos" || rc=1
  done
  # Production shape: replication must compile and its non-injection tests
  # must pass with the fault layer compiled out.
  cmake -B build-faultoff -S . -DCENSYSIM_FAULT_INJECTION=OFF >/dev/null &&
    cmake --build build-faultoff -j "$JOBS" \
      --target replication_test replica_router_test &&
    ./build-faultoff/tests/replication_test &&
    ./build-faultoff/tests/replica_router_test || rc=1
  record "replication leg" $rc
}

# Query-tier leg (DESIGN.md §12): the standing-query determinism run and
# the columnar corruption-fallback suite under ASan and TSan (reusing the
# sanitizer build dirs). The registry's commit observer shares the
# command thread with the write side and its consumers drain from reader
# threads, so this is where a lock-order or lifetime mistake would show.
run_query() {
  note "query leg (build dirs build-asan, build-tsan)"
  local rc=0
  for pair in "address build-asan" "thread build-tsan"; do
    local kind="${pair%% *}" dir="${pair#* }"
    cmake -B "$dir" -S . -DCENSYSIM_SANITIZE="$kind" \
      -DCENSYSIM_FAULT_INJECTION=ON >/dev/null &&
      cmake --build "$dir" -j "$JOBS" --target query_test || {
      rc=1
      continue
    }
    "./$dir/tests/query_test" || rc=1
    CENSYSIM_THREADS=4 "./$dir/tests/query_test" \
      --gtest_filter="StandingDeterminismTest.*" || rc=1
  done
  record "query leg" $rc
}

run_lint() {
  note "censyslint"
  cmake -B build -S . >/dev/null &&
    cmake --build build -j "$JOBS" --target censyslint &&
    ./build/tools/censyslint/censyslint \
      --layers=tools/censyslint/layers.txt \
      --baseline=tools/censyslint/baseline.txt src &&
    ./build/tools/censyslint/censyslint --self-test tests/lint_fixtures
  record "censyslint (src + self-test)" $?
}

# Architecture-only leg: the three whole-program passes, with the SARIF
# report archived so CI can attach it as an artifact and reviewers can
# diff findings across runs.
run_archlint() {
  note "censyslint architecture passes (SARIF -> build/archlint.sarif.json)"
  local rc=0 out="build/archlint.sarif.json"
  cmake -B build -S . >/dev/null &&
    cmake --build build -j "$JOBS" --target censyslint || {
    record "archlint leg" 1
    return
  }
  ./build/tools/censyslint/censyslint \
    --passes=layering,lock-order,unordered-iter \
    --layers=tools/censyslint/layers.txt \
    --baseline=tools/censyslint/baseline.txt \
    --json="$out" src || rc=1
  # The archived report must be well-formed SARIF: parseable JSON with the
  # censyslint tool driver in runs[0].
  python3 - "$out" <<'PY' || rc=1
import json
import sys

with open(sys.argv[1]) as f:
    sarif = json.load(f)
assert sarif["version"] == "2.1.0", sarif.get("version")
driver = sarif["runs"][0]["tool"]["driver"]
assert driver["name"] == "censyslint", driver
print(f"archlint: {len(sarif['runs'][0]['results'])} result(s) in {sys.argv[1]}")
PY
  record "archlint leg" $rc
}

LEG="${1:-all}"
case "$LEG" in
  plain) run_plain ;;
  address) run_sanitizer address build-asan ;;
  thread) run_sanitizer thread build-tsan ;;
  undefined) run_sanitizer undefined build-ubsan ;;
  faultoff) run_faultoff ;;
  trace) run_trace ;;
  scaling) run_scaling ;;
  replication) run_replication ;;
  query) run_query ;;
  lint) run_lint ;;
  archlint) run_archlint ;;
  all)
    run_plain
    run_lint
    run_archlint
    run_faultoff
    run_trace
    run_scaling
    run_sanitizer address build-asan
    run_sanitizer thread build-tsan
    run_sanitizer undefined build-ubsan
    run_replication
    run_query
    ;;
  *)
    echo "usage: scripts/check.sh [plain|address|thread|undefined|faultoff|trace|scaling|replication|query|lint|archlint|all]" >&2
    exit 2
    ;;
esac

printf '\n--- summary ---\n'
for line in "${RESULTS[@]}"; do printf '%s\n' "$line"; done
exit "$FAILED"
