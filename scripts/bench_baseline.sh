#!/usr/bin/env bash
# Pinned-seed benchmark baseline (DESIGN.md §10): runs the serving, WAL,
# micro, and engine-tick benches at a fixed small scale and assembles a
# committed BENCH_<tag>.json so later PRs can diff their trajectory against
# this one. Rows follow one schema:
#
#   {"bench": ..., "metric": ..., "value": ..., "unit": ..., "seed": ...}
#
# `value` is a measured rate/latency and so varies run to run; `bench`,
# `metric`, `unit`, and `seed` are stable, which is what the trajectory
# diff keys on. The seed column records the pinned CENSYSIM_SEED the
# harness ran under.
#
# Usage: scripts/bench_baseline.sh [tag]     (default tag: pr5)
#   BUILD_DIR=<dir> to point at a non-default build tree.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"
TAG="${1:-pr5}"
OUT="$ROOT/BENCH_${TAG}.json"

for bin in bench/serving_qps bench/wal_throughput bench/micro_core; do
  if [[ ! -x "$BUILD_DIR/$bin" ]]; then
    echo "bench_baseline: $BUILD_DIR/$bin missing — build first:" >&2
    echo "  cmake -B build -S . && cmake --build build -j" >&2
    exit 1
  fi
done

# Pinned scale: small enough to finish in minutes, large enough that the
# serving/WAL paths are past their warm-up knees.
export CENSYSIM_SEED=42
export CENSYSIM_UNIVERSE_BITS=16
export CENSYSIM_SERVICES=9000
export CENSYSIM_DAYS=2
export CENSYSIM_WAL_OPS=100000
export CENSYSIM_WAL_FSYNC_OPS=2000

SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT
LINES="$SCRATCH/bench_lines.jsonl"

echo "== bench_baseline: serving_qps =="
CENSYSIM_BENCH_JSON="$LINES" "$BUILD_DIR/bench/serving_qps"

echo "== bench_baseline: wal_throughput =="
CENSYSIM_BENCH_JSON="$LINES" "$BUILD_DIR/bench/wal_throughput"

echo "== bench_baseline: micro_core (hot-path micros) =="
"$BUILD_DIR/bench/micro_core" \
  --benchmark_filter='BM_CyclicPermutationNext|BM_Sha256/1024|BM_JournalAppend|BM_JournalReconstruct|BM_SearchIndexQuery' \
  --benchmark_format=json >"$SCRATCH/micro_core.json"

echo "== bench_baseline: micro_core BM_EngineTick (staged tick) =="
"$BUILD_DIR/bench/micro_core" \
  --benchmark_filter='BM_EngineTick' \
  --benchmark_format=json >"$SCRATCH/engine_tick.json"

python3 - "$LINES" "$SCRATCH/micro_core.json" "$SCRATCH/engine_tick.json" \
  "$OUT" "$CENSYSIM_SEED" <<'PY'
import json
import sys

lines_path, micro_path, tick_path, out_path, seed = sys.argv[1:6]
seed = int(seed)
rows = []

with open(lines_path) as f:
    for line in f:
        line = line.strip()
        if line:
            rows.append(json.loads(line))

def google_benchmark_rows(path, bench):
    with open(path) as f:
        report = json.load(f)
    for b in report.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        yield {"bench": bench, "metric": b["name"],
               "value": round(b["real_time"], 3),
               "unit": b["time_unit"], "seed": seed}
        if "items_per_second" in b:
            yield {"bench": bench, "metric": b["name"] + "/items_per_second",
                   "value": round(b["items_per_second"], 1),
                   "unit": "items/s", "seed": seed}

rows.extend(google_benchmark_rows(micro_path, "micro_core"))
rows.extend(google_benchmark_rows(tick_path, "engine_tick"))

benches = sorted({r["bench"] for r in rows})
if len(benches) < 4:
    sys.exit(f"bench_baseline: only {benches} produced rows; expected >=4 "
             "benches (serving_qps, wal_throughput, micro_core, engine_tick)")

rows.sort(key=lambda r: (r["bench"], r["metric"]))
with open(out_path, "w") as f:
    json.dump(rows, f, indent=2)
    f.write("\n")
print(f"bench_baseline: wrote {len(rows)} rows across {benches} -> {out_path}")
PY
