#!/usr/bin/env bash
# Pinned-seed benchmark baseline (DESIGN.md §10): runs the serving, WAL,
# replica-scaleout, query-tier (columnar analytics + standing queries),
# micro, and engine-tick benches at a fixed small scale and assembles a
# committed BENCH_<tag>.json so later PRs can diff their trajectory against
# this one. Rows follow one schema:
#
#   {"bench": ..., "metric": ..., "value": ..., "unit": ..., "seed": ...}
#
# `value` is a measured rate/latency and so varies run to run; `bench`,
# `metric`, `unit`, and `seed` are stable, which is what the trajectory
# diff keys on. The seed column records the pinned CENSYSIM_SEED the
# harness ran under.
#
# Usage: scripts/bench_baseline.sh [--compare BASELINE.json] [tag]
#   (default tag: pr5)
#   BUILD_DIR=<dir> to point at a non-default build tree.
#   BENCH_COOLDOWN=<seconds> idle pause between benches (default 30).
#   Burstable 1-core runners throttle after sustained load, which skews
#   whichever bench happens to run later in the sequence; the cool-down
#   lets the CPU quota recover so the rows stay comparable within a run.
#
# --compare BASELINE.json: after assembling BENCH_<tag>.json, join it
# against the given baseline on (bench, metric, unit) and print the
# per-metric delta. Direction-aware: time-unit metrics (ns/us/ms) regress
# when they get slower, rate metrics (items/s, qps, ops/s) regress when
# they get smaller. Any regression beyond 10% fails the run (exit 1), so
# CI can pin a PR's trajectory against the previous PR's committed
# baseline.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"

COMPARE=""
TAG=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --compare)
      [[ $# -ge 2 ]] || { echo "bench_baseline: --compare needs a file" >&2; exit 2; }
      COMPARE="$2"; shift 2 ;;
    -h|--help)
      echo "usage: scripts/bench_baseline.sh [--compare BASELINE.json] [tag]"
      exit 0 ;;
    *)
      TAG="$1"; shift ;;
  esac
done
TAG="${TAG:-pr5}"
OUT="$ROOT/BENCH_${TAG}.json"

if [[ -n "$COMPARE" && ! -f "$COMPARE" ]]; then
  echo "bench_baseline: baseline $COMPARE not found" >&2
  exit 2
fi

for bin in bench/serving_qps bench/wal_throughput bench/replica_scaleout \
           bench/analytics_scan bench/standing_queries bench/micro_core; do
  if [[ ! -x "$BUILD_DIR/$bin" ]]; then
    echo "bench_baseline: $BUILD_DIR/$bin missing — build first:" >&2
    echo "  cmake -B build -S . && cmake --build build -j" >&2
    exit 1
  fi
done

# Pinned scale: small enough to finish in minutes, large enough that the
# serving/WAL paths are past their warm-up knees.
export CENSYSIM_SEED=42
export CENSYSIM_UNIVERSE_BITS=16
export CENSYSIM_SERVICES=9000
export CENSYSIM_DAYS=2
export CENSYSIM_WAL_OPS=100000
export CENSYSIM_WAL_FSYNC_OPS=2000

SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT
LINES="$SCRATCH/bench_lines.jsonl"
COOLDOWN="${BENCH_COOLDOWN:-30}"

echo "== bench_baseline: serving_qps =="
CENSYSIM_BENCH_JSON="$LINES" "$BUILD_DIR/bench/serving_qps"
sleep "$COOLDOWN"

echo "== bench_baseline: wal_throughput =="
CENSYSIM_BENCH_JSON="$LINES" "$BUILD_DIR/bench/wal_throughput"
sleep "$COOLDOWN"

echo "== bench_baseline: replica_scaleout (router QPS vs replica count) =="
CENSYSIM_BENCH_JSON="$LINES" "$BUILD_DIR/bench/replica_scaleout"
sleep "$COOLDOWN"

echo "== bench_baseline: analytics_scan (columnar vs journal walk) =="
CENSYSIM_BENCH_JSON="$LINES" "$BUILD_DIR/bench/analytics_scan"
sleep "$COOLDOWN"

echo "== bench_baseline: standing_queries (commit-observer fan-out) =="
CENSYSIM_BENCH_JSON="$LINES" "$BUILD_DIR/bench/standing_queries"
sleep "$COOLDOWN"

echo "== bench_baseline: micro_core (hot-path micros) =="
"$BUILD_DIR/bench/micro_core" \
  --benchmark_filter='BM_CyclicPermutationNext|BM_Sha256/1024|BM_JournalAppend|BM_JournalReconstruct|BM_SearchIndexQuery' \
  --benchmark_format=json >"$SCRATCH/micro_core.json"
sleep "$COOLDOWN"

echo "== bench_baseline: micro_core BM_EngineTick (staged tick) =="
"$BUILD_DIR/bench/micro_core" \
  --benchmark_filter='BM_EngineTick' \
  --benchmark_format=json >"$SCRATCH/engine_tick.json"

python3 - "$LINES" "$SCRATCH/micro_core.json" "$SCRATCH/engine_tick.json" \
  "$OUT" "$CENSYSIM_SEED" <<'PY'
import json
import sys

lines_path, micro_path, tick_path, out_path, seed = sys.argv[1:6]
seed = int(seed)
rows = []

with open(lines_path) as f:
    for line in f:
        line = line.strip()
        if line:
            rows.append(json.loads(line))

def google_benchmark_rows(path, bench):
    with open(path) as f:
        report = json.load(f)
    for b in report.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        yield {"bench": bench, "metric": b["name"],
               "value": round(b["real_time"], 3),
               "unit": b["time_unit"], "seed": seed}
        if "items_per_second" in b:
            yield {"bench": bench, "metric": b["name"] + "/items_per_second",
                   "value": round(b["items_per_second"], 1),
                   "unit": "items/s", "seed": seed}

rows.extend(google_benchmark_rows(micro_path, "micro_core"))
rows.extend(google_benchmark_rows(tick_path, "engine_tick"))

benches = sorted({r["bench"] for r in rows})
if len(benches) < 7:
    sys.exit(f"bench_baseline: only {benches} produced rows; expected >=7 "
             "benches (serving_qps, wal_throughput, replica_scaleout, "
             "analytics_scan, standing_queries, micro_core, engine_tick)")

rows.sort(key=lambda r: (r["bench"], r["metric"]))
with open(out_path, "w") as f:
    json.dump(rows, f, indent=2)
    f.write("\n")
print(f"bench_baseline: wrote {len(rows)} rows across {benches} -> {out_path}")
PY

if [[ -n "$COMPARE" ]]; then
  echo "== bench_baseline: compare $OUT vs $COMPARE =="
  python3 - "$COMPARE" "$OUT" <<'PY'
import json
import sys

base_path, new_path = sys.argv[1:3]
with open(base_path) as f:
    base = {(r["bench"], r["metric"], r["unit"]): r["value"]
            for r in json.load(f)}
with open(new_path) as f:
    new = {(r["bench"], r["metric"], r["unit"]): r["value"]
           for r in json.load(f)}

TIME_UNITS = {"ns", "us", "ms", "s"}  # lower is better
THRESHOLD = 0.10

print(f"{'bench':<14} {'metric':<52} {'base':>12} {'new':>12} "
      f"{'delta':>8}  verdict")
regressions = []
for key in sorted(base):
    bench, metric, unit = key
    if key not in new:
        print(f"{bench:<14} {metric:<52} {base[key]:>12} {'(gone)':>12} "
              f"{'':>8}  MISSING")
        continue
    b, n = base[key], new[key]
    delta = (n - b) / b if b else 0.0
    lower_is_better = unit in TIME_UNITS
    # Positive `improved` fraction always means "got better".
    improved = -delta if lower_is_better else delta
    if improved < -THRESHOLD:
        verdict = "REGRESSED"
        regressions.append((bench, metric, unit, b, n, delta))
    elif improved > THRESHOLD:
        verdict = "improved"
    else:
        verdict = "ok"
    print(f"{bench:<14} {metric:<52} {b:>12} {n:>12} {delta:>+7.1%}  {verdict}")
for key in sorted(set(new) - set(base)):
    bench, metric, unit = key
    print(f"{bench:<14} {metric:<52} {'(new)':>12} {new[key]:>12} "
          f"{'':>8}  new")

if regressions:
    print(f"bench_baseline: {len(regressions)} metric(s) regressed more "
          f"than {THRESHOLD:.0%}:", file=sys.stderr)
    for bench, metric, unit, b, n, delta in regressions:
        print(f"  {bench}/{metric}: {b} -> {n} {unit} ({delta:+.1%})",
              file=sys.stderr)
    sys.exit(1)
print("bench_baseline: no regressions beyond 10%")
PY
fi
