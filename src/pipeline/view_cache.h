// Sharded LRU cache of materialized HostViews (§5.2 read path).
//
// Repeated GetHost calls for an unchanged host skip journal replay and
// enrichment entirely: the read side keys cached views by
// (ip, watermark), where the watermark is the entity's journal seqno
// watermark plus the write side's scan-state revision for that host. Both
// components advance exactly when something visible in the view changes
// (a journaled delta, or non-journaled scan state such as last_seen /
// pending_eviction), so a watermark match is a proof of freshness and a
// mismatch is a precise invalidation — no TTLs, no epochs, no sweep.
//
// Concurrency: entries hash onto lock-striped shards; each shard runs an
// independent LRU whose map and recency list are guarded by the shard's
// mutex. Views are immutable shared_ptrs, so a hit is a pointer copy and
// readers never block each other on the view itself. Aggregate counters are
// relaxed atomics.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "core/metrics.h"
#include "core/rng.h"
#include "core/thread_safety.h"
#include "core/types.h"

namespace censys::pipeline {

struct HostView;

class ViewCache {
 public:
  struct Options {
    std::uint32_t shards = 8;
    // Per-shard LRU capacity; total capacity = shards * capacity_per_shard.
    std::size_t capacity_per_shard = 2048;
  };

  // Freshness stamp of a cached view. journal_seqno is the entity's
  // next-unassigned seqno at build time; scan_revision covers write-side
  // state that is deliberately not journaled (§4.6 scan state).
  struct Watermark {
    std::uint64_t journal_seqno = 0;
    std::uint64_t scan_revision = 0;
    bool operator==(const Watermark&) const = default;
  };

  ViewCache() : ViewCache(Options{}) {}
  explicit ViewCache(Options options);

  ViewCache(const ViewCache&) = delete;
  ViewCache& operator=(const ViewCache&) = delete;

  // Returns the cached view iff one exists for `ip` at exactly `current`.
  // A stale entry (any other watermark) is erased on the spot and counted
  // as an invalidation + miss.
  std::shared_ptr<const HostView> Get(IPv4Address ip, const Watermark& current);

  // Returns whatever view is cached for `ip`, at *any* watermark — the
  // graceful-degradation read path ("answer stale rather than fail").
  // Does not touch LRU order, never erases, and counts neither a hit nor
  // a miss; stale serves are tracked separately via stale_hits().
  std::shared_ptr<const HostView> GetStale(IPv4Address ip);

  // Inserts or replaces the view for `ip`; evicts the shard's LRU tail
  // when over capacity.
  void Put(IPv4Address ip, const Watermark& watermark,
           std::shared_ptr<const HostView> view);

  // Drops the entry for `ip` if present (watermark mismatches already
  // self-invalidate; this is for explicit teardown such as exclusions).
  void Invalidate(IPv4Address ip);

  void Clear();

  // --- stats -----------------------------------------------------------------
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  std::uint64_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }
  std::uint64_t stale_hits() const {
    return stale_hits_.load(std::memory_order_relaxed);
  }
  std::size_t size() const { return size_.load(std::memory_order_relaxed); }
  double HitRatio() const {
    const double total = static_cast<double>(hits() + misses());
    return total == 0 ? 0.0 : static_cast<double>(hits()) / total;
  }

  // Registers censys.serving.cache_* instruments.
  void BindMetrics(metrics::Registry* registry);

 private:
  struct Entry {
    Watermark watermark;
    std::shared_ptr<const HostView> view;
    std::list<std::uint32_t>::iterator lru_pos;
  };
  struct Shard {
    core::Mutex mu;
    std::unordered_map<std::uint32_t, Entry> entries CENSYS_GUARDED_BY(mu);
    // Front = most recently used.
    std::list<std::uint32_t> lru CENSYS_GUARDED_BY(mu);
  };

  Shard& ShardFor(IPv4Address ip) {
    return shards_[SplitMix64(ip.value()) % shard_count_];
  }

  Options options_{};
  std::size_t shard_count_ = 1;
  std::unique_ptr<Shard[]> shards_;

  std::atomic<std::size_t> size_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> invalidations_{0};
  std::atomic<std::uint64_t> stale_hits_{0};

  metrics::CounterHandle hits_metric_;
  metrics::CounterHandle misses_metric_;
  metrics::CounterHandle evictions_metric_;
  metrics::CounterHandle invalidations_metric_;
  metrics::CounterHandle stale_hits_metric_;
  metrics::GaugeHandle size_metric_;
};

}  // namespace censys::pipeline
