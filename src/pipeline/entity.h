// Entity modeling helpers (§5.1).
//
// A Host entity's journaled state is one flat field map holding every
// service under a stable per-service prefix ("svc.443/tcp.<field>"). This
// makes service add/change/remove natural delta operations and keeps the
// journal generic over entity types (Hosts, Web Properties, Certificates).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "pipeline/record.h"
#include "storage/delta.h"

namespace censys::pipeline {

// Entity IDs. Hosts are keyed by IP, web properties by name, certificates
// by SHA-256 fingerprint.
std::string HostEntityId(IPv4Address ip);
std::string WebEntityId(std::string_view name);
std::string CertEntityId(std::string_view sha256_hex);

// "svc.<port>/<transport>." prefix for a service's fields.
std::string ServicePrefix(ServiceKey key);

// Projects one service's record into entity-level fields (prefix applied).
storage::FieldMap ServiceFields(const ServiceRecord& record);

// Extracts the service keys present in an entity state.
std::vector<ServiceKey> ServicesIn(const storage::FieldMap& entity_state,
                                   IPv4Address ip);

// Rebuilds one service's record from entity state; nullopt if absent.
std::optional<ServiceRecord> RecordFrom(
    const storage::FieldMap& entity_state, ServiceKey key);

// Delta that inserts/updates the service (empty if nothing changed).
storage::Delta UpsertServiceDelta(const storage::FieldMap& entity_state,
                                  const ServiceRecord& record);

// Same, against precomputed ServiceFields(record) — interrogation workers
// project records off-thread so the serial commit stage only diffs.
storage::Delta UpsertServiceDelta(const storage::FieldMap& entity_state,
                                  ServiceKey key,
                                  const storage::FieldMap& service_fields);

// Delta that removes every field of the service.
storage::Delta RemoveServiceDelta(const storage::FieldMap& entity_state,
                                  ServiceKey key);

}  // namespace censys::pipeline
