// The structured, non-ephemeral service record.
//
// "Coalescing data collected during application-layer handshakes, we build a
// highly-structured record about each service that captures non-ephemeral
// data" (§4.2). The record is the unit that flows through the CQRS
// pipeline: it is what gets delta-encoded into the journal, reconstructed
// on the read side, enriched, indexed, and served. It lives in pipeline/
// (not interrogate/) because the layer DAG (tools/censyslint/layers.txt)
// puts the CQRS data plane below the scanning layers: interrogation
// *produces* records, the pipeline *owns* the type they flow through.
// interrogate/record.h re-exports these names for the layers above.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "core/types.h"
#include "proto/banner.h"
#include "proto/protocol.h"

namespace censys::pipeline {

// How the L7 protocol was determined — drives the labeling-accuracy
// comparison of Table 4 (handshake-validated vs keyword guessing).
enum class DetectionMethod : std::uint8_t {
  kNone,             // no protocol identified; raw response captured
  kServerBanner,     // server-initiated data fingerprinted (LZR step 1)
  kIanaHandshake,    // IANA-assigned protocol handshake completed
  kBatteryHandshake, // one of the common follow-up handshakes completed
  kTlsWrapped,       // identified within an established TLS session
  kKeywordGuess,     // labeled from keywords, NOT validated (competitor mode)
  kPortAssumption,   // labeled purely from the port number (competitor mode)
};

std::string_view ToString(DetectionMethod m);

struct ServiceRecord {
  ServiceKey key;
  Timestamp observed_at;

  // Detected protocol; kUnknown when only a raw response was captured.
  proto::Protocol protocol = proto::Protocol::kUnknown;
  DetectionMethod detection = DetectionMethod::kNone;
  // True iff a full L7 handshake for `protocol` was completed. Censys "will
  // only label a service as running a protocol if it is able to complete an
  // L7 handshake" (§6.3); competitor models set protocol without this.
  bool handshake_validated = false;

  std::string banner;          // normalized textual banner, if any
  std::string raw_response;    // unfingerprintable data, if any
  proto::SoftwareInfo software;
  proto::DeviceIdentity device;

  // HTTP-specific.
  std::string html_title;
  std::string page_keywords;

  // TLS context.
  bool tls = false;
  std::string tls_version;
  std::string jarm;
  std::string ja4s;
  std::string cert_sha256;

  // Name used for the handshake (web properties); empty for IP scans.
  std::string sni_name;

  // Flag set by pseudo-service filtering in the pipeline.
  bool pseudo_suspect = false;

  // Protocol-specific structured fields extracted by the per-protocol
  // scanners ("we have implemented approximately 200 protocol scanners",
  // §4.2) — e.g. ssh.hostkey_sha256, http.headers.server, modbus.unit_id.
  // Keys are dotted and lowercase; they serialize under "x." in ToFields.
  std::map<std::string, std::string> extra;

  // Canonical flat field map used for delta encoding, search indexing, and
  // fingerprint evaluation. Keys are stable, dotted, lowercase.
  std::map<std::string, std::string> ToFields() const;
  static ServiceRecord FromFields(
      ServiceKey key, const std::map<std::string, std::string>& fields);

  bool operator==(const ServiceRecord& other) const {
    return ToFields() == other.ToFields() && key == other.key;
  }
};

}  // namespace censys::pipeline
