// CQRS read side (§5.2).
//
// Constructs the user representation of an entity at read time: finds the
// latest snapshot prior to the requested timestamp, replays journal events,
// then enriches the reconstructed record with WHOIS/geolocation/ASN
// context, fingerprint-derived labels, and known vulnerabilities.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fingerprint/fingerprints.h"
#include "fingerprint/vulns.h"
#include "interrogate/record.h"
#include "pipeline/write_side.h"
#include "simnet/blocks.h"
#include "storage/journal.h"

namespace censys::pipeline {

// One service as presented to users: journaled record + derived context +
// scan-state surfaced per §4.6 ("include the last time Censys saw the
// service" and the pending-eviction mark).
struct ServiceView {
  interrogate::ServiceRecord record;
  std::optional<Timestamp> last_seen;
  bool pending_eviction = false;

  std::optional<fingerprint::DerivedLabels> labels;
  std::vector<std::string> cves;
  double max_cvss = 0.0;
  bool kev = false;
};

struct HostView {
  IPv4Address ip;
  // Enrichment from external data (GeoIP / WHOIS / routing).
  std::string country;
  std::uint32_t asn = 0;
  std::string as_org;
  std::string network_type;

  std::vector<ServiceView> services;
};

class ReadSide {
 public:
  ReadSide(const storage::EventJournal& journal, const WriteSide& write_side,
           const simnet::BlockPlan& geo,
           const fingerprint::FingerprintEngine* fingerprints = nullptr,
           const fingerprint::CveDatabase* cves = nullptr)
      : journal_(journal), write_side_(write_side), geo_(geo),
        fingerprints_(fingerprints), cves_(cves) {}

  // Current state (fast path: cached state, no replay).
  std::optional<HostView> GetHost(IPv4Address ip) const;
  // Historical state ("What did IP A look like at time B?").
  std::optional<HostView> GetHostAt(IPv4Address ip, Timestamp at) const;

  std::uint64_t lookups_served() const { return lookups_; }

 private:
  HostView BuildView(IPv4Address ip, const storage::FieldMap& state,
                     bool attach_scan_state) const;
  void Enrich(ServiceView& view) const;

  const storage::EventJournal& journal_;
  const WriteSide& write_side_;
  const simnet::BlockPlan& geo_;
  const fingerprint::FingerprintEngine* fingerprints_;
  const fingerprint::CveDatabase* cves_;
  mutable std::uint64_t lookups_ = 0;
};

}  // namespace censys::pipeline
