// CQRS read side (§5.2).
//
// Constructs the user representation of an entity at read time: finds the
// latest snapshot prior to the requested timestamp, replays journal events,
// then enriches the reconstructed record with WHOIS/geolocation/ASN
// context, fingerprint-derived labels, and known vulnerabilities. The
// enrichment sources live in layers above this one, so they arrive through
// the pipeline::ViewEnricher interface (pipeline/enrich.h), implemented by
// engines/enrichment.h.
//
// GetHost / GetHostAt are safe to call from many threads concurrently with
// the command thread: state comes from the journal's locked snapshot path
// and the write side's locked scan-state copies, never from raw pointers.
// With EnableCache(), current-state lookups are served from a watermark-
// keyed ViewCache and skip replay + enrichment when the host is unchanged.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "pipeline/enrich.h"
#include "pipeline/record.h"
#include "pipeline/view_cache.h"
#include "pipeline/write_side.h"
#include "storage/journal.h"

namespace censys::pipeline {

// One service as presented to users: journaled record + derived context +
// scan-state surfaced per §4.6 ("include the last time Censys saw the
// service" and the pending-eviction mark).
struct ServiceView {
  ServiceRecord record;
  std::optional<Timestamp> last_seen;
  bool pending_eviction = false;

  std::optional<DerivedLabels> labels;
  std::vector<std::string> cves;
  double max_cvss = 0.0;
  bool kev = false;
};

struct HostView {
  IPv4Address ip;
  // Enrichment from external data (GeoIP / WHOIS / routing).
  std::string country;
  std::uint32_t asn = 0;
  std::string as_org;
  std::string network_type;

  // Journal seqno watermark of the state this view was built from
  // (0 when reconstructed historically via GetHostAt).
  std::uint64_t watermark = 0;

  std::vector<ServiceView> services;
};

class ReadSide {
 public:
  // `enricher` may be null (views carry journaled state only, no geo
  // attribution, labels, or CVE matches) and must outlive the ReadSide.
  ReadSide(const storage::EventJournal& journal, const WriteSide& write_side,
           const ViewEnricher* enricher = nullptr)
      : journal_(journal), write_side_(write_side), enricher_(enricher) {}

  // Current state (fast path: cached state, no replay; with EnableCache a
  // repeat lookup of an unchanged host is a cache hit and skips the build).
  std::optional<HostView> GetHost(IPv4Address ip) const;
  // Historical state ("What did IP A look like at time B?"). Never cached.
  std::optional<HostView> GetHostAt(IPv4Address ip, Timestamp at) const;

  // Last-known view from the cache, at any watermark, bypassing the fresh
  // read path entirely. The serving frontend's degradation ladder falls
  // back to this when fresh reads keep failing; nullopt without a cache or
  // when the host was never cached.
  std::optional<HostView> GetHostStale(IPv4Address ip) const;

  // Installs a ViewCache for GetHost. Call before serving traffic; not
  // thread-safe against in-flight lookups.
  ViewCache& EnableCache(ViewCache::Options options = {});
  ViewCache* cache() const { return cache_.get(); }

  std::uint64_t lookups_served() const {
    return lookups_.load(std::memory_order_relaxed);
  }

  // Registers censys.serving.lookups plus the cache's instruments (in
  // either order relative to EnableCache).
  void BindMetrics(metrics::Registry* registry);

 private:
  HostView BuildView(IPv4Address ip, const storage::FieldMap& state,
                     bool attach_scan_state) const;

  const storage::EventJournal& journal_;
  const WriteSide& write_side_;
  const ViewEnricher* enricher_;
  mutable std::atomic<std::uint64_t> lookups_{0};

  std::unique_ptr<ViewCache> cache_;
  metrics::Registry* registry_ = nullptr;
  metrics::CounterHandle lookups_metric_;
};

}  // namespace censys::pipeline
