#include "pipeline/record.h"

#include <charconv>

namespace censys::pipeline {

std::string_view ToString(DetectionMethod m) {
  switch (m) {
    case DetectionMethod::kNone: return "none";
    case DetectionMethod::kServerBanner: return "server-banner";
    case DetectionMethod::kIanaHandshake: return "iana-handshake";
    case DetectionMethod::kBatteryHandshake: return "battery-handshake";
    case DetectionMethod::kTlsWrapped: return "tls-wrapped";
    case DetectionMethod::kKeywordGuess: return "keyword-guess";
    case DetectionMethod::kPortAssumption: return "port-assumption";
  }
  return "?";
}

std::map<std::string, std::string> ServiceRecord::ToFields() const {
  std::map<std::string, std::string> f;
  auto put = [&](const char* key, const std::string& value) {
    if (!value.empty()) f[key] = value;
  };
  f["service.port"] = std::to_string(key.port);
  f["service.transport"] = std::string(censys::ToString(key.transport));
  f["service.name"] = std::string(proto::Name(protocol));
  f["service.detection"] = std::string(ToString(detection));
  f["service.validated"] = handshake_validated ? "true" : "false";
  put("service.banner", banner);
  put("service.raw", raw_response);
  put("software.vendor", software.vendor);
  put("software.product", software.product);
  put("software.version", software.version);
  put("device.manufacturer", device.manufacturer);
  put("device.model", device.model);
  put("http.html_title", html_title);
  put("http.page_keywords", page_keywords);
  if (tls) {
    f["tls.present"] = "true";
    put("tls.version", tls_version);
    put("tls.jarm", jarm);
    put("tls.ja4s", ja4s);
    put("tls.cert_sha256", cert_sha256);
  }
  put("service.sni_name", sni_name);
  if (pseudo_suspect) f["service.pseudo_suspect"] = "true";
  for (const auto& [key, value] : extra) {
    f["x." + key] = value;
  }
  return f;
}

ServiceRecord ServiceRecord::FromFields(
    ServiceKey key, const std::map<std::string, std::string>& fields) {
  ServiceRecord r;
  r.key = key;
  auto get = [&](const char* name) -> std::string {
    const auto it = fields.find(name);
    return it == fields.end() ? std::string() : it->second;
  };
  if (const auto p = proto::FromName(get("service.name"))) r.protocol = *p;
  r.handshake_validated = get("service.validated") == "true";
  const std::string detection = get("service.detection");
  for (int m = 0; m <= static_cast<int>(DetectionMethod::kPortAssumption); ++m) {
    if (detection == ToString(static_cast<DetectionMethod>(m))) {
      r.detection = static_cast<DetectionMethod>(m);
      break;
    }
  }
  r.banner = get("service.banner");
  r.raw_response = get("service.raw");
  r.software.vendor = get("software.vendor");
  r.software.product = get("software.product");
  r.software.version = get("software.version");
  r.device.manufacturer = get("device.manufacturer");
  r.device.model = get("device.model");
  r.html_title = get("http.html_title");
  r.page_keywords = get("http.page_keywords");
  r.tls = get("tls.present") == "true";
  r.tls_version = get("tls.version");
  r.jarm = get("tls.jarm");
  r.ja4s = get("tls.ja4s");
  r.cert_sha256 = get("tls.cert_sha256");
  r.sni_name = get("service.sni_name");
  r.pseudo_suspect = get("service.pseudo_suspect") == "true";
  for (const auto& [key, value] : fields) {
    if (key.size() > 2 && key[0] == 'x' && key[1] == '.') {
      r.extra.emplace(key.substr(2), value);
    }
  }
  return r;
}

}  // namespace censys::pipeline
