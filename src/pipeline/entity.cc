#include "pipeline/entity.h"

#include <charconv>

#include "core/strings.h"

namespace censys::pipeline {

std::string HostEntityId(IPv4Address ip) { return ip.ToString(); }

std::string WebEntityId(std::string_view name) {
  return "web:" + ToLower(name);
}

std::string CertEntityId(std::string_view sha256_hex) {
  return "cert:" + std::string(sha256_hex);
}

std::string ServicePrefix(ServiceKey key) {
  std::string prefix = "svc.";
  prefix += std::to_string(key.port);
  prefix += '/';
  prefix += censys::ToString(key.transport);
  prefix += '.';
  return prefix;
}

storage::FieldMap ServiceFields(const ServiceRecord& record) {
  const std::string prefix = ServicePrefix(record.key);
  storage::FieldMap out;
  for (const auto& [key, value] : record.ToFields()) {
    out.emplace(prefix + key, value);
  }
  return out;
}

std::vector<ServiceKey> ServicesIn(const storage::FieldMap& entity_state,
                                   IPv4Address ip) {
  std::vector<ServiceKey> keys;
  std::string last_prefix;
  for (const auto& [field, value] : entity_state) {
    if (!StartsWith(field, "svc.")) continue;
    const std::size_t dot = field.find('.', 4);
    if (dot == std::string::npos) continue;
    const std::string prefix = field.substr(0, dot);
    if (prefix == last_prefix) continue;
    last_prefix = prefix;

    // prefix is "svc.<port>/<transport>".
    const std::string_view spec = std::string_view(prefix).substr(4);
    const std::size_t slash = spec.find('/');
    if (slash == std::string_view::npos) continue;
    unsigned port = 0;
    const auto* begin = spec.data();
    if (std::from_chars(begin, begin + slash, port).ec != std::errc())
      continue;
    const Transport transport = spec.substr(slash + 1) == "udp"
                                    ? Transport::kUdp
                                    : Transport::kTcp;
    keys.push_back(ServiceKey{ip, static_cast<Port>(port), transport});
  }
  return keys;
}

std::optional<ServiceRecord> RecordFrom(
    const storage::FieldMap& entity_state, ServiceKey key) {
  const std::string prefix = ServicePrefix(key);
  storage::FieldMap fields;
  for (auto it = entity_state.lower_bound(prefix);
       it != entity_state.end() && StartsWith(it->first, prefix); ++it) {
    fields.emplace(it->first.substr(prefix.size()), it->second);
  }
  if (fields.empty()) return std::nullopt;
  return ServiceRecord::FromFields(key, fields);
}

storage::Delta UpsertServiceDelta(const storage::FieldMap& entity_state,
                                  const ServiceRecord& record) {
  return UpsertServiceDelta(entity_state, record.key, ServiceFields(record));
}

storage::Delta UpsertServiceDelta(const storage::FieldMap& entity_state,
                                  ServiceKey key,
                                  const storage::FieldMap& service_fields) {
  const std::string prefix = ServicePrefix(key);
  storage::FieldMap before;
  for (auto it = entity_state.lower_bound(prefix);
       it != entity_state.end() && StartsWith(it->first, prefix); ++it) {
    before.emplace(it->first, it->second);
  }
  return storage::ComputeDelta(before, service_fields);
}

storage::Delta RemoveServiceDelta(const storage::FieldMap& entity_state,
                                  ServiceKey key) {
  const std::string prefix = ServicePrefix(key);
  storage::Delta delta;
  for (auto it = entity_state.lower_bound(prefix);
       it != entity_state.end() && StartsWith(it->first, prefix); ++it) {
    delta.ops.push_back(
        {storage::FieldOp::Kind::kRemove, it->first, {}});
  }
  return delta;
}

}  // namespace censys::pipeline
