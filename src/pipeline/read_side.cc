#include "pipeline/read_side.h"

#include "pipeline/entity.h"

namespace censys::pipeline {

std::optional<HostView> ReadSide::GetHost(IPv4Address ip) const {
  ++lookups_;
  const storage::FieldMap* state = journal_.CurrentState(HostEntityId(ip));
  if (state == nullptr || state->empty()) return std::nullopt;
  return BuildView(ip, *state, /*attach_scan_state=*/true);
}

std::optional<HostView> ReadSide::GetHostAt(IPv4Address ip,
                                            Timestamp at) const {
  ++lookups_;
  const auto state = journal_.ReconstructAt(HostEntityId(ip), at);
  if (!state.has_value() || state->empty()) return std::nullopt;
  return BuildView(ip, *state, /*attach_scan_state=*/false);
}

HostView ReadSide::BuildView(IPv4Address ip, const storage::FieldMap& state,
                             bool attach_scan_state) const {
  HostView view;
  view.ip = ip;
  // External-context enrichment (GeoIP, WHOIS, origin ASN). In the
  // simulation the block plan is that external data source.
  if (ip.value() < geo_.universe_size()) {
    const simnet::NetworkBlock& block = geo_.BlockOf(ip);
    view.country = std::string(simnet::ToString(block.country));
    view.asn = block.asn;
    view.as_org = block.org;
    view.network_type = std::string(simnet::ToString(block.type));
  }

  for (ServiceKey key : ServicesIn(state, ip)) {
    auto record = RecordFrom(state, key);
    if (!record.has_value()) continue;
    ServiceView service;
    service.record = std::move(*record);
    if (attach_scan_state) {
      if (const ServiceState* scan_state = write_side_.GetState(key)) {
        service.last_seen = scan_state->last_seen;
        service.pending_eviction =
            scan_state->pending_eviction_since.has_value();
      }
    }
    Enrich(service);
    view.services.push_back(std::move(service));
  }
  return view;
}

void ReadSide::Enrich(ServiceView& view) const {
  if (fingerprints_ != nullptr) {
    view.labels = fingerprints_->Evaluate(view.record.ToFields());
  }
  if (cves_ != nullptr && !view.record.software.product.empty()) {
    for (const fingerprint::VulnEntry* vuln :
         cves_->Lookup(view.record.software)) {
      view.cves.push_back(vuln->cve);
      if (vuln->cvss > view.max_cvss) view.max_cvss = vuln->cvss;
      view.kev = view.kev || vuln->kev;
    }
  }
}

}  // namespace censys::pipeline
