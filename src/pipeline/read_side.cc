#include "pipeline/read_side.h"

#include "core/trace.h"
#include "pipeline/entity.h"

namespace censys::pipeline {

ViewCache& ReadSide::EnableCache(ViewCache::Options options) {
  cache_ = std::make_unique<ViewCache>(options);
  if (registry_ != nullptr) cache_->BindMetrics(registry_);
  return *cache_;
}

void ReadSide::BindMetrics(metrics::Registry* registry) {
  registry_ = registry;
  lookups_metric_ = metrics::BindCounter(registry, "censys.serving.lookups");
  if (cache_ != nullptr) cache_->BindMetrics(registry);
}

std::optional<HostView> ReadSide::GetHost(IPv4Address ip) const {
  TRACE_SPAN_VAR(span, "pipeline", "get_host");
  lookups_.fetch_add(1, std::memory_order_relaxed);
  lookups_metric_.Add();
  const std::string entity = HostEntityId(ip);

  if (cache_ != nullptr) {
    // Stamp components are read before the state they certify: if the
    // writer advances either between here and the Put, the stored stamp is
    // already stale and the next Get self-invalidates.
    const ViewCache::Watermark stamp{journal_.Watermark(entity),
                                     write_side_.ScanRevision(ip)};
    if (stamp.journal_seqno == 0) return std::nullopt;  // no journaled state
    if (const auto cached = cache_->Get(ip, stamp)) {
      span.SetArg("cache", "hit");
      return *cached;
    }
    span.SetArg("cache", "miss");

    const auto snap = journal_.SnapshotState(entity);
    if (!snap.has_value() || snap->fields.empty()) return std::nullopt;
    HostView view = BuildView(ip, snap->fields, /*attach_scan_state=*/true);
    view.watermark = snap->watermark;
    cache_->Put(ip, ViewCache::Watermark{snap->watermark, stamp.scan_revision},
                std::make_shared<const HostView>(view));
    return view;
  }

  const auto snap = journal_.SnapshotState(entity);
  if (!snap.has_value() || snap->fields.empty()) return std::nullopt;
  HostView view = BuildView(ip, snap->fields, /*attach_scan_state=*/true);
  view.watermark = snap->watermark;
  return view;
}

std::optional<HostView> ReadSide::GetHostStale(IPv4Address ip) const {
  if (cache_ == nullptr) return std::nullopt;
  if (const auto cached = cache_->GetStale(ip)) return *cached;
  return std::nullopt;
}

std::optional<HostView> ReadSide::GetHostAt(IPv4Address ip,
                                            Timestamp at) const {
  TRACE_SPAN("pipeline", "get_host_at");
  lookups_.fetch_add(1, std::memory_order_relaxed);
  lookups_metric_.Add();
  const auto state = journal_.ReconstructAt(HostEntityId(ip), at);
  if (!state.has_value() || state->empty()) return std::nullopt;
  return BuildView(ip, *state, /*attach_scan_state=*/false);
}

HostView ReadSide::BuildView(IPv4Address ip, const storage::FieldMap& state,
                             bool attach_scan_state) const {
  HostView view;
  view.ip = ip;
  // External-context enrichment (GeoIP, WHOIS, origin ASN) comes from the
  // layers above through the injected enricher.
  if (enricher_ != nullptr) {
    HostContext context = enricher_->HostContextFor(ip);
    view.country = std::move(context.country);
    view.asn = context.asn;
    view.as_org = std::move(context.as_org);
    view.network_type = std::move(context.network_type);
  }

  for (ServiceKey key : ServicesIn(state, ip)) {
    auto record = RecordFrom(state, key);
    if (!record.has_value()) continue;
    ServiceView service;
    service.record = std::move(*record);
    if (attach_scan_state) {
      if (const auto scan_state = write_side_.GetStateCopy(key)) {
        service.last_seen = scan_state->last_seen;
        service.pending_eviction =
            scan_state->pending_eviction_since.has_value();
      }
    }
    if (enricher_ != nullptr) enricher_->AnnotateService(service);
    view.services.push_back(std::move(service));
  }
  return view;
}

}  // namespace censys::pipeline
