// Read-side enrichment contract.
//
// The CQRS read side presents journaled records enriched with context the
// pipeline layer itself must not know how to compute: WHOIS/geolocation/ASN
// attribution, fingerprint-derived device labels, and known-vulnerability
// matches. The layer DAG (tools/censyslint/layers.txt) puts pipeline/ below
// simnet/ and fingerprint/, so the dependency is inverted: pipeline owns
// the *shape* of enrichment (this header), and a higher layer — in this
// tree, engines/enrichment.h — implements it against the concrete geo plan,
// fingerprint corpus, and CVE database, then hands the implementation to
// ReadSide at wiring time.
#pragma once

#include <cstdint>
#include <string>

#include "core/types.h"

namespace censys::pipeline {

struct ServiceView;  // read_side.h

// Derived context a fingerprint attaches to a service. Owned by pipeline
// because it is part of the served view; fingerprint/ re-exports the name
// for its corpus definitions.
struct DerivedLabels {
  std::string manufacturer;
  std::string product;
  std::string device_type;  // "router", "camera", "plc", "nas", ...
  std::string cpe;
};

// Host-level attribution from external data (GeoIP / WHOIS / routing).
struct HostContext {
  std::string country;
  std::uint32_t asn = 0;
  std::string as_org;
  std::string network_type;
};

// Implemented above the scanning layers (engines/enrichment.h). Both hooks
// must be pure and thread-safe: the read side calls them from many reader
// threads concurrently, and view content must be a function of the record
// alone so cached and rebuilt views agree.
class ViewEnricher {
 public:
  virtual ~ViewEnricher() = default;

  // Attribution for one host; called once per view build.
  virtual HostContext HostContextFor(IPv4Address ip) const = 0;

  // Attaches labels / CVE matches to one reconstructed service view.
  virtual void AnnotateService(ServiceView& view) const = 0;
};

}  // namespace censys::pipeline
