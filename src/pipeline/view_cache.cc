#include "pipeline/view_cache.h"

#include <algorithm>

#include "pipeline/read_side.h"

namespace censys::pipeline {

ViewCache::ViewCache(Options options)
    : options_(options),
      shard_count_(std::max<std::uint32_t>(1, options.shards)),
      shards_(std::make_unique<Shard[]>(shard_count_)) {
  options_.capacity_per_shard = std::max<std::size_t>(
      1, options_.capacity_per_shard);
}

void ViewCache::BindMetrics(metrics::Registry* registry) {
  hits_metric_ = metrics::BindCounter(registry, "censys.serving.cache_hits");
  misses_metric_ =
      metrics::BindCounter(registry, "censys.serving.cache_misses");
  evictions_metric_ =
      metrics::BindCounter(registry, "censys.serving.cache_evictions");
  invalidations_metric_ =
      metrics::BindCounter(registry, "censys.serving.cache_invalidations");
  stale_hits_metric_ =
      metrics::BindCounter(registry, "censys.serving.cache_stale_hits");
  size_metric_ = metrics::BindGauge(registry, "censys.serving.cache_size");
}

std::shared_ptr<const HostView> ViewCache::GetStale(IPv4Address ip) {
  Shard& shard = ShardFor(ip);
  const core::MutexLock lock(shard.mu);
  const auto it = shard.entries.find(ip.value());
  if (it == shard.entries.end()) return nullptr;
  stale_hits_.fetch_add(1, std::memory_order_relaxed);
  stale_hits_metric_.Add();
  return it->second.view;
}

std::shared_ptr<const HostView> ViewCache::Get(IPv4Address ip,
                                               const Watermark& current) {
  Shard& shard = ShardFor(ip);
  const core::MutexLock lock(shard.mu);
  const auto it = shard.entries.find(ip.value());
  if (it == shard.entries.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    misses_metric_.Add();
    return nullptr;
  }
  if (!(it->second.watermark == current)) {
    // The entity moved on since this view was built: precise invalidation.
    shard.lru.erase(it->second.lru_pos);
    shard.entries.erase(it);
    size_.fetch_sub(1, std::memory_order_relaxed);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    invalidations_metric_.Add();
    misses_.fetch_add(1, std::memory_order_relaxed);
    misses_metric_.Add();
    size_metric_.Set(static_cast<std::int64_t>(size()));
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
  hits_.fetch_add(1, std::memory_order_relaxed);
  hits_metric_.Add();
  return it->second.view;
}

void ViewCache::Put(IPv4Address ip, const Watermark& watermark,
                    std::shared_ptr<const HostView> view) {
  Shard& shard = ShardFor(ip);
  const core::MutexLock lock(shard.mu);
  const auto it = shard.entries.find(ip.value());
  if (it != shard.entries.end()) {
    it->second.watermark = watermark;
    it->second.view = std::move(view);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
    return;
  }
  shard.lru.push_front(ip.value());
  shard.entries.emplace(
      ip.value(), Entry{watermark, std::move(view), shard.lru.begin()});
  size_.fetch_add(1, std::memory_order_relaxed);
  while (shard.entries.size() > options_.capacity_per_shard) {
    const std::uint32_t victim = shard.lru.back();
    shard.lru.pop_back();
    shard.entries.erase(victim);
    size_.fetch_sub(1, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    evictions_metric_.Add();
  }
  size_metric_.Set(static_cast<std::int64_t>(size()));
}

void ViewCache::Invalidate(IPv4Address ip) {
  Shard& shard = ShardFor(ip);
  const core::MutexLock lock(shard.mu);
  const auto it = shard.entries.find(ip.value());
  if (it == shard.entries.end()) return;
  shard.lru.erase(it->second.lru_pos);
  shard.entries.erase(it);
  size_.fetch_sub(1, std::memory_order_relaxed);
  invalidations_.fetch_add(1, std::memory_order_relaxed);
  invalidations_metric_.Add();
}

void ViewCache::Clear() {
  for (std::size_t s = 0; s < shard_count_; ++s) {
    const core::MutexLock lock(shards_[s].mu);
    size_.fetch_sub(shards_[s].entries.size(), std::memory_order_relaxed);
    shards_[s].entries.clear();
    shards_[s].lru.clear();
  }
  size_metric_.Set(0);
}

}  // namespace censys::pipeline
