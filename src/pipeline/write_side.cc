#include "pipeline/write_side.h"

#include <algorithm>

#include "core/strings.h"
#include "core/trace.h"
#include "pipeline/entity.h"

namespace censys::pipeline {

std::size_t EventBus::Drain() {
  std::size_t delivered = 0;
  while (!queue_.empty()) {
    const PipelineEvent event = std::move(queue_.front());
    queue_.pop_front();
    for (const Handler& handler : handlers_) handler(event);
    ++delivered;
  }
  return delivered;
}

WriteSide::WriteSide(storage::EventJournal& journal, EventBus& bus,
                     Options options)
    : journal_(journal), bus_(bus), options_(options) {}

void WriteSide::BindMetrics(metrics::Registry* registry) {
  ingest_metric_ =
      metrics::BindCounter(registry, "censys.pipeline.ingest_scans");
  failure_metric_ =
      metrics::BindCounter(registry, "censys.pipeline.ingest_failures");
  eviction_metric_ =
      metrics::BindCounter(registry, "censys.pipeline.evictions");
  pseudo_metric_ =
      metrics::BindCounter(registry, "censys.pipeline.pseudo_suppressed");
  tracked_metric_ =
      metrics::BindGauge(registry, "censys.pipeline.tracked_services");
}

std::uint64_t WriteSide::ContentHash(const ServiceRecord& record) {
  return Fnv1a64(record.banner) ^ Fnv1a64(record.html_title) ^
         Fnv1a64(std::string(proto::Name(record.protocol)));
}

void WriteSide::IngestScan(const ServiceRecord& record) {
  command_role_.AdoptCurrentThread();
  journal_.command_role().AdoptCurrentThread();
  const core::MutexLock lock(mu_);
  IngestScanLocked(record, nullptr, nullptr);
}

void WriteSide::IngestScan(const ServiceRecord& record,
                           const storage::FieldMap& service_fields,
                           std::uint64_t content_hash) {
  command_role_.AdoptCurrentThread();
  journal_.command_role().AdoptCurrentThread();
  const core::MutexLock lock(mu_);
  IngestScanLocked(record, &service_fields, &content_hash);
}

void WriteSide::IngestScanLocked(const ServiceRecord& record,
                                 const storage::FieldMap* service_fields,
                                 const std::uint64_t* precomputed_hash) {
  scans_ingested_.fetch_add(1, std::memory_order_relaxed);
  ingest_metric_.Add();
  const std::uint64_t packed = record.key.Pack();
  const std::uint32_t host = record.key.ip.value();

  // A staged (unapplied) event for this host would make the delta below
  // diff against stale state — drain the batch first. The flush decision
  // depends only on commit sequence order, never on thread timing.
  if (batching_ && staged_hosts_.contains(host)) {
    revisit_flushes_.fetch_add(1, std::memory_order_relaxed);
    FlushCommitBatchLocked();
  }

  // --- pseudo-service filtering ----------------------------------------------
  if (options_.filter_pseudo_services) {
    if (pseudo_hosts_.contains(host)) {
      pseudo_suppressed_.fetch_add(1, std::memory_order_relaxed);
      pseudo_metric_.Add();
      return;
    }
    HostCounts& counts = host_counts_[host];
    const std::uint64_t content_hash =
        precomputed_hash != nullptr ? *precomputed_hash : ContentHash(record);
    if (!states_.contains(packed)) {
      ++counts.total;
      ++counts.by_content[content_hash];
    }
    if (counts.by_content[content_hash] > options_.pseudo_service_threshold) {
      // Host flagged: remove everything we had for it and suppress future
      // services. Removals are journaled write-through, so drain any other
      // staged events first to keep the WAL in sequence order.
      if (batching_) FlushCommitBatchLocked();
      pseudo_hosts_.emplace(host, true);
      const std::string entity = HostEntityId(record.key.ip);
      if (const storage::FieldMap* state = journal_.CurrentState(entity)) {
        for (ServiceKey key : ServicesIn(*state, record.key.ip)) {
          const storage::Delta delta = RemoveServiceDelta(*state, key);
          journal_.Append(entity, storage::EventKind::kServiceRemoved,
                          record.observed_at, delta);
          states_.erase(key.Pack());
          pseudo_suppressed_.fetch_add(1, std::memory_order_relaxed);
          pseudo_metric_.Add();
        }
      }
      BumpRevision(record.key.ip);
      tracked_metric_.Set(static_cast<std::int64_t>(states_.size()));
      return;
    }
  }

  // --- command processing -------------------------------------------------------
  std::string entity = HostEntityId(record.key.ip);
  const storage::FieldMap* current = journal_.CurrentState(entity);
  static const storage::FieldMap kEmpty;
  const storage::FieldMap& state = current != nullptr ? *current : kEmpty;

  const bool existed = states_.contains(packed);
  storage::Delta delta =
      service_fields != nullptr
          ? UpsertServiceDelta(state, record.key, *service_fields)
          : UpsertServiceDelta(state, record);

  auto& service_state = states_[packed];
  if (!existed) {
    service_state.key = record.key;
    service_state.first_seen = record.observed_at;
  }
  service_state.last_seen = record.observed_at;
  service_state.last_refreshed = record.observed_at;
  service_state.pending_eviction_since.reset();
  // Even a no-op refresh (empty delta, nothing journaled) moved last_seen,
  // which is visible in HostViews — cached views must not survive it.
  BumpRevision(record.key.ip);

  if (!delta.empty()) {
    const storage::EventKind kind = existed
                                        ? storage::EventKind::kServiceChanged
                                        : storage::EventKind::kServiceFound;
    if (batching_) {
      staged_bus_.push_back(
          PipelineEvent{entity, record.key, kind, record.observed_at});
      staged_events_.push_back(storage::EventJournal::PendingEvent{
          std::move(entity), kind, record.observed_at, std::move(delta)});
      staged_hosts_.insert(host);
    } else {
      journal_.Append(entity, kind, record.observed_at, delta);
      bus_.Publish(PipelineEvent{entity, record.key, kind, record.observed_at});
    }
  }
  tracked_metric_.Set(static_cast<std::int64_t>(states_.size()));
}

void WriteSide::BeginCommitBatch() {
  command_role_.AdoptCurrentThread();
  journal_.command_role().AdoptCurrentThread();
  const core::MutexLock lock(mu_);
  batching_ = true;
}

void WriteSide::FlushCommitBatch() {
  const core::MutexLock lock(mu_);
  FlushCommitBatchLocked();
}

void WriteSide::EndCommitBatch() {
  const core::MutexLock lock(mu_);
  FlushCommitBatchLocked();
  batching_ = false;
}

void WriteSide::FlushCommitBatchLocked() {
  if (staged_events_.empty()) return;
  TRACE_SPAN_VAR(span, "pipeline", "commit_batch.flush");
  span.SetArg("events", std::to_string(staged_events_.size()));
  // One journal batch append (one WAL write, at most one fsync), then the
  // bus events in the same sequence order the scans committed in. The
  // staged events move into the append; on a WAL failure or injected
  // crash the batch is rejected (or lost) as a unit, so the staging
  // buffers are cleared either way.
  std::vector<storage::EventJournal::PendingEvent> batch;
  batch.swap(staged_events_);
  staged_hosts_.clear();
  try {
    journal_.AppendBatch(std::move(batch));
  } catch (...) {
    staged_bus_.clear();
    throw;
  }
  for (PipelineEvent& event : staged_bus_) bus_.Publish(std::move(event));
  staged_bus_.clear();
  batch_flushes_.fetch_add(1, std::memory_order_relaxed);
}

void WriteSide::IngestFailure(ServiceKey key, Timestamp at) {
  command_role_.AdoptCurrentThread();
  const core::MutexLock lock(mu_);
  failure_metric_.Add();
  const auto it = states_.find(key.Pack());
  if (it == states_.end()) return;
  it->second.last_refreshed = at;
  if (!it->second.pending_eviction_since.has_value()) {
    // "Mark services as pending eviction after the first scan fails."
    it->second.pending_eviction_since = at;
  }
  BumpRevision(key.ip);
}

void WriteSide::AdvanceTo(Timestamp now) {
  command_role_.AdoptCurrentThread();
  journal_.command_role().AdoptCurrentThread();
  const core::MutexLock lock(mu_);
  // Evictions journal write-through; staged scan events must land first.
  if (batching_) FlushCommitBatchLocked();
  std::vector<ServiceState> to_evict;
  // censyslint:allow(unordered-iter): candidates sorted by key before any
  // journal append, so eviction event order never reflects hash layout
  for (const auto& [packed, state] : states_) {
    if (state.pending_eviction_since.has_value() &&
        *state.pending_eviction_since + options_.eviction_deadline <= now) {
      to_evict.push_back(state);
    }
  }
  std::sort(to_evict.begin(), to_evict.end(),
            [](const ServiceState& a, const ServiceState& b) {
              return a.key.Pack() < b.key.Pack();
            });
  for (const ServiceState& state : to_evict) Evict(state, now);

  // Age out the pruned list beyond the re-injection window.
  while (!pruned_.empty() &&
         pruned_.front().pruned_at + options_.reinjection_window < now) {
    pruned_.pop_front();
  }
}

void WriteSide::Evict(const ServiceState& state, Timestamp now) {
  const std::string entity = HostEntityId(state.key.ip);
  if (const storage::FieldMap* current = journal_.CurrentState(entity)) {
    const storage::Delta delta = RemoveServiceDelta(*current, state.key);
    if (!delta.empty()) {
      journal_.Append(entity, storage::EventKind::kServiceRemoved, now, delta);
      bus_.Publish(PipelineEvent{entity, state.key,
                                 storage::EventKind::kServiceRemoved, now});
    }
  }
  states_.erase(state.key.Pack());
  pruned_.push_back(PrunedEntry{state.key, now});
  BumpRevision(state.key.ip);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  eviction_metric_.Add();
  tracked_metric_.Set(static_cast<std::int64_t>(states_.size()));
}

const ServiceState* WriteSide::GetState(ServiceKey key) const
    CENSYS_NO_THREAD_SAFETY_ANALYSIS {
  // Deliberately lockless: only the command thread mutates states_, and
  // only the command thread may call this (callers sit inside ForEachTracked
  // callbacks, so taking mu_ shared here would self-deadlock under a waiting
  // writer). Cross-thread readers go through GetStateCopy; debug builds
  // abort on any other thread. The analysis is off in this body because the
  // command-thread role, not mu_, is what makes the states_ read safe.
  command_role_.AssertHeld();
  const auto it = states_.find(key.Pack());
  return it == states_.end() ? nullptr : &it->second;
}

std::optional<ServiceState> WriteSide::GetStateCopy(ServiceKey key) const {
  const core::ReaderLock lock(mu_);
  const auto it = states_.find(key.Pack());
  if (it == states_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t WriteSide::ScanRevision(IPv4Address ip) const {
  const core::ReaderLock lock(mu_);
  const auto it = host_revisions_.find(ip.value());
  return it == host_revisions_.end() ? 0 : it->second;
}

std::size_t WriteSide::tracked_count() const {
  const core::ReaderLock lock(mu_);
  return states_.size();
}

bool WriteSide::IsPseudoFlagged(IPv4Address ip) const {
  const core::ReaderLock lock(mu_);
  return pseudo_hosts_.contains(ip.value());
}

void WriteSide::ForEachTracked(
    const std::function<void(const ServiceState&)>& fn) const {
  const core::ReaderLock lock(mu_);
  std::vector<const ServiceState*> sorted;
  sorted.reserve(states_.size());
  // censyslint:allow(unordered-iter): pointers sorted by key before fn runs
  for (const auto& [packed, state] : states_) sorted.push_back(&state);
  std::sort(sorted.begin(), sorted.end(),
            [](const ServiceState* a, const ServiceState* b) {
              return a->key.Pack() < b->key.Pack();
            });
  for (const ServiceState* state : sorted) fn(*state);
}

void WriteSide::ForEachPruned(
    const std::function<void(const PrunedService&)>& fn) const {
  const core::ReaderLock lock(mu_);
  for (const PrunedEntry& entry : pruned_) {
    fn(PrunedService{entry.key, entry.pruned_at});
  }
}

std::vector<ServiceKey> WriteSide::RecentlyPruned(Timestamp now) const {
  const core::ReaderLock lock(mu_);
  std::vector<ServiceKey> keys;
  for (const PrunedEntry& entry : pruned_) {
    if (entry.pruned_at + options_.reinjection_window >= now) {
      keys.push_back(entry.key);
    }
  }
  return keys;
}

}  // namespace censys::pipeline
