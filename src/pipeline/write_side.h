// CQRS write side (§5.2).
//
// Inbound scans are commands: the processor retrieves the entity's current
// state, computes an update delta, journals the resulting event (found /
// changed / removed), and enqueues it for asynchronous downstream
// processing. The write side also owns scan-state that is deliberately NOT
// journaled (last-seen times, pending-eviction marks) and implements the
// eviction policy of §4.6: pending eviction after the first failed refresh,
// removal after 72 hours, with removed services remembered for 60 days so
// the predictive engine can re-inject them.
//
// Concurrency: there is exactly one command thread (the engine tick loop),
// but the serving layer reads scan-state from many threads concurrently.
// A shared_mutex guards the maps: command processing takes it exclusively,
// queries take it shared. GetState() returns a raw pointer and is therefore
// only safe from the command thread; concurrent readers use GetStateCopy().
// Per-host scan-state revisions feed the read-side view cache: they bump
// whenever non-journaled state visible in a HostView changes.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/metrics.h"
#include "core/thread_safety.h"
#include "pipeline/record.h"
#include "storage/journal.h"

namespace censys::pipeline {

struct ServiceState {
  ServiceKey key;
  Timestamp first_seen;
  Timestamp last_seen;        // last successful interrogation
  Timestamp last_refreshed;   // last attempt, successful or not
  std::optional<Timestamp> pending_eviction_since;
};

// An event published on the async bus after journaling.
struct PipelineEvent {
  std::string entity_id;
  ServiceKey key;
  storage::EventKind kind = storage::EventKind::kEntityUpdated;
  Timestamp at;
};

// Asynchronous event processing: events are queued during ingestion and
// drained by the engine loop ("the write side processor enqueues any
// resulting update events for additional processing", §5.2). Single-threaded
// by design: publish and drain both happen on the command thread.
class EventBus {
 public:
  using Handler = std::function<void(const PipelineEvent&)>;

  void Subscribe(Handler handler) { handlers_.push_back(std::move(handler)); }
  void Publish(PipelineEvent event) { queue_.push_back(std::move(event)); }

  // Delivers all queued events (events published during drain are also
  // delivered). Returns the number delivered.
  std::size_t Drain();

  std::size_t pending() const { return queue_.size(); }

 private:
  std::vector<Handler> handlers_;
  std::deque<PipelineEvent> queue_;
};

class WriteSide {
 public:
  struct Options {
    Duration eviction_deadline = Duration::Hours(72);
    Duration reinjection_window = Duration::Days(60);
    // Hosts whose near-identical service count exceeds this are flagged as
    // pseudo-service middleboxes and their services suppressed (the
    // "Beyond Noise" filter the evaluation references, §6.1).
    std::uint32_t pseudo_service_threshold = 20;
    bool filter_pseudo_services = true;
  };

  WriteSide(storage::EventJournal& journal, EventBus& bus)
      : WriteSide(journal, bus, Options()) {}
  WriteSide(storage::EventJournal& journal, EventBus& bus, Options options);

  // The pseudo-service content hash IngestScan buckets records by. Exposed
  // so interrogation workers can precompute it off the command thread.
  static std::uint64_t ContentHash(const ServiceRecord& record);

  // A successful interrogation of `record.key`.
  void IngestScan(const ServiceRecord& record);

  // Same, with the entity-field projection and pseudo-service content hash
  // precomputed (interrogation workers do both off-thread; the serial
  // commit stage then only diffs and journals). `service_fields` must equal
  // ServiceFields(record) and `content_hash` the pseudo-filter hash of the
  // record's banner/title/protocol.
  void IngestScan(const ServiceRecord& record,
                  const storage::FieldMap& service_fields,
                  std::uint64_t content_hash);

  // A failed interrogation (target unreachable / gone).
  void IngestFailure(ServiceKey key, Timestamp at);

  // --- group commit ------------------------------------------------------------
  // Between Begin and End, journal appends from IngestScan are staged
  // rather than written through: FlushCommitBatch (or End, or an ingest
  // that revisits an entity with a staged event — the delta must diff
  // against applied state) drains them with ONE journal/WAL batch append.
  // Bus events stage alongside and publish at flush, still in sequence
  // order. Command-thread only; batch boundaries never change journal
  // content, only WAL write granularity.
  void BeginCommitBatch();
  void FlushCommitBatch();
  void EndCommitBatch();  // flush + leave batching mode

  std::uint64_t batch_flushes() const {
    return batch_flushes_.load(std::memory_order_relaxed);
  }
  // Flushes forced by an entity revisited while its event was staged.
  std::uint64_t revisit_flushes() const {
    return revisit_flushes_.load(std::memory_order_relaxed);
  }

  // Evicts services whose pending-eviction deadline has passed.
  void AdvanceTo(Timestamp now);

  // --- scan-state queries -----------------------------------------------------
  // Command-thread fast path: pointer into the map, invalidated by a
  // concurrent eviction. Concurrent readers use GetStateCopy. Callers must
  // hold the command-thread capability (ThreadRoleGuard); debug builds
  // assert the calling thread at runtime.
  const ServiceState* GetState(ServiceKey key) const
      CENSYS_REQUIRES(command_role());
  // Thread-safe snapshot of one service's scan state.
  std::optional<ServiceState> GetStateCopy(ServiceKey key) const;
  void ForEachTracked(
      const std::function<void(const ServiceState&)>& fn) const;
  std::size_t tracked_count() const;

  // Monotonic per-host revision of non-journaled scan state (last_seen,
  // last_refreshed, pending-eviction marks, evictions). Together with the
  // journal seqno watermark it forms the view-cache freshness stamp.
  std::uint64_t ScanRevision(IPv4Address ip) const;

  // Services pruned within the re-injection window, oldest first.
  std::vector<ServiceKey> RecentlyPruned(Timestamp now) const;

  struct PrunedService {
    ServiceKey key;
    Timestamp pruned_at;
  };
  // Full pruned list with timestamps (drives the re-injection schedule).
  void ForEachPruned(
      const std::function<void(const PrunedService&)>& fn) const;

  bool IsPseudoFlagged(IPv4Address ip) const;

  // --- stats -------------------------------------------------------------------
  std::uint64_t scans_ingested() const {
    return scans_ingested_.load(std::memory_order_relaxed);
  }
  std::uint64_t services_evicted() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  std::uint64_t pseudo_suppressed() const {
    return pseudo_suppressed_.load(std::memory_order_relaxed);
  }

  // Registers censys.pipeline.* instruments (ingests, failures, evictions,
  // pseudo suppressions, tracked-service gauge).
  void BindMetrics(metrics::Registry* registry);

  // The command-thread capability backing GetState's pointer contract.
  // Command processing (IngestScan / IngestFailure / AdvanceTo) re-stamps
  // the command thread in debug builds.
  const core::ThreadRole& command_role() const { return command_role_; }

 private:
  void IngestScanLocked(const ServiceRecord& record,
                        const storage::FieldMap* service_fields,
                        const std::uint64_t* content_hash)
      CENSYS_REQUIRES(mu_);
  void FlushCommitBatchLocked() CENSYS_REQUIRES(mu_);
  void Evict(const ServiceState& state, Timestamp now)
      CENSYS_REQUIRES(mu_, journal_.command_role());
  void BumpRevision(IPv4Address ip) CENSYS_REQUIRES(mu_) {
    ++host_revisions_[ip.value()];
  }

  storage::EventJournal& journal_;
  EventBus& bus_;
  Options options_;

  // Guards every map below. Writers (IngestScan / IngestFailure /
  // AdvanceTo) are exclusive; queries are shared.
  mutable core::SharedMutex mu_;
  core::ThreadRole command_role_;

  // Service scan state by packed key.
  std::unordered_map<std::uint64_t, ServiceState> states_ CENSYS_GUARDED_BY(mu_);
  struct PrunedEntry {
    ServiceKey key;
    Timestamp pruned_at;
  };
  std::deque<PrunedEntry> pruned_ CENSYS_GUARDED_BY(mu_);
  std::unordered_map<std::uint32_t, std::uint64_t> host_revisions_
      CENSYS_GUARDED_BY(mu_);

  // Pseudo-service detection: per-host count of services sharing one
  // content hash.
  struct HostCounts {
    std::unordered_map<std::uint64_t, std::uint32_t> by_content;
    std::uint32_t total = 0;
  };
  std::unordered_map<std::uint32_t, HostCounts> host_counts_
      CENSYS_GUARDED_BY(mu_);
  std::unordered_map<std::uint32_t, bool> pseudo_hosts_ CENSYS_GUARDED_BY(mu_);

  // Group-commit staging (command thread, under mu_).
  bool batching_ CENSYS_GUARDED_BY(mu_) = false;
  std::vector<storage::EventJournal::PendingEvent> staged_events_
      CENSYS_GUARDED_BY(mu_);
  std::vector<PipelineEvent> staged_bus_ CENSYS_GUARDED_BY(mu_);
  // Hosts with a staged (unapplied) journal event; an ingest for one of
  // these forces a flush so its delta diffs against applied state.
  std::unordered_set<std::uint32_t> staged_hosts_ CENSYS_GUARDED_BY(mu_);

  std::atomic<std::uint64_t> scans_ingested_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> pseudo_suppressed_{0};
  std::atomic<std::uint64_t> batch_flushes_{0};
  std::atomic<std::uint64_t> revisit_flushes_{0};

  metrics::CounterHandle ingest_metric_;
  metrics::CounterHandle failure_metric_;
  metrics::CounterHandle eviction_metric_;
  metrics::CounterHandle pseudo_metric_;
  metrics::GaugeHandle tracked_metric_;
};

}  // namespace censys::pipeline
