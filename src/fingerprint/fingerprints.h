// Static fingerprint corpus and evaluation engine (§5.2).
//
// "We implement static fingerprints through a combination of declarative
// filters (e.g., html_title: "WAC6552D-S") and processors written in a
// Lisp-like DSL. In total, we check just over 10K static fingerprints."
// We carry a curated corpus of hand-written fingerprints plus a generated
// long tail, all evaluated with the same machinery.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fingerprint/dsl.h"
#include "pipeline/enrich.h"
#include "storage/delta.h"

namespace censys::fingerprint {

// Derived context a fingerprint attaches to a service. The type itself is
// owned by the pipeline layer (pipeline/enrich.h) because it is part of
// the served view shape; this alias keeps corpus definitions reading
// naturally.
using DerivedLabels = pipeline::DerivedLabels;

struct Fingerprint {
  std::string name;
  // Either a declarative filter (field + glob pattern) ...
  std::string filter_field;
  std::string filter_pattern;
  // ... or a DSL rule. Exactly one is set.
  std::optional<CompiledRule> rule;

  DerivedLabels labels;

  bool Matches(const storage::FieldMap& fields) const;
};

class FingerprintEngine {
 public:
  // The built-in corpus: curated fingerprints for the devices the simulated
  // Internet actually contains, plus `generated_tail` synthetic long-tail
  // entries (models that never match, standing in for the breadth of the
  // real 10K corpus — their cost is real even when they do not fire).
  static FingerprintEngine BuiltIn(std::size_t generated_tail = 2000);

  void Add(Fingerprint fp) { fingerprints_.push_back(std::move(fp)); }

  // First matching fingerprint's labels (curated entries are checked before
  // the generated tail).
  std::optional<DerivedLabels> Evaluate(const storage::FieldMap& fields) const;

  std::size_t size() const { return fingerprints_.size(); }

 private:
  std::vector<Fingerprint> fingerprints_;
};

}  // namespace censys::fingerprint
