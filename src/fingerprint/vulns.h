// Vulnerability (CVE) derivation.
//
// The read side "derives higher-level context like software, manufacturer
// and model, vulnerabilities" (§5.2) using CVE-schema identifiers (§5.1).
// The database matches (vendor, product, affected version range) against a
// service's detected software.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "proto/banner.h"

namespace censys::fingerprint {

// Dotted version comparison: "8.2p1" < "8.9p1" < "9.3". Non-numeric
// suffixes are compared lexicographically after numeric components.
int CompareVersions(std::string_view a, std::string_view b);

struct VulnEntry {
  std::string cve;
  std::string vendor;
  std::string product;
  // Affected range [introduced, fixed); empty bound = unbounded.
  std::string introduced;
  std::string fixed;
  double cvss = 0.0;
  bool kev = false;  // CISA Known-Exploited-Vulnerability flag
};

class CveDatabase {
 public:
  static CveDatabase BuiltIn();

  void Add(VulnEntry entry) { entries_.push_back(std::move(entry)); }

  std::vector<const VulnEntry*> Lookup(
      const proto::SoftwareInfo& software) const;

  std::size_t size() const { return entries_.size(); }

 private:
  std::vector<VulnEntry> entries_;
};

}  // namespace censys::fingerprint
