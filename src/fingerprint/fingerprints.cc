#include "fingerprint/fingerprints.h"

#include <cstdio>

#include "core/strings.h"

namespace censys::fingerprint {

bool Fingerprint::Matches(const storage::FieldMap& fields) const {
  if (rule.has_value()) return rule->Matches(fields);
  const auto it = fields.find(filter_field);
  if (it == fields.end()) return false;
  return GlobMatch(filter_pattern, it->second);
}

FingerprintEngine FingerprintEngine::BuiltIn(std::size_t generated_tail) {
  FingerprintEngine engine;

  auto filter = [&](std::string name, std::string field, std::string pattern,
                    DerivedLabels labels) {
    Fingerprint fp;
    fp.name = std::move(name);
    fp.filter_field = std::move(field);
    fp.filter_pattern = std::move(pattern);
    fp.labels = std::move(labels);
    engine.Add(std::move(fp));
  };
  auto rule = [&](std::string name, std::string source, DerivedLabels labels) {
    Fingerprint fp;
    fp.name = std::move(name);
    fp.rule = CompiledRule::Compile(source);
    fp.labels = std::move(labels);
    engine.Add(std::move(fp));
  };

  // --- curated fingerprints ----------------------------------------------------
  // The paper's own example.
  filter("zyxel-wac6552d-s", "http.html_title", "WAC6552D-S",
         {"Zyxel", "WAC6552D-S", "access-point",
          "cpe:2.3:h:zyxel:wac6552d-s:-"});
  filter("mikrotik-routeros", "http.html_title", "RouterOS*",
         {"MikroTik", "RouterOS", "router", "cpe:2.3:o:mikrotik:routeros:-"});
  filter("hikvision-camera", "http.html_title", "*Hikvision*",
         {"Hikvision", "IP Camera", "camera", "cpe:2.3:h:hikvision:ip_camera:-"});
  filter("synology-nas", "http.html_title", "Synology*",
         {"Synology", "DiskStation", "nas", "cpe:2.3:h:synology:diskstation:-"});
  filter("tplink-router", "http.html_title", "TP-LINK*",
         {"TP-Link", "Wireless Router", "router", "cpe:2.3:h:tp-link:router:-"});
  filter("grafana", "http.html_title", "Grafana",
         {"Grafana Labs", "Grafana", "dashboard", "cpe:2.3:a:grafana:grafana:-"});
  filter("phpmyadmin", "http.html_title", "phpMyAdmin",
         {"phpMyAdmin", "phpMyAdmin", "admin-panel",
          "cpe:2.3:a:phpmyadmin:phpmyadmin:-"});
  filter("prometheus", "http.html_title", "*Prometheus*",
         {"Prometheus", "Prometheus", "monitoring",
          "cpe:2.3:a:prometheus:prometheus:-"});
  filter("plesk", "http.html_title", "Plesk*",
         {"Plesk", "Obsidian", "admin-panel", "cpe:2.3:a:plesk:plesk:-"});
  filter("openssh", "service.banner", "SSH-2.0-openssh*",
         {"OpenBSD", "OpenSSH", "ssh-server", "cpe:2.3:a:openbsd:openssh:-"});
  filter("dropbear", "service.banner", "SSH-2.0-dropbear*",
         {"Dropbear", "Dropbear SSH", "ssh-server",
          "cpe:2.3:a:dropbear_ssh_project:dropbear:-"});

  // ICS devices: match on the device identity the handshake exposes.
  rule("siemens-s7",
       R"((and (= service.name "S7") (contains device.manufacturer "Siemens")))",
       {"Siemens", "SIMATIC S7", "plc", "cpe:2.3:h:siemens:simatic_s7:-"});
  rule("tridium-niagara",
       R"((and (= service.name "FOX") (contains device.model "Niagara")))",
       {"Tridium", "Niagara", "building-automation",
        "cpe:2.3:a:tridium:niagara:-"});
  rule("schneider-modicon",
       R"((and (= service.name "MODBUS")
               (contains device.manufacturer "Schneider")))",
       {"Schneider Electric", "Modicon", "plc",
        "cpe:2.3:h:schneiderelectric:modicon:-"});
  rule("veeder-root-atg",
       R"((and (= service.name "ATG") (contains device.manufacturer "Veeder")))",
       {"Veeder-Root", "TLS Automatic Tank Gauge", "tank-gauge",
        "cpe:2.3:h:veeder-root:tls:-"});
  rule("redlion-crimson",
       R"((= service.name "REDLION_CRIMSON"))",
       {"Red Lion Controls", "Crimson", "hmi",
        "cpe:2.3:h:redlioncontrols:crimson:-"});
  rule("wdbrpc-vxworks",
       R"((and (= service.name "WDBRPC") (contains device.manufacturer "Wind River")))",
       {"Wind River", "VxWorks WDB Agent", "rtos-debug",
        "cpe:2.3:o:windriver:vxworks:-"});

  // Composite DSL example: nginx serving a default page.
  rule("nginx-default",
       R"((and (contains service.banner "nginx")
               (= http.html_title "Welcome to nginx!")))",
       {"F5", "nginx (default page)", "web-server",
        "cpe:2.3:a:f5:nginx:-"});

  // --- generated long tail -------------------------------------------------------
  // Synthetic model-number fingerprints that exercise the matching path the
  // way the real ~10K corpus does. Patterns are chosen to never collide
  // with synthesized titles.
  for (std::size_t i = 0; i < generated_tail; ++i) {
    char name[64], pattern[64], model[32];
    std::snprintf(name, sizeof(name), "tail-device-%04zu", i);
    std::snprintf(pattern, sizeof(pattern), "*TAILDEV-%04zu*", i);
    std::snprintf(model, sizeof(model), "TAILDEV-%04zu", i);
    filter(name, "http.html_title", pattern,
           {"TailVendor", model, "embedded", ""});
  }

  return engine;
}

std::optional<DerivedLabels> FingerprintEngine::Evaluate(
    const storage::FieldMap& fields) const {
  for (const Fingerprint& fp : fingerprints_) {
    if (fp.Matches(fields)) return fp.labels;
  }
  return std::nullopt;
}

}  // namespace censys::fingerprint
