// A Lisp-like fingerprint DSL (§5.2).
//
// Censys implements static fingerprints "through a combination of
// declarative filters (e.g., html_title: "WAC6552D-S") and processors
// written in a Lisp-like DSL". This is that DSL: s-expressions evaluated
// against a service's flat field map.
//
//   (and (= service.name "HTTP")
//        (contains http.html_title "RouterOS"))
//
// Values are strings or booleans. Field references are bare symbols; a
// missing field evaluates to "". Built-ins:
//   and or not = != contains starts-with ends-with glob
//   field       -- explicit field lookup: (field "http.html_title")
//   concat      -- string concatenation
//   lower       -- lowercase
//   if          -- (if cond then else)
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "storage/delta.h"

namespace censys::fingerprint {

// ----------------------------------------------------------------- S-exprs

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  enum class Kind { kSymbol, kString, kList } kind = Kind::kList;
  std::string atom;            // kSymbol / kString
  std::vector<ExprPtr> items;  // kList
};

// Parses one s-expression. Returns nullopt (with *error set) on syntax
// errors: unbalanced parens, unterminated strings, trailing tokens.
std::optional<ExprPtr> Parse(std::string_view source, std::string* error);

// ---------------------------------------------------------------- Values

struct Value {
  std::variant<bool, std::string> v;

  static Value Bool(bool b) { return Value{b}; }
  static Value Str(std::string s) { return Value{std::move(s)}; }

  bool IsTruthy() const;
  std::string AsString() const;
  bool operator==(const Value&) const = default;
};

// ---------------------------------------------------------------- Evaluator

class Evaluator {
 public:
  // Evaluates `expr` against the record's field map. Evaluation errors
  // (unknown function, arity) return nullopt with *error set.
  std::optional<Value> Eval(const ExprPtr& expr, const storage::FieldMap& env,
                            std::string* error) const;
};

// Convenience: parse once, evaluate many times.
class CompiledRule {
 public:
  // Throws nothing: invalid source yields a rule that never matches and
  // reports its error.
  static CompiledRule Compile(std::string_view source);

  bool Matches(const storage::FieldMap& fields) const;
  const std::string& error() const { return error_; }
  bool valid() const { return expr_ != nullptr; }

 private:
  ExprPtr expr_;
  std::string error_;
};

}  // namespace censys::fingerprint
