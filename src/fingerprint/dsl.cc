#include "fingerprint/dsl.h"

#include <cctype>

#include "core/strings.h"

namespace censys::fingerprint {
namespace {

struct Tokenizer {
  std::string_view source;
  std::size_t pos = 0;

  void SkipSpace() {
    while (pos < source.size() &&
           std::isspace(static_cast<unsigned char>(source[pos])))
      ++pos;
  }

  // Token kinds: "(", ")", string literal, symbol. Empty optional = end.
  std::optional<std::string> Next(bool* is_string, std::string* error) {
    *is_string = false;
    SkipSpace();
    if (pos >= source.size()) return std::nullopt;
    const char c = source[pos];
    if (c == '(' || c == ')') {
      ++pos;
      return std::string(1, c);
    }
    if (c == '"') {
      ++pos;
      std::string value;
      while (pos < source.size() && source[pos] != '"') {
        if (source[pos] == '\\' && pos + 1 < source.size()) ++pos;
        value.push_back(source[pos++]);
      }
      if (pos >= source.size()) {
        *error = "unterminated string literal";
        return std::nullopt;
      }
      ++pos;  // closing quote
      *is_string = true;
      return value;
    }
    std::string symbol;
    while (pos < source.size() && source[pos] != '(' && source[pos] != ')' &&
           !std::isspace(static_cast<unsigned char>(source[pos]))) {
      symbol.push_back(source[pos++]);
    }
    return symbol;
  }
};

std::optional<ExprPtr> ParseExpr(Tokenizer& tok, std::string* error);

std::optional<ExprPtr> ParseList(Tokenizer& tok, std::string* error) {
  auto list = std::make_shared<Expr>();
  list->kind = Expr::Kind::kList;
  while (true) {
    tok.SkipSpace();
    if (tok.pos >= tok.source.size()) {
      *error = "unbalanced parentheses";
      return std::nullopt;
    }
    if (tok.source[tok.pos] == ')') {
      ++tok.pos;
      return list;
    }
    auto item = ParseExpr(tok, error);
    if (!item.has_value()) return std::nullopt;
    list->items.push_back(std::move(*item));
  }
}

std::optional<ExprPtr> ParseExpr(Tokenizer& tok, std::string* error) {
  bool is_string = false;
  const auto token = tok.Next(&is_string, error);
  if (!token.has_value()) {
    if (error->empty()) *error = "unexpected end of input";
    return std::nullopt;
  }
  if (!is_string && *token == "(") return ParseList(tok, error);
  if (!is_string && *token == ")") {
    *error = "unexpected ')'";
    return std::nullopt;
  }
  auto atom = std::make_shared<Expr>();
  atom->kind = is_string ? Expr::Kind::kString : Expr::Kind::kSymbol;
  atom->atom = *token;
  return atom;
}

}  // namespace

std::optional<ExprPtr> Parse(std::string_view source, std::string* error) {
  error->clear();
  Tokenizer tok{source};
  auto expr = ParseExpr(tok, error);
  if (!expr.has_value()) return std::nullopt;
  tok.SkipSpace();
  if (tok.pos != source.size()) {
    *error = "trailing input after expression";
    return std::nullopt;
  }
  return expr;
}

bool Value::IsTruthy() const {
  if (const bool* b = std::get_if<bool>(&v)) return *b;
  return !std::get<std::string>(v).empty();
}

std::string Value::AsString() const {
  if (const bool* b = std::get_if<bool>(&v)) return *b ? "true" : "false";
  return std::get<std::string>(v);
}

std::optional<Value> Evaluator::Eval(const ExprPtr& expr,
                                     const storage::FieldMap& env,
                                     std::string* error) const {
  switch (expr->kind) {
    case Expr::Kind::kString:
      return Value::Str(expr->atom);
    case Expr::Kind::kSymbol: {
      // Bare symbols are field references; missing fields read as "".
      const auto it = env.find(expr->atom);
      return Value::Str(it == env.end() ? std::string() : it->second);
    }
    case Expr::Kind::kList:
      break;
  }
  if (expr->items.empty()) {
    *error = "cannot evaluate empty list";
    return std::nullopt;
  }
  const Expr& head = *expr->items[0];
  if (head.kind != Expr::Kind::kSymbol) {
    *error = "operator must be a symbol";
    return std::nullopt;
  }
  const std::string& op = head.atom;
  const std::size_t argc = expr->items.size() - 1;

  auto arg = [&](std::size_t i) { return Eval(expr->items[i + 1], env, error); };

  if (op == "and") {
    for (std::size_t i = 0; i < argc; ++i) {
      const auto value = arg(i);
      if (!value.has_value()) return std::nullopt;
      if (!value->IsTruthy()) return Value::Bool(false);
    }
    return Value::Bool(true);
  }
  if (op == "or") {
    for (std::size_t i = 0; i < argc; ++i) {
      const auto value = arg(i);
      if (!value.has_value()) return std::nullopt;
      if (value->IsTruthy()) return Value::Bool(true);
    }
    return Value::Bool(false);
  }
  if (op == "not") {
    if (argc != 1) {
      *error = "not expects 1 argument";
      return std::nullopt;
    }
    const auto value = arg(0);
    if (!value.has_value()) return std::nullopt;
    return Value::Bool(!value->IsTruthy());
  }
  if (op == "if") {
    if (argc != 3) {
      *error = "if expects 3 arguments";
      return std::nullopt;
    }
    const auto cond = arg(0);
    if (!cond.has_value()) return std::nullopt;
    return arg(cond->IsTruthy() ? 1 : 2);
  }

  // Binary string predicates.
  if (op == "=" || op == "!=" || op == "contains" || op == "starts-with" ||
      op == "ends-with" || op == "glob") {
    if (argc != 2) {
      *error = op + " expects 2 arguments";
      return std::nullopt;
    }
    const auto a = arg(0);
    const auto b = arg(1);
    if (!a.has_value() || !b.has_value()) return std::nullopt;
    const std::string lhs = a->AsString();
    const std::string rhs = b->AsString();
    if (op == "=") return Value::Bool(lhs == rhs);
    if (op == "!=") return Value::Bool(lhs != rhs);
    if (op == "contains") return Value::Bool(ContainsIgnoreCase(lhs, rhs));
    if (op == "starts-with") return Value::Bool(StartsWith(lhs, rhs));
    if (op == "ends-with") return Value::Bool(EndsWith(lhs, rhs));
    return Value::Bool(GlobMatch(rhs, lhs));  // (glob text pattern)
  }

  if (op == "field") {
    if (argc != 1) {
      *error = "field expects 1 argument";
      return std::nullopt;
    }
    const auto name = arg(0);
    if (!name.has_value()) return std::nullopt;
    const auto it = env.find(name->AsString());
    return Value::Str(it == env.end() ? std::string() : it->second);
  }
  if (op == "concat") {
    std::string out;
    for (std::size_t i = 0; i < argc; ++i) {
      const auto value = arg(i);
      if (!value.has_value()) return std::nullopt;
      out += value->AsString();
    }
    return Value::Str(std::move(out));
  }
  if (op == "lower") {
    if (argc != 1) {
      *error = "lower expects 1 argument";
      return std::nullopt;
    }
    const auto value = arg(0);
    if (!value.has_value()) return std::nullopt;
    return Value::Str(ToLower(value->AsString()));
  }

  *error = "unknown function: " + op;
  return std::nullopt;
}

CompiledRule CompiledRule::Compile(std::string_view source) {
  CompiledRule rule;
  std::string error;
  auto expr = Parse(source, &error);
  if (!expr.has_value()) {
    rule.error_ = error;
    return rule;
  }
  rule.expr_ = std::move(*expr);
  return rule;
}

bool CompiledRule::Matches(const storage::FieldMap& fields) const {
  if (expr_ == nullptr) return false;
  std::string error;
  Evaluator evaluator;
  const auto value = evaluator.Eval(expr_, fields, &error);
  return value.has_value() && value->IsTruthy();
}

}  // namespace censys::fingerprint
