#include "fingerprint/vulns.h"

#include <cctype>

#include "core/strings.h"

namespace censys::fingerprint {

int CompareVersions(std::string_view a, std::string_view b) {
  std::size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    // Numeric run.
    std::uint64_t na = 0, nb = 0;
    bool has_na = false, has_nb = false;
    while (i < a.size() && std::isdigit(static_cast<unsigned char>(a[i]))) {
      na = na * 10 + static_cast<std::uint64_t>(a[i] - '0');
      has_na = true;
      ++i;
    }
    while (j < b.size() && std::isdigit(static_cast<unsigned char>(b[j]))) {
      nb = nb * 10 + static_cast<std::uint64_t>(b[j] - '0');
      has_nb = true;
      ++j;
    }
    if (has_na || has_nb) {
      if (na != nb) return na < nb ? -1 : 1;
    }
    // Non-numeric run.
    std::size_t si = i, sj = j;
    while (i < a.size() && !std::isdigit(static_cast<unsigned char>(a[i]))) ++i;
    while (j < b.size() && !std::isdigit(static_cast<unsigned char>(b[j]))) ++j;
    const std::string_view sa = a.substr(si, i - si);
    const std::string_view sb = b.substr(sj, j - sj);
    // Separators ('.') compare equal; other text compares lexically.
    auto strip = [](std::string_view s) {
      while (!s.empty() && (s.front() == '.' || s.front() == '-')) s.remove_prefix(1);
      return s;
    };
    const std::string_view ta = strip(sa);
    const std::string_view tb = strip(sb);
    if (ta != tb) return ta < tb ? -1 : 1;
  }
  return 0;
}

CveDatabase CveDatabase::BuiltIn() {
  CveDatabase db;
  auto add = [&](const char* cve, const char* vendor, const char* product,
                 const char* introduced, const char* fixed, double cvss,
                 bool kev = false) {
    db.Add(VulnEntry{cve, vendor, product, introduced, fixed, cvss, kev});
  };
  // A realistic slice of the exposure landscape the paper's use cases
  // revolve around (initial-access software, edge devices, ICS).
  add("CVE-2018-15473", "openbsd", "openssh", "", "7.7", 5.3);
  add("CVE-2023-38408", "openbsd", "openssh", "5.5", "9.3p2", 9.8, true);
  add("CVE-2019-10149", "exim", "exim", "4.87", "4.92", 9.8, true);
  add("CVE-2021-41773", "apache", "httpd", "2.4.49", "2.4.51", 7.5, true);
  add("CVE-2021-44790", "apache", "httpd", "", "2.4.52", 9.8);
  add("CVE-2013-4434", "lighttpd", "lighttpd", "", "1.4.33", 5.0);
  add("CVE-2015-3306", "proftpd", "proftpd", "", "1.3.5a", 9.8, true);
  add("CVE-2011-2523", "vsftpd", "vsftpd", "2.3.4", "2.3.5", 9.8);
  add("CVE-2021-23017", "nginx", "nginx", "", "1.21.0", 7.7);
  add("CVE-2019-0708", "microsoft", "remote_desktop", "", "10.0", 9.8, true);
  add("CVE-2020-1938", "apache", "tomcat", "", "9.0.31", 9.8);
  add("CVE-2022-26134", "atlassian", "confluence", "", "7.18.1", 9.8, true);
  add("CVE-2023-34362", "progress", "moveit_transfer", "", "2023.0.2", 9.8,
      true);
  add("CVE-2018-13379", "fortinet", "fortios", "5.4.6", "6.0.5", 9.8, true);
  add("CVE-2012-1823", "php", "php", "", "5.4.3", 7.5);
  add("CVE-2017-7921", "hikvision", "ip_camera", "", "5.4.5", 10.0, true);
  add("CVE-2016-10401", "zyxel", "pk5001z", "", "", 8.8, true);
  add("CVE-2019-18935", "telerik", "ui_for_aspnet", "", "2020.1.114", 9.8,
      true);
  // ICS-adjacent.
  add("CVE-2021-22681", "rockwell automation", "1756-en2t", "", "5.029", 10.0);
  add("CVE-2020-15782", "siemens", "simatic_s7-1200", "", "4.5.0", 8.1);
  add("CVE-2022-30937", "codesys", "control_runtime", "", "3.5.18", 8.8);
  add("CVE-2017-6034", "schneider", "modicon_m340", "", "3.10", 9.8);
  return db;
}

std::vector<const VulnEntry*> CveDatabase::Lookup(
    const proto::SoftwareInfo& software) const {
  std::vector<const VulnEntry*> matches;
  for (const VulnEntry& entry : entries_) {
    if (!EqualsIgnoreCase(entry.vendor, software.vendor) ||
        !EqualsIgnoreCase(entry.product, software.product))
      continue;
    if (!entry.introduced.empty() &&
        CompareVersions(software.version, entry.introduced) < 0)
      continue;
    if (!entry.fixed.empty() &&
        CompareVersions(software.version, entry.fixed) >= 0)
      continue;
    matches.push_back(&entry);
  }
  return matches;
}

}  // namespace censys::fingerprint
