// ZMap-style cyclic-group target permutation.
//
// ZMap iterates scan targets by walking the multiplicative group of integers
// modulo a prime p > n: x_{i+1} = x_i * g (mod p), where g is a primitive
// root. The walk visits every element of [1, p) exactly once in an order
// that looks random but needs O(1) state — which is what makes stateless
// scanning at line rate possible. Values >= n are skipped. We implement the
// construction in full (prime search via deterministic Miller-Rabin,
// generator search via factoring p-1) because the scan engine's coverage
// guarantees derive from it.
#pragma once

#include <cstdint>
#include <vector>

namespace censys::scan {

// Deterministic Miller-Rabin for 64-bit integers.
bool IsPrime(std::uint64_t n);

// Smallest prime strictly greater than n.
std::uint64_t NextPrimeAbove(std::uint64_t n);

// Distinct prime factors of n (trial division; n fits our p-1 sizes).
std::vector<std::uint64_t> DistinctPrimeFactors(std::uint64_t n);

// (a * b) mod m without overflow.
std::uint64_t MulMod(std::uint64_t a, std::uint64_t b, std::uint64_t m);
// (base ^ exp) mod m.
std::uint64_t PowMod(std::uint64_t base, std::uint64_t exp, std::uint64_t m);

// A full-cycle permutation of [0, n).
class CyclicPermutation {
 public:
  // `seed` selects the generator and the starting point, i.e. the scan
  // order; two scans with different seeds visit targets in unrelated orders.
  CyclicPermutation(std::uint64_t n, std::uint64_t seed);

  // Returns the next element of [0, n). After n calls the permutation has
  // produced every element exactly once and wraps around.
  std::uint64_t Next();

  // True once the walk has completed a full cycle since construction (or
  // since the last wrap).
  bool cycle_complete() const { return cycle_complete_; }

  std::uint64_t n() const { return n_; }
  std::uint64_t prime() const { return p_; }
  std::uint64_t generator() const { return g_; }

 private:
  std::uint64_t n_;
  std::uint64_t p_;  // prime > n
  std::uint64_t g_;  // primitive root mod p
  std::uint64_t current_;
  std::uint64_t first_;
  std::uint64_t emitted_ = 0;
  bool started_ = false;
  bool cycle_complete_ = false;
};

}  // namespace censys::scan
