// Continuous scan scheduling.
//
// Censys "scans continuously rather than on a fixed schedule, distributing
// traffic evenly across source IP addresses and time" (§4.1). The scheduler
// owns a set of recurring scan classes and, on every simulation tick, runs
// the slice of each class's current pass that falls inside the tick. Passes
// whose port sets rotate (the background 65K sweep) regenerate their ports
// via a per-pass provider.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "scan/discovery.h"

namespace censys::scan {

struct ScheduledClass {
  ScanClass klass;
  // If set, called once per pass to produce that pass's port set (the
  // background sweep's rotating slice). Otherwise klass.ports is fixed.
  std::function<std::vector<Port>(std::uint64_t pass_index)> port_provider;
  // Per-class pass progress, permille of the current pass window covered
  // (`censys.scan.pass_permille.<class>`). Bound lazily on first tick.
  metrics::GaugeHandle progress_metric;
};

class ScanScheduler {
 public:
  explicit ScanScheduler(DiscoveryEngine& engine) : engine_(engine) {}

  void AddClass(ScheduledClass scheduled) {
    classes_.push_back(std::move(scheduled));
  }

  // Runs every class's probe slots falling in [from, to), splitting at pass
  // boundaries so rotating port sets switch at the right instant.
  void Tick(Timestamp from, Timestamp to, const DiscoveryEngine::EmitFn& emit);

  std::size_t class_count() const { return classes_.size(); }
  // Enables/disables a class by name; returns false if not found. Used by
  // ablation benches.
  bool SetEnabled(std::string_view name, bool enabled);

  // Registers per-class pass-progress gauges on `registry`.
  void BindMetrics(metrics::Registry* registry);

 private:
  DiscoveryEngine& engine_;
  std::vector<ScheduledClass> classes_;
  metrics::Registry* metrics_ = nullptr;
};

}  // namespace censys::scan
