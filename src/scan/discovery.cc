#include "scan/discovery.h"

#include <algorithm>
#include <unordered_set>

#include "core/strings.h"
#include "scan/cyclic.h"
#include "scan/exclusion.h"

namespace censys::scan {

DiscoveryEngine::DiscoveryEngine(simnet::Internet& net,
                                 simnet::ScannerProfile profile, int pop_count,
                                 std::uint64_t seed)
    : net_(net), profile_(std::move(profile)), pop_count_(pop_count),
      seed_(seed) {}

void DiscoveryEngine::BindMetrics(metrics::Registry* registry) {
  probes_metric_ = metrics::BindCounter(registry, "censys.scan.probes_sent");
  filtered_metric_ =
      metrics::BindCounter(registry, "censys.scan.probes_filtered");
  candidates_metric_ =
      metrics::BindCounter(registry, "censys.scan.candidates");
}

double DiscoveryEngine::SlotOf(ServiceKey key, std::uint64_t pass_index,
                               std::string_view klass_name) const {
  return SlotOfPacked(key.Pack(), pass_index, klass_name);
}

double DiscoveryEngine::SlotOfPacked(std::uint64_t packed_key,
                                     std::uint64_t pass_index,
                                     std::string_view klass_name) const {
  const std::uint64_t h = SplitMix64(
      packed_key ^ SplitMix64(pass_index ^ SplitMix64(Fnv1a64(klass_name))) ^
      seed_);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

const DiscoveryEngine::ServiceSnapshot& DiscoveryEngine::SnapshotFor(
    Timestamp to) {
  if (snapshot_.at_minutes == to.minutes) return snapshot_;
  snapshot_ = ServiceSnapshot{};
  snapshot_.at_minutes = to.minutes;
  net_.ForEachActiveService(to, [&](const simnet::SimService& s) {
    snapshot_.packed.push_back(s.key.Pack());
    snapshot_.ip.push_back(s.key.ip.value());
    snapshot_.port.push_back(s.key.port);
    snapshot_.block.push_back(net_.blocks().BlockOf(s.key.ip).id);
    snapshot_.transport.push_back(s.key.transport);
    snapshot_.protocol.push_back(s.protocol);
    std::uint8_t visible = 1;
    if (s.key.transport == Transport::kUdp) {
      // A UDP service only answers the matching protocol-specific probe,
      // and the engine only sends probes for protocols IANA-assigned to
      // the port. UDP services on unassigned ports are invisible to L4
      // discovery — one of the reasons UDP behaviour "has seen little
      // work" (§9).
      visible = 0;
      for (proto::Protocol p :
           proto::AssignedToPort(s.key.port, Transport::kUdp)) {
        if (p == s.protocol) visible = 1;
      }
    }
    snapshot_.visible.push_back(visible);
  });
  net_.ForEachPseudoHost(
      [&](IPv4Address ip) { snapshot_.pseudo_ips.push_back(ip.value()); });
  return snapshot_;
}

bool DiscoveryEngine::InScope(const ScanClass& klass, IPv4Address ip) const {
  if (klass.blocks.empty()) return true;
  const simnet::NetworkBlock& b = net_.blocks().BlockOf(ip);
  for (const simnet::NetworkBlock* scoped : klass.blocks) {
    if (scoped->id == b.id) return true;
  }
  return false;
}

bool DiscoveryEngine::ProbeOne(ServiceKey key, Timestamp t, int pop_id,
                               std::optional<proto::Protocol> udp_protocol) {
  if (exclusions_ != nullptr && exclusions_->IsExcluded(key.ip, t)) {
    filtered_metric_.Add();
    return false;
  }
  ++probes_sent_;
  probes_metric_.Add();
  (void)udp_protocol;  // the probe payload; matching is checked by caller
  const simnet::ProbeContext ctx{&profile_, pop_id};
  return net_.L4Probe(ctx, key, t);
}

void DiscoveryEngine::RunPassChunk(const ScanClass& klass,
                                   std::uint64_t pass_index, Timestamp from,
                                   Timestamp to, const EmitFn& emit) {
  if (!klass.enabled || klass.ports.empty()) return;

  const Timestamp pass_start{klass.period.minutes *
                             static_cast<std::int64_t>(pass_index)};
  // Port membership as a 65536-bit mask: the hot filter is one shift+mask
  // instead of a hash probe per service.
  std::vector<std::uint64_t> port_bits(1024, 0);
  for (Port p : klass.ports) {
    port_bits[p >> 6] |= std::uint64_t{1} << (p & 63);
  }
  std::unordered_set<std::uint32_t> scoped_blocks;
  for (const simnet::NetworkBlock* b : klass.blocks) scoped_blocks.insert(b->id);

  auto slot_time = [&](std::uint64_t packed_key) {
    return pass_start + Duration{static_cast<std::int64_t>(
                            SlotOfPacked(packed_key, pass_index, klass.name) *
                            static_cast<double>(klass.period.minutes))};
  };

  // Probe accounting: this chunk's share of the full pass volume.
  const double chunk_fraction =
      static_cast<double>((to - from).minutes) /
      static_cast<double>(klass.period.minutes);
  const auto chunk_probes = static_cast<std::uint64_t>(
      static_cast<double>(PassProbeCount(klass)) * chunk_fraction);
  probes_sent_ += chunk_probes;
  probes_metric_.Add(chunk_probes);

  const ServiceSnapshot& snap = SnapshotFor(to);

  // --- live services whose slot falls in this chunk -------------------------
  // The per-target filter (port mask, exclusion, scope, slot window,
  // visibility) is pure, so it fans out over fixed-size chunks of the SoA
  // arrays. Chunk boundaries are a constant — never derived from the worker
  // count — so the per-chunk hit lists, and therefore the serial probe and
  // emission order below, are identical with any executor.
  struct Hit {
    std::uint32_t index;
    Timestamp when;
  };
  constexpr std::size_t kChunk = 2048;
  const std::size_t n = snap.size();
  const std::size_t chunk_count = (n + kChunk - 1) / kChunk;
  std::vector<std::vector<Hit>> hits(chunk_count);
  const auto eval_chunk = [&](std::size_t c) {
    std::vector<Hit>& out = hits[c];
    const std::size_t begin = c * kChunk;
    const std::size_t end = std::min(n, begin + kChunk);
    for (std::size_t i = begin; i < end; ++i) {
      const Port port = snap.port[i];
      if ((port_bits[port >> 6] >> (port & 63) & 1) == 0) continue;
      if (exclusions_ != nullptr &&
          exclusions_->IsExcluded(IPv4Address(snap.ip[i]), to)) {
        filtered_metric_.Add();  // counter is atomic; order-free
        continue;
      }
      if (!scoped_blocks.empty() && !scoped_blocks.contains(snap.block[i])) {
        continue;
      }
      const Timestamp when = slot_time(snap.packed[i]);
      if (when < from || when >= to) continue;
      if (snap.visible[i] == 0) continue;
      out.push_back(Hit{static_cast<std::uint32_t>(i), when});
    }
  };
  if (executor_ != nullptr) {
    executor_->ParallelFor(chunk_count, eval_chunk);
  } else {
    for (std::size_t c = 0; c < chunk_count; ++c) eval_chunk(c);
  }

  // Serial stage, in snapshot order: PoP rotation, the L4 probe (which
  // mutates simulator state), and candidate emission.
  for (const std::vector<Hit>& chunk : hits) {
    for (const Hit& hit : chunk) {
      const std::size_t i = hit.index;
      const ServiceKey key{IPv4Address(snap.ip[i]), snap.port[i],
                           snap.transport[i]};
      std::optional<proto::Protocol> udp_protocol;
      if (key.transport == Transport::kUdp) udp_protocol = snap.protocol[i];
      const int pop = next_pop_;
      next_pop_ = (next_pop_ + 1) % pop_count_;
      const simnet::ProbeContext ctx{&profile_, pop};
      if (!net_.L4Probe(ctx, key, hit.when)) continue;
      candidates_metric_.Add();
      emit(Candidate{key, hit.when, klass.name, udp_protocol, 0});
    }
  }

  // --- pseudo hosts answer on every TCP port --------------------------------
  struct PseudoHit {
    ServiceKey key;
    Timestamp when;
  };
  constexpr std::size_t kHostChunk = 256;
  const std::size_t hosts = snap.pseudo_ips.size();
  const std::size_t host_chunks = (hosts + kHostChunk - 1) / kHostChunk;
  std::vector<std::vector<PseudoHit>> pseudo_hits(host_chunks);
  const auto eval_hosts = [&](std::size_t c) {
    std::vector<PseudoHit>& out = pseudo_hits[c];
    const std::size_t begin = c * kHostChunk;
    const std::size_t end = std::min(hosts, begin + kHostChunk);
    for (std::size_t i = begin; i < end; ++i) {
      const IPv4Address ip(snap.pseudo_ips[i]);
      if (exclusions_ != nullptr && exclusions_->IsExcluded(ip, to)) {
        filtered_metric_.Add();
        continue;
      }
      if (!scoped_blocks.empty() &&
          !scoped_blocks.contains(net_.blocks().BlockOf(ip).id)) {
        continue;
      }
      for (Port port : klass.ports) {
        const ServiceKey key{ip, port, Transport::kTcp};
        const Timestamp when = slot_time(key.Pack());
        if (when < from || when >= to) continue;
        out.push_back(PseudoHit{key, when});
      }
    }
  };
  if (executor_ != nullptr) {
    executor_->ParallelFor(host_chunks, eval_hosts);
  } else {
    for (std::size_t c = 0; c < host_chunks; ++c) eval_hosts(c);
  }
  for (const std::vector<PseudoHit>& chunk : pseudo_hits) {
    for (const PseudoHit& hit : chunk) {
      const int pop = next_pop_;
      next_pop_ = (next_pop_ + 1) % pop_count_;
      const simnet::ProbeContext ctx{&profile_, pop};
      if (!net_.L4Probe(ctx, hit.key, hit.when)) continue;
      candidates_metric_.Add();
      emit(Candidate{hit.key, hit.when, klass.name, std::nullopt, 0});
    }
  }
}

std::uint64_t DiscoveryEngine::PassProbeCount(const ScanClass& klass) const {
  std::uint64_t addresses = 0;
  if (klass.blocks.empty()) {
    addresses = net_.blocks().universe_size();
  } else {
    for (const simnet::NetworkBlock* b : klass.blocks) addresses += b->cidr.size();
  }
  return addresses * klass.ports.size();
}

std::vector<Port> BackgroundPortSlice(std::uint64_t pass_index,
                                      std::size_t ports_per_pass,
                                      std::uint64_t seed) {
  const std::uint64_t start = pass_index * ports_per_pass;
  const std::uint64_t cycle = start / kPortSpaceSize;
  std::uint64_t offset = start % kPortSpaceSize;

  // Each cycle through the 65K port space uses a fresh permutation, so
  // consecutive sweeps visit ports in unrelated orders (and every port is
  // covered exactly once per cycle).
  CyclicPermutation perm(kPortSpaceSize, SplitMix64(seed ^ cycle));
  for (std::uint64_t i = 0; i < offset; ++i) perm.Next();

  std::vector<Port> slice;
  slice.reserve(ports_per_pass);
  for (std::size_t i = 0; i < ports_per_pass && offset + i < kPortSpaceSize;
       ++i) {
    slice.push_back(static_cast<Port>(perm.Next()));
  }
  return slice;
}

}  // namespace censys::scan
