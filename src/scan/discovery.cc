#include "scan/discovery.h"

#include <unordered_set>

#include "core/strings.h"
#include "scan/cyclic.h"
#include "scan/exclusion.h"

namespace censys::scan {

DiscoveryEngine::DiscoveryEngine(simnet::Internet& net,
                                 simnet::ScannerProfile profile, int pop_count,
                                 std::uint64_t seed)
    : net_(net), profile_(std::move(profile)), pop_count_(pop_count),
      seed_(seed) {}

void DiscoveryEngine::BindMetrics(metrics::Registry* registry) {
  probes_metric_ = metrics::BindCounter(registry, "censys.scan.probes_sent");
  filtered_metric_ =
      metrics::BindCounter(registry, "censys.scan.probes_filtered");
  candidates_metric_ =
      metrics::BindCounter(registry, "censys.scan.candidates");
}

double DiscoveryEngine::SlotOf(ServiceKey key, std::uint64_t pass_index,
                               std::string_view klass_name) const {
  const std::uint64_t h = SplitMix64(
      key.Pack() ^ SplitMix64(pass_index ^ SplitMix64(Fnv1a64(klass_name))) ^
      seed_);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool DiscoveryEngine::InScope(const ScanClass& klass, IPv4Address ip) const {
  if (klass.blocks.empty()) return true;
  const simnet::NetworkBlock& b = net_.blocks().BlockOf(ip);
  for (const simnet::NetworkBlock* scoped : klass.blocks) {
    if (scoped->id == b.id) return true;
  }
  return false;
}

bool DiscoveryEngine::ProbeOne(ServiceKey key, Timestamp t, int pop_id,
                               std::optional<proto::Protocol> udp_protocol) {
  if (exclusions_ != nullptr && exclusions_->IsExcluded(key.ip, t)) {
    filtered_metric_.Add();
    return false;
  }
  ++probes_sent_;
  probes_metric_.Add();
  (void)udp_protocol;  // the probe payload; matching is checked by caller
  const simnet::ProbeContext ctx{&profile_, pop_id};
  return net_.L4Probe(ctx, key, t);
}

void DiscoveryEngine::RunPassChunk(const ScanClass& klass,
                                   std::uint64_t pass_index, Timestamp from,
                                   Timestamp to, const EmitFn& emit) {
  if (!klass.enabled || klass.ports.empty()) return;

  const Timestamp pass_start{klass.period.minutes *
                             static_cast<std::int64_t>(pass_index)};
  std::unordered_set<Port> port_set(klass.ports.begin(), klass.ports.end());
  std::unordered_set<std::uint32_t> scoped_blocks;
  for (const simnet::NetworkBlock* b : klass.blocks) scoped_blocks.insert(b->id);

  auto slot_time = [&](ServiceKey key) {
    return pass_start + Duration{static_cast<std::int64_t>(
                            SlotOf(key, pass_index, klass.name) *
                            static_cast<double>(klass.period.minutes))};
  };
  auto in_scope = [&](IPv4Address ip) {
    if (exclusions_ != nullptr && exclusions_->IsExcluded(ip, to)) {
      filtered_metric_.Add();
      return false;
    }
    if (scoped_blocks.empty()) return true;
    return scoped_blocks.contains(net_.blocks().BlockOf(ip).id);
  };

  // Probe accounting: this chunk's share of the full pass volume.
  const double chunk_fraction =
      static_cast<double>((to - from).minutes) /
      static_cast<double>(klass.period.minutes);
  const auto chunk_probes = static_cast<std::uint64_t>(
      static_cast<double>(PassProbeCount(klass)) * chunk_fraction);
  probes_sent_ += chunk_probes;
  probes_metric_.Add(chunk_probes);

  // --- live services whose slot falls in this chunk -------------------------
  net_.ForEachActiveService(to, [&](const simnet::SimService& s) {
    if (!port_set.contains(s.key.port)) return;
    if (!in_scope(s.key.ip)) return;
    const Timestamp when = slot_time(s.key);
    if (when < from || when >= to) return;

    std::optional<proto::Protocol> udp_protocol;
    if (s.key.transport == Transport::kUdp) {
      // A UDP service only answers the matching protocol-specific probe,
      // and the engine only sends probes for protocols IANA-assigned to
      // the port. UDP services on unassigned ports are invisible to L4
      // discovery — one of the reasons UDP behaviour "has seen little
      // work" (§9).
      const auto assigned = proto::AssignedToPort(s.key.port, Transport::kUdp);
      bool probed = false;
      for (proto::Protocol p : assigned) {
        if (p == s.protocol) probed = true;
      }
      if (!probed) return;
      udp_protocol = s.protocol;
    }

    const int pop = next_pop_;
    next_pop_ = (next_pop_ + 1) % pop_count_;
    const simnet::ProbeContext ctx{&profile_, pop};
    if (!net_.L4Probe(ctx, s.key, when)) return;
    candidates_metric_.Add();
    emit(Candidate{s.key, when, klass.name, udp_protocol, 0});
  });

  // --- pseudo hosts answer on every TCP port --------------------------------
  net_.ForEachPseudoHost([&](IPv4Address ip) {
    if (!in_scope(ip)) return;
    for (Port port : klass.ports) {
      const ServiceKey key{ip, port, Transport::kTcp};
      const Timestamp when = slot_time(key);
      if (when < from || when >= to) continue;
      const int pop = next_pop_;
      next_pop_ = (next_pop_ + 1) % pop_count_;
      const simnet::ProbeContext ctx{&profile_, pop};
      if (!net_.L4Probe(ctx, key, when)) continue;
      candidates_metric_.Add();
      emit(Candidate{key, when, klass.name, std::nullopt, 0});
    }
  });
}

std::uint64_t DiscoveryEngine::PassProbeCount(const ScanClass& klass) const {
  std::uint64_t addresses = 0;
  if (klass.blocks.empty()) {
    addresses = net_.blocks().universe_size();
  } else {
    for (const simnet::NetworkBlock* b : klass.blocks) addresses += b->cidr.size();
  }
  return addresses * klass.ports.size();
}

std::vector<Port> BackgroundPortSlice(std::uint64_t pass_index,
                                      std::size_t ports_per_pass,
                                      std::uint64_t seed) {
  const std::uint64_t start = pass_index * ports_per_pass;
  const std::uint64_t cycle = start / kPortSpaceSize;
  std::uint64_t offset = start % kPortSpaceSize;

  // Each cycle through the 65K port space uses a fresh permutation, so
  // consecutive sweeps visit ports in unrelated orders (and every port is
  // covered exactly once per cycle).
  CyclicPermutation perm(kPortSpaceSize, SplitMix64(seed ^ cycle));
  for (std::uint64_t i = 0; i < offset; ++i) perm.Next();

  std::vector<Port> slice;
  slice.reserve(ports_per_pass);
  for (std::size_t i = 0; i < ports_per_pass && offset + i < kPortSpaceSize;
       ++i) {
    slice.push_back(static_cast<Port>(perm.Next()));
  }
  return slice;
}

}  // namespace censys::scan
