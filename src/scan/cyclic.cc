#include "scan/cyclic.h"

#include <cassert>

#include "core/rng.h"

namespace censys::scan {

std::uint64_t MulMod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(a) * b) % m);
}

std::uint64_t PowMod(std::uint64_t base, std::uint64_t exp, std::uint64_t m) {
  std::uint64_t result = 1 % m;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = MulMod(result, base, m);
    base = MulMod(base, base, m);
    exp >>= 1;
  }
  return result;
}

bool IsPrime(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                          23ull, 29ull, 31ull, 37ull}) {
    if (n % p == 0) return n == p;
  }
  // Deterministic Miller-Rabin base set for 64-bit integers.
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  for (std::uint64_t a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                          23ull, 29ull, 31ull, 37ull}) {
    std::uint64_t x = PowMod(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = MulMod(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

std::uint64_t NextPrimeAbove(std::uint64_t n) {
  std::uint64_t candidate = n + 1;
  if (candidate <= 2) return 2;
  if ((candidate & 1) == 0) ++candidate;
  while (!IsPrime(candidate)) candidate += 2;
  return candidate;
}

std::vector<std::uint64_t> DistinctPrimeFactors(std::uint64_t n) {
  std::vector<std::uint64_t> factors;
  for (std::uint64_t p = 2; p * p <= n; p += (p == 2 ? 1 : 2)) {
    if (n % p == 0) {
      factors.push_back(p);
      while (n % p == 0) n /= p;
    }
  }
  if (n > 1) factors.push_back(n);
  return factors;
}

CyclicPermutation::CyclicPermutation(std::uint64_t n, std::uint64_t seed)
    : n_(n) {
  assert(n >= 1);
  // Need p >= 3 so the multiplicative group is nontrivial.
  p_ = NextPrimeAbove(n < 2 ? 2 : n);
  const std::vector<std::uint64_t> factors = DistinctPrimeFactors(p_ - 1);

  // Find a primitive root: g is a generator iff g^((p-1)/q) != 1 for every
  // prime q | p-1. Candidates are drawn from the seed's stream.
  Rng rng(SplitMix64(seed ^ 0xC7C11C));
  while (true) {
    const std::uint64_t g = 2 + rng.NextBelow(p_ - 3);
    bool is_generator = true;
    for (std::uint64_t q : factors) {
      if (PowMod(g, (p_ - 1) / q, p_) == 1) {
        is_generator = false;
        break;
      }
    }
    if (is_generator) {
      g_ = g;
      break;
    }
  }
  first_ = 1 + rng.NextBelow(p_ - 1);
  current_ = first_;
}

std::uint64_t CyclicPermutation::Next() {
  cycle_complete_ = false;
  while (true) {
    if (started_ && current_ == first_) {
      // Wrapped: the multiplicative walk returned to its start.
      cycle_complete_ = true;
    }
    const std::uint64_t value = current_ - 1;  // map [1, p) -> [0, p-1)
    current_ = MulMod(current_, g_, p_);
    started_ = true;
    if (value < n_) {
      ++emitted_;
      return value;
    }
  }
}

}  // namespace censys::scan
