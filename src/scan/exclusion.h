// Scan exclusion ("opt-out") list — §8 and Appendix D.
//
// Censys honours opt-out requests from operators who can verify network
// ownership via WHOIS; exclusions expire after one year. The list is a set
// of CIDR prefixes consulted on the hot path of every probe, so membership
// tests must stay O(log n) (core/cidr.h's merged-range CidrSet).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/cidr.h"
#include "core/types.h"

namespace censys::scan {

class ExclusionList {
 public:
  struct Request {
    Cidr prefix;
    std::string requester;     // verified WHOIS contact
    Timestamp granted_at;
    Timestamp expires_at;      // granted_at + 1 year by default
  };

  // Registers a verified opt-out. Returns false (and excludes nothing) if
  // ownership verification failed upstream.
  bool Exclude(const Cidr& prefix, std::string requester, Timestamp now,
               Duration validity = Duration::Days(365));

  // True if probes to `ip` are currently suppressed.
  bool IsExcluded(IPv4Address ip, Timestamp now) const;

  // Drops expired requests and rebuilds the fast set ("we expire exclusion
  // requests after one year"). Returns the number expired.
  std::size_t ExpireOld(Timestamp now);

  // Fraction of an address space of `universe_size` currently excluded —
  // the paper reports 0.03% of IPv4 across 39 organizations.
  double ExcludedFraction(std::uint64_t universe_size) const;

  const std::vector<Request>& requests() const { return requests_; }
  std::size_t organization_count() const;

 private:
  void Rebuild();

  std::vector<Request> requests_;
  CidrSet active_;
  Timestamp last_expiry_check_{std::numeric_limits<std::int64_t>::min() / 4};
};

}  // namespace censys::scan
