// L4 service discovery.
//
// Censys runs three classes of continuous stateless discovery scans (§4.1):
// priority ports over the full address space, cloud-infrastructure ports
// over dense high-churn networks, and a slow background sweep of all 65K
// ports. Each is described by a ScanClass; the DiscoveryEngine executes
// them against the simulated Internet and emits L4-responsive candidates
// for Phase-2 interrogation.
//
// Execution model: a scan class defines recurring *passes* (one window over
// its target set). Within a pass every (ip, port) target has a
// deterministic probe slot — a stable hash of the target and pass — which
// stands in for its position in the ZMap-style cyclic permutation of the
// target space (see scan/cyclic.h for the real construction; enumerating
// the full cartesian space per pass would dominate simulation cost while
// producing statistically identical slots). The engine therefore iterates
// *live services* and pseudo hosts, probing each at its slot time, and
// accounts the full probe volume analytically.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/executor.h"
#include "core/metrics.h"
#include "core/rng.h"
#include "core/types.h"
#include "simnet/internet.h"

namespace censys::scan {

// One candidate produced by L4 discovery, queued for L7 interrogation.
struct Candidate {
  ServiceKey key;
  Timestamp discovered_at;
  // Which scan class produced it (for diagnostics and ablations).
  std::string_view source;
  // For UDP targets, the protocol whose probe elicited the response.
  std::optional<proto::Protocol> udp_protocol;
  // Discovery-order stamp assigned when the candidate enters the engine's
  // queue. The interrogation stage may fan out across threads, but results
  // are committed to the write side in ascending `seq`, which is what makes
  // parallel runs journal-identical to serial ones.
  std::uint64_t seq = 0;
};

// A recurring discovery scan over (ports x address space).
struct ScanClass {
  std::string name;
  // Ports covered by each pass. For the background 65K scan this is
  // regenerated per pass (a slice of the port permutation).
  std::vector<Port> ports;
  // Restrict to these blocks; empty = whole universe.
  std::vector<const simnet::NetworkBlock*> blocks;
  // Pass length. Daily scans use 1 day; the background sweep uses 1 day
  // windows over a rotating port slice.
  Duration period = Duration::Days(1);
  bool enabled = true;
};

class DiscoveryEngine {
 public:
  using EmitFn = std::function<void(const Candidate&)>;

  DiscoveryEngine(simnet::Internet& net, simnet::ScannerProfile profile,
                  int pop_count, std::uint64_t seed);

  // Attaches the opt-out list; excluded addresses are never probed (§8).
  void SetExclusionList(const class ExclusionList* exclusions) {
    exclusions_ = exclusions;
  }

  // Attaches a thread pool for the pass-chunk filter sweep. The sweep
  // evaluates the pure per-target filters (port mask, scope, slot window)
  // over fixed-size chunks of the SoA snapshot in parallel; probing and
  // candidate emission stay serial in snapshot order, so results are
  // identical with or without an executor. Null reverts to inline.
  void SetExecutor(Executor* executor) { executor_ = executor; }

  // Executes the slice of `klass`'s current pass whose probe slots fall in
  // [from, to), emitting responsive candidates. `pass_index` identifies the
  // pass (e.g. day number) so slots differ between passes.
  void RunPassChunk(const ScanClass& klass, std::uint64_t pass_index,
                    Timestamp from, Timestamp to, const EmitFn& emit);

  // Probes one specific target now (used for refresh scans and for
  // predictive-engine candidates). Returns true if L4-responsive.
  bool ProbeOne(ServiceKey key, Timestamp t, int pop_id,
                std::optional<proto::Protocol> udp_protocol = std::nullopt);

  // Analytic probe accounting: total probes a full pass of `klass` costs.
  std::uint64_t PassProbeCount(const ScanClass& klass) const;

  std::uint64_t probes_sent() const { return probes_sent_; }
  const simnet::ScannerProfile& profile() const { return profile_; }
  int pop_count() const { return pop_count_; }

  // Registers censys.scan.* instruments: probes sent, exclusion-filtered
  // probes, and emitted candidates.
  void BindMetrics(metrics::Registry* registry);

 private:
  // Struct-of-arrays snapshot of the live service set (plus pseudo hosts)
  // at one timestamp, shared by every pass chunk evaluated at that time.
  // The hot filter loop touches a few flat bytes per service (port, block,
  // visibility flag) instead of re-walking the simulator's service map
  // once per scan class, and the parallel arrays chunk cleanly across
  // executor tasks.
  struct ServiceSnapshot {
    std::int64_t at_minutes = std::numeric_limits<std::int64_t>::min();
    // Parallel arrays over active services, snapshot order.
    std::vector<std::uint64_t> packed;       // ServiceKey::Pack()
    std::vector<std::uint32_t> ip;
    std::vector<std::uint16_t> port;
    std::vector<std::uint32_t> block;        // owning NetworkBlock id
    std::vector<Transport> transport;
    std::vector<proto::Protocol> protocol;   // UDP probe hint
    // UDP services only answer IANA-assigned protocol probes; 0 means the
    // service is invisible to L4 discovery. Always 1 for TCP.
    std::vector<std::uint8_t> visible;
    // Pseudo hosts (answer on every TCP port), snapshot order.
    std::vector<std::uint32_t> pseudo_ips;

    std::size_t size() const { return packed.size(); }
  };

  // Deterministic slot of `key` within a pass window, as a fraction [0,1).
  double SlotOf(ServiceKey key, std::uint64_t pass_index,
                std::string_view klass_name) const;
  double SlotOfPacked(std::uint64_t packed_key, std::uint64_t pass_index,
                      std::string_view klass_name) const;
  bool InScope(const ScanClass& klass, IPv4Address ip) const;
  // Builds (or reuses) the snapshot for time `to`.
  const ServiceSnapshot& SnapshotFor(Timestamp to);

  simnet::Internet& net_;
  simnet::ScannerProfile profile_;
  int pop_count_;
  std::uint64_t seed_;
  const class ExclusionList* exclusions_ = nullptr;
  Executor* executor_ = nullptr;
  ServiceSnapshot snapshot_;
  std::uint64_t probes_sent_ = 0;
  int next_pop_ = 0;

  metrics::CounterHandle probes_metric_;
  metrics::CounterHandle filtered_metric_;
  metrics::CounterHandle candidates_metric_;
};

// Builds the port slice the background 65K scan covers on pass `pass_index`
// (ports_per_pass ports out of the full 65536-port permutation, rotating so
// a full cycle covers every port).
std::vector<Port> BackgroundPortSlice(std::uint64_t pass_index,
                                      std::size_t ports_per_pass,
                                      std::uint64_t seed);

}  // namespace censys::scan
