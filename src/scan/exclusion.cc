#include "scan/exclusion.h"

#include <algorithm>
#include <set>

namespace censys::scan {

bool ExclusionList::Exclude(const Cidr& prefix, std::string requester,
                            Timestamp now, Duration validity) {
  if (requester.empty()) return false;  // no verified contact, no exclusion
  requests_.push_back(
      Request{prefix, std::move(requester), now, now + validity});
  active_.Insert(prefix);
  return true;
}

bool ExclusionList::IsExcluded(IPv4Address ip, Timestamp now) const {
  // The active set is rebuilt on explicit ExpireOld() calls; between them a
  // stale-but-conservative view is acceptable (we only ever over-exclude).
  (void)now;
  return active_.Contains(ip);
}

std::size_t ExclusionList::ExpireOld(Timestamp now) {
  const std::size_t before = requests_.size();
  std::erase_if(requests_,
                [&](const Request& r) { return r.expires_at <= now; });
  const std::size_t expired = before - requests_.size();
  if (expired > 0) Rebuild();
  last_expiry_check_ = now;
  return expired;
}

void ExclusionList::Rebuild() {
  active_ = CidrSet();
  for (const Request& r : requests_) active_.Insert(r.prefix);
}

double ExclusionList::ExcludedFraction(std::uint64_t universe_size) const {
  if (universe_size == 0) return 0.0;
  return static_cast<double>(active_.AddressCount()) /
         static_cast<double>(universe_size);
}

std::size_t ExclusionList::organization_count() const {
  std::set<std::string> orgs;
  for (const Request& r : requests_) orgs.insert(r.requester);
  return orgs.size();
}

}  // namespace censys::scan
