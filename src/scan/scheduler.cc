#include "scan/scheduler.h"

#include <algorithm>

#include "core/trace.h"

namespace censys::scan {

void ScanScheduler::BindMetrics(metrics::Registry* registry) {
  metrics_ = registry;
  for (ScheduledClass& scheduled : classes_) {
    scheduled.progress_metric = metrics::BindGauge(
        registry, "censys.scan.pass_permille." + scheduled.klass.name);
  }
}

void ScanScheduler::Tick(Timestamp from, Timestamp to,
                         const DiscoveryEngine::EmitFn& emit) {
  for (ScheduledClass& scheduled : classes_) {
    ScanClass& klass = scheduled.klass;
    if (!klass.enabled) continue;
    const std::int64_t period = klass.period.minutes;
    if (metrics_ != nullptr && scheduled.progress_metric.gauge == nullptr) {
      // Classes added after BindMetrics (ablation benches) bind here.
      scheduled.progress_metric = metrics::BindGauge(
          metrics_, "censys.scan.pass_permille." + klass.name);
    }

    // Walk the pass windows overlapping [from, to).
    std::int64_t cursor = from.minutes;
    while (cursor < to.minutes) {
      const std::uint64_t pass_index =
          static_cast<std::uint64_t>(cursor / period);
      const std::int64_t pass_end =
          static_cast<std::int64_t>(pass_index + 1) * period;
      const std::int64_t chunk_end = std::min(pass_end, to.minutes);

      if (scheduled.port_provider) {
        klass.ports = scheduled.port_provider(pass_index);
      }
      TRACE_SPAN_VAR(span, "scan", "pass_chunk");
      span.SetArg("class", klass.name);
      engine_.RunPassChunk(klass, pass_index, Timestamp{cursor},
                           Timestamp{chunk_end}, emit);
      scheduled.progress_metric.Set(
          (chunk_end - (pass_end - period)) * 1000 / period);
      cursor = chunk_end;
    }
  }
}

bool ScanScheduler::SetEnabled(std::string_view name, bool enabled) {
  for (ScheduledClass& scheduled : classes_) {
    if (scheduled.klass.name == name) {
      scheduled.klass.enabled = enabled;
      return true;
    }
  }
  return false;
}

}  // namespace censys::scan
