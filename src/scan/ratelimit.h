// Token-bucket rate limiter.
//
// The scan engine budgets probes per simulated tick the way the real engine
// budgets packets per second; interrogation workers use the same primitive
// to pace L7 handshakes ("finer-grained bandwidth allocation", §4.1).
#pragma once

#include <algorithm>
#include <cstdint>

#include "core/types.h"

namespace censys::scan {

class TokenBucket {
 public:
  // `rate_per_minute` tokens accrue per simulated minute, up to `burst`.
  TokenBucket(double rate_per_minute, double burst)
      : rate_per_minute_(rate_per_minute), burst_(burst), tokens_(burst) {}

  // Accrues tokens for the elapsed time since the last call.
  void AdvanceTo(Timestamp now) {
    if (!initialized_) {
      last_ = now;
      initialized_ = true;
      return;
    }
    if (now <= last_) return;
    const double elapsed = static_cast<double>((now - last_).minutes);
    tokens_ = std::min(burst_, tokens_ + elapsed * rate_per_minute_);
    last_ = now;
  }

  // Tries to take `count` tokens; returns the number actually granted
  // (possibly fewer). Fractional accrual is kept internally.
  std::uint64_t TryAcquire(std::uint64_t count) {
    const std::uint64_t grant =
        std::min(count, static_cast<std::uint64_t>(tokens_));
    tokens_ -= static_cast<double>(grant);
    return grant;
  }

  bool TryAcquireOne() { return TryAcquire(1) == 1; }

  double available() const { return tokens_; }
  double rate_per_minute() const { return rate_per_minute_; }

  void set_rate_per_minute(double rate) { rate_per_minute_ = rate; }

 private:
  double rate_per_minute_;
  double burst_;
  double tokens_;
  Timestamp last_;
  bool initialized_ = false;
};

}  // namespace censys::scan
