#include "web/attach.h"

namespace censys::web {

std::unique_ptr<WebPropertyCatalog> AttachCatalog(
    engines::CensysEngine& engine, WebPropertyCatalog::Options options) {
  auto catalog = std::make_unique<WebPropertyCatalog>(
      engine.net(), engine.interrogator(), options);
  WebPropertyCatalog* raw = catalog.get();
  const cert::CtLog& ct_log = engine.ct_log();
  engine.AddDailyJob([raw, &ct_log](Timestamp day_start) {
    raw->PollCtLog(ct_log, day_start);
    raw->RefreshDue(day_start);
  });
  return catalog;
}

}  // namespace censys::web
