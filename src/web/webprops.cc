#include "web/webprops.h"

#include "core/strings.h"

namespace censys::web {

std::size_t WebPropertyCatalog::PollCtLog(const cert::CtLog& log,
                                          Timestamp now) {
  std::size_t added = 0;
  for (const cert::CtEntry& entry : log.EntriesSince(ct_cursor_)) {
    if (entry.logged_at > now) break;  // future entries wait for next poll
    ct_cursor_ = entry.index + 1;
    for (const std::string& name : entry.certificate.san_dns) {
      if (StartsWith(name, "*.")) continue;  // wildcards are not scan targets
      if (!properties_.contains(name)) {
        AddName(name, WebProperty::Source::kCtLog, now);
        ++added;
      }
    }
  }
  return added;
}

void WebPropertyCatalog::AddName(std::string name, WebProperty::Source source,
                                 Timestamp now) {
  auto [it, inserted] = properties_.try_emplace(name);
  if (!inserted) return;
  WebProperty& prop = it->second;
  prop.name = std::move(name);
  prop.first_seen = now;
  prop.source = source;
  Scan(prop, now);
}

std::size_t WebPropertyCatalog::RefreshDue(Timestamp now) {
  std::size_t scanned = 0;
  for (auto& [name, prop] : properties_) {
    if (prop.last_scanned + options_.refresh_interval <= now) {
      Scan(prop, now);
      ++scanned;
    }
  }
  return scanned;
}

void WebPropertyCatalog::Scan(WebProperty& prop, Timestamp now) {
  prop.last_scanned = now;
  prop.reachable = false;

  // Resolve the name (DNS) to its current endpoint, then fetch / with the
  // right SNI/Host.
  const simnet::SimService* svc = net_.FindByName(prop.name, now);
  if (svc == nullptr) return;
  auto record = scanner_.Interrogate(svc->key, now, /*pop_id=*/0,
                                     /*udp_hint=*/std::nullopt, prop.name);
  if (!record.has_value()) return;
  prop.reachable = true;
  prop.record = std::move(*record);
}

const WebProperty* WebPropertyCatalog::Get(std::string_view name) const {
  const auto it = properties_.find(std::string(name));
  return it == properties_.end() ? nullptr : &it->second;
}

std::size_t WebPropertyCatalog::reachable_count() const {
  std::size_t n = 0;
  for (const auto& [name, prop] : properties_) n += prop.reachable;
  return n;
}

void WebPropertyCatalog::ForEach(
    const std::function<void(const WebProperty&)>& fn) const {
  for (const auto& [name, prop] : properties_) fn(prop);
}

}  // namespace censys::web
