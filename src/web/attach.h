// Wires a WebPropertyCatalog onto a running CensysEngine.
//
// The web layer sits at the top of the layer DAG
// (tools/censyslint/layers.txt), above engines: the engine knows nothing
// about web properties, it only exposes the shared scanner, the simulated
// network, the CT log, and a daily-job hook. This helper binds a catalog
// to those, so every simulated day the catalog polls the CT log for new
// names and refreshes properties that are due — the same cadence the
// engine runs its own daily work on.
#pragma once

#include <memory>

#include "engines/censys_engine.h"
#include "web/webprops.h"

namespace censys::web {

// Creates a catalog scanning through `engine`'s interrogator and registers
// its daily CT poll + refresh with the engine. The returned catalog must
// outlive the engine's ticking (the daily job holds a raw pointer to it).
std::unique_ptr<WebPropertyCatalog> AttachCatalog(
    engines::CensysEngine& engine, WebPropertyCatalog::Options options = {});

}  // namespace censys::web
