// Web Properties (§4.3).
//
// The majority of HTTP(S) services are only reachable when addressed by
// name (SNI / Host header). Censys discovers names from public CT logs,
// HTTP redirects, and passive-DNS feeds, scans each name's root page at
// least monthly, and models the result as a Web Property entity (the paper
// migrated away from the (IP, Port, Name) Virtual Host abstraction in 2024
// precisely because names, not IP tuples, are the stable identity).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cert/ct.h"
#include "interrogate/interrogator.h"
#include "simnet/internet.h"

namespace censys::web {

struct WebProperty {
  std::string name;
  Timestamp first_seen;
  Timestamp last_scanned;
  bool reachable = false;
  // The scan result for the root page (empty record when unreachable).
  interrogate::ServiceRecord record;
  // Where the name came from.
  enum class Source : std::uint8_t { kCtLog, kPassiveDns, kRedirect } source =
      Source::kCtLog;
};

class WebPropertyCatalog {
 public:
  struct Options {
    Duration refresh_interval = Duration::Days(30);  // "at least monthly"
  };

  WebPropertyCatalog(simnet::Internet& net, interrogate::Interrogator& scanner)
      : WebPropertyCatalog(net, scanner, Options()) {}
  WebPropertyCatalog(simnet::Internet& net, interrogate::Interrogator& scanner,
                     Options options)
      : net_(net), scanner_(scanner), options_(options) {}

  // Consumes new CT entries since the internal cursor, registering any DNS
  // names found in certificates.
  std::size_t PollCtLog(const cert::CtLog& log, Timestamp now);

  // Registers a name learned from a passive-DNS subscription or redirect.
  void AddName(std::string name, WebProperty::Source source, Timestamp now);

  // Scans every property due for refresh; returns how many were scanned.
  std::size_t RefreshDue(Timestamp now);

  const WebProperty* Get(std::string_view name) const;
  std::size_t size() const { return properties_.size(); }
  std::size_t reachable_count() const;
  void ForEach(const std::function<void(const WebProperty&)>& fn) const;

 private:
  void Scan(WebProperty& prop, Timestamp now);

  simnet::Internet& net_;
  interrogate::Interrogator& scanner_;
  Options options_;
  std::unordered_map<std::string, WebProperty> properties_;
  std::uint64_t ct_cursor_ = 0;
};

}  // namespace censys::web
