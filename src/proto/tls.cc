#include "proto/tls.h"

#include <array>
#include <cstdio>

#include "core/rng.h"
#include "core/sha256.h"

namespace censys::proto {
namespace {

constexpr std::array<std::string_view, 6> kCiphers12 = {
    "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256",
    "TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384",
    "TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256",
    "TLS_ECDHE_ECDSA_WITH_CHACHA20_POLY1305_SHA256",
    "TLS_RSA_WITH_AES_128_CBC_SHA",
    "TLS_RSA_WITH_AES_256_CBC_SHA256",
};
constexpr std::array<std::string_view, 3> kCiphers13 = {
    "TLS_AES_128_GCM_SHA256",
    "TLS_AES_256_GCM_SHA384",
    "TLS_CHACHA20_POLY1305_SHA256",
};

std::uint64_t Sub(std::uint64_t seed, std::uint64_t salt) {
  return SplitMix64(seed ^ SplitMix64(salt));
}

}  // namespace

std::string_view ToString(TlsVersion v) {
  switch (v) {
    case TlsVersion::kTls10: return "TLSv1.0";
    case TlsVersion::kTls11: return "TLSv1.1";
    case TlsVersion::kTls12: return "TLSv1.2";
    case TlsVersion::kTls13: return "TLSv1.3";
  }
  return "TLS";
}

std::string TlsConfig::Jarm() const {
  // The real JARM is 62 hex chars derived from ten probe responses; ours is
  // a keyed hash of the stack configuration with the same shape. Identical
  // stacks yield identical JARMs across hosts.
  Sha256 h;
  h.Update("jarm");
  const std::uint64_t material[2] = {stack_id,
                                     static_cast<std::uint64_t>(version)};
  h.Update(material, sizeof(material));
  h.Update(cipher);
  const Sha256Digest d = h.Finish();
  return ToHex(d).substr(0, 62);
}

std::string TlsConfig::Ja4s() const {
  Sha256 h;
  h.Update("ja4s");
  h.Update(&stack_id, sizeof(stack_id));
  h.Update(cipher);
  const std::string hex = ToHex(h.Finish());
  char buf[64];
  std::snprintf(buf, sizeof(buf), "t%s%02d_%s_%s",
                version == TlsVersion::kTls13 ? "13" : "12",
                static_cast<int>(stack_id % 20 + 1), hex.substr(0, 12).c_str(),
                hex.substr(12, 12).c_str());
  return buf;
}

std::optional<TlsConfig> DeriveTls(Protocol p, std::uint64_t seed, bool force) {
  const ProtocolInfo& info = GetInfo(p);
  const bool has_tls =
      force || p == Protocol::kHttps ||
      (info.tls_common && (Sub(seed, 30) % 100) < 60);
  if (!has_tls) return std::nullopt;

  TlsConfig cfg;
  // ~55% of stacks negotiate TLS 1.3, the rest 1.2, a legacy sliver 1.0/1.1.
  const std::uint64_t roll = Sub(seed, 31) % 100;
  if (roll < 55) {
    cfg.version = TlsVersion::kTls13;
    cfg.cipher = std::string(kCiphers13[Sub(seed, 32) % kCiphers13.size()]);
  } else if (roll < 96) {
    cfg.version = TlsVersion::kTls12;
    cfg.cipher = std::string(kCiphers12[Sub(seed, 32) % kCiphers12.size()]);
  } else {
    cfg.version = roll < 98 ? TlsVersion::kTls11 : TlsVersion::kTls10;
    cfg.cipher = std::string(kCiphers12[4 + Sub(seed, 32) % 2]);
  }
  // A modest number of distinct TLS stacks exist in the wild; hosts cluster
  // onto them. 1/64 of services get a "rare" stack id (C2 kits, bespoke
  // builds) — these are the threat-hunting pivots.
  if (Sub(seed, 33) % 64 == 0) {
    cfg.stack_id = 1000 + Sub(seed, 34) % 50;  // rare stacks
  } else {
    cfg.stack_id = Sub(seed, 34) % 24;  // common stacks
  }
  cfg.cert_seed = Sub(seed, 35);
  return cfg;
}

}  // namespace censys::proto
