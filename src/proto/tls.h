// Simulated TLS layer.
//
// We do not model TLS byte-level records; we model the attributes the paper
// cares about: whether a service speaks TLS, which certificate it presents,
// and the stack fingerprints (JARM / JA4S) that threat hunters pivot on
// (§7.2 "mapping out relationships between servers (e.g., via SSH hostkey
// or JARM fingerprint)"). The fingerprint is a stable function of the TLS
// stack configuration, so distinct hosts running the same C2 kit share a
// fingerprint — exactly the property the real fingerprints have.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "proto/protocol.h"

namespace censys::proto {

enum class TlsVersion : std::uint8_t { kTls10, kTls11, kTls12, kTls13 };

std::string_view ToString(TlsVersion v);

struct TlsConfig {
  TlsVersion version = TlsVersion::kTls12;
  std::string cipher;            // negotiated cipher suite name
  std::uint64_t stack_id = 0;    // identity of the TLS implementation/config
  std::uint64_t cert_seed = 0;   // deterministic input to cert synthesis

  // JARM-style 62-hex-char active TLS fingerprint of the stack.
  std::string Jarm() const;
  // JA4S-style server fingerprint ("t13d1516h2_8daaf6152771_b0da82dd1658").
  std::string Ja4s() const;
};

// Derives the TLS configuration for a service seed, or nullopt when the
// service does not speak TLS. `force` makes TLS mandatory (used for HTTPS).
std::optional<TlsConfig> DeriveTls(Protocol p, std::uint64_t seed,
                                   bool force = false);

}  // namespace censys::proto
