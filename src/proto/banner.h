// Deterministic banner and software synthesis.
//
// Every simulated service derives its configuration from a 64-bit seed: the
// software vendor/product/version it "runs", the banner it presents, and the
// HTML title / page keywords for HTTP. All generators are pure functions of
// (protocol, seed), so a service presents the same identity to every scanner
// that interrogates it — which is what makes cross-engine coverage and
// labeling-accuracy comparisons meaningful.
#pragma once

#include <cstdint>
#include <string>

#include "proto/protocol.h"

namespace censys::proto {

struct SoftwareInfo {
  std::string vendor;
  std::string product;
  std::string version;

  // MITRE CPE 2.3-style URI ("cpe:2.3:a:openbsd:openssh:8.9:..."). The paper
  // notes Censys derives CPE-format context but does not restrict itself to
  // the official dictionary.
  std::string ToCpe() const;

  bool operator==(const SoftwareInfo&) const = default;
};

// The software a service with this seed runs. Protocols map to realistic
// vendor pools (HTTP -> nginx/Apache/IIS/embedded; S7 -> Siemens; ...).
SoftwareInfo GenerateSoftware(Protocol p, std::uint64_t seed);

// The line-oriented banner the service presents (FTP 220 greeting, SSH
// version string, SMTP 220, Telnet login prompt, ICS device id block...).
// Empty for protocols that expose only binary structure.
std::string GenerateBanner(Protocol p, std::uint64_t seed);

// HTTP-specific page content.
std::string GenerateHtmlTitle(std::uint64_t seed);
// A short keyword digest of the page body; the Shodan behavioural model
// does keyword labeling against this (e.g. pages containing "operating" and
// "system" get mislabeled as CODESYS when on port 2455 — paper §6.3).
std::string GeneratePageKeywords(std::uint64_t seed);

// The identifiable error a service speaking `actual` returns when probed
// with protocol `probe` (LZR: "if Censys receives an SMTP error in response
// to an HTTP request, it identifies the service as running SMTP"). Empty if
// the service silently drops the wrong-protocol probe.
std::string WrongProtocolResponse(Protocol actual, Protocol probe,
                                  std::uint64_t seed);

// Device identity for ICS and embedded devices: a stable (vendor, model)
// pair used by fingerprinting and the Table 4 experiment.
struct DeviceIdentity {
  std::string manufacturer;
  std::string model;
  bool operator==(const DeviceIdentity&) const = default;
};
DeviceIdentity GenerateDevice(Protocol p, std::uint64_t seed);

}  // namespace censys::proto
