#include "proto/protocol.h"

#include <array>
#include <cassert>
#include <map>
#include <string>

#include "core/strings.h"

namespace censys::proto {
namespace {

std::vector<ProtocolInfo> BuildRegistry() {
  std::vector<ProtocolInfo> reg(kProtocolCount);
  auto add = [&](Protocol p, std::string_view name, Transport t,
                 std::vector<Port> ports, bool talks_first, bool http_ident,
                 bool tls_common, bool ics, double weight) {
    reg[static_cast<std::size_t>(p)] =
        ProtocolInfo{p,          name, t,   std::move(ports), talks_first,
                     http_ident, tls_common, ics,            weight};
  };

  add(Protocol::kUnknown, "UNKNOWN", Transport::kTcp, {}, false, false, false,
      false, 0.0);

  // Population weights approximate the paper's observed service mix: HTTP(S)
  // dominates, remote-access and mail protocols follow, ICS protocols are
  // vanishingly rare in aggregate but security-critical (§3, §6.3).
  add(Protocol::kHttp, "HTTP", Transport::kTcp, {80, 8080, 8000, 8888, 8081},
      false, true, false, false, 430.0);
  add(Protocol::kHttps, "HTTPS", Transport::kTcp, {443, 8443, 4443}, false,
      true, true, false, 260.0);
  add(Protocol::kSsh, "SSH", Transport::kTcp, {22, 2222}, true, true, false,
      false, 55.0);
  add(Protocol::kTelnet, "TELNET", Transport::kTcp, {23, 2323}, true, false,
      false, false, 14.0);
  add(Protocol::kRdp, "RDP", Transport::kTcp, {3389}, false, false, true,
      false, 17.0);
  add(Protocol::kVnc, "VNC", Transport::kTcp, {5900, 5901}, true, false,
      false, false, 7.0);
  add(Protocol::kRlogin, "RLOGIN", Transport::kTcp, {513}, false, false,
      false, false, 0.8);
  add(Protocol::kX11, "X11", Transport::kTcp, {6000}, false, false, false,
      false, 0.6);
  add(Protocol::kFtp, "FTP", Transport::kTcp, {21, 2121}, true, true, false,
      false, 26.0);
  add(Protocol::kTftp, "TFTP", Transport::kUdp, {69}, false, false, false,
      false, 1.5);
  add(Protocol::kSmb, "SMB", Transport::kTcp, {445, 139}, false, false, false,
      false, 12.0);
  add(Protocol::kSmtp, "SMTP", Transport::kTcp, {25, 587, 465}, true, true,
      true, false, 20.0);
  add(Protocol::kPop3, "POP3", Transport::kTcp, {110, 995}, true, true, true,
      false, 9.0);
  add(Protocol::kImap, "IMAP", Transport::kTcp, {143, 993}, true, true, true,
      false, 9.5);
  add(Protocol::kDns, "DNS", Transport::kUdp, {53}, false, false, false,
      false, 24.0);
  add(Protocol::kNtp, "NTP", Transport::kUdp, {123}, false, false, false,
      false, 6.0);
  add(Protocol::kSnmp, "SNMP", Transport::kUdp, {161}, false, false, false,
      false, 8.0);
  add(Protocol::kLdap, "LDAP", Transport::kTcp, {389, 636}, false, false,
      true, false, 2.5);
  add(Protocol::kSip, "SIP", Transport::kUdp, {5060, 5061}, false, false,
      false, false, 6.5);
  add(Protocol::kUpnp, "UPNP", Transport::kUdp, {1900}, false, false, false,
      false, 4.0);
  add(Protocol::kMdns, "MDNS", Transport::kUdp, {5353}, false, false, false,
      false, 1.2);
  add(Protocol::kMysql, "MYSQL", Transport::kTcp, {3306}, true, false, false,
      false, 9.0);
  add(Protocol::kPostgres, "POSTGRES", Transport::kTcp, {5432}, false, false,
      false, false, 3.0);
  add(Protocol::kRedis, "REDIS", Transport::kTcp, {6379}, false, true, false,
      false, 2.2);
  add(Protocol::kMongodb, "MONGODB", Transport::kTcp, {27017}, false, false,
      false, false, 1.4);
  add(Protocol::kMemcached, "MEMCACHED", Transport::kTcp, {11211}, false,
      false, false, false, 0.9);
  add(Protocol::kElasticsearch, "ELASTICSEARCH", Transport::kTcp, {9200},
      false, true, false, false, 0.7);
  add(Protocol::kMqtt, "MQTT", Transport::kTcp, {1883, 8883}, false, false,
      true, false, 1.1);

  // ICS protocols, Table 4 order. Weights are per-protocol absolute scale
  // factors tuned to the paper's validated counts (MODBUS ~42K global >
  // FOX ~20K > WDBRPC ~16K > BACNET ~13K > ... > HART ~12).
  add(Protocol::kAtg, "ATG", Transport::kTcp, {10001}, false, false, false,
      true, 0.0084);
  add(Protocol::kBacnet, "BACNET", Transport::kUdp, {47808}, false, false,
      false, true, 0.0131);
  add(Protocol::kCimonPlc, "CIMON_PLC", Transport::kTcp, {10260}, false,
      false, false, true, 0.0010);
  add(Protocol::kCmore, "CMORE", Transport::kTcp, {9999}, false, false, false,
      true, 0.0023);
  add(Protocol::kCodesys, "CODESYS", Transport::kTcp, {2455}, false, false,
      false, true, 0.0025);
  add(Protocol::kDigi, "DIGI", Transport::kUdp, {771}, false, false, false,
      true, 0.0075);
  add(Protocol::kDnp3, "DNP3", Transport::kTcp, {20000}, false, false, false,
      true, 0.0012);
  add(Protocol::kEip, "EIP", Transport::kTcp, {44818}, false, false, false,
      true, 0.0075);
  add(Protocol::kFins, "FINS", Transport::kUdp, {9600}, false, false, false,
      true, 0.0018);
  add(Protocol::kFox, "FOX", Transport::kTcp, {1911, 4911}, false, false,
      false, true, 0.0200);
  add(Protocol::kGeSrtp, "GE_SRTP", Transport::kTcp, {18245, 18246}, false,
      false, false, true, 0.000049);
  add(Protocol::kHart, "HART", Transport::kTcp, {5094}, false, false, false,
      true, 0.000012);
  add(Protocol::kIec60870, "IEC60870_5_104", Transport::kTcp, {2404}, false,
      false, false, true, 0.0069);
  add(Protocol::kModbus, "MODBUS", Transport::kTcp, {502}, false, false,
      false, true, 0.0420);
  add(Protocol::kOpcUa, "OPC_UA", Transport::kTcp, {4840}, false, false,
      false, true, 0.0024);
  add(Protocol::kPcom, "PCOM", Transport::kTcp, {20256}, false, false, false,
      true, 0.0004);
  add(Protocol::kPcworx, "PCWORX", Transport::kTcp, {1962}, false, false,
      false, true, 0.000228);
  add(Protocol::kProconos, "PRO_CON_OS", Transport::kTcp, {20547}, false,
      false, false, true, 0.000715);
  add(Protocol::kRedlionCrimson, "REDLION_CRIMSON", Transport::kTcp, {789},
      false, false, false, true, 0.0010);
  add(Protocol::kS7, "S7", Transport::kTcp, {102}, false, false, false, true,
      0.0065);
  add(Protocol::kWdbrpc, "WDBRPC", Transport::kUdp, {17185}, false, false,
      false, true, 0.0160);

  return reg;
}

const std::vector<ProtocolInfo>& Registry() {
  static const std::vector<ProtocolInfo> registry = BuildRegistry();
  return registry;
}

const std::map<std::string, Protocol, std::less<>>& NameIndex() {
  static const auto* index = [] {
    auto* m = new std::map<std::string, Protocol, std::less<>>();
    for (const ProtocolInfo& info : Registry()) {
      if (info.protocol == Protocol::kUnknown) continue;
      (*m)[std::string(info.name)] = info.protocol;
    }
    return m;
  }();
  return *index;
}

const std::array<Protocol, 21>& IcsList() {
  static const std::array<Protocol, 21> list = {
      Protocol::kAtg,      Protocol::kBacnet,   Protocol::kCimonPlc,
      Protocol::kCmore,    Protocol::kCodesys,  Protocol::kDigi,
      Protocol::kDnp3,     Protocol::kEip,      Protocol::kFins,
      Protocol::kFox,      Protocol::kGeSrtp,   Protocol::kHart,
      Protocol::kIec60870, Protocol::kModbus,   Protocol::kOpcUa,
      Protocol::kPcom,     Protocol::kPcworx,   Protocol::kProconos,
      Protocol::kRedlionCrimson, Protocol::kS7, Protocol::kWdbrpc};
  return list;
}

}  // namespace

const ProtocolInfo& GetInfo(Protocol p) {
  assert(p < Protocol::kCount);
  return Registry()[static_cast<std::size_t>(p)];
}

std::string_view Name(Protocol p) { return GetInfo(p).name; }

std::optional<Protocol> FromName(std::string_view name) {
  const auto& index = NameIndex();
  auto it = index.find(std::string(ToLower(name).empty() ? name : name));
  if (it != index.end()) return it->second;
  // Accept case-insensitive names too.
  for (const ProtocolInfo& info : Registry()) {
    if (EqualsIgnoreCase(info.name, name)) return info.protocol;
  }
  return std::nullopt;
}

std::span<const ProtocolInfo> AllProtocols() {
  return std::span<const ProtocolInfo>(Registry());
}

std::vector<Protocol> AssignedToPort(Port port, Transport t) {
  std::vector<Protocol> out;
  for (const ProtocolInfo& info : Registry()) {
    if (info.transport != t) continue;
    for (Port p : info.assigned_ports) {
      if (p == port) {
        out.push_back(info.protocol);
        break;
      }
    }
  }
  return out;
}

std::optional<Port> PrimaryPort(Protocol p) {
  const ProtocolInfo& info = GetInfo(p);
  if (info.assigned_ports.empty()) return std::nullopt;
  return info.assigned_ports.front();
}

std::span<const Protocol> IcsProtocols() {
  return std::span<const Protocol>(IcsList());
}

}  // namespace censys::proto
