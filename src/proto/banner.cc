#include "proto/banner.h"

#include <array>
#include <cstdio>
#include <span>
#include <string_view>

#include "core/rng.h"
#include "core/strings.h"

namespace censys::proto {
namespace {

struct SoftwareChoice {
  std::string_view vendor;
  std::string_view product;
  // Version pool; one is picked by seed.
  std::array<std::string_view, 4> versions;
  double weight;
};

std::span<const SoftwareChoice> PoolFor(Protocol p) {
  static const std::array<SoftwareChoice, 6> kHttp = {{
      {"nginx", "nginx", {"1.18.0", "1.22.1", "1.24.0", "1.25.3"}, 34},
      {"apache", "httpd", {"2.4.41", "2.4.52", "2.4.57", "2.4.58"}, 28},
      {"microsoft", "iis", {"8.5", "10.0", "10.0", "10.0"}, 12},
      {"lighttpd", "lighttpd", {"1.4.55", "1.4.59", "1.4.63", "1.4.69"}, 4},
      {"mini_httpd", "mini_httpd", {"1.30", "1.30", "1.30", "1.30"}, 8},
      {"embedded", "goahead", {"3.6.5", "4.1.1", "5.1.2", "5.2.0"}, 14},
  }};
  static const std::array<SoftwareChoice, 4> kSsh = {{
      {"openbsd", "openssh", {"7.4", "8.2p1", "8.9p1", "9.3p1"}, 72},
      {"dropbear", "dropbear", {"2019.78", "2020.81", "2022.82", "2022.83"}, 20},
      {"gnu", "lsh", {"2.1", "2.1", "2.1", "2.1"}, 1},
      {"bitvise", "winsshd", {"8.48", "9.12", "9.31", "9.34"}, 7},
  }};
  static const std::array<SoftwareChoice, 4> kFtp = {{
      {"proftpd", "proftpd", {"1.3.5", "1.3.6", "1.3.7a", "1.3.8"}, 30},
      {"vsftpd", "vsftpd", {"2.2.2", "3.0.2", "3.0.3", "3.0.5"}, 38},
      {"pureftpd", "pure-ftpd", {"1.0.47", "1.0.49", "1.0.50", "1.0.51"}, 18},
      {"microsoft", "ftp_service", {"7.5", "8.0", "10.0", "10.0"}, 14},
  }};
  static const std::array<SoftwareChoice, 3> kSmtp = {{
      {"postfix", "postfix", {"3.3.0", "3.4.13", "3.6.4", "3.8.1"}, 52},
      {"exim", "exim", {"4.92", "4.94.2", "4.96", "4.97"}, 30},
      {"microsoft", "exchange_server", {"2013", "2016", "2019", "2019"}, 18},
  }};
  static const std::array<SoftwareChoice, 3> kMysql = {{
      {"oracle", "mysql", {"5.7.33", "8.0.28", "8.0.33", "8.0.35"}, 62},
      {"mariadb", "mariadb", {"10.3.34", "10.5.15", "10.6.12", "10.11.2"}, 36},
      {"percona", "percona_server", {"8.0.29", "8.0.32", "8.0.34", "8.0.35"}, 2},
  }};
  static const std::array<SoftwareChoice, 2> kTelnet = {{
      {"busybox", "telnetd", {"1.19.4", "1.24.1", "1.31.1", "1.35.0"}, 80},
      {"cisco", "ios_telnet", {"12.4", "15.1", "15.2", "15.7"}, 20},
  }};
  static const std::array<SoftwareChoice, 2> kRdp = {{
      {"microsoft", "remote_desktop", {"6.1", "10.0.17763", "10.0.19041", "10.0.20348"}, 92},
      {"xrdp", "xrdp", {"0.9.12", "0.9.17", "0.9.21", "0.9.23"}, 8},
  }};
  static const std::array<SoftwareChoice, 2> kDns = {{
      {"isc", "bind", {"9.11.4", "9.16.1", "9.18.12", "9.18.19"}, 60},
      {"nlnetlabs", "unbound", {"1.9.4", "1.13.1", "1.17.0", "1.18.0"}, 40},
  }};
  static const std::array<SoftwareChoice, 1> kGeneric = {{
      {"generic", "service", {"1.0", "1.1", "2.0", "2.1"}, 1},
  }};

  // ICS pools: realistic vendor/model families per protocol.
  static const std::array<SoftwareChoice, 2> kModbus = {{
      {"schneider", "modicon_m340", {"2.7", "3.01", "3.20", "3.30"}, 55},
      {"wago", "750-881", {"01.07.13", "01.08.06", "01.09.18", "01.10.01"}, 45},
  }};
  static const std::array<SoftwareChoice, 1> kS7 = {{
      {"siemens", "simatic_s7-300", {"2.6.9", "3.2.6", "3.3.12", "3.X"}, 1},
  }};
  static const std::array<SoftwareChoice, 1> kFox = {{
      {"tridium", "niagara_ax", {"3.7.106", "3.8.38", "4.4.73", "4.9.0"}, 1},
  }};
  static const std::array<SoftwareChoice, 1> kBacnet = {{
      {"honeywell", "webs-av", {"1.2", "2.0", "3.1", "3.5"}, 1},
  }};
  static const std::array<SoftwareChoice, 1> kCodesys = {{
      {"codesys", "control_runtime", {"2.3.9.9", "3.5.12", "3.5.16", "3.5.19"}, 1},
  }};

  switch (p) {
    case Protocol::kHttp:
    case Protocol::kHttps:
      return kHttp;
    case Protocol::kSsh:
      return kSsh;
    case Protocol::kFtp:
      return kFtp;
    case Protocol::kSmtp:
    case Protocol::kPop3:
    case Protocol::kImap:
      return kSmtp;
    case Protocol::kMysql:
    case Protocol::kPostgres:
      return kMysql;
    case Protocol::kTelnet:
      return kTelnet;
    case Protocol::kRdp:
      return kRdp;
    case Protocol::kDns:
      return kDns;
    case Protocol::kModbus:
      return kModbus;
    case Protocol::kS7:
      return kS7;
    case Protocol::kFox:
      return kFox;
    case Protocol::kBacnet:
      return kBacnet;
    case Protocol::kCodesys:
      return kCodesys;
    default:
      return kGeneric;
  }
}

// Stable per-field sub-seeds so adding a generator never perturbs others.
std::uint64_t Sub(std::uint64_t seed, std::uint64_t salt) {
  return SplitMix64(seed ^ SplitMix64(salt));
}

}  // namespace

std::string SoftwareInfo::ToCpe() const {
  return "cpe:2.3:a:" + vendor + ":" + product + ":" + version +
         ":*:*:*:*:*:*:*";
}

SoftwareInfo GenerateSoftware(Protocol p, std::uint64_t seed) {
  const auto pool = PoolFor(p);
  double total = 0;
  for (const auto& c : pool) total += c.weight;
  double x = static_cast<double>(Sub(seed, 1) % 100000) / 100000.0 * total;
  const SoftwareChoice* chosen = &pool.back();
  for (const auto& c : pool) {
    x -= c.weight;
    if (x < 0) {
      chosen = &c;
      break;
    }
  }
  const std::size_t vi = Sub(seed, 2) % chosen->versions.size();
  return SoftwareInfo{std::string(chosen->vendor), std::string(chosen->product),
                      std::string(chosen->versions[vi])};
}

std::string GenerateBanner(Protocol p, std::uint64_t seed) {
  const SoftwareInfo sw = GenerateSoftware(p, seed);
  char buf[256];
  switch (p) {
    case Protocol::kSsh:
      std::snprintf(buf, sizeof(buf), "SSH-2.0-%s_%s", sw.product.c_str(),
                    sw.version.c_str());
      return buf;
    case Protocol::kFtp:
      std::snprintf(buf, sizeof(buf), "220 %s %s Server ready.",
                    sw.product.c_str(), sw.version.c_str());
      return buf;
    case Protocol::kSmtp:
      std::snprintf(buf, sizeof(buf), "220 mail-%llx ESMTP %s %s",
                    static_cast<unsigned long long>(Sub(seed, 3) & 0xffffff),
                    sw.product.c_str(), sw.version.c_str());
      return buf;
    case Protocol::kPop3:
      std::snprintf(buf, sizeof(buf), "+OK %s POP3 server ready",
                    sw.product.c_str());
      return buf;
    case Protocol::kImap:
      std::snprintf(buf, sizeof(buf), "* OK [CAPABILITY IMAP4rev1] %s %s ready",
                    sw.product.c_str(), sw.version.c_str());
      return buf;
    case Protocol::kTelnet:
      std::snprintf(buf, sizeof(buf), "%s login: ",
                    sw.vendor == "cisco" ? "Router" : "device");
      return buf;
    case Protocol::kMysql:
      std::snprintf(buf, sizeof(buf), "%s-%s", sw.version.c_str(),
                    sw.vendor == "mariadb" ? "MariaDB" : "log");
      return buf;
    case Protocol::kHttp:
    case Protocol::kHttps:
      std::snprintf(buf, sizeof(buf), "Server: %s/%s", sw.product.c_str(),
                    sw.version.c_str());
      return buf;
    case Protocol::kVnc:
      return "RFB 003.008";
    case Protocol::kRedis:
      return "-NOAUTH Authentication required.";
    default: {
      if (GetInfo(p).is_ics) {
        const DeviceIdentity dev = GenerateDevice(p, seed);
        std::snprintf(buf, sizeof(buf), "%s %s fw=%s",
                      dev.manufacturer.c_str(), dev.model.c_str(),
                      sw.version.c_str());
        return buf;
      }
      return "";
    }
  }
}

std::string GenerateHtmlTitle(std::uint64_t seed) {
  static constexpr std::array<std::string_view, 16> kTitles = {
      "Welcome to nginx!",
      "Apache2 Ubuntu Default Page",
      "IIS Windows Server",
      "Login",
      "Index of /",
      "WAC6552D-S",            // device title used as a fingerprint example in the paper
      "RouterOS router configuration page",
      "401 Authorization Required",
      "Grafana",
      "phpMyAdmin",
      "Synology DiskStation",
      "Dashboard - Prometheus", // back-office app, per Web Property discussion
      "Hikvision Digital Technology",
      "TP-LINK Wireless Router",
      "Plesk Obsidian",
      "It works!",
  };
  return std::string(kTitles[Sub(seed, 10) % kTitles.size()]);
}

std::string GeneratePageKeywords(std::uint64_t seed) {
  // A minority of generic HTTP pages mention "operating system" (status
  // pages, device dashboards) — the raw material for Shodan's CODESYS
  // keyword mislabeling in Table 4.
  static constexpr std::array<std::string_view, 8> kKeywordSets = {
      "welcome index home",
      "login password user",
      "operating system status uptime",
      "router admin configuration",
      "dashboard metrics monitoring",
      "camera stream live",
      "storage share files",
      "error notfound 404",
  };
  return std::string(kKeywordSets[Sub(seed, 11) % kKeywordSets.size()]);
}

std::string WrongProtocolResponse(Protocol actual, Protocol probe,
                                  std::uint64_t seed) {
  (void)seed;
  const ProtocolInfo& info = GetInfo(actual);
  // Server-first protocols always reveal themselves via their greeting.
  if (info.server_talks_first) return GenerateBanner(actual, seed);
  if (!info.identifiable_from_http_probe) return "";
  if (probe != Protocol::kHttp && probe != Protocol::kHttps) return "";
  switch (actual) {
    case Protocol::kHttp:
      return "HTTP/1.1 200 OK";
    case Protocol::kHttps:
      // A plaintext probe to a TLS-only service elicits a TLS alert, not
      // fingerprintable text; identification happens inside the TLS session.
      return "";
    case Protocol::kRedis:
      return "-ERR unknown command 'GET'";
    case Protocol::kElasticsearch:
      return "HTTP/1.1 400 Bad Request {\"error\":\"es\"}";
    default:
      // SMTP-style numeric error to a non-protocol request.
      return "500 5.5.1 Command unrecognized";
  }
}

DeviceIdentity GenerateDevice(Protocol p, std::uint64_t seed) {
  struct Pool {
    std::string_view manufacturer;
    std::array<std::string_view, 3> models;
  };
  auto pick = [&](const Pool& pool) {
    return DeviceIdentity{std::string(pool.manufacturer),
                          std::string(pool.models[Sub(seed, 20) % 3])};
  };
  switch (p) {
    case Protocol::kModbus:
      return pick({"Schneider Electric", {"Modicon M340", "Modicon M580", "PowerLogic PM8000"}});
    case Protocol::kS7:
      return pick({"Siemens", {"SIMATIC S7-300", "SIMATIC S7-1200", "SIMATIC S7-1500"}});
    case Protocol::kFox:
      return pick({"Tridium", {"Niagara AX 3.8", "Niagara 4 JACE-8000", "Niagara 4 Edge-10"}});
    case Protocol::kBacnet:
      return pick({"Honeywell", {"WEB-8000", "Spyder BACnet", "ComfortPoint Open"}});
    case Protocol::kCodesys:
      return pick({"CODESYS GmbH", {"Control RTE", "Control for Raspberry Pi", "HMI Runtime"}});
    case Protocol::kAtg:
      return pick({"Veeder-Root", {"TLS-350", "TLS-450PLUS", "TLS-4B"}});
    case Protocol::kDnp3:
      return pick({"SEL", {"SEL-3530 RTAC", "SEL-651R", "SEL-751"}});
    case Protocol::kEip:
      return pick({"Rockwell Automation", {"1756-EN2T", "CompactLogix 5370", "MicroLogix 1400"}});
    case Protocol::kFins:
      return pick({"Omron", {"CJ2M-CPU33", "CP1L-EM", "NJ501-1300"}});
    case Protocol::kGeSrtp:
      return pick({"General Electric", {"RX3i CPE305", "VersaMax Micro", "PACSystems RX7i"}});
    case Protocol::kHart:
      return pick({"Emerson", {"HART-IP Gateway 1410", "Rosemount 3051", "AMS Wireless Gateway"}});
    case Protocol::kIec60870:
      return pick({"ABB", {"RTU560", "RTU540", "SSC600"}});
    case Protocol::kOpcUa:
      return pick({"Unified Automation", {"UaGateway", "ANSI C Demo Server", "HighPerf Server"}});
    case Protocol::kPcworx:
      return pick({"Phoenix Contact", {"ILC 150 ETH", "ILC 171 ETH 2TX", "AXC 1050"}});
    case Protocol::kProconos:
      return pick({"Phoenix Contact", {"ProConOS eCLR", "MULTIPROG RT", "ProConOS 4.x"}});
    case Protocol::kRedlionCrimson:
      return pick({"Red Lion Controls", {"G306A", "G310 HMI", "DA50A"}});
    case Protocol::kWdbrpc:
      return pick({"Wind River", {"VxWorks 6.9", "VxWorks 6.6", "VxWorks 5.5"}});
    case Protocol::kPcom:
      return pick({"Unitronics", {"Vision V350", "Vision V130", "Samba SM43"}});
    case Protocol::kCimonPlc:
      return pick({"CIMON", {"CM1-XP", "PLC-S CPU", "Xpanel HMI"}});
    case Protocol::kCmore:
      return pick({"AutomationDirect", {"C-more EA9", "C-more EA7", "C-more Micro"}});
    case Protocol::kDigi:
      return pick({"Digi International", {"PortServer TS", "ConnectPort X4", "Digi One IA"}});
    default:
      return DeviceIdentity{"", ""};
  }
}

}  // namespace censys::proto
