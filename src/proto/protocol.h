// Protocol registry.
//
// Censys implements ~200 L7 protocol scanners; we model the ~50 that the
// paper's evaluation actually touches: the general-purpose protocols of
// Tables 5 and 9 plus every industrial-control protocol of Table 4. Each
// protocol carries the metadata the scan and interrogation engines need:
// IANA-assigned ports, transport, whether the server talks first, whether a
// TLS-wrapped variant exists, and whether it is an ICS protocol (which
// gates access tiers and the Table 4 experiment).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/types.h"

namespace censys::proto {

enum class Protocol : std::uint8_t {
  kUnknown = 0,
  // Web.
  kHttp,
  kHttps,
  // Remote access / shells.
  kSsh,
  kTelnet,
  kRdp,
  kVnc,
  kRlogin,
  kX11,
  // File transfer.
  kFtp,
  kTftp,
  kSmb,
  // Mail.
  kSmtp,
  kPop3,
  kImap,
  // Naming and time.
  kDns,
  kNtp,
  // Management.
  kSnmp,
  kLdap,
  kSip,
  kUpnp,
  kMdns,
  // Databases and caches.
  kMysql,
  kPostgres,
  kRedis,
  kMongodb,
  kMemcached,
  kElasticsearch,
  kMqtt,
  // Industrial control systems (paper Table 4).
  kAtg,
  kBacnet,
  kCimonPlc,
  kCmore,
  kCodesys,
  kDigi,
  kDnp3,
  kEip,
  kFins,
  kFox,
  kGeSrtp,
  kHart,
  kIec60870,
  kModbus,
  kOpcUa,
  kPcom,
  kPcworx,
  kProconos,
  kRedlionCrimson,
  kS7,
  kWdbrpc,
  kCount,  // sentinel
};

inline constexpr int kProtocolCount = static_cast<int>(Protocol::kCount);

struct ProtocolInfo {
  Protocol protocol = Protocol::kUnknown;
  // Canonical service_name as it appears in Censys queries ("MODBUS").
  std::string_view name;
  Transport transport = Transport::kTcp;
  // IANA-assigned / conventional ports, most common first. Empty for none.
  std::vector<Port> assigned_ports;
  // True if the server sends a banner immediately on connect (FTP, SSH,
  // SMTP, Telnet...). LZR-style detection leans on this.
  bool server_talks_first = false;
  // True if the protocol responds to a generic HTTP GET with an
  // identifiable protocol-specific error (e.g. SMTP "500 5.5.1").
  bool identifiable_from_http_probe = false;
  // True if a TLS-wrapped deployment is common (HTTPS, IMAPS...).
  bool tls_common = false;
  // Industrial-control protocol (Table 4 experiment; tiered access).
  bool is_ics = false;
  // Relative deployment frequency weight in the simulated Internet.
  // Calibrated so HTTP(S) dominates, matching "the Internet service
  // landscape is dominated by HTTP(S) services" (paper §6.3).
  double population_weight = 0.0;
};

// Registry lookups. The registry is immutable and built once.
const ProtocolInfo& GetInfo(Protocol p);
std::string_view Name(Protocol p);
std::optional<Protocol> FromName(std::string_view name);
std::span<const ProtocolInfo> AllProtocols();

// Protocols with an IANA assignment on `port` (most protocols have a couple
// of conventional ports; several share none).
std::vector<Protocol> AssignedToPort(Port port, Transport t);

// The primary conventional port of a protocol (first assigned), or nullopt.
std::optional<Port> PrimaryPort(Protocol p);

// All ICS protocols, in Table 4 order.
std::span<const Protocol> IcsProtocols();

}  // namespace censys::proto
