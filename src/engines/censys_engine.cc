#include "engines/censys_engine.h"

#include <algorithm>
#include <vector>

#include "core/thread_safety.h"
#include "core/trace.h"
#include "pipeline/entity.h"
#include "proto/banner.h"

namespace censys::engines {
namespace {

// Builds the daily priority port list: the ~100 most responsive ports plus
// the IANA-assigned ports of every protocol of interest (which is how the
// security-critical ICS ports get daily coverage despite their rarity).
std::vector<Port> BuildPriorityPorts(const simnet::PortModel& ports,
                                     std::size_t top_n) {
  std::vector<Port> list = ports.TopPorts(top_n);
  for (const proto::ProtocolInfo& info : proto::AllProtocols()) {
    for (Port p : info.assigned_ports) list.push_back(p);
  }
  std::sort(list.begin(), list.end());
  list.erase(std::unique(list.begin(), list.end()), list.end());
  return list;
}

}  // namespace

CensysEngine::CensysEngine(simnet::Internet& net, cert::CtLog& ct_log,
                           Config config)
    : net_(net), ct_log_(ct_log), config_(config),
      journal_(config.journal_options),
      rng_(SplitMix64(config.seed ^ 0xCE5515)) {
  // §8: ~576 probes per public IP per day, spread over five /24s of
  // identifying source addresses.
  profile_ = simnet::ScannerProfile{1, "censys", 576.0, 1280.0};

  executor_ = std::make_unique<Executor>(config_.threads);

  roots_ = cert::RootStore::Default();
  discovery_ = std::make_unique<scan::DiscoveryEngine>(
      net_, profile_, config_.pop_count, config_.seed);
  discovery_->SetExclusionList(&exclusions_);
  discovery_->SetExecutor(executor_.get());
  scheduler_ = std::make_unique<scan::ScanScheduler>(*discovery_);
  interrogator_ = std::make_unique<interrogate::Interrogator>(net_, profile_);
  interrogator_->SetCertificateObserver(
      [this](const cert::Certificate& certificate, ServiceKey presented_by,
             Timestamp at) {
        cert_store_.ObserveFromScan(certificate, presented_by, at);
      });
  predictive_ = std::make_unique<predict::PredictiveEngine>(net_.blocks(),
                                                            config_.seed);
  write_side_ = std::make_unique<pipeline::WriteSide>(journal_, bus_,
                                                      config_.write_options);
  tick_pipeline_ = std::make_unique<TickPipeline>(
      *executor_, *interrogator_, *write_side_, *predictive_,
      config_.commit_batch);
  fingerprints_ = fingerprint::FingerprintEngine::BuiltIn();
  cves_ = fingerprint::CveDatabase::BuiltIn();
  enricher_ = std::make_unique<ContextEnricher>(net_.blocks(), &fingerprints_,
                                                &cves_);
  read_side_ = std::make_unique<pipeline::ReadSide>(journal_, *write_side_,
                                                    enricher_.get());
  read_side_->EnableCache(config_.view_cache);

  // --- scan classes (§4.1) -----------------------------------------------------
  const std::vector<Port> priority =
      BuildPriorityPorts(net_.ports(), config_.priority_top_ports);
  for (Port p : priority) {
    priority_port_set_.insert(p);
    priority_port_set_.insert(0x10000u | p);  // udp marker shares the set
  }
  scan::ScheduledClass priority_class;
  priority_class.klass.name = "priority-ports";
  priority_class.klass.ports = priority;
  priority_class.klass.period = Duration::Days(1);
  scheduler_->AddClass(std::move(priority_class));

  if (config_.enable_cloud_class) {
    scan::ScheduledClass cloud_class;
    cloud_class.klass.name = "cloud-networks";
    cloud_class.klass.ports = net_.ports().TopPorts(config_.cloud_ports);
    cloud_class.klass.blocks =
        net_.blocks().BlocksOfType(simnet::NetworkType::kCloud);
    cloud_class.klass.period = Duration::Days(1);
    scheduler_->AddClass(std::move(cloud_class));
  }

  // Asynchronous event processing (§5.2): maintain the secondary pivot
  // tables from journaled events, off the ingest path.
  bus_.Subscribe([this](const pipeline::PipelineEvent& event) {
    if (event.kind == storage::EventKind::kServiceRemoved) {
      pivots_.Forget(event.key);
      return;
    }
    const core::ThreadRoleGuard role(journal_.command_role());
    const storage::FieldMap* state = journal_.CurrentState(event.entity_id);
    if (state == nullptr) return;
    const auto record = pipeline::RecordFrom(*state, event.key);
    if (!record.has_value()) return;
    pivots_.Observe(event.key, record->cert_sha256, record->jarm);
  });

  if (config_.enable_background) {
    scan::ScheduledClass background;
    background.klass.name = "background-65k";
    background.klass.period = Duration::Days(1);
    const std::size_t per_day = config_.background_ports_per_day;
    const std::uint64_t seed = config_.seed;
    background.port_provider = [per_day, seed](std::uint64_t pass) {
      return scan::BackgroundPortSlice(pass, per_day, seed);
    };
    scheduler_->AddClass(std::move(background));
  }

  // --- observability -----------------------------------------------------------
  // Bind after every component and scan class exists so gauges cover them.
  discovery_->BindMetrics(&metrics_);
  scheduler_->BindMetrics(&metrics_);
  interrogator_->BindMetrics(&metrics_);
  journal_.BindMetrics(&metrics_);
  write_side_->BindMetrics(&metrics_);
  read_side_->BindMetrics(&metrics_);
  index_.BindMetrics(&metrics_);
  ticks_metric_ = metrics::BindCounter(&metrics_, "censys.engine.ticks");
  stage_discovery_metric_ =
      metrics::BindHistogram(&metrics_, "censys.engine.stage.discovery_us");
  stage_interrogate_metric_ =
      metrics::BindHistogram(&metrics_, "censys.engine.stage.interrogate_us");
  stage_parallel_metric_ = metrics::BindHistogram(
      &metrics_, "censys.engine.stage.interrogate_parallel_us");
  stage_refresh_metric_ =
      metrics::BindHistogram(&metrics_, "censys.engine.stage.refresh_us");
  stage_daily_metric_ =
      metrics::BindHistogram(&metrics_, "censys.engine.stage.daily_us");
  stage_commit_metric_ =
      metrics::BindHistogram(&metrics_, "censys.engine.stage.commit_us");
  tick_metric_ = metrics::BindHistogram(&metrics_, "censys.engine.tick_us");
  rebuild_metric_ =
      metrics::BindHistogram(&metrics_, "censys.search.rebuild_us");
}

double CensysEngine::BootstrapKnownProbability(const simnet::SimService& svc,
                                               Timestamp t0) const {
  const bool priority = priority_port_set_.contains(
      svc.key.transport == Transport::kUdp ? (0x10000u | svc.key.port)
                                           : std::uint32_t{svc.key.port});
  if (priority) {
    // Probed daily; only persistent visibility gaps hide it.
    if (svc.key.transport == Transport::kUdp) {
      // UDP needs a protocol-specific probe on an assigned port.
      const auto assigned =
          proto::AssignedToPort(svc.key.port, Transport::kUdp);
      const bool probed = std::find(assigned.begin(), assigned.end(),
                                    svc.protocol) != assigned.end();
      return probed ? 0.95 : 0.0;
    }
    return 0.97;
  }
  if (svc.key.transport == Transport::kUdp) return 0.0;

  const simnet::NetworkBlock& block = net_.blocks().BlockOf(svc.key.ip);
  if (config_.enable_cloud_class &&
      block.type == simnet::NetworkType::kCloud &&
      net_.ports().RankOf(svc.key.port) <= config_.cloud_ports) {
    return 0.95;
  }

  // Background sweep + predictive equilibrium for everything else. The
  // paper's background scan completes a full pass of all 65K ports every
  // nine months (§4.1), so the chance an age-A service has been swept grows
  // linearly to 1 over ~270 days; the predictive engine adds a coverage
  // floor that saturates over the first weeks of a service's life.
  const double age_days = (t0 - svc.born).ToDays();
  double p_bg = 0.0;
  if (config_.enable_background) {
    p_bg = std::min(1.0, age_days / 270.0);
  }
  double p_pred = 0.0;
  if (config_.enable_predictive) {
    p_pred = std::min(0.55, age_days * 0.04);
  }
  return 1.0 - (1.0 - p_bg) * (1.0 - p_pred);
}

void CensysEngine::Bootstrap(Timestamp t0) {
  if (!config_.warm_start) return;
  std::vector<simnet::SimService> to_seed;
  net_.ForEachActiveService(t0, [&](const simnet::SimService& svc) {
    if (svc.pseudo) return;
    Rng fork = rng_.Fork(svc.key.Pack());
    if (fork.NextDouble() < BootstrapKnownProbability(svc, t0)) {
      to_seed.push_back(svc);
    }
  });
  for (const simnet::SimService& svc : to_seed) {
    simnet::L7Session session;
    session.service = svc;
    if (proto::GetInfo(svc.protocol).server_talks_first) {
      session.server_first_banner =
          proto::GenerateBanner(svc.protocol, svc.seed);
    }
    std::optional<proto::Protocol> udp_hint;
    if (svc.key.transport == Transport::kUdp) udp_hint = svc.protocol;
    // The accumulated dataset was last refreshed within the past day.
    Rng fork = rng_.Fork(svc.key.Pack() ^ 0x0B5EE);
    const Timestamp observed =
        t0 - Duration{static_cast<std::int64_t>(
                 fork.NextDouble() *
                 static_cast<double>(config_.refresh_interval.minutes))};
    interrogate::ServiceRecord record =
        interrogator_->BuildRecord(session, observed, udp_hint, {});
    write_side_->IngestScan(record);
    predictive_->ObserveService(svc.key);
  }
  bus_.Drain();
}

void CensysEngine::RunInterrogationBatch(
    const std::vector<InterrogationJob>& jobs) {
  if (jobs.empty()) return;
  // Stages 3-5, overlapped: workers stream jobs off a lock-free ring and
  // stage pure interrogation results into sequence slots; the command
  // thread commits them strictly in candidate-sequence order with
  // group-committed journal appends (see engines/tick_pipeline.h). The
  // journal is identical no matter how stage 3 interleaved.
  const metrics::ScopedTimer timer(stage_parallel_metric_);
  tick_pipeline_->Run(jobs);
}

void CensysEngine::DrainScanQueue() {
  // Drains run on the command thread: the freshness check below follows
  // GetState's pointer without copying.
  const core::ThreadRoleGuard role(write_side_->command_role());
  // Wave loop: each wave takes at most one candidate per service key so the
  // freshness check against write-side state observes the previous wave's
  // commits — the same thing the old one-at-a-time loop got for free.
  while (!scan_queue_.empty()) {
    std::vector<InterrogationJob> jobs;
    std::deque<scan::Candidate> deferred;
    std::unordered_set<std::uint64_t> claimed;
    while (!scan_queue_.empty()) {
      const scan::Candidate candidate = scan_queue_.front();
      scan_queue_.pop_front();
      if (exclusions_.IsExcluded(candidate.key.ip, candidate.discovered_at)) {
        continue;
      }
      // Already fresh? Skip (continuous scans rediscover known services all
      // the time; the refresh path owns re-interrogation cadence).
      if (const pipeline::ServiceState* state =
              write_side_->GetState(candidate.key)) {
        if (state->last_refreshed + config_.refresh_interval >
            candidate.discovered_at) {
          continue;
        }
      }
      if (!config_.two_phase_validation) {
        // Ablation: publish the L4 hit labeled by port assumption, the way
        // naive pipelines do — no handshake, no validation (§4.1 explains
        // why Censys does not do this).
        ProcessThinRecord(candidate.key, candidate.discovered_at);
        continue;
      }
      if (!claimed.insert(candidate.key.Pack()).second) {
        deferred.push_back(candidate);
        continue;
      }
      InterrogationJob job;
      job.key = candidate.key;
      job.at = candidate.discovered_at;
      job.pop = next_pop_;
      next_pop_ = (next_pop_ + 1) % config_.pop_count;
      job.udp_hint = candidate.udp_protocol;
      // Ingests for flagged pseudo hosts are suppressed before the entity
      // projection is ever read; skip computing it in the worker. Safe even
      // if the flag races a later wave: the unprojected commit path falls
      // back to computing the same fields lazily.
      job.project = !write_side_->IsPseudoFlagged(candidate.key.ip);
      jobs.push_back(job);
    }
    scan_queue_ = std::move(deferred);
    RunInterrogationBatch(jobs);
  }
}

void CensysEngine::ProcessThinRecord(ServiceKey key, Timestamp at) {
  interrogate::ServiceRecord record;
  record.key = key;
  record.observed_at = at;
  const auto assigned = proto::AssignedToPort(key.port, key.transport);
  record.protocol =
      assigned.empty() ? proto::Protocol::kUnknown : assigned.front();
  record.detection = interrogate::DetectionMethod::kPortAssumption;
  record.handshake_validated = false;
  write_side_->IngestScan(record);
}

void CensysEngine::RunRefresh(Timestamp to) {
  struct Due {
    ServiceKey key;
    bool pending;
  };
  std::vector<Due> due;
  write_side_->ForEachTracked([&](const pipeline::ServiceState& state) {
    if (state.last_refreshed + config_.refresh_interval <= to) {
      due.push_back(Due{state.key,
                        state.pending_eviction_since.has_value()});
    }
  });
  if (!config_.two_phase_validation) {
    // Naive-pipeline ablation: refresh is an L4 probe, no L7 validation.
    for (const Due& item : due) {
      const int pop = next_pop_;
      next_pop_ = (next_pop_ + 1) % config_.pop_count;
      if (discovery_->ProbeOne(item.key, to, pop)) {
        ProcessThinRecord(item.key, to);
      } else {
        write_side_->IngestFailure(item.key, to);
      }
    }
    return;
  }

  // Serial pre-pass: PoP rotation and opt-out decisions in due-list order,
  // exactly as the serial loop made them.
  std::vector<InterrogationJob> jobs;
  jobs.reserve(due.size());
  for (const Due& item : due) {
    InterrogationJob job;
    job.key = item.key;
    job.at = to;
    job.ingest_failure_on_miss = true;
    job.observe_predictive = false;
    if (exclusions_.IsExcluded(item.key.ip, to)) {
      // Opted-out networks stop being refreshed; their services age into
      // pending eviction and drop out of the dataset.
      job.interrogate = false;
      jobs.push_back(job);
      continue;
    }
    // "If a service appears unresponsive from one PoP, we attempt to scan
    // it from the other PoPs over the following 24 hours" — pending
    // services rotate PoPs on each retry.
    job.pop = item.pending
                  ? next_pop_
                  : static_cast<int>(item.key.Pack() %
                                     static_cast<std::uint64_t>(
                                         config_.pop_count));
    next_pop_ = (next_pop_ + 1) % config_.pop_count;
    if (item.key.transport == Transport::kUdp) {
      const auto assigned =
          proto::AssignedToPort(item.key.port, Transport::kUdp);
      if (!assigned.empty()) job.udp_hint = assigned.front();
    }
    jobs.push_back(job);
  }
  RunInterrogationBatch(jobs);
}

void CensysEngine::RunPredictive(Timestamp from, Timestamp to) {
  const double day_fraction =
      static_cast<double>((to - from).minutes) / (24.0 * 60.0);
  const std::size_t budget = static_cast<std::size_t>(
      config_.predictive_budget_per_day_frac *
      static_cast<double>(net_.blocks().universe_size()) * day_fraction);
  for (ServiceKey key : predictive_->GenerateCandidates(to, budget)) {
    const int pop = next_pop_;
    next_pop_ = (next_pop_ + 1) % config_.pop_count;
    if (!discovery_->ProbeOne(key, to, pop)) continue;
    scan_queue_.push_back(
        scan::Candidate{key, to, "predictive", std::nullopt, next_seq_++});
  }
  DrainScanQueue();
}

void CensysEngine::RunReinjection(Timestamp day_start) {
  const std::int64_t day = day_start.minutes / 1440;
  std::vector<ServiceKey> to_probe;
  write_side_->ForEachPruned([&](const pipeline::WriteSide::PrunedService& p) {
    const double age_days = (day_start - p.pruned_at).ToDays();
    if (age_days < 0) return;
    // Daily for the first week after pruning, weekly thereafter.
    const bool due = age_days <= 7.0 ||
                     (static_cast<std::int64_t>(p.key.Pack() % 7) == day % 7);
    if (due) to_probe.push_back(p.key);
  });
  // Serial L4 pre-pass; L4 responders go through the parallel stage with
  // the same PoP their probe used.
  std::vector<InterrogationJob> jobs;
  for (ServiceKey key : to_probe) {
    const int pop = next_pop_;
    next_pop_ = (next_pop_ + 1) % config_.pop_count;
    std::optional<proto::Protocol> udp_hint;
    if (key.transport == Transport::kUdp) {
      const auto assigned = proto::AssignedToPort(key.port, Transport::kUdp);
      if (!assigned.empty()) udp_hint = assigned.front();
    }
    if (!discovery_->ProbeOne(key, day_start, pop, udp_hint)) continue;
    InterrogationJob job;
    job.key = key;
    job.at = day_start;
    job.pop = pop;
    job.udp_hint = udp_hint;
    jobs.push_back(job);
  }
  RunInterrogationBatch(jobs);
}

void CensysEngine::TakeAnalyticsSnapshot(Timestamp day_start) {
  search::DailySnapshot snapshot;
  snapshot.day = day_start.minutes / 1440;
  std::unordered_set<std::uint32_t> hosts;
  write_side_->ForEachTracked([&](const pipeline::ServiceState& state) {
    ++snapshot.total_services;
    hosts.insert(state.key.ip.value());
    ++snapshot.by_port[state.key.port];
    const EngineEntry entry = EntryFor(state);
    ++snapshot.by_protocol[std::string(proto::Name(entry.label))];
    if (state.key.ip.value() < net_.blocks().universe_size()) {
      ++snapshot.by_country[std::string(simnet::ToString(
          net_.blocks().BlockOf(state.key.ip).country))];
    }
  });
  snapshot.total_hosts = hosts.size();
  analytics_.AddSnapshot(std::move(snapshot));
  analytics_.ThinOut(day_start);
}

void CensysEngine::Tick(Timestamp from, Timestamp to) {
  TRACE_SPAN("engine", "tick");
  const metrics::ScopedTimer tick_timer(tick_metric_);
  ticks_metric_.Add();
  TickStats stats;
  const std::uint64_t candidates0 =
      metrics_.CounterValue("censys.scan.candidates");
  const std::uint64_t attempts0 =
      metrics_.CounterValue("censys.interrogate.attempts");
  const std::uint64_t handshakes0 =
      metrics_.CounterValue("censys.interrogate.handshakes");
  const std::uint64_t ingests0 =
      metrics_.CounterValue("censys.pipeline.ingest_scans");
  const std::uint64_t failures0 =
      metrics_.CounterValue("censys.pipeline.ingest_failures");
  const std::uint64_t events0 = metrics_.CounterValue("censys.storage.events");
  tick_pipeline_->ResetStats();

  // Stage 1: L4 discovery. Candidates are stamped with a sequence number in
  // discovery order; everything downstream commits in that order.
  {
    metrics::ScopedTimer timer(stage_discovery_metric_);
    TRACE_SPAN("engine", "stage.discovery");
    scheduler_->Tick(from, to, [this](const scan::Candidate& candidate) {
      scan::Candidate stamped = candidate;
      stamped.seq = next_seq_++;
      scan_queue_.push_back(stamped);
    });
    stats.discovery_us = timer.ElapsedMicros();
  }

  // Stages 2-5 for this tick's discoveries: queue -> parallel L7
  // interrogation -> validation -> in-sequence CQRS ingest.
  {
    metrics::ScopedTimer timer(stage_interrogate_metric_);
    TRACE_SPAN("engine", "stage.interrogate");
    DrainScanQueue();
    stats.interrogate_us = timer.ElapsedMicros();
  }

  // Refresh cadence + predictive discoveries ride the same staged path.
  {
    metrics::ScopedTimer timer(stage_refresh_metric_);
    TRACE_SPAN("engine", "stage.refresh");
    RunRefresh(to);
    if (config_.enable_predictive) RunPredictive(from, to);
    stats.refresh_us = timer.ElapsedMicros();
  }

  const std::int64_t day = to.minutes / 1440;
  if (day != last_daily_run_) {
    metrics::ScopedTimer timer(stage_daily_metric_);
    TRACE_SPAN("engine", "stage.daily");
    last_daily_run_ = day;
    const Timestamp day_start{day * 1440};
    RunReinjection(day_start);
    // CT polling into the certificate store and the daily revalidation
    // pass (§4.4, §4.6).
    for (const cert::CtEntry& entry : ct_log_.EntriesSince(ct_cert_cursor_)) {
      if (entry.logged_at > day_start) break;
      ct_cert_cursor_ = entry.index + 1;
      cert_store_.ObserveFromCt(entry, day_start);
    }
    cert_store_.RevalidateAll(day_start);
    TakeAnalyticsSnapshot(day_start);
    // Externally attached daily work (e.g. the web-property catalog's CT
    // poll + refresh, wired by web/attach.h) runs after the engine's own
    // steps, in registration order.
    for (const auto& job : daily_jobs_) job(day_start);
    stats.daily_us = timer.ElapsedMicros();
  }

  // Final stage: eviction sweep and async event delivery.
  {
    metrics::ScopedTimer timer(stage_commit_metric_);
    TRACE_SPAN("engine", "stage.commit");
    write_side_->AdvanceTo(to);
    stats.bus_events = bus_.Drain();
    stats.commit_us = timer.ElapsedMicros();
  }

  stats.candidates =
      metrics_.CounterValue("censys.scan.candidates") - candidates0;
  stats.interrogations =
      metrics_.CounterValue("censys.interrogate.attempts") - attempts0;
  stats.handshakes =
      metrics_.CounterValue("censys.interrogate.handshakes") - handshakes0;
  stats.ingests =
      metrics_.CounterValue("censys.pipeline.ingest_scans") - ingests0;
  stats.failures =
      metrics_.CounterValue("censys.pipeline.ingest_failures") - failures0;
  stats.journal_events =
      metrics_.CounterValue("censys.storage.events") - events0;
  stats.total_us = tick_timer.ElapsedMicros();

  const TickPipelineStats& pipe = tick_pipeline_->stats();
  stats.pipeline_jobs = pipe.jobs;
  stats.pipeline_waves = pipe.waves;
  stats.help_runs = pipe.help_runs;
  stats.commit_stalls = pipe.commit_stalls;
  stats.batch_flushes = pipe.batch_flushes;
  stats.pipeline_wall_us = pipe.wall_us;
  stats.worker_busy_us = pipe.worker_busy_us;
  stats.commit_busy_us = pipe.commit_busy_us;
  if (pipe.wall_us > 0) {
    const int workers = executor_->thread_count();
    stats.worker_occupancy =
        workers > 0 ? pipe.worker_busy_us / (pipe.wall_us * workers) : 0.0;
    stats.commit_occupancy = pipe.commit_busy_us / pipe.wall_us;
  }
  last_tick_ = stats;
}

EngineEntry CensysEngine::EntryFor(const pipeline::ServiceState& state) const {
  EngineEntry entry;
  entry.key = state.key;
  entry.first_seen = state.first_seen;
  // "Last scanned" is the most recent refresh attempt; services pending
  // eviction keep getting probed, so Censys data is never >48 h old (Fig 2).
  entry.last_scanned = state.last_refreshed;
  entry.record_count = 1;
  const core::ThreadRoleGuard role(journal_.command_role());
  if (const storage::FieldMap* fields =
          journal_.CurrentState(pipeline::HostEntityId(state.key.ip))) {
    if (const auto record = pipeline::RecordFrom(*fields, state.key)) {
      entry.label = record->protocol;
    }
  }
  return entry;
}

std::vector<EngineEntry> CensysEngine::QueryHost(IPv4Address ip) const {
  std::vector<EngineEntry> entries;
  const core::ThreadRoleGuard journal_role(journal_.command_role());
  const core::ThreadRoleGuard write_role(write_side_->command_role());
  const storage::FieldMap* fields =
      journal_.CurrentState(pipeline::HostEntityId(ip));
  if (fields == nullptr) return entries;
  for (ServiceKey key : pipeline::ServicesIn(*fields, ip)) {
    const pipeline::ServiceState* state = write_side_->GetState(key);
    if (state == nullptr) continue;
    entries.push_back(EntryFor(*state));
  }
  return entries;
}

void CensysEngine::ForEachEntry(
    const std::function<void(const EngineEntry&)>& fn) const {
  write_side_->ForEachTracked([&](const pipeline::ServiceState& state) {
    fn(EntryFor(state));
  });
}

std::uint64_t CensysEngine::SelfReportedCount() const {
  return write_side_->tracked_count();
}

std::optional<interrogate::ServiceRecord> CensysEngine::RequestScan(
    ServiceKey key, Timestamp now) {
  if (exclusions_.IsExcluded(key.ip, now)) return std::nullopt;
  const int pop = next_pop_;
  next_pop_ = (next_pop_ + 1) % config_.pop_count;
  std::optional<proto::Protocol> udp_hint;
  if (key.transport == Transport::kUdp) {
    const auto assigned = proto::AssignedToPort(key.port, Transport::kUdp);
    if (!assigned.empty()) udp_hint = assigned.front();
  }
  const core::ThreadRoleGuard role(write_side_->command_role());
  auto record = interrogator_->Interrogate(key, now, pop, udp_hint);
  if (record.has_value()) {
    write_side_->IngestScan(*record);
    predictive_->ObserveService(key);
  } else if (write_side_->GetState(key) != nullptr) {
    write_side_->IngestFailure(key, now);
  }
  bus_.Drain();
  return record;
}

std::size_t CensysEngine::RebuildSearchIndex() {
  const metrics::ScopedTimer timer(rebuild_metric_);
  std::size_t indexed = 0;
  journal_.ForEachEntity(
      [&](std::string_view entity_id, const storage::FieldMap& fields) {
        if (fields.empty()) return;
        index_.Index(entity_id, fields);
        ++indexed;
      });
  return indexed;
}

}  // namespace censys::engines
