// Concrete read-side enrichment (pipeline::ViewEnricher implementation).
//
// The pipeline layer owns the enrichment contract (pipeline/enrich.h) but
// sits below the layers that can compute it; this adapter lives in engines/
// — above simnet, fingerprint, and pipeline — and binds the contract to the
// simulated external data sources: the block plan (GeoIP / WHOIS / routing
// attribution), the static fingerprint corpus, and the CVE database.
#pragma once

#include "fingerprint/fingerprints.h"
#include "fingerprint/vulns.h"
#include "pipeline/enrich.h"
#include "pipeline/read_side.h"
#include "simnet/blocks.h"

namespace censys::engines {

class ContextEnricher : public pipeline::ViewEnricher {
 public:
  // `fingerprints` / `cves` may be null (enrichment degrades to geo only).
  // All three references/pointers must outlive the enricher; none are owned.
  ContextEnricher(const simnet::BlockPlan& geo,
                  const fingerprint::FingerprintEngine* fingerprints,
                  const fingerprint::CveDatabase* cves)
      : geo_(geo), fingerprints_(fingerprints), cves_(cves) {}

  pipeline::HostContext HostContextFor(IPv4Address ip) const override;
  void AnnotateService(pipeline::ServiceView& view) const override;

 private:
  const simnet::BlockPlan& geo_;
  const fingerprint::FingerprintEngine* fingerprints_;
  const fingerprint::CveDatabase* cves_;
};

}  // namespace censys::engines
