// Stages 3-5 of the tick pipeline as an overlapped, lock-free assembly
// line.
//
// The old shape was fork/join: ParallelFor over every job, a barrier, then
// a serial commit loop — the commit stage was idle while workers ran and
// the workers were idle while the command thread committed. This pipeline
// overlaps them:
//
//   command thread            workers (Executor::Broadcast)
//   --------------            -----------------------------
//   push job indices  ---->   pop from lock-free Ring
//   commit ready slots <----  interrogate (pure), stage result
//   in SEQUENCE order         into SlotBoard slot, publish
//   (group-committed)
//
// The command thread streams indices into a bounded core::Ring, drains
// SlotBoard slots strictly in sequence order (group-committing journal
// appends through WriteSide::BeginCommitBatch), and — when the next slot
// is not ready and the ring still has work — pops a job and runs it
// itself ("help" steal), so a full ring or a slow worker never idles the
// committer. Workers exit when the ring is closed and empty.
//
// Determinism is by construction, same argument as the fork/join version:
// interrogation is pure (InterrogateDetached), every side effect commits
// on the command thread in sequence order, and group-commit batch
// boundaries never change journal content. threads = 0 degenerates to the
// exact serial order.
//
// Concurrency: Ring and SlotBoard carry all cross-thread communication
// (acquire/release); `closed_` is release-set by the command thread after
// the last push. Workers read `jobs_` and the interrogator const-only.
// There are no mutexes or condition variables on this path (censyslint
// enforces the absence for src/engines/ and src/interrogate/).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/executor.h"
#include "core/ring.h"
#include "interrogate/interrogator.h"
#include "pipeline/write_side.h"
#include "predict/predictive.h"

namespace censys::engines {

// One unit of stage-3 work. PoP and UDP hint are assigned serially in
// candidate-sequence order before fan-out; the commit flags say how the
// outcome feeds stage 5.
struct InterrogationJob {
  ServiceKey key;
  Timestamp at;
  int pop = 0;
  std::optional<proto::Protocol> udp_hint;
  // false: skip interrogation and commit a failure (opted-out refresh).
  bool interrogate = true;
  // Refresh semantics: a miss is journaled as a failed refresh.
  bool ingest_failure_on_miss = false;
  // Discovery semantics: a hit trains the predictive engine.
  bool observe_predictive = true;
  // Precompute the entity projection (ServiceFields + content hash) in the
  // worker. Job builders clear this for hosts already pseudo-flagged at
  // build time — their ingests are suppressed before the projection is
  // ever read, so computing it would be pure waste. Set serially, so the
  // decision is deterministic.
  bool project = true;
};

// Cumulative across Run calls; the engine resets per tick.
struct TickPipelineStats {
  std::uint64_t jobs = 0;
  std::uint64_t waves = 0;         // Run invocations
  std::uint64_t batch_flushes = 0; // group-commit flushes issued
  std::uint64_t help_runs = 0;     // jobs the command thread stole
  std::uint64_t commit_stalls = 0; // yields waiting on an unpublished slot
  std::uint64_t worker_stalls = 0; // worker yields on an empty open ring
  double wall_us = 0;              // stage 3-5 wall clock
  double worker_busy_us = 0;       // summed across workers
  double commit_busy_us = 0;       // command-thread commit work
};

class TickPipeline {
 public:
  TickPipeline(Executor& executor, interrogate::Interrogator& interrogator,
               pipeline::WriteSide& write_side,
               predict::PredictiveEngine& predictive,
               std::uint32_t commit_batch);

  TickPipeline(const TickPipeline&) = delete;
  TickPipeline& operator=(const TickPipeline&) = delete;

  // Runs stages 3-5 for `jobs`, committing results in index order. `jobs`
  // must be in candidate-sequence order. Rethrows the first commit-side
  // exception (e.g. storage::WalIoError) after quiescing the workers.
  void Run(const std::vector<InterrogationJob>& jobs);

  const TickPipelineStats& stats() const { return stats_; }
  void ResetStats() {
    stats_ = TickPipelineStats{};
    worker_busy_us_.store(0, std::memory_order_relaxed);
    worker_stalls_.store(0, std::memory_order_relaxed);
  }

 private:
  // What a worker stages for the commit stage: the pure interrogation
  // result plus the projections the serial stage would otherwise compute.
  struct StagedResult {
    interrogate::InterrogationResult result;
    storage::FieldMap service_fields;  // ServiceFields(*result.record)
    std::uint64_t content_hash = 0;    // WriteSide::ContentHash
    bool projected = false;            // fields/hash above are filled in
  };

  // Stage 3 for one job, into its slot; publishes when done. Pure except
  // for the slot and relaxed stat counters — safe on any thread.
  void Execute(std::uint32_t index);
  // Stage 4+5 for one published slot (command thread only).
  void Commit(std::uint32_t index);
  // Serial fallback (threads = 0): execute + commit inline, in order.
  void RunSerial(const std::vector<InterrogationJob>& jobs);

  Executor& executor_;
  interrogate::Interrogator& interrogator_;
  pipeline::WriteSide& write_side_;
  predict::PredictiveEngine& predictive_;
  const std::uint32_t commit_batch_;

  core::Ring<std::uint32_t> ring_{1024};
  core::SlotBoard<StagedResult> board_;
  // No more pushes coming: set (release) by the command thread after the
  // last TryPush of a wave succeeds.
  std::atomic<bool> closed_{false};
  const std::vector<InterrogationJob>* jobs_ = nullptr;

  TickPipelineStats stats_;
  std::atomic<std::uint64_t> worker_busy_us_{0};
  std::atomic<std::uint64_t> worker_stalls_{0};
};

}  // namespace censys::engines
