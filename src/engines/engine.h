// Common evaluation-facing interface over scan engines (§6).
//
// The paper compares engines through their query interfaces: look up the
// current state of an IP, enumerate all results for a protocol, and read
// self-reported dataset sizes. Every engine in censysim — Censys itself and
// the behavioural models of Shodan / Fofa / ZoomEye / Netlas — implements
// this interface, and the benches never look at an engine's internals.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/types.h"
#include "proto/protocol.h"

namespace censys::engines {

// One dataset entry as the engine would return it.
struct EngineEntry {
  ServiceKey key;
  // The protocol label the engine reports (engine's own labeling quality).
  proto::Protocol label = proto::Protocol::kUnknown;
  Timestamp first_seen;
  Timestamp last_scanned;
  // Number of records the engine serves for this (ip, port): > 1 models the
  // duplicate entries observed for Fofa and Netlas (§6.2).
  std::uint32_t record_count = 1;
};

class ScanEngine {
 public:
  virtual ~ScanEngine() = default;

  virtual std::string_view name() const = 0;
  virtual std::uint32_t scanner_id() const = 0;

  // Advances the engine's scanning/processing activity over [from, to).
  virtual void Tick(Timestamp from, Timestamp to) = 0;

  // Query interface (what the evaluation uses).
  virtual std::vector<EngineEntry> QueryHost(IPv4Address ip) const = 0;
  virtual void ForEachEntry(
      const std::function<void(const EngineEntry&)>& fn) const = 0;
  // Sum of record_count — what the engine would self-report.
  virtual std::uint64_t SelfReportedCount() const = 0;
  // Whether the engine exposes a query for `protocol` (Table 8's "-" cells).
  virtual bool SupportsProtocolQuery(proto::Protocol protocol) const = 0;

  // All entries labeled `protocol` (each duplicated record_count times in
  // the reported number).
  std::vector<EngineEntry> QueryProtocol(proto::Protocol protocol) const;
};

}  // namespace censys::engines
