// The Censys engine: the paper's full architecture wired together as an
// explicit staged tick pipeline.
//
//   stage 1  L4 discovery (3 continuous scan classes, multi-PoP)   §4.1
//   stage 2  sequence-stamped candidate queue
//   stage 3  L7 interrogation (LZR detection) — fanned out across
//            a core::Executor thread pool                          §4.2
//   stage 4  validation + deterministic in-sequence commit
//   stage 5  CQRS write side -> Bigtable-style event journal       §5.2
//            -> async event bus -> read side + enrichment
//   plus: predictive scanning, daily refresh, 72-hour
//   eviction with 60-day re-injection, CT polling, web
//   properties, daily analytics snapshots.                         §4.1–5.3
//
// Stage 3 is the dominant cost and the only parallel stage: interrogation
// is pure (InterrogateDetached), PoPs are assigned serially before fan-out,
// and results are committed in candidate-sequence order — so a run with
// Config::threads = N produces a byte-identical event journal to the
// threads = 0 single-threaded fallback.
//
// Every layer reports into a metrics::Registry (names follow
// `censys.<layer>.<name>`); TickReport() summarizes the last tick.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "cert/ct.h"
#include "cert/store.h"
#include "core/executor.h"
#include "core/metrics.h"
#include "engines/engine.h"
#include "engines/enrichment.h"
#include "engines/tick_pipeline.h"
#include "fingerprint/fingerprints.h"
#include "fingerprint/vulns.h"
#include "interrogate/interrogator.h"
#include "pipeline/read_side.h"
#include "pipeline/write_side.h"
#include "predict/predictive.h"
#include "scan/discovery.h"
#include "scan/exclusion.h"
#include "scan/scheduler.h"
#include "search/analytics.h"
#include "search/index.h"
#include "search/pivots.h"
#include "simnet/internet.h"
#include "storage/journal.h"

namespace censys::engines {

// Per-tick pipeline summary: counter deltas across the tick plus wall-clock
// stage timings. Aggregates live in the metrics registry.
struct TickStats {
  std::uint64_t candidates = 0;      // stage-1 L4 responders queued
  std::uint64_t interrogations = 0;  // stage-3 detached interrogations
  std::uint64_t handshakes = 0;      // completed L7 sessions
  std::uint64_t ingests = 0;         // stage-5 records ingested
  std::uint64_t failures = 0;        // failed refreshes ingested
  std::uint64_t journal_events = 0;  // journal rows written
  std::uint64_t bus_events = 0;      // async events drained

  double discovery_us = 0;    // stage 1
  double interrogate_us = 0;  // stages 2-5 for discovered candidates
  double refresh_us = 0;      // refresh + predictive re-interrogation
  double daily_us = 0;        // daily jobs (reinjection, CT, analytics)
  double commit_us = 0;       // eviction sweep + event-bus drain
  double total_us = 0;

  // Overlapped interrogation pipeline (stages 3-5) detail, summed over
  // every wave of the tick.
  std::uint64_t pipeline_jobs = 0;     // jobs through the ring
  std::uint64_t pipeline_waves = 0;    // job batches run
  std::uint64_t help_runs = 0;         // jobs the commit thread stole
  std::uint64_t commit_stalls = 0;     // committer yields on a pending slot
  std::uint64_t batch_flushes = 0;     // group-commit flushes
  double pipeline_wall_us = 0;         // wall clock inside the pipeline
  double worker_busy_us = 0;           // interrogation time, all threads
  double commit_busy_us = 0;           // serial commit time
  // Busy / wall fractions under overlap: how much of the pipeline's wall
  // clock each stage actually worked. worker_occupancy is normalized by
  // the worker count (1.0 = every worker busy the whole time; 0 when
  // single-threaded), commit_occupancy by the one command thread.
  double worker_occupancy = 0;
  double commit_occupancy = 0;
};

class CensysEngine : public ScanEngine {
 public:
  struct Config {
    std::uint64_t seed = 1;
    int pop_count = 3;  // Chicago, Frankfurt, Hong Kong (§4.5)

    // Interrogation worker threads. 0 = single-threaded fallback: the
    // pipeline runs the exact same staged code path inline, and the event
    // journal is byte-identical to any threads > 0 run.
    int threads = 0;

    // Commits per group-commit flush (stage 4-5): the write side stages
    // this many journal appends before draining them as one WAL batch
    // write. Batch size changes WAL write granularity only, never journal
    // content — tests assert byte-identical journals across sizes.
    std::uint32_t commit_batch = 64;

    // Scan classes (§4.1).
    std::size_t priority_top_ports = 100;   // most responsive ports, daily
    std::size_t cloud_ports = 300;          // cloud-infra ports, daily
    std::size_t background_ports_per_day = 100;  // rotating 65K sweep

    // Refresh & eviction (§4.6).
    Duration refresh_interval = Duration::Days(1);

    // Predictive engine (§4.1).
    bool enable_predictive = true;
    double predictive_budget_per_day_frac = 0.05;  // of universe size

    // Ablation switches (DESIGN.md §4).
    bool enable_background = true;
    bool enable_cloud_class = true;
    bool two_phase_validation = true;  // false: publish L4 hits unvalidated

    // Warm start: seed the dataset with the steady-state it would have
    // reached after years of operation (DESIGN.md §5).
    bool warm_start = true;

    pipeline::WriteSide::Options write_options{};

    // Journal lock striping (shard count changes contention, never
    // content — journals stay byte-identical across shard counts).
    storage::EventJournal::Options journal_options{};

    // Per-host view cache for read-side lookups (watermark-invalidated).
    pipeline::ViewCache::Options view_cache{};
  };

  CensysEngine(simnet::Internet& net, cert::CtLog& ct_log, Config config);

  // Seeds the steady-state dataset at `t0` and trains the predictive
  // models from it. Call once before the first Tick.
  void Bootstrap(Timestamp t0);

  // --- ScanEngine -------------------------------------------------------------
  std::string_view name() const override { return "Censys"; }
  std::uint32_t scanner_id() const override { return profile_.scanner_id; }
  void Tick(Timestamp from, Timestamp to) override;
  std::vector<EngineEntry> QueryHost(IPv4Address ip) const override;
  void ForEachEntry(
      const std::function<void(const EngineEntry&)>& fn) const override;
  std::uint64_t SelfReportedCount() const override;
  bool SupportsProtocolQuery(proto::Protocol) const override { return true; }

  // --- observability ----------------------------------------------------------
  // Summary of the most recent Tick (counter deltas + stage timings).
  const TickStats& TickReport() const { return last_tick_; }
  // Cumulative instruments for every layer; Render() gives the text dump
  // used by benches and examples.
  metrics::Registry& metrics() { return metrics_; }
  const metrics::Registry& metrics() const { return metrics_; }

  // --- component access (examples, benches) -----------------------------------
  // The query frontend (serving::ServingFrontend) and the web-property
  // catalog (web::WebPropertyCatalog) live in layers *above* engines; wire
  // them from outside against read_side()/search_index()/analytics() and
  // net()/interrogator()/ct_log() (web/attach.h does the latter).
  const pipeline::ReadSide& read_side() const { return *read_side_; }
  pipeline::WriteSide& write_side() { return *write_side_; }
  const pipeline::WriteSide& write_side() const { return *write_side_; }
  storage::EventJournal& journal() { return journal_; }
  const storage::EventJournal& journal() const { return journal_; }
  const search::AnalyticsStore& analytics() const { return analytics_; }
  const predict::PredictorStats& predictor_stats() const {
    return predictive_->stats();
  }
  scan::ScanScheduler& scheduler() { return *scheduler_; }
  // Opt-out list (§8): excluded prefixes are never probed and their
  // tracked services are dropped at the next refresh cycle.
  scan::ExclusionList& exclusions() { return exclusions_; }
  const simnet::ScannerProfile& profile() const { return profile_; }
  std::uint64_t probes_sent() const { return discovery_->probes_sent(); }
  const Config& config() const { return config_; }
  Executor& executor() { return *executor_; }

  // Wiring points for the layers above (serving, web): the simulated
  // network, the shared L7 scanner, and the CT log the engine polls.
  simnet::Internet& net() { return net_; }
  interrogate::Interrogator& interrogator() { return *interrogator_; }
  const cert::CtLog& ct_log() const { return ct_log_; }

  // Registers a job run once per simulated day, at the same tick boundary
  // as the engine's own daily work (reinjection, CT polling, analytics).
  // Jobs run in registration order after the engine's internal daily
  // steps; the argument is the day-start timestamp. Callers must ensure
  // anything the job captures outlives the engine's ticking.
  void AddDailyJob(std::function<void(Timestamp)> job) {
    daily_jobs_.push_back(std::move(job));
  }

  // Certificate entities (§4.4) and secondary pivot tables (§5.2).
  const cert::CertificateStore& cert_store() const { return cert_store_; }
  cert::CrlStore& crl_store() { return crls_; }
  const search::PivotIndex& pivots() const { return pivots_; }

  // Real-time scan request (Figure 1 "User Requests"): interrogates the
  // target immediately, ingests the result, and returns the fresh record
  // (nullopt if nothing answered).
  std::optional<interrogate::ServiceRecord> RequestScan(ServiceKey key,
                                                        Timestamp now);

  // Rebuilds the full-text index from current entity state; returns the
  // number of indexed documents.
  std::size_t RebuildSearchIndex();
  const search::SearchIndex& search_index() const { return index_; }

 private:
  EngineEntry EntryFor(const pipeline::ServiceState& state) const;
  // Stages 2-5 for everything queued: builds per-wave job lists (one job
  // per key per wave so freshness checks see earlier commits), fans
  // interrogation out, commits in sequence order.
  void DrainScanQueue();
  // Stage 3+4 core: parallel detached interrogation of `jobs`, then
  // serial in-order commit into the write side.
  void RunInterrogationBatch(const std::vector<InterrogationJob>& jobs);
  // Naive-pipeline ablation path: journal an unvalidated port-labeled
  // record for an L4 responder.
  void ProcessThinRecord(ServiceKey key, Timestamp at);
  void RunRefresh(Timestamp to);
  void RunPredictive(Timestamp from, Timestamp to);
  void RunReinjection(Timestamp day_start);
  void TakeAnalyticsSnapshot(Timestamp day_start);
  double BootstrapKnownProbability(const simnet::SimService& svc,
                                   Timestamp t0) const;

  simnet::Internet& net_;
  cert::CtLog& ct_log_;
  Config config_;
  simnet::ScannerProfile profile_;

  // Declared before every component that binds instruments so handles
  // stay valid for the components' full lifetime.
  metrics::Registry metrics_;
  std::unique_ptr<Executor> executor_;

  scan::ExclusionList exclusions_;
  std::unique_ptr<scan::DiscoveryEngine> discovery_;
  std::unique_ptr<scan::ScanScheduler> scheduler_;
  std::unique_ptr<interrogate::Interrogator> interrogator_;
  std::unique_ptr<predict::PredictiveEngine> predictive_;

  storage::EventJournal journal_;
  pipeline::EventBus bus_;
  cert::RootStore roots_;
  cert::CrlStore crls_;
  cert::CertificateStore cert_store_{roots_, crls_};
  search::PivotIndex pivots_;
  std::uint64_t ct_cert_cursor_ = 0;
  std::unique_ptr<pipeline::WriteSide> write_side_;
  std::unique_ptr<TickPipeline> tick_pipeline_;
  fingerprint::FingerprintEngine fingerprints_;
  fingerprint::CveDatabase cves_;
  // Binds geo/fingerprint/CVE context into the read side (declared after
  // its sources, before the ReadSide holding the pointer).
  std::unique_ptr<ContextEnricher> enricher_;
  std::unique_ptr<pipeline::ReadSide> read_side_;
  search::SearchIndex index_;
  search::AnalyticsStore analytics_;
  std::vector<std::function<void(Timestamp)>> daily_jobs_;

  std::deque<scan::Candidate> scan_queue_;
  std::uint64_t next_seq_ = 0;  // discovery-order candidate stamp
  std::unordered_set<std::uint64_t> priority_port_set_;
  Rng rng_;
  std::int64_t last_daily_run_ = -1;
  int next_pop_ = 0;

  TickStats last_tick_;
  metrics::CounterHandle ticks_metric_;
  metrics::HistogramHandle stage_discovery_metric_;
  metrics::HistogramHandle stage_interrogate_metric_;
  metrics::HistogramHandle stage_parallel_metric_;
  metrics::HistogramHandle stage_refresh_metric_;
  metrics::HistogramHandle stage_daily_metric_;
  metrics::HistogramHandle stage_commit_metric_;
  metrics::HistogramHandle tick_metric_;
  metrics::HistogramHandle rebuild_metric_;
};

}  // namespace censys::engines
