// The Censys engine: the paper's full architecture wired together.
//
//   L4 discovery (3 continuous scan classes, multi-PoP)      §4.1
//     -> scan queue -> L7 interrogation (LZR detection)      §4.2
//     -> CQRS write side -> Bigtable-style event journal     §5.2
//     -> async event bus -> read side + enrichment           §5.2
//   plus: predictive scanning, daily refresh, 72-hour
//   eviction with 60-day re-injection, CT polling, web
//   properties, daily analytics snapshots.                   §4.1–5.3
#pragma once

#include <deque>
#include <memory>
#include <unordered_set>

#include "cert/ct.h"
#include "cert/store.h"
#include "engines/engine.h"
#include "fingerprint/fingerprints.h"
#include "fingerprint/vulns.h"
#include "interrogate/interrogator.h"
#include "pipeline/read_side.h"
#include "pipeline/write_side.h"
#include "predict/predictive.h"
#include "scan/discovery.h"
#include "scan/exclusion.h"
#include "scan/scheduler.h"
#include "search/analytics.h"
#include "search/index.h"
#include "search/pivots.h"
#include "simnet/internet.h"
#include "storage/journal.h"
#include "web/webprops.h"

namespace censys::engines {

class CensysEngine : public ScanEngine {
 public:
  struct Config {
    std::uint64_t seed = 1;
    int pop_count = 3;  // Chicago, Frankfurt, Hong Kong (§4.5)

    // Scan classes (§4.1).
    std::size_t priority_top_ports = 100;   // most responsive ports, daily
    std::size_t cloud_ports = 300;          // cloud-infra ports, daily
    std::size_t background_ports_per_day = 100;  // rotating 65K sweep

    // Refresh & eviction (§4.6).
    Duration refresh_interval = Duration::Days(1);

    // Predictive engine (§4.1).
    bool enable_predictive = true;
    double predictive_budget_per_day_frac = 0.05;  // of universe size

    // Ablation switches (DESIGN.md §4).
    bool enable_background = true;
    bool enable_cloud_class = true;
    bool two_phase_validation = true;  // false: publish L4 hits unvalidated

    // Warm start: seed the dataset with the steady-state it would have
    // reached after years of operation (DESIGN.md §5).
    bool warm_start = true;

    pipeline::WriteSide::Options write_options{};
  };

  CensysEngine(simnet::Internet& net, cert::CtLog& ct_log, Config config);

  // Seeds the steady-state dataset at `t0` and trains the predictive
  // models from it. Call once before the first Tick.
  void Bootstrap(Timestamp t0);

  // --- ScanEngine -------------------------------------------------------------
  std::string_view name() const override { return "Censys"; }
  std::uint32_t scanner_id() const override { return profile_.scanner_id; }
  void Tick(Timestamp from, Timestamp to) override;
  std::vector<EngineEntry> QueryHost(IPv4Address ip) const override;
  void ForEachEntry(
      const std::function<void(const EngineEntry&)>& fn) const override;
  std::uint64_t SelfReportedCount() const override;
  bool SupportsProtocolQuery(proto::Protocol) const override { return true; }

  // --- component access (examples, benches) -----------------------------------
  const pipeline::ReadSide& read_side() const { return *read_side_; }
  pipeline::WriteSide& write_side() { return *write_side_; }
  const pipeline::WriteSide& write_side() const { return *write_side_; }
  storage::EventJournal& journal() { return journal_; }
  const storage::EventJournal& journal() const { return journal_; }
  web::WebPropertyCatalog& web_catalog() { return *web_catalog_; }
  const search::AnalyticsStore& analytics() const { return analytics_; }
  const predict::PredictorStats& predictor_stats() const {
    return predictive_->stats();
  }
  scan::ScanScheduler& scheduler() { return *scheduler_; }
  // Opt-out list (§8): excluded prefixes are never probed and their
  // tracked services are dropped at the next refresh cycle.
  scan::ExclusionList& exclusions() { return exclusions_; }
  const simnet::ScannerProfile& profile() const { return profile_; }
  std::uint64_t probes_sent() const { return discovery_->probes_sent(); }
  const Config& config() const { return config_; }

  // Certificate entities (§4.4) and secondary pivot tables (§5.2).
  const cert::CertificateStore& cert_store() const { return cert_store_; }
  cert::CrlStore& crl_store() { return crls_; }
  const search::PivotIndex& pivots() const { return pivots_; }

  // Real-time scan request (Figure 1 "User Requests"): interrogates the
  // target immediately, ingests the result, and returns the fresh record
  // (nullopt if nothing answered).
  std::optional<interrogate::ServiceRecord> RequestScan(ServiceKey key,
                                                        Timestamp now);

  // Rebuilds the full-text index from current entity state; returns the
  // number of indexed documents.
  std::size_t RebuildSearchIndex();
  const search::SearchIndex& search_index() const { return index_; }

 private:
  EngineEntry EntryFor(const pipeline::ServiceState& state) const;
  void ProcessCandidate(const scan::Candidate& candidate);
  // Naive-pipeline ablation path: journal an unvalidated port-labeled
  // record for an L4 responder.
  void ProcessThinRecord(ServiceKey key, Timestamp at);
  void RunRefresh(Timestamp to);
  void RunPredictive(Timestamp from, Timestamp to);
  void RunReinjection(Timestamp day_start);
  void TakeAnalyticsSnapshot(Timestamp day_start);
  double BootstrapKnownProbability(const simnet::SimService& svc,
                                   Timestamp t0) const;

  simnet::Internet& net_;
  cert::CtLog& ct_log_;
  Config config_;
  simnet::ScannerProfile profile_;

  scan::ExclusionList exclusions_;
  std::unique_ptr<scan::DiscoveryEngine> discovery_;
  std::unique_ptr<scan::ScanScheduler> scheduler_;
  std::unique_ptr<interrogate::Interrogator> interrogator_;
  std::unique_ptr<predict::PredictiveEngine> predictive_;

  storage::EventJournal journal_;
  pipeline::EventBus bus_;
  cert::RootStore roots_;
  cert::CrlStore crls_;
  cert::CertificateStore cert_store_{roots_, crls_};
  search::PivotIndex pivots_;
  std::uint64_t ct_cert_cursor_ = 0;
  std::unique_ptr<pipeline::WriteSide> write_side_;
  fingerprint::FingerprintEngine fingerprints_;
  fingerprint::CveDatabase cves_;
  std::unique_ptr<pipeline::ReadSide> read_side_;
  std::unique_ptr<web::WebPropertyCatalog> web_catalog_;
  search::SearchIndex index_;
  search::AnalyticsStore analytics_;

  std::deque<scan::Candidate> scan_queue_;
  std::unordered_set<std::uint64_t> priority_port_set_;
  Rng rng_;
  std::int64_t last_daily_run_ = -1;
  int next_pop_ = 0;
};

}  // namespace censys::engines
