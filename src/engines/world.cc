#include "engines/world.h"

#include "proto/tls.h"

namespace censys::engines {
namespace {

// Appends the certificate a name-addressed service presents to the CT log.
void LogCertificate(cert::CtLog& log, const simnet::SimService& svc,
                    Timestamp at) {
  if (!svc.requires_sni) return;
  const auto tls =
      proto::DeriveTls(svc.protocol, svc.seed, /*force=*/true);
  if (!tls.has_value()) return;
  log.Append(cert::SynthesizeCertificate(tls->cert_seed, svc.sni_name,
                                         Timestamp{0}),
             at);
}

}  // namespace

World::World(WorldConfig config)
    : config_(std::move(config)), internet_(config_.universe) {
  censys_ = std::make_unique<CensysEngine>(internet_, ct_log_,
                                           config_.censys);
  if (config_.with_alternatives) {
    const std::uint64_t seed = config_.universe.seed;
    alternatives_.push_back(
        std::make_unique<AltEngine>(internet_, ShodanPolicy(), seed));
    alternatives_.push_back(
        std::make_unique<AltEngine>(internet_, FofaPolicy(), seed));
    alternatives_.push_back(
        std::make_unique<AltEngine>(internet_, ZoomEyePolicy(), seed));
    alternatives_.push_back(
        std::make_unique<AltEngine>(internet_, NetlasPolicy(), seed));
  }
}

void World::Bootstrap() {
  const Timestamp t0 = clock_.now();

  // Pre-existing name-addressed services are already in CT; new births get
  // logged as their certificates are issued.
  internet_.ForEachActiveService(t0, [&](const simnet::SimService& svc) {
    LogCertificate(ct_log_, svc, t0);
  });
  internet_.SetBirthObserver([this](const simnet::SimService& svc) {
    LogCertificate(ct_log_, svc, internet_.now());
  });

  censys_->Bootstrap(t0);
  for (auto& alt : alternatives_) alt->Bootstrap(t0);
}

void World::RunUntil(Timestamp t) {
  while (clock_.now() < t) {
    const Timestamp from = clock_.now();
    Timestamp to = from + config_.tick;
    if (to > t) to = t;
    internet_.AdvanceTo(to);
    censys_->Tick(from, to);
    for (auto& alt : alternatives_) alt->Tick(from, to);
    clock_.AdvanceTo(to);
  }
}

std::vector<ScanEngine*> World::engines() {
  std::vector<ScanEngine*> out;
  out.push_back(censys_.get());
  for (auto& alt : alternatives_) out.push_back(alt.get());
  return out;
}

AltEngine* World::alternative(std::string_view name) {
  for (auto& alt : alternatives_) {
    if (alt->name() == name) return alt.get();
  }
  return nullptr;
}

}  // namespace censys::engines
