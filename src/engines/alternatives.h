// Behavioural models of alternative scan engines (§6: Shodan, Fofa,
// ZoomEye, Netlas).
//
// The evaluation compares *data-quality policies*: how broadly an engine
// scans, how often it refreshes, how long it retains entries it can no
// longer confirm, whether it deduplicates, and how it labels protocols.
// Each competitor is the same generic engine with a different policy,
// calibrated to the paper's published observations (Netlas' one-month
// sweep; ZoomEye's multi-year retention; Fofa/Netlas duplicate records;
// Shodan's keyword ICS labeling). Nothing in Tables 1-5 is hard-coded:
// the benches measure these engines against the same simulated Internet
// Censys scans.
#pragma once

#include <deque>
#include <unordered_set>
#include <memory>
#include <unordered_map>

#include "engines/engine.h"
#include "interrogate/interrogator.h"
#include "scan/discovery.h"
#include "scan/scheduler.h"
#include "simnet/internet.h"

namespace censys::engines {

enum class LabelingMode : std::uint8_t {
  // Full handshake validation (Censys-style; no alternative engine gets
  // the full ICS battery).
  kHandshake,
  // Banner + IANA-port handshakes, plus keyword rules for special
  // categories ("Shodan identifies CODESYS devices by searching for
  // services on port 2455 that return the keywords 'operating' and
  // 'system'", §6.3).
  kKeyword,
};

struct AltEnginePolicy {
  std::string name;
  std::uint32_t scanner_id = 0;
  double probes_per_ip_day = 10.0;
  double source_pool_size = 8.0;
  int pop_count = 1;

  // Breadth: the engine scans the `port_breadth` most popular ports...
  std::size_t port_breadth = 1000;
  // ...sweeping the full set once per `sweep_period`.
  Duration sweep_period = Duration::Days(7);
  // Entries unconfirmed for this long are dropped (ZoomEye: ~never).
  Duration retention = Duration::Days(60);
  // Expected extra records per entry (duplicate inflation, §6.2).
  double duplicate_rate = 0.0;

  LabelingMode labeling = LabelingMode::kKeyword;

  // Persistent visibility for services on the IANA ports of ICS protocols
  // the engine explicitly supports (engines ship dedicated modules for
  // these, so coverage there is far better than generic tail ports).
  double p_ics_ports = 0.6;

  // Effectiveness calibration: the engine's persistent per-service
  // visibility by port tier. A given service is either inside or outside
  // the engine's reach (vantage gaps, blocking, partial IP coverage, rate
  // limits) — a persistent property, so sweeping again does not recover
  // it. Applied identically during warm start and forward scanning.
  double p_top10 = 0.8;
  double p_top100 = 0.4;
  double p_rest = 0.1;
  // Ports the engine's sweep never covers despite their popularity
  // (Table 5: Shodan found nothing on 60000/HTTP or 500/HTTP).
  std::vector<Port> excluded_ports;
  // Per-host entry cap (real engines bound what they store per IP; this
  // also keeps pseudo-service middleboxes from dominating the dataset).
  std::uint32_t max_entries_per_host = 40;
  double stale_fraction = 0.3;
  // Phantom entry ages are exponential with this mean (drives Figure 2).
  double stale_age_mean_days = 30.0;

  // ICS protocol queries the engine supports (Table 8 "-" cells absent),
  // with a per-protocol keyword false-positive mass expressed relative to
  // the engine's total entry count per million entries.
  struct IcsQueryRule {
    proto::Protocol protocol;
    double keyword_fp_per_million;  // mislabeled entries per 1M dataset rows
    double recall = 0.9;            // share of true services its query catches
  };
  std::vector<IcsQueryRule> ics_rules;
  // General (non-ICS) protocols the engine exposes queries for; empty =
  // all. (Used for the Table 9-driven protocol coverage bench.)
  bool supports_all_general = true;
};

// Built-in policies calibrated to the paper.
AltEnginePolicy ShodanPolicy();
AltEnginePolicy FofaPolicy();
AltEnginePolicy ZoomEyePolicy();
AltEnginePolicy NetlasPolicy();

class AltEngine : public ScanEngine {
 public:
  AltEngine(simnet::Internet& net, AltEnginePolicy policy,
            std::uint64_t seed);

  // Seeds the warm-start dataset (including stale phantom entries).
  void Bootstrap(Timestamp t0);

  std::string_view name() const override { return policy_.name; }
  std::uint32_t scanner_id() const override { return policy_.scanner_id; }
  void Tick(Timestamp from, Timestamp to) override;
  std::vector<EngineEntry> QueryHost(IPv4Address ip) const override;
  void ForEachEntry(
      const std::function<void(const EngineEntry&)>& fn) const override;
  std::uint64_t SelfReportedCount() const override;
  bool SupportsProtocolQuery(proto::Protocol protocol) const override;

  // Engine-specific protocol query including keyword false positives
  // (hides ScanEngine::QueryProtocol intentionally).
  std::vector<EngineEntry> QueryProtocol(proto::Protocol protocol) const;

  const AltEnginePolicy& policy() const { return policy_; }

 private:
  struct Entry {
    EngineEntry entry;
    // True protocol if the labeler validated a handshake; what the engine
    // *believes* lives in entry.label.
    bool phantom = false;  // seeded-stale entry with no live service
  };

  void Observe(const scan::Candidate& candidate);
  bool PersistentlyVisible(ServiceKey key) const;
  proto::Protocol LabelService(const simnet::L7Session& session,
                               std::optional<proto::Protocol> udp_hint) const;
  bool KeywordMatches(const EngineEntry& entry,
                      const AltEnginePolicy::IcsQueryRule& rule) const;
  std::uint32_t DuplicateCount(std::uint64_t packed) const;
  // Dataset entries in ascending packed-key order; everything that exposes
  // enumeration order to callers walks this instead of the hash map.
  std::vector<const Entry*> SortedEntries() const;

  simnet::Internet& net_;
  AltEnginePolicy policy_;
  simnet::ScannerProfile profile_;
  std::unique_ptr<scan::DiscoveryEngine> discovery_;
  std::unique_ptr<scan::ScanScheduler> scheduler_;
  std::unique_ptr<interrogate::Interrogator> interrogator_;
  Rng rng_;

  std::unordered_set<Port> ics_ports_;  // IANA ports of supported ICS protos
  std::unordered_map<std::uint64_t, Entry> dataset_;
  std::unordered_map<std::uint32_t, std::uint32_t> host_entry_counts_;
  // Host -> packed keys, the index behind bulk-IP queries.
  std::unordered_map<std::uint32_t, std::vector<std::uint64_t>> by_host_;
  std::int64_t last_cleanup_day_ = -1;
};

}  // namespace censys::engines
