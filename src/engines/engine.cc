#include "engines/engine.h"

namespace censys::engines {

std::vector<EngineEntry> ScanEngine::QueryProtocol(
    proto::Protocol protocol) const {
  std::vector<EngineEntry> out;
  if (!SupportsProtocolQuery(protocol)) return out;
  ForEachEntry([&](const EngineEntry& entry) {
    if (entry.label == protocol) out.push_back(entry);
  });
  return out;
}

}  // namespace censys::engines
