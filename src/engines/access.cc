#include "engines/access.h"

#include "core/strings.h"

namespace censys::engines {

std::string_view ToString(AccessTier tier) {
  switch (tier) {
    case AccessTier::kPublic: return "public";
    case AccessTier::kResearch: return "research";
    case AccessTier::kVerified: return "verified";
    case AccessTier::kCommercial: return "commercial";
    case AccessTier::kInternal: return "internal";
  }
  return "?";
}

AccessPolicy AccessPolicy::ForTier(AccessTier tier) {
  AccessPolicy policy;
  policy.tier = tier;
  switch (tier) {
    case AccessTier::kPublic:
      policy.data_delay = Duration::Days(7);
      policy.daily_query_quota = 50;
      break;
    case AccessTier::kResearch:
      policy.see_device_identity = true;
      policy.data_delay = Duration::Days(2);
      policy.daily_query_quota = 1000;
      break;
    case AccessTier::kVerified:
      policy.see_device_identity = true;
      policy.see_vulnerabilities = true;
      policy.data_delay = Duration::Days(1);
      policy.daily_query_quota = 10000;
      break;
    case AccessTier::kCommercial:
      policy.see_device_identity = true;
      policy.see_vulnerabilities = true;
      policy.see_ics = true;
      break;
    case AccessTier::kInternal:
      policy.see_device_identity = true;
      policy.see_vulnerabilities = true;
      policy.see_ics = true;
      break;
  }
  return policy;
}

pipeline::HostView AccessControl::Filter(const pipeline::HostView& view,
                                         AccessTier tier) const {
  const AccessPolicy policy = AccessPolicy::ForTier(tier);
  pipeline::HostView filtered;
  filtered.ip = view.ip;
  filtered.country = view.country;
  filtered.asn = view.asn;
  filtered.as_org = view.as_org;
  filtered.network_type = view.network_type;

  for (const pipeline::ServiceView& service : view.services) {
    if (!policy.see_ics && proto::GetInfo(service.record.protocol).is_ics) {
      continue;  // control-system exposure is the most abusable data (§8)
    }
    pipeline::ServiceView copy = service;
    if (!policy.see_vulnerabilities) {
      copy.cves.clear();
      copy.max_cvss = 0.0;
      copy.kev = false;
    }
    if (!policy.see_device_identity) {
      copy.record.device = {};
      copy.labels.reset();
    }
    filtered.services.push_back(std::move(copy));
  }
  return filtered;
}

bool AccessControl::AllowQuery(std::string_view query,
                               AccessTier tier) const {
  const AccessPolicy policy = AccessPolicy::ForTier(tier);
  if (!policy.see_ics) {
    for (const proto::ProtocolInfo& info : proto::AllProtocols()) {
      if (!info.is_ics) continue;
      if (ContainsIgnoreCase(query, info.name)) return false;
    }
  }
  if (!policy.see_vulnerabilities && ContainsIgnoreCase(query, "cve-")) {
    return false;
  }
  return true;
}

bool AccessControl::ChargeQuery(std::string_view user, AccessTier tier,
                                std::int64_t day) {
  const AccessPolicy policy = AccessPolicy::ForTier(tier);
  if (policy.daily_query_quota == 0) return true;
  std::uint32_t& used = used_[QuotaKey{std::string(user), day}];
  if (used >= policy.daily_query_quota) return false;
  ++used;
  return true;
}

}  // namespace censys::engines
