#include "engines/enrichment.h"

namespace censys::engines {

pipeline::HostContext ContextEnricher::HostContextFor(IPv4Address ip) const {
  pipeline::HostContext context;
  // External-context enrichment (GeoIP, WHOIS, origin ASN). In the
  // simulation the block plan is that external data source.
  if (ip.value() < geo_.universe_size()) {
    const simnet::NetworkBlock& block = geo_.BlockOf(ip);
    context.country = std::string(simnet::ToString(block.country));
    context.asn = block.asn;
    context.as_org = block.org;
    context.network_type = std::string(simnet::ToString(block.type));
  }
  return context;
}

void ContextEnricher::AnnotateService(pipeline::ServiceView& view) const {
  if (fingerprints_ != nullptr) {
    view.labels = fingerprints_->Evaluate(view.record.ToFields());
  }
  if (cves_ != nullptr && !view.record.software.product.empty()) {
    for (const fingerprint::VulnEntry* vuln :
         cves_->Lookup(view.record.software)) {
      view.cves.push_back(vuln->cve);
      if (vuln->cvss > view.max_cvss) view.max_cvss = vuln->cvss;
      view.kev = view.kev || vuln->kev;
    }
  }
}

}  // namespace censys::engines
