#include "engines/tick_pipeline.h"

#include <string>
#include <thread>

#include "core/metrics.h"
#include "core/trace.h"
#include "pipeline/entity.h"

namespace censys::engines {

TickPipeline::TickPipeline(Executor& executor,
                           interrogate::Interrogator& interrogator,
                           pipeline::WriteSide& write_side,
                           predict::PredictiveEngine& predictive,
                           std::uint32_t commit_batch)
    : executor_(executor),
      interrogator_(interrogator),
      write_side_(write_side),
      predictive_(predictive),
      commit_batch_(commit_batch == 0 ? 1 : commit_batch) {}

void TickPipeline::Execute(std::uint32_t index) {
  const metrics::ScopedTimer timer({});
  const InterrogationJob& job = (*jobs_)[index];
  StagedResult& slot = board_.Slot(index);
  // Slots are reused across waves: clear before filling.
  slot = StagedResult{};
  if (job.interrogate) {
    try {
      slot.result = interrogator_.InterrogateDetached(job.key, job.at, job.pop,
                                                      job.udp_hint);
      if (job.project && slot.result.record.has_value()) {
        // Project the record into entity fields and hash its content here,
        // off the command thread — the serial stage then only diffs.
        slot.service_fields = pipeline::ServiceFields(*slot.result.record);
        slot.content_hash =
            pipeline::WriteSide::ContentHash(*slot.result.record);
        slot.projected = true;
      }
    } catch (...) {
      // Publish the (empty) slot even on failure so the commit stage never
      // waits forever on it; the exception surfaces at JoinBroadcast.
      slot = StagedResult{};
      board_.Publish(index);
      throw;
    }
  }
  board_.Publish(index);
  worker_busy_us_.fetch_add(static_cast<std::uint64_t>(timer.ElapsedMicros()),
                            std::memory_order_relaxed);
}

void TickPipeline::Commit(std::uint32_t index) {
  const InterrogationJob& job = (*jobs_)[index];
  const StagedResult& slot = board_.Slot(index);
  interrogator_.CommitResult(slot.result);
  if (slot.result.record.has_value()) {
    if (slot.projected) {
      write_side_.IngestScan(*slot.result.record, slot.service_fields,
                             slot.content_hash);
    } else {
      write_side_.IngestScan(*slot.result.record);
    }
    if (job.observe_predictive) predictive_.ObserveService(job.key);
  } else if (job.ingest_failure_on_miss) {
    write_side_.IngestFailure(job.key, job.at);
  }
}

void TickPipeline::RunSerial(const std::vector<InterrogationJob>& jobs) {
  write_side_.BeginCommitBatch();
  std::uint32_t since_flush = 0;
  for (std::uint32_t i = 0; i < jobs.size(); ++i) {
    Execute(i);
    const metrics::ScopedTimer commit_timer({});
    Commit(i);
    if (++since_flush >= commit_batch_) {
      write_side_.FlushCommitBatch();
      ++stats_.batch_flushes;
      since_flush = 0;
    }
    stats_.commit_busy_us += commit_timer.ElapsedMicros();
  }
  write_side_.EndCommitBatch();
}

void TickPipeline::Run(const std::vector<InterrogationJob>& jobs) {
  if (jobs.empty()) return;
  const std::size_t n = jobs.size();
  TRACE_SPAN_VAR(span, "engine", "pipeline.run");
  span.SetArg("jobs", std::to_string(n));
  const metrics::ScopedTimer wall({});
  stats_.jobs += n;
  ++stats_.waves;

  jobs_ = &jobs;
  board_.Reset(n);

  if (executor_.thread_count() == 0) {
    RunSerial(jobs);
    stats_.wall_us += wall.ElapsedMicros();
    stats_.worker_busy_us =
        static_cast<double>(worker_busy_us_.load(std::memory_order_relaxed));
    jobs_ = nullptr;
    return;
  }

  closed_.store(false, std::memory_order_relaxed);
  const std::uint64_t worker_stalls_before =
      worker_stalls_.load(std::memory_order_relaxed);

  // Workers: drain the ring until it is closed and empty. Each pop is a
  // pure interrogation staged into a sequence slot; nothing here touches
  // shared mutable state outside Ring/SlotBoard.
  const std::function<void(std::size_t)> worker = [this](std::size_t) {
    TRACE_SPAN_VAR(wspan, "engine", "pipeline.worker");
    std::uint64_t executed = 0;
    std::uint32_t index = 0;
    for (;;) {
      if (ring_.TryPop(index)) {
        Execute(index);
        ++executed;
        continue;
      }
      if (closed_.load(std::memory_order_acquire)) {
        // The producer is done; one more pop covers items pushed between
        // our failed pop and the close.
        if (!ring_.TryPop(index)) break;
        Execute(index);
        ++executed;
        continue;
      }
      worker_stalls_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
    wspan.SetArg("executed", std::to_string(executed));
  };
  executor_.Broadcast(worker);

  // Command thread: keep the ring topped up, commit published slots
  // strictly in sequence order (group-committed), and steal a job when the
  // next slot is not ready — help-or-commit, never idle-wait.
  std::size_t pushed = 0;
  std::size_t committed = 0;
  std::uint32_t since_flush = 0;
  write_side_.BeginCommitBatch();
  try {
    TRACE_SPAN_VAR(cspan, "engine", "pipeline.commit");
    while (committed < n) {
      while (pushed < n &&
             ring_.TryPush(static_cast<std::uint32_t>(pushed))) {
        ++pushed;
      }
      if (pushed == n && !closed_.load(std::memory_order_relaxed)) {
        closed_.store(true, std::memory_order_release);
      }
      if (board_.Ready(committed)) {
        const metrics::ScopedTimer commit_timer({});
        Commit(static_cast<std::uint32_t>(committed));
        ++committed;
        if (++since_flush >= commit_batch_) {
          write_side_.FlushCommitBatch();
          ++stats_.batch_flushes;
          since_flush = 0;
        }
        stats_.commit_busy_us += commit_timer.ElapsedMicros();
        continue;
      }
      std::uint32_t index = 0;
      if (ring_.TryPop(index)) {
        Execute(index);
        ++stats_.help_runs;
      } else {
        ++stats_.commit_stalls;
        std::this_thread::yield();
      }
    }
    write_side_.EndCommitBatch();
    cspan.SetArg("helps", std::to_string(stats_.help_runs));
    cspan.SetArg("stalls", std::to_string(stats_.commit_stalls));
  } catch (...) {
    // Quiesce the workers before unwinding: they only reference jobs_ and
    // the board, and their remaining work is pure, so letting them drain
    // is safe — but they must not outlive this frame's references.
    closed_.store(true, std::memory_order_release);
    std::uint32_t index = 0;
    while (ring_.TryPop(index)) {
    }
    try {
      executor_.JoinBroadcast();
    } catch (...) {
    }
    jobs_ = nullptr;
    throw;
  }
  executor_.JoinBroadcast();
  jobs_ = nullptr;

  stats_.worker_stalls +=
      worker_stalls_.load(std::memory_order_relaxed) - worker_stalls_before;
  stats_.wall_us += wall.ElapsedMicros();
  // Cumulative Execute time everywhere it ran (workers + help steals).
  stats_.worker_busy_us =
      static_cast<double>(worker_busy_us_.load(std::memory_order_relaxed));
  span.SetArg("helps", std::to_string(stats_.help_runs));
}

}  // namespace censys::engines
