// The evaluation world: one simulated Internet, one CT log, Censys, and
// the four alternative engines, advanced in lockstep. Every bench and most
// integration tests start from a World.
#pragma once

#include <memory>
#include <vector>

#include "cert/ct.h"
#include "core/clock.h"
#include "engines/alternatives.h"
#include "engines/censys_engine.h"
#include "simnet/internet.h"

namespace censys::engines {

struct WorldConfig {
  simnet::UniverseConfig universe;
  CensysEngine::Config censys;
  bool with_alternatives = true;
  // Engine activity granularity. 2 h keeps per-day work spread out the way
  // continuous scanning does.
  Duration tick = Duration::Hours(2);
};

class World {
 public:
  explicit World(WorldConfig config);

  // Seeds CT logs and engine warm-start datasets at the current time.
  void Bootstrap();

  // Advances the Internet and all engines to `t`.
  void RunUntil(Timestamp t);
  void RunForDays(double days) {
    RunUntil(clock_.now() + Duration::Days(days));
  }

  simnet::Internet& internet() { return internet_; }
  const simnet::Internet& internet() const { return internet_; }
  cert::CtLog& ct_log() { return ct_log_; }
  CensysEngine& censys() { return *censys_; }

  // All engines including Censys (Censys first).
  std::vector<ScanEngine*> engines();
  AltEngine* alternative(std::string_view name);

  Timestamp now() const { return clock_.now(); }
  const WorldConfig& config() const { return config_; }

 private:
  WorldConfig config_;
  simnet::Internet internet_;
  cert::CtLog ct_log_;
  SimClock clock_;
  std::unique_ptr<CensysEngine> censys_;
  std::vector<std::unique_ptr<AltEngine>> alternatives_;
};

}  // namespace censys::engines
