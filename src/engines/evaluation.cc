#include "engines/evaluation.h"

#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "core/rng.h"
#include "interrogate/detection.h"

namespace censys::engines {

simnet::ScannerProfile MeasurementProfile() {
  // "Our liveness checks are run from a different network than our
  // production scanning to minimize network-related bias" (§6.1). Low
  // volume, so effectively never blocked.
  return simnet::ScannerProfile{99, "measurement", 0.5, 8.0};
}

GroundTruthSample SubsampledScan(simnet::Internet& net, Timestamp t,
                                 double sample_fraction, std::uint64_t seed) {
  GroundTruthSample sample;
  const simnet::ScannerProfile profile = MeasurementProfile();

  // Count responsive ports per host in the sampled set to apply the
  // pseudo-service filter ("filter out hosts that respond on more than 20
  // ports with nearly identical services").
  std::vector<simnet::SimService> candidates;
  std::unordered_map<std::uint32_t, std::uint32_t> ports_per_host;
  net.ForEachActiveService(t, [&](const simnet::SimService& svc) {
    Rng fork(SplitMix64(svc.key.Pack() ^ seed));
    if (fork.NextDouble() >= sample_fraction) return;
    // One probe, like a real sub-sampled scan; transient loss costs a few
    // percent, exactly as ZMap's single-probe scans do.
    const simnet::ProbeContext ctx{&profile, 0};
    if (!net.L4Probe(ctx, svc.key, t)) return;
    candidates.push_back(svc);
    ++ports_per_host[svc.key.ip.value()];
  });
  for (const simnet::SimService& svc : candidates) {
    if (net.IsPseudoHost(svc.key.ip) ||
        ports_per_host[svc.key.ip.value()] > 20) {
      ++sample.pseudo_filtered;
      continue;
    }
    sample.services.push_back(svc);
  }
  return sample;
}

bool ValidateLive(simnet::Internet& net, ServiceKey key, Timestamp t,
                  int attempts) {
  const simnet::ScannerProfile profile = MeasurementProfile();
  const simnet::ProbeContext ctx{&profile, 0};
  for (int i = 0; i < attempts; ++i) {
    if (net.ConnectL7(ctx, key, t + Duration::Hours(2.0 * i)).has_value()) {
      return true;
    }
  }
  return false;
}

bool ValidateProtocol(simnet::Internet& net, ServiceKey key,
                      proto::Protocol label, Timestamp t, int attempts) {
  const simnet::ScannerProfile profile = MeasurementProfile();
  const simnet::ProbeContext ctx{&profile, 0};
  for (int i = 0; i < attempts; ++i) {
    const auto session = net.ConnectL7(ctx, key, t + Duration::Hours(2.0 * i));
    if (!session.has_value()) continue;
    // Complete the labeled protocol's handshake against the live service.
    if (session->service.pseudo) return label == proto::Protocol::kHttp;
    if (session->service.protocol == label) return true;
    return false;
  }
  return false;
}

std::uint64_t UniqueCount(const ScanEngine& engine) {
  std::uint64_t unique = 0;
  engine.ForEachEntry([&](const EngineEntry&) { ++unique; });
  return unique;
}

double CoverageOver(const ScanEngine& engine,
                    const std::vector<simnet::SimService>& reference) {
  if (reference.empty()) return 0.0;
  std::unordered_set<std::uint64_t> known;
  engine.ForEachEntry(
      [&](const EngineEntry& entry) { known.insert(entry.key.Pack()); });
  std::size_t hit = 0;
  for (const simnet::SimService& svc : reference) {
    if (known.contains(svc.key.Pack())) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(reference.size());
}

PortBucket BucketOf(const simnet::PortModel& ports, Port port) {
  const std::uint32_t rank = ports.RankOf(port);
  if (rank <= 10) return PortBucket::kTop10;
  if (rank <= 100) return PortBucket::kTop100;
  return PortBucket::kRest;
}

std::string_view ToString(PortBucket bucket) {
  switch (bucket) {
    case PortBucket::kTop10: return "Top 10 Ports";
    case PortBucket::kTop100: return "Top 100 Ports";
    case PortBucket::kRest: return "All 65K Ports";
  }
  return "?";
}

TablePrinter::TablePrinter(std::vector<std::string> headers,
                           std::vector<int> widths)
    : headers_(std::move(headers)), widths_(std::move(widths)) {
  if (widths_.empty()) {
    widths_.assign(headers_.size(), 0);
  }
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths_[i] = std::max<int>(widths_[i],
                               static_cast<int>(headers_[i].size()) + 2);
  }
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
    widths_[i] = std::max<int>(widths_[i],
                               static_cast<int>(cells[i].size()) + 2);
  }
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::printf("%-*s", widths_[i], cells[i].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  int total = 0;
  for (int w : widths_) total += w;
  for (int i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

std::string Percent(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace censys::engines
