// Evaluation methodology (§6.1), as code.
//
// The paper's comparisons rest on three procedures: (1) a random
// sub-sampled 65K-port scan approximating ground truth, with pseudo-service
// hosts filtered; (2) follow-up liveness scans of engine-returned services
// ("conducting follow-up scans of returned services using ZGrab"), run from
// a network distinct from any engine's production scanning; and (3)
// protocol validation — does the target actually complete an L7 handshake
// for the labeled protocol.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "engines/engine.h"
#include "simnet/internet.h"

namespace censys::engines {

// The neutral measurement vantage (not any engine's scanner identity).
simnet::ScannerProfile MeasurementProfile();

// (1) Ground-truth approximation: a sub-sampled scan across all 65K ports.
// `sample_fraction` of currently-active services are probed once; services
// on hosts answering >`pseudo_port_threshold` ports are filtered out, as
// in §6.1. Returned snapshots are the reference set for coverage metrics.
struct GroundTruthSample {
  std::vector<simnet::SimService> services;
  std::size_t pseudo_filtered = 0;
};
GroundTruthSample SubsampledScan(simnet::Internet& net, Timestamp t,
                                 double sample_fraction,
                                 std::uint64_t seed);

// (2) Liveness validation: follow-up scan of one returned service.
// `attempts` probes spread over a few hours filter transient loss.
bool ValidateLive(simnet::Internet& net, ServiceKey key, Timestamp t,
                  int attempts = 2);

// (3) Protocol validation: the target completes an L7 handshake for
// `label` at query time.
bool ValidateProtocol(simnet::Internet& net, ServiceKey key,
                      proto::Protocol label, Timestamp t, int attempts = 2);

// Deduplicated entry count (the "% unique" denominator of Table 2).
std::uint64_t UniqueCount(const ScanEngine& engine);

// Coverage of `engine` over a reference set of services: the fraction of
// reference services the engine currently reports.
double CoverageOver(const ScanEngine& engine,
                    const std::vector<simnet::SimService>& reference);

// Port-rank bucketing used by Table 1 (top 10 / top 100 / all 65K,
// non-overlapping).
enum class PortBucket { kTop10, kTop100, kRest };
PortBucket BucketOf(const simnet::PortModel& ports, Port port);
std::string_view ToString(PortBucket bucket);

// --- table formatting ---------------------------------------------------------

// Minimal fixed-width table printer shared by the benches.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers,
                        std::vector<int> widths = {});
  void AddRow(std::vector<std::string> cells);
  void Print() const;  // to stdout

 private:
  std::vector<std::string> headers_;
  std::vector<int> widths_;
  std::vector<std::vector<std::string>> rows_;
};

std::string Percent(double fraction, int decimals = 0);

}  // namespace censys::engines
