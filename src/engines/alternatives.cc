#include "engines/alternatives.h"

#include <algorithm>
#include <cmath>

#include "core/strings.h"
#include "proto/banner.h"

namespace censys::engines {
namespace {

using P = proto::Protocol;

double HashUnit(std::uint64_t a, std::uint64_t b) {
  return static_cast<double>(SplitMix64(a ^ SplitMix64(b)) >> 11) * 0x1.0p-53;
}

}  // namespace

// Calibration sources (paper): Table 1 port-range coverage, Table 2
// self-reported/accurate/unique, Figure 2 freshness, Table 4 ICS
// reported-vs-validated, Table 5 discovery latency, §6.2 prose (Netlas
// one-month sweep; ZoomEye multi-year entries; Fofa/Netlas >1/3 duplicates).

AltEnginePolicy ShodanPolicy() {
  AltEnginePolicy p;
  p.name = "Shodan";
  p.scanner_id = 2;
  p.probes_per_ip_day = 30.0;
  p.source_pool_size = 48.0;
  p.port_breadth = 1500;
  p.sweep_period = Duration::Days(6);   // Table 5: ~60-78 h median discovery
  p.retention = Duration::Days(60);
  p.duplicate_rate = 0.0;               // Table 2: ~100% unique
  p.labeling = LabelingMode::kKeyword;
  p.p_top10 = 0.88;
  p.p_top100 = 0.44;
  p.p_rest = 0.12;
  p.stale_fraction = 0.30;              // Table 2: 68% accurate
  p.stale_age_mean_days = 14.0;         // Figure 2: days-to-weeks tail
  p.excluded_ports = {60000, 500};      // Table 5: never found there
  // Table 4, fp mass = (reported - validated) / 810M entries, per million.
  p.ics_rules = {
      {P::kAtg, 365.0, 0},      {P::kBacnet, 43.0, 0},
      {P::kCodesys, 263.0, 0},  {P::kDnp3, 0.8, 0},
      {P::kEip, 309.0, 0},      {P::kFins, 0.6, 0},
      {P::kFox, 3.0, 0},        {P::kGeSrtp, 0.01, 0},
      {P::kHart, 0.001, 0},     {P::kIec60870, 0.9, 0},
      {P::kModbus, 17.0, 0},    {P::kOpcUa, 0.3, 0},
      {P::kPcworx, 0.66, 0},    {P::kProconos, 0.07, 0},
      {P::kRedlionCrimson, 0.12, 0}, {P::kS7, 3.2, 0},
      {P::kWdbrpc, 36.0, 0},
  };
  return p;
}

AltEnginePolicy FofaPolicy() {
  AltEnginePolicy p;
  p.name = "Fofa";
  p.scanner_id = 4;
  p.probes_per_ip_day = 60.0;
  p.source_pool_size = 96.0;
  p.port_breadth = 65536;               // broad but slow
  p.sweep_period = Duration::Days(45);
  p.retention = Duration::Days(250);
  p.duplicate_rate = 0.54;              // Table 2: ~65% unique
  p.labeling = LabelingMode::kKeyword;
  p.p_top10 = 0.75;
  p.p_top100 = 0.70;
  p.p_rest = 0.30;
  p.stale_fraction = 0.78;              // Table 2: 20% accurate
  p.stale_age_mean_days = 120.0;
  p.ics_rules = {
      {P::kAtg, 7.6, 0},     {P::kBacnet, 2.8, 0},  {P::kCodesys, 0.87, 0},
      {P::kDnp3, 0.37, 0},   {P::kFox, 0.5, 0},     {P::kHart, 0.001, 0},
      {P::kIec60870, 1.5, 0}, {P::kModbus, 20.0, 0}, {P::kPcworx, 0.41, 0},
      {P::kProconos, 0.01, 0}, {P::kRedlionCrimson, 0.25, 0},
      {P::kS7, 2.4, 0},      {P::kWdbrpc, 4.2, 0},
  };
  return p;
}

AltEnginePolicy ZoomEyePolicy() {
  AltEnginePolicy p;
  p.name = "ZoomEye";
  p.scanner_id = 3;
  p.probes_per_ip_day = 25.0;
  p.source_pool_size = 40.0;
  p.port_breadth = 4000;
  p.sweep_period = Duration::Days(14);
  p.retention = Duration::Days(1200);   // Figure 2: >3-year-old entries
  p.duplicate_rate = 0.01;
  p.labeling = LabelingMode::kKeyword;
  p.p_top10 = 0.94;
  p.p_top100 = 0.62;
  p.p_rest = 0.22;
  p.stale_fraction = 0.88;              // Table 2: 10% accurate
  p.stale_age_mean_days = 420.0;
  p.ics_rules = {
      {P::kBacnet, 18.5, 0},  {P::kDnp3, 0.55, 0},  {P::kFins, 3.9, 0},
      {P::kFox, 0.1, 0},      {P::kGeSrtp, 2.3, 0}, {P::kHart, 0.02, 0},
      {P::kIec60870, 0.001, 0}, {P::kModbus, 7.4, 0},
      {P::kProconos, 0.24, 0}, {P::kRedlionCrimson, 4.3, 0},
      {P::kS7, 7.7, 0},       {P::kWdbrpc, 32.0, 0},
  };
  return p;
}

AltEnginePolicy NetlasPolicy() {
  AltEnginePolicy p;
  p.name = "Netlas";
  p.scanner_id = 5;
  p.probes_per_ip_day = 6.0;
  p.source_pool_size = 16.0;
  p.port_breadth = 1200;
  p.sweep_period = Duration::Days(30);  // "a single scan takes about a month"
  p.retention = Duration::Days(100);
  p.duplicate_rate = 0.59;              // Table 2: ~63% unique
  p.labeling = LabelingMode::kKeyword;
  p.p_top10 = 0.70;
  p.p_top100 = 0.32;
  p.p_rest = 0.05;
  p.stale_fraction = 0.50;              // Table 2: 49% accurate
  p.stale_age_mean_days = 35.0;
  p.ics_rules = {
      {P::kS7, 1.14, 0},  // "Netlas reports results for only S7"
  };
  return p;
}

AltEngine::AltEngine(simnet::Internet& net, AltEnginePolicy policy,
                     std::uint64_t seed)
    : net_(net), policy_(std::move(policy)),
      rng_(SplitMix64(seed ^ policy_.scanner_id * 0x9E37u)) {
  profile_ = simnet::ScannerProfile{policy_.scanner_id, policy_.name,
                                    policy_.probes_per_ip_day,
                                    policy_.source_pool_size};
  discovery_ = std::make_unique<scan::DiscoveryEngine>(
      net_, profile_, policy_.pop_count, seed ^ policy_.scanner_id);
  scheduler_ = std::make_unique<scan::ScanScheduler>(*discovery_);

  // Alternative engines do banner + IANA-port detection; none runs Censys'
  // full follow-up handshake battery.
  interrogate::DetectorConfig detector;
  detector.listen_for_banner = true;
  detector.try_iana = true;
  detector.try_battery = false;
  detector.try_within_tls = true;
  detector.battery = {proto::Protocol::kHttp};
  interrogator_ = std::make_unique<interrogate::Interrogator>(net_, profile_,
                                                              detector);

  // The engine's sweep covers its popularity-ranked breadth plus the IANA
  // ports of every ICS protocol it ships a module for.
  for (const auto& rule : policy_.ics_rules) {
    if (const auto port = proto::PrimaryPort(rule.protocol)) {
      ics_ports_.insert(*port);
    }
  }
  scan::ScheduledClass sweep;
  sweep.klass.name = policy_.name + "-sweep";
  sweep.klass.ports = net_.ports().TopPorts(policy_.port_breadth);
  for (Port excluded : policy_.excluded_ports) {
    std::erase(sweep.klass.ports, excluded);
  }
  std::vector<Port> ics_sorted(ics_ports_.begin(), ics_ports_.end());
  std::sort(ics_sorted.begin(), ics_sorted.end());
  for (Port port : ics_sorted) {
    if (net_.ports().RankOf(port) > policy_.port_breadth) {
      sweep.klass.ports.push_back(port);
    }
  }
  sweep.klass.period = policy_.sweep_period;
  scheduler_->AddClass(std::move(sweep));
}

proto::Protocol AltEngine::LabelService(
    const simnet::L7Session& session,
    std::optional<proto::Protocol> udp_hint) const {
  const interrogate::DetectionOutcome outcome = interrogate::DetectProtocol(
      session, interrogator_->config(), udp_hint);
  return outcome.protocol;
}

bool AltEngine::PersistentlyVisible(ServiceKey key) const {
  const std::uint32_t rank = net_.ports().RankOf(key.port);
  double p = policy_.p_rest;
  if (rank <= 10) {
    p = policy_.p_top10;
  } else if (rank <= 100) {
    p = policy_.p_top100;
  }
  if (ics_ports_.contains(key.port)) p = std::max(p, policy_.p_ics_ports);
  return HashUnit(key.Pack() ^ (policy_.scanner_id * 0x5EEDull), 0xA17B) < p;
}

void AltEngine::Observe(const scan::Candidate& candidate) {
  if (!PersistentlyVisible(candidate.key)) return;
  const simnet::ProbeContext ctx{&profile_, 0};
  const auto session =
      net_.ConnectL7(ctx, candidate.key, candidate.discovered_at);
  if (!session.has_value()) return;

  const std::uint64_t packed = candidate.key.Pack();
  auto [it, inserted] = dataset_.try_emplace(packed);
  Entry& stored = it->second;
  if (inserted) {
    auto& host_count = host_entry_counts_[candidate.key.ip.value()];
    if (host_count >= policy_.max_entries_per_host) {
      dataset_.erase(it);
      return;
    }
    ++host_count;
    by_host_[candidate.key.ip.value()].push_back(packed);
    stored.entry.key = candidate.key;
    stored.entry.first_seen = candidate.discovered_at;
    stored.entry.record_count = DuplicateCount(packed);
  }
  stored.phantom = false;
  stored.entry.last_scanned = candidate.discovered_at;
  stored.entry.label = LabelService(*session, candidate.udp_protocol);
}

void AltEngine::Bootstrap(Timestamp t0) {
  const std::size_t breadth = policy_.port_breadth;
  std::size_t live_seeded = 0;

  net_.ForEachActiveService(t0, [&](const simnet::SimService& svc) {
    const std::uint32_t rank = net_.ports().RankOf(svc.key.port);
    if (rank > breadth && !ics_ports_.contains(svc.key.port)) return;
    for (Port excluded : policy_.excluded_ports) {
      if (svc.key.port == excluded) return;
    }
    if (!PersistentlyVisible(svc.key)) return;
    Rng fork = rng_.Fork(svc.key.Pack() ^ policy_.scanner_id);

    Entry stored;
    stored.entry.key = svc.key;
    const double age_days =
        fork.NextDouble() * policy_.sweep_period.ToDays();
    stored.entry.last_scanned = t0 - Duration::Days(age_days);
    stored.entry.first_seen = stored.entry.last_scanned;
    stored.entry.record_count = DuplicateCount(svc.key.Pack());
    simnet::L7Session session;
    session.service = svc;
    if (proto::GetInfo(svc.protocol).server_talks_first) {
      session.server_first_banner =
          proto::GenerateBanner(svc.protocol, svc.seed);
    }
    std::optional<proto::Protocol> udp_hint;
    if (svc.key.transport == Transport::kUdp) udp_hint = svc.protocol;
    stored.entry.label = LabelService(session, udp_hint);
    auto& host_count = host_entry_counts_[svc.key.ip.value()];
    if (host_count >= policy_.max_entries_per_host) return;
    ++host_count;
    by_host_[svc.key.ip.value()].push_back(svc.key.Pack());
    dataset_.emplace(svc.key.Pack(), std::move(stored));
    ++live_seeded;
  });

  // Phantom (already-stale) entries: services the engine once saw that no
  // longer exist. Their share encodes the engine's retention policy.
  const std::size_t phantom_count = static_cast<std::size_t>(
      static_cast<double>(live_seeded) * policy_.stale_fraction /
      std::max(0.01, 1.0 - policy_.stale_fraction));
  const std::uint32_t universe = net_.blocks().universe_size();
  std::size_t made = 0;
  while (made < phantom_count) {
    const IPv4Address ip(static_cast<std::uint32_t>(rng_.NextBelow(universe)));
    const std::uint32_t rank = static_cast<std::uint32_t>(
        1 + rng_.NextBelow(std::min<std::uint64_t>(breadth, 4000)));
    const Port port = net_.ports().PortAtRank(rank);
    const ServiceKey key{ip, port, Transport::kTcp};
    if (dataset_.contains(key.Pack())) continue;
    if (net_.FindService(key, t0) != nullptr) continue;  // must be dead
    Entry stored;
    stored.phantom = true;
    stored.entry.key = key;
    const double age_days = std::min(
        policy_.retention.ToDays() * 0.95,
        policy_.sweep_period.ToDays() + rng_.NextExponential(
                                            policy_.stale_age_mean_days));
    stored.entry.last_scanned = t0 - Duration::Days(age_days);
    stored.entry.first_seen = stored.entry.last_scanned;
    stored.entry.record_count = DuplicateCount(key.Pack());
    const auto assigned = proto::AssignedToPort(port, Transport::kTcp);
    stored.entry.label =
        assigned.empty() ? proto::Protocol::kHttp : assigned.front();
    auto& host_count = host_entry_counts_[key.ip.value()];
    if (host_count >= policy_.max_entries_per_host) continue;
    ++host_count;
    by_host_[key.ip.value()].push_back(key.Pack());
    dataset_.emplace(key.Pack(), std::move(stored));
    ++made;
  }
}

void AltEngine::Tick(Timestamp from, Timestamp to) {
  scheduler_->Tick(from, to, [this](const scan::Candidate& candidate) {
    Observe(candidate);
  });

  const std::int64_t day = to.minutes / 1440;
  if (day != last_cleanup_day_) {
    last_cleanup_day_ = day;
    // censyslint:allow(unordered-iter): per-entry erase + count decrement
    // commute, and nothing order-sensitive observes the removal sequence
    for (auto it = dataset_.begin(); it != dataset_.end();) {
      if (it->second.entry.last_scanned + policy_.retention < to) {
        const std::uint32_t ip = it->second.entry.key.ip.value();
        auto host = host_entry_counts_.find(ip);
        if (host != host_entry_counts_.end() && host->second > 0) {
          --host->second;
        }
        if (auto bh = by_host_.find(ip); bh != by_host_.end()) {
          std::erase(bh->second, it->first);
          if (bh->second.empty()) by_host_.erase(bh);
        }
        it = dataset_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

std::uint32_t AltEngine::DuplicateCount(std::uint64_t packed) const {
  std::uint32_t count = 1 + static_cast<std::uint32_t>(policy_.duplicate_rate);
  const double frac =
      policy_.duplicate_rate - std::floor(policy_.duplicate_rate);
  if (HashUnit(packed, 0xD0B1E ^ policy_.scanner_id) < frac) ++count;
  return count;
}

std::vector<EngineEntry> AltEngine::QueryHost(IPv4Address ip) const {
  // Bulk-IP queries (Appendix Table 7) resolve through the host index.
  std::vector<EngineEntry> out;
  const auto bh = by_host_.find(ip.value());
  if (bh == by_host_.end()) return out;
  for (std::uint64_t packed : bh->second) {
    const auto it = dataset_.find(packed);
    if (it != dataset_.end()) out.push_back(it->second.entry);
  }
  return out;
}

std::vector<const AltEngine::Entry*> AltEngine::SortedEntries() const {
  std::vector<std::pair<std::uint64_t, const Entry*>> keyed;
  keyed.reserve(dataset_.size());
  // censyslint:allow(unordered-iter): collected then sorted by key below
  for (const auto& [packed, stored] : dataset_) {
    keyed.emplace_back(packed, &stored);
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<const Entry*> out;
  out.reserve(keyed.size());
  for (const auto& [packed, stored] : keyed) out.push_back(stored);
  return out;
}

void AltEngine::ForEachEntry(
    const std::function<void(const EngineEntry&)>& fn) const {
  for (const Entry* stored : SortedEntries()) fn(stored->entry);
}

std::uint64_t AltEngine::SelfReportedCount() const {
  std::uint64_t total = 0;
  // censyslint:allow(unordered-iter): commutative sum, order cannot escape
  for (const auto& [packed, stored] : dataset_) {
    total += stored.entry.record_count;
  }
  return total;
}

bool AltEngine::SupportsProtocolQuery(proto::Protocol protocol) const {
  if (proto::GetInfo(protocol).is_ics) {
    for (const auto& rule : policy_.ics_rules) {
      if (rule.protocol == protocol) return true;
    }
    return false;
  }
  return policy_.supports_all_general;
}

bool AltEngine::KeywordMatches(
    const EngineEntry& entry,
    const AltEnginePolicy::IcsQueryRule& rule) const {
  // Keyword rules misfire on ordinary (non-ICS-labeled) entries: "criteria
  // met by hundreds of thousands of HTTP services rather than services
  // running CODESYS" (§6.3). The false-positive mass is calibrated per
  // million dataset entries and scales with the universe's ics_scale so
  // reported:validated ratios are preserved.
  if (proto::GetInfo(entry.label).is_ics) return false;
  const double rate = rule.keyword_fp_per_million * 1e-6 *
                      net_.config().ics_scale;
  return HashUnit(entry.key.Pack() ^ policy_.scanner_id,
                  static_cast<std::uint64_t>(rule.protocol)) < rate;
}

std::vector<EngineEntry> AltEngine::QueryProtocol(
    proto::Protocol protocol) const {
  std::vector<EngineEntry> out;
  if (!SupportsProtocolQuery(protocol)) return out;
  const AltEnginePolicy::IcsQueryRule* rule = nullptr;
  for (const auto& r : policy_.ics_rules) {
    if (r.protocol == protocol) rule = &r;
  }
  for (const Entry* stored : SortedEntries()) {
    if (stored->entry.label == protocol) {
      out.push_back(stored->entry);
    } else if (rule != nullptr && KeywordMatches(stored->entry, *rule)) {
      EngineEntry fp = stored->entry;
      fp.label = protocol;  // as the engine would report it
      out.push_back(fp);
    }
  }
  return out;
}

}  // namespace censys::engines
