// Balanced access (§3) and abuse-resistant data exposure (§8).
//
// "Our goal is not to provide all users with the same global Internet
// visibility, but to provide tailored access driven by users' needs."
// Censys restricts the data ripest for abuse — control-system,
// vulnerability, and adversarial-infrastructure context — behind access
// tiers, delays data for unvetted users, and gates specific query types
// until identity is verified. This module is that policy layer: it filters
// read-side views and vets search queries per tier.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "pipeline/read_side.h"

namespace censys::engines {

enum class AccessTier : std::uint8_t {
  kPublic,      // anonymous: basic service presence only, delayed
  kResearch,    // vetted research program: full host data, CVE/ICS redacted
  kVerified,    // identity-verified researcher: CVE context, delayed ICS
  kCommercial,  // customer: everything except internal threat-actor tags
  kInternal,    // Censys analysts
};

std::string_view ToString(AccessTier tier);

struct AccessPolicy {
  AccessTier tier = AccessTier::kPublic;
  bool see_ics = false;          // industrial-control records
  bool see_vulnerabilities = false;  // CVE/KEV context
  bool see_device_identity = false;  // manufacturer/model labels
  // Results are served as of (now - delay): fresh data is the most
  // operationally sensitive ("multiple access tiers that provide delayed
  // access", §7.1).
  Duration data_delay = Duration::Days(0);
  std::uint32_t daily_query_quota = 0;  // 0 = unlimited

  static AccessPolicy ForTier(AccessTier tier);
};

class AccessControl {
 public:
  // Filters a host view down to what `tier` may see. Restricted services
  // are removed entirely; restricted context is redacted in place.
  pipeline::HostView Filter(const pipeline::HostView& view,
                            AccessTier tier) const;

  // Query vetting: ICS- and vulnerability-targeted searches require a tier
  // that may see the result ("we limit specific types of searches against
  // our data until we can verify user identity and goals", §8).
  bool AllowQuery(std::string_view query, AccessTier tier) const;

  // Per-user daily quota accounting. Returns false once the tier's quota
  // for `day` is exhausted.
  bool ChargeQuery(std::string_view user, AccessTier tier, std::int64_t day);

 private:
  struct QuotaKey {
    std::string user;
    std::int64_t day;
    bool operator==(const QuotaKey&) const = default;
  };
  struct QuotaHash {
    std::size_t operator()(const QuotaKey& k) const {
      return std::hash<std::string>()(k.user) ^
             std::hash<std::int64_t>()(k.day * 0x9E3779B9);
    }
  };
  std::unordered_map<QuotaKey, std::uint32_t, QuotaHash> used_;
};

}  // namespace censys::engines
