// The ground-truth representation of one live Internet service.
#pragma once

#include <cstdint>
#include <string>

#include "core/types.h"
#include "proto/protocol.h"

namespace censys::simnet {

struct SimService {
  ServiceKey key;
  proto::Protocol protocol = proto::Protocol::kUnknown;

  // Seed from which all observable configuration (banner, software, TLS,
  // device identity, page content) derives. Stable for the service's life.
  std::uint64_t seed = 0;

  Timestamp born;
  Timestamp dies;  // exclusive: service is live for born <= t < dies

  // True for middlebox hosts that answer identically on every port; these
  // are synthesized lazily and share the host's seed.
  bool pseudo = false;

  // Name-addressed web property: L7 content requires the right SNI/Host;
  // a nameless scan sees only a generic frontend page (§4.3).
  bool requires_sni = false;
  std::string sni_name;  // set when requires_sni

  // Honeypot services log scanner contact times (Table 5 experiment).
  bool honeypot = false;

  bool LiveAt(Timestamp t) const { return born <= t && t < dies; }
};

}  // namespace censys::simnet
