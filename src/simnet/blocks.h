// Network blocks: the address plan of the simulated universe.
//
// The universe is carved into contiguous blocks, each with a network type
// (residential / cloud / enterprise / ...), a country, and an ASN. Blocks
// are the unit of routing behaviour: outages, per-PoP reachability, and
// scanner blocking all happen at block granularity, mirroring how real
// visibility loss happens per-network rather than per-host.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/cidr.h"
#include "core/rng.h"
#include "core/types.h"
#include "simnet/config.h"

namespace censys::simnet {

struct NetworkBlock {
  std::uint32_t id = 0;
  Cidr cidr;
  NetworkType type = NetworkType::kUnused;
  Country country = Country::kOther;
  std::uint32_t asn = 0;
  // Organization name, e.g. "AS64512 ExampleCloud" — surfaced by the
  // read-side enrichment as WHOIS/ASN context.
  std::string org;
};

// The address plan. Built deterministically from the universe config.
class BlockPlan {
 public:
  explicit BlockPlan(const UniverseConfig& config);

  const NetworkBlock& BlockOf(IPv4Address ip) const;
  std::span<const NetworkBlock> blocks() const { return blocks_; }

  // All blocks of a given type (e.g. cloud networks for the cloud scan).
  std::vector<const NetworkBlock*> BlocksOfType(NetworkType t) const;

  // Total addresses allocated to a given type.
  std::uint64_t AddressesOfType(NetworkType t) const;

  std::uint32_t universe_size() const { return universe_size_; }

 private:
  std::vector<NetworkBlock> blocks_;       // sorted by base address, covering
  std::vector<std::uint32_t> block_start_; // parallel: base addr of blocks_[i]
  std::uint32_t universe_size_;
};

// Port popularity model shared by the universe generator (to place
// services) and published to scanners (real top-port lists are public
// knowledge from scan data).
class PortModel {
 public:
  PortModel(std::uint64_t seed, double zipf_s);

  // Samples a port with Zipf-distributed popularity.
  Port SamplePort(Rng& rng) const;

  // Popularity rank of a port, 1 = most popular.
  std::uint32_t RankOf(Port port) const;
  Port PortAtRank(std::uint32_t rank) const;

  // The `n` most popular ports, in rank order.
  std::vector<Port> TopPorts(std::size_t n) const;

 private:
  ZipfSampler zipf_;
  std::vector<Port> rank_to_port_;          // index = rank - 1
  std::vector<std::uint32_t> port_to_rank_; // index = port
};

}  // namespace censys::simnet
