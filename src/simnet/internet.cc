#include "simnet/internet.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>

#include "core/sha256.h"
#include "proto/banner.h"

namespace censys::simnet {
namespace {

constexpr Timestamp kNever{std::numeric_limits<std::int64_t>::max() / 4};

// Deterministic hash -> [0, 1) for the stateless visibility model.
double HashUnit(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  const std::uint64_t h = SplitMix64(a ^ SplitMix64(b ^ SplitMix64(c)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Relative share of (non-ICS) services placed in each network type. Clouds
// and hosting providers are dense; dark space holds nothing.
double PlacementWeight(NetworkType t) {
  switch (t) {
    case NetworkType::kResidential: return 0.26;
    case NetworkType::kCloud: return 0.30;
    case NetworkType::kEnterprise: return 0.17;
    case NetworkType::kHosting: return 0.17;
    case NetworkType::kIndustrial: return 0.012;
    case NetworkType::kAcademic: return 0.048;
    case NetworkType::kUnused: return 0.0;
  }
  return 0.0;
}

}  // namespace

Internet::Internet(const UniverseConfig& config)
    : config_(config),
      plan_(config),
      port_model_(config.seed, config.port_zipf_s),
      rng_(SplitMix64(config.seed ^ 0x1A7E12AD)),
      now_(Timestamp{0}) {
  blocks_by_type_.resize(7);
  for (const NetworkBlock& b : plan_.blocks()) {
    blocks_by_type_[static_cast<std::size_t>(b.type)].push_back(&b);
  }
  Populate();
}

double Internet::MeanLifetimeDays(NetworkType type) const {
  switch (type) {
    case NetworkType::kCloud: return config_.mean_lifetime_cloud_days;
    case NetworkType::kResidential:
      return config_.mean_lifetime_residential_days;
    case NetworkType::kEnterprise:
      return config_.mean_lifetime_enterprise_days;
    case NetworkType::kHosting: return config_.mean_lifetime_hosting_days;
    case NetworkType::kIndustrial:
      return config_.mean_lifetime_industrial_days;
    case NetworkType::kAcademic: return config_.mean_lifetime_academic_days;
    case NetworkType::kUnused: return 1.0;
  }
  return 1.0;
}

Duration Internet::SampleLifetime(NetworkType type, Rng& rng,
                                  bool length_biased) {
  const double mean = MeanLifetimeDays(type);
  const double sigma = config_.lifetime_sigma;
  // Lognormal with E[L] = mean: mu = ln(mean) - sigma^2/2. The population
  // alive at a point in time is length-biased; for a lognormal that shifts
  // mu by +sigma^2 (standard renewal-theory result), which Populate() uses
  // so the initial snapshot matches the long-run steady state.
  double mu = std::log(mean) - sigma * sigma / 2.0;
  if (length_biased) mu += sigma * sigma;
  const double days = std::exp(rng.NextNormal(mu, sigma));
  const std::int64_t minutes =
      std::max<std::int64_t>(30, static_cast<std::int64_t>(days * 24 * 60));
  return Duration{minutes};
}

IPv4Address Internet::SampleAddress(NetworkType type, Rng& rng) const {
  // Small universes may lack blocks of a given type; fall back to the
  // nearest populated category so placement never fails.
  static constexpr NetworkType kFallbacks[] = {
      NetworkType::kEnterprise, NetworkType::kHosting, NetworkType::kCloud,
      NetworkType::kResidential};
  const auto* blocks_ptr = &blocks_by_type_[static_cast<std::size_t>(type)];
  for (const NetworkType fb : kFallbacks) {
    if (!blocks_ptr->empty()) break;
    blocks_ptr = &blocks_by_type_[static_cast<std::size_t>(fb)];
  }
  const auto& blocks = *blocks_ptr;
  assert(!blocks.empty());
  // Weight blocks by size so addresses are uniform within the type.
  std::uint64_t total = 0;
  for (const NetworkBlock* b : blocks) total += b->cidr.size();
  std::uint64_t x = rng.NextBelow(total);
  for (const NetworkBlock* b : blocks) {
    if (x < b->cidr.size()) return b->cidr.AddressAt(x);
    x -= b->cidr.size();
  }
  return blocks.back()->cidr.base();
}

proto::Protocol Internet::SampleProtocolForPort(Port port, Rng& rng) const {
  // IANA conformance: a service on a well-known port usually speaks the
  // assigned protocol; the rest of the time (and on unassigned ports) the
  // protocol is drawn from the global deployment mix — "service diffusion".
  const auto tcp_assigned = proto::AssignedToPort(port, Transport::kTcp);
  const auto udp_assigned = proto::AssignedToPort(port, Transport::kUdp);
  std::vector<proto::Protocol> assigned = tcp_assigned;
  assigned.insert(assigned.end(), udp_assigned.begin(), udp_assigned.end());
  // ICS protocols are populated separately with absolute counts.
  std::erase_if(assigned, [](proto::Protocol p) {
    return proto::GetInfo(p).is_ics;
  });
  if (!assigned.empty() && rng.NextDouble() < config_.iana_conformance) {
    return assigned[rng.NextBelow(assigned.size())];
  }
  // Global mix.
  static const std::vector<std::pair<proto::Protocol, double>> mix = [] {
    std::vector<std::pair<proto::Protocol, double>> m;
    for (const proto::ProtocolInfo& info : proto::AllProtocols()) {
      if (info.protocol == proto::Protocol::kUnknown || info.is_ics) continue;
      m.emplace_back(info.protocol, info.population_weight);
    }
    return m;
  }();
  double total = 0;
  for (const auto& [p, w] : mix) total += w;
  double x = rng.NextDouble() * total;
  for (const auto& [p, w] : mix) {
    x -= w;
    if (x < 0) return p;
  }
  return proto::Protocol::kHttp;
}

SimService Internet::MakeService(ServiceKey key, proto::Protocol protocol,
                                 Timestamp born, Duration lifetime) {
  SimService s;
  s.key = key;
  s.protocol = protocol;
  s.seed = rng_.NextU64();
  s.born = born;
  s.dies = born + lifetime;
  // sni_only_fraction is a share of *all* services; HTTP(S) carries all of
  // it, and HTTP(S) is ~66% of the general mix, hence the rescale.
  if ((protocol == proto::Protocol::kHttp ||
       protocol == proto::Protocol::kHttps) &&
      rng_.NextDouble() < config_.sni_only_fraction / 0.66) {
    s.requires_sni = true;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "wp-%010llx",
                  static_cast<unsigned long long>(s.seed & 0xffffffffffull));
    s.sni_name = std::string(buf) + ".example.com";
  }
  return s;
}

void Internet::InsertService(SimService service) {
  const std::uint64_t packed = service.key.Pack();
  deaths_.push(DeathEvent{service.dies, packed, service.born});
  ++total_births_;
  auto [it, inserted] = services_.insert_or_assign(packed, std::move(service));
  if (it->second.requires_sni) name_index_[it->second.sni_name] = packed;
  if (birth_observer_) birth_observer_(it->second);
}

void Internet::RemoveService(const SimService& service) {
  services_.erase(service.key.Pack());
}

void Internet::Populate() {
  // --- ICS population: absolute counts per protocol -------------------------
  // population_weight for ICS protocols encodes the paper's validated global
  // count in millions (MODBUS 0.042 => 42K globally). Scale by the universe
  // fraction of IPv4 and the configured ics_scale.
  const double universe_fraction =
      static_cast<double>(config_.universe_size) / 4294967296.0;
  std::size_t ics_total = 0;
  for (proto::Protocol p : proto::IcsProtocols()) {
    const proto::ProtocolInfo& info = proto::GetInfo(p);
    const double expected = info.population_weight * 1e6 * universe_fraction *
                            config_.ics_scale;
    const std::uint64_t count = rng_.NextPoisson(expected);
    for (std::uint64_t i = 0; i < count; ++i) {
      // 70% of control systems sit in industrial blocks, the rest in
      // enterprise space; many are reachable via LTE-like churny links,
      // captured by the industrial lifetime setting.
      const NetworkType type = rng_.NextDouble() < 0.70
                                   ? NetworkType::kIndustrial
                                   : NetworkType::kEnterprise;
      // "Many control systems use non-standard ports" (§6.3): only some
      // sit on the IANA port.
      Port port;
      if (rng_.NextDouble() < config_.iana_conformance) {
        port = *proto::PrimaryPort(p);
      } else {
        port = port_model_.SamplePort(rng_);
      }
      for (int attempt = 0; attempt < 8; ++attempt) {
        ServiceKey key{SampleAddress(type, rng_), port, info.transport};
        if (services_.contains(key.Pack())) continue;
        const Duration life = SampleLifetime(type, rng_, /*length_biased=*/true);
        const Duration age{static_cast<std::int64_t>(
            rng_.NextDouble() * static_cast<double>(life.minutes))};
        SimService s = MakeService(key, p, now_ - age, life);
        s.requires_sni = false;
        InsertService(std::move(s));
        ++ics_total;
        break;
      }
    }
  }

  // --- general population ----------------------------------------------------
  const std::size_t general_target =
      config_.target_services > ics_total
          ? config_.target_services - ics_total
          : 0;
  std::array<double, 7> weights{};
  for (int i = 0; i < 7; ++i) {
    weights[static_cast<std::size_t>(i)] =
        PlacementWeight(static_cast<NetworkType>(i)) *
        (blocks_by_type_[static_cast<std::size_t>(i)].empty() ? 0.0 : 1.0);
  }
  for (std::size_t i = 0; i < general_target; ++i) {
    const NetworkType type =
        static_cast<NetworkType>(rng_.PickWeighted(weights));
    for (int attempt = 0; attempt < 8; ++attempt) {
      const Port port = port_model_.SamplePort(rng_);
      const proto::Protocol protocol = SampleProtocolForPort(port, rng_);
      ServiceKey key{SampleAddress(type, rng_), port,
                     proto::GetInfo(protocol).transport};
      if (services_.contains(key.Pack())) continue;
      const Duration life = SampleLifetime(type, rng_, /*length_biased=*/true);
      const Duration age{static_cast<std::int64_t>(
          rng_.NextDouble() * static_cast<double>(life.minutes))};
      InsertService(MakeService(key, protocol, now_ - age, life));
      break;
    }
  }

  // --- pseudo-service middleboxes -------------------------------------------
  // ~pseudo_host_fraction of populated hosts answer on every port.
  std::size_t host_estimate = services_.size() * 3 / 4;
  const std::size_t pseudo_count = static_cast<std::size_t>(
      static_cast<double>(host_estimate) * config_.pseudo_host_fraction);
  for (std::size_t i = 0; i < pseudo_count; ++i) {
    const NetworkType type = rng_.NextDouble() < 0.6 ? NetworkType::kHosting
                                                     : NetworkType::kCloud;
    const IPv4Address ip = SampleAddress(type, rng_);
    pseudo_hosts_.emplace(ip.value(), rng_.NextU64());
  }
}

void Internet::SpawnReplacement(const SimService& dead) {
  if (dead.honeypot) return;  // honeypot lifecycle is owned by the harness
  const NetworkBlock& old_block = plan_.BlockOf(dead.key.ip);
  const NetworkType type = old_block.type;
  const proto::ProtocolInfo& info = proto::GetInfo(dead.protocol);

  for (int attempt = 0; attempt < 8; ++attempt) {
    ServiceKey key;
    proto::Protocol protocol;
    if (info.is_ics) {
      // The device population is stable; churn moves it (DHCP/LTE) rather
      // than shrinking it, so the replacement keeps the protocol.
      protocol = dead.protocol;
      key.port = rng_.NextDouble() < config_.iana_conformance
                     ? *proto::PrimaryPort(protocol)
                     : port_model_.SamplePort(rng_);
    } else {
      key.port = port_model_.SamplePort(rng_);
      protocol = SampleProtocolForPort(key.port, rng_);
    }
    key.ip = SampleAddress(type, rng_);
    key.transport = proto::GetInfo(protocol).transport;
    if (services_.contains(key.Pack())) continue;
    InsertService(MakeService(key, protocol, now_,
                              SampleLifetime(type, rng_, false)));
    return;
  }
}

void Internet::AdvanceTo(Timestamp t) {
  assert(t >= now_);
  while (!deaths_.empty() && deaths_.top().when <= t) {
    const DeathEvent ev = deaths_.top();
    deaths_.pop();
    now_ = ev.when;
    auto it = services_.find(ev.packed_key);
    if (it == services_.end() || it->second.born != ev.born) continue;
    const SimService dead = it->second;
    services_.erase(it);
    SpawnReplacement(dead);
  }
  now_ = t;
}

bool Internet::BlockReachableFromPop(const NetworkBlock& block, int pop_id,
                                     Timestamp t) const {
  // Vantage-point gaps persist on the scale of routing events (about a
  // day), not per-probe — which is why Censys retries unresponsive services
  // "from the other PoPs over the following 24 hours" (§4.6) instead of
  // immediately retrying from the same one.
  const std::uint64_t epoch = static_cast<std::uint64_t>(t.minutes / 1440);
  return HashUnit(0x909A, block.id,
                  epoch * 131 + static_cast<std::uint64_t>(pop_id)) >=
         config_.pop_unreachable_rate;
}

bool Internet::BlockInOutage(const NetworkBlock& block, Timestamp t) const {
  const std::uint64_t day = static_cast<std::uint64_t>(t.minutes / 1440);
  if (HashUnit(0xD0, block.id, day) >= config_.outage_rate_per_day)
    return false;
  // The block has an outage today; compute its window.
  const double start_frac = HashUnit(0xD1, block.id, day);
  const double dur_frac = 0.25 + 1.5 * HashUnit(0xD2, block.id, day);
  const std::int64_t start =
      static_cast<std::int64_t>(day) * 1440 +
      static_cast<std::int64_t>(start_frac * 1440.0);
  const std::int64_t duration = static_cast<std::int64_t>(
      config_.outage_mean_hours * 60.0 * dur_frac);
  return t.minutes >= start && t.minutes < start + duration;
}

bool Internet::ScannerBlocked(const NetworkBlock& block,
                              const ScannerProfile& s, Timestamp t) const {
  const std::uint64_t week = static_cast<std::uint64_t>(t.minutes / 10080);
  const double aggressiveness = std::sqrt(std::max(0.01, s.probes_per_ip_day));
  const double concentration =
      std::sqrt(256.0 / std::max(1.0, s.source_pool_size));
  const double p =
      std::min(0.5, config_.blocking_sensitivity * aggressiveness * concentration);
  return HashUnit(0xB10C ^ s.scanner_id, block.id, week) < p;
}

bool Internet::Visible(const ProbeContext& ctx, IPv4Address ip, Timestamp t,
                       std::uint64_t probe_salt) const {
  if (ip.value() >= plan_.universe_size()) return false;
  const NetworkBlock& block = plan_.BlockOf(ip);
  if (block.type == NetworkType::kUnused) return true;  // dark, but routable
  if (BlockInOutage(block, t)) return false;
  if (!BlockReachableFromPop(block, ctx.pop_id, t)) return false;
  if (ctx.scanner != nullptr && ScannerBlocked(block, *ctx.scanner, t))
    return false;
  // Stateless per-probe loss: deterministic in (probe_salt, t) so repeated
  // probes at different times behave independently.
  const std::uint64_t salt = probe_salt ^ static_cast<std::uint64_t>(t.minutes);
  if (HashUnit(0x105E, ip.value(), salt) < config_.base_loss_rate) return false;
  return true;
}

bool Internet::L4Probe(const ProbeContext& ctx, ServiceKey key, Timestamp t) {
  ++probes_received_;
  if (!Visible(ctx, key.ip, t, key.Pack())) return false;
  if (key.transport == Transport::kTcp && pseudo_hosts_.contains(key.ip.value()))
    return true;
  const auto it = services_.find(key.Pack());
  return it != services_.end() && it->second.LiveAt(t);
}

std::optional<L7Session> Internet::ConnectL7(const ProbeContext& ctx,
                                             ServiceKey key, Timestamp t) {
  auto session = PeekL7(ctx, key, t);
  if (session.has_value() && session->service.honeypot) {
    NoteHoneypotContact(ctx, key, t);
  }
  return session;
}

std::optional<L7Session> Internet::PeekL7(const ProbeContext& ctx,
                                          ServiceKey key, Timestamp t) const {
  if (!Visible(ctx, key.ip, t, key.Pack() ^ 0x17)) return std::nullopt;

  if (key.transport == Transport::kTcp) {
    if (const auto pseudo = pseudo_hosts_.find(key.ip.value());
        pseudo != pseudo_hosts_.end()) {
      L7Session session;
      session.service.key = key;
      // Middleboxes serve one canned page identically on every port.
      session.service.protocol = proto::Protocol::kHttp;
      session.service.seed = pseudo->second;
      session.service.born = Timestamp{0};
      session.service.dies = kNever;
      session.service.pseudo = true;
      return session;
    }
  }

  const auto it = services_.find(key.Pack());
  if (it == services_.end() || !it->second.LiveAt(t)) return std::nullopt;

  const SimService& svc = it->second;
  L7Session session;
  session.service = svc;
  if (proto::GetInfo(svc.protocol).server_talks_first) {
    session.server_first_banner = proto::GenerateBanner(svc.protocol, svc.seed);
  }
  return session;
}

void Internet::NoteHoneypotContact(const ProbeContext& ctx, ServiceKey key,
                                   Timestamp t) {
  if (ctx.scanner == nullptr) return;
  honeypot_contacts_[key.Pack()].try_emplace(ctx.scanner->scanner_id, t);
}

void Internet::ForEachActiveService(
    Timestamp t, const std::function<void(const SimService&)>& fn) const {
  for (const auto& [packed, svc] : services_) {
    if (svc.LiveAt(t)) fn(svc);
  }
}

std::size_t Internet::ActiveServiceCount(Timestamp t) const {
  std::size_t n = 0;
  for (const auto& [packed, svc] : services_) {
    if (svc.LiveAt(t)) ++n;
  }
  return n;
}

const SimService* Internet::FindService(ServiceKey key, Timestamp t) const {
  const auto it = services_.find(key.Pack());
  if (it == services_.end() || !it->second.LiveAt(t)) return nullptr;
  return &it->second;
}

const SimService* Internet::FindByName(std::string_view name,
                                       Timestamp t) const {
  const auto it = name_index_.find(std::string(name));
  if (it == name_index_.end()) return nullptr;
  const auto svc = services_.find(it->second);
  if (svc == services_.end() || !svc->second.LiveAt(t) ||
      svc->second.sni_name != name) {
    return nullptr;
  }
  return &svc->second;
}

bool Internet::IsPseudoHost(IPv4Address ip) const {
  return pseudo_hosts_.contains(ip.value());
}

void Internet::ForEachPseudoHost(
    const std::function<void(IPv4Address)>& fn) const {
  for (const auto& [ip, seed] : pseudo_hosts_) fn(IPv4Address(ip));
}

void Internet::AddHoneypot(
    IPv4Address ip, std::span<const std::pair<Port, proto::Protocol>> listeners,
    Timestamp birth) {
  for (const auto& [port, protocol] : listeners) {
    ServiceKey key{ip, port, proto::GetInfo(protocol).transport};
    SimService s = MakeService(key, protocol, birth, Duration::Days(3650));
    s.honeypot = true;
    s.requires_sni = false;
    InsertService(std::move(s));
  }
}

std::optional<Timestamp> Internet::FirstContact(ServiceKey key,
                                                std::uint32_t scanner_id) const {
  const auto it = honeypot_contacts_.find(key.Pack());
  if (it == honeypot_contacts_.end()) return std::nullopt;
  const auto jt = it->second.find(scanner_id);
  if (jt == it->second.end()) return std::nullopt;
  return jt->second;
}

IPv4Address Internet::PickHoneypotAddress(Rng& rng) const {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const IPv4Address ip = SampleAddress(NetworkType::kCloud, rng);
    if (!pseudo_hosts_.contains(ip.value())) return ip;
  }
  return SampleAddress(NetworkType::kCloud, rng);
}

}  // namespace censys::simnet
