#include "simnet/blocks.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <numeric>

namespace censys::simnet {

std::string_view ToString(NetworkType t) {
  switch (t) {
    case NetworkType::kResidential: return "residential";
    case NetworkType::kCloud: return "cloud";
    case NetworkType::kEnterprise: return "enterprise";
    case NetworkType::kHosting: return "hosting";
    case NetworkType::kIndustrial: return "industrial";
    case NetworkType::kAcademic: return "academic";
    case NetworkType::kUnused: return "unused";
  }
  return "?";
}

std::string_view ToString(Country c) {
  switch (c) {
    case Country::kUS: return "US";
    case Country::kCN: return "CN";
    case Country::kDE: return "DE";
    case Country::kOther: return "other";
    default: return "?";
  }
}

namespace {

struct OrgNames {
  std::string_view prefix;
};

std::string MakeOrg(NetworkType t, Country c, std::uint32_t asn, Rng& rng) {
  static constexpr std::array<std::string_view, 7> kByType = {
      "Telecom", "Cloud", "Corp", "Hosting", "Utilities", "University",
      "Reserved"};
  std::string name = "AS" + std::to_string(asn) + " ";
  name += kByType[static_cast<std::size_t>(t)];
  name += "-";
  name += ToString(c);
  name += "-";
  name += std::to_string(rng.NextBelow(900) + 100);
  return name;
}

}  // namespace

BlockPlan::BlockPlan(const UniverseConfig& config)
    : universe_size_(config.universe_size) {
  Rng rng(SplitMix64(config.seed ^ 0xB10C));

  // Type weights (remainder unused/dark).
  const std::array<std::pair<NetworkType, double>, 7> type_mix = {{
      {NetworkType::kResidential, config.frac_residential},
      {NetworkType::kCloud, config.frac_cloud},
      {NetworkType::kEnterprise, config.frac_enterprise},
      {NetworkType::kHosting, config.frac_hosting},
      {NetworkType::kIndustrial, config.frac_industrial},
      {NetworkType::kAcademic, config.frac_academic},
      {NetworkType::kUnused,
       1.0 - config.frac_residential - config.frac_cloud -
           config.frac_enterprise - config.frac_hosting -
           config.frac_industrial - config.frac_academic},
  }};
  std::array<double, 7> type_weights;
  for (std::size_t i = 0; i < 7; ++i) type_weights[i] = type_mix[i].second;

  const std::array<double, 4> country_weights = {
      config.frac_us, config.frac_cn, config.frac_de,
      1.0 - config.frac_us - config.frac_cn - config.frac_de};

  // Carve the universe into blocks of varying size. Sizes scale with the
  // universe: between universe/4096 and universe/128 addresses per block,
  // rounded to powers of two (CIDR-aligned), which for the default 2^20
  // universe yields /24-like to /17-like blocks.
  std::uint32_t next_base = 0;
  std::uint32_t next_asn = 64500;
  std::uint32_t id = 0;
  while (next_base < universe_size_) {
    const int min_bits = 8;
    int max_bits = 13;
    const std::uint32_t remaining = universe_size_ - next_base;
    int bits = static_cast<int>(rng.NextInRange(min_bits, max_bits));
    // Respect alignment of the base address and remaining space.
    while ((std::uint32_t{1} << bits) > remaining) --bits;
    while (bits > 0 && (next_base & ((std::uint32_t{1} << bits) - 1)) != 0)
      --bits;
    const std::uint32_t size = std::uint32_t{1} << bits;

    NetworkBlock block;
    block.id = id++;
    block.cidr = Cidr(IPv4Address(next_base), 32 - bits);
    block.type = type_mix[rng.PickWeighted(type_weights)].first;
    block.country =
        static_cast<Country>(rng.PickWeighted(country_weights));
    block.asn = next_asn++;
    block.org = MakeOrg(block.type, block.country, block.asn, rng);
    block_start_.push_back(next_base);
    blocks_.push_back(std::move(block));
    next_base += size;
  }
}

const NetworkBlock& BlockPlan::BlockOf(IPv4Address ip) const {
  assert(ip.value() < universe_size_);
  auto it = std::upper_bound(block_start_.begin(), block_start_.end(),
                             ip.value());
  const std::size_t index =
      static_cast<std::size_t>(it - block_start_.begin()) - 1;
  return blocks_[index];
}

std::vector<const NetworkBlock*> BlockPlan::BlocksOfType(NetworkType t) const {
  std::vector<const NetworkBlock*> out;
  for (const NetworkBlock& b : blocks_) {
    if (b.type == t) out.push_back(&b);
  }
  return out;
}

std::uint64_t BlockPlan::AddressesOfType(NetworkType t) const {
  std::uint64_t total = 0;
  for (const NetworkBlock& b : blocks_) {
    if (b.type == t) total += b.cidr.size();
  }
  return total;
}

PortModel::PortModel(std::uint64_t seed, double zipf_s)
    : zipf_(kPortSpaceSize, zipf_s) {
  // Empirically popular ports get the top ranks, roughly in the order real
  // scan datasets report; the rest of the 65K space is a deterministic
  // shuffle so popularity decays smoothly with no special structure
  // (Appendix B figure 4).
  static constexpr std::array<Port, 40> kTopPorts = {
      80,   443,  7547, 22,   21,   25,   8080, 23,   3389, 53,
      445,  110,  8443, 143,  993,  995,  587,  8000, 5060, 161,
      3306, 8888, 2222, 5900, 139,  465,  1723, 81,   8081, 5901,
      2000, 5432, 6379, 389,  2082, 8088, 9200, 60000, 1900, 123,
  };
  rank_to_port_.resize(kPortSpaceSize);
  port_to_rank_.assign(kPortSpaceSize, 0);
  std::vector<bool> used(kPortSpaceSize, false);
  std::size_t rank = 0;
  for (Port p : kTopPorts) {
    rank_to_port_[rank++] = p;
    used[p] = true;
  }
  std::vector<Port> rest;
  rest.reserve(kPortSpaceSize - kTopPorts.size());
  for (std::uint32_t p = 0; p < kPortSpaceSize; ++p) {
    if (!used[p]) rest.push_back(static_cast<Port>(p));
  }
  // Fisher-Yates with the model's own stream.
  Rng rng(SplitMix64(seed ^ 0x9027));
  for (std::size_t i = rest.size(); i > 1; --i) {
    std::swap(rest[i - 1], rest[rng.NextBelow(i)]);
  }
  for (Port p : rest) rank_to_port_[rank++] = p;
  for (std::uint32_t r = 0; r < kPortSpaceSize; ++r) {
    port_to_rank_[rank_to_port_[r]] = r + 1;
  }
}

Port PortModel::SamplePort(Rng& rng) const {
  const std::uint64_t rank = zipf_.Sample(rng);
  return rank_to_port_[rank - 1];
}

std::uint32_t PortModel::RankOf(Port port) const {
  return port_to_rank_[port];
}

Port PortModel::PortAtRank(std::uint32_t rank) const {
  assert(rank >= 1 && rank <= kPortSpaceSize);
  return rank_to_port_[rank - 1];
}

std::vector<Port> PortModel::TopPorts(std::size_t n) const {
  std::vector<Port> out(rank_to_port_.begin(),
                        rank_to_port_.begin() + static_cast<long>(n));
  return out;
}

}  // namespace censys::simnet
