// The simulated Internet.
//
// Owns the live service population, advances churn, and answers probes.
// Scanners interact exclusively through ProbeContext-carrying calls so the
// visibility model (loss, outages, per-PoP reachability, rate-driven
// blocking) applies uniformly to every engine; evaluation harnesses use the
// ground-truth iteration API that real measurement studies lack — that is
// the point of reproducing the paper in simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/rng.h"
#include "core/types.h"
#include "proto/protocol.h"
#include "simnet/blocks.h"
#include "simnet/config.h"
#include "simnet/service.h"

namespace censys::simnet {

// Identity and behaviour of a scanning actor, used by the blocking model.
// Aggressive scanners from small source pools get blocked more (§2.2).
struct ScannerProfile {
  std::uint32_t scanner_id = 0;
  std::string name;
  // Average probes per public IP per day this scanner sends.
  double probes_per_ip_day = 1.0;
  // Number of source addresses the scanner spreads traffic over.
  double source_pool_size = 256.0;
};

struct ProbeContext {
  const ScannerProfile* scanner = nullptr;
  int pop_id = 0;  // vantage point index
};

// What an L7 session against a live service yields. This is the wire-level
// truth; the interrogation module turns it into a structured record. The
// session owns a snapshot of the service, so it stays valid across
// subsequent churn.
struct L7Session {
  SimService service;
  // Banner sent by the server immediately on connect ("" if it waits).
  std::string server_first_banner;
};

class Internet {
 public:
  explicit Internet(const UniverseConfig& config);

  // --- time ---------------------------------------------------------------
  // Processes service deaths/births up to `t`. Monotonic.
  void AdvanceTo(Timestamp t);
  Timestamp now() const { return now_; }

  // --- scanner-facing API ---------------------------------------------------
  // Stateless L4 probe: does anything answer on (ip, port, transport)?
  // Subject to loss, outages, reachability, and blocking. Pseudo hosts
  // answer on every port.
  bool L4Probe(const ProbeContext& ctx, ServiceKey key, Timestamp t);

  // Establishes an L7 session. Returns nullopt if the target is gone or
  // currently invisible to this scanner/PoP. Logs honeypot contact.
  std::optional<L7Session> ConnectL7(const ProbeContext& ctx, ServiceKey key,
                                     Timestamp t);

  // Side-effect-free ConnectL7: same visibility model and session, but no
  // honeypot-contact logging. Safe to call concurrently (between AdvanceTo
  // calls the population is immutable); the parallel interrogation stage
  // uses this and defers the contact log to its ordered commit via
  // NoteHoneypotContact.
  std::optional<L7Session> PeekL7(const ProbeContext& ctx, ServiceKey key,
                                  Timestamp t) const;

  // Records first-contact time for a honeypot service reached via PeekL7.
  void NoteHoneypotContact(const ProbeContext& ctx, ServiceKey key,
                           Timestamp t);

  // --- ground truth (evaluation only) --------------------------------------
  void ForEachActiveService(
      Timestamp t, const std::function<void(const SimService&)>& fn) const;
  std::size_t ActiveServiceCount(Timestamp t) const;
  // Truth lookup without any visibility filtering.
  const SimService* FindService(ServiceKey key, Timestamp t) const;
  // Resolves a web-property name to its service (DNS + SNI routing), or
  // nullptr if the name does not currently map to a live service.
  const SimService* FindByName(std::string_view name, Timestamp t) const;
  bool IsPseudoHost(IPv4Address ip) const;
  void ForEachPseudoHost(const std::function<void(IPv4Address)>& fn) const;
  std::size_t pseudo_host_count() const { return pseudo_hosts_.size(); }

  const BlockPlan& blocks() const { return plan_; }
  const PortModel& ports() const { return port_model_; }
  const UniverseConfig& config() const { return config_; }

  // --- honeypots (Table 5) --------------------------------------------------
  // Creates honeypot services at `ip` on the given (port, protocol) pairs,
  // live from `birth` onward.
  void AddHoneypot(IPv4Address ip,
                   std::span<const std::pair<Port, proto::Protocol>> listeners,
                   Timestamp birth);
  // First time `scanner_id` completed an L7 connection to the honeypot
  // service, or nullopt if never contacted.
  std::optional<Timestamp> FirstContact(ServiceKey key,
                                        std::uint32_t scanner_id) const;

  // Picks an address inside unused/dark space suitable for honeypot
  // placement ("deployed on Google Cloud Compute" => we use cloud blocks).
  IPv4Address PickHoneypotAddress(Rng& rng) const;

  // Observer invoked on every service birth (initial population included).
  // Used by the world harness to feed certificate-transparency logs with
  // newly issued certificates for name-addressed services.
  void SetBirthObserver(std::function<void(const SimService&)> observer) {
    birth_observer_ = std::move(observer);
  }

  // --- stats ---------------------------------------------------------------
  std::uint64_t total_births() const { return total_births_; }
  std::uint64_t probes_received() const { return probes_received_; }

 private:
  struct HostState {
    // Packed ports of live services on this host (non-pseudo hosts).
    std::vector<std::uint16_t> service_slots;
  };

  struct DeathEvent {
    Timestamp when;
    std::uint64_t packed_key;
    Timestamp born;  // validity check: entry is stale if service reborn
    bool operator>(const DeathEvent& o) const {
      return when.minutes > o.when.minutes;
    }
  };

  // Population synthesis.
  void Populate();
  SimService MakeService(ServiceKey key, proto::Protocol protocol,
                         Timestamp born, Duration lifetime);
  void InsertService(SimService service);
  void RemoveService(const SimService& service);
  void SpawnReplacement(const SimService& dead);

  // Generative sampling helpers.
  IPv4Address SampleAddress(NetworkType type, Rng& rng) const;
  proto::Protocol SampleProtocolForPort(Port port, Rng& rng) const;
  Duration SampleLifetime(NetworkType type, Rng& rng, bool length_biased);
  double MeanLifetimeDays(NetworkType type) const;

  // Visibility model, all deterministic hashes of (block, epoch, ...).
  bool BlockReachableFromPop(const NetworkBlock& block, int pop_id,
                             Timestamp t) const;
  bool BlockInOutage(const NetworkBlock& block, Timestamp t) const;
  bool ScannerBlocked(const NetworkBlock& block, const ScannerProfile& s,
                      Timestamp t) const;
  bool Visible(const ProbeContext& ctx, IPv4Address ip, Timestamp t,
               std::uint64_t probe_salt) const;

  UniverseConfig config_;
  BlockPlan plan_;
  PortModel port_model_;
  mutable Rng rng_;
  Timestamp now_;

  std::unordered_map<std::uint64_t, SimService> services_;  // by packed key
  std::unordered_map<std::string, std::uint64_t> name_index_;  // sni -> packed
  std::unordered_map<std::uint32_t, std::uint64_t> pseudo_hosts_;  // ip -> seed
  std::priority_queue<DeathEvent, std::vector<DeathEvent>, std::greater<>>
      deaths_;
  std::unordered_map<std::uint64_t, std::unordered_map<std::uint32_t, Timestamp>>
      honeypot_contacts_;  // packed key -> scanner_id -> first contact

  // Caches of per-type block lists for replacement sampling.
  std::vector<std::vector<const NetworkBlock*>> blocks_by_type_;

  std::function<void(const SimService&)> birth_observer_;
  std::uint64_t total_births_ = 0;
  mutable std::uint64_t probes_received_ = 0;
};

}  // namespace censys::simnet
