// Configuration of the simulated Internet universe.
//
// The defaults model a ~1/4096 sample of the IPv4 Internet (a /12-sized
// universe) with the service phenomena the paper describes: Zipf-like port
// diffusion (Appendix B), short cloud service lifespans (§2.2), pseudo-
// services that answer on every port (§6.1), transient outages and
// scanner blocking (§2.2 "Fractured Visibility"), and a tiny but security-
// critical ICS population (§6.3).
#pragma once

#include <cstdint>

#include "core/types.h"

namespace censys::simnet {

enum class NetworkType : std::uint8_t {
  kResidential,  // ISP pools; DHCP churn moves hosts between addresses
  kCloud,        // elastic; very short service lifespans; dense
  kEnterprise,   // stable, moderately dense
  kHosting,      // VPS providers; stable-ish, dense
  kIndustrial,   // ICS deployments; stable but often behind LTE with churn
  kAcademic,     // stable, sparse
  kUnused,       // dark space
};

std::string_view ToString(NetworkType t);

enum class Country : std::uint8_t { kUS, kCN, kDE, kOther, kCount };

std::string_view ToString(Country c);

struct UniverseConfig {
  std::uint64_t seed = 42;

  // Total address universe. Blocks are carved out of [0, universe_size).
  // The default is 2^20 addresses =~ a /12, i.e. a 1/4096 sample of IPv4.
  std::uint32_t universe_size = 1u << 20;

  // Target number of concurrently live services at steady state.
  std::uint32_t target_services = 150000;

  // Zipf exponent for port popularity (Appendix B: smooth decay, no knee).
  double port_zipf_s = 1.08;

  // Probability that a service on a well-known port actually speaks the
  // protocol IANA assigned to that port. The complement is "service
  // diffusion" (§2.2): arbitrary protocols on arbitrary ports.
  double iana_conformance = 0.62;

  // Fraction of hosts that are "pseudo-service" middleboxes answering on
  // every port with nearly identical services (paper filters hosts
  // responding on >20 ports; they are ~0.2% of hosts but dominate 65K
  // scans).
  double pseudo_host_fraction = 0.002;

  // Mean service lifetime by network type, in days. Short cloud lifetimes
  // drive the staleness/accuracy results of Table 2. The aggregate daily
  // death rate (~3-4%/day) is calibrated so a daily-refresh + 72 h-eviction
  // pipeline lands near the paper's 92% accuracy; the lognormal sigma
  // below still yields a heavy population of services living only hours
  // to days (§2.2 "Short Service Lifespans").
  double mean_lifetime_cloud_days = 15.0;
  double mean_lifetime_residential_days = 20.0;
  double mean_lifetime_enterprise_days = 250.0;
  double mean_lifetime_hosting_days = 90.0;
  double mean_lifetime_industrial_days = 120.0;
  double mean_lifetime_academic_days = 300.0;

  // Lifetimes are drawn log-normally around the mean with this sigma (in
  // log space); heavy tail matches observed service longevity mixes.
  double lifetime_sigma = 1.1;

  // Visibility model.
  double base_loss_rate = 0.02;          // per-probe stateless loss
  double pop_unreachable_rate = 0.015;   // P(block unreachable from a PoP per epoch)
  double outage_rate_per_day = 0.03;     // P(block has an outage on a day)
  double outage_mean_hours = 3.0;

  // Blocking: probability per epoch that a network blocks a scanner is
  // sensitivity * sqrt(probes_per_ip_day) * sqrt(256 / source_pool_size),
  // capped at 0.5. Calibrated so a Censys-like scanner (≈576 probes/IP/day
  // spread over ~1280 sources) is blocked by ~1.6% of networks while an
  // equally loud single-source scanner is blocked by a large fraction
  // (§2.2: "increased scanning leads to increased blocking").
  double blocking_sensitivity = 0.0015;

  // Country mix (fractions of blocks). Remainder is kOther.
  double frac_us = 0.30;
  double frac_cn = 0.12;
  double frac_de = 0.06;

  // Network type mix (fractions of allocated space).
  double frac_residential = 0.42;
  double frac_cloud = 0.18;
  double frac_enterprise = 0.16;
  double frac_hosting = 0.10;
  double frac_industrial = 0.015;
  double frac_academic = 0.045;
  // Remainder of the universe is unused dark space.

  // Share of services that are name-addressed web properties reachable
  // only with the right SNI/Host (the L4 port answers but the default page
  // is a CDN shell). These are the Web Property population (§4.3).
  double sni_only_fraction = 0.06;

  // Scale factor applied to ICS per-protocol absolute populations. 1.0
  // reproduces Table 4-shaped counts scaled by universe_size/2^32.
  double ics_scale = 1.0;
};

}  // namespace censys::simnet
