// A read replica: journal + read stack fed by shipped WAL records.
//
// A Follower owns a complete, WAL-less copy of the serving read path — an
// EventJournal, a passive WriteSide (required by ReadSide, never fed scan
// traffic), a ReadSide with its own ViewCache, a SearchIndex maintained
// incrementally per applied record, and an empty AnalyticsStore. It
// bootstraps from a leader snapshot (EncodeReplicaSnapshot), then tails
// shipments: duplicate prefixes are skipped, gaps and corrupt frames are
// NACKed for re-request, and every applied record advances the published
// staleness watermark (applied_lsn). "replicate.apply" faults fire per
// shipped record: kCrash throws fault::CrashException out of Apply — the
// SIGKILL stand-in; nothing here catches it — and any other mode stalls
// the remainder of the shipment for a later retry.
//
// Concurrency: Apply/Bootstrap run on the replication pump (one thread);
// read_side()/index()/analytics() serve concurrent readers through their
// own locks, exactly like the leader's read path. Kill() and applied_lsn()
// are safe from any thread. The object's address (and the addresses of its
// read stack) are stable across Kill/Bootstrap cycles, so a ServingFrontend
// bound to a follower survives its death and revival.
#pragma once

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <string_view>

#include "core/metrics.h"
#include "pipeline/read_side.h"
#include "pipeline/write_side.h"
#include "replicate/shipment.h"
#include "search/analytics.h"
#include "search/index.h"
#include "storage/journal.h"

namespace censys::replicate {

// FNV-1a over the journal's canonical ScanAll order — the cross-replica
// fidelity oracle: equal digests at equal watermarks mean byte-identical
// journaled state.
std::uint64_t JournalDigest(const storage::EventJournal& journal);

class Follower {
 public:
  struct Options {
    // Journal shape; must match the leader's snapshot cadence / tiering
    // (a follower with a different snapshot_every would journal different
    // snapshot rows and digests would diverge). wal.dir must stay empty.
    storage::EventJournal::Options journal{};
    bool enable_cache = true;
    // Maintain the follower's SearchIndex per applied record.
    bool maintain_search_index = true;
  };

  Follower(std::string name, Options options);

  Follower(const Follower&) = delete;
  Follower& operator=(const Follower&) = delete;

  // --- replication protocol ---------------------------------------------------
  // (Re-)initializes from a leader snapshot covering `lsn`: resets the
  // journal in place, rebuilds the search index, clears the view cache,
  // and starts serving. Returns false on a corrupt snapshot (the follower
  // stays down).
  bool Bootstrap(std::string_view snapshot, std::uint64_t lsn);

  enum class Ingest : std::uint8_t {
    kApplied = 0,    // every new record applied
    kDuplicate = 1,  // entirely at or below applied_lsn; nothing to do
    kGap = 2,        // prev_lsn ahead of applied_lsn: NACK, re-request
    kCorrupt = 3,    // a frame failed CRC/decode: valid prefix applied
    kStalled = 4,    // injected apply stall: prefix applied, retry later
    kDead = 5,       // follower is killed; shipment dropped
  };
  struct IngestResult {
    Ingest status = Ingest::kDuplicate;
    std::uint64_t applied_records = 0;
  };

  // Ingests one shipment. May throw fault::CrashException mid-apply
  // ("replicate.apply" kCrash): already-applied records stay applied —
  // each record applies atomically — and the harness Kill()s the follower.
  IngestResult Apply(const Shipment& shipment);

  // --- staleness watermark ----------------------------------------------------
  std::uint64_t applied_lsn() const {
    return applied_lsn_.load(std::memory_order_acquire);
  }
  std::uint64_t LagBehind(std::uint64_t leader_lsn) const {
    const std::uint64_t applied = applied_lsn();
    return leader_lsn > applied ? leader_lsn - applied : 0;
  }

  // --- lifecycle (chaos) ------------------------------------------------------
  bool serving() const { return serving_.load(std::memory_order_acquire); }
  // Simulated process death: stops accepting shipments and reads until the
  // next Bootstrap. The in-memory state is deliberately kept (a killed
  // process's memory is gone, but re-bootstrap overwrites everything —
  // keeping it lets tests assert the pre-crash prefix stayed consistent).
  void Kill() { serving_.store(false, std::memory_order_release); }

  // --- read stack -------------------------------------------------------------
  const std::string& name() const { return name_; }
  const storage::EventJournal& journal() const { return journal_; }
  const pipeline::ReadSide& read_side() const { return read_side_; }
  const search::SearchIndex& index() const { return index_; }
  const search::AnalyticsStore& analytics() const { return analytics_; }

  std::uint64_t Digest() const { return JournalDigest(journal_); }

  // --- accounting -------------------------------------------------------------
  std::uint64_t applied_records() const {
    return applied_records_.load(std::memory_order_relaxed);
  }
  std::uint64_t bootstraps() const {
    return bootstraps_.load(std::memory_order_relaxed);
  }
  std::uint64_t gap_nacks() const {
    return gap_nacks_.load(std::memory_order_relaxed);
  }
  std::uint64_t corrupt_shipments() const {
    return corrupt_shipments_.load(std::memory_order_relaxed);
  }

 private:
  void UpdateIndexFor(std::string_view entity);

  std::string name_;
  Options options_;

  storage::EventJournal journal_;
  pipeline::EventBus bus_;
  pipeline::WriteSide write_side_;
  pipeline::ReadSide read_side_;
  search::SearchIndex index_;
  search::AnalyticsStore analytics_;

  // Sorted so bootstrap's index wipe visits ids deterministically.
  std::set<std::string> indexed_ids_;

  std::atomic<std::uint64_t> applied_lsn_{0};
  std::atomic<bool> serving_{false};
  std::atomic<std::uint64_t> applied_records_{0};
  std::atomic<std::uint64_t> bootstraps_{0};
  std::atomic<std::uint64_t> gap_nacks_{0};
  std::atomic<std::uint64_t> corrupt_shipments_{0};
};

}  // namespace censys::replicate
