#include "replicate/shipment.h"

#include "core/crc32c.h"

namespace censys::replicate {
namespace {

constexpr std::size_t kFrameHeader = 8;  // u32 len + u32 crc

void PutU32Le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::uint32_t GetU32Le(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

}  // namespace

Shipment EncodeShipment(std::uint64_t prev_lsn,
                        const std::vector<storage::WalRecord>& records) {
  Shipment shipment;
  shipment.prev_lsn = prev_lsn;
  shipment.last_lsn = records.empty() ? prev_lsn : records.back().lsn;
  for (const storage::WalRecord& record : records) {
    const std::string payload = storage::EncodeWalPayload(record);
    PutU32Le(shipment.frames, static_cast<std::uint32_t>(payload.size()));
    PutU32Le(shipment.frames, core::Crc32c(payload));
    shipment.frames.append(payload);
  }
  return shipment;
}

DecodedShipment DecodeShipment(const Shipment& shipment) {
  DecodedShipment decoded;
  const std::string& data = shipment.frames;
  std::size_t offset = 0;
  while (offset + kFrameHeader <= data.size()) {
    const std::uint32_t len = GetU32Le(data.data() + offset);
    const std::uint32_t crc = GetU32Le(data.data() + offset + 4);
    if (offset + kFrameHeader + len > data.size()) break;  // torn tail
    const std::string_view payload(data.data() + offset + kFrameHeader, len);
    if (core::Crc32c(payload) != crc) {
      ++decoded.corrupt_frames;
      break;
    }
    const auto record = storage::DecodeWalPayload(payload);
    if (!record.has_value()) {
      ++decoded.corrupt_frames;
      break;
    }
    decoded.records.push_back(*record);
    offset += kFrameHeader + len;
  }
  decoded.truncated_bytes += data.size() - offset;
  return decoded;
}

}  // namespace censys::replicate
