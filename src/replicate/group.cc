#include "replicate/group.h"

#include <algorithm>

#include "core/fault.h"

namespace censys::replicate {

ReplicationGroup::ReplicationGroup(storage::EventJournal& leader)
    : ReplicationGroup(leader, Options()) {}

ReplicationGroup::ReplicationGroup(storage::EventJournal& leader,
                                   Options options)
    : leader_(leader), options_(std::move(options)) {
  if (options_.max_records_per_shipment == 0) {
    options_.max_records_per_shipment = 1;
  }
}

Follower& ReplicationGroup::AddFollower(std::string name) {
  Follower::Options fo = options_.follower;
  // Journal *content* knobs must match the leader or digests diverge
  // (snapshot cadence decides which snapshot rows exist). Shard count is
  // content-neutral and stays whatever the caller configured.
  fo.journal.snapshot_every = leader_.options().snapshot_every;
  fo.journal.auto_tier = leader_.options().auto_tier;
  followers_.push_back(
      std::make_unique<Follower>(std::move(name), std::move(fo)));
  return *followers_.back();
}

std::uint64_t ReplicationGroup::leader_lsn() const {
  return leader_.wal_enabled() ? leader_.wal()->last_lsn() : 0;
}

bool ReplicationGroup::BootstrapFollower(std::size_t i, std::string* error) {
  if (!leader_.wal_enabled()) {
    if (error != nullptr) *error = "replication leader has no WAL";
    return false;
  }
  std::string err;
  if (!leader_.wal()->Open(&err)) {
    if (error != nullptr) *error = err;
    return false;
  }
  const std::uint64_t lsn = leader_.wal()->last_lsn();
  const std::string snapshot = leader_.EncodeReplicaSnapshot(lsn);
  if (!followers_[i]->Bootstrap(snapshot, lsn)) {
    if (error != nullptr) {
      *error = "follower " + followers_[i]->name() + ": corrupt snapshot";
    }
    return false;
  }
  ++bootstraps_;
  bootstraps_metric_.Add();
  return true;
}

Follower::IngestResult ReplicationGroup::Deliver(Follower& follower,
                                                 const Shipment& shipment) {
  ++shipments_;
  shipments_metric_.Add();
  const Follower::IngestResult result = follower.Apply(shipment);
  shipped_records_ += result.applied_records;
  shipped_records_metric_.Add(result.applied_records);
  switch (result.status) {
    case Follower::Ingest::kGap:
    case Follower::Ingest::kCorrupt:
    case Follower::Ingest::kStalled:
      // The follower's watermark did not reach the shipment's end; the
      // next pump re-reads from there (the implicit resend).
      ++nacks_;
      nacks_metric_.Add();
      break;
    default:
      break;
  }
  return result;
}

bool ReplicationGroup::PumpFollower(std::size_t i, std::string* error) {
  Follower& f = *followers_[i];
  if (!f.serving()) return true;  // killed: nothing to ship
  if (!leader_.wal_enabled()) {
    if (error != nullptr) *error = "replication leader has no WAL";
    return false;
  }
  storage::WriteAheadLog* wal = leader_.wal();
  std::string err;
  if (!wal->Open(&err)) {
    if (error != nullptr) *error = err;
    return false;
  }
  const std::uint64_t end = wal->last_lsn();
  const std::uint64_t from = f.applied_lsn();
  if (from >= end) return true;  // caught up

  // Checkpoint pruning may have dropped the segments holding (from, ...]:
  // the tail can no longer serve this follower, so fall back to a fresh
  // snapshot bootstrap.
  const std::uint64_t oldest = wal->oldest_lsn();
  if (oldest != 0 && from + 1 < oldest) {
    return BootstrapFollower(i, error);
  }

  std::vector<storage::WalRecord> records;
  if (!wal->ReadTail(from, end, options_.max_records_per_shipment, &records,
                     &err) ||
      records.empty()) {
    // A segment vanished mid-read (pruning race) or the window closed:
    // re-bootstrap rather than stall forever.
    return BootstrapFollower(i, error);
  }
  Shipment shipment = EncodeShipment(from, records);

  // The link: one fault check per shipment.
  if (const auto fault = fault::Hit("replicate.ship")) {
    switch (fault->mode) {
      case fault::Mode::kErrorReturn:
      case fault::Mode::kCrash:
      default:
        // Lost in flight; the watermark stays put and the next pump
        // re-reads the same run.
        ++lost_;
        lost_metric_.Add();
        return true;
      case fault::Mode::kStall:
        // Slow link / slow replica: nothing arrives this round.
        ++stalled_;
        stalled_metric_.Add();
        return true;
      case fault::Mode::kBitFlip: {
        if (!shipment.frames.empty()) {
          const std::size_t bit = fault->bit % (shipment.frames.size() * 8);
          shipment.frames[bit / 8] ^= static_cast<char>(1u << (bit % 8));
        }
        ++corrupted_;
        corrupted_metric_.Add();
        break;
      }
      case fault::Mode::kTornWrite: {
        // Truncate mid-frame: at least one byte survives, at least one is
        // dropped, so the decoder sees a torn tail.
        const std::size_t keep = std::clamp<std::size_t>(
            static_cast<std::size_t>(
                fault->tear_frac *
                static_cast<double>(shipment.frames.size())),
            1, shipment.frames.empty() ? 1 : shipment.frames.size() - 1);
        shipment.frames.resize(keep);
        ++corrupted_;
        corrupted_metric_.Add();
        break;
      }
      case fault::Mode::kReorder: {
        // The successor run overtakes this shipment: the follower sees
        // the gap first and NACKs it, then the original lands.
        ++reordered_;
        reordered_metric_.Add();
        std::vector<storage::WalRecord> next_records;
        if (wal->ReadTail(shipment.last_lsn, end,
                          options_.max_records_per_shipment, &next_records,
                          &err) &&
            !next_records.empty()) {
          const Shipment overtaker =
              EncodeShipment(shipment.last_lsn, next_records);
          Deliver(f, overtaker);
          if (!f.serving()) return true;  // overtaker's apply crash-killed it
        }
        break;
      }
    }
  }

  Deliver(f, shipment);
  return true;
}

bool ReplicationGroup::PumpAll(std::string* error) {
  bool ok = true;
  for (std::size_t i = 0; i < followers_.size(); ++i) {
    if (!PumpFollower(i, error)) ok = false;
  }
  RefreshGauges();
  return ok;
}

bool ReplicationGroup::CatchUp(std::size_t i, int max_rounds,
                               std::string* error) {
  for (int round = 0; round < max_rounds; ++round) {
    if (followers_[i]->serving() &&
        followers_[i]->applied_lsn() >= leader_lsn()) {
      RefreshGauges();
      return true;
    }
    if (!PumpFollower(i, error)) return false;
  }
  RefreshGauges();
  return followers_[i]->serving() &&
         followers_[i]->applied_lsn() >= leader_lsn();
}

std::uint64_t ReplicationGroup::MaxLag() const {
  const std::uint64_t end = leader_lsn();
  std::uint64_t max_lag = 0;
  for (const auto& f : followers_) {
    if (!f->serving()) continue;
    max_lag = std::max(max_lag, f->LagBehind(end));
  }
  return max_lag;
}

void ReplicationGroup::RefreshGauges() {
  std::int64_t down = 0;
  for (const auto& f : followers_) {
    if (!f->serving()) ++down;
  }
  max_lag_metric_.Set(static_cast<std::int64_t>(MaxLag()));
  followers_down_metric_.Set(down);
}

void ReplicationGroup::BindMetrics(metrics::Registry* registry) {
  shipments_metric_ =
      metrics::BindCounter(registry, "censys.replicate.shipments");
  shipped_records_metric_ =
      metrics::BindCounter(registry, "censys.replicate.shipped_records");
  lost_metric_ = metrics::BindCounter(registry, "censys.replicate.ship_lost");
  corrupted_metric_ =
      metrics::BindCounter(registry, "censys.replicate.ship_corrupt");
  reordered_metric_ =
      metrics::BindCounter(registry, "censys.replicate.ship_reordered");
  stalled_metric_ =
      metrics::BindCounter(registry, "censys.replicate.ship_stalled");
  nacks_metric_ = metrics::BindCounter(registry, "censys.replicate.nacks");
  bootstraps_metric_ =
      metrics::BindCounter(registry, "censys.replicate.bootstraps");
  max_lag_metric_ = metrics::BindGauge(registry, "censys.replicate.max_lag");
  followers_down_metric_ =
      metrics::BindGauge(registry, "censys.replicate.followers_down");
}

}  // namespace censys::replicate
