// WAL shipment wire format (leader -> follower).
//
// A shipment is one contiguous run of leader WAL records, re-framed with
// the same [u32 len][u32 crc32c(payload)][payload] layout the on-disk log
// uses, covering (prev_lsn, last_lsn]. The frames travel a simulated link
// that can lose, reorder, corrupt, or truncate them ("replicate.ship"
// fault point, armed by the chaos tests), so the decoder validates every
// frame and stops at the first torn or corrupt one — the valid prefix is
// still usable, exactly like a torn log tail. The follower applies a
// shipment only when prev_lsn <= its applied LSN and the records chain
// contiguously; anything else is NACKed and re-requested.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/wal.h"

namespace censys::replicate {

struct Shipment {
  std::uint64_t prev_lsn = 0;  // the LSN this run extends
  std::uint64_t last_lsn = 0;  // LSN of the last framed record
  std::string frames;          // CRC32C-framed record payloads
};

// Frames `records` (which must be contiguous, starting at prev_lsn + 1)
// into a shipment.
Shipment EncodeShipment(std::uint64_t prev_lsn,
                        const std::vector<storage::WalRecord>& records);

struct DecodedShipment {
  std::vector<storage::WalRecord> records;  // the valid prefix
  std::uint64_t corrupt_frames = 0;   // 1 when a bad frame cut the decode
  std::uint64_t truncated_bytes = 0;  // bytes dropped after the cut
};

// Validates and decodes; never throws. A CRC/decode failure or torn tail
// ends the decode, reported via corrupt_frames / truncated_bytes.
DecodedShipment DecodeShipment(const Shipment& shipment);

}  // namespace censys::replicate
