#include "replicate/follower.h"

#include "core/fault.h"

namespace censys::replicate {

std::uint64_t JournalDigest(const storage::EventJournal& journal) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](std::string_view s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
  };
  journal.ScanAll([&](std::string_view key, std::string_view value) {
    mix(key);
    mix(value);
    return true;
  });
  return h;
}

namespace {

storage::EventJournal::Options WithoutWal(
    storage::EventJournal::Options options) {
  // Followers are WAL-less by design: durability lives on the leader, and
  // a follower that lost its memory re-bootstraps from a snapshot.
  options.wal = storage::WriteAheadLog::Options{};
  return options;
}

}  // namespace

Follower::Follower(std::string name, Options options)
    : name_(std::move(name)),
      options_(std::move(options)),
      journal_(WithoutWal(options_.journal)),
      write_side_(journal_, bus_),
      read_side_(journal_, write_side_) {
  if (options_.enable_cache) read_side_.EnableCache();
}

bool Follower::Bootstrap(std::string_view snapshot, std::uint64_t lsn) {
  serving_.store(false, std::memory_order_release);
  // Wipe the previous incarnation's index entries before the journal
  // resets underneath them.
  for (const std::string& id : indexed_ids_) index_.Remove(id);
  indexed_ids_.clear();
  if (read_side_.cache() != nullptr) read_side_.cache()->Clear();
  if (!journal_.LoadReplicaSnapshot(snapshot, lsn)) {
    applied_lsn_.store(0, std::memory_order_release);
    return false;
  }
  if (options_.maintain_search_index) {
    journal_.ForEachEntity(
        [&](std::string_view id, const storage::FieldMap& fields) {
          if (fields.empty()) return;
          index_.Index(id, fields);
          indexed_ids_.insert(std::string(id));
        });
  }
  applied_lsn_.store(lsn, std::memory_order_release);
  bootstraps_.fetch_add(1, std::memory_order_relaxed);
  serving_.store(true, std::memory_order_release);
  return true;
}

Follower::IngestResult Follower::Apply(const Shipment& shipment) {
  IngestResult result;
  if (!serving()) {
    result.status = Ingest::kDead;
    return result;
  }
  std::uint64_t applied = applied_lsn_.load(std::memory_order_relaxed);
  if (shipment.last_lsn <= applied) {
    result.status = Ingest::kDuplicate;
    return result;
  }
  if (shipment.prev_lsn > applied) {
    // The run starts past our watermark: an earlier shipment was lost or
    // overtaken. NACK so the shipper re-reads from applied_lsn.
    gap_nacks_.fetch_add(1, std::memory_order_relaxed);
    result.status = Ingest::kGap;
    return result;
  }

  const DecodedShipment decoded = DecodeShipment(shipment);
  result.status = Ingest::kApplied;
  for (const storage::WalRecord& record : decoded.records) {
    if (record.lsn <= applied) continue;  // duplicate prefix: already applied
    if (record.lsn != applied + 1) {
      // Records must chain contiguously; a hole inside the run means the
      // shipment is not trustworthy past this point.
      corrupt_shipments_.fetch_add(1, std::memory_order_relaxed);
      result.status = Ingest::kCorrupt;
      return result;
    }
    if (const auto fault = fault::Hit("replicate.apply")) {
      if (fault->mode == fault::Mode::kCrash) {
        // Mid-apply process death. The applied prefix stays applied (each
        // record applies atomically under its shard lock); the harness
        // Kill()s us and later re-bootstraps.
        throw fault::CrashException{"replicate.apply"};
      }
      // Any other mode: the apply loop stalls; the rest of the shipment
      // is retried on a later pump.
      result.status = Ingest::kStalled;
      return result;
    }
    journal_.ApplyReplicated(record);
    if (options_.maintain_search_index) UpdateIndexFor(record.entity);
    applied = record.lsn;
    applied_lsn_.store(applied, std::memory_order_release);
    applied_records_.fetch_add(1, std::memory_order_relaxed);
    ++result.applied_records;
  }
  if (decoded.corrupt_frames > 0) {
    // The valid prefix applied; the cut tail must be re-shipped.
    corrupt_shipments_.fetch_add(1, std::memory_order_relaxed);
    result.status = Ingest::kCorrupt;
  }
  return result;
}

void Follower::UpdateIndexFor(std::string_view entity) {
  const auto snap = journal_.SnapshotState(entity);
  if (!snap.has_value() || snap->fields.empty()) {
    if (indexed_ids_.erase(std::string(entity)) > 0) index_.Remove(entity);
    return;
  }
  index_.Index(entity, snap->fields);
  indexed_ids_.insert(std::string(entity));
}

}  // namespace censys::replicate
