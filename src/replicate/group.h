// Leader-side replication: snapshot bootstrap + WAL tail shipping over a
// fault-injectable link.
//
// A ReplicationGroup wraps the leader's EventJournal (which must have a
// WAL — shipping reads the durable log, never leader memory) and a set of
// Followers. Shipping is pull-model and self-healing: each pump reads the
// leader tail past the follower's applied LSN (WriteAheadLog::ReadTail,
// read-only) and delivers it as one Shipment; a lost, stalled, corrupt, or
// overtaken shipment simply leaves the follower's watermark where it was,
// so the next pump re-reads from there — the NACK/resend loop needs no
// retransmit queue. When checkpoint pruning has dropped segments below a
// lagging follower's watermark, the pump falls back to a fresh snapshot
// bootstrap instead.
//
// The "replicate.ship" fault point fires once per shipment on the link:
//   kErrorReturn  shipment lost in flight
//   kStall        slow link / slow replica: nothing arrives this round
//   kBitFlip      one bit of the framed run flips (CRC catches it)
//   kTornWrite    the shipment arrives truncated mid-frame
//   kReorder      the successor run overtakes this shipment (the follower
//                 sees the gap first and NACKs)
//
// Threading: Pump*/Bootstrap*/AddFollower run on one thread, quiescent
// with leader appends (the engine's command thread between ticks, or the
// chaos harness's driver loop). Follower read stacks serve concurrently
// throughout. Apply-side crashes (fault::CrashException) propagate out of
// PumpFollower — nothing in src/ catches the SIGKILL stand-in.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "replicate/follower.h"
#include "storage/journal.h"

namespace censys::replicate {

class ReplicationGroup {
 public:
  struct Options {
    // Records per shipment; small values exercise the gap/NACK machinery,
    // large values amortize framing.
    std::size_t max_records_per_shipment = 64;
    // Shape of new followers. Journal content knobs (snapshot cadence,
    // tiering) are overridden from the leader so digests can match; shard
    // count and cache/index toggles are honored as given.
    Follower::Options follower{};
  };

  explicit ReplicationGroup(storage::EventJournal& leader);
  ReplicationGroup(storage::EventJournal& leader, Options options);

  ReplicationGroup(const ReplicationGroup&) = delete;
  ReplicationGroup& operator=(const ReplicationGroup&) = delete;

  // Adds a (not yet bootstrapped) follower; the reference stays valid for
  // the group's lifetime.
  Follower& AddFollower(std::string name);
  std::size_t size() const { return followers_.size(); }
  Follower& follower(std::size_t i) { return *followers_[i]; }
  const Follower& follower(std::size_t i) const { return *followers_[i]; }

  // The leader's last durable LSN (the replication high-water mark).
  std::uint64_t leader_lsn() const;

  // Snapshots the leader at its current durable LSN and (re-)bootstraps
  // follower i from it. Quiescent-point only.
  bool BootstrapFollower(std::size_t i, std::string* error);

  // One shipping round for follower i: at most one shipment (plus the
  // overtaker a kReorder fault injects). Killed followers are skipped.
  // Returns false on leader-side read errors that bootstrap could not
  // repair; may propagate fault::CrashException from the apply path.
  bool PumpFollower(std::size_t i, std::string* error);

  // One shipping round for every follower; refreshes the lag gauges.
  bool PumpAll(std::string* error);

  // Pumps follower i until it reaches the leader LSN or max_rounds pass.
  // Returns true when caught up.
  bool CatchUp(std::size_t i, int max_rounds, std::string* error);

  // Max LagBehind(leader_lsn()) across serving followers.
  std::uint64_t MaxLag() const;

  // --- accounting -------------------------------------------------------------
  std::uint64_t shipments() const { return shipments_; }
  std::uint64_t shipped_records() const { return shipped_records_; }
  std::uint64_t lost() const { return lost_; }
  std::uint64_t corrupted() const { return corrupted_; }
  std::uint64_t reordered() const { return reordered_; }
  std::uint64_t stalled() const { return stalled_; }
  std::uint64_t nacks() const { return nacks_; }
  std::uint64_t bootstraps() const { return bootstraps_; }

  // Registers censys.replicate.* instruments.
  void BindMetrics(metrics::Registry* registry);

 private:
  Follower::IngestResult Deliver(Follower& follower, const Shipment& shipment);
  void RefreshGauges();

  storage::EventJournal& leader_;
  Options options_;
  // unique_ptr so follower addresses survive vector growth — frontends
  // and routers hold pointers into them.
  std::vector<std::unique_ptr<Follower>> followers_;

  // Pump-thread-only accounting (see the threading contract above).
  std::uint64_t shipments_ = 0;
  std::uint64_t shipped_records_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t reordered_ = 0;
  std::uint64_t stalled_ = 0;
  std::uint64_t nacks_ = 0;
  std::uint64_t bootstraps_ = 0;

  metrics::CounterHandle shipments_metric_;
  metrics::CounterHandle shipped_records_metric_;
  metrics::CounterHandle lost_metric_;
  metrics::CounterHandle corrupted_metric_;
  metrics::CounterHandle reordered_metric_;
  metrics::CounterHandle stalled_metric_;
  metrics::CounterHandle nacks_metric_;
  metrics::CounterHandle bootstraps_metric_;
  metrics::GaugeHandle max_lag_metric_;
  metrics::GaugeHandle followers_down_metric_;
};

}  // namespace censys::replicate
