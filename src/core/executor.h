// A fixed-size thread pool with a batch ParallelFor API.
//
// This is the concurrency substrate of the staged tick pipeline: the engine
// fans the L7 interrogation stage out across workers while discovery and
// commit stay serial, the way the production system pipelines ZMap-style
// discovery into parallel protocol scanners (§4.1–4.2).
//
// `threads = 0` is the single-threaded fallback: ParallelFor runs every
// index inline, in order, on the calling thread. Because pipeline stages
// only ever hand the executor *pure* tasks (results land in per-index
// slots; all side effects are committed serially afterwards, in sequence
// order), a run with threads = N is bit-identical to threads = 0 — tests
// assert this on the event journal.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "core/thread_safety.h"

namespace censys {

// Concurrency: all batch state (current fn, index cursor, completion count,
// epoch, stop flag) is guarded by mu_; workers and the calling thread rendez-
// vous on the two condition variables under that same mutex. ParallelFor is
// a single-caller primitive — two concurrent callers would share one batch.
class Executor {
 public:
  // Spawns `threads` workers; 0 means inline execution (no threads at all).
  explicit Executor(int threads);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  // Runs fn(0) .. fn(n-1), blocking until all complete. The calling thread
  // participates, so n tasks never wait behind an idle caller. Tasks must
  // not submit nested ParallelFor calls on the same executor. If any task
  // throws, the first exception (by completion order) is rethrown after
  // the batch drains; the remaining tasks still run.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  // Asynchronously schedules fn(0) .. fn(thread_count()-1), one invocation
  // per worker thread, without the calling thread participating — the
  // caller keeps running (the tick pipeline's commit stage drains results
  // while workers stream jobs). `fn` is copied into the executor, so a
  // temporary is fine; captured references must stay alive until
  // JoinBroadcast returns. No-op with zero workers (the caller then runs
  // the work inline itself). At most one broadcast may be outstanding, and
  // ParallelFor must not be called while one is.
  void Broadcast(const std::function<void(std::size_t)>& fn);

  // Blocks until the outstanding Broadcast (if any) completes; rethrows the
  // first worker exception.
  void JoinBroadcast();

 private:
  void WorkerLoop();
  // Claims indices from batch `epoch` until it is exhausted or superseded.
  // `fn` is dereferenced only for indices claimed while the epoch is still
  // current, which is what keeps a late-waking worker off a stale batch.
  void RunBatch(const std::function<void(std::size_t)>* fn,
                std::uint64_t epoch);

  std::vector<std::thread> workers_;

  core::Mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new batch
  std::condition_variable done_cv_;   // caller waits for batch completion
  // Current batch.
  const std::function<void(std::size_t)>* fn_ CENSYS_GUARDED_BY(mu_) = nullptr;
  // Owned copy of an asynchronous Broadcast's function: the caller's
  // object may be a temporary that dies before the workers finish.
  std::function<void(std::size_t)> broadcast_fn_ CENSYS_GUARDED_BY(mu_);
  std::size_t batch_size_ CENSYS_GUARDED_BY(mu_) = 0;
  std::size_t next_index_ CENSYS_GUARDED_BY(mu_) = 0;
  std::size_t completed_ CENSYS_GUARDED_BY(mu_) = 0;
  // Bumped per batch so workers notice new work.
  std::uint64_t epoch_ CENSYS_GUARDED_BY(mu_) = 0;
  std::exception_ptr error_ CENSYS_GUARDED_BY(mu_);
  bool stopping_ CENSYS_GUARDED_BY(mu_) = false;
  // Caller-thread-only flag: a Broadcast batch is outstanding.
  bool broadcast_pending_ = false;
};

}  // namespace censys
