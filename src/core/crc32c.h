// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the WAL's record checksum.
//
// Chosen over plain CRC32 for the same reason iSCSI (RFC 3720) and the
// Bigtable/LevelDB family chose it: better error-detection properties for
// the short-to-medium records a journal writes, and a well-known set of
// published test vectors (tests/core_test.cc checks the RFC 3720 ones).
// Software implementation: slicing-by-8 on little-endian hosts, a plain
// byte-at-a-time table everywhere else. No CPU-feature dispatch — determinism
// and portability beat the last 2x here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace censys::core {

// CRC32C of `data` (the standard whole-buffer form: init 0xFFFFFFFF,
// final xor — "123456789" hashes to 0xE3069283).
std::uint32_t Crc32c(std::string_view data);

// Streaming form: extends `crc` (a previous return value, or 0 to start)
// over `n` more bytes. Crc32c(a + b) == Crc32cExtend(Crc32c(a), b).
std::uint32_t Crc32cExtend(std::uint32_t crc, const void* data,
                           std::size_t n);

}  // namespace censys::core
