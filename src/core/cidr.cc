#include "core/cidr.h"

#include <algorithm>
#include <charconv>

namespace censys {

std::optional<Cidr> Cidr::Parse(std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto base = IPv4Address::Parse(text.substr(0, slash));
  if (!base) return std::nullopt;
  const std::string_view len_text = text.substr(slash + 1);
  int len = -1;
  auto [next, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), len);
  if (ec != std::errc() || next != len_text.data() + len_text.size())
    return std::nullopt;
  if (len < 0 || len > 32) return std::nullopt;
  return Cidr(*base, len);
}

std::string Cidr::ToString() const {
  return base_.ToString() + "/" + std::to_string(prefix_len_);
}

void CidrSet::Insert(const Cidr& cidr) {
  const std::uint64_t first = cidr.base().value();
  const std::uint64_t last = first + cidr.size() - 1;

  // Find the insertion window: all ranges that overlap or touch [first,last].
  auto lo = std::lower_bound(
      ranges_.begin(), ranges_.end(), first,
      [](const Range& r, std::uint64_t v) { return r.last + 1 < v; });
  auto hi = std::upper_bound(
      lo, ranges_.end(), last,
      [](std::uint64_t v, const Range& r) { return v + 1 < r.first; });

  Range merged{first, last};
  if (lo != hi) {
    merged.first = std::min(merged.first, lo->first);
    merged.last = std::max(merged.last, std::prev(hi)->last);
  }
  auto pos = ranges_.erase(lo, hi);
  ranges_.insert(pos, merged);
}

bool CidrSet::Contains(IPv4Address a) const {
  const std::uint64_t v = a.value();
  auto it = std::lower_bound(
      ranges_.begin(), ranges_.end(), v,
      [](const Range& r, std::uint64_t x) { return r.last < x; });
  return it != ranges_.end() && it->first <= v;
}

std::uint64_t CidrSet::AddressCount() const {
  std::uint64_t total = 0;
  for (const Range& r : ranges_) total += r.last - r.first + 1;
  return total;
}

}  // namespace censys
