// Span-based flight recorder for the tick pipeline.
//
// Every instrumented stage opens a scoped span via TRACE_SPAN(category,
// name); spans land in per-thread ring buffers of fixed capacity (newest
// spans win on wraparound), and Dump() drains all rings into Chrome
// trace-event JSON loadable in chrome://tracing or Perfetto. The per-span
// hot path is lock-free: a thread writes only its own ring and publishes
// each slot with one release store, so worker threads trace concurrently
// without contention and TSan stays clean.
//
// Time comes exclusively from WallTimer (core/clock.h), the tree's one
// sanctioned real-time source, and flows only into span timestamps and
// durations — never into simulation state. A traced run therefore produces
// a byte-identical journal digest and identical search results to an
// untraced run (asserted by trace_test's determinism probe).
//
// Build gating: with -DCENSYSIM_TRACE=OFF the TRACE_SPAN macros expand to
// nothing (a static_assert in trace_test proves they are constexpr-empty)
// and this header provides inert stubs so call sites compile unchanged.
// With tracing compiled in, recording is still off until armed: set the
// CENSYSIM_TRACE_FILE environment variable (arms at startup, dumps there
// at process exit) or call trace::SetEnabled(true) / trace::Dump(path).
//
// Category and name must be string literals (or otherwise outlive the
// recorder): rings store the pointers. Dynamic context goes through
// SetArg, which copies into a fixed-size slot field.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace censys::trace {

// One drained span, as handed to export. start/duration are microseconds
// since the recorder's process-start epoch.
struct SpanView {
  const char* category = nullptr;
  const char* name = nullptr;
  std::uint32_t thread_id = 0;
  double start_us = 0;
  double duration_us = 0;
  std::string_view arg_key;
  std::string_view arg_value;
};

struct Stats {
  std::uint64_t recorded = 0;  // spans ever recorded (including overwritten)
  std::uint64_t dropped = 0;   // spans lost to ring wraparound
  std::uint32_t threads = 0;   // rings registered (threads that traced)
};

}  // namespace censys::trace

#if defined(CENSYSIM_TRACE)

namespace censys::trace {

inline constexpr bool kCompiledIn = true;
// Spans each thread's ring retains; older spans are overwritten.
inline constexpr std::size_t kRingCapacity = 8192;
inline constexpr std::size_t kMaxArgKey = 15;    // + NUL
inline constexpr std::size_t kMaxArgValue = 47;  // + NUL; longer args truncate

// Microseconds since the process-wide trace epoch (a WallTimer created on
// first use).
double NowMicros();

// Arms/disarms recording. Disarmed spans cost one relaxed atomic load.
void SetEnabled(bool enabled);
bool Enabled();

// Drains every thread ring into Chrome trace-event JSON at `path`
// (overwrites). Call at a quiescent point — the exporter reads rings other
// threads own. Returns false with `error` set on I/O failure.
bool Dump(const std::string& path, std::string* error);

// The same JSON as a string (tests; avoids file I/O).
std::string DumpToString();

// Visits every retained span, oldest-first per thread (test hook).
void ForEachSpan(const std::function<void(const SpanView&)>& fn);

Stats GetStats();

// Zeroes all rings and counters. Callers must be quiescent (no thread mid-
// span); rings stay registered, so recording threads keep their buffers.
void ResetForTest();

// Records a completed span. Category/name must have static storage
// duration; the arg strings are copied (and truncated to the slot size).
void RecordSpan(const char* category, const char* name, double start_us,
                double duration_us, std::string_view arg_key,
                std::string_view arg_value);

// RAII span: stamps start on construction, records on destruction.
// Constructing while disarmed is free apart from the Enabled() load; a
// span that starts armed records even if tracing is disarmed mid-scope
// (rings are bounded, so late records are harmless).
class ScopedSpan {
 public:
  ScopedSpan(const char* category, const char* name)
      : category_(category), name_(name), armed_(Enabled()) {
    if (armed_) start_us_ = NowMicros();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (armed_) {
      RecordSpan(category_, name_, start_us_, NowMicros() - start_us_,
                 std::string_view(key_, key_len_),
                 std::string_view(value_, value_len_));
    }
  }

  // Attaches one key/value arg (last call wins); value is truncated to the
  // slot size. Safe to call on a disarmed span (no-op).
  void SetArg(const char* key, std::string_view value) {
    if (!armed_) return;
    key_len_ = Copy(key_, sizeof(key_) - 1, key);
    value_len_ = Copy(value_, sizeof(value_) - 1, value);
  }

 private:
  static std::size_t Copy(char* dst, std::size_t cap, std::string_view src) {
    const std::size_t n = src.size() < cap ? src.size() : cap;
    for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
    return n;
  }

  const char* category_;
  const char* name_;
  bool armed_;
  double start_us_ = 0;
  char key_[kMaxArgKey + 1] = {};
  char value_[kMaxArgValue + 1] = {};
  std::size_t key_len_ = 0;
  std::size_t value_len_ = 0;
};

}  // namespace censys::trace

#define CENSYS_TRACE_CONCAT2(a, b) a##b
#define CENSYS_TRACE_CONCAT(a, b) CENSYS_TRACE_CONCAT2(a, b)
// Unnamed scoped span covering the rest of the enclosing block.
#define TRACE_SPAN(category, name)                                    \
  ::censys::trace::ScopedSpan CENSYS_TRACE_CONCAT(censys_trace_span_, \
                                                  __LINE__)(category, name)
// Named scoped span, for sites that attach args (span.SetArg(...)).
#define TRACE_SPAN_VAR(var, category, name) \
  ::censys::trace::ScopedSpan var(category, name)

#else  // !CENSYSIM_TRACE — every entry point folds to nothing.

namespace censys::trace {

inline constexpr bool kCompiledIn = false;
inline constexpr std::size_t kRingCapacity = 0;

constexpr double NowMicros() { return 0; }
constexpr void SetEnabled(bool) {}
constexpr bool Enabled() { return false; }
inline bool Dump(const std::string&, std::string* error) {
  if (error != nullptr) *error = "tracing compiled out (CENSYSIM_TRACE=OFF)";
  return false;
}
inline std::string DumpToString() { return {}; }
inline void ForEachSpan(const std::function<void(const SpanView&)>&) {}
constexpr Stats GetStats() { return {}; }
constexpr void ResetForTest() {}
constexpr void RecordSpan(const char*, const char*, double, double,
                          std::string_view, std::string_view) {}

// Literal-type stub: TRACE_SPAN_VAR declarations and SetArg calls compile
// away entirely (trace_test static_asserts this in a constexpr context).
class ScopedSpan {
 public:
  constexpr ScopedSpan() = default;
  constexpr ScopedSpan(const char*, const char*) {}
  constexpr void SetArg(const char*, std::string_view) const {}
};

}  // namespace censys::trace

#define TRACE_SPAN(category, name)
#define TRACE_SPAN_VAR(var, category, name) \
  [[maybe_unused]] constexpr ::censys::trace::ScopedSpan var

#endif  // CENSYSIM_TRACE
