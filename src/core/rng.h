// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in censysim — population synthesis, churn,
// packet loss, scan jitter — flows from a single seed through these
// generators, so every experiment is exactly reproducible. We implement
// xoshiro256** (Blackman & Vigna) seeded via splitmix64, the combination
// recommended by its authors, rather than <random> engines whose stream is
// not guaranteed stable across standard library implementations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace censys {

// splitmix64: used for seeding and for stateless hashing of ids to
// per-entity random streams.
constexpr std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed) { Seed(seed); }

  void Seed(std::uint64_t seed);

  std::uint64_t NextU64();

  // Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  bool Bernoulli(double p) { return NextDouble() < p; }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  // Exponential with the given mean (> 0).
  double NextExponential(double mean);

  // Standard normal via Marsaglia polar method.
  double NextNormal(double mean = 0.0, double stddev = 1.0);

  // Pareto (power-law) sample with scale x_m and shape alpha.
  double NextPareto(double x_m, double alpha);

  // Geometric number of failures before first success, p in (0, 1].
  std::uint64_t NextGeometric(double p);

  // Poisson-distributed count with the given mean (inversion for small
  // means, normal approximation for large).
  std::uint64_t NextPoisson(double mean);

  // Picks an index in [0, weights.size()) proportionally to weights.
  std::size_t PickWeighted(std::span<const double> weights);

  // Derives an independent child generator; used to give each simulated
  // entity its own stream so iteration order never changes outcomes.
  Rng Fork(std::uint64_t stream_id) const;

 private:
  std::uint64_t s_[4] = {};
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

// Zipf-like sampler over ranks 1..n with exponent s, using the classic
// rejection-inversion method (Hörmann & Derflinger). Port popularity in the
// simulated Internet follows this distribution (paper Appendix B: "a smoothly
// decaying distribution; no cut-off").
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double s);

  // Returns a rank in [1, n].
  std::uint64_t Sample(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  std::uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;
};

}  // namespace censys
