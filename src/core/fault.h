// Deterministic, seed-driven fault injection.
//
// Robustness code paths — the WAL, the serving read path, the prober —
// declare named *injection points* ("storage.wal.append", "serving.read",
// "interrogate.probe", ...) by calling fault::Hit(point) inline. When the
// global Injector is armed with a seed and a set of rules, a hit may
// return a Fault describing what the site must simulate:
//
//   kErrorReturn  the operation reports failure (disk full, read error)
//   kTornWrite    only a prefix of the bytes lands, then the process dies
//   kBitFlip      one bit of the buffer is silently corrupted
//   kCrash        simulated process death: the site throws CrashException,
//                 which unwinds to the torture harness (nothing in src/
//                 catches it — it stands in for SIGKILL)
//   kReorder      a message overtakes its predecessor on a link (the
//                 replication shipper delivers the next run first, so the
//                 receiver sees a gap and must NACK)
//   kStall        the operation silently makes no progress this round (a
//                 slow replica / congested link; retried later)
//
// The replication layer declares "replicate.ship" (one hit per shipment
// on the leader->follower link: loss, reorder, bit-flip, torn shipment,
// stall) and "replicate.apply" (one hit per shipped record on the
// follower's apply path: kCrash dies mid-apply, anything else stalls the
// rest of the shipment).
//
// Determinism: whether hit #i of point P fires — and the fault's tear
// fraction / bit offset — is a pure stateless function of (seed, P, i),
// hashed via SplitMix64. There is no shared RNG stream to race on, so a
// schedule is reproducible even when points are hit from many threads in
// arbitrary interleavings (per-point hit numbering is the only shared
// state, a relaxed atomic).
//
// Cost: with CENSYSIM_FAULT_INJECTION compiled off (production), Hit() is
// a constant nullopt and the whole layer folds away. Compiled on but
// disarmed, a hit is one relaxed atomic load.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace censys::fault {

enum class Mode : std::uint8_t {
  kErrorReturn = 0,
  kTornWrite = 1,
  kBitFlip = 2,
  kCrash = 3,
  kReorder = 4,
  kStall = 5,
};

std::string_view ToString(Mode mode);

// What a firing injection point must simulate.
struct Fault {
  Mode mode = Mode::kErrorReturn;
  // kTornWrite: fraction of the record's bytes that reach the medium
  // before the simulated death (deterministically derived, in [0, 1)).
  double tear_frac = 0.5;
  // kBitFlip: raw bit offset to flip; sites take it modulo buffer size.
  std::uint64_t bit = 0;
};

// One scheduled fault source. A rule matches exactly one point name.
struct Rule {
  std::string point;
  Mode mode = Mode::kErrorReturn;
  // Per-hit firing probability (1.0 = every eligible hit).
  double probability = 1.0;
  // The first `skip_hits` hits of the point never fire — "crash at the
  // Nth append" is Rule{point, kCrash, 1.0, N}.
  std::uint64_t skip_hits = 0;
  // Stop firing after this many fires (the fault is transient).
  std::uint64_t max_fires = std::numeric_limits<std::uint64_t>::max();
};

// Simulated process death. Deliberately NOT derived from std::exception:
// a generic catch(const std::exception&) must not be able to swallow a
// SIGKILL stand-in. Only torture harnesses catch this type.
struct CrashException {
  std::string point;
  std::uint64_t hit = 0;
};

// Concurrency: Check() is safe from any number of threads once armed
// (per-rule hit/fire counters are relaxed atomics; the rule list is
// immutable while armed). Arm()/Disarm() must not race in-flight Check()
// calls — the harness arms and disarms while the system is quiescent.
class Injector {
 public:
  static Injector& Global();

  void Arm(std::uint64_t seed, std::vector<Rule> rules);
  void Disarm();
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  // Consumes one hit of `point`; returns the fault to simulate, if any.
  // Call through fault::Hit() so the disarmed/compiled-out fast path stays
  // a single branch.
  std::optional<Fault> Check(std::string_view point);

  // Total hits / fires recorded for `point` since Arm (for assertions).
  std::uint64_t hits(std::string_view point) const;
  std::uint64_t fires(std::string_view point) const;

 private:
  struct PointState {
    Rule rule;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> fires{0};
  };

  std::atomic<bool> armed_{false};
  std::uint64_t seed_ = 0;
  std::vector<std::unique_ptr<PointState>> points_;
};

// The one call sites make. Returns the fault to simulate at `point`, or
// nullopt. Crash semantics are the *site's* job: WAL-layer sites throw
// CrashException for Mode::kCrash; pure read paths (serving) treat every
// mode as a transient error because a reader has nothing to tear.
#if defined(CENSYSIM_FAULT_INJECTION)
inline std::optional<Fault> Hit(std::string_view point) {
  Injector& injector = Injector::Global();
  if (!injector.armed()) return std::nullopt;
  return injector.Check(point);
}
#else
inline std::optional<Fault> Hit(std::string_view) { return std::nullopt; }
#endif

// RAII arming for tests: arms the global injector on construction,
// disarms on destruction.
class ScopedPlan {
 public:
  ScopedPlan(std::uint64_t seed, std::vector<Rule> rules) {
    Injector::Global().Arm(seed, std::move(rules));
  }
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;
  ~ScopedPlan() { Injector::Global().Disarm(); }
};

}  // namespace censys::fault
