#include "core/fault.h"

#include "core/rng.h"
#include "core/strings.h"

namespace censys::fault {
namespace {

// Stateless per-hit randomness: a pure function of (seed, point, hit
// index, salt). No stream state — interleaving across threads and points
// cannot change any individual decision.
std::uint64_t HashHit(std::uint64_t seed, std::string_view point,
                      std::uint64_t hit, std::uint64_t salt) {
  return SplitMix64(seed ^ Fnv1a64(point) ^ SplitMix64(hit) ^
                    (salt * 0x9E3779B97F4A7C15ull));
}

double HitDouble(std::uint64_t seed, std::string_view point,
                 std::uint64_t hit, std::uint64_t salt) {
  return static_cast<double>(HashHit(seed, point, hit, salt) >> 11) *
         0x1.0p-53;
}

}  // namespace

std::string_view ToString(Mode mode) {
  switch (mode) {
    case Mode::kErrorReturn: return "error-return";
    case Mode::kTornWrite: return "torn-write";
    case Mode::kBitFlip: return "bit-flip";
    case Mode::kCrash: return "crash";
    case Mode::kReorder: return "reorder";
    case Mode::kStall: return "stall";
  }
  return "?";
}

Injector& Injector::Global() {
  static Injector* injector = new Injector();
  return *injector;
}

void Injector::Arm(std::uint64_t seed, std::vector<Rule> rules) {
  armed_.store(false, std::memory_order_release);
  seed_ = seed;
  points_.clear();
  points_.reserve(rules.size());
  for (Rule& rule : rules) {
    auto state = std::make_unique<PointState>();
    state->rule = std::move(rule);
    points_.push_back(std::move(state));
  }
  armed_.store(true, std::memory_order_release);
}

void Injector::Disarm() { armed_.store(false, std::memory_order_release); }

std::optional<Fault> Injector::Check(std::string_view point) {
  if (!armed()) return std::nullopt;
  for (const auto& state : points_) {
    const Rule& rule = state->rule;
    if (rule.point != point) continue;
    const std::uint64_t hit =
        state->hits.fetch_add(1, std::memory_order_relaxed);
    if (hit < rule.skip_hits) continue;
    if (state->fires.load(std::memory_order_relaxed) >= rule.max_fires) {
      continue;
    }
    if (rule.probability < 1.0 &&
        HitDouble(seed_, point, hit, 0) >= rule.probability) {
      continue;
    }
    if (state->fires.fetch_add(1, std::memory_order_relaxed) >=
        rule.max_fires) {
      continue;
    }
    Fault fault;
    fault.mode = rule.mode;
    // Tear somewhere strictly inside the record (never 0 bytes — that is
    // indistinguishable from a pre-write crash — and never all of them).
    fault.tear_frac = 0.05 + 0.9 * HitDouble(seed_, point, hit, 1);
    fault.bit = HashHit(seed_, point, hit, 2);
    return fault;
  }
  return std::nullopt;
}

std::uint64_t Injector::hits(std::string_view point) const {
  std::uint64_t total = 0;
  for (const auto& state : points_) {
    if (state->rule.point == point) {
      total += state->hits.load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::uint64_t Injector::fires(std::string_view point) const {
  std::uint64_t total = 0;
  for (const auto& state : points_) {
    if (state->rule.point == point) {
      total += state->fires.load(std::memory_order_relaxed);
    }
  }
  return total;
}

}  // namespace censys::fault
