#include "core/clock.h"

namespace censys {

void EventQueue::ScheduleAt(Timestamp when, Callback cb) {
  heap_.push(Entry{when, next_sequence_++, std::move(cb)});
}

void EventQueue::RunUntil(SimClock& clock, Timestamp until) {
  while (!heap_.empty() && heap_.top().when <= until) {
    // priority_queue::top() is const; move out via const_cast is UB-adjacent,
    // so copy the callback handle instead (std::function copy is cheap
    // relative to simulated work).
    Entry entry = heap_.top();
    heap_.pop();
    clock.AdvanceTo(entry.when);
    entry.callback(entry.when);
  }
  clock.AdvanceTo(until);
}

}  // namespace censys
