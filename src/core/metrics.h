// Lightweight metrics substrate threaded through every subsystem.
//
// A Registry owns named instruments — monotonic Counters, settable Gauges,
// and exponential-bucket Histograms — that the pipeline stages update on
// their hot paths. Instruments are lock-free after registration (atomics
// only), so the parallel interrogation stage can record into them from
// worker threads. Naming convention: `censys.<layer>.<name>`, e.g.
// `censys.scan.probes_sent`, `censys.interrogate.latency_us`.
//
// Components hold null-safe *handles* bound via their BindMetrics() hook;
// an unbound component (tests, standalone benches) pays a single branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "core/clock.h"
#include "core/thread_safety.h"

namespace censys::metrics {

class Counter {
 public:
  void Add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Power-of-two bucketed histogram over non-negative values. Bucket i counts
// observations in [2^(i-1), 2^i) (bucket 0 covers [0, 1)), which spans
// [0, ~5e11) with 40 buckets — plenty for microsecond timings and byte
// sizes alike.
class Histogram {
 public:
  static constexpr int kBuckets = 40;

  void Observe(double value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  double Mean() const;
  double Max() const;
  // Approximate quantile (upper bound of the bucket holding rank q*count).
  double Quantile(double q) const;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  // Fixed-point micro-unit sum so the hot path stays a single fetch_add.
  std::atomic<std::uint64_t> sum_micro_{0};
  std::atomic<std::uint64_t> max_micro_{0};
};

// Concurrency: the registry's instrument maps are guarded by mu_ (creation
// and by-name reads); the instruments themselves are lock-free atomics, so
// bound handles never touch mu_ on the hot path.
class Registry {
 public:
  // Instruments are created on first use and live as long as the registry;
  // returned references are stable.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  // Point-in-time reads by name; zero/absent-safe (used by TickReport).
  std::uint64_t CounterValue(std::string_view name) const;
  std::int64_t GaugeValue(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  // Human-readable dump, sorted by instrument name:
  //   censys.scan.probes_sent            counter      123456
  //   censys.interrogate.latency_us      histogram    count=99 mean=12.3 ...
  std::string Render() const;

  // Visits every registered instrument as (name, kind) with kind one of
  // "counter", "gauge", "histogram", sorted by name. Drives the generated
  // metrics reference (tools/metricsdoc) so the doc cannot drift from the
  // registry.
  void ForEachInstrument(
      const std::function<void(std::string_view name, std::string_view kind)>&
          fn) const;

 private:
  mutable core::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      CENSYS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      CENSYS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      CENSYS_GUARDED_BY(mu_);
};

// --- null-safe handles --------------------------------------------------------
// What components store after BindMetrics(); unbound handles no-op.

struct CounterHandle {
  Counter* counter = nullptr;
  void Add(std::uint64_t delta = 1) const {
    if (counter != nullptr) counter->Add(delta);
  }
};

struct GaugeHandle {
  Gauge* gauge = nullptr;
  void Set(std::int64_t v) const {
    if (gauge != nullptr) gauge->Set(v);
  }
};

struct HistogramHandle {
  Histogram* histogram = nullptr;
  void Observe(double v) const {
    if (histogram != nullptr) histogram->Observe(v);
  }
};

inline CounterHandle BindCounter(Registry* registry, std::string_view name) {
  return CounterHandle{registry ? &registry->GetCounter(name) : nullptr};
}
inline GaugeHandle BindGauge(Registry* registry, std::string_view name) {
  return GaugeHandle{registry ? &registry->GetGauge(name) : nullptr};
}
inline HistogramHandle BindHistogram(Registry* registry,
                                     std::string_view name) {
  return HistogramHandle{registry ? &registry->GetHistogram(name) : nullptr};
}

// RAII wall-clock timer recording elapsed microseconds into a histogram on
// destruction. Used for the per-stage timing scopes of the tick pipeline.
// Time comes from WallTimer, the tree's one sanctioned real-time source.
class ScopedTimer {
 public:
  explicit ScopedTimer(HistogramHandle handle) : handle_(handle) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { handle_.Observe(ElapsedMicros()); }

  double ElapsedMicros() const { return timer_.ElapsedMicros(); }

 private:
  HistogramHandle handle_;
  WallTimer timer_;
};

}  // namespace censys::metrics
