#include "core/types.h"

#include <charconv>
#include <cstdio>

namespace censys {

std::optional<IPv4Address> IPv4Address::Parse(std::string_view text) {
  std::uint32_t value = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    unsigned octet = 0;
    auto [next, ec] = std::from_chars(p, end, octet);
    if (ec != std::errc() || next == p || octet > 255) return std::nullopt;
    // Reject leading zeros beyond a lone "0" (ambiguous octal forms).
    if (next - p > 1 && *p == '0') return std::nullopt;
    value = (value << 8) | octet;
    p = next;
    if (i < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return IPv4Address(value);
}

std::string IPv4Address::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", octet(0), octet(1), octet(2),
                octet(3));
  return buf;
}

std::string_view ToString(Transport t) {
  return t == Transport::kTcp ? "tcp" : "udp";
}

std::string ServiceKey::ToString() const {
  std::string s = ip.ToString();
  s += ':';
  s += std::to_string(port);
  s += '/';
  s += censys::ToString(transport);
  return s;
}

std::string Timestamp::ToString() const {
  const std::int64_t day = minutes / (24 * 60);
  const std::int64_t rem = minutes % (24 * 60);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "d%lld %02lld:%02lld",
                static_cast<long long>(day), static_cast<long long>(rem / 60),
                static_cast<long long>(rem % 60));
  return buf;
}

}  // namespace censys
