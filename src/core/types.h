// Core value types shared across the censysim libraries.
//
// Everything here is a small, regular value type: IPv4 addresses, ports,
// (ip, port) service locators, and simulated timestamps. These types are the
// vocabulary of every other module, so they are deliberately cheap to copy,
// hashable, totally ordered, and printable.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace censys {

// An IPv4 address stored in host byte order.
//
// The simulated Internet uses the same 32-bit address space as the real one;
// the simulator populates only a configurable sample of it.
class IPv4Address {
 public:
  constexpr IPv4Address() = default;
  constexpr explicit IPv4Address(std::uint32_t value) : value_(value) {}

  // Parses dotted-quad notation ("192.0.2.17"). Returns nullopt on any
  // syntactic error (missing octets, values > 255, stray characters).
  static std::optional<IPv4Address> Parse(std::string_view text);

  constexpr std::uint32_t value() const { return value_; }

  // Octets in network order: octet(0) is the most significant byte.
  constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  std::string ToString() const;

  constexpr auto operator<=>(const IPv4Address&) const = default;

 private:
  std::uint32_t value_ = 0;
};

// A TCP/UDP port. Plain integer wrapper for type safety at interfaces.
using Port = std::uint16_t;

inline constexpr Port kMaxPort = 65535;
inline constexpr std::uint32_t kPortSpaceSize = 65536;

// Transport protocol of a probe or service.
enum class Transport : std::uint8_t { kTcp = 0, kUdp = 1 };

std::string_view ToString(Transport t);

// A service locator: one (address, port, transport) endpoint.
struct ServiceKey {
  IPv4Address ip;
  Port port = 0;
  Transport transport = Transport::kTcp;

  auto operator<=>(const ServiceKey&) const = default;

  std::string ToString() const;

  // Packs the key into a single 64-bit integer (ip:32 | port:16 | transport:8)
  // for use as a hash-map key or journal entity id component.
  constexpr std::uint64_t Pack() const {
    return (static_cast<std::uint64_t>(ip.value()) << 24) |
           (static_cast<std::uint64_t>(port) << 8) |
           static_cast<std::uint64_t>(transport);
  }
  static constexpr ServiceKey Unpack(std::uint64_t packed) {
    return ServiceKey{IPv4Address(static_cast<std::uint32_t>(packed >> 24)),
                      static_cast<Port>((packed >> 8) & 0xffff),
                      static_cast<Transport>(packed & 0xff)};
  }
};

// Simulated time. One tick is one simulated minute by default; all modules
// treat Timestamp as opaque minutes-since-epoch.
struct Timestamp {
  std::int64_t minutes = 0;

  constexpr auto operator<=>(const Timestamp&) const = default;

  static constexpr Timestamp FromHours(double h) {
    return Timestamp{static_cast<std::int64_t>(h * 60.0)};
  }
  static constexpr Timestamp FromDays(double d) {
    return Timestamp{static_cast<std::int64_t>(d * 24.0 * 60.0)};
  }
  constexpr double ToHours() const { return static_cast<double>(minutes) / 60.0; }
  constexpr double ToDays() const { return static_cast<double>(minutes) / (24.0 * 60.0); }

  std::string ToString() const;  // "d12 07:30" style, for logs and tables.
};

struct Duration {
  std::int64_t minutes = 0;

  constexpr auto operator<=>(const Duration&) const = default;

  static constexpr Duration Minutes(std::int64_t m) { return Duration{m}; }
  static constexpr Duration Hours(double h) {
    return Duration{static_cast<std::int64_t>(h * 60.0)};
  }
  static constexpr Duration Days(double d) {
    return Duration{static_cast<std::int64_t>(d * 24.0 * 60.0)};
  }
  constexpr double ToHours() const { return static_cast<double>(minutes) / 60.0; }
  constexpr double ToDays() const { return static_cast<double>(minutes) / (24.0 * 60.0); }
};

constexpr Timestamp operator+(Timestamp t, Duration d) {
  return Timestamp{t.minutes + d.minutes};
}
constexpr Timestamp operator-(Timestamp t, Duration d) {
  return Timestamp{t.minutes - d.minutes};
}
constexpr Duration operator-(Timestamp a, Timestamp b) {
  return Duration{a.minutes - b.minutes};
}
constexpr Duration operator+(Duration a, Duration b) {
  return Duration{a.minutes + b.minutes};
}
constexpr Duration operator*(Duration d, std::int64_t k) {
  return Duration{d.minutes * k};
}

}  // namespace censys

template <>
struct std::hash<censys::IPv4Address> {
  std::size_t operator()(const censys::IPv4Address& a) const noexcept {
    // Fibonacci hashing spreads sequential addresses, which are common in
    // simulated prefixes, across buckets.
    return static_cast<std::size_t>(a.value() * 0x9E3779B97F4A7C15ull);
  }
};

template <>
struct std::hash<censys::ServiceKey> {
  std::size_t operator()(const censys::ServiceKey& k) const noexcept {
    return static_cast<std::size_t>(k.Pack() * 0x9E3779B97F4A7C15ull);
  }
};
