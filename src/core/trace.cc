#include "core/trace.h"

#if defined(CENSYSIM_TRACE)

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/clock.h"
#include "core/thread_safety.h"

namespace censys::trace {
namespace {

// One retained span. Slots are plain data: the owning thread writes a slot,
// then publishes it by advancing the ring's head with a release store; the
// exporter acquires the head before reading. Wraparound overwrites the
// oldest slot — the exporter must run at a quiescent point (Dump's
// contract), so published slots are never concurrently rewritten while
// being read.
struct Slot {
  const char* category = nullptr;
  const char* name = nullptr;
  double start_us = 0;
  double duration_us = 0;
  char arg_key[kMaxArgKey + 1] = {};
  char arg_value[kMaxArgValue + 1] = {};
  std::uint8_t arg_key_len = 0;
  std::uint8_t arg_value_len = 0;
};

struct ThreadRing {
  explicit ThreadRing(std::uint32_t id) : thread_id(id) {}
  const std::uint32_t thread_id;
  std::atomic<std::uint64_t> head{0};  // spans ever recorded by this thread
  Slot slots[kRingCapacity];
};

// Concurrency: `rings` (registration and export iteration) is guarded by
// mu_; each ring's slots are written lock-free by exactly one thread and
// read only by the exporter at quiescent points, synchronized through the
// ring's release/acquire head counter.
class Recorder {
 public:
  static Recorder& Get() {
    static Recorder* recorder = new Recorder();  // never destroyed: rings
    return *recorder;  // must outlive late-exiting threads and atexit dumps
  }

  ThreadRing* RegisterThread() {
    core::MutexLock lock(mu_);
    rings_.push_back(std::make_unique<ThreadRing>(
        static_cast<std::uint32_t>(rings_.size() + 1)));
    return rings_.back().get();
  }

  void ForEachSpan(const std::function<void(const SpanView&)>& fn) {
    core::MutexLock lock(mu_);
    for (const auto& ring : rings_) {
      const std::uint64_t head = ring->head.load(std::memory_order_acquire);
      const std::uint64_t first = head > kRingCapacity ? head - kRingCapacity
                                                       : 0;
      for (std::uint64_t i = first; i < head; ++i) {
        const Slot& slot = ring->slots[i % kRingCapacity];
        SpanView view;
        view.category = slot.category;
        view.name = slot.name;
        view.thread_id = ring->thread_id;
        view.start_us = slot.start_us;
        view.duration_us = slot.duration_us;
        view.arg_key = std::string_view(slot.arg_key, slot.arg_key_len);
        view.arg_value = std::string_view(slot.arg_value, slot.arg_value_len);
        fn(view);
      }
    }
  }

  Stats GetStats() {
    core::MutexLock lock(mu_);
    Stats stats;
    stats.threads = static_cast<std::uint32_t>(rings_.size());
    for (const auto& ring : rings_) {
      const std::uint64_t head = ring->head.load(std::memory_order_acquire);
      stats.recorded += head;
      if (head > kRingCapacity) stats.dropped += head - kRingCapacity;
    }
    return stats;
  }

  void Reset() {
    core::MutexLock lock(mu_);
    for (const auto& ring : rings_) {
      ring->head.store(0, std::memory_order_release);
    }
  }

  std::atomic<bool> enabled{false};

 private:
  Recorder() = default;

  core::Mutex mu_;
  std::vector<std::unique_ptr<ThreadRing>> rings_ CENSYS_GUARDED_BY(mu_);
};

// Arms recording from the environment exactly once: CENSYSIM_TRACE_FILE
// enables tracing at startup and dumps there at process exit.
struct EnvArm {
  EnvArm() {
    if (const char* path = std::getenv("CENSYSIM_TRACE_FILE")) {
      exit_path = path;
      Recorder::Get().enabled.store(true, std::memory_order_relaxed);
      std::atexit([] {
        std::string error;
        if (!Dump(EnvArmed().exit_path, &error)) {
          std::fprintf(stderr, "trace: exit dump failed: %s\n", error.c_str());
        }
      });
    }
  }
  std::string exit_path;

  static EnvArm& EnvArmed() {
    // Deliberately leaked: the ctor registers an atexit dump that reads
    // exit_path, and a function-local static's destructor would run
    // *before* that handler (the dtor is registered after the ctor body's
    // atexit call), leaving the handler a dangling string.
    static EnvArm* arm = new EnvArm();
    return *arm;
  }
};

void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

double NowMicros() {
  // The shared epoch every span timestamps against; created on first use.
  static const WallTimer* epoch = new WallTimer();
  return epoch->ElapsedMicros();
}

void SetEnabled(bool enabled) {
  EnvArm::EnvArmed();  // preserve an exit dump armed via the environment
  Recorder::Get().enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() {
  EnvArm::EnvArmed();
  return Recorder::Get().enabled.load(std::memory_order_relaxed);
}

void RecordSpan(const char* category, const char* name, double start_us,
                double duration_us, std::string_view arg_key,
                std::string_view arg_value) {
  thread_local ThreadRing* ring = Recorder::Get().RegisterThread();
  const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
  Slot& slot = ring->slots[head % kRingCapacity];
  slot.category = category;
  slot.name = name;
  slot.start_us = start_us;
  slot.duration_us = duration_us;
  slot.arg_key_len = static_cast<std::uint8_t>(
      arg_key.size() > kMaxArgKey ? kMaxArgKey : arg_key.size());
  slot.arg_value_len = static_cast<std::uint8_t>(
      arg_value.size() > kMaxArgValue ? kMaxArgValue : arg_value.size());
  arg_key.copy(slot.arg_key, slot.arg_key_len);
  arg_value.copy(slot.arg_value, slot.arg_value_len);
  ring->head.store(head + 1, std::memory_order_release);
}

void ForEachSpan(const std::function<void(const SpanView&)>& fn) {
  Recorder::Get().ForEachSpan(fn);
}

Stats GetStats() { return Recorder::Get().GetStats(); }

void ResetForTest() { Recorder::Get().Reset(); }

std::string DumpToString() {
  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  ForEachSpan([&](const SpanView& span) {
    if (!first) out += ",\n";
    first = false;
    char buf[96];
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":";
    std::snprintf(buf, sizeof(buf), "%u", span.thread_id);
    out += buf;
    out += ",\"cat\":\"";
    AppendJsonEscaped(out, span.category != nullptr ? span.category : "");
    out += "\",\"name\":\"";
    AppendJsonEscaped(out, span.name != nullptr ? span.name : "");
    out += "\",\"ts\":";
    std::snprintf(buf, sizeof(buf), "%.3f", span.start_us);
    out += buf;
    out += ",\"dur\":";
    std::snprintf(buf, sizeof(buf), "%.3f", span.duration_us);
    out += buf;
    if (!span.arg_key.empty()) {
      out += ",\"args\":{\"";
      AppendJsonEscaped(out, span.arg_key);
      out += "\":\"";
      AppendJsonEscaped(out, span.arg_value);
      out += "\"}";
    }
    out += "}";
  });
  out += "\n]}\n";
  return out;
}

bool Dump(const std::string& path, std::string* error) {
  const std::string json = DumpToString();
  // The dump is diagnostic output, not journaled state — no WAL semantics.
  std::FILE* f = std::fopen(path.c_str(), "wb");  // censyslint:allow(raw-file-io)
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != json.size() || !closed) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

}  // namespace censys::trace

#endif  // CENSYSIM_TRACE
