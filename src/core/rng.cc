#include "core/rng.h"

#include <cassert>
#include <cmath>

namespace censys {
namespace {

constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::Seed(std::uint64_t seed) {
  // xoshiro state must not be all zero; splitmix64 of distinct counters
  // guarantees that with overwhelming probability, and we guard anyway.
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    sm += 0x9E3779B97F4A7C15ull;
    word = SplitMix64(sm);
  }
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  has_spare_normal_ = false;
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = -bound % bound;
    while (l < t) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextBelow(span));
}

double Rng::NextExponential(double mean) {
  assert(mean > 0);
  double u = NextDouble();
  while (u <= 0.0) u = NextDouble();
  return -mean * std::log(u);
}

double Rng::NextNormal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return mean + stddev * u * factor;
}

double Rng::NextPareto(double x_m, double alpha) {
  assert(x_m > 0 && alpha > 0);
  double u = NextDouble();
  while (u <= 0.0) u = NextDouble();
  return x_m / std::pow(u, 1.0 / alpha);
}

std::uint64_t Rng::NextGeometric(double p) {
  assert(p > 0 && p <= 1);
  if (p >= 1.0) return 0;
  double u = NextDouble();
  while (u <= 0.0) u = NextDouble();
  return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

std::uint64_t Rng::NextPoisson(double mean) {
  assert(mean >= 0);
  if (mean == 0) return 0;
  if (mean < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double product = NextDouble();
    while (product > limit) {
      ++k;
      product *= NextDouble();
    }
    return k;
  }
  // Normal approximation with continuity correction; adequate for the
  // population-level counts we draw at this scale.
  const double sample = NextNormal(mean, std::sqrt(mean));
  return sample <= 0 ? 0 : static_cast<std::uint64_t>(sample + 0.5);
}

std::size_t Rng::PickWeighted(std::span<const double> weights) {
  assert(!weights.empty());
  double total = 0;
  for (double w : weights) total += w;
  double x = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork(std::uint64_t stream_id) const {
  // Mix the parent's state words with the stream id through splitmix64 to
  // decorrelate child streams.
  std::uint64_t seed = SplitMix64(s_[0] ^ SplitMix64(stream_id));
  seed = SplitMix64(seed ^ s_[2]);
  return Rng(seed);
}

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
  assert(n >= 1);
  assert(s > 0 && s != 1.0);  // rejection-inversion form below assumes s != 1
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -s_));
}

double ZipfSampler::H(double x) const {
  return std::pow(x, 1.0 - s_) / (1.0 - s_);
}

double ZipfSampler::HInverse(double x) const {
  return std::pow((1.0 - s_) * x, 1.0 / (1.0 - s_));
}

std::uint64_t ZipfSampler::Sample(Rng& rng) const {
  if (n_ == 1) return 1;
  while (true) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    if (static_cast<double>(k) - x <= threshold_ ||
        u >= H(static_cast<double>(k) + 0.5) - std::pow(static_cast<double>(k), -s_)) {
      return k;
    }
  }
}

}  // namespace censys
