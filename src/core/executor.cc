#include "core/executor.h"

#include <algorithm>

namespace censys {

Executor::Executor(int threads) {
  threads = std::max(0, threads);
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() {
  {
    const core::MutexLock lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void Executor::ParallelFor(std::size_t n,
                           const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Single-threaded fallback: inline, in index order, exceptions
    // propagate directly.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::uint64_t epoch;
  {
    const core::MutexLock lock(mu_);
    fn_ = &fn;
    batch_size_ = n;
    next_index_ = 0;
    completed_ = 0;
    error_ = nullptr;
    epoch = ++epoch_;
  }
  work_cv_.notify_all();

  RunBatch(&fn, epoch);

  std::exception_ptr error;
  {
    core::MutexLock lock(mu_);
    lock.Await(done_cv_, [&]() CENSYS_REQUIRES(mu_) {
      return completed_ == batch_size_;
    });
    fn_ = nullptr;
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void Executor::Broadcast(const std::function<void(std::size_t)>& fn) {
  if (workers_.empty()) return;
  {
    const core::MutexLock lock(mu_);
    // Own the function for the duration of the batch: unlike ParallelFor,
    // the caller does not block, so its argument may die before the
    // workers run it. The previous batch has drained (JoinBroadcast or
    // ParallelFor completed), so no worker still references the old copy.
    broadcast_fn_ = fn;
    fn_ = &broadcast_fn_;
    batch_size_ = workers_.size();
    next_index_ = 0;
    completed_ = 0;
    error_ = nullptr;
    ++epoch_;
  }
  broadcast_pending_ = true;
  work_cv_.notify_all();
}

void Executor::JoinBroadcast() {
  if (!broadcast_pending_) return;
  broadcast_pending_ = false;
  std::exception_ptr error;
  {
    core::MutexLock lock(mu_);
    lock.Await(done_cv_, [&]() CENSYS_REQUIRES(mu_) {
      return completed_ == batch_size_;
    });
    fn_ = nullptr;
    broadcast_fn_ = nullptr;  // release whatever the lambda captured
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void Executor::RunBatch(const std::function<void(std::size_t)>* fn,
                        std::uint64_t epoch) {
  for (;;) {
    std::size_t begin, end;
    {
      const core::MutexLock lock(mu_);
      if (epoch_ != epoch || next_index_ >= batch_size_) return;
      // Claim a chunk: large enough to amortize the lock, small enough to
      // keep every thread busy until the batch tail.
      const std::size_t chunk = std::max<std::size_t>(
          1, batch_size_ / (8 * (workers_.size() + 1)));
      begin = next_index_;
      end = std::min(begin + chunk, batch_size_);
      next_index_ = end;
    }
    for (std::size_t i = begin; i < end; ++i) {
      try {
        (*fn)(i);
      } catch (...) {
        const core::MutexLock lock(mu_);
        if (!error_) error_ = std::current_exception();
      }
    }
    {
      const core::MutexLock lock(mu_);
      // The epoch cannot have advanced while we held claimed-but-uncounted
      // indices (the owner is still waiting on them), so this is ours.
      completed_ += end - begin;
      if (completed_ == batch_size_) done_cv_.notify_all();
    }
  }
}

void Executor::WorkerLoop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::uint64_t epoch = 0;
    {
      core::MutexLock lock(mu_);
      lock.Await(work_cv_, [&]() CENSYS_REQUIRES(mu_) {
        return stopping_ || (epoch_ != seen_epoch && fn_ != nullptr &&
                             next_index_ < batch_size_);
      });
      if (stopping_) return;
      seen_epoch = epoch_;
      fn = fn_;
      epoch = epoch_;
    }
    RunBatch(fn, epoch);
  }
}

}  // namespace censys
