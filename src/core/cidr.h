// CIDR prefixes. Used by the simulated Internet to carve the address space
// into networks (residential ISPs, clouds, enterprises) and by the scan
// engine's exclusion ("opt-out") list.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.h"

namespace censys {

class Cidr {
 public:
  constexpr Cidr() = default;
  // `base` is masked down to the prefix boundary, so Cidr(1.2.3.4/24) is
  // 1.2.3.0/24.
  constexpr Cidr(IPv4Address base, int prefix_len)
      : base_(IPv4Address(prefix_len == 0 ? 0 : (base.value() & Mask(prefix_len)))),
        prefix_len_(prefix_len) {}

  // Parses "10.0.0.0/8". Returns nullopt on malformed input or prefix > 32.
  static std::optional<Cidr> Parse(std::string_view text);

  constexpr IPv4Address base() const { return base_; }
  constexpr int prefix_len() const { return prefix_len_; }

  // Number of addresses covered. /0 covers 2^32, returned as uint64.
  constexpr std::uint64_t size() const {
    return std::uint64_t{1} << (32 - prefix_len_);
  }

  constexpr bool Contains(IPv4Address a) const {
    if (prefix_len_ == 0) return true;
    return (a.value() & Mask(prefix_len_)) == base_.value();
  }

  constexpr bool Contains(const Cidr& other) const {
    return other.prefix_len_ >= prefix_len_ && Contains(other.base_);
  }

  // The i-th address of the prefix (i < size()).
  constexpr IPv4Address AddressAt(std::uint64_t i) const {
    return IPv4Address(base_.value() + static_cast<std::uint32_t>(i));
  }

  std::string ToString() const;

  constexpr auto operator<=>(const Cidr&) const = default;

 private:
  static constexpr std::uint32_t Mask(int prefix_len) {
    return prefix_len == 0 ? 0 : ~std::uint32_t{0} << (32 - prefix_len);
  }

  IPv4Address base_;
  int prefix_len_ = 0;
};

// A set of CIDR prefixes with O(log n) membership tests. Backed by a sorted
// vector of disjoint ranges; overlapping inserts are merged. This is the
// structure behind both the scanner's exclusion list and network-category
// lookups in the simulator.
class CidrSet {
 public:
  void Insert(const Cidr& cidr);
  bool Contains(IPv4Address a) const;
  // Total addresses covered (after merging overlaps).
  std::uint64_t AddressCount() const;
  std::size_t range_count() const { return ranges_.size(); }
  bool empty() const { return ranges_.empty(); }

 private:
  struct Range {
    std::uint64_t first;
    std::uint64_t last;  // inclusive
  };
  std::vector<Range> ranges_;  // sorted, disjoint, non-adjacent
};

}  // namespace censys
