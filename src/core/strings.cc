#include "core/strings.h"

#include <cctype>
#include <cstdio>

namespace censys {

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> SplitWhitespace(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  std::size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin])))
    ++begin;
  std::size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])))
    --end;
  return s.substr(begin, end - begin);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (EqualsIgnoreCase(haystack.substr(i, needle.size()), needle)) return true;
  }
  return false;
}

bool GlobMatch(std::string_view pattern, std::string_view text) {
  // Iterative two-pointer algorithm with backtracking over the last '*'.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, match = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      match = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++match;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::string HumanCount(std::uint64_t n) {
  char buf[32];
  auto format = [&](double value, char suffix) {
    if (value >= 100 || value == static_cast<std::uint64_t>(value)) {
      std::snprintf(buf, sizeof(buf), "%.0f%c", value, suffix);
    } else if (value >= 10) {
      std::snprintf(buf, sizeof(buf), "%.1f%c", value, suffix);
    } else {
      std::snprintf(buf, sizeof(buf), "%.2f%c", value, suffix);
    }
    // Trim trailing ".0" forms like "13.0K" -> "13K".
    std::string s = buf;
    auto dot = s.find('.');
    if (dot != std::string::npos) {
      std::size_t end = s.size() - 1;  // suffix char
      std::size_t last = end - 1;
      while (last > dot && s[last] == '0') --last;
      if (last == dot) --last;
      s = s.substr(0, last + 1) + s[end];
    }
    return s;
  };
  if (n >= 1000000000ull) return format(static_cast<double>(n) / 1e9, 'B');
  if (n >= 1000000ull) return format(static_cast<double>(n) / 1e6, 'M');
  if (n >= 1000ull) return format(static_cast<double>(n) / 1e3, 'K');
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(n));
  return buf;
}

std::string JoinColumns(const std::vector<std::string>& cells,
                        const std::vector<int>& widths) {
  std::string out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int width = i < widths.size() ? widths[i] : 12;
    std::string cell = cells[i];
    if (static_cast<int>(cell.size()) < width) {
      cell.append(static_cast<std::size_t>(width) - cell.size(), ' ');
    }
    out += cell;
    if (i + 1 < cells.size()) out += "  ";
  }
  return out;
}

}  // namespace censys
