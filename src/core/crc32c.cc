#include "core/crc32c.h"

#include <bit>
#include <cstring>

namespace censys::core {
namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected 0x1EDC6F41

struct Tables {
  std::uint32_t t[8][256];
};

const Tables& T() {
  static const Tables tables = [] {
    Tables tb{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      tb.t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      for (int s = 1; s < 8; ++s) {
        tb.t[s][i] = (tb.t[s - 1][i] >> 8) ^ tb.t[0][tb.t[s - 1][i] & 0xFFu];
      }
    }
    return tb;
  }();
  return tables;
}

}  // namespace

std::uint32_t Crc32cExtend(std::uint32_t crc, const void* data,
                           std::size_t n) {
  const Tables& tb = T();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  crc = ~crc;

  if constexpr (std::endian::native == std::endian::little) {
    // Align to 8 bytes, then slice-by-8.
    while (n > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
      crc = tb.t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
      --n;
    }
    while (n >= 8) {
      std::uint64_t word;
      std::memcpy(&word, p, 8);
      word ^= crc;
      crc = tb.t[7][word & 0xFFu] ^ tb.t[6][(word >> 8) & 0xFFu] ^
            tb.t[5][(word >> 16) & 0xFFu] ^ tb.t[4][(word >> 24) & 0xFFu] ^
            tb.t[3][(word >> 32) & 0xFFu] ^ tb.t[2][(word >> 40) & 0xFFu] ^
            tb.t[1][(word >> 48) & 0xFFu] ^ tb.t[0][(word >> 56) & 0xFFu];
      p += 8;
      n -= 8;
    }
  }
  while (n > 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    --n;
  }
  return ~crc;
}

std::uint32_t Crc32c(std::string_view data) {
  return Crc32cExtend(0, data.data(), data.size());
}

}  // namespace censys::core
