#include "core/metrics.h"

#include "core/thread_safety.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

namespace censys::metrics {
namespace {

int BucketOf(double value) {
  if (value < 1.0) return 0;
  const int b = std::ilogb(value) + 1;
  return std::min(b, Histogram::kBuckets - 1);
}

// Upper bound of bucket i (inclusive range end used for quantile reads).
double BucketUpper(int i) { return i == 0 ? 1.0 : std::ldexp(1.0, i); }

std::uint64_t ToMicroUnits(double v) {
  return static_cast<std::uint64_t>(std::max(0.0, v) * 1e6);
}

}  // namespace

void Histogram::Observe(double value) {
  if (!(value >= 0.0)) value = 0.0;  // clamp negatives and NaN
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micro_.fetch_add(ToMicroUnits(value), std::memory_order_relaxed);
  std::uint64_t prev = max_micro_.load(std::memory_order_relaxed);
  const std::uint64_t v = ToMicroUnits(value);
  while (prev < v &&
         !max_micro_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const {
  return static_cast<double>(sum_micro_.load(std::memory_order_relaxed)) * 1e-6;
}

double Histogram::Mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::Max() const {
  return static_cast<double>(max_micro_.load(std::memory_order_relaxed)) * 1e-6;
}

double Histogram::Quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketUpper(i);
  }
  return BucketUpper(kBuckets - 1);
}

Counter& Registry::GetCounter(std::string_view name) {
  const core::MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  const core::MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name) {
  const core::MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::uint64_t Registry::CounterValue(std::string_view name) const {
  const core::MutexLock lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::int64_t Registry::GaugeValue(std::string_view name) const {
  const core::MutexLock lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->value();
}

const Histogram* Registry::FindHistogram(std::string_view name) const {
  const core::MutexLock lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::string Registry::Render() const {
  // Merge the three instrument families into one name-sorted listing.
  struct Line {
    std::string name;
    std::string text;
  };
  std::vector<Line> lines;
  char buf[160];
  {
    const core::MutexLock lock(mu_);
    for (const auto& [name, c] : counters_) {
      std::snprintf(buf, sizeof(buf), "%-44s counter    %llu", name.c_str(),
                    static_cast<unsigned long long>(c->value()));
      lines.push_back({name, buf});
    }
    for (const auto& [name, g] : gauges_) {
      std::snprintf(buf, sizeof(buf), "%-44s gauge      %lld", name.c_str(),
                    static_cast<long long>(g->value()));
      lines.push_back({name, buf});
    }
    for (const auto& [name, h] : histograms_) {
      std::snprintf(buf, sizeof(buf),
                    "%-44s histogram  count=%llu mean=%.1f p50=%.0f p99=%.0f "
                    "max=%.1f",
                    name.c_str(),
                    static_cast<unsigned long long>(h->count()), h->Mean(),
                    h->Quantile(0.5), h->Quantile(0.99), h->Max());
      lines.push_back({name, buf});
    }
  }
  std::sort(lines.begin(), lines.end(),
            [](const Line& a, const Line& b) { return a.name < b.name; });
  std::string out;
  for (const Line& line : lines) {
    out += line.text;
    out += '\n';
  }
  return out;
}

void Registry::ForEachInstrument(
    const std::function<void(std::string_view, std::string_view)>& fn) const {
  std::vector<std::pair<std::string, const char*>> instruments;
  {
    const core::MutexLock lock(mu_);
    for (const auto& [name, c] : counters_) {
      instruments.emplace_back(name, "counter");
    }
    for (const auto& [name, g] : gauges_) {
      instruments.emplace_back(name, "gauge");
    }
    for (const auto& [name, h] : histograms_) {
      instruments.emplace_back(name, "histogram");
    }
  }
  std::sort(instruments.begin(), instruments.end());
  for (const auto& [name, kind] : instruments) fn(name, kind);
}

}  // namespace censys::metrics
