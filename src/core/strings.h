// Small string utilities used across modules (query parsing, banner
// grammars, table formatting). Kept dependency-free.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace censys {

// Splits on a single character; empty fields are preserved.
std::vector<std::string_view> Split(std::string_view s, char sep);

// Splits on runs of whitespace; no empty fields.
std::vector<std::string_view> SplitWhitespace(std::string_view s);

std::string_view TrimWhitespace(std::string_view s);

std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);
// Case-insensitive substring search.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Simple glob match supporting '*' (any run) and '?' (any one char).
// Used by declarative fingerprints and the search query language.
bool GlobMatch(std::string_view pattern, std::string_view text);

// Formats counts the way the paper's tables do: 794000000 -> "794M",
// 13100 -> "13.1K", 49 -> "49".
std::string HumanCount(std::uint64_t n);

// Fixed-width column join for the bench tables.
std::string JoinColumns(const std::vector<std::string>& cells,
                        const std::vector<int>& widths);

// FNV-1a 64-bit hash of a string; used for cheap token ids.
constexpr std::uint64_t Fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace censys
