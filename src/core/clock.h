// The simulated clock and a minimal discrete-event scheduler.
//
// censysim advances in fixed ticks (default: one simulated minute). The
// scan engine, churn processes, pipeline timers, and evaluation harnesses
// all observe the same SimClock, so "Censys refreshes IP data at least
// daily" and "honeypots staggered every eight hours" are literal statements
// about this clock.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/types.h"

namespace censys {

// --- wall-clock access --------------------------------------------------------
// The ONLY sanctioned real-time source in the tree: censyslint bans
// std::chrono clock reads everywhere else under src/, so that wall time can
// never leak into simulation logic or journaled state (those run off
// SimClock below). WallTimer exists for metrics and benchmark timing only.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  double ElapsedSeconds() const { return ElapsedMicros() * 1e-6; }

 private:
  std::chrono::steady_clock::time_point start_;
};

class SimClock {
 public:
  SimClock() = default;
  explicit SimClock(Timestamp start) : now_(start) {}

  Timestamp now() const { return now_; }

  void Advance(Duration d) { now_ = now_ + d; }
  void AdvanceTo(Timestamp t) {
    if (t > now_) now_ = t;
  }

 private:
  Timestamp now_;
};

// A deterministic event queue keyed by (time, insertion order). Callbacks
// scheduled for the same timestamp run in the order they were scheduled,
// which keeps multi-module simulations reproducible.
class EventQueue {
 public:
  using Callback = std::function<void(Timestamp)>;

  void ScheduleAt(Timestamp when, Callback cb);
  void ScheduleAfter(Timestamp now, Duration delay, Callback cb) {
    ScheduleAt(now + delay, std::move(cb));
  }

  // Runs all events with time <= `until`, advancing `clock` to each event
  // time; afterwards the clock is at `until`.
  void RunUntil(SimClock& clock, Timestamp until);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

 private:
  struct Entry {
    Timestamp when;
    std::uint64_t sequence;
    Callback callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace censys
