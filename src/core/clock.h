// The simulated clock and a minimal discrete-event scheduler.
//
// censysim advances in fixed ticks (default: one simulated minute). The
// scan engine, churn processes, pipeline timers, and evaluation harnesses
// all observe the same SimClock, so "Censys refreshes IP data at least
// daily" and "honeypots staggered every eight hours" are literal statements
// about this clock.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/types.h"

namespace censys {

class SimClock {
 public:
  SimClock() = default;
  explicit SimClock(Timestamp start) : now_(start) {}

  Timestamp now() const { return now_; }

  void Advance(Duration d) { now_ = now_ + d; }
  void AdvanceTo(Timestamp t) {
    if (t > now_) now_ = t;
  }

 private:
  Timestamp now_;
};

// A deterministic event queue keyed by (time, insertion order). Callbacks
// scheduled for the same timestamp run in the order they were scheduled,
// which keeps multi-module simulations reproducible.
class EventQueue {
 public:
  using Callback = std::function<void(Timestamp)>;

  void ScheduleAt(Timestamp when, Callback cb);
  void ScheduleAfter(Timestamp now, Duration delay, Callback cb) {
    ScheduleAt(now + delay, std::move(cb));
  }

  // Runs all events with time <= `until`, advancing `clock` to each event
  // time; afterwards the clock is at `until`.
  void RunUntil(SimClock& clock, Timestamp until);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

 private:
  struct Entry {
    Timestamp when;
    std::uint64_t sequence;
    Callback callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace censys
