#include "core/thread_safety.h"

#include <cstdio>
#include <cstdlib>

namespace censys::core {

void ThreadRole::Die() const {
  std::fputs(
      "censysim: command-thread contract violated: a pointer-returning fast "
      "path (or other REQUIRES(command_role) API) was called from a thread "
      "that is not the registered command thread. Use the *Copy accessors "
      "from concurrent readers, or ThreadRole::Detach() for a legitimate "
      "sequential handoff.\n",
      stderr);
  std::abort();
}

}  // namespace censys::core
