// Lock-free stage handoff for the tick pipeline.
//
// Two primitives, both bounded, both allocation-free on the hot path:
//
//   Ring<T>       a bounded lock-free MPMC ring (Vyukov's bounded queue).
//                 The engine uses it single-producer / multi-consumer: the
//                 sequencer streams candidate indices in, interrogation
//                 workers (and the commit stage, when it helps out) pop
//                 them. A full ring is backpressure: the producer switches
//                 to draining completed results instead of blocking on a
//                 condition variable — there are no condvars anywhere on
//                 the tick path (censyslint enforces this for the engine
//                 and interrogate layers).
//
//   SlotBoard<T>  sequence-indexed staging buffers for group commit.
//                 Workers publish result `seq` with a release store into
//                 the slot owned by stripe (seq % stripes); the commit
//                 stage walks seqs in order with acquire loads and drains
//                 whatever is ready. Striping keeps neighbouring sequence
//                 numbers on different cache lines, so workers finishing
//                 adjacent candidates never write the same line.
//
// Concurrency: Ring is safe for any number of concurrent producers and
// consumers (per-cell sequence counters order every claim); SlotBoard
// allows one publisher per slot plus one consumer thread — publication is
// a release store observed by an acquire load, the only synchronization
// the determinism story needs, because commit order is the sequence stamp
// rather than arrival order. Reset() must not race Publish/Ready (the
// engine resets between batches, while no workers are running).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace censys::core {

template <typename T>
class Ring {
 public:
  // Capacity is rounded up to a power of two (minimum 2).
  explicit Ring(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  // Non-blocking push; false when the ring is full (backpressure — the
  // caller should drain downstream work instead of spinning).
  bool TryPush(T value) {
    Cell* cell;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  // Non-blocking pop; false when the ring is empty.
  bool TryPop(T& out) {
    Cell* cell;
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  // Approximate occupancy (exact only when producers and consumers are
  // quiescent); diagnostics only.
  std::size_t ApproxSize() const {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  std::size_t mask_ = 0;
  std::unique_ptr<Cell[]> cells_;
  // Producer and consumer cursors on separate cache lines.
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::atomic<std::size_t> head_{0};
};

template <typename T>
class SlotBoard {
 public:
  explicit SlotBoard(std::size_t stripes = 8)
      : stripes_(stripes == 0 ? 1 : stripes), stripe_(stripes_) {}

  SlotBoard(const SlotBoard&) = delete;
  SlotBoard& operator=(const SlotBoard&) = delete;

  // Prepares the board for a batch of `n` slots. Grows stripe storage as
  // needed and clears every ready flag. Must be called while no worker is
  // publishing (the engine resets between batches).
  void Reset(std::size_t n) {
    size_ = n;
    const std::size_t per_stripe = n / stripes_ + 1;
    for (Stripe& stripe : stripe_) {
      if (stripe.capacity < per_stripe) {
        stripe.cells = std::make_unique<Cell[]>(per_stripe);
        stripe.capacity = per_stripe;
      } else {
        for (std::size_t i = 0; i < per_stripe; ++i) {
          stripe.cells[i].ready.store(0, std::memory_order_relaxed);
        }
      }
    }
  }

  std::size_t size() const { return size_; }

  // The staging slot for sequence number `seq`. Worker-private until
  // Publish(seq); consumer-owned once Ready(seq) observes the publish.
  T& Slot(std::size_t seq) { return CellFor(seq).value; }

  // Release-publishes slot `seq` to the commit stage.
  void Publish(std::size_t seq) {
    CellFor(seq).ready.store(1, std::memory_order_release);
  }

  // Acquire-checks whether slot `seq` has been published.
  bool Ready(std::size_t seq) const {
    return CellFor(seq).ready.load(std::memory_order_acquire) != 0;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint32_t> ready{0};
    T value{};
  };
  struct Stripe {
    std::unique_ptr<Cell[]> cells;
    std::size_t capacity = 0;
  };

  Cell& CellFor(std::size_t seq) const {
    return stripe_[seq % stripes_].cells[seq / stripes_];
  }

  std::size_t stripes_;
  std::size_t size_ = 0;
  mutable std::vector<Stripe> stripe_;
};

}  // namespace censys::core
