// SHA-256 (FIPS 180-4). Certificates in censysim are addressed by their
// SHA-256 fingerprint exactly as in the paper ("SHA256-FP-addressed X.509
// Certificate"), so we carry a real implementation rather than a toy hash.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace censys {

using Sha256Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(const void* data, std::size_t len);
  void Update(std::string_view s) { Update(s.data(), s.size()); }
  Sha256Digest Finish();

  static Sha256Digest Hash(std::string_view data);

 private:
  void ProcessBlock(const std::uint8_t* block);

  std::uint32_t state_[8];
  std::uint64_t bit_count_;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_;
};

// Lowercase hex encoding of a digest ("e3b0c442...").
std::string ToHex(const Sha256Digest& digest);

// First 8 bytes of the digest as a big-endian uint64; convenient compact id.
std::uint64_t DigestPrefix64(const Sha256Digest& digest);

}  // namespace censys
