// Compile-time concurrency contracts.
//
// Every lock in the tree is one of the capability-annotated wrappers below,
// so the safety story ("writers exclusive, readers shared", "only the
// command thread may follow this pointer") lives in the type system instead
// of comments. Under Clang the annotations compile to thread-safety-analysis
// attributes and the build runs with -Werror=thread-safety; under other
// compilers they expand to nothing and the same invariants are enforced by
// the debug-build runtime checks (ThreadRole) and by tools/censyslint,
// which bans raw standard-library mutexes outside this header.
//
// Concurrency: this header *defines* the locking vocabulary — Mutex /
// SharedMutex capabilities, MutexLock / ReaderLock scoped acquisition, and
// ThreadRole, the capability modelling "runs on the command thread".
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <thread>

// --- Clang thread-safety-analysis attribute macros ----------------------------

#if defined(__clang__) && !defined(SWIG)
#define CENSYS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CENSYS_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define CENSYS_CAPABILITY(x) CENSYS_THREAD_ANNOTATION(capability(x))
#define CENSYS_SCOPED_CAPABILITY CENSYS_THREAD_ANNOTATION(scoped_lockable)
#define CENSYS_GUARDED_BY(x) CENSYS_THREAD_ANNOTATION(guarded_by(x))
#define CENSYS_PT_GUARDED_BY(x) CENSYS_THREAD_ANNOTATION(pt_guarded_by(x))
#define CENSYS_REQUIRES(...) \
  CENSYS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define CENSYS_REQUIRES_SHARED(...) \
  CENSYS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define CENSYS_ACQUIRE(...) \
  CENSYS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define CENSYS_ACQUIRE_SHARED(...) \
  CENSYS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define CENSYS_RELEASE(...) \
  CENSYS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define CENSYS_RELEASE_SHARED(...) \
  CENSYS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define CENSYS_RELEASE_GENERIC(...) \
  CENSYS_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define CENSYS_EXCLUDES(...) CENSYS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define CENSYS_ASSERT_CAPABILITY(x) \
  CENSYS_THREAD_ANNOTATION(assert_capability(x))
#define CENSYS_RETURN_CAPABILITY(x) CENSYS_THREAD_ANNOTATION(lock_returned(x))
#define CENSYS_NO_THREAD_SAFETY_ANALYSIS \
  CENSYS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace censys::core {

class MutexLock;
class ReaderLock;

// Exclusive mutex capability. Prefer the scoped MutexLock to manual
// Lock/Unlock pairs.
class CENSYS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CENSYS_ACQUIRE() { mu_.lock(); }
  void Unlock() CENSYS_RELEASE() { mu_.unlock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

// Reader/writer mutex capability: writers take it exclusively (MutexLock),
// readers share it (ReaderLock).
class CENSYS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() CENSYS_ACQUIRE() { mu_.lock(); }
  void Unlock() CENSYS_RELEASE() { mu_.unlock(); }
  void LockShared() CENSYS_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() CENSYS_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  friend class MutexLock;
  friend class ReaderLock;
  std::shared_mutex mu_;
};

// RAII exclusive lock over either mutex kind. For Mutex it also carries the
// std::unique_lock a condition variable needs (Await).
class CENSYS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CENSYS_ACQUIRE(mu) : lock_(mu.mu_) {}
  explicit MutexLock(SharedMutex& mu) CENSYS_ACQUIRE(mu) : shared_(&mu.mu_) {
    shared_->lock();
  }
  ~MutexLock() CENSYS_RELEASE() {
    if (shared_ != nullptr) shared_->unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Blocks on `cv` until `pred()` holds; the lock is released while waiting
  // and held whenever `pred` runs. Only valid for locks over a plain Mutex.
  template <typename Pred>
  void Await(std::condition_variable& cv, Pred&& pred) {
    cv.wait(lock_, static_cast<Pred&&>(pred));
  }

 private:
  std::unique_lock<std::mutex> lock_;     // engaged for Mutex
  std::shared_mutex* shared_ = nullptr;   // engaged for SharedMutex
};

// RAII shared (reader) lock over a SharedMutex.
class CENSYS_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) CENSYS_ACQUIRE_SHARED(mu) : mu_(&mu.mu_) {
    mu_->lock_shared();
  }
  ~ReaderLock() CENSYS_RELEASE_GENERIC() { mu_->unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  std::shared_mutex* mu_;
};

// A capability that is never a runtime lock: it models "this code runs on
// the component's command thread". Pointer-returning fast paths whose
// results are only stable against the single command thread are annotated
// CENSYS_REQUIRES(command_role()); callers satisfy the annotation with a
// ThreadRoleGuard (or transitively via their own REQUIRES).
//
// Runtime backing (debug builds, CENSYSIM_DEBUG_THREAD_CHECKS): command
// processing entry points call AdoptCurrentThread(), stamping the current
// thread as the command thread; AssertHeld() aborts if called from any
// other thread while a command thread is stamped. The first asserting
// thread self-adopts, so single-threaded use needs no setup.
class CENSYS_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  // Re-stamps the command thread. Command processing entry points call this
  // first: whichever thread performs command processing *is* the command
  // thread, which keeps sequential handoffs (a tick loop moving between
  // threads across joins) legal while still catching concurrent misuse.
  // Statically declares the capability held for the rest of the scope.
  // Const because the stamp is mutable debug state, reachable through the
  // const command_role() accessors.
  void AdoptCurrentThread() const noexcept CENSYS_ASSERT_CAPABILITY(this) {
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  }

  // Clears the stamp; the next adopter or asserter binds afresh. For tests
  // that legitimately hand single-threaded use across threads.
  void Detach() const noexcept {
    owner_.store(std::thread::id{}, std::memory_order_relaxed);
  }

  // Debug check that the caller is the command thread (self-adopting when
  // no thread is stamped yet). Statically tells the analysis the capability
  // is held from here on.
  void AssertHeld() const CENSYS_ASSERT_CAPABILITY(this) {
#ifdef CENSYSIM_DEBUG_THREAD_CHECKS
    if (!CheckHeld()) Die();
#endif
  }

  // The raw predicate behind AssertHeld, testable in any build: true iff
  // the current thread is (or just became) the command thread.
  bool CheckHeld() const noexcept {
    std::thread::id expected{};
    const std::thread::id self = std::this_thread::get_id();
    return owner_.compare_exchange_strong(expected, self,
                                          std::memory_order_relaxed) ||
           expected == self;
  }

 private:
  [[noreturn]] void Die() const;  // report + abort (thread_safety.cc)

  mutable std::atomic<std::thread::id> owner_{};
};

// Scoped acquisition of a ThreadRole: declares (and in debug builds checks)
// that the enclosing scope runs on the role's command thread.
class CENSYS_SCOPED_CAPABILITY ThreadRoleGuard {
 public:
  explicit ThreadRoleGuard(const ThreadRole& role) CENSYS_ACQUIRE(role) {
    role.AssertHeld();
  }
  ~ThreadRoleGuard() CENSYS_RELEASE() {}

  ThreadRoleGuard(const ThreadRoleGuard&) = delete;
  ThreadRoleGuard& operator=(const ThreadRoleGuard&) = delete;
};

}  // namespace censys::core
