// Analytics engine (§5.3 "Analytics Engine" / "Raw Data Downloads").
//
// Censys snapshots its Internet Map to BigQuery daily; after three months
// only one weekday snapshot per week is retained. We model the snapshot
// store and its retention policy, plus the aggregate series longitudinal
// analyses consume.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/thread_safety.h"
#include "core/types.h"

namespace censys::search {

struct DailySnapshot {
  std::int64_t day = 0;  // simulated day number
  std::uint64_t total_services = 0;
  std::uint64_t total_hosts = 0;
  std::map<std::string, std::uint64_t> by_protocol;
  std::map<Port, std::uint64_t> by_port;
  std::map<std::string, std::uint64_t> by_country;
};

// Concurrency: a reader/writer lock guards the snapshot map — writers
// (AddSnapshot / ThinOut, the engine tick loop) exclusive, copying queries
// shared. The pointer-returning lookups are lockless fast paths gated on
// the command-thread capability instead of the lock.
class AnalyticsStore {
 public:
  struct Options {
    // Snapshots older than this are thinned to one per week.
    Duration full_retention = Duration::Days(90);
    int keep_weekday = 2;  // day-of-week kept after thinning
  };

  AnalyticsStore() : AnalyticsStore(Options()) {}
  explicit AnalyticsStore(Options options) : options_(options) {}

  void AddSnapshot(DailySnapshot snapshot);

  // Applies the retention policy relative to `now`; returns snapshots
  // dropped.
  std::size_t ThinOut(Timestamp now);

  // Pointer-returning lookups are lockless and therefore only safe from
  // the thread that also writes (the engine tick loop): AddSnapshot /
  // ThinOut can invalidate the pointer. Concurrent readers (the serving
  // frontend) use the copying variants below. Callers hold the
  // command-thread capability (ThreadRoleGuard); debug builds assert the
  // calling thread at runtime.
  const DailySnapshot* GetDay(std::int64_t day) const
      CENSYS_REQUIRES(command_role());
  // Latest snapshot at or before `day`, if any.
  const DailySnapshot* GetLatestUpTo(std::int64_t day) const
      CENSYS_REQUIRES(command_role());

  // Thread-safe copies for cross-thread queries.
  std::optional<DailySnapshot> GetDayCopy(std::int64_t day) const;
  std::optional<DailySnapshot> GetLatestUpToCopy(std::int64_t day) const;

  // Longitudinal series: (day, count) for a protocol across all snapshots.
  std::vector<std::pair<std::int64_t, std::uint64_t>> ProtocolSeries(
      const std::string& protocol) const;

  std::size_t size() const;

  // The command-thread capability backing the pointer-returning lookups.
  // Writers (AddSnapshot / ThinOut) re-stamp the command thread in debug
  // builds.
  const core::ThreadRole& command_role() const { return command_role_; }

 private:
  Options options_;
  // Daily snapshots land during ticks while the serving frontend reads
  // series concurrently: writers exclusive, readers shared.
  mutable core::SharedMutex mu_;
  core::ThreadRole command_role_;
  std::map<std::int64_t, DailySnapshot> snapshots_ CENSYS_GUARDED_BY(mu_);
};

}  // namespace censys::search
