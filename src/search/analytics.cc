#include "search/analytics.h"

namespace censys::search {

void AnalyticsStore::AddSnapshot(DailySnapshot snapshot) {
  command_role_.AdoptCurrentThread();
  const core::MutexLock lock(mu_);
  snapshots_[snapshot.day] = std::move(snapshot);
}

std::size_t AnalyticsStore::ThinOut(Timestamp now) {
  command_role_.AdoptCurrentThread();
  const core::MutexLock lock(mu_);
  const std::int64_t cutoff_day =
      (now - options_.full_retention).minutes / (24 * 60);
  std::size_t dropped = 0;
  for (auto it = snapshots_.begin(); it != snapshots_.end();) {
    if (it->first < cutoff_day && (it->first % 7) != options_.keep_weekday) {
      it = snapshots_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

const DailySnapshot* AnalyticsStore::GetDay(std::int64_t day) const
    CENSYS_NO_THREAD_SAFETY_ANALYSIS {
  // Lockless: the command-thread role, not mu_, makes this read safe, so
  // the lock-based analysis is off in this body. Debug builds abort when
  // called from any other thread.
  command_role_.AssertHeld();
  const auto it = snapshots_.find(day);
  return it == snapshots_.end() ? nullptr : &it->second;
}

const DailySnapshot* AnalyticsStore::GetLatestUpTo(std::int64_t day) const
    CENSYS_NO_THREAD_SAFETY_ANALYSIS {
  // Lockless command-thread fast path; see GetDay.
  command_role_.AssertHeld();
  auto it = snapshots_.upper_bound(day);
  if (it == snapshots_.begin()) return nullptr;
  --it;
  return &it->second;
}

std::optional<DailySnapshot> AnalyticsStore::GetDayCopy(
    std::int64_t day) const {
  const core::ReaderLock lock(mu_);
  const auto it = snapshots_.find(day);
  if (it == snapshots_.end()) return std::nullopt;
  return it->second;
}

std::optional<DailySnapshot> AnalyticsStore::GetLatestUpToCopy(
    std::int64_t day) const {
  const core::ReaderLock lock(mu_);
  auto it = snapshots_.upper_bound(day);
  if (it == snapshots_.begin()) return std::nullopt;
  --it;
  return it->second;
}

std::vector<std::pair<std::int64_t, std::uint64_t>>
AnalyticsStore::ProtocolSeries(const std::string& protocol) const {
  const core::ReaderLock lock(mu_);
  std::vector<std::pair<std::int64_t, std::uint64_t>> series;
  for (const auto& [day, snapshot] : snapshots_) {
    const auto it = snapshot.by_protocol.find(protocol);
    series.emplace_back(day, it == snapshot.by_protocol.end() ? 0 : it->second);
  }
  return series;
}

std::size_t AnalyticsStore::size() const {
  const core::ReaderLock lock(mu_);
  return snapshots_.size();
}

}  // namespace censys::search
