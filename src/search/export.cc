#include "search/export.h"

#include <cassert>

#include "storage/serialize.h"

namespace censys::search {
namespace {

constexpr std::string_view kMagic = "CSNAP\x01";
constexpr std::size_t kBlockTarget = 64 * 1024;

}  // namespace

std::uint64_t ExportChecksum(std::string_view data) {
  std::uint64_t a = 1, b = 0;
  for (unsigned char c : data) {
    a = (a + c) % 0xFFFFFFFBull;
    b = (b + a) % 0xFFFFFFFBull;
  }
  return (b << 32) | a;
}

SnapshotWriter::SnapshotWriter(std::int64_t snapshot_day, std::string dataset) {
  buffer_.append(kMagic);
  storage::PutVarint(buffer_, static_cast<std::uint64_t>(snapshot_day));
  storage::PutLengthPrefixed(buffer_, dataset);
}

void SnapshotWriter::Append(const ExportRecord& record) {
  assert(!finished_);
  storage::PutLengthPrefixed(block_, record.entity_id);
  storage::PutLengthPrefixed(block_, storage::EncodeFields(record.fields));
  ++block_records_;
  ++record_count_;
  if (block_.size() >= kBlockTarget) FlushBlock();
}

void SnapshotWriter::FlushBlock() {
  if (block_records_ == 0) return;
  storage::PutVarint(buffer_, block_records_);
  storage::PutLengthPrefixed(buffer_, block_);
  storage::PutVarint(buffer_, ExportChecksum(block_));
  block_.clear();
  block_records_ = 0;
}

std::string SnapshotWriter::Finish() {
  assert(!finished_);
  FlushBlock();
  storage::PutVarint(buffer_, 0);  // zero-record terminator block
  storage::PutVarint(buffer_, record_count_);
  finished_ = true;
  return std::move(buffer_);
}

bool SnapshotReader::Open(std::string_view bytes, std::string* error) {
  error->clear();
  records_.clear();
  if (bytes.substr(0, kMagic.size()) != kMagic) {
    *error = "bad magic";
    return false;
  }
  std::size_t pos = kMagic.size();
  const auto day = storage::GetVarint(bytes, &pos);
  const auto dataset = storage::GetLengthPrefixed(bytes, &pos);
  if (!day.has_value() || !dataset.has_value()) {
    *error = "truncated header";
    return false;
  }
  snapshot_day_ = static_cast<std::int64_t>(*day);
  dataset_ = std::string(*dataset);

  while (true) {
    const auto block_records = storage::GetVarint(bytes, &pos);
    if (!block_records.has_value()) {
      *error = "truncated block header";
      return false;
    }
    if (*block_records == 0) break;  // terminator
    const auto block = storage::GetLengthPrefixed(bytes, &pos);
    const auto checksum = storage::GetVarint(bytes, &pos);
    if (!block.has_value() || !checksum.has_value()) {
      *error = "truncated block";
      return false;
    }
    if (ExportChecksum(*block) != *checksum) {
      *error = "block checksum mismatch";
      return false;
    }
    std::size_t block_pos = 0;
    for (std::uint64_t i = 0; i < *block_records; ++i) {
      const auto entity = storage::GetLengthPrefixed(*block, &block_pos);
      const auto fields_bytes = storage::GetLengthPrefixed(*block, &block_pos);
      if (!entity.has_value() || !fields_bytes.has_value()) {
        *error = "corrupt record";
        return false;
      }
      const auto fields = storage::DecodeFields(*fields_bytes);
      if (!fields.has_value()) {
        *error = "corrupt field map";
        return false;
      }
      records_.push_back(ExportRecord{std::string(*entity), *fields});
    }
  }
  const auto total = storage::GetVarint(bytes, &pos);
  if (!total.has_value() || *total != records_.size()) {
    *error = "record count mismatch";
    return false;
  }
  if (pos != bytes.size()) {
    *error = "trailing bytes";
    return false;
  }
  return true;
}

}  // namespace censys::search
