#include "search/pivots.h"

#include <unordered_set>

namespace censys::search {

void PivotIndex::Observe(ServiceKey key, std::string_view cert_sha256,
                         std::string_view jarm) {
  const std::uint64_t packed = key.Pack();
  // Drop any previous attribution first (the service may have rotated its
  // certificate or changed TLS stack).
  Forget(key);
  if (cert_sha256.empty() && jarm.empty()) return;
  if (!cert_sha256.empty()) {
    by_cert_[std::string(cert_sha256)].insert(packed);
  }
  if (!jarm.empty()) {
    by_jarm_[std::string(jarm)].insert(packed);
  }
  attribution_[packed] =
      std::make_pair(std::string(cert_sha256), std::string(jarm));
}

void PivotIndex::Forget(ServiceKey key) {
  const std::uint64_t packed = key.Pack();
  const auto it = attribution_.find(packed);
  if (it == attribution_.end()) return;
  const auto& [cert, jarm] = it->second;
  if (!cert.empty()) {
    if (const auto entry = by_cert_.find(cert); entry != by_cert_.end()) {
      entry->second.erase(packed);
      if (entry->second.empty()) by_cert_.erase(entry);
    }
  }
  if (!jarm.empty()) {
    if (const auto entry = by_jarm_.find(jarm); entry != by_jarm_.end()) {
      entry->second.erase(packed);
      if (entry->second.empty()) by_jarm_.erase(entry);
    }
  }
  attribution_.erase(it);
}

std::vector<ServiceKey> PivotIndex::EndpointsWithCert(
    std::string_view sha256) const {
  std::vector<ServiceKey> out;
  if (const auto it = by_cert_.find(sha256); it != by_cert_.end()) {
    for (std::uint64_t packed : it->second) {
      out.push_back(ServiceKey::Unpack(packed));
    }
  }
  return out;
}

std::vector<ServiceKey> PivotIndex::EndpointsWithJarm(
    std::string_view jarm) const {
  std::vector<ServiceKey> out;
  if (const auto it = by_jarm_.find(jarm); it != by_jarm_.end()) {
    for (std::uint64_t packed : it->second) {
      out.push_back(ServiceKey::Unpack(packed));
    }
  }
  return out;
}

std::vector<std::pair<std::string, std::size_t>> PivotIndex::RareJarmClusters(
    std::size_t min_hosts, std::size_t max_hosts) const {
  std::vector<std::pair<std::string, std::size_t>> clusters;
  for (const auto& [jarm, endpoints] : by_jarm_) {
    std::unordered_set<std::uint32_t> hosts;
    for (std::uint64_t packed : endpoints) {
      hosts.insert(ServiceKey::Unpack(packed).ip.value());
    }
    if (hosts.size() >= min_hosts && hosts.size() <= max_hosts) {
      clusters.emplace_back(jarm, hosts.size());
    }
  }
  return clusters;
}

}  // namespace censys::search
