#include "search/index.h"

#include <algorithm>

#include "core/strings.h"
#include "search/match.h"

namespace censys::search {
namespace {

constexpr char kSep = '\x1f';

bool HasWildcard(std::string_view pattern) {
  return pattern.find('*') != std::string_view::npos ||
         pattern.find('?') != std::string_view::npos;
}

}  // namespace

std::vector<std::string> SearchIndex::Tokenize(std::string_view value) {
  // Shared with the per-document matcher (search/match.h) so the index
  // and standing-query evaluations can never tokenize differently.
  return TokenizeValue(value);
}

void SearchIndex::BindMetrics(metrics::Registry* registry) {
  docs_metric_ = metrics::BindGauge(registry, "censys.search.docs");
  indexed_metric_ = metrics::BindCounter(registry, "censys.search.indexed");
  queries_metric_ = metrics::BindCounter(registry, "censys.search.queries");
}

void SearchIndex::Index(std::string_view doc_id,
                        const storage::FieldMap& fields) {
  const core::MutexLock lock(mu_);
  RemoveLocked(doc_id);
  const std::string id(doc_id);
  for (const auto& [field, value] : fields) {
    field_docs_[field].insert(id);
    for (const std::string& token : Tokenize(value)) {
      postings_[field + kSep + token].insert(id);
      postings_[kSep + token].insert(id);
    }
  }
  docs_[id] = fields;
  indexed_metric_.Add();
  docs_metric_.Set(static_cast<std::int64_t>(docs_.size()));
}

void SearchIndex::Remove(std::string_view doc_id) {
  const core::MutexLock lock(mu_);
  RemoveLocked(doc_id);
}

void SearchIndex::RemoveLocked(std::string_view doc_id) {
  const auto it = docs_.find(doc_id);
  if (it == docs_.end()) return;
  const std::string id(doc_id);
  for (const auto& [field, value] : it->second) {
    if (const auto fd = field_docs_.find(field); fd != field_docs_.end()) {
      fd->second.erase(id);
      if (fd->second.empty()) field_docs_.erase(fd);
    }
    for (const std::string& token : Tokenize(value)) {
      for (const std::string& key : {field + kSep + token, kSep + token}) {
        if (const auto p = postings_.find(key); p != postings_.end()) {
          p->second.erase(id);
          if (p->second.empty()) postings_.erase(p);
        }
      }
    }
  }
  docs_.erase(it);
  docs_metric_.Set(static_cast<std::int64_t>(docs_.size()));
}

std::vector<std::string> SearchIndex::Search(std::string_view query,
                                             std::string* error) const {
  queries_metric_.Add();
  const auto parsed = ParseQuery(query, error);
  if (!parsed.has_value()) return {};
  const core::ReaderLock lock(mu_);
  const DocSet result = EvalNode(*parsed);
  return std::vector<std::string>(result.begin(), result.end());
}

std::vector<std::string> SearchIndex::Execute(const QueryPtr& query) const {
  const core::ReaderLock lock(mu_);
  const DocSet result = EvalNode(query);
  return std::vector<std::string>(result.begin(), result.end());
}

SearchIndex::DocSet SearchIndex::EvalNode(const QueryPtr& node) const {
  switch (node->kind) {
    case QueryNode::Kind::kTerm:
      return EvalTerm(*node);
    case QueryNode::Kind::kAnd: {
      DocSet acc = EvalNode(node->children[0]);
      for (std::size_t i = 1; i < node->children.size() && !acc.empty(); ++i) {
        const DocSet next = EvalNode(node->children[i]);
        DocSet intersection;
        std::set_intersection(
            acc.begin(), acc.end(), next.begin(), next.end(),
            std::inserter(intersection, intersection.begin()));
        acc = std::move(intersection);
      }
      return acc;
    }
    case QueryNode::Kind::kOr: {
      DocSet acc;
      for (const QueryPtr& child : node->children) {
        const DocSet next = EvalNode(child);
        acc.insert(next.begin(), next.end());
      }
      return acc;
    }
    case QueryNode::Kind::kNot: {
      const DocSet excluded = EvalNode(node->children[0]);
      DocSet result;
      for (const auto& [id, fields] : docs_) {
        if (!excluded.contains(id)) result.insert(id);
      }
      return result;
    }
  }
  return {};
}

SearchIndex::DocSet SearchIndex::EvalTerm(const QueryNode& term) const {
  const std::string pattern_lower = ToLower(term.pattern);

  if (HasWildcard(term.pattern)) {
    // Wildcard: narrow to documents having the field, then glob-match the
    // stored value.
    DocSet result;
    auto match_doc = [&](const std::string& id,
                         const storage::FieldMap& fields) {
      if (!term.field.empty()) {
        const auto it = fields.find(term.field);
        if (it != fields.end() && GlobMatch(pattern_lower, ToLower(it->second)))
          result.insert(id);
        return;
      }
      for (const auto& [field, value] : fields) {
        if (GlobMatch(pattern_lower, ToLower(value))) {
          result.insert(id);
          return;
        }
      }
    };
    if (!term.field.empty()) {
      const auto fd = field_docs_.find(term.field);
      if (fd == field_docs_.end()) return {};
      for (const std::string& id : fd->second) {
        match_doc(id, docs_.find(id)->second);
      }
    } else {
      for (const auto& [id, fields] : docs_) match_doc(id, fields);
    }
    return result;
  }

  const std::vector<std::string> words = Tokenize(term.pattern);
  if (words.empty()) return {};

  // AND of word postings.
  DocSet acc;
  for (std::size_t i = 0; i < words.size(); ++i) {
    const std::string key =
        (term.field.empty() ? std::string() : term.field) + kSep + words[i];
    const auto p = postings_.find(key);
    if (p == postings_.end()) return {};
    if (i == 0) {
      acc = p->second;
    } else {
      DocSet intersection;
      std::set_intersection(
          acc.begin(), acc.end(), p->second.begin(), p->second.end(),
          std::inserter(intersection, intersection.begin()));
      acc = std::move(intersection);
    }
    if (acc.empty()) return acc;
  }

  // Multi-word phrases post-filter for contiguity.
  if (term.is_phrase && words.size() > 1) {
    DocSet filtered;
    for (const std::string& id : acc) {
      const storage::FieldMap& fields = docs_.find(id)->second;
      auto contains_phrase = [&](const std::string& value) {
        return ContainsIgnoreCase(value, term.pattern);
      };
      if (!term.field.empty()) {
        const auto it = fields.find(term.field);
        if (it != fields.end() && contains_phrase(it->second))
          filtered.insert(id);
      } else {
        for (const auto& [field, value] : fields) {
          if (contains_phrase(value)) {
            filtered.insert(id);
            break;
          }
        }
      }
    }
    return filtered;
  }
  return acc;
}

std::size_t SearchIndex::doc_count() const {
  const core::ReaderLock lock(mu_);
  return docs_.size();
}

std::size_t SearchIndex::term_count() const {
  const core::ReaderLock lock(mu_);
  return postings_.size();
}

const storage::FieldMap* SearchIndex::GetDocument(
    std::string_view doc_id) const {
  const core::ReaderLock lock(mu_);
  const auto it = docs_.find(doc_id);
  return it == docs_.end() ? nullptr : &it->second;
}

}  // namespace censys::search
