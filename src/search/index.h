// Full-text search over entity state (the Elasticsearch role in §5.3).
//
// Documents are entity field maps. Values are word-tokenized into an
// inverted index; term queries resolve through posting lists, wildcard and
// phrase queries narrow via the index where possible and post-filter
// against the stored document. NOT is evaluated against the full document
// universe, exactly like a boolean filter context.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/metrics.h"
#include "core/thread_safety.h"
#include "search/query.h"
#include "storage/delta.h"

namespace censys::search {

// Concurrency: one reader/writer lock guards the document store and both
// posting maps. Writers (Index / Remove) take it exclusively; queries and
// size probes share it, so the serving frontend can search from many
// threads concurrently with a rebuild.
class SearchIndex {
 public:
  // Indexes (or re-indexes) a document.
  void Index(std::string_view doc_id, const storage::FieldMap& fields);
  void Remove(std::string_view doc_id);

  // Executes a parsed query; result ids are sorted. Malformed queries (from
  // Search()) return an empty result with *error set. Queries take the
  // index's reader lock, so the serving frontend can search from many
  // threads concurrently with an Index/Remove rebuild.
  std::vector<std::string> Search(std::string_view query,
                                  std::string* error) const;
  std::vector<std::string> Execute(const QueryPtr& query) const;

  std::size_t doc_count() const;
  std::size_t term_count() const;
  // Pointer remains valid only until the next Index/Remove of that doc;
  // cross-thread callers must not hold it across a rebuild.
  const storage::FieldMap* GetDocument(std::string_view doc_id) const;

  // Registers censys.search.* instruments (docs gauge, index operations;
  // rebuild timing is recorded by the engine's RebuildSearchIndex).
  void BindMetrics(metrics::Registry* registry);

 private:
  using DocSet = std::set<std::string>;

  void RemoveLocked(std::string_view doc_id) CENSYS_REQUIRES(mu_);
  DocSet EvalNode(const QueryPtr& node) const CENSYS_REQUIRES_SHARED(mu_);
  DocSet EvalTerm(const QueryNode& term) const CENSYS_REQUIRES_SHARED(mu_);
  static std::vector<std::string> Tokenize(std::string_view value);

  // Writers (Index / Remove) exclusive, queries shared.
  mutable core::SharedMutex mu_;
  std::map<std::string, storage::FieldMap, std::less<>> docs_
      CENSYS_GUARDED_BY(mu_);
  // token -> doc ids. Tokens are "field\x1fword" plus "\x1fword" (any-field).
  std::map<std::string, DocSet, std::less<>> postings_ CENSYS_GUARDED_BY(mu_);
  // field -> doc ids that have the field (accelerates wildcard terms).
  std::map<std::string, DocSet, std::less<>> field_docs_
      CENSYS_GUARDED_BY(mu_);

  metrics::GaugeHandle docs_metric_;
  metrics::CounterHandle indexed_metric_;
  metrics::CounterHandle queries_metric_;
};

}  // namespace censys::search
