// Secondary pivot tables (§5.2 "Asynchronous Event Processing").
//
// "Censys asynchronously updates secondary tables that map from certificate
// fingerprint to IP address and triggers follow up JARM scans when a new
// TLS service is found." The PivotIndex holds those reverse mappings —
// certificate fingerprint -> endpoints and JARM -> endpoints — maintained
// from pipeline events, never on the query path. Threat hunters pivot on
// them (§7.2).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.h"

namespace censys::search {

class PivotIndex {
 public:
  // Records that `key` currently presents this certificate / TLS stack.
  // Empty strings are ignored (non-TLS services).
  void Observe(ServiceKey key, std::string_view cert_sha256,
               std::string_view jarm);

  // Removes a service from all pivots (service evicted).
  void Forget(ServiceKey key);

  std::vector<ServiceKey> EndpointsWithCert(std::string_view sha256) const;
  std::vector<ServiceKey> EndpointsWithJarm(std::string_view jarm) const;

  // JARMs shared by at least `min_endpoints` distinct hosts but no more
  // than `max_endpoints` — the rare-stack clusters threat hunters start
  // from.
  std::vector<std::pair<std::string, std::size_t>> RareJarmClusters(
      std::size_t min_hosts, std::size_t max_hosts) const;

  std::size_t cert_count() const { return by_cert_.size(); }
  std::size_t jarm_count() const { return by_jarm_.size(); }

 private:
  std::map<std::string, std::set<std::uint64_t>, std::less<>> by_cert_;
  std::map<std::string, std::set<std::uint64_t>, std::less<>> by_jarm_;
  // Reverse: packed key -> (cert, jarm) currently attributed, so Forget and
  // re-observation stay consistent when a service's TLS identity changes.
  std::map<std::uint64_t, std::pair<std::string, std::string>> attribution_;
};

}  // namespace censys::search
