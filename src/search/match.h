// Per-document query evaluation (the percolator half of §5.3).
//
// SearchIndex answers "which documents match this query" through posting
// lists; standing queries need the transpose — "does THIS document match"
// — evaluated against a single field map with no index at all. The two
// must agree exactly: MatchesDocument(q, fields) holds iff an index
// containing the document would return it from Execute(q). The matcher
// test asserts that equivalence over randomized documents and queries.
//
// One deliberate asymmetry: NOT. The index evaluates NOT against its
// document universe (docs minus matches); per-document it is plain
// negation. The two coincide exactly for documents *in* the universe,
// which is why StandingQueryRegistry tracks the non-empty-entity universe
// itself and only evaluates members.
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "search/query.h"
#include "storage/delta.h"

namespace censys::search {

// Tokenization shared with SearchIndex: lowercased maximal runs of
// [alnum '.' '_' '-'].
std::vector<std::string> TokenizeValue(std::string_view value);

// True iff `query` matches the document `fields` under the index's exact
// semantics (word-AND terms, phrase post-filter, glob wildcards, NOT as
// negation). An empty field map matches nothing except via NOT — callers
// enforcing index equivalence must not evaluate empty documents.
bool MatchesDocument(const QueryPtr& query, const storage::FieldMap& fields);

// Collects the field names the query's terms constrain into `fields`, and
// sets *any_field when some term searches all fields (bare word, bare
// wildcard). A delta touching none of the collected fields cannot change
// the document's match status — unless *any_field, when every field
// counts. Used by the standing-query registry to shortlist queries per
// commit delta.
void CollectQueryFields(const QueryPtr& query, std::set<std::string>* fields,
                        bool* any_field);

}  // namespace censys::search
