#include "search/query.h"

#include <cctype>

#include "core/strings.h"

namespace censys::search {
namespace {

struct Token {
  enum class Kind { kWord, kQuoted, kColon, kLParen, kRParen, kEnd } kind;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  Token Next(std::string* error) {
    SkipSpace();
    if (pos_ >= source_.size()) return {Token::Kind::kEnd, ""};
    const char c = source_[pos_];
    if (c == '(') {
      ++pos_;
      return {Token::Kind::kLParen, "("};
    }
    if (c == ')') {
      ++pos_;
      return {Token::Kind::kRParen, ")"};
    }
    if (c == ':') {
      ++pos_;
      return {Token::Kind::kColon, ":"};
    }
    if (c == '"') {
      ++pos_;
      std::string text;
      while (pos_ < source_.size() && source_[pos_] != '"') {
        text.push_back(source_[pos_++]);
      }
      if (pos_ >= source_.size()) {
        *error = "unterminated quoted string";
        return {Token::Kind::kEnd, ""};
      }
      ++pos_;
      return {Token::Kind::kQuoted, text};
    }
    std::string text;
    while (pos_ < source_.size()) {
      const char ch = source_[pos_];
      if (std::isspace(static_cast<unsigned char>(ch)) || ch == '(' ||
          ch == ')' || ch == ':' || ch == '"')
        break;
      text.push_back(ch);
      ++pos_;
    }
    return {Token::Kind::kWord, text};
  }

 private:
  void SkipSpace() {
    while (pos_ < source_.size() &&
           std::isspace(static_cast<unsigned char>(source_[pos_])))
      ++pos_;
  }
  std::string_view source_;
  std::size_t pos_ = 0;
};

class Parser {
 public:
  Parser(std::string_view source, std::string* error)
      : lexer_(source), error_(error) {
    Advance();
  }

  std::optional<QueryPtr> Parse() {
    auto node = ParseOr();
    if (!node.has_value()) return std::nullopt;
    if (current_.kind != Token::Kind::kEnd) {
      *error_ = "unexpected token: " + current_.text;
      return std::nullopt;
    }
    return node;
  }

 private:
  void Advance() { current_ = lexer_.Next(error_); }

  std::optional<QueryPtr> ParseOr() {
    auto left = ParseAnd();
    if (!left.has_value()) return std::nullopt;
    std::vector<QueryPtr> children{*left};
    while (current_.kind == Token::Kind::kWord &&
           EqualsIgnoreCase(current_.text, "OR")) {
      Advance();
      auto right = ParseAnd();
      if (!right.has_value()) return std::nullopt;
      children.push_back(*right);
    }
    if (children.size() == 1) return children[0];
    auto node = std::make_shared<QueryNode>();
    node->kind = QueryNode::Kind::kOr;
    node->children = std::move(children);
    return node;
  }

  std::optional<QueryPtr> ParseAnd() {
    auto left = ParseUnary();
    if (!left.has_value()) return std::nullopt;
    std::vector<QueryPtr> children{*left};
    while (true) {
      if (current_.kind == Token::Kind::kWord &&
          EqualsIgnoreCase(current_.text, "AND")) {
        Advance();
      } else if (current_.kind == Token::Kind::kEnd ||
                 current_.kind == Token::Kind::kRParen ||
                 (current_.kind == Token::Kind::kWord &&
                  EqualsIgnoreCase(current_.text, "OR"))) {
        break;
      }
      auto right = ParseUnary();
      if (!right.has_value()) return std::nullopt;
      children.push_back(*right);
    }
    if (children.size() == 1) return children[0];
    auto node = std::make_shared<QueryNode>();
    node->kind = QueryNode::Kind::kAnd;
    node->children = std::move(children);
    return node;
  }

  std::optional<QueryPtr> ParseUnary() {
    if (current_.kind == Token::Kind::kWord &&
        EqualsIgnoreCase(current_.text, "NOT")) {
      Advance();
      auto child = ParseUnary();
      if (!child.has_value()) return std::nullopt;
      auto node = std::make_shared<QueryNode>();
      node->kind = QueryNode::Kind::kNot;
      node->children.push_back(*child);
      return node;
    }
    if (current_.kind == Token::Kind::kLParen) {
      Advance();
      auto inner = ParseOr();
      if (!inner.has_value()) return std::nullopt;
      if (current_.kind != Token::Kind::kRParen) {
        *error_ = "expected ')'";
        return std::nullopt;
      }
      Advance();
      return inner;
    }
    return ParseTerm();
  }

  std::optional<QueryPtr> ParseTerm() {
    if (current_.kind != Token::Kind::kWord &&
        current_.kind != Token::Kind::kQuoted) {
      *error_ = "expected term";
      return std::nullopt;
    }
    const Token first = current_;
    if (first.kind == Token::Kind::kWord &&
        (EqualsIgnoreCase(first.text, "AND") ||
         EqualsIgnoreCase(first.text, "OR") ||
         EqualsIgnoreCase(first.text, "NOT"))) {
      *error_ = "operator '" + first.text + "' used where a term is expected";
      return std::nullopt;
    }
    Advance();
    auto node = std::make_shared<QueryNode>();
    node->kind = QueryNode::Kind::kTerm;

    if (first.kind == Token::Kind::kWord &&
        current_.kind == Token::Kind::kColon) {
      Advance();  // consume ':'
      if (current_.kind != Token::Kind::kWord &&
          current_.kind != Token::Kind::kQuoted) {
        *error_ = "expected value after ':'";
        return std::nullopt;
      }
      node->field = first.text;
      node->pattern = current_.text;
      node->is_phrase = current_.kind == Token::Kind::kQuoted;
      Advance();
      return node;
    }
    node->pattern = first.text;
    node->is_phrase = first.kind == Token::Kind::kQuoted;
    return node;
  }

  Lexer lexer_;
  Token current_;
  std::string* error_;
};

}  // namespace

std::optional<QueryPtr> ParseQuery(std::string_view source,
                                   std::string* error) {
  error->clear();
  Parser parser(source, error);
  return parser.Parse();
}

std::string ToString(const QueryPtr& node) {
  switch (node->kind) {
    case QueryNode::Kind::kTerm:
      return (node->field.empty() ? "" : node->field + ":") + "\"" +
             node->pattern + "\"";
    case QueryNode::Kind::kNot:
      return "NOT " + ToString(node->children[0]);
    case QueryNode::Kind::kAnd:
    case QueryNode::Kind::kOr: {
      std::string out = "(";
      for (std::size_t i = 0; i < node->children.size(); ++i) {
        if (i > 0) out += node->kind == QueryNode::Kind::kAnd ? " AND " : " OR ";
        out += ToString(node->children[i]);
      }
      return out + ")";
    }
  }
  return "?";
}

}  // namespace censys::search
