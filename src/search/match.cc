#include "search/match.h"

#include <cctype>

#include "core/strings.h"

namespace censys::search {
namespace {

bool HasWildcard(std::string_view pattern) {
  return pattern.find('*') != std::string_view::npos ||
         pattern.find('?') != std::string_view::npos;
}

// Does any token of `value` equal `word`? (The per-document equivalent of
// a posting-list membership probe.)
bool ValueHasWord(std::string_view value, std::string_view word) {
  for (const std::string& token : TokenizeValue(value)) {
    if (token == word) return true;
  }
  return false;
}

bool MatchesTerm(const QueryNode& term, const storage::FieldMap& fields) {
  if (HasWildcard(term.pattern)) {
    // Wildcard: glob against the stored value, field-narrowed when the
    // term names one (mirrors EvalTerm's field_docs_ narrowing).
    const std::string pattern_lower = ToLower(term.pattern);
    if (!term.field.empty()) {
      const auto it = fields.find(term.field);
      return it != fields.end() &&
             GlobMatch(pattern_lower, ToLower(it->second));
    }
    for (const auto& [field, value] : fields) {
      if (GlobMatch(pattern_lower, ToLower(value))) return true;
    }
    return false;
  }

  const std::vector<std::string> words = TokenizeValue(term.pattern);
  if (words.empty()) return false;

  // AND of word memberships. Any-field words may match in *different*
  // fields — exactly how the "\x1fword" postings intersect.
  for (const std::string& word : words) {
    bool found = false;
    if (!term.field.empty()) {
      const auto it = fields.find(term.field);
      found = it != fields.end() && ValueHasWord(it->second, word);
    } else {
      for (const auto& [field, value] : fields) {
        if (ValueHasWord(value, word)) {
          found = true;
          break;
        }
      }
    }
    if (!found) return false;
  }

  // Multi-word phrases additionally require contiguity inside ONE value.
  if (term.is_phrase && words.size() > 1) {
    if (!term.field.empty()) {
      const auto it = fields.find(term.field);
      return it != fields.end() &&
             ContainsIgnoreCase(it->second, term.pattern);
    }
    for (const auto& [field, value] : fields) {
      if (ContainsIgnoreCase(value, term.pattern)) return true;
    }
    return false;
  }
  return true;
}

}  // namespace

std::vector<std::string> TokenizeValue(std::string_view value) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  for (char c : value) {
    const unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc) || c == '.' || c == '_' || c == '-') {
      current.push_back(static_cast<char>(std::tolower(uc)));
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

bool MatchesDocument(const QueryPtr& query, const storage::FieldMap& fields) {
  switch (query->kind) {
    case QueryNode::Kind::kTerm:
      return MatchesTerm(*query, fields);
    case QueryNode::Kind::kAnd:
      for (const QueryPtr& child : query->children) {
        if (!MatchesDocument(child, fields)) return false;
      }
      return true;
    case QueryNode::Kind::kOr:
      for (const QueryPtr& child : query->children) {
        if (MatchesDocument(child, fields)) return true;
      }
      return false;
    case QueryNode::Kind::kNot:
      return !MatchesDocument(query->children[0], fields);
  }
  return false;
}

void CollectQueryFields(const QueryPtr& query, std::set<std::string>* fields,
                        bool* any_field) {
  if (query->kind == QueryNode::Kind::kTerm) {
    if (query->field.empty()) {
      *any_field = true;
    } else {
      fields->insert(query->field);
    }
    return;
  }
  for (const QueryPtr& child : query->children) {
    CollectQueryFields(child, fields, any_field);
  }
}

}  // namespace censys::search
