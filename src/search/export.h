// Raw data downloads (§5.3).
//
// "To support on-premise analysis and model training, we publish daily
// snapshots in Apache Avro format." Our container is Avro-shaped: a magic
// header, a schema-ish metadata section, then length-prefixed record
// blocks with per-block record counts and a CRC-style checksum, so
// truncation and corruption are detectable on import.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "storage/delta.h"

namespace censys::search {

struct ExportRecord {
  std::string entity_id;
  storage::FieldMap fields;
  bool operator==(const ExportRecord&) const = default;
};

class SnapshotWriter {
 public:
  // `snapshot_day` and `dataset` land in the header metadata.
  SnapshotWriter(std::int64_t snapshot_day, std::string dataset);

  void Append(const ExportRecord& record);
  // Finalizes the container (flushes the open block, writes the trailer)
  // and returns the bytes. The writer is spent afterwards.
  std::string Finish();

  std::uint64_t record_count() const { return record_count_; }

 private:
  void FlushBlock();

  std::string buffer_;
  std::string block_;
  std::uint32_t block_records_ = 0;
  std::uint64_t record_count_ = 0;
  bool finished_ = false;
};

class SnapshotReader {
 public:
  // Parses and verifies the container. Returns false (with *error) on a
  // bad header, checksum mismatch, or truncation.
  bool Open(std::string_view bytes, std::string* error);

  std::int64_t snapshot_day() const { return snapshot_day_; }
  const std::string& dataset() const { return dataset_; }
  const std::vector<ExportRecord>& records() const { return records_; }

 private:
  std::int64_t snapshot_day_ = 0;
  std::string dataset_;
  std::vector<ExportRecord> records_;
};

// Fletcher-style 64-bit checksum used by the container.
std::uint64_t ExportChecksum(std::string_view data);

}  // namespace censys::search
