// Lucene-like query language (§5.3 "Interactive Search and Exploration").
//
// Grammar (whitespace-separated):
//   query   := or
//   or      := and ("OR" and)*
//   and     := unary (("AND")? unary)*        -- adjacency is implicit AND
//   unary   := "NOT" unary | "(" query ")" | term
//   term    := FIELD ":" value | value        -- bare values search all fields
//   value   := WORD | QUOTED | pattern-with-*-or-?
//
// Examples the paper's Appendix E uses, expressed in this language:
//   services.service_name: "MODBUS"
//   service.name: HTTP AND http.html_title: "RouterOS*"
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace censys::search {

struct QueryNode;
using QueryPtr = std::shared_ptr<const QueryNode>;

struct QueryNode {
  enum class Kind { kTerm, kAnd, kOr, kNot } kind = Kind::kTerm;
  // kTerm:
  std::string field;    // empty = any field
  std::string pattern;  // may contain '*' / '?'
  bool is_phrase = false;
  // kAnd/kOr/kNot:
  std::vector<QueryPtr> children;
};

// Parses a query. Returns nullopt with *error set on malformed input.
std::optional<QueryPtr> ParseQuery(std::string_view source,
                                   std::string* error);

// Pretty-printer (diagnostics / tests).
std::string ToString(const QueryPtr& node);

}  // namespace censys::search
