#include "cert/store.h"

namespace censys::cert {

CertificateRecord& CertificateStore::Upsert(const Certificate& certificate,
                                            Timestamp now) {
  const std::string fingerprint = certificate.Sha256Hex();
  auto [it, inserted] = records_.try_emplace(fingerprint);
  CertificateRecord& record = it->second;
  if (inserted) {
    record.certificate = certificate;
    record.first_seen = now;
    record.lints = Lint(certificate);
    record.status = Validate(certificate, roots_, crls_, now);
    record.last_validated = now;
  }
  return record;
}

void CertificateStore::ObserveFromCt(const CtEntry& entry, Timestamp now) {
  CertificateRecord& record = Upsert(entry.certificate, now);
  record.seen_in_ct = true;
}

void CertificateStore::ObserveFromScan(const Certificate& certificate,
                                       ServiceKey presented_by,
                                       Timestamp now) {
  CertificateRecord& record = Upsert(certificate, now);
  record.seen_in_scan = true;
  record.presented_by.insert(presented_by.Pack());
}

std::size_t CertificateStore::RevalidateAll(Timestamp now) {
  std::size_t changed = 0;
  for (auto& [fingerprint, record] : records_) {
    const ValidationStatus status =
        Validate(record.certificate, roots_, crls_, now);
    if (status != record.status) {
      record.status = status;
      ++changed;
    }
    record.last_validated = now;
  }
  return changed;
}

const CertificateRecord* CertificateStore::Get(
    std::string_view sha256_hex) const {
  const auto it = records_.find(sha256_hex);
  return it == records_.end() ? nullptr : &it->second;
}

std::vector<ServiceKey> CertificateStore::PresentedBy(
    std::string_view sha256_hex) const {
  std::vector<ServiceKey> out;
  if (const CertificateRecord* record = Get(sha256_hex)) {
    for (std::uint64_t packed : record->presented_by) {
      out.push_back(ServiceKey::Unpack(packed));
    }
  }
  return out;
}

void CertificateStore::ForEach(
    const std::function<void(std::string_view, const CertificateRecord&)>& fn)
    const {
  for (const auto& [fingerprint, record] : records_) fn(fingerprint, record);
}

CertificateStore::Stats CertificateStore::ComputeStats() const {
  Stats stats;
  for (const auto& [fingerprint, record] : records_) {
    ++stats.by_status[record.status];
    if (!record.lints.errors.empty()) ++stats.with_lint_errors;
    if (record.seen_in_ct && !record.seen_in_scan) ++stats.ct_only;
    if (record.seen_in_scan && !record.seen_in_ct) ++stats.scan_only;
  }
  return stats;
}

}  // namespace censys::cert
