#include "cert/ct.h"

namespace censys::cert {

std::uint64_t CtLog::Append(Certificate cert, Timestamp logged_at) {
  const std::uint64_t index = entries_.size();
  entries_.push_back(CtEntry{index, logged_at, std::move(cert)});
  return index;
}

std::span<const CtEntry> CtLog::EntriesSince(std::uint64_t cursor) const {
  if (cursor >= entries_.size()) return {};
  return std::span<const CtEntry>(entries_).subspan(cursor);
}

}  // namespace censys::cert
