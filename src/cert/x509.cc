#include "cert/x509.h"

#include <array>
#include <cstdio>

#include "core/rng.h"
#include "core/strings.h"

namespace censys::cert {
namespace {

std::uint64_t Sub(std::uint64_t seed, std::uint64_t salt) {
  return SplitMix64(seed ^ SplitMix64(salt));
}

struct CaProfile {
  std::string_view name;
  double weight;
  // Issuance profile: max validity days and preferred key/signature algs.
  int validity_days;
  KeyAlgorithm key;
  SignatureAlgorithm sig;
  bool trusted;
};

// The simulated CA ecosystem: a Let's Encrypt-like 90-day issuer dominates,
// commercial CAs issue ~1-year certificates, a legacy CA still signs with
// SHA-1 (lint fodder), and an untrusted government CA exists.
constexpr std::array<CaProfile, 5> kCas = {{
    {"SimCA Encrypt R3", 0.52, 90, KeyAlgorithm::kEcdsaP256,
     SignatureAlgorithm::kEcdsaSha256, true},
    {"SimCert Global CA", 0.22, 365, KeyAlgorithm::kRsa2048,
     SignatureAlgorithm::kSha256Rsa, true},
    {"SimTrust EV CA", 0.12, 365, KeyAlgorithm::kRsa4096,
     SignatureAlgorithm::kSha256Rsa, true},
    {"LegacySign CA 2009", 0.06, 730, KeyAlgorithm::kRsa1024,
     SignatureAlgorithm::kSha1Rsa, true},
    {"StateNet Root CA", 0.08, 1095, KeyAlgorithm::kRsa2048,
     SignatureAlgorithm::kSha256Rsa, false},
}};

const CaProfile& PickCa(std::uint64_t seed) {
  double total = 0;
  for (const CaProfile& ca : kCas) total += ca.weight;
  double x = static_cast<double>(Sub(seed, 41) % 1000000) / 1000000.0 * total;
  for (const CaProfile& ca : kCas) {
    x -= ca.weight;
    if (x < 0) return ca;
  }
  return kCas.back();
}

}  // namespace

std::string_view ToString(KeyAlgorithm a) {
  switch (a) {
    case KeyAlgorithm::kRsa2048: return "RSA-2048";
    case KeyAlgorithm::kRsa4096: return "RSA-4096";
    case KeyAlgorithm::kEcdsaP256: return "ECDSA-P256";
    case KeyAlgorithm::kRsa1024: return "RSA-1024";
  }
  return "?";
}

std::string_view ToString(SignatureAlgorithm a) {
  switch (a) {
    case SignatureAlgorithm::kSha256Rsa: return "SHA256-RSA";
    case SignatureAlgorithm::kEcdsaSha256: return "ECDSA-SHA256";
    case SignatureAlgorithm::kSha1Rsa: return "SHA1-RSA";
  }
  return "?";
}

std::string_view ToString(ValidationStatus s) {
  switch (s) {
    case ValidationStatus::kTrusted: return "trusted";
    case ValidationStatus::kSelfSigned: return "self-signed";
    case ValidationStatus::kUntrustedIssuer: return "untrusted-issuer";
    case ValidationStatus::kExpired: return "expired";
    case ValidationStatus::kNotYetValid: return "not-yet-valid";
    case ValidationStatus::kRevoked: return "revoked";
  }
  return "?";
}

std::string Certificate::Sha256Hex() const {
  // Canonical encoding: every field that identifies the certificate.
  Sha256 h;
  h.Update("x509v3");
  h.Update(subject_cn);
  for (const std::string& name : san_dns) h.Update(name);
  h.Update(issuer);
  const std::uint64_t numbers[5] = {
      static_cast<std::uint64_t>(not_before.minutes),
      static_cast<std::uint64_t>(not_after.minutes),
      static_cast<std::uint64_t>(key_algorithm),
      static_cast<std::uint64_t>(signature_algorithm), serial};
  h.Update(numbers, sizeof(numbers));
  return ToHex(h.Finish());
}

bool Certificate::CoversName(std::string_view raw_name) const {
  const std::string name = ToLower(raw_name);  // DNS names are case-blind
  auto matches = [&](std::string_view raw_pattern) {
    const std::string pattern = ToLower(raw_pattern);
    if (pattern == name) return true;
    // Wildcard: "*.example.com" covers exactly one extra label.
    if (StartsWith(pattern, "*.")) {
      const std::string_view suffix =
          std::string_view(pattern).substr(1);  // ".example.com"
      if (!EndsWith(name, suffix)) return false;
      const std::string_view label =
          std::string_view(name).substr(0, name.size() - suffix.size());
      return !label.empty() && label.find('.') == std::string_view::npos;
    }
    return false;
  };
  if (matches(subject_cn)) return true;
  for (const std::string& san : san_dns) {
    if (matches(san)) return true;
  }
  return false;
}

Certificate SynthesizeCertificate(std::uint64_t cert_seed,
                                  std::string_view name, Timestamp epoch) {
  Certificate cert;
  cert.seed = cert_seed;

  // ~14% of presented certificates are self-signed (device defaults).
  cert.self_signed = (Sub(cert_seed, 40) % 100) < 14;

  if (name.empty()) {
    char cn[48];
    std::snprintf(cn, sizeof(cn), "device-%08llx.local",
                  static_cast<unsigned long long>(Sub(cert_seed, 42) & 0xffffffff));
    cert.subject_cn = cn;
    // Most device certs carry the CN as a SAN; a lintable minority do not.
    if (Sub(cert_seed, 47) % 100 < 85) cert.san_dns.push_back(cn);
  } else {
    cert.subject_cn = std::string(name);
    cert.san_dns.push_back(std::string(name));
    // Half the named certs also carry a wildcard or www SAN.
    const std::size_t dot = name.find('.');
    if (dot != std::string_view::npos && Sub(cert_seed, 43) % 2 == 0) {
      cert.san_dns.push_back("*" + std::string(name.substr(dot)));
    }
  }

  const CaProfile& ca = PickCa(cert_seed);
  if (cert.self_signed) {
    cert.issuer = cert.subject_cn;
    cert.key_algorithm = KeyAlgorithm::kRsa2048;
    cert.signature_algorithm = SignatureAlgorithm::kSha256Rsa;
    // Self-signed device certs are often issued for a decade.
    cert.not_before = epoch - Duration::Days(static_cast<double>(
                                  Sub(cert_seed, 44) % 2000));
    cert.not_after = cert.not_before + Duration::Days(3650);
  } else {
    cert.issuer = std::string(ca.name);
    cert.key_algorithm = ca.key;
    cert.signature_algorithm = ca.sig;
    // Issued up to 1.5 validity periods ago: a tail of certificates is
    // already expired at observation time, as in the real Web PKI.
    const double age_days =
        static_cast<double>(Sub(cert_seed, 45) % 1000000) / 1000000.0 *
        static_cast<double>(ca.validity_days) * 1.5;
    cert.not_before = epoch - Duration::Days(age_days);
    cert.not_after = cert.not_before + Duration::Days(ca.validity_days);
  }
  cert.serial = Sub(cert_seed, 46);
  return cert;
}

std::string CertFingerprintHex(std::uint64_t cert_seed, std::string_view name,
                               Timestamp epoch) {
  return SynthesizeCertificate(cert_seed, name, epoch).Sha256Hex();
}

RootStore RootStore::Default() {
  RootStore store;
  for (const CaProfile& ca : kCas) {
    if (ca.trusted) store.Trust(std::string(ca.name));
  }
  return store;
}

std::optional<Timestamp> CrlStore::RevokedAt(std::string_view issuer,
                                             std::uint64_t serial) const {
  // Synthetic baseline: ~1.2% of serials are revoked, at a deterministic
  // date in the recent past derived from the serial.
  const std::uint64_t h = SplitMix64(serial ^ Fnv1a64(issuer));
  if (h % 1000 < 12) {
    return Timestamp::FromDays(-static_cast<double>((h >> 10) % 200));
  }
  const auto it = revoked_.find(std::string(issuer));
  if (it == revoked_.end()) return std::nullopt;
  const auto jt = it->second.find(serial);
  if (jt == it->second.end()) return std::nullopt;
  return jt->second;
}

void CrlStore::Revoke(std::string_view issuer, std::uint64_t serial,
                      Timestamp when) {
  revoked_[std::string(issuer)][serial] = when;
}

ValidationStatus Validate(const Certificate& cert, const RootStore& roots,
                          const CrlStore& crls, Timestamp t) {
  if (t < cert.not_before) return ValidationStatus::kNotYetValid;
  if (t >= cert.not_after) return ValidationStatus::kExpired;
  if (cert.self_signed) return ValidationStatus::kSelfSigned;
  if (const auto when = crls.RevokedAt(cert.issuer, cert.serial);
      when.has_value() && *when <= t) {
    return ValidationStatus::kRevoked;
  }
  if (!roots.Trusts(cert.issuer)) return ValidationStatus::kUntrustedIssuer;
  return ValidationStatus::kTrusted;
}

LintResult Lint(const Certificate& cert) {
  LintResult result;
  // CABF ballot SC-063: subscriber certificates must not exceed 398 days.
  if (!cert.self_signed && cert.ValidityWindow() > Duration::Days(398)) {
    result.errors.push_back("validity_longer_than_398_days");
  }
  if (cert.signature_algorithm == SignatureAlgorithm::kSha1Rsa) {
    result.errors.push_back("sha1_signature_deprecated");
  }
  if (cert.key_algorithm == KeyAlgorithm::kRsa1024) {
    result.errors.push_back("rsa_key_below_2048_bits");
  }
  if (!cert.self_signed && cert.san_dns.empty()) {
    result.errors.push_back("missing_subject_alt_name");
  }
  if (cert.subject_cn.empty()) {
    result.warnings.push_back("empty_subject_common_name");
  }
  for (const std::string& san : cert.san_dns) {
    if (StartsWith(san, "*.") &&
        san.find('*', 2) != std::string::npos) {
      result.errors.push_back("multiple_wildcards_in_san");
    }
  }
  return result;
}

}  // namespace censys::cert
