// The certificate processor (§4.4, Figure 1 "Cert Processor" /
// "Cert Refresh Process").
//
// Certificates arrive from two directions — presented during TLS scans and
// observed in CT logs. Upon observing a new certificate, Censys parses it,
// validates it against browser root stores, checks CRL revocation, and
// lints it; validation and revocation are recomputed daily, because both
// change while the certificate itself does not. Certificates are entities
// keyed by SHA-256 fingerprint, cross-referenced to the hosts that
// presented them.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "cert/ct.h"
#include "cert/x509.h"
#include "core/types.h"

namespace censys::cert {

struct CertificateRecord {
  Certificate certificate;
  ValidationStatus status = ValidationStatus::kUntrustedIssuer;
  LintResult lints;
  Timestamp first_seen;
  Timestamp last_validated;
  bool seen_in_ct = false;
  bool seen_in_scan = false;
  // Endpoints observed presenting this certificate (packed ServiceKeys) —
  // the "what IPs has certificate X been seen on?" index of §5.3.
  std::set<std::uint64_t> presented_by;
};

class CertificateStore {
 public:
  CertificateStore(const RootStore& roots, const CrlStore& crls)
      : roots_(roots), crls_(crls) {}

  // Ingests a certificate observed in a CT log.
  void ObserveFromCt(const CtEntry& entry, Timestamp now);
  // Ingests a certificate presented during a TLS handshake.
  void ObserveFromScan(const Certificate& certificate, ServiceKey presented_by,
                       Timestamp now);

  // Re-validates every certificate (status + revocation) — run daily
  // ("Censys recomputes certificate validation and revocation status
  // daily", §4.6). Returns how many records changed status.
  std::size_t RevalidateAll(Timestamp now);

  const CertificateRecord* Get(std::string_view sha256_hex) const;
  std::size_t size() const { return records_.size(); }

  // Lookup API pivot: endpoints that presented the certificate.
  std::vector<ServiceKey> PresentedBy(std::string_view sha256_hex) const;

  void ForEach(
      const std::function<void(std::string_view, const CertificateRecord&)>&
          fn) const;

  // Aggregate statistics for dashboards and benches.
  struct Stats {
    std::map<ValidationStatus, std::uint64_t> by_status;
    std::uint64_t with_lint_errors = 0;
    std::uint64_t ct_only = 0;    // in CT, never seen on a live endpoint
    std::uint64_t scan_only = 0;  // presented by hosts but absent from CT
  };
  Stats ComputeStats() const;

 private:
  CertificateRecord& Upsert(const Certificate& certificate, Timestamp now);

  const RootStore& roots_;
  const CrlStore& crls_;
  std::map<std::string, CertificateRecord, std::less<>> records_;
};

}  // namespace censys::cert
