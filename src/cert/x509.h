// X.509 certificates (simulated).
//
// Censys collects certificates from TLS scans and CT logs, validates them
// against browser root stores, checks CRL revocation, and lints them
// (§4.4). We model certificates as structured records synthesized
// deterministically from a seed — the same seed the TLS layer attaches to a
// service — so a certificate observed via scanning and the same certificate
// observed via CT have identical fingerprints, which is what makes
// cross-referencing (e.g. "what IPs has certificate X been seen on?") work.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/sha256.h"
#include "core/types.h"

namespace censys::cert {

enum class KeyAlgorithm : std::uint8_t { kRsa2048, kRsa4096, kEcdsaP256, kRsa1024 };
enum class SignatureAlgorithm : std::uint8_t { kSha256Rsa, kEcdsaSha256, kSha1Rsa };

std::string_view ToString(KeyAlgorithm a);
std::string_view ToString(SignatureAlgorithm a);

struct Certificate {
  std::uint64_t seed = 0;
  std::string subject_cn;
  std::vector<std::string> san_dns;  // subjectAltName dNSName entries
  std::string issuer;                // CA display name; == subject if self-signed
  bool self_signed = false;
  Timestamp not_before;
  Timestamp not_after;
  KeyAlgorithm key_algorithm = KeyAlgorithm::kRsa2048;
  SignatureAlgorithm signature_algorithm = SignatureAlgorithm::kSha256Rsa;
  std::uint64_t serial = 0;

  // SHA-256 fingerprint over the certificate's canonical encoding; stable
  // across observations. Hex, lowercase, 64 chars.
  std::string Sha256Hex() const;

  bool CoversName(std::string_view name) const;  // CN/SAN match, with wildcards
  bool ValidAt(Timestamp t) const {
    return not_before <= t && t < not_after;
  }
  Duration ValidityWindow() const { return not_after - not_before; }
};

// Deterministically synthesizes the certificate a service with this
// cert_seed presents for `name` (empty name => an IP/default certificate).
// `epoch` anchors the issuance window; certificates are issued up to two
// years before it, so some are expired at observation time.
Certificate SynthesizeCertificate(std::uint64_t cert_seed,
                                  std::string_view name, Timestamp epoch);

// Convenience: the fingerprint a service's certificate will have, without
// building the whole structure.
std::string CertFingerprintHex(std::uint64_t cert_seed, std::string_view name,
                               Timestamp epoch);

// --- validation --------------------------------------------------------------

enum class ValidationStatus : std::uint8_t {
  kTrusted,
  kSelfSigned,
  kUntrustedIssuer,
  kExpired,
  kNotYetValid,
  kRevoked,
};

std::string_view ToString(ValidationStatus s);

// A browser-style root store: the set of trusted CA names.
class RootStore {
 public:
  static RootStore Default();  // the simulated "browser consensus" roots

  void Trust(std::string ca_name) { trusted_.insert(std::move(ca_name)); }
  bool Trusts(std::string_view ca_name) const {
    return trusted_.contains(std::string(ca_name));
  }

 private:
  std::unordered_set<std::string> trusted_;
};

// CRL-based revocation (Censys stopped checking OCSP in 2024 after CABF BR
// v2.0.1 mandated CRLs, §4.4). Revocations are synthesized deterministically:
// a small fraction of serials per issuer are revoked as of some date.
class CrlStore {
 public:
  // Returns the revocation time if (issuer, serial) is revoked.
  std::optional<Timestamp> RevokedAt(std::string_view issuer,
                                     std::uint64_t serial) const;

  // Manually revoke (used by tests and the threat-hunting example).
  void Revoke(std::string_view issuer, std::uint64_t serial, Timestamp when);

 private:
  std::unordered_map<std::string, std::unordered_map<std::uint64_t, Timestamp>>
      revoked_;
};

// Full chain evaluation at time t.
ValidationStatus Validate(const Certificate& cert, const RootStore& roots,
                          const CrlStore& crls, Timestamp t);

// --- linting -----------------------------------------------------------------

// ZLint-style checks (Censys "lints" every observed certificate [65]).
struct LintResult {
  std::vector<std::string> errors;    // violations of the BRs
  std::vector<std::string> warnings;
  bool clean() const { return errors.empty() && warnings.empty(); }
};

LintResult Lint(const Certificate& cert);

}  // namespace censys::cert
