// Certificate Transparency log (simulated).
//
// Censys polls public CT logs to find certificates — and through them, the
// names of web properties to scan (§4.3, §4.4). The simulated log is an
// append-only sequence of (index, certificate) entries with a cursor-based
// poll API, which is exactly the access pattern of real CT (get-entries
// with a start index).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cert/x509.h"

namespace censys::cert {

struct CtEntry {
  std::uint64_t index = 0;
  Timestamp logged_at;
  Certificate certificate;
};

class CtLog {
 public:
  // Appends and returns the entry index.
  std::uint64_t Append(Certificate cert, Timestamp logged_at);

  // Entries with index >= cursor (get-entries). The caller advances its own
  // cursor to tree_size() after consuming.
  std::span<const CtEntry> EntriesSince(std::uint64_t cursor) const;

  std::uint64_t tree_size() const { return entries_.size(); }
  const CtEntry& entry(std::uint64_t index) const { return entries_[index]; }

 private:
  std::vector<CtEntry> entries_;
};

}  // namespace censys::cert
