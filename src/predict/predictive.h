// The predictive scan engine (§4.1 "Predictive Scanning").
//
// Censys "implements several dozen probabilistic models that rely on
// transport and application layer features along with network and
// geolocation data in an approach inspired by Izhikevich et al. [GPS]".
// Our engine learns two families of conditionals online from discovery
// results and proposes (ip, port) candidates:
//
//   1. network-port affinity:   P(port p open | network block b)
//      — services cluster by deployment (a hosting block full of :8443
//      panels predicts more of them);
//   2. port co-occurrence:      P(port q open on host | port p open)
//      — multi-service hosts open correlated ports (80 -> 443, 22 -> 2222).
//
// It also re-injects services pruned within the last 60 days (§4.6), so
// transiently-offline services on obscure ports are quickly re-found.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "core/rng.h"
#include "core/types.h"
#include "simnet/blocks.h"

namespace censys::predict {

struct PredictorStats {
  std::uint64_t observations = 0;
  std::uint64_t candidates_emitted = 0;
  std::uint64_t affinity_candidates = 0;
  std::uint64_t cooccurrence_candidates = 0;
};

class PredictiveEngine {
 public:
  struct Options {
    // Minimum observations of (block, port) before the affinity model
    // proposes that port across the block.
    std::uint32_t min_affinity_support = 3;
    // Minimum co-occurrence count before proposing a correlated port.
    std::uint32_t min_cooccurrence_support = 4;
    // Do not re-propose a candidate within this window.
    Duration proposal_cooldown = Duration::Days(7);
    // Cap on tracked co-occurrence pairs (memory guard).
    std::size_t max_pairs = 1u << 20;
  };

  PredictiveEngine(const simnet::BlockPlan& plan, std::uint64_t seed)
      : PredictiveEngine(plan, seed, Options()) {}
  PredictiveEngine(const simnet::BlockPlan& plan, std::uint64_t seed,
                   Options options);

  // Online training: a service was confirmed at `key`.
  void ObserveService(ServiceKey key);

  // Proposes up to `budget` candidates to probe at `now`.
  std::vector<ServiceKey> GenerateCandidates(Timestamp now,
                                             std::size_t budget);

  const PredictorStats& stats() const { return stats_; }

 private:
  bool Cooldown(ServiceKey key, Timestamp now);

  const simnet::BlockPlan& plan_;
  Options options_;
  Rng rng_;

  // Affinity model: (block_id, port) -> observation count.
  std::unordered_map<std::uint64_t, std::uint32_t> block_port_counts_;
  // Ports seen per host (bounded small vectors).
  std::unordered_map<std::uint32_t, std::vector<Port>> host_ports_;
  // Co-occurrence model: (port_a << 16 | port_b) -> count, a < b.
  std::unordered_map<std::uint32_t, std::uint32_t> pair_counts_;
  // Per-port correlated-port index, rebuilt lazily from pair_counts_.
  std::unordered_map<Port, std::vector<std::pair<Port, std::uint32_t>>>
      correlated_;
  bool correlated_dirty_ = true;
  // Hosts with fresh discoveries, drained first by candidate generation
  // (new hosts are the best co-occurrence targets).
  std::deque<std::uint32_t> recent_hosts_;
  // Proposal cooldown: packed key -> last proposal time.
  std::unordered_map<std::uint64_t, Timestamp> last_proposed_;

  // Hot lists rebuilt lazily from the models.
  struct AffinityEntry {
    std::uint32_t block_id;
    Port port;
    std::uint32_t support;
  };
  std::vector<AffinityEntry> hot_affinities_;
  bool hot_dirty_ = true;

  PredictorStats stats_;
};

}  // namespace censys::predict
