#include "predict/predictive.h"

#include <algorithm>

namespace censys::predict {
namespace {

std::uint64_t BlockPortKey(std::uint32_t block_id, Port port) {
  return (static_cast<std::uint64_t>(block_id) << 16) | port;
}

std::uint32_t PairKey(Port a, Port b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint32_t>(a) << 16) | b;
}

}  // namespace

PredictiveEngine::PredictiveEngine(const simnet::BlockPlan& plan,
                                   std::uint64_t seed, Options options)
    : plan_(plan), options_(options), rng_(SplitMix64(seed ^ 0x93ED1C7)) {}

void PredictiveEngine::ObserveService(ServiceKey key) {
  ++stats_.observations;
  const simnet::NetworkBlock& block = plan_.BlockOf(key.ip);
  ++block_port_counts_[BlockPortKey(block.id, key.port)];
  hot_dirty_ = true;

  auto& ports = host_ports_[key.ip.value()];
  if (std::find(ports.begin(), ports.end(), key.port) == ports.end()) {
    // Update co-occurrence with previously known ports on this host.
    if (pair_counts_.size() < options_.max_pairs) {
      for (Port existing : ports) {
        ++pair_counts_[PairKey(existing, key.port)];
      }
      correlated_dirty_ = true;
    }
    if (ports.size() < 16) ports.push_back(key.port);
    // Freshly (re)discovered hosts are prime co-occurrence targets.
    if (recent_hosts_.size() < 65536) recent_hosts_.push_back(key.ip.value());
  }
}

bool PredictiveEngine::Cooldown(ServiceKey key, Timestamp now) {
  auto [it, inserted] = last_proposed_.try_emplace(key.Pack(), now);
  if (inserted) return true;
  if (it->second + options_.proposal_cooldown > now) return false;
  it->second = now;
  return true;
}

std::vector<ServiceKey> PredictiveEngine::GenerateCandidates(
    Timestamp now, std::size_t budget) {
  std::vector<ServiceKey> out;
  out.reserve(budget);

  if (hot_dirty_) {
    hot_affinities_.clear();
    for (const auto& [key, count] : block_port_counts_) {
      if (count >= options_.min_affinity_support) {
        hot_affinities_.push_back(AffinityEntry{
            static_cast<std::uint32_t>(key >> 16),
            static_cast<Port>(key & 0xffff), count});
      }
    }
    // Strongest affinities first.
    std::sort(hot_affinities_.begin(), hot_affinities_.end(),
              [](const AffinityEntry& a, const AffinityEntry& b) {
                if (a.support != b.support) return a.support > b.support;
                if (a.block_id != b.block_id) return a.block_id < b.block_id;
                return a.port < b.port;
              });
    hot_dirty_ = false;
  }

  // --- model 1: network-port affinity -----------------------------------------
  const std::size_t affinity_budget = budget * 6 / 10;
  if (!hot_affinities_.empty()) {
    std::size_t emitted = 0;
    std::size_t attempts = 0;
    const std::size_t max_attempts = affinity_budget * 4;
    while (emitted < affinity_budget && attempts < max_attempts) {
      ++attempts;
      // Sample affinities with bias toward the head of the list.
      const std::size_t index = static_cast<std::size_t>(
          rng_.NextBelow(hot_affinities_.size()) *
          rng_.NextDouble());  // squared-uniform: head-heavy
      const AffinityEntry& entry = hot_affinities_[index];
      const simnet::NetworkBlock& block = plan_.blocks()[entry.block_id];
      const IPv4Address ip = block.cidr.AddressAt(
          rng_.NextBelow(block.cidr.size()));
      const ServiceKey key{ip, entry.port, Transport::kTcp};
      if (!Cooldown(key, now)) continue;
      out.push_back(key);
      ++emitted;
      ++stats_.affinity_candidates;
    }
  }

  // --- model 2: port co-occurrence ---------------------------------------------
  // For hosts with known services, propose the most strongly correlated
  // ports. Hosts with fresh discoveries are drained first — a brand-new
  // host with port 80 open is the best candidate for its siblings.
  if (correlated_dirty_) {
    correlated_.clear();
    for (const auto& [pair, count] : pair_counts_) {
      if (count < options_.min_cooccurrence_support) continue;
      const Port a = static_cast<Port>(pair >> 16);
      const Port b = static_cast<Port>(pair & 0xffff);
      correlated_[a].emplace_back(b, count);
      correlated_[b].emplace_back(a, count);
    }
    for (auto& [port, list] : correlated_) {
      std::sort(list.begin(), list.end(),
                [](const auto& x, const auto& y) {
                  if (x.second != y.second) return x.second > y.second;
                  return x.first < y.first;
                });
      if (list.size() > 8) list.resize(8);
    }
    correlated_dirty_ = false;
  }

  std::size_t emitted = 0;
  const std::size_t cooccur_budget = budget - out.size();
  auto propose_for_host = [&](std::uint32_t ip) {
    const auto hp = host_ports_.find(ip);
    if (hp == host_ports_.end()) return;
    for (Port known : hp->second) {
      const auto corr = correlated_.find(known);
      if (corr == correlated_.end()) continue;
      for (const auto& [candidate_port, support] : corr->second) {
        if (std::find(hp->second.begin(), hp->second.end(), candidate_port) !=
            hp->second.end())
          continue;  // already known open
        const ServiceKey key{IPv4Address(ip), candidate_port, Transport::kTcp};
        if (!Cooldown(key, now)) continue;
        out.push_back(key);
        ++emitted;
        ++stats_.cooccurrence_candidates;
        if (emitted >= cooccur_budget) return;
      }
    }
  };

  // Fresh hosts first.
  while (emitted < cooccur_budget && !recent_hosts_.empty()) {
    const std::uint32_t ip = recent_hosts_.front();
    recent_hosts_.pop_front();
    propose_for_host(ip);
  }
  // Then a random sweep over known hosts.
  if (!host_ports_.empty()) {
    std::size_t attempts = 0;
    const std::size_t max_attempts = cooccur_budget * 4 + 16;
    const std::size_t bucket_count = host_ports_.bucket_count();
    std::size_t bucket = static_cast<std::size_t>(
        SplitMix64(static_cast<std::uint64_t>(now.minutes)) % bucket_count);
    while (emitted < cooccur_budget && attempts < max_attempts) {
      ++attempts;
      bucket = (bucket + 1) % bucket_count;
      for (auto it = host_ports_.begin(bucket);
           it != host_ports_.end(bucket) && emitted < cooccur_budget; ++it) {
        propose_for_host(it->first);
      }
    }
  }

  stats_.candidates_emitted += out.size();
  return out;
}

}  // namespace censys::predict
